// Phase-aligned read replicas: WAL shipping, continuous replay, stale-bounded reads.
//
// A Replica owns its own Store + OrderedIndex and follows a primary's persistence
// directory:
//
//   primary Database                    shared persistence dir         Replica
//   ┌─────────────────────┐             ┌──────────────────┐          ┌──────────────┐
//   │ workers ──► WAL ────┼── flush ──► │ wal-N.log ...    │ ◄─ tail ─┤ SegmentTailer│
//   │ coordinator ─ cuts ─┼───────────► │ MANIFEST         │ ◄─ poll ─┤ bootstrap    │
//   │ checkpoints ────────┼───────────► │ ckpt-N.ckpt      │ ◄─ load ─┤   │          │
//   └─────────────────────┘             └──────────────────┘          │ publish ──►  │
//                                                                     │ Get / Scan   │
//                                                                     └──────────────┘
//
// Bootstrap loads the latest checkpoint named by the MANIFEST, then the tailer walks
// live (and retained) segments in order, incrementally reading the active segment's
// flushed prefix and stopping cleanly at the tail via the per-entry CRC. Applied
// transactions are *buffered*; the replica only publishes a new read snapshot when it
// crosses a replication-cut record — which the primary's coordinator appends at
// joined-phase quiesce barriers, the same transaction-consistent points checkpoints
// use. Get/Scan therefore always observe exactly some joined-phase cut of the primary,
// never a state between transactions, and the staleness bound is explicit:
// `applied_cut_tid` plus lag in bytes / entries / microseconds (ReplicaProgress).
//
// Within a cut window, buffered transactions are applied sorted by commit TID. TIDs
// across the whole log are not globally monotone (workers mint them independently),
// but per *record* the TID order matches the serial order — a conflicting later writer
// absorbs the earlier TID via GenerateTid — and commutative split-phase operations are
// order-insensitive, so per-window TID-sorted replay reaches the same state as the
// primary at the barrier (the same argument as crash-recovery replay in wal.cc).
//
// An attached replica (AttachPrimary / AttachReplica) holds a retention lease on the
// primary's WAL, so checkpoints move still-needed sealed segments to the manifest's
// retained set instead of deleting them; the lease advances as shipping passes each
// segment. A replica can also tail a directory with no live primary (crash inspection:
// it converges to the last durable cut-consistent prefix and reports halted/lag).
#ifndef DOPPEL_SRC_REPLICA_REPLICA_H_
#define DOPPEL_SRC_REPLICA_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/function_ref.h"
#include "src/common/histogram.h"
#include "src/common/mutex.h"
#include "src/common/spinlock.h"
#include "src/persist/log_reader.h"
#include "src/store/store.h"

namespace doppel {

class Database;
class WriteAheadLog;

struct ReplicaOptions {
  // Tailer poll interval while waiting for new bytes / segments / cuts.
  std::uint64_t poll_us = 200;
  // Capacity hint for the replica's own store.
  std::size_t store_capacity = std::size_t{1} << 20;
  // I/O environment for the tailer's reads (nullptr = the passthrough default).
  // Test hook: fault-injection tests exercise the read-error backoff path with it.
  IoEnv* io_env = nullptr;
  // Test hook: runs after every published cut, outside the publish lock (so it may
  // open Views — and may block, which deterministically pauses the tailer).
  std::function<void()> on_publish;
};

// Racy point-in-time snapshot of the replica's shipping/apply state.
struct ReplicaProgress {
  bool attached = false;  // holds a retention lease on a live primary's WAL
  bool tailing = false;   // bootstrap finished; the tailer is shipping segments
  bool halted = false;    // unrecoverable log damage; snapshot frozen at last cut
  std::uint64_t applied_cut_tid = 0;   // TID of the latest published cut
  std::uint64_t published_cuts = 0;
  std::uint64_t applied_txns = 0;      // transactions inside published cuts
  std::uint64_t pending_txns = 0;      // shipped but awaiting their cut
  std::uint64_t shipped_entries = 0;   // WAL entries consumed (txns + cuts)
  std::uint64_t shipped_bytes = 0;     // entry bytes consumed (excl. segment headers)
  std::uint64_t bootstrap_records = 0; // records loaded from the checkpoint
  std::uint64_t reclaimed_records = 0; // deleted records freed by publish-time sweeps
  std::uint64_t last_cut_wall_ns = 0;  // primary's clock at the latest published cut
  // Tailer read-health: retried segment reads (EINTR plus backed-off hard errors) and
  // the errno of the most recent hard read error (0 = none seen). Transient errors
  // never halt the tailer — it backs off and resumes at the same position, so cut
  // alignment is preserved.
  std::uint64_t read_retries = 0;
  int last_read_errno = 0;
  // Staleness bounds (0 until tailing / nothing published yet):
  // On-disk log bytes from the tailer's position to the end of the newest live
  // segment (retention-leased files, so every byte is stat-able). Measures flushed-
  // but-unshipped data; exact even when bootstrap skipped checkpoint-subsumed
  // segments the primary flushed earlier.
  std::uint64_t lag_bytes = 0;
  // Upper bound: primary appended txns minus applied + pending. Over-counts for a
  // checkpoint-bootstrapped replica (subsumed segments are never shipped).
  std::uint64_t lag_entries = 0;
  std::uint64_t lag_us = 0;  // age of the latest published cut
};

class Replica {
 public:
  explicit Replica(std::string dir, ReplicaOptions opts = ReplicaOptions{});
  ~Replica();
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // Registers with a live primary's WAL: acquires a retention lease so checkpoints
  // retain sealed segments this replica still needs. Call before Start; the primary
  // must outlive Stop (the lease is released there). Optional — an unattached replica
  // tails the directory without retention protection (e.g. post-crash inspection).
  void AttachPrimary(WriteAheadLog* wal);

  // Spawns the tailer thread: bootstrap from the latest checkpoint, then ship and
  // apply continuously, publishing at each cut.
  void Start();
  // Joins the tailer and releases the retention lease. Idempotent.
  void Stop();

  // A consistent read view: shared-locks the publish snapshot so Get/Scan through one
  // View all observe the same published cut. Cheap; hold briefly (a pending publish
  // waits for open Views).
  class View {
   public:
    explicit View(const Replica& r) : r_(r), lock_(r.publish_mu_) {}
    View(const View&) = delete;
    View& operator=(const View&) = delete;

    // The cut this view observes.
    std::uint64_t cut_tid() const {
      return r_.applied_cut_tid_.load(std::memory_order_acquire);
    }
    std::uint64_t cuts() const {
      return r_.published_cuts_.load(std::memory_order_acquire);
    }

    bool Get(const Key& key, Value* out) const;
    // Ascending scan of [lo, hi] in `table`, up to `limit` items (0 = unbounded);
    // `fn` returning false stops early. Returns items visited.
    std::size_t Scan(std::uint64_t table, std::uint64_t lo, std::uint64_t hi,
                     std::size_t limit,
                     FunctionRef<bool(const Key&, const Value&)> fn) const;

   private:
    const Replica& r_;
    // std::shared_lock over the annotated wrapper, not ReaderMutexLock: the analysis
    // cannot model a scoped capability held as a class member (the View outlives the
    // constructor that acquired it). The exclusive side is fully checked in
    // PublishWindow; readers get the runtime lock with no analysis claims.
    std::shared_lock<SharedMutex> lock_;
  };

  // One-shot conveniences (each takes its own View).
  bool Get(const Key& key, Value* out) const;
  std::size_t Scan(std::uint64_t table, std::uint64_t lo, std::uint64_t hi,
                   std::size_t limit,
                   FunctionRef<bool(const Key&, const Value&)> fn) const;

  ReplicaProgress progress() const;
  // Publish lag distribution: primary cut-emission time to replica publish time.
  LatencyHistogram PublishLagHistogram() const;

  // Blocks until a cut with TID >= `tid` has been published (or timeout/halt).
  bool WaitForCutTid(std::uint64_t tid, std::uint64_t timeout_ms) const;
  // Attached only: blocks until every byte the primary has flushed is shipped and
  // every shipped transaction published (requires a trailing cut — Database::Stop
  // appends one). False on timeout or halt.
  bool WaitCaughtUp(std::uint64_t timeout_ms) const;

  Store& store() { return store_; }
  const std::string& dir() const { return dir_; }

 private:
  void TailerMain();
  // Applies the buffered cut window (sorted by TID) and publishes `cut`.
  void PublishWindow(std::vector<WalTxn>* window, const WalCut& cut)
      EXCLUDES(publish_mu_);

  const std::string dir_;
  const ReplicaOptions opts_;
  Store store_;
  WriteAheadLog* primary_ = nullptr;
  int lease_id_ = -1;
  std::thread tailer_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  // Exclusive while a cut window is applied; shared for every read. Everything a
  // reader can observe through the store mutates only under the exclusive side.
  mutable SharedMutex publish_mu_;

  std::atomic<std::uint64_t> applied_cut_tid_{0};
  std::atomic<std::uint64_t> published_cuts_{0};
  std::atomic<std::uint64_t> applied_txns_{0};
  std::atomic<std::uint64_t> pending_txns_{0};
  std::atomic<std::uint64_t> shipped_entries_{0};
  std::atomic<std::uint64_t> shipped_bytes_{0};
  std::atomic<std::uint64_t> bootstrap_records_{0};
  std::atomic<std::uint64_t> reclaimed_records_{0};
  std::atomic<std::uint64_t> last_cut_wall_ns_{0};
  // Replayed deletes since the last publish-time sweep. Tailer-thread-only state
  // (PublishWindow runs on the tailer); a sweep triggers once it crosses the
  // threshold, so the replica's store stays bounded under delete churn.
  std::uint64_t deletes_since_sweep_ = 0;
  static constexpr std::uint64_t kSweepAfterDeletes = 256;
  // Tailer position for lag accounting: current segment number (0 = still
  // bootstrapping; real segment numbers start at 1) and consumed offset within it.
  std::atomic<std::uint64_t> tail_segment_{0};
  std::atomic<std::uint64_t> tail_consumed_{0};
  std::atomic<bool> halted_{false};
  // Read-health gauges for progress(): written by the tailer thread only, racy
  // readers by contract — relaxed everywhere.
  std::atomic<std::uint64_t> read_retries_{0};
  std::atomic<int> last_read_errno_{0};

  mutable Spinlock hist_mu_;
  LatencyHistogram publish_lag_ GUARDED_BY(hist_mu_);
};

// Convenience: builds a Replica on `db`'s persistence directory, attaches it to the
// primary's WAL (retention lease), and starts tailing. `db` must have been Started
// (with a wal_dir) and must outlive the replica's Stop.
std::unique_ptr<Replica> AttachReplica(Database& db,
                                       ReplicaOptions opts = ReplicaOptions{});

}  // namespace doppel

#endif  // DOPPEL_SRC_REPLICA_REPLICA_H_
