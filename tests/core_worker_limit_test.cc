// Worker-id capacity limit: a commit TID carries its worker id in the low
// Worker::kWorkerTidBits bits, so at most (1 << kWorkerTidBits) workers can mint
// non-aliasing TIDs. One worker past the limit would silently reuse worker 0's TID
// space — corrupting commit ordering, WAL replay, and recovery — so Database must
// refuse loudly at construction, before any transaction runs.
#include <gtest/gtest.h>

#include "src/core/database.h"
#include "src/txn/worker.h"

namespace doppel {
namespace {

constexpr int kMaxWorkers = 1 << Worker::kWorkerTidBits;

using WorkerLimitDeathTest = ::testing::Test;

TEST(WorkerLimitDeathTest, OnePastTheTidLimitAbortsWithClearMessage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Options o;
  o.num_workers = kMaxWorkers + 1;
  o.store_capacity = 64;
  EXPECT_DEATH({ Database db(o); }, "exceeds the 256-worker limit");
}

TEST(WorkerLimitDeathTest, ExactlyAtTheLimitConstructs) {
  // 256 workers is the last representable configuration: construction must succeed
  // (no threads spawn until Start, so this is cheap).
  Options o;
  o.num_workers = kMaxWorkers;
  o.store_capacity = 64;
  Database db(o);
  EXPECT_EQ(db.options().num_workers, kMaxWorkers);
}

TEST(WorkerLimitDeathTest, TidNamespacesStayDisjointAtTheLimit) {
  // The invariant the limit protects: the highest legal worker id still owns a TID
  // namespace disjoint from worker 0's, while id kMaxWorkers would alias it.
  Worker w0(0, 1);
  Worker wmax(kMaxWorkers - 1, 2);
  const std::uint64_t t0 = w0.GenerateTid(0);
  const std::uint64_t tmax = wmax.GenerateTid(0);
  EXPECT_NE(t0 & (kMaxWorkers - 1), tmax & (kMaxWorkers - 1));
  EXPECT_EQ(static_cast<int>(tmax & (kMaxWorkers - 1)), kMaxWorkers - 1);
}

}  // namespace
}  // namespace doppel
