// Direct-indexed record-pointer array for dense tables (the kFlat store layout).
//
// Tables whose keys are dense integers — the INCR benches' table 0, DBx1000-style
// fixed-size relations — pay the RecordMap's hash mix, bucket probe, and chain walk on
// every access even though `key.lo` is already a perfect index. A FlatTable is a cache
// in front of the RecordMap for one registered key range [base, base + span): lookup is
// one bounds check plus one atomic pointer load, `slots[lo - base]`. The RecordMap stays
// the authoritative owner of every record (ForEach, checkpoints, sweeps, and recovery
// are unchanged); a flat slot only ever holds a pointer the map published, so a flat
// miss — empty slot, out-of-range key, tombstoned slot — simply falls back to the map.
//
// Concurrency contract (the slot lifecycle):
//
//   empty -> live        Store::Route installs a map-resolved record with a CAS from
//                        nullptr. Installs never overwrite: only the sweeper and
//                        quiescent publishers may replace a non-null slot.
//   live/empty -> tomb   The epoch sweeper, at the instant it kills the key's record
//                        (under the record's bucket stripe lock, before the unlink),
//                        stores the tombstone sentinel unconditionally. The store is
//                        unconditional so it also erases a racing install of the dying
//                        record; the CAS-from-nullptr install rule means nothing can
//                        overwrite the sentinel afterwards.
//   tomb -> empty        The epoch reclaimer clears the sentinel only when it frees the
//                        record — two epoch advances after the kill — so a slot is never
//                        republished while any thread could still hold the dead pointer.
//
// Growth doubles the slot array under `grow_mu_`. Tombstone writes and quiescent
// publishes also take `grow_mu_`, so a grow-copy can neither resurrect a pointer the
// sweeper is erasing nor drop a publish; racing CAS installs may be lost to a copy,
// which costs one future flat miss and nothing else. Retired arrays are freed through
// the same epoch grace period as retired records (Store::DrainFlatRetired), because
// lock-free readers may still hold the old array pointer for the rest of their
// transaction. Lock order: RecordMap insert stripe -> grow_mu_; grow_mu_ never acquires
// any other lock.
#ifndef DOPPEL_SRC_STORE_FLAT_TABLE_H_
#define DOPPEL_SRC_STORE_FLAT_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/spinlock.h"

namespace doppel {

class Record;

// One generation of a FlatTable's slot storage. Old generations retired by growth stay
// allocated until no reader can hold them (epoch grace, or table destruction).
struct FlatSlotArray {
  explicit FlatSlotArray(std::size_t n)
      : size(n), slots(std::make_unique<std::atomic<Record*>[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      // Pre-publication init: the array becomes visible only via a later release store.
      slots[i].store(nullptr, std::memory_order_relaxed);
    }
  }
  const std::size_t size;
  std::unique_ptr<std::atomic<Record*>[]> slots;
};

class FlatTable {
 public:
  // Observable slot state (tests, stats). kMiss covers out-of-range keys and offsets
  // beyond the current array.
  enum class SlotState { kMiss, kEmpty, kLive, kTombstone };

  // `span` keys starting at `base` are eligible for flat routing; everything else in
  // the table falls back to the RecordMap. `initial_slots` bounds the first array
  // (clamped to span; 0 picks a small default, growth covers the rest on demand).
  FlatTable(std::uint64_t table, std::uint64_t base, std::uint64_t span,
            std::size_t initial_slots);
  ~FlatTable();
  FlatTable(const FlatTable&) = delete;
  FlatTable& operator=(const FlatTable&) = delete;

  std::uint64_t table() const { return table_; }
  bool InRange(std::uint64_t lo) const { return lo - base_ < span_; }

  // The tombstone sentinel: a non-null non-record pointer, so installs (CAS from
  // nullptr) can never overwrite it.
  static Record* Tombstone();

  // Lock-free lookup; nullptr on any miss (out of range, empty, tombstoned).
  Record* Find(std::uint64_t lo) const {
    const std::uint64_t off = lo - base_;
    if (off >= span_) {
      return nullptr;
    }
    const FlatSlotArray* a = arr_.load(std::memory_order_acquire);
    if (off >= a->size) {
      return nullptr;
    }
    Record* r = a->slots[off].load(std::memory_order_acquire);
    return r == Tombstone() ? nullptr : r;
  }

  // Publishes a map-resolved record into its slot if the slot is empty, growing the
  // array to cover `lo` first. Refuses non-empty slots (live pointer or tombstone).
  void TryInstall(std::uint64_t lo, Record* r);

  // Sweeper only: unconditionally poison the slot at the kill point. The caller holds
  // the bucket stripe lock of `lo`'s record, so no fresh record for the key can be
  // created (and thus installed) until after the victim is unlinked — by which time the
  // sentinel is already in place. Grows the array if needed so the sentinel always
  // lands: a late install of the dying record must have something to collide with.
  void WriteTombstone(std::uint64_t lo);

  // Reclaimer only, at the victim's free point (two epoch advances after the kill):
  // re-open the slot for fresh installs.
  void ClearTombstone(std::uint64_t lo);

  // Quiescent / publish-locked overwrite (recovery replay's ReplaceAbsent, replica
  // apply, quiescent sweeps). `r` may be nullptr to clear the slot outright.
  void Publish(std::uint64_t lo, Record* r);

  SlotState Probe(std::uint64_t lo) const;

  // Moves slot arrays retired by growth to `out` (the epoch reclaimer's array limbo).
  void DrainRetired(std::vector<FlatSlotArray*>* out);

 private:
  // Grows the current array to cover `off` (< span_). Caller holds grow_mu_.
  FlatSlotArray* GrowToCover(std::uint64_t off) REQUIRES(grow_mu_);

  const std::uint64_t table_;
  const std::uint64_t base_;
  const std::uint64_t span_;

  // Current slot array; written only under grow_mu_, read lock-free.
  std::atomic<FlatSlotArray*> arr_;
  // Serializes growth, tombstone writes, and quiescent publishes (see header comment).
  Spinlock grow_mu_;
  // Arrays replaced by growth, awaiting an epoch grace period (or destruction).
  std::vector<FlatSlotArray*> retired_ GUARDED_BY(grow_mu_);
};

}  // namespace doppel

#endif  // DOPPEL_SRC_STORE_FLAT_TABLE_H_
