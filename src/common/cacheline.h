// Cache-line sizing and padding utilities.
//
// Contended per-core state (counters, phase acknowledgements, slice headers) must live on
// its own cache line or cross-core traffic erases the benefit of splitting the data in the
// first place (§4 of the paper).
#ifndef DOPPEL_SRC_COMMON_CACHELINE_H_
#define DOPPEL_SRC_COMMON_CACHELINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace doppel {

// Destructive interference size; x86-64 lines are 64 bytes. We deliberately do not use
// std::hardware_destructive_interference_size because libstdc++ makes it an ABI-variable
// constant and warns on use in headers.
inline constexpr std::size_t kCacheLineSize = 64;

// Wraps T so that consecutive array elements never share a cache line.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  CacheAligned() = default;
  explicit CacheAligned(T v) : value(std::move(v)) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }

 private:
  // Round sizeof(T) up to a cache-line multiple.
  char padding_[(kCacheLineSize - (sizeof(T) % kCacheLineSize)) % kCacheLineSize == 0
                    ? kCacheLineSize
                    : (kCacheLineSize - (sizeof(T) % kCacheLineSize)) % kCacheLineSize]{};
};

// A monotonically increasing per-core counter on its own cache line. Used for commit
// counters, abort counters, and phase acknowledgement words.
struct alignas(kCacheLineSize) PaddedCounter {
  std::atomic<std::uint64_t> value{0};

  std::uint64_t Load() const { return value.load(std::memory_order_relaxed); }
  void Add(std::uint64_t n) { value.fetch_add(n, std::memory_order_relaxed); }
  void Store(std::uint64_t n) { value.store(n, std::memory_order_relaxed); }
};
static_assert(sizeof(PaddedCounter) == kCacheLineSize);

// Compiler/CPU pause hint for spin loops.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_CACHELINE_H_
