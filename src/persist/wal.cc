#include "src/persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>

#include "src/common/dassert.h"
#include "src/txn/apply.h"

namespace doppel {
namespace {

// On-disk transaction entry:
//   u32 payload_len (bytes after this field)
//   u64 commit_tid
//   u16 op_count
//   per op: u8 opcode, u64 key.hi, u64 key.lo, i64 n, i64 order.primary,
//           i64 order.secondary, u32 core, u32 topk_k, u32 payload_len, bytes payload
template <typename T>
void PutRaw(std::vector<char>& out, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

void PutOp(std::vector<char>& out, const PendingWrite& w) {
  PutRaw(out, static_cast<std::uint8_t>(w.op));
  PutRaw(out, w.record->key().hi);
  PutRaw(out, w.record->key().lo);
  PutRaw(out, w.n);
  PutRaw(out, w.order.primary);
  PutRaw(out, w.order.secondary);
  PutRaw(out, w.core);
  PutRaw(out, static_cast<std::uint32_t>(w.record->topk_k()));
  PutRaw(out, static_cast<std::uint32_t>(w.payload.size()));
  out.insert(out.end(), w.payload.begin(), w.payload.end());
}

struct ReplayOp {
  OpCode op;
  Key key;
  std::int64_t n;
  OrderKey order;
  std::uint32_t core;
  std::uint32_t topk_k;
  std::string payload;
};

struct ReplayTxn {
  std::uint64_t tid;
  std::vector<ReplayOp> ops;
};

class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : p_(data), end_(data + size) {}

  template <typename T>
  bool Read(T* out) {
    if (p_ + sizeof(T) > end_) {
      return false;
    }
    std::memcpy(out, p_, sizeof(T));
    p_ += sizeof(T);
    return true;
  }

  bool ReadBytes(std::string* out, std::size_t len) {
    if (p_ + len > end_) {
      return false;
    }
    out->assign(p_, len);
    p_ += len;
    return true;
  }

  bool AtEnd() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path, std::uint64_t flush_interval_us)
    : path_(std::move(path)), flush_interval_us_(flush_interval_us) {
  fd_ = ::open(path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  DOPPEL_CHECK(fd_ >= 0);
  flusher_ = std::thread([this] { FlusherMain(); });
}

WriteAheadLog::~WriteAheadLog() {
  stop_.store(true, std::memory_order_release);
  flusher_.join();
  Flush();
  ::close(fd_);
}

void WriteAheadLog::Append(int worker_id, std::uint64_t commit_tid,
                           const std::vector<PendingWrite>& writes,
                           const std::vector<PendingWrite>& split_writes) {
  const std::size_t n_ops = writes.size() + split_writes.size();
  if (n_ops == 0) {
    return;  // read-only transactions need no redo entry
  }
  Buffer& buf = buffers_[static_cast<std::size_t>(worker_id) % kBuffers];
  buf.mu.lock();
  std::vector<char>& out = buf.bytes;
  const std::size_t len_pos = out.size();
  PutRaw(out, std::uint32_t{0});  // patched below
  PutRaw(out, commit_tid);
  PutRaw(out, static_cast<std::uint16_t>(n_ops));
  for (const PendingWrite& w : writes) {
    PutOp(out, w);
  }
  for (const PendingWrite& w : split_writes) {
    PutOp(out, w);
  }
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(out.size() - len_pos - sizeof(std::uint32_t));
  std::memcpy(out.data() + len_pos, &payload_len, sizeof(payload_len));
  buf.mu.unlock();
  appended_.fetch_add(1, std::memory_order_relaxed);
}

void WriteAheadLog::FlushLocked() {
  std::vector<char> gathered;
  for (Buffer& buf : buffers_) {
    buf.mu.lock();
    if (!buf.bytes.empty()) {
      gathered.insert(gathered.end(), buf.bytes.begin(), buf.bytes.end());
      buf.bytes.clear();
    }
    buf.mu.unlock();
  }
  if (gathered.empty()) {
    return;
  }
  std::size_t off = 0;
  while (off < gathered.size()) {
    const ssize_t n = ::write(fd_, gathered.data() + off, gathered.size() - off);
    DOPPEL_CHECK(n > 0);
    off += static_cast<std::size_t>(n);
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

void WriteAheadLog::Flush() {
  file_mu_.lock();
  FlushLocked();
  file_mu_.unlock();
}

void WriteAheadLog::FlusherMain() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(flush_interval_us_));
    Flush();
  }
}

std::uint64_t WriteAheadLog::Replay(const std::string& path, Store* store) {
  std::ifstream in(path, std::ios::binary);
  DOPPEL_CHECK(in.good());
  const std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  std::vector<ReplayTxn> txns;
  Cursor outer(data.data(), data.size());
  while (!outer.AtEnd()) {
    std::uint32_t len = 0;
    if (!outer.Read(&len)) {
      break;  // torn length prefix
    }
    ReplayTxn txn;
    // Bound the entry body; a torn final batch yields a short read and stops replay.
    std::string body;
    if (!outer.ReadBytes(&body, len)) {
      break;
    }
    Cursor entry(body.data(), body.size());
    std::uint16_t n_ops = 0;
    if (!entry.Read(&txn.tid) || !entry.Read(&n_ops)) {
      break;
    }
    bool ok = true;
    for (std::uint16_t i = 0; i < n_ops && ok; ++i) {
      ReplayOp op;
      std::uint8_t code = 0;
      std::uint32_t payload_len = 0;
      ok = entry.Read(&code) && entry.Read(&op.key.hi) && entry.Read(&op.key.lo) &&
           entry.Read(&op.n) && entry.Read(&op.order.primary) &&
           entry.Read(&op.order.secondary) && entry.Read(&op.core) &&
           entry.Read(&op.topk_k) && entry.Read(&payload_len) &&
           entry.ReadBytes(&op.payload, payload_len);
      op.op = static_cast<OpCode>(code);
      if (ok) {
        txn.ops.push_back(std::move(op));
      }
    }
    if (!ok) {
      break;
    }
    txns.push_back(std::move(txn));
  }

  // Redo in commit-TID order (TIDs are unique: worker id lives in the low bits).
  std::sort(txns.begin(), txns.end(),
            [](const ReplayTxn& a, const ReplayTxn& b) { return a.tid < b.tid; });
  for (const ReplayTxn& txn : txns) {
    for (const ReplayOp& op : txn.ops) {
      Record* r = store->GetOrCreate(op.key, OpRecordType(op.op),
                                     op.topk_k == 0 ? TopKSet::kDefaultK : op.topk_k);
      PendingWrite w;
      w.record = r;
      w.op = op.op;
      w.n = op.n;
      w.order = op.order;
      w.core = op.core;
      w.payload = op.payload;
      r->LockOcc();
      const bool was_present = r->PresentLocked();
      ApplyWriteToRecord(w);
      if (!was_present) {
        // Keep the ordered index consistent on recovery so range scans see redone rows.
        store->index().Insert(op.key, r);
      }
      r->UnlockOccSetTid(txn.tid);
    }
  }
  return txns.size();
}

}  // namespace doppel
