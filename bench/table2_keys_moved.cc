// Table 2: "The number of keys Doppel moves for different values of alpha in the INCRZ
// benchmark", plus the fraction of requests those keys absorb.
#include <memory>

#include "bench/bench_common.h"
#include "src/common/zipf.h"
#include "src/workload/incr.h"

namespace doppel {
namespace {

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const std::uint64_t keys = flags.Keys(100000);
  const double alphas[] = {0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0};

  std::printf("Table 2: keys Doppel splits under INCRZ\n");
  std::printf("threads=%d keys=%llu\n\n", flags.ResolvedThreads(),
              static_cast<unsigned long long>(keys));

  Table table({"alpha", "# Moved", "% Reqs"});
  for (double alpha : alphas) {
    const ZipfianGenerator zipf(keys, alpha);
    auto db = std::make_unique<Database>(
        bench::BaseOptions(flags, Protocol::kDoppel, keys * 2));
    PopulateIncr(db->store(), keys);
    RunMetrics m = RunWorkload(*db, MakeIncrZFactory(&zipf),
                               flags.MeasureMs(/*default_seconds=*/0.5));
    const double reqs = zipf.TopMass(m.split_records) * 100.0;
    table.AddRow({FormatDouble(alpha, 1), std::to_string(m.split_records),
                  FormatDouble(reqs, 1)});
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
