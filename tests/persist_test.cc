// Tests for the asynchronous batched redo log and recovery replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/core/database.h"
#include "src/persist/wal.h"
#include "src/workload/driver.h"
#include "src/workload/incr.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::IntAt;

std::string TempLogPath(const char* tag) {
  return std::string(::testing::TempDir().empty() ? "/tmp" : "/tmp") + "/doppel_wal_" +
         tag + "_" + std::to_string(::getpid()) + ".log";
}

PendingWrite IntWrite(Record* r, OpCode op, std::int64_t n) {
  PendingWrite w;
  w.record = r;
  w.op = op;
  w.n = n;
  return w;
}

TEST(Wal, AppendFlushReplayRoundTrip) {
  const std::string path = TempLogPath("roundtrip");
  Store source(64);
  source.LoadInt(Key::FromU64(1), 0);
  Record* r = source.Find(Key::FromU64(1));
  {
    WriteAheadLog wal(path, 1000);
    std::vector<PendingWrite> ws;
    ws.push_back(IntWrite(r, OpCode::kAdd, 5));
    wal.Append(0, 256, ws, {});
    ws.clear();
    ws.push_back(IntWrite(r, OpCode::kAdd, 7));
    wal.Append(1, 513, ws, {});
    EXPECT_EQ(wal.appended_txns(), 2u);
  }  // destructor flushes

  Store recovered(64);
  recovered.LoadInt(Key::FromU64(1), 0);  // same initial load as the original store
  EXPECT_EQ(WriteAheadLog::Replay(path, &recovered), 2u);
  EXPECT_EQ(IntAt(recovered, Key::FromU64(1)), 12);
  std::remove(path.c_str());
}

TEST(Wal, ReadOnlyTransactionsNotLogged) {
  const std::string path = TempLogPath("readonly");
  {
    WriteAheadLog wal(path, 1000);
    wal.Append(0, 256, {}, {});
    EXPECT_EQ(wal.appended_txns(), 0u);
  }
  Store recovered(64);
  EXPECT_EQ(WriteAheadLog::Replay(path, &recovered), 0u);
  std::remove(path.c_str());
}

TEST(Wal, ReplayOrdersByCommitTid) {
  const std::string path = TempLogPath("tidorder");
  Store source(64);
  source.LoadInt(Key::FromU64(1), 0);
  Record* r = source.Find(Key::FromU64(1));
  {
    WriteAheadLog wal(path, 1000);
    // Appended out of TID order (different workers flush interleaved in real runs):
    // PutInt(9) at tid 1024 must apply after PutInt(4) at tid 512.
    std::vector<PendingWrite> ws;
    ws.push_back(IntWrite(r, OpCode::kPutInt, 9));
    wal.Append(0, 1024, ws, {});
    ws.clear();
    ws.push_back(IntWrite(r, OpCode::kPutInt, 4));
    wal.Append(1, 512, ws, {});
  }
  Store recovered(64);
  EXPECT_EQ(WriteAheadLog::Replay(path, &recovered), 2u);
  EXPECT_EQ(IntAt(recovered, Key::FromU64(1)), 9);
  std::remove(path.c_str());
}

TEST(Wal, ComplexOpsRoundTrip) {
  const std::string path = TempLogPath("complex");
  Store source(64);
  source.LoadTopK(Key::FromU64(2), 3);
  source.LoadOrdered(Key::FromU64(3), OrderedTuple{});
  source.LoadBytes(Key::FromU64(4), "");
  {
    WriteAheadLog wal(path, 1000);
    std::vector<PendingWrite> ws;
    PendingWrite topk;
    topk.record = source.Find(Key::FromU64(2));
    topk.op = OpCode::kTopKInsert;
    topk.order = OrderKey{10, 1};
    topk.core = 1;
    topk.payload = "entry";
    ws.push_back(topk);
    PendingWrite oput;
    oput.record = source.Find(Key::FromU64(3));
    oput.op = OpCode::kOPut;
    oput.order = OrderKey{7, 0};
    oput.core = 0;
    oput.payload = "winner";
    ws.push_back(oput);
    PendingWrite bytes;
    bytes.record = source.Find(Key::FromU64(4));
    bytes.op = OpCode::kPutBytes;
    bytes.payload = "blob-data";
    ws.push_back(bytes);
    wal.Append(0, 256, ws, {});
  }
  Store recovered(64);
  recovered.LoadTopK(Key::FromU64(2), 3);
  recovered.LoadOrdered(Key::FromU64(3), OrderedTuple{});
  recovered.LoadBytes(Key::FromU64(4), "");
  EXPECT_EQ(WriteAheadLog::Replay(path, &recovered), 1u);
  const auto topk = std::get<TopKSet>(recovered.ReadSnapshot(Key::FromU64(2)).value);
  ASSERT_EQ(topk.size(), 1u);
  EXPECT_EQ(topk.items()[0].payload, "entry");
  EXPECT_EQ(std::get<OrderedTuple>(recovered.ReadSnapshot(Key::FromU64(3)).value).payload,
            "winner");
  EXPECT_EQ(std::get<std::string>(recovered.ReadSnapshot(Key::FromU64(4)).value),
            "blob-data");
  std::remove(path.c_str());
}

TEST(Wal, TornTailIgnored) {
  const std::string path = TempLogPath("torn");
  Store source(64);
  source.LoadInt(Key::FromU64(1), 0);
  Record* r = source.Find(Key::FromU64(1));
  {
    WriteAheadLog wal(path, 1000);
    std::vector<PendingWrite> ws;
    ws.push_back(IntWrite(r, OpCode::kAdd, 5));
    wal.Append(0, 256, ws, {});
  }
  // Corrupt: append a truncated entry (length prefix promises more bytes than exist).
  {
    FILE* f = std::fopen(path.c_str(), "ab");
    const std::uint32_t bogus_len = 1000;
    std::fwrite(&bogus_len, sizeof(bogus_len), 1, f);
    const char junk[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  Store recovered(64);
  recovered.LoadInt(Key::FromU64(1), 0);
  EXPECT_EQ(WriteAheadLog::Replay(path, &recovered), 1u);  // only the intact entry
  EXPECT_EQ(IntAt(recovered, Key::FromU64(1)), 5);
  std::remove(path.c_str());
}

// End-to-end: run the contended workload with logging enabled under each protocol;
// replaying the log into a freshly-loaded store reproduces the exact final counter.
class WalEndToEnd : public ::testing::TestWithParam<Protocol> {};

INSTANTIATE_TEST_SUITE_P(Protocols, WalEndToEnd,
                         ::testing::Values(Protocol::kDoppel, Protocol::kOcc,
                                           Protocol::kTwoPL),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

TEST_P(WalEndToEnd, RecoveryReproducesFinalState) {
  const std::string path = TempLogPath(ProtocolName(GetParam()));
  std::int64_t live_value = 0;
  std::uint64_t committed = 0;
  {
    Options o;
    o.protocol = GetParam();
    o.num_workers = 2;
    o.phase_us = 2000;
    o.store_capacity = 1 << 10;
    o.wal_path = path.c_str();
    Database db(o);
    PopulateIncr(db.store(), 16);
    std::atomic<std::uint64_t> hot{0};
    RunMetrics m = RunWorkload(db, MakeIncr1Factory(16, 100, &hot), 300, 50);
    committed = m.stats.committed;
    live_value = IntAt(db.store(), IncrKey(0));
    db.wal()->Flush();
    EXPECT_EQ(db.wal()->appended_txns(), committed);
  }
  ASSERT_EQ(live_value, static_cast<std::int64_t>(committed));

  Store recovered(1 << 10);
  PopulateIncr(recovered, 16);  // recovery starts from the same initial load
  EXPECT_EQ(WriteAheadLog::Replay(path, &recovered), committed);
  EXPECT_EQ(IntAt(recovered, IncrKey(0)), live_value);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace doppel
