// The "Atomic" scheme (§8.1-8.2): operations execute with hardware atomic instructions
// and no other concurrency control. It is an upper bound for locking schemes on
// single-operation transactions (INCR1/INCRZ); multi-operation transactions are NOT
// serializable under this engine. Absent int records read as 0.
#ifndef DOPPEL_SRC_TXN_ATOMIC_ENGINE_H_
#define DOPPEL_SRC_TXN_ATOMIC_ENGINE_H_

#include "src/store/store.h"
#include "src/txn/engine.h"

namespace doppel {

class AtomicEngine : public Engine {
 public:
  explicit AtomicEngine(Store& store) : store_(store) {}

  const char* name() const override { return "atomic"; }

  Record* Route(Worker& w, const Key& key, RecordType type, std::size_t topk_k) override;
  Record* RouteDelete(Worker& w, const Key& key) override;
  void Read(Worker& w, Txn& txn, Record* r, ReadResult* out) override;
  // Applies the operation immediately; nothing is buffered.
  void Write(Worker& w, Txn& txn, PendingWrite&& pw) override;
  // Best-effort ordered traversal with no phantom protection (like Read, it carries the
  // engine's non-serializable semantics).
  std::size_t Scan(Worker& w, Txn& txn, std::uint64_t table, std::uint64_t lo,
                   std::uint64_t hi, std::size_t limit, ScanFn fn) override;
  TxnStatus Commit(Worker& w, Txn& txn) override;
  void Abort(Worker& w, Txn& txn) override;

 private:
  Store& store_;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_TXN_ATOMIC_ENGINE_H_
