// Read-your-own-writes for Txn::Scan, per engine: a transaction's own not-yet-committed
// inserts (writes to records absent from the index) must appear in its scan results, in
// key order, interleaved with committed rows — the gap documented after PR 2.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "src/core/doppel_engine.h"
#include "src/txn/atomic_engine.h"
#include "src/txn/occ_engine.h"
#include "src/txn/twopl_engine.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::EngineHarness;
using testing::IntAt;

constexpr std::uint64_t kTable = 4;

class ScanRyowTest : public ::testing::Test {
 protected:
  void UseOcc() {
    h_.engine = std::make_unique<OccEngine>(h_.store);
    h_.MakeWorkers(2);
  }
  void UseTwoPL() {
    TwoPLEngine::Limits limits;
    limits.shared_spin = 1 << 10;
    limits.exclusive_spin = 1 << 10;
    limits.upgrade_spin = 1 << 10;
    h_.engine = std::make_unique<TwoPLEngine>(h_.store, limits);
    h_.MakeWorkers(2);
  }
  void UseDoppel() {
    // No coordinator: the worker stays in the joined phase, where Doppel scans are OCC
    // scans — this covers the DoppelEngine::Scan entry point.
    h_.engine = std::make_unique<DoppelEngine>(h_.store, opts_, stop_);
    h_.MakeWorkers(2);
    static_cast<DoppelEngine&>(*h_.engine).RegisterWorkers(h_.workers);
  }
  void UseAtomic() {
    h_.engine = std::make_unique<AtomicEngine>(h_.store);
    h_.MakeWorkers(2);
  }

  // Committed rows 10/20/30 with values 1/2/3.
  void PopulateRows() {
    h_.store.LoadInt(Key::Table(kTable, 10), 1);
    h_.store.LoadInt(Key::Table(kTable, 20), 2);
    h_.store.LoadInt(Key::Table(kTable, 30), 3);
  }

  // The shared scenario: buffered inserts before, between, and after the committed keys
  // must merge into one ascending stream, observable before AND after commit.
  void RunMergedInsertScenario() {
    PopulateRows();
    std::vector<std::uint64_t> keys;
    std::vector<std::int64_t> vals;
    h_.MustCommit(*h_.workers[0], [&](Txn& t) {
      keys.clear();
      vals.clear();
      t.PutInt(Key::Table(kTable, 5), 50);
      t.PutInt(Key::Table(kTable, 25), 250);
      t.PutInt(Key::Table(kTable, 35), 350);
      const std::size_t n =
          t.Scan(kTable, 0, 100, 0, [&](const Key& k, const ReadResult& v) {
            keys.push_back(k.lo);
            vals.push_back(v.i);
            return true;
          });
      EXPECT_EQ(n, 6u);
    });
    ASSERT_EQ(keys, (std::vector<std::uint64_t>{5, 10, 20, 25, 30, 35}));
    EXPECT_EQ(vals, (std::vector<std::int64_t>{50, 1, 2, 250, 3, 350}));
    // After commit, a fresh transaction (other worker) sees the same six rows.
    h_.MustCommit(*h_.workers[1], [&](Txn& t) {
      EXPECT_EQ(t.Scan(kTable, 0, 100, 0,
                       [](const Key&, const ReadResult&) { return true; }),
                6u);
    });
    EXPECT_EQ(IntAt(h_.store, Key::Table(kTable, 25)), 250);
  }

  std::atomic<bool> stop_{false};
  Options opts_;
  EngineHarness h_;
};

TEST_F(ScanRyowTest, OccMergesOwnInserts) {
  UseOcc();
  RunMergedInsertScenario();
}

TEST_F(ScanRyowTest, TwoPLMergesOwnInserts) {
  UseTwoPL();
  RunMergedInsertScenario();
}

TEST_F(ScanRyowTest, DoppelMergesOwnInserts) {
  UseDoppel();
  RunMergedInsertScenario();
}

TEST_F(ScanRyowTest, AtomicSeesOwnInserts) {
  // The Atomic engine applies writes immediately, so visibility is via the index itself;
  // the merge path must not double-count.
  UseAtomic();
  RunMergedInsertScenario();
}

TEST_F(ScanRyowTest, LimitCountsMergedStream) {
  UseOcc();
  PopulateRows();
  h_.MustCommit(*h_.workers[0], [&](Txn& t) {
    t.PutInt(Key::Table(kTable, 5), 50);
    t.PutInt(Key::Table(kTable, 25), 250);
    std::vector<std::uint64_t> keys;
    EXPECT_EQ(t.Scan(kTable, 0, 100, 3, [&](const Key& k, const ReadResult&) {
      keys.push_back(k.lo);
      return true;
    }), 3u);
    EXPECT_EQ(keys, (std::vector<std::uint64_t>{5, 10, 20}));
  });
}

TEST_F(ScanRyowTest, EarlyStopEndsMergedStream) {
  UseOcc();
  PopulateRows();
  h_.MustCommit(*h_.workers[0], [&](Txn& t) {
    t.PutInt(Key::Table(kTable, 5), 50);
    std::size_t calls = 0;
    EXPECT_EQ(t.Scan(kTable, 0, 100, 0, [&](const Key&, const ReadResult&) {
      return ++calls < 2;  // stop after the second row (own 5, committed 10)
    }), 2u);
    EXPECT_EQ(calls, 2u);
  });
}

TEST_F(ScanRyowTest, OwnUpdateOfPresentRowNotDuplicated) {
  UseOcc();
  PopulateRows();
  h_.MustCommit(*h_.workers[0], [&](Txn& t) {
    t.PutInt(Key::Table(kTable, 20), 999);  // update, not insert
    t.PutInt(Key::Table(kTable, 15), 150);  // insert
    std::vector<std::uint64_t> keys;
    std::int64_t at20 = 0;
    t.Scan(kTable, 0, 100, 0, [&](const Key& k, const ReadResult& v) {
      keys.push_back(k.lo);
      if (k.lo == 20) {
        at20 = v.i;
      }
      return true;
    });
    EXPECT_EQ(keys, (std::vector<std::uint64_t>{10, 15, 20, 30}));
    EXPECT_EQ(at20, 999);
  });
}

TEST_F(ScanRyowTest, SplittableOpsToAbsentRecordsAreVisible) {
  UseOcc();
  PopulateRows();
  h_.MustCommit(*h_.workers[0], [&](Txn& t) {
    t.Add(Key::Table(kTable, 17), 7);  // absent: Add treats the record as 0
    std::int64_t at17 = -1;
    const std::size_t n = t.Scan(kTable, 15, 19, 0, [&](const Key& k, const ReadResult& v) {
      EXPECT_EQ(k.lo, 17u);
      at17 = v.i;
      return true;
    });
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(at17, 7);
  });
}

TEST_F(ScanRyowTest, OwnInsertsOutsideWindowStayInvisible) {
  UseOcc();
  PopulateRows();
  h_.MustCommit(*h_.workers[0], [&](Txn& t) {
    t.PutInt(Key::Table(kTable, 200), 1);          // outside [0, 100]
    t.PutInt(Key::Table(kTable + 1, 50), 1);       // other table
    EXPECT_EQ(t.Scan(kTable, 0, 100, 0,
                     [](const Key&, const ReadResult&) { return true; }),
              3u);
  });
}

TEST_F(ScanRyowTest, MergeSpansPartitionBoundaries) {
  UseOcc();
  h_.store.ConfigureTable(kTable, PartitionConfig{4, 8, false});  // stripes of 16 keys
  h_.store.LoadInt(Key::Table(kTable, 10), 1);
  h_.store.LoadInt(Key::Table(kTable, 40), 4);
  h_.MustCommit(*h_.workers[0], [&](Txn& t) {
    t.PutInt(Key::Table(kTable, 20), 200);  // stripe 1, between the committed rows
    t.PutInt(Key::Table(kTable, 50), 500);  // stripe 3, after them
    std::vector<std::uint64_t> keys;
    t.Scan(kTable, 0, 60, 0, [&](const Key& k, const ReadResult&) {
      keys.push_back(k.lo);
      return true;
    });
    EXPECT_EQ(keys, (std::vector<std::uint64_t>{10, 20, 40, 50}));
  });
}

}  // namespace
}  // namespace doppel
