#include "src/store/flat_table.h"

#include <algorithm>
#include <bit>

#include "src/common/dassert.h"

namespace doppel {

namespace {
constexpr std::size_t kDefaultInitialSlots = 4096;
}  // namespace

Record* FlatTable::Tombstone() {
  // Any stable non-record address works; a function-local static avoids inventing an
  // integer-derived pointer value.
  static int tag;
  return reinterpret_cast<Record*>(&tag);
}

FlatTable::FlatTable(std::uint64_t table, std::uint64_t base, std::uint64_t span,
                     std::size_t initial_slots)
    : table_(table), base_(base), span_(span) {
  DOPPEL_CHECK(span_ > 0);
  std::size_t n = initial_slots == 0 ? kDefaultInitialSlots : initial_slots;
  n = static_cast<std::size_t>(std::min<std::uint64_t>(std::bit_ceil(n), span_));
  // Construction precedes any concurrent access; relaxed publication suffices here,
  // later readers are ordered by whatever published the FlatTable itself.
  arr_.store(new FlatSlotArray(n), std::memory_order_relaxed);
}

FlatTable::~FlatTable() {
  // Destructor: no concurrent access remains.
  delete arr_.load(std::memory_order_relaxed);
  SpinlockGuard lock(grow_mu_);
  for (FlatSlotArray* a : retired_) {
    delete a;
  }
  retired_.clear();
}

FlatSlotArray* FlatTable::GrowToCover(std::uint64_t off) {
  // grow_mu_ held: arr_ has a single writer, so the relaxed load reads our own last
  // published value.
  FlatSlotArray* old = arr_.load(std::memory_order_relaxed);
  if (off < old->size) {
    return old;
  }
  const std::uint64_t want =
      std::min<std::uint64_t>(std::max<std::uint64_t>(std::bit_ceil(off + 1),
                                                      old->size * 2),
                              span_);
  auto* fresh = new FlatSlotArray(static_cast<std::size_t>(want));
  for (std::size_t i = 0; i < old->size; ++i) {
    // Copy under grow_mu_: tombstone writes and publishes are excluded (they take the
    // lock), so no sentinel or quiescent publish can be dropped. Concurrent CAS
    // installs into `old` may be lost — a future flat miss, nothing more.
    fresh->slots[i].store(old->slots[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  arr_.store(fresh, std::memory_order_release);
  // `old` may still be held by lock-free readers for the rest of their transaction:
  // park it for the epoch reclaimer (DrainRetired) instead of freeing it.
  retired_.push_back(old);
  return fresh;
}

void FlatTable::TryInstall(std::uint64_t lo, Record* r) {
  const std::uint64_t off = lo - base_;
  if (off >= span_) {
    return;
  }
  FlatSlotArray* a = arr_.load(std::memory_order_acquire);
  if (off >= a->size) {
    SpinlockGuard lock(grow_mu_);
    a = GrowToCover(off);
  }
  Record* expected = nullptr;
  // CAS from nullptr only: a live pointer for this key is the same pointer (the map
  // resolves one record per key), and a tombstone must win against the install of a
  // record the sweeper is killing.
  a->slots[off].compare_exchange_strong(expected, r, std::memory_order_release,
                                        std::memory_order_relaxed);
}

void FlatTable::WriteTombstone(std::uint64_t lo) {
  const std::uint64_t off = lo - base_;
  if (off >= span_) {
    return;
  }
  SpinlockGuard lock(grow_mu_);
  FlatSlotArray* a = GrowToCover(off);
  // Unconditional: erases the victim's pointer and any racing install of it (see the
  // slot lifecycle in the header). Release so a reader that sees the sentinel is also
  // ordered after the kill it represents.
  a->slots[off].store(Tombstone(), std::memory_order_release);
}

void FlatTable::ClearTombstone(std::uint64_t lo) {
  const std::uint64_t off = lo - base_;
  if (off >= span_) {
    return;
  }
  SpinlockGuard lock(grow_mu_);
  // grow_mu_ held: single arr_ writer, relaxed reads our own last published value.
  FlatSlotArray* a = arr_.load(std::memory_order_relaxed);
  if (off >= a->size) {
    return;
  }
  Record* expected = Tombstone();
  // CAS, not a store: only the sentinel this reclaim planted may be removed. (Between
  // tombstone and clear nothing else can write the slot, so failure means the slot was
  // never grown to hold the sentinel in the first place.)
  a->slots[off].compare_exchange_strong(expected, nullptr, std::memory_order_release,
                                        std::memory_order_relaxed);
}

void FlatTable::Publish(std::uint64_t lo, Record* r) {
  const std::uint64_t off = lo - base_;
  if (off >= span_) {
    return;
  }
  SpinlockGuard lock(grow_mu_);
  // grow_mu_ held: single arr_ writer, relaxed reads our own last published value.
  FlatSlotArray* a = arr_.load(std::memory_order_relaxed);
  if (off >= a->size) {
    if (r == nullptr) {
      return;  // clearing a slot that never existed is a no-op
    }
    a = GrowToCover(off);
  }
  a->slots[off].store(r, std::memory_order_release);
}

FlatTable::SlotState FlatTable::Probe(std::uint64_t lo) const {
  const std::uint64_t off = lo - base_;
  if (off >= span_) {
    return SlotState::kMiss;
  }
  const FlatSlotArray* a = arr_.load(std::memory_order_acquire);
  if (off >= a->size) {
    return SlotState::kMiss;
  }
  Record* r = a->slots[off].load(std::memory_order_acquire);
  if (r == nullptr) {
    return SlotState::kEmpty;
  }
  return r == Tombstone() ? SlotState::kTombstone : SlotState::kLive;
}

void FlatTable::DrainRetired(std::vector<FlatSlotArray*>* out) {
  SpinlockGuard lock(grow_mu_);
  out->insert(out->end(), retired_.begin(), retired_.end());
  retired_.clear();
}

}  // namespace doppel
