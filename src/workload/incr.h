// INCR1 and INCRZ microbenchmark workloads (§8.2-8.4).
//
// INCR1: "There are 1M 16-byte keys, and each transaction increments the value of a
// single key. There is a single popular key and we vary the percentage of transactions
// which increment that key."
//
// INCRZ: "Each transaction increments the value of one key, chosen with a Zipfian
// distribution of popularity."
#ifndef DOPPEL_SRC_WORKLOAD_INCR_H_
#define DOPPEL_SRC_WORKLOAD_INCR_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/common/zipf.h"
#include "src/core/database.h"

namespace doppel {

// Key layout shared by the INCR benchmarks: table 0, ids [0, num_keys).
inline Key IncrKey(std::uint64_t i) { return Key::Table(0, i); }

// Pre-creates all records with value 0 ("we pre-allocate all the records", §8.1).
void PopulateIncr(Store& store, std::uint64_t num_keys);

class Incr1Source : public TxnSource {
 public:
  // `hot_index` may be shared across workers and rotated while running (Fig. 10).
  Incr1Source(std::uint64_t num_keys, std::uint32_t hot_pct,
              const std::atomic<std::uint64_t>* hot_index)
      : num_keys_(num_keys), hot_pct_(hot_pct), hot_index_(hot_index) {}

  TxnRequest Next(Worker& w) override;

 private:
  const std::uint64_t num_keys_;
  const std::uint32_t hot_pct_;
  const std::atomic<std::uint64_t>* hot_index_;
};

class IncrZSource : public TxnSource {
 public:
  // `zipf` is shared (its Next is const and thread-safe given a worker-local Rng).
  explicit IncrZSource(const ZipfianGenerator* zipf) : zipf_(zipf) {}

  TxnRequest Next(Worker& w) override;

 private:
  const ZipfianGenerator* zipf_;
};

// Source factories for Database::Start.
SourceFactory MakeIncr1Factory(std::uint64_t num_keys, std::uint32_t hot_pct,
                               const std::atomic<std::uint64_t>* hot_index);
SourceFactory MakeIncrZFactory(const ZipfianGenerator* zipf);

}  // namespace doppel

#endif  // DOPPEL_SRC_WORKLOAD_INCR_H_
