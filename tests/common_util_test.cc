// Tests for the platform substrate: histograms, spinlocks, barriers, hashing, stats.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/barrier.h"
#include "src/common/cacheline.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/spinlock.h"
#include "src/common/stats.h"
#include "src/common/timing.h"

namespace doppel {
namespace {

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, SingleValue) {
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1000.0);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  // Bucketed upper bound: within the configured 6.25% relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 1000.0, 1000.0 * 0.0625 + 1);
}

TEST(Histogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(100), 15u);
}

TEST(Histogram, PercentilesOrdered) {
  LatencyHistogram h;
  for (std::uint64_t i = 1; i <= 10000; ++i) {
    h.Record(i * 100);
  }
  const std::uint64_t p50 = h.Percentile(50);
  const std::uint64_t p90 = h.Percentile(90);
  const std::uint64_t p99 = h.Percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(static_cast<double>(p50), 500000.0, 500000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(p99), 990000.0, 990000.0 * 0.07);
}

TEST(Histogram, MeanIsExact) {
  LatencyHistogram h;
  h.Record(100);
  h.Record(200);
  h.Record(600);
  EXPECT_DOUBLE_EQ(h.Mean(), 300.0);
}

TEST(Histogram, MergeCombines) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(100);
  b.Record(300);
  b.Record(100000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 100000u);
  EXPECT_NEAR(a.Mean(), (100.0 + 300.0 + 100000.0) / 3.0, 1e-9);
}

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.Record(12345);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
}

TEST(Histogram, HugeValuesClampToLastBucket) {
  LatencyHistogram h;
  h.Record(~0ULL);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), ~0ULL);
  EXPECT_GT(h.Percentile(100), 0u);
}

TEST(Histogram, PercentileClampsOutOfRangeP) {
  LatencyHistogram h;
  h.Record(500);
  EXPECT_EQ(h.Percentile(-5), h.Percentile(0));
  EXPECT_EQ(h.Percentile(200), h.Percentile(100));
}

TEST(Spinlock, MutualExclusion) {
  Spinlock mu;
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        mu.lock();
        counter++;
        mu.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 80000);
}

TEST(Spinlock, TryLock) {
  Spinlock mu;
  EXPECT_TRUE(mu.try_lock());
  EXPECT_TRUE(mu.is_locked());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(RWSpinlock, ManyConcurrentReaders) {
  RWSpinlock mu;
  EXPECT_TRUE(mu.try_lock_shared());
  EXPECT_TRUE(mu.try_lock_shared());
  EXPECT_EQ(mu.reader_count(), 2u);
  EXPECT_FALSE(mu.try_lock());  // writer blocked by readers
  mu.unlock_shared();
  mu.unlock_shared();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(RWSpinlock, WriterExcludesReaders) {
  RWSpinlock mu;
  mu.lock();
  EXPECT_TRUE(mu.has_writer());
  EXPECT_FALSE(mu.try_lock_shared());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock_shared());
  mu.unlock_shared();
}

TEST(RWSpinlock, UpgradeSoleReader) {
  RWSpinlock mu;
  mu.lock_shared();
  EXPECT_TRUE(mu.try_upgrade());
  EXPECT_TRUE(mu.has_writer());
  mu.unlock();
}

TEST(RWSpinlock, UpgradeFailsWithOtherReaders) {
  RWSpinlock mu;
  mu.lock_shared();
  mu.lock_shared();
  EXPECT_FALSE(mu.try_upgrade());
  mu.unlock_shared();
  EXPECT_TRUE(mu.try_upgrade());  // now the sole reader: upgrade consumes the shared hold
  mu.unlock();
}

TEST(RWSpinlock, TimedLockGivesUp) {
  RWSpinlock mu;
  mu.lock_shared();
  mu.lock_shared();
  EXPECT_FALSE(mu.try_lock_for(1000));     // two readers hold it
  EXPECT_FALSE(mu.try_upgrade_for(1000));  // an upgrade cannot pass the other reader
  mu.unlock_shared();
  EXPECT_TRUE(mu.try_upgrade_for(1000));  // sole reader now
  mu.unlock();
  EXPECT_TRUE(mu.try_lock_for(1000));
  mu.unlock();
}

TEST(RWSpinlock, WriterPreferenceBlocksNewReaders) {
  RWSpinlock mu;
  mu.lock_shared();
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    mu.lock();  // announces intent, then blocks on the reader
    writer_done = true;
    mu.unlock();
  });
  // Give the writer time to announce.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(mu.try_lock_shared());  // new readers barred while a writer waits
  EXPECT_FALSE(writer_done.load());
  mu.unlock_shared();
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(RWSpinlock, StressReadersAndWriters) {
  RWSpinlock mu;
  std::int64_t shared_value = 0;
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        mu.lock();
        shared_value++;
        shared_value++;
        mu.unlock();
      }
    });
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        mu.lock_shared();
        if (shared_value % 2 != 0) {
          torn = true;
        }
        mu.unlock_shared();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(shared_value, 20000);
}

TEST(SpinBarrier, SynchronizesAndIsReusable) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        barrier.Wait();
        // After the barrier, every thread of round r has incremented.
        if (counter.load() < (r + 1) * kThreads) {
          mismatch = true;
        }
        barrier.Wait();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(counter.load(), kThreads * kRounds);
}

TEST(CacheAligned, NoFalseSharingLayout) {
  static_assert(sizeof(CacheAligned<int>) % kCacheLineSize == 0);
  static_assert(alignof(CacheAligned<int>) == kCacheLineSize);
  static_assert(sizeof(PaddedCounter) == kCacheLineSize);
  CacheAligned<int> arr[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&arr[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&arr[1].value);
  EXPECT_GE(b - a, kCacheLineSize);
}

TEST(Hash, Mix64Avalanches) {
  // Flipping one input bit must flip many output bits.
  const std::uint64_t h0 = Mix64(0x1234);
  const std::uint64_t h1 = Mix64(0x1235);
  EXPECT_GE(__builtin_popcountll(h0 ^ h1), 16);
  EXPECT_NE(Mix64(0), Mix64(1));
}

TEST(Hash, HashBytesDiffers) {
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

TEST(RunStats, MeanMinMax) {
  RunStats s;
  s.Add(10.0);
  s.Add(20.0);
  s.Add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 12.0);
  EXPECT_DOUBLE_EQ(s.min(), 6.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
}

TEST(RunStats, EmptyIsZero) {
  RunStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(Stats, LeastSquaresSlope) {
  EXPECT_NEAR(LeastSquaresSlope({1, 2, 3, 4}, {2, 4, 6, 8}), 2.0, 1e-9);
  EXPECT_NEAR(LeastSquaresSlope({1, 2, 3}, {5, 5, 5}), 0.0, 1e-9);
}

TEST(Timing, MonotonicAndStopwatch) {
  const std::uint64_t a = NowNanos();
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const std::uint64_t b = NowNanos();
  EXPECT_GT(b, a);
  EXPECT_GE(sw.ElapsedNanos(), 4000000u);
  EXPECT_GE(b - a, 4000000u);
  EXPECT_DOUBLE_EQ(NanosToSeconds(1500000000ULL), 1.5);
  EXPECT_EQ(MillisToNanos(3), 3000000ULL);
  EXPECT_EQ(MicrosToNanos(3), 3000ULL);
}

}  // namespace
}  // namespace doppel
