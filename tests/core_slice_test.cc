// Tests for per-core slices (§4): initialization, application, and the key property —
// partitioning committed operations across slices and merging equals serial application.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rand.h"
#include "src/core/slice.h"
#include "src/txn/apply.h"

namespace doppel {
namespace {

PendingWrite MakeIntWrite(Record* r, OpCode op, std::int64_t n) {
  PendingWrite w;
  w.record = r;
  w.op = op;
  w.n = n;
  return w;
}

// Builds an ordered/top-K write with its operand block stored in `arena`.
PendingWrite MakeOrderedWrite(WriteArena& arena, Record* r, OpCode op, OrderKey order,
                              std::uint16_t core, std::string_view payload) {
  PendingWrite w;
  w.record = r;
  w.op = op;
  w.core = core;
  StoreOperand(arena, op, order, payload, &w);
  return w;
}

TEST(Slice, ResetPerOp) {
  Slice s;
  s.Reset(OpCode::kAdd, 0);
  EXPECT_EQ(s.acc, 0);
  EXPECT_FALSE(s.dirty);
  s.Reset(OpCode::kMult, 0);
  EXPECT_EQ(s.acc, 1);
  s.Reset(OpCode::kTopKInsert, 4);
  EXPECT_EQ(s.topk.k(), 4u);
  s.Reset(OpCode::kMax, 0);
  EXPECT_FALSE(s.has);
}

TEST(Slice, ApplyAddAccumulates) {
  WriteArena arena;
  Slice s;
  s.Reset(OpCode::kAdd, 0);
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  SliceApply(s, MakeIntWrite(&r, OpCode::kAdd, 5), arena);
  SliceApply(s, MakeIntWrite(&r, OpCode::kAdd, -2), arena);
  EXPECT_EQ(s.acc, 3);
  EXPECT_TRUE(s.dirty);
  EXPECT_EQ(s.writes, 2u);
}

TEST(Slice, ApplyMaxTracksHas) {
  WriteArena arena;
  Slice s;
  s.Reset(OpCode::kMax, 0);
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  SliceApply(s, MakeIntWrite(&r, OpCode::kMax, -7), arena);
  EXPECT_TRUE(s.has);
  EXPECT_EQ(s.acc, -7);  // first operand absorbed even though negative
  SliceApply(s, MakeIntWrite(&r, OpCode::kMax, -9), arena);
  EXPECT_EQ(s.acc, -7);
}

TEST(Slice, MergeCleanSliceIsNoop) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  r.LockOcc();
  r.SetInt(10);
  r.UnlockOccSetTid(4);
  Slice s;
  s.Reset(OpCode::kAdd, 0);
  MergeSliceToGlobal(&r, OpCode::kAdd, s, 99);
  EXPECT_EQ(r.ReadInt().value, 10);
  EXPECT_EQ(Record::TidOf(r.LoadTidWord()), 4u);  // tid untouched
}

TEST(Slice, MergeBumpsTid) {
  WriteArena arena;
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  Slice s;
  s.Reset(OpCode::kAdd, 0);
  SliceApply(s, MakeIntWrite(&r, OpCode::kAdd, 1), arena);
  MergeSliceToGlobal(&r, OpCode::kAdd, s, 42);
  EXPECT_EQ(Record::TidOf(r.LoadTidWord()), 42u);
  EXPECT_EQ(r.ReadInt().value, 1);
  EXPECT_TRUE(r.ReadInt().present);
}

TEST(Slice, MergeMaxRespectsAbsent) {
  WriteArena arena;
  Record r(Key::FromU64(1), RecordType::kInt64, 0);  // absent
  Slice s;
  s.Reset(OpCode::kMax, 0);
  SliceApply(s, MakeIntWrite(&r, OpCode::kMax, -5), arena);
  MergeSliceToGlobal(&r, OpCode::kMax, s, 10);
  EXPECT_TRUE(r.ReadInt().present);
  EXPECT_EQ(r.ReadInt().value, -5);  // absent -> operand, not max(0, -5)
}

TEST(Slice, MergeOPutWinsByOrderCore) {
  WriteArena arena;
  Record r(Key::FromU64(1), RecordType::kOrdered, 0);
  r.LockOcc();
  r.MutateComplex([](ComplexValue& cv) {
    std::get<OrderedTuple>(cv) = OrderedTuple{OrderKey{10, 0}, 2, "global"};
  });
  r.UnlockOccSetTid(4);
  Slice lose;
  lose.Reset(OpCode::kOPut, 0);
  // Same order, lower core: must lose.
  SliceApply(lose,
             MakeOrderedWrite(arena, &r, OpCode::kOPut, OrderKey{10, 0}, 1, "slice"),
             arena);
  MergeSliceToGlobal(&r, OpCode::kOPut, lose, 8);
  EXPECT_EQ(std::get<OrderedTuple>(r.ReadComplex().value).payload, "global");

  Slice win;
  win.Reset(OpCode::kOPut, 0);
  // Same order, higher core: must win.
  SliceApply(win,
             MakeOrderedWrite(arena, &r, OpCode::kOPut, OrderKey{10, 0}, 3, "slice"),
             arena);
  MergeSliceToGlobal(&r, OpCode::kOPut, win, 10);
  EXPECT_EQ(std::get<OrderedTuple>(r.ReadComplex().value).payload, "slice");
}

// ---- The §4 correctness property, per splittable operation ----
//
// Applying a random operation stream against the global record serially must equal
// partitioning the stream across J per-core slices and merging them.
struct SliceCase {
  OpCode op;
  int seed;
};

class SliceEquivalenceTest : public ::testing::TestWithParam<SliceCase> {};

TEST_P(SliceEquivalenceTest, PartitionedMergeEqualsSerial) {
  const OpCode op = GetParam().op;
  Rng rng(static_cast<std::uint64_t>(GetParam().seed) * 7919 + 3);
  const int cores = 2 + static_cast<int>(rng.NextBounded(4));
  // Mult streams stay short so products fit in int64 (operands are 1 or 2).
  const int n = op == OpCode::kMult ? 1 + static_cast<int>(rng.NextBounded(40))
                                    : 1 + static_cast<int>(rng.NextBounded(200));
  const std::size_t topk_k = 1 + rng.NextBounded(8);
  const RecordType type = OpRecordType(op);

  Record serial(Key::FromU64(1), type, topk_k);
  Record split(Key::FromU64(2), type, topk_k);
  std::vector<Slice> slices(static_cast<std::size_t>(cores));
  for (auto& s : slices) {
    s.Reset(op, topk_k);
  }

  WriteArena arena;
  for (int i = 0; i < n; ++i) {
    const std::uint16_t core = static_cast<std::uint16_t>(rng.NextBounded(cores));
    const OrderKey order{static_cast<std::int64_t>(rng.NextBounded(50)),
                         static_cast<std::int64_t>(rng.NextBounded(3))};
    const std::string payload = "pl" + std::to_string(i);
    PendingWrite w;
    w.op = op;
    w.core = core;
    // Mult uses operands in {1, 2} to stay away from overflow.
    w.n = op == OpCode::kMult
              ? static_cast<std::int64_t>(1 + rng.NextBounded(2))
              : static_cast<std::int64_t>(rng.NextBounded(2000)) - 1000;
    StoreOperand(arena, op, order, payload, &w);

    w.record = &serial;
    serial.LockOcc();
    ApplyWriteToRecord(w, arena);
    serial.UnlockOccSetTid(static_cast<std::uint64_t>(2 * i + 2));

    w.record = &split;
    SliceApply(slices[core], w, arena);
  }
  for (const Slice& s : slices) {
    MergeSliceToGlobal(&split, op, s, 1000);
  }

  const auto a = serial.ReadValue();
  const auto b = split.ReadValue();
  ASSERT_EQ(a.present, b.present);
  if (type == RecordType::kInt64) {
    EXPECT_EQ(std::get<std::int64_t>(a.value), std::get<std::int64_t>(b.value));
  } else if (type == RecordType::kOrdered) {
    EXPECT_EQ(std::get<OrderedTuple>(a.value), std::get<OrderedTuple>(b.value));
  } else {
    EXPECT_EQ(std::get<TopKSet>(a.value), std::get<TopKSet>(b.value));
  }
}

std::vector<SliceCase> AllSliceCases() {
  std::vector<SliceCase> cases;
  for (OpCode op : {OpCode::kAdd, OpCode::kMax, OpCode::kMin, OpCode::kMult,
                    OpCode::kOPut, OpCode::kTopKInsert}) {
    for (int seed = 0; seed < 8; ++seed) {
      cases.push_back(SliceCase{op, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, SliceEquivalenceTest,
                         ::testing::ValuesIn(AllSliceCases()),
                         [](const ::testing::TestParamInfo<SliceCase>& info) {
                           return std::string(OpName(info.param.op)) + "_" +
                                  std::to_string(info.param.seed);
                         });

// Merge cost must not depend on how many operations were applied (§4 requirement 4):
// the slice's state is bounded, so merging after 10 vs 100000 ops touches equal state.
TEST(Slice, StateSizeIndependentOfOpCount) {
  Record r(Key::FromU64(1), RecordType::kTopK, 5);
  Slice s;
  s.Reset(OpCode::kTopKInsert, 5);
  Rng rng(11);
  WriteArena arena;
  for (int i = 0; i < 100000; ++i) {
    arena.Clear();  // one operand block per iteration, like a per-txn arena reset
    PendingWrite w = MakeOrderedWrite(
        arena, &r, OpCode::kTopKInsert,
        OrderKey{static_cast<std::int64_t>(rng.NextBounded(1000000)), 0}, 0, "x");
    SliceApply(s, w, arena);
  }
  EXPECT_LE(s.topk.size(), 5u);
  EXPECT_EQ(s.writes, 100000u);
}

}  // namespace
}  // namespace doppel
