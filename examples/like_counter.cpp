// The paper's motivating social-network scenario (§7): users "like" pages; the per-page
// like counter of a viral page is extremely contended. Demonstrates that Doppel detects
// the hot counter, splits it across cores, and still returns exact counts.
//
// Usage: like_counter [seconds]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/core/database.h"
#include "src/workload/driver.h"
#include "src/workload/like.h"

int main(int argc, char** argv) {
  using namespace doppel;
  const double seconds = argc > 1 ? std::atof(argv[1]) : 1.0;

  LikeConfig cfg;
  cfg.num_users = 100000;
  cfg.num_pages = 100000;
  cfg.write_pct = 90;  // a like storm
  cfg.alpha = 1.4;     // a few pages are viral
  const ZipfianGenerator zipf(cfg.num_pages, cfg.alpha);

  Options opts;
  opts.protocol = Protocol::kDoppel;
  Database db(opts);
  PopulateLike(db.store(), cfg);

  RunMetrics m = RunWorkload(db, MakeLikeFactory(cfg, &zipf),
                             static_cast<std::uint64_t>(seconds * 1000));

  std::printf("LIKE storm: %.2fM txns/sec over %.2fs with %d workers\n",
              m.throughput / 1e6, m.seconds, db.num_workers());
  std::printf("hot counters split by the classifier: %zu\n", m.split_records);
  // The counts are exact despite per-core splitting: total likes recorded in page
  // counters equals the number of committed write transactions.
  std::int64_t total_likes = 0;
  for (std::uint64_t p = 0; p < cfg.num_pages; ++p) {
    const auto snap = db.store().ReadSnapshot(LikePageKey(p));
    if (snap.present) {
      total_likes += std::get<std::int64_t>(snap.value);
    }
  }
  std::printf("sum(page like counters) = %lld, committed write txns = %llu => %s\n",
              static_cast<long long>(total_likes),
              static_cast<unsigned long long>(m.stats.committed_by_tag[kTagWrite]),
              total_likes == static_cast<std::int64_t>(m.stats.committed_by_tag[kTagWrite])
                  ? "EXACT"
                  : "MISMATCH");
  return 0;
}
