// The split plan: which records are split, for which operation, this split phase.
//
// Built by the coordinator at the JOINED -> SPLIT barrier; read by every worker after the
// barrier release ("Each core reads this list before the start of the next split phase",
// §5.5). Entries also accumulate the split-phase statistics workers report while
// reconciling (write sampling and stash sampling) that drive un-split decisions.
#ifndef DOPPEL_SRC_CORE_SPLIT_PLAN_H_
#define DOPPEL_SRC_CORE_SPLIT_PLAN_H_

#include <atomic>
#include <cstdint>
#include <deque>

#include "src/store/record.h"
#include "src/txn/op.h"

namespace doppel {

struct SplitEntry {
  SplitEntry(Record* r, OpCode o, std::size_t k) : record(r), op(o), topk_k(k) {}
  SplitEntry(const SplitEntry&) = delete;
  SplitEntry& operator=(const SplitEntry&) = delete;

  Record* const record;
  const OpCode op;
  const std::size_t topk_k;

  // Filled in by workers during reconciliation (atomic adds; read by the coordinator
  // after all workers acknowledged the SPLIT -> JOINED transition).
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> stashes{0};
};

struct SplitPlan {
  std::uint64_t version = 0;
  // deque: SplitEntry is non-movable (atomics) and entry addresses must stay stable.
  std::deque<SplitEntry> entries;

  std::size_t size() const { return entries.size(); }
  bool empty() const { return entries.empty(); }
};

}  // namespace doppel

#endif  // DOPPEL_SRC_CORE_SPLIT_PLAN_H_
