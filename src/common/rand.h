// Fast per-worker pseudo-random number generation.
//
// Workers generate millions of transactions per second; std::mt19937 plus
// std::uniform_int_distribution is both slow and non-portable across libstdc++ versions.
// xoshiro256** is the standard fast generator for this use.
#ifndef DOPPEL_SRC_COMMON_RAND_H_
#define DOPPEL_SRC_COMMON_RAND_H_

#include <cstdint>

namespace doppel {

// SplitMix64: used to seed xoshiro and as a cheap integer mixer.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna. Each worker owns one instance (never shared).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) {
      word = SplitMix64(sm);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Lemire's multiply-shift rejection-free approximation: the bias
  // is < 2^-32 for the bounds used here (≤ 2^24 keys), far below workload noise.
  std::uint64_t NextBounded(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // True with probability pct/100.
  bool Chance(unsigned pct) { return NextBounded(100) < pct; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t s_[4];
};

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_RAND_H_
