// Quickstart: open a Doppel database, pipeline transactions asynchronously, read the
// results.
//
// Build: cmake --build build --target quickstart && ./build/quickstart
#include <cstdio>
#include <vector>

#include "src/core/database.h"

int main() {
  using namespace doppel;

  // 1. Configure. Protocol::kDoppel enables phase reconciliation; kOcc / kTwoPL /
  //    kAtomic select the baseline engines with the same transaction API.
  Options opts;
  opts.protocol = Protocol::kDoppel;
  opts.num_workers = 2;
  Database db(opts);

  // 2. Pre-load some records (non-transactional, before Start).
  const Key counter = Key::FromU64(1);
  const Key greeting = Key::FromU64(2);
  db.store().LoadInt(counter, 0);
  db.store().LoadBytes(greeting, "hello");

  // 3. Start worker threads (and Doppel's coordinator).
  db.Start();

  // 4a. Asynchronous submission: Submit returns a TxnHandle immediately; the transaction
  //     runs on a worker (retrying conflicts and stashes internally). Pipelining 1000
  //     increments costs ~one inbox push each, not 1000 round trips.
  std::vector<TxnHandle> handles;
  handles.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(db.Submit([&](Txn& txn) {
      txn.Add(counter, 1);                  // commutative, splittable under contention
      txn.Max(counter, 0);                  // no-op here; Max(k, n) keeps the larger value
    }));
  }
  // Completion can also be observed via callback instead of waiting; it fires on the
  // committing worker's thread.
  handles.back().OnComplete([](const TxnResult& res) {
    std::printf("last increment committed after %u attempt(s)\n", res.attempts);
  });
  for (TxnHandle& h : handles) {
    h.Wait();
  }

  // 4b. Synchronous convenience: Execute == Submit + Wait.
  std::int64_t observed = 0;
  std::string text;
  db.Execute([&](Txn& txn) {
    observed = txn.GetInt(counter).value_or(-1);
    text = txn.GetBytes(greeting).value_or("");
    txn.PutBytes(greeting, text + ", doppel");
  });

  // 5. Shut down: in-flight submissions drain and outstanding per-core state reconciles
  //    before Stop returns.
  db.Stop();

  std::printf("counter = %lld (expected 1000)\n", static_cast<long long>(observed));
  std::printf("greeting = \"%s\"\n", text.c_str());
  const auto stats = db.CollectStats();
  std::printf("committed=%llu conflicts=%llu\n",
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.conflicts));
  return observed == 1000 ? 0 : 1;
}
