#include "src/workload/driver.h"

#include <chrono>
#include <thread>

#include "src/common/timing.h"

namespace doppel {

RunMetrics RunWorkload(Database& db, SourceFactory factory, std::uint64_t measure_ms,
                       std::uint64_t warmup_ms) {
  db.Start(std::move(factory));
  std::this_thread::sleep_for(std::chrono::milliseconds(warmup_ms));

  const std::uint64_t commits_before = db.SampleTotalCommits();
  Stopwatch clock;
  std::this_thread::sleep_for(std::chrono::milliseconds(measure_ms));
  const std::uint64_t commits_after = db.SampleTotalCommits();
  const double seconds = clock.ElapsedSeconds();

  db.Stop();

  RunMetrics m;
  m.seconds = seconds;
  m.committed = commits_after - commits_before;
  m.throughput = static_cast<double>(m.committed) / seconds;
  m.stats = db.CollectStats();
  m.split_records = db.LastPlanSize();
  return m;
}

RunMetrics RunWorkloadTimeSeries(Database& db, SourceFactory factory,
                                 std::uint64_t measure_ms, std::uint64_t sample_ms,
                                 TimeSeries* series,
                                 const std::function<void(std::uint64_t ms)>& on_tick) {
  db.Start(std::move(factory));

  const std::uint64_t start_ns = NowNanos();
  std::uint64_t prev_commits = db.SampleTotalCommits();
  std::uint64_t elapsed_ms = 0;
  while (elapsed_ms < measure_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sample_ms));
    elapsed_ms = (NowNanos() - start_ns) / 1000000;
    const std::uint64_t commits = db.SampleTotalCommits();
    series->seconds.push_back(static_cast<double>(NowNanos() - start_ns) * 1e-9);
    series->throughput.push_back(static_cast<double>(commits - prev_commits) /
                                 (static_cast<double>(sample_ms) * 1e-3));
    prev_commits = commits;
    if (on_tick) {
      on_tick(elapsed_ms);
    }
  }
  const std::uint64_t total = db.SampleTotalCommits();
  const double seconds = static_cast<double>(NowNanos() - start_ns) * 1e-9;
  db.Stop();

  RunMetrics m;
  m.seconds = seconds;
  m.committed = total;
  m.throughput = static_cast<double>(total) / seconds;
  m.stats = db.CollectStats();
  m.split_records = db.LastPlanSize();
  return m;
}

}  // namespace doppel
