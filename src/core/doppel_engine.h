// Phase reconciliation (§4-5): the paper's contribution.
//
// DoppelEngine layers phases on top of the Silo OCC protocol it inherits:
//  * joined phase — every access is plain OCC (OccEngine), while commit-time conflicts
//    feed the per-worker conflict samplers (§5.5);
//  * split phase — accesses to split records either accumulate into the worker's per-core
//    slice (the record's selected operation) or stash the transaction (anything else,
//    including all reads); everything else is still OCC;
//  * reconciliation — while acknowledging the SPLIT -> JOINED transition each worker
//    merges its dirty slices into the global store (Fig. 4) and reports write/stash
//    samples that drive un-split decisions.
//
// The coordinator thread (src/core/coordinator.h) owns the phase clock and runs the
// classifier at the two barriers via BarrierBuildPlan / BarrierAfterReconcile.
#ifndef DOPPEL_SRC_CORE_DOPPEL_ENGINE_H_
#define DOPPEL_SRC_CORE_DOPPEL_ENGINE_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/options.h"
#include "src/core/phase_controller.h"
#include "src/core/runner.h"
#include "src/core/sampler.h"
#include "src/core/slice.h"
#include "src/core/split_plan.h"
#include "src/txn/occ_engine.h"

namespace doppel {

class DoppelEngine : public OccEngine {
 public:
  DoppelEngine(Store& store, const Options& opts, const std::atomic<bool>& stop);

  const char* name() const override { return "doppel"; }

  // Must be called once, before any worker runs; installs per-worker Doppel state.
  void RegisterWorkers(const std::vector<std::unique_ptr<Worker>>& workers);

  // Optional redo log used when draining stashed transactions (must match Database's).
  // Also the checkpoint target: the coordinator snapshots the store into it at
  // joined-phase quiesce barriers.
  void SetWal(WriteAheadLog* wal) {
    runner_cfg_.wal = wal;
    wal_ = wal;
  }

  // Database's degraded latch, so drained stashes honor read-only mode like every
  // other RunPendingTxn site (must match Database's runner config).
  void SetDegradedFlag(const std::atomic<bool>* degraded) {
    runner_cfg_.degraded = degraded;
  }

  // ---- Engine interface ----
  void Read(Worker& w, Txn& txn, Record* r, ReadResult* out) override;
  void Write(Worker& w, Txn& txn, PendingWrite&& pw) override;
  // Joined phase: plain OCC scan. Split phase: a scan whose window contains a split
  // record dooms the transaction for stashing (§7) — the stash feeds the same pressure
  // signal (ShouldHurrySplitEnd) as split-record point reads.
  std::size_t Scan(Worker& w, Txn& txn, std::uint64_t table, std::uint64_t lo,
                   std::uint64_t hi, std::size_t limit, ScanFn fn) override;
  TxnStatus Commit(Worker& w, Txn& txn) override;
  void BetweenTxns(Worker& w) override;
  Phase CurrentPhase(const Worker& w) const override { return w.LoadPhase(); }
  void OnConflict(Worker& w, Txn& txn) override;
  void OnStash(Worker& w, const StashSignal& s) override;

  // ---- Manual data labeling (§5.5): always split `key` for `op` ----
  void MarkSplitManually(const Key& key, OpCode op, std::size_t topk_k = TopKSet::kDefaultK);

  // ---- Coordinator interface ----
  PhaseController& controller() { return ctrl_; }
  // Racy peek between barriers: is a split phase worth starting?
  bool HasSplitCandidates() const;
  // At the JOINED -> SPLIT barrier (workers quiesced): classify, build + publish the plan.
  void BarrierBuildPlan();
  // At the SPLIT -> JOINED barrier (all slices merged): retention / un-split decisions.
  void BarrierAfterReconcile();
  // Racy peek between barriers: would TuneAdaptiveTables narrow any adaptive table's
  // boundaries right now? Lets the coordinator run a tune-only quiesce barrier for
  // insert-heavy tables that never produce split candidates.
  bool IndexTunePending();
  // At any quiesce barrier (workers acked, not yet released): adaptive narrowing.
  // BarrierBuildPlan runs it too; this entry point serves tune-only barriers.
  void BarrierTuneIndexes() { TuneAdaptiveTables(); }
  // Racy peek between barriers: is a checkpoint due (interval elapsed or explicitly
  // requested)? Lets the coordinator run a checkpoint-only quiesce barrier when no
  // split candidates exist.
  bool CheckpointDue() const;
  // At a joined-phase quiesce barrier (slices merged, workers acked, not yet
  // released): take the checkpoint if one is due. The barrier is the free consistency
  // point phase reconciliation gives us — the store holds exactly the committed
  // prefix, and every commit's redo entry is already in the WAL buffers.
  void BarrierMaybeCheckpoint();
  // Racy peek between barriers: should joined-phase barriers emit replication cuts?
  // True while logging and either Options::replication_cuts forces it or a replica
  // holds a retention lease. Like CheckpointDue, lets the coordinator run a cut-only
  // quiesce barrier on an uncontended system (which otherwise skips barriers
  // entirely — and a replica would never see a publishable cut).
  bool ReplicationCutDue() const;
  // At a joined-phase quiesce barrier (slices merged, workers acked, not yet
  // released): append a replication-cut record at the max committed TID. Runs before
  // BarrierMaybeCheckpoint at the same sites, so a checkpoint's sealed log ends at the
  // cut and a bootstrapping replica starts cut-aligned.
  void BarrierEmitReplicationCut();
  // Marks a checkpoint due at the next quiesce barrier (Database::RequestCheckpoint).
  void RequestCheckpoint() {
    checkpoint_requested_.store(true, std::memory_order_relaxed);
  }
  // Split-phase feedback (§5.4): too many stashes => hurry the next joined phase.
  bool ShouldHurrySplitEnd() const;
  void WaitForWorkerAcks() const;  // spins until every worker acked `pending`

  // ---- Introspection (tests, reports) ----
  std::size_t LastPlanSize() const { return last_plan_size_.load(std::memory_order_relaxed); }
  // Snapshot of the most recent split plan: (key, selected op). Thread-safe.
  std::vector<std::pair<Key, OpCode>> LastPlanEntries() const;
  std::uint64_t cycles() const { return cycle_; }
  std::uint64_t stash_pressure() const {
    return stash_pressure_.load(std::memory_order_relaxed);
  }

 private:
  struct DoppelWorkerState : WorkerExt {
    explicit DoppelWorkerState(const ClassifierOptions& c) : sampler(c.sample_every) {}
    std::vector<Slice> slices;
    ConflictSampler sampler;
  };

  static DoppelWorkerState& Ext(Worker& w) {
    return static_cast<DoppelWorkerState&>(*w.ext);
  }

  // Worker-side transition protocol (§5.4), called between transactions.
  void MaybeTransition(Worker& w);
  void MergeWorkerSlices(Worker& w);  // reconciliation, Fig. 4
  void DrainStash(Worker& w);         // restart stashed txns before acking a split phase
  void PrepareSlices(Worker& w);      // size + reset slices from the published plan

  // ---- Adaptive index partitioning (coordinator thread, barriers only) ----
  // Telemetry deltas for one table since its last tuning evaluation.
  struct TuneDeltas {
    std::uint64_t inserts = 0;        // new structural inserts across all stripes
    std::uint64_t hot_inserts = 0;    // ... the busiest single stripe's share of them
    std::uint64_t conflicts = 0;      // new scan conflicts across all stripes
    std::uint64_t conflict_total = 0; // cumulative (the next interval's mark)
  };
  static TuneDeltas ComputeTuneDeltas(const OrderedIndex::TableIndex& t);
  // Spread [0, max_key] over the table's stripe capacity.
  static unsigned NarrowTargetShift(const OrderedIndex::TableIndex& t);
  bool WouldNarrow(const OrderedIndex::TableIndex& t, const TuneDeltas& d) const;
  void TuneAdaptiveTables();

  std::uint64_t SampleCommits() const;

  Options opts_;
  RunnerConfig runner_cfg_;
  WriteAheadLog* wal_ = nullptr;
  std::atomic<bool> checkpoint_requested_{false};
  std::uint64_t last_checkpoint_ns_ = 0;  // coordinator thread only (barriers)
  // Checkpoint-failure retry state (coordinator thread only, like last_checkpoint_ns_):
  // after a rolled-back checkpoint, no retry before backoff_until, doubling per
  // consecutive failure up to 2^5 x the base interval.
  std::uint64_t checkpoint_backoff_until_ns_ = 0;
  std::uint32_t checkpoint_consecutive_failures_ = 0;
  const std::atomic<bool>& stop_;
  PhaseController ctrl_;
  std::vector<Worker*> workers_;

  // Valid from BarrierBuildPlan until BarrierAfterReconcile; workers read it only inside
  // the split phase those barriers bracket.
  std::unique_ptr<SplitPlan> plan_;
  std::atomic<std::size_t> last_plan_size_{0};
  mutable Spinlock plan_snapshot_mu_;
  std::vector<std::pair<Key, OpCode>> plan_snapshot_ GUARDED_BY(plan_snapshot_mu_);

  // Classifier cross-cycle state (coordinator thread only).
  struct Labeled {
    Record* record;
    OpCode op;
  };
  std::vector<Labeled> manual_;
  std::vector<Labeled> retained_;
  std::unordered_map<Record*, std::uint64_t> suppressed_until_;
  std::uint64_t cycle_ = 0;

  // Split-phase feedback.
  std::atomic<std::uint64_t> stash_pressure_{0};
  std::uint64_t split_start_commits_ = 0;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_CORE_DOPPEL_ENGINE_H_
