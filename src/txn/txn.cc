#include "src/txn/txn.h"

#include <algorithm>
#include <utility>

#include "src/common/dassert.h"
#include "src/txn/apply.h"
#include "src/txn/engine.h"
#include "src/txn/signals.h"
#include "src/txn/worker.h"

namespace doppel {

const char* OpName(OpCode op) {
  switch (op) {
    case OpCode::kGet:
      return "Get";
    case OpCode::kPutInt:
      return "PutInt";
    case OpCode::kPutBytes:
      return "PutBytes";
    case OpCode::kAdd:
      return "Add";
    case OpCode::kMax:
      return "Max";
    case OpCode::kMin:
      return "Min";
    case OpCode::kMult:
      return "Mult";
    case OpCode::kOPut:
      return "OPut";
    case OpCode::kTopKInsert:
      return "TopKInsert";
    case OpCode::kDelete:
      return "Delete";
  }
  return "?";
}

int Txn::worker_id() const { return worker_->id; }

Rng& Txn::rng() { return worker_->rng; }

// ---- Own-write chains and the lazy write index -----------------------------------------

Txn::WriteSlot* Txn::WindexSlot(const Record* r) {
  // Fibonacci-mix the pointer (low bits are alignment zeros) and linear-probe.
  const std::uintptr_t h = reinterpret_cast<std::uintptr_t>(r) >> 4;
  std::size_t i =
      static_cast<std::size_t>((h * 0x9e3779b97f4a7c15ULL) >> 32) & windex_mask_;
  while (windex_[i].record != nullptr && windex_[i].record != r) {
    i = (i + 1) & windex_mask_;
  }
  return &windex_[i];
}

void Txn::BuildWriteIndex() {
  std::size_t want = 32;
  while (want < write_set_.size() * 4) {
    want <<= 1;
  }
  if (windex_.size() < want) {
    windex_.assign(want, WriteSlot{});
  } else {
    std::fill(windex_.begin(), windex_.end(), WriteSlot{});
  }
  windex_mask_ = windex_.size() - 1;
  for (std::uint32_t i = 0; i < write_set_.size(); ++i) {
    WriteSlot* s = WindexSlot(write_set_[i].record);
    if (s->record == nullptr) {
      s->record = write_set_[i].record;
      s->head = i;
    }
    s->tail = i;  // next-links are already correct; only the chain ends are indexed
  }
  windex_built_ = true;
}

void Txn::BufferWrite(PendingWrite&& w) {
  const std::uint32_t idx = static_cast<std::uint32_t>(write_set_.size());
  w.next = PendingWrite::kNoNext;
  if (windex_built_) {
    WriteSlot* s = WindexSlot(w.record);
    if (s->record == nullptr) {
      s->record = w.record;
      s->head = idx;
    } else {
      write_set_[s->tail].next = idx;
    }
    s->tail = idx;
    write_set_.push_back(w);
    // Keep the table under half load: rebuild re-probes chain ends from the (already
    // correct) next-links, so it must happen after this entry is linked in.
    if (write_set_.size() * 2 >= windex_.size()) {
      BuildWriteIndex();
    }
    return;
  }
  // Below the threshold: link by backward scan (the last entry for the record is the
  // chain tail), then push. Small sets make this cheaper than maintaining the table.
  for (std::uint32_t i = idx; i-- > 0;) {
    if (write_set_[i].record == w.record) {
      write_set_[i].next = idx;
      break;
    }
  }
  write_set_.push_back(w);
  if (write_set_.size() > kWriteIndexThreshold) {
    BuildWriteIndex();
  }
}

std::uint32_t Txn::OwnWriteHead(const Record* r) const {
  if (windex_built_) {
    WriteSlot* s = const_cast<Txn*>(this)->WindexSlot(r);
    return s->record == nullptr ? PendingWrite::kNoNext : s->head;
  }
  for (std::uint32_t i = 0; i < write_set_.size(); ++i) {
    if (write_set_[i].record == r) {
      return i;
    }
  }
  return PendingWrite::kNoNext;
}

const PendingWrite* Txn::FindOwnWrite(const Record* r) const {
  const std::uint32_t head = OwnWriteHead(r);
  return head == PendingWrite::kNoNext ? nullptr : &write_set_[head];
}

const std::uint32_t* Txn::CommitOrder(std::uint32_t* single) {
  const std::size_t n = write_set_.size();
  if (n <= 1) {
    *single = 0;
    return single;
  }
  // Sorting 4-byte indices instead of the 32-byte elements keeps the write set in
  // issue order (the WAL encodes it as issued, and the RYOW chains stay valid) and
  // touches a quarter of the bytes.
  commit_order_.resize(n);
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(n); ++i) {
    commit_order_[i] = i;
  }
  const auto& ws = write_set_;
  std::sort(commit_order_.begin(), commit_order_.end(),
            [&ws](std::uint32_t a, std::uint32_t b) {
              if (ws[a].record != ws[b].record) {
                return ws[a].record < ws[b].record;
              }
              return a < b;
            });
  return commit_order_.data();
}

void Txn::OverlayPending(Record* r, ReadResult* res) const {
  for (std::uint32_t i = OwnWriteHead(r); i != PendingWrite::kNoNext;
       i = write_set_[i].next) {
    ApplyWriteToResult(write_set_[i], arena_, res);
  }
}

std::optional<std::int64_t> Txn::GetInt(const Key& key) {
  if (stash_doomed_) {
    return std::nullopt;
  }
  Record* r = engine_->Route(*worker_, key, RecordType::kInt64, 0);
  ReadResult res;
  engine_->Read(*worker_, *this, r, &res);
  OverlayPending(r, &res);
  if (!res.present) {
    return std::nullopt;
  }
  return res.i;
}

std::optional<std::string> Txn::GetBytes(const Key& key) {
  if (stash_doomed_) {
    return std::nullopt;
  }
  Record* r = engine_->Route(*worker_, key, RecordType::kBytes, 0);
  ReadResult res;
  engine_->Read(*worker_, *this, r, &res);
  OverlayPending(r, &res);
  if (!res.present) {
    return std::nullopt;
  }
  return std::get<std::string>(std::move(res.complex));
}

std::optional<OrderedTuple> Txn::GetOrdered(const Key& key) {
  if (stash_doomed_) {
    return std::nullopt;
  }
  Record* r = engine_->Route(*worker_, key, RecordType::kOrdered, 0);
  ReadResult res;
  engine_->Read(*worker_, *this, r, &res);
  OverlayPending(r, &res);
  if (!res.present) {
    return std::nullopt;
  }
  return std::get<OrderedTuple>(std::move(res.complex));
}

std::optional<TopKSet> Txn::GetTopK(const Key& key, std::size_t k) {
  if (stash_doomed_) {
    return std::nullopt;
  }
  Record* r = engine_->Route(*worker_, key, RecordType::kTopK, k);
  ReadResult res;
  engine_->Read(*worker_, *this, r, &res);
  OverlayPending(r, &res);
  if (!res.present) {
    return std::nullopt;
  }
  return std::get<TopKSet>(std::move(res.complex));
}

void Txn::IssueWrite(const Key& key, OpCode op, std::int64_t n, const OrderKey& order,
                     std::string_view payload, std::size_t topk_k) {
  if (stash_doomed_) {
    return;  // the transaction will be stashed; all effects are discarded
  }
  Record* r = engine_->Route(*worker_, key, OpRecordType(op), topk_k);
  PendingWrite w;
  w.record = r;
  w.op = op;
  w.n = n;
  w.core = static_cast<std::uint16_t>(worker_->id);
  StoreOperand(arena_, op, order, payload, &w);
  engine_->Write(*worker_, *this, std::move(w));
}

void Txn::Delete(const Key& key) {
  if (stash_doomed_) {
    return;  // the transaction will be stashed; all effects are discarded
  }
  // Deletes adapt to the existing record's type (like kGet), so they route through the
  // type-agnostic path instead of IssueWrite's typed Route. Deleting a never-stored key
  // still buffers a write against the (absent) placeholder: the commit protocol locks
  // and validates it, which is what makes a delete/insert race serializable.
  Record* r = engine_->RouteDelete(*worker_, key);
  PendingWrite w;
  w.record = r;
  w.op = OpCode::kDelete;
  w.core = static_cast<std::uint16_t>(worker_->id);
  StoreOperand(arena_, OpCode::kDelete, OrderKey{}, {}, &w);
  engine_->Write(*worker_, *this, std::move(w));
}

void Txn::PutInt(const Key& key, std::int64_t v) {
  IssueWrite(key, OpCode::kPutInt, v, OrderKey{}, {}, 0);
}

void Txn::PutBytes(const Key& key, std::string_view v) {
  IssueWrite(key, OpCode::kPutBytes, 0, OrderKey{}, v, 0);
}

void Txn::Add(const Key& key, std::int64_t n) {
  IssueWrite(key, OpCode::kAdd, n, OrderKey{}, {}, 0);
}

void Txn::Max(const Key& key, std::int64_t n) {
  IssueWrite(key, OpCode::kMax, n, OrderKey{}, {}, 0);
}

void Txn::Min(const Key& key, std::int64_t n) {
  IssueWrite(key, OpCode::kMin, n, OrderKey{}, {}, 0);
}

void Txn::Mult(const Key& key, std::int64_t n) {
  IssueWrite(key, OpCode::kMult, n, OrderKey{}, {}, 0);
}

void Txn::OPut(const Key& key, OrderKey order, std::string_view payload) {
  IssueWrite(key, OpCode::kOPut, 0, order, payload, 0);
}

void Txn::TopKInsert(const Key& key, OrderKey order, std::string_view payload,
                     std::size_t k) {
  IssueWrite(key, OpCode::kTopKInsert, 0, order, payload, k);
}

std::size_t Txn::Scan(std::uint64_t table, std::uint64_t lo, std::uint64_t hi,
                      std::size_t limit, ScanFn fn) {
  if (stash_doomed_) {
    return 0;  // the transaction will be stashed; execution continues without effects
  }
  // Read-your-own-writes for inserts: a write-set record that is still absent from the
  // index (a not-yet-committed insert) is invisible to the engine scan, so the window's
  // own pending keys are merged into the result stream here, in key order. Write-set
  // entries for records the engine does visit are dropped on the key match below (the
  // engine already overlays pending writes onto visited snapshots).
  // The merge buffer is leased from per-transaction scratch (RAII move-out/move-back):
  // the common case allocates nothing, a nested scan finds an empty scratch and simply
  // pays a fresh allocation instead of corrupting this frame's merge state, and an
  // engine throw (2PL partition-lock timeout) still returns the grown buffer.
  ScanScratchLease own_lease(scan_own_);
  auto& own = own_lease.get();
  own.clear();
  for (const PendingWrite& pw : write_set_) {
    const Key& k = pw.record->key();
    if (k.hi == table && k.lo >= lo && k.lo <= hi) {
      own.emplace_back(k.lo, pw.record);
    }
  }
  if (own.empty()) {
    return engine_->Scan(*worker_, *this, table, lo, hi, limit, fn);
  }
  std::sort(own.begin(), own.end());
  own.erase(std::unique(own.begin(), own.end(),
                        [](const auto& a, const auto& b) { return a.first == b.first; }),
            own.end());

  std::size_t emitted = 0;
  bool stopped = false;
  std::size_t oi = 0;
  // Emits one pending-insert row (absent base + this transaction's buffered writes);
  // returns false once the user stops or the limit is reached.
  auto emit_own = [&](Record* r) {
    ReadResult base;  // absent
    OverlayPending(r, &base);
    if (!base.present) {
      return true;  // the buffered ops never made the record logically present
    }
    ++emitted;
    if (!fn(r->key(), base) || (limit != 0 && emitted >= limit)) {
      stopped = true;
      return false;
    }
    return true;
  };
  // The limit applies to the merged stream, enforced through the wrapped callback's
  // return value. Passing it through to the engine as well keeps the engine's own
  // bounding (snapshot caps, 2PL partition-lock early-out); its internal limit check
  // can never fire first because `emitted` >= engine-visited rows at every step.
  auto merged = [&](const Key& k, const ReadResult& v) {
    while (oi < own.size() && own[oi].first < k.lo) {
      if (!emit_own(own[oi++].second)) {
        return false;
      }
    }
    if (oi < own.size() && own[oi].first == k.lo) {
      ++oi;  // visited by the engine: the overlay already applied our writes
    }
    ++emitted;
    if (!fn(k, v) || (limit != 0 && emitted >= limit)) {
      stopped = true;
      return false;
    }
    return true;
  };
  engine_->Scan(*worker_, *this, table, lo, hi, limit, merged);
  if (stash_doomed_) {
    return emitted;  // doomed mid-scan (split window); all effects are discarded anyway
  }
  while (!stopped && oi < own.size()) {
    if (!emit_own(own[oi++].second)) {
      break;
    }
  }
  return emitted;
}

void Txn::UserAbort() { throw UserAbortSignal{}; }

}  // namespace doppel
