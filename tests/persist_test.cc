// Tests for the persistence directory: manifest, segmented group-commit redo logs,
// checkpoints, torn-tail handling, and TID-ordered (optionally parallel) recovery.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include "src/core/database.h"
#include "src/persist/checkpoint.h"
#include "src/persist/manifest.h"
#include "src/persist/wal.h"
#include "src/workload/driver.h"
#include "src/workload/incr.h"
#include "tests/persist_test_util.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::FreshDir;
using testing::IntAt;
using testing::ReadFileBytes;
using testing::RemoveDirRecursive;
using testing::WriteFileBytes;

constexpr std::size_t kSegmentHeaderBytes = 16;  // magic + version + segment number

// Operand storage for every PendingWrite these tests build. Tests run single-threaded
// and Append encodes synchronously, so one shared arena (never cleared) is fine.
WriteArena& TestArena() {
  static WriteArena arena;
  return arena;
}

PendingWrite IntWrite(Record* r, OpCode op, std::int64_t n) {
  PendingWrite w;
  w.record = r;
  w.op = op;
  w.n = n;
  return w;
}

std::string ActiveSegmentPath(const std::string& dir) {
  Manifest m;
  DOPPEL_CHECK(Manifest::Load(dir, &m));
  DOPPEL_CHECK(!m.live_segments.empty());
  return dir + "/" + Manifest::SegmentFileName(m.live_segments.back());
}

std::uint64_t FuzzSeed() {
  const char* env = std::getenv("DOPPEL_FUZZ_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0xfeedULL;
}

TEST(Manifest, SaveLoadRoundTrip) {
  const std::string dir = FreshDir("manifest");
  Manifest m;
  m.checkpoint = "ckpt-000007.ckpt";
  m.live_segments = {7, 9, 12};
  m.next_segment = 13;
  Manifest::Save(dir, m);
  Manifest loaded;
  ASSERT_TRUE(Manifest::Load(dir, &loaded));
  EXPECT_EQ(loaded.checkpoint, m.checkpoint);
  EXPECT_EQ(loaded.live_segments, m.live_segments);
  EXPECT_EQ(loaded.next_segment, 13u);
  RemoveDirRecursive(dir);
}

TEST(Manifest, MissingFileMeansFreshDirectory) {
  const std::string dir = FreshDir("manifest_missing");
  Manifest m;
  EXPECT_FALSE(Manifest::Load(dir, &m));
  EXPECT_TRUE(m.checkpoint.empty());
  EXPECT_TRUE(m.live_segments.empty());
  EXPECT_EQ(m.next_segment, 1u);
  RemoveDirRecursive(dir);
}

TEST(Wal, AppendFlushRecoverRoundTrip) {
  const std::string dir = FreshDir("roundtrip");
  Store source(64);
  source.LoadInt(Key::FromU64(1), 0);
  Record* r = source.Find(Key::FromU64(1));
  {
    WriteAheadLog wal(dir);
    wal.StartLogging();
    std::vector<PendingWrite> ws;
    ws.push_back(IntWrite(r, OpCode::kAdd, 5));
    wal.Append(0, 256, ws, {}, TestArena());
    ws.clear();
    ws.push_back(IntWrite(r, OpCode::kAdd, 7));
    wal.Append(1, 513, ws, {}, TestArena());
    EXPECT_EQ(wal.appended_txns(), 2u);
  }  // destructor flushes

  Store recovered(64);
  recovered.LoadInt(Key::FromU64(1), 0);  // same initial load as the original store
  WriteAheadLog reopened(dir);
  const RecoveryResult res = reopened.Recover(&recovered);
  EXPECT_EQ(res.replayed_txns, 2u);
  EXPECT_FALSE(res.had_checkpoint);
  EXPECT_EQ(res.max_tid, 513u);
  EXPECT_EQ(IntAt(recovered, Key::FromU64(1)), 12);
  RemoveDirRecursive(dir);
}

TEST(Wal, ReadOnlyTransactionsNotLogged) {
  const std::string dir = FreshDir("readonly");
  {
    WriteAheadLog wal(dir);
    wal.StartLogging();
    wal.Append(0, 256, {}, {}, TestArena());
    EXPECT_EQ(wal.appended_txns(), 0u);
  }
  Store recovered(64);
  WriteAheadLog reopened(dir);
  EXPECT_EQ(reopened.Recover(&recovered).replayed_txns, 0u);
  RemoveDirRecursive(dir);
}

TEST(Wal, RecoverOrdersByCommitTid) {
  const std::string dir = FreshDir("tidorder");
  Store source(64);
  source.LoadInt(Key::FromU64(1), 0);
  Record* r = source.Find(Key::FromU64(1));
  {
    WriteAheadLog wal(dir);
    wal.StartLogging();
    // Appended out of TID order (different workers flush interleaved in real runs):
    // PutInt(9) at tid 1024 must apply after PutInt(4) at tid 512.
    std::vector<PendingWrite> ws;
    ws.push_back(IntWrite(r, OpCode::kPutInt, 9));
    wal.Append(0, 1024, ws, {}, TestArena());
    ws.clear();
    ws.push_back(IntWrite(r, OpCode::kPutInt, 4));
    wal.Append(1, 512, ws, {}, TestArena());
  }
  Store recovered(64);
  recovered.LoadInt(Key::FromU64(1), 0);
  WriteAheadLog reopened(dir);
  EXPECT_EQ(reopened.Recover(&recovered).replayed_txns, 2u);
  EXPECT_EQ(IntAt(recovered, Key::FromU64(1)), 9);
  RemoveDirRecursive(dir);
}

TEST(Wal, ComplexOpsRoundTrip) {
  const std::string dir = FreshDir("complex");
  Store source(64);
  source.LoadTopK(Key::FromU64(2), 3);
  source.LoadOrdered(Key::FromU64(3), OrderedTuple{});
  source.LoadBytes(Key::FromU64(4), "");
  {
    WriteAheadLog wal(dir);
    wal.StartLogging();
    std::vector<PendingWrite> ws;
    PendingWrite topk;
    topk.record = source.Find(Key::FromU64(2));
    topk.op = OpCode::kTopKInsert;
    topk.core = 1;
    StoreOperand(TestArena(), topk.op, OrderKey{10, 1}, "entry", &topk);
    ws.push_back(topk);
    PendingWrite oput;
    oput.record = source.Find(Key::FromU64(3));
    oput.op = OpCode::kOPut;
    oput.core = 0;
    StoreOperand(TestArena(), oput.op, OrderKey{7, 0}, "winner", &oput);
    ws.push_back(oput);
    PendingWrite bytes;
    bytes.record = source.Find(Key::FromU64(4));
    bytes.op = OpCode::kPutBytes;
    StoreOperand(TestArena(), bytes.op, OrderKey{}, "blob-data", &bytes);
    ws.push_back(bytes);
    wal.Append(0, 256, ws, {}, TestArena());
  }
  Store recovered(64);
  recovered.LoadTopK(Key::FromU64(2), 3);
  recovered.LoadOrdered(Key::FromU64(3), OrderedTuple{});
  recovered.LoadBytes(Key::FromU64(4), "");
  WriteAheadLog reopened(dir);
  EXPECT_EQ(reopened.Recover(&recovered).replayed_txns, 1u);
  const auto topk = std::get<TopKSet>(recovered.ReadSnapshot(Key::FromU64(2)).value);
  ASSERT_EQ(topk.size(), 1u);
  EXPECT_EQ(topk.items()[0].payload, "entry");
  EXPECT_EQ(std::get<OrderedTuple>(recovered.ReadSnapshot(Key::FromU64(3)).value).payload,
            "winner");
  EXPECT_EQ(std::get<std::string>(recovered.ReadSnapshot(Key::FromU64(4)).value),
            "blob-data");
  RemoveDirRecursive(dir);
}

TEST(Wal, TornTailIgnored) {
  const std::string dir = FreshDir("torn");
  Store source(64);
  source.LoadInt(Key::FromU64(1), 0);
  Record* r = source.Find(Key::FromU64(1));
  {
    WriteAheadLog wal(dir);
    wal.StartLogging();
    std::vector<PendingWrite> ws;
    ws.push_back(IntWrite(r, OpCode::kAdd, 5));
    wal.Append(0, 256, ws, {}, TestArena());
  }
  // Corrupt: append a truncated entry (length prefix promises more bytes than exist).
  {
    const std::string path = ActiveSegmentPath(dir);
    FILE* f = std::fopen(path.c_str(), "ab");
    const std::uint32_t bogus_len = 1000;
    const std::uint32_t bogus_crc = 0;
    std::fwrite(&bogus_len, sizeof(bogus_len), 1, f);
    std::fwrite(&bogus_crc, sizeof(bogus_crc), 1, f);
    const char junk[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  Store recovered(64);
  recovered.LoadInt(Key::FromU64(1), 0);
  WriteAheadLog reopened(dir);
  EXPECT_EQ(reopened.Recover(&recovered).replayed_txns, 1u);  // only the intact entry
  EXPECT_EQ(IntAt(recovered, Key::FromU64(1)), 5);
  RemoveDirRecursive(dir);
}

TEST(Wal, StartLoggingSweepsUnreferencedFiles) {
  const std::string dir = FreshDir("sweep");
  Store source(64);
  source.LoadInt(Key::FromU64(1), 0);
  {
    WriteAheadLog wal(dir);
    wal.StartLogging();
    std::vector<PendingWrite> ws;
    ws.push_back(IntWrite(source.Find(Key::FromU64(1)), OpCode::kAdd, 5));
    wal.Append(0, 256, ws, {}, TestArena());
  }
  // Garbage a crash mid-transition could leave: an unreferenced sealed segment, an
  // unreferenced checkpoint, a torn tmp. Plus a foreign file the sweep must not touch.
  WriteFileBytes(dir + "/wal-999999.log", "stale");
  WriteFileBytes(dir + "/ckpt-999999.ckpt", "stale");
  WriteFileBytes(dir + "/MANIFEST.tmp", "torn");
  WriteFileBytes(dir + "/notes.txt", "keep me");

  Store recovered(64);
  recovered.LoadInt(Key::FromU64(1), 0);
  WriteAheadLog reopened(dir);
  EXPECT_EQ(reopened.Recover(&recovered).replayed_txns, 1u);  // garbage ignored
  reopened.StartLogging();
  EXPECT_FALSE(std::ifstream(dir + "/wal-999999.log").good());
  EXPECT_FALSE(std::ifstream(dir + "/ckpt-999999.ckpt").good());
  EXPECT_FALSE(std::ifstream(dir + "/MANIFEST.tmp").good());
  EXPECT_TRUE(std::ifstream(dir + "/notes.txt").good());
  // The referenced segment (with the replayed entry) survived the sweep.
  Manifest m;
  ASSERT_TRUE(Manifest::Load(dir, &m));
  EXPECT_TRUE(std::ifstream(dir + "/" + Manifest::SegmentFileName(m.live_segments[0]))
                  .good());
  EXPECT_EQ(IntAt(recovered, Key::FromU64(1)), 5);
  RemoveDirRecursive(dir);
}

TEST(Wal, RotationSpreadsEntriesAcrossSegments) {
  const std::string dir = FreshDir("rotate");
  Store source(64);
  source.LoadInt(Key::FromU64(1), 0);
  Record* r = source.Find(Key::FromU64(1));
  constexpr int kTxns = 64;
  {
    WalOptions wo;
    wo.segment_bytes = 256;  // tiny: force rotation every couple of flushes
    WriteAheadLog wal(dir, wo);
    wal.StartLogging();
    for (int i = 0; i < kTxns; ++i) {
      std::vector<PendingWrite> ws;
      ws.push_back(IntWrite(r, OpCode::kAdd, 1));
      wal.Append(0, 256u * static_cast<std::uint64_t>(i + 1), ws, {}, TestArena());
      wal.Flush();
    }
    EXPECT_GT(wal.segments_created(), 4u);
  }
  Manifest m;
  ASSERT_TRUE(Manifest::Load(dir, &m));
  EXPECT_GT(m.live_segments.size(), 4u);

  Store recovered(64);
  recovered.LoadInt(Key::FromU64(1), 0);
  WriteAheadLog reopened(dir);
  const RecoveryResult res = reopened.Recover(&recovered);
  EXPECT_EQ(res.replayed_txns, static_cast<std::uint64_t>(kTxns));
  EXPECT_GT(res.replayed_segments, 4u);
  EXPECT_EQ(IntAt(recovered, Key::FromU64(1)), kTxns);
  RemoveDirRecursive(dir);
}

// Corruption in a *sealed* (non-final) segment must end the recoverable history
// there: replaying later segments over the gap would produce a state matching no
// committed prefix. The marker key proves it — each txn i writes PutInt(marker, i),
// so marker == replayed - 1 iff exactly the first `replayed` txns applied.
TEST(Wal, CorruptSealedSegmentStopsLaterSegments) {
  const std::string dir = FreshDir("sealedcorrupt");
  const Key counter = Key::FromU64(1);
  const Key marker = Key::FromU64(2);
  Store source(64);
  source.LoadInt(counter, 0);
  source.LoadInt(marker, 0);
  constexpr int kTxns = 40;
  {
    WalOptions wo;
    wo.segment_bytes = 256;  // a couple of entries per segment
    WriteAheadLog wal(dir, wo);
    wal.StartLogging();
    for (int i = 0; i < kTxns; ++i) {
      std::vector<PendingWrite> ws;
      ws.push_back(IntWrite(source.Find(counter), OpCode::kAdd, 1));
      ws.push_back(IntWrite(source.Find(marker), OpCode::kPutInt, i));
      wal.Append(0, 256u * static_cast<std::uint64_t>(i + 1), ws, {}, TestArena());
      wal.Flush();
    }
  }
  Manifest m;
  ASSERT_TRUE(Manifest::Load(dir, &m));
  ASSERT_GE(m.live_segments.size(), 3u);
  const std::string victim =
      dir + "/" + Manifest::SegmentFileName(m.live_segments[1]);
  std::string bytes = ReadFileBytes(victim);
  bytes[kSegmentHeaderBytes + 4] = static_cast<char>(bytes[kSegmentHeaderBytes + 4] ^ 0xff);
  WriteFileBytes(victim, bytes);

  Store recovered(64);
  recovered.LoadInt(counter, 0);
  recovered.LoadInt(marker, 0);
  WriteAheadLog reopened(dir);
  const RecoveryResult res = reopened.Recover(&recovered);
  EXPECT_GT(res.replayed_txns, 0u);   // the intact first segment replays
  EXPECT_LT(res.replayed_txns, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(IntAt(recovered, counter), static_cast<std::int64_t>(res.replayed_txns));
  EXPECT_EQ(IntAt(recovered, marker),
            static_cast<std::int64_t>(res.replayed_txns) - 1);
  RemoveDirRecursive(dir);
}

TEST(Wal, CheckpointSubsumesSealedSegments) {
  const std::string dir = FreshDir("ckpt");
  Store store(64);
  store.LoadInt(Key::FromU64(1), 0);
  store.LoadBytes(Key::FromU64(9), "hello");
  Record* r = store.Find(Key::FromU64(1));
  {
    WriteAheadLog wal(dir);
    wal.StartLogging();
    std::vector<PendingWrite> ws;
    ws.push_back(IntWrite(r, OpCode::kAdd, 41));
    wal.Append(0, 256, ws, {}, TestArena());
    // Mirror what a live commit does so the store state matches the log.
    r->LockOcc();
    r->SetInt(41);
    r->UnlockOccSetTid(256);

    const CheckpointStats ck = wal.WriteCheckpoint(store);
    EXPECT_EQ(ck.records, 2u);
    EXPECT_EQ(ck.max_tid, 256u);
    EXPECT_EQ(wal.checkpoints_taken(), 1u);

    // Post-checkpoint tail, recovered by segment replay on top of the snapshot.
    ws.clear();
    ws.push_back(IntWrite(r, OpCode::kAdd, 1));
    wal.Append(0, 512, ws, {}, TestArena());
  }
  Manifest m;
  ASSERT_TRUE(Manifest::Load(dir, &m));
  EXPECT_FALSE(m.checkpoint.empty());
  ASSERT_EQ(m.live_segments.size(), 1u);
  // The sealed pre-checkpoint segment was truncated (deleted).
  std::ifstream sealed(dir + "/" + Manifest::SegmentFileName(1));
  EXPECT_FALSE(sealed.good());

  Store recovered(64);
  WriteAheadLog reopened(dir);
  const RecoveryResult res = reopened.Recover(&recovered);
  EXPECT_TRUE(res.had_checkpoint);
  EXPECT_EQ(res.checkpoint_records, 2u);
  EXPECT_EQ(res.replayed_txns, 1u);  // only the post-checkpoint entry
  EXPECT_EQ(res.max_tid, 512u);
  EXPECT_EQ(IntAt(recovered, Key::FromU64(1)), 42);
  EXPECT_EQ(std::get<std::string>(recovered.ReadSnapshot(Key::FromU64(9)).value),
            "hello");
  RemoveDirRecursive(dir);
}

TEST(Checkpoint, PreservesOrderedIndexTableConfigs) {
  const std::string dir = FreshDir("ckpt_cfg");
  Store store(256);
  PartitionConfig cfg;
  cfg.shift = 3;
  cfg.partitions = 8;
  cfg.adaptive = true;
  store.ConfigureTable(5, cfg);
  for (std::uint64_t i = 0; i < 40; ++i) {
    store.LoadInt(Key::Table(5, i), static_cast<std::int64_t>(i));
  }
  const CheckpointStats w = Checkpoint::Write(dir, "c.ckpt", store);
  EXPECT_EQ(w.records, 40u);
  EXPECT_GE(w.tables, 1u);

  Store recovered(256);
  const CheckpointStats l = Checkpoint::Load(dir + "/c.ckpt", &recovered);
  EXPECT_EQ(l.records, 40u);
  const OrderedIndex::TableStats st = recovered.index().StatsFor(5);
  EXPECT_EQ(st.shift, 3u);
  EXPECT_EQ(st.partitions, 8u);
  EXPECT_TRUE(st.adaptive);
  EXPECT_EQ(st.entries, 40u);
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(IntAt(recovered, Key::Table(5, i)), static_cast<std::int64_t>(i));
  }
  RemoveDirRecursive(dir);
}

TEST(Checkpoint, RestoreNarrowsPreRegisteredTable) {
  const std::string dir = FreshDir("ckpt_narrow");
  Store store(256);
  PartitionConfig cfg;
  cfg.shift = 8;
  cfg.partitions = 16;
  cfg.adaptive = true;
  store.ConfigureTable(5, cfg);
  store.LoadInt(Key::Table(5, 100), 1);
  // Simulate adaptive narrowing before the checkpoint.
  ASSERT_TRUE(store.index().NarrowTable(*store.index().FindTable(5), 4));
  Checkpoint::Write(dir, "c.ckpt", store);

  // Recovery-time pattern: the application re-registers the table (registration
  // default), then the checkpoint restores the tuned (narrower) boundaries.
  Store recovered(256);
  recovered.ConfigureTable(5, cfg);
  Checkpoint::Load(dir + "/c.ckpt", &recovered);
  EXPECT_EQ(recovered.index().StatsFor(5).shift, 4u);
  RemoveDirRecursive(dir);
}

TEST(Wal, ParallelReplayMatchesSerial) {
  const std::string dir = FreshDir("parreplay");
  constexpr std::uint64_t kKeys = 64;
  constexpr int kTxns = 3000;
  Store source(1 << 10);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    source.LoadInt(Key::FromU64(k), 0);
  }
  {
    WriteAheadLog wal(dir);
    wal.StartLogging();
    Rng rng(7);
    for (int i = 0; i < kTxns; ++i) {
      const std::uint64_t tid = 256u * static_cast<std::uint64_t>(i + 1);
      std::vector<PendingWrite> ws;
      Record* a = source.Find(Key::FromU64(rng.NextBounded(kKeys)));
      Record* b = source.Find(Key::FromU64(rng.NextBounded(kKeys)));
      // A mix of commutative and order-sensitive ops so replay-order bugs surface.
      ws.push_back(IntWrite(a, OpCode::kAdd, static_cast<std::int64_t>(rng.NextBounded(9))));
      ws.push_back(IntWrite(b, rng.Chance(50) ? OpCode::kPutInt : OpCode::kMax,
                            static_cast<std::int64_t>(rng.NextBounded(1000))));
      wal.Append(static_cast<int>(i % 4), tid, ws, {}, TestArena());
    }
  }

  Store serial(1 << 10);
  Store parallel(1 << 10);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    serial.LoadInt(Key::FromU64(k), 0);
    parallel.LoadInt(Key::FromU64(k), 0);
  }
  {
    WriteAheadLog w1(dir);
    const RecoveryResult r1 = w1.Recover(&serial, 1);
    EXPECT_EQ(r1.replayed_txns, static_cast<std::uint64_t>(kTxns));
    EXPECT_EQ(r1.replay_threads, 1);
  }
  {
    WriteAheadLog w2(dir);
    const RecoveryResult r2 = w2.Recover(&parallel, 4);
    EXPECT_EQ(r2.replayed_txns, static_cast<std::uint64_t>(kTxns));
    EXPECT_EQ(r2.replay_threads, 4);
  }
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(IntAt(serial, Key::FromU64(k)), IntAt(parallel, Key::FromU64(k))) << k;
    // Per-record final TID must match serial replay too (last writer in TID order).
    EXPECT_EQ(Record::TidOf(serial.Find(Key::FromU64(k))->LoadTidWord()),
              Record::TidOf(parallel.Find(Key::FromU64(k))->LoadTidWord()))
        << k;
  }
  RemoveDirRecursive(dir);
}

// ---- Torn-tail / corruption fuzz ------------------------------------------------------
// Each logged transaction i does Add(kCounter, 1) and PutInt(kMarker, i), appended from
// one worker buffer in ascending TID order, so the segment's byte order equals TID
// order and "exactly a committed prefix was applied" is machine-checkable: counter == R
// (replayed count) and marker == R - 1.

class WalTornTailFuzz : public ::testing::Test {
 protected:
  static constexpr int kTxns = 120;
  const Key kCounter = Key::FromU64(1);
  const Key kMarker = Key::FromU64(2);

  std::string BuildLog(const char* tag) {
    const std::string dir = FreshDir(tag);
    Store source(256);
    source.LoadInt(kCounter, 0);
    source.LoadInt(kMarker, 0);
    WriteAheadLog wal(dir);
    wal.StartLogging();
    for (int i = 0; i < kTxns; ++i) {
      std::vector<PendingWrite> ws;
      ws.push_back(IntWrite(source.Find(kCounter), OpCode::kAdd, 1));
      ws.push_back(IntWrite(source.Find(kMarker), OpCode::kPutInt, i));
      wal.Append(0, 256u * static_cast<std::uint64_t>(i + 1), ws, {}, TestArena());
    }
    wal.Flush();
    return dir;  // wal dtor flushes (no-op) and closes
  }

  // Recovers `dir` into a fresh store and asserts the exact-prefix property.
  void CheckPrefix(const std::string& dir) {
    Store recovered(256);
    recovered.LoadInt(kCounter, 0);
    recovered.LoadInt(kMarker, 0);
    WriteAheadLog reopened(dir);
    RecoveryResult res;
    ASSERT_NO_THROW(res = reopened.Recover(&recovered));
    const std::uint64_t r = res.replayed_txns;
    ASSERT_LE(r, static_cast<std::uint64_t>(kTxns));
    EXPECT_EQ(IntAt(recovered, kCounter), static_cast<std::int64_t>(r));
    if (r > 0) {
      EXPECT_EQ(IntAt(recovered, kMarker), static_cast<std::int64_t>(r - 1));
    }
  }
};

TEST_F(WalTornTailFuzz, TruncationReplaysExactCommittedPrefix) {
  const std::string dir = BuildLog("fuzz_trunc");
  const std::string path = ActiveSegmentPath(dir);
  const std::string full = ReadFileBytes(path);
  ASSERT_GT(full.size(), kSegmentHeaderBytes);
  Rng rng(FuzzSeed());
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t cut =
        kSegmentHeaderBytes +
        static_cast<std::size_t>(rng.NextBounded(full.size() - kSegmentHeaderBytes + 1));
    WriteFileBytes(path, full.substr(0, cut));
    CheckPrefix(dir);
  }
  // Degenerate cuts: inside the header, and empty file.
  WriteFileBytes(path, full.substr(0, 7));
  CheckPrefix(dir);
  WriteFileBytes(path, "");
  CheckPrefix(dir);
  RemoveDirRecursive(dir);
}

TEST_F(WalTornTailFuzz, ByteCorruptionNeverReplaysGarbage) {
  const std::string dir = BuildLog("fuzz_flip");
  const std::string path = ActiveSegmentPath(dir);
  const std::string full = ReadFileBytes(path);
  Rng rng(FuzzSeed() ^ 0x5eedULL);
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = full;
    const std::size_t pos =
        kSegmentHeaderBytes +
        static_cast<std::size_t>(rng.NextBounded(full.size() - kSegmentHeaderBytes));
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0xff);
    WriteFileBytes(path, mutated);
    // CRC validation stops replay at (or before) the corrupted entry; everything
    // applied is still an exact prefix.
    CheckPrefix(dir);
  }
  RemoveDirRecursive(dir);
}

// ---- Database-level end-to-end --------------------------------------------------------

class WalEndToEnd : public ::testing::TestWithParam<Protocol> {};

INSTANTIATE_TEST_SUITE_P(Protocols, WalEndToEnd,
                         ::testing::Values(Protocol::kDoppel, Protocol::kOcc,
                                           Protocol::kTwoPL),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

// End-to-end: run the contended workload with logging enabled under each protocol;
// reopening a Database on the directory (checkpoint-free: pure segment replay)
// reproduces the exact final counter, and the reopened instance's TID clocks are
// seeded past everything recovered.
TEST_P(WalEndToEnd, ReopenReproducesFinalState) {
  const std::string dir = FreshDir(ProtocolName(GetParam()));
  std::int64_t live_value = 0;
  std::uint64_t committed = 0;
  Options o;
  o.protocol = GetParam();
  o.num_workers = 2;
  o.phase_us = 2000;
  o.store_capacity = 1 << 10;
  o.wal_dir = dir.c_str();
  {
    Database db(o);
    PopulateIncr(db.store(), 16);
    std::atomic<std::uint64_t> hot{0};
    RunMetrics m = RunWorkload(db, MakeIncr1Factory(16, 100, &hot), 300, 50);
    committed = m.stats.committed;
    live_value = IntAt(db.store(), IncrKey(0));
    EXPECT_TRUE(m.wal_enabled);
    EXPECT_EQ(m.wal_appended_txns, committed);
    EXPECT_GT(m.wal_flushed_bytes, 0u);
  }
  ASSERT_EQ(live_value, static_cast<std::int64_t>(committed));

  Database db2(o);
  PopulateIncr(db2.store(), 16);  // recovery overwrites/extends the initial load
  db2.Start();
  EXPECT_EQ(db2.recovery().replayed_txns, committed);
  EXPECT_EQ(IntAt(db2.store(), IncrKey(0)), live_value);
  // New commits must mint TIDs above everything recovered (regression: TID clocks
  // restarted from zero after replay, corrupting the next log generation's order).
  const std::uint64_t max_recovered = db2.recovery().max_tid;
  ASSERT_GT(max_recovered, 0u);
  db2.Execute([](Txn& txn) { txn.Add(IncrKey(0), 1); });
  EXPECT_GT(Record::TidOf(db2.store().Find(IncrKey(0))->LoadTidWord()), max_recovered);
  db2.Stop();
  RemoveDirRecursive(dir);
}

// Regression for the TID-seeding bug via observable state: generation 1 writes a key
// many times, generation 2 overwrites it once, and recovery of both generations'
// segments must keep generation 2's PutInt last in TID order. Without seeding,
// generation 2's fresh worker mints a low TID and its write replays *first*,
// resurrecting generation 1's value.
TEST(WalRecovery, SecondGenerationTidsSortAfterFirst) {
  const std::string dir = FreshDir("tidseed");
  Options o;
  o.protocol = Protocol::kOcc;
  o.num_workers = 1;
  o.store_capacity = 1 << 8;
  o.wal_dir = dir.c_str();
  const Key k = Key::FromU64(3);
  {
    Database db(o);
    db.store().LoadInt(k, 0);
    db.Start();
    for (int i = 0; i < 100; ++i) {
      db.Execute([&](Txn& txn) { txn.PutInt(k, i); });
    }
    db.Stop();
  }
  {
    Database db(o);
    db.store().LoadInt(k, 0);
    db.Start();
    EXPECT_EQ(db.recovery().replayed_txns, 100u);
    db.Execute([&](Txn& txn) { txn.PutInt(k, 777); });
    db.Stop();
  }
  {
    Database db(o);
    db.store().LoadInt(k, 0);
    db.Start();
    EXPECT_EQ(db.recovery().replayed_txns, 101u);
    EXPECT_EQ(IntAt(db.store(), k), 777);
    db.Stop();
  }
  RemoveDirRecursive(dir);
}

// recover_on_start=false declares the directory's old contents abandoned: the new
// generation restarts its TID clocks, so keeping the old segments in the manifest
// would interleave two incompatible TID histories. Recovery after a skipped-recovery
// generation must see only the new generation.
TEST(WalRecovery, SkippedRecoveryDiscardsOldGeneration) {
  const std::string dir = FreshDir("discard");
  Options o;
  o.protocol = Protocol::kOcc;
  o.num_workers = 1;
  o.store_capacity = 1 << 8;
  o.wal_dir = dir.c_str();
  const Key k = Key::FromU64(4);
  {
    Database db(o);
    db.store().LoadInt(k, 0);
    db.Start();
    for (int i = 0; i < 10; ++i) {
      db.Execute([&](Txn& txn) { txn.Add(k, 1); });
    }
    db.Stop();
  }
  {
    Options o2 = o;
    o2.recover_on_start = false;
    Database db(o2);
    db.store().LoadInt(k, 0);
    db.Start();
    EXPECT_EQ(db.recovery().replayed_txns, 0u);
    db.Execute([&](Txn& txn) { txn.PutInt(k, 5); });
    db.Stop();
  }
  {
    Database db(o);
    db.store().LoadInt(k, 0);
    db.Start();
    // Only the second generation's single transaction exists; the first generation's
    // ten Adds were discarded with their segments (no bogus merged history).
    EXPECT_EQ(db.recovery().replayed_txns, 1u);
    EXPECT_EQ(IntAt(db.store(), k), 5);
    db.Stop();
  }
  RemoveDirRecursive(dir);
}

// A requested checkpoint lands at the coordinator's next quiesce barrier, truncates
// the log, and the reopened database recovers from snapshot + tail instead of full
// replay.
TEST(WalRecovery, DoppelRequestedCheckpointTruncatesLog) {
  const std::string dir = FreshDir("reqckpt");
  Options o;
  o.protocol = Protocol::kDoppel;
  o.num_workers = 2;
  o.phase_us = 1000;
  o.store_capacity = 1 << 10;
  o.wal_dir = dir.c_str();
  o.wal_flush_us = 500;
  std::uint64_t pre_checkpoint_txns = 0;
  {
    Database db(o);
    PopulateIncr(db.store(), 8);
    db.Start();
    for (int i = 0; i < 200; ++i) {
      db.Execute([&](Txn& txn) { txn.Add(IncrKey(static_cast<std::uint64_t>(i) % 8), 1); });
    }
    pre_checkpoint_txns = 200;
    ASSERT_TRUE(db.RequestCheckpoint());
    // The coordinator takes it at the next barrier (phase cadence is 1ms).
    for (int spin = 0; spin < 4000 && db.wal()->checkpoints_taken() == 0; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(db.wal()->checkpoints_taken(), 1u);
    for (int i = 0; i < 50; ++i) {
      db.Execute([&](Txn& txn) { txn.Add(IncrKey(static_cast<std::uint64_t>(i) % 8), 1); });
    }
    db.Stop();
  }
  Database db2(o);
  PopulateIncr(db2.store(), 8);
  db2.Start();
  EXPECT_TRUE(db2.recovery().had_checkpoint);
  EXPECT_GE(db2.recovery().checkpoint_records, 8u);
  // The checkpoint subsumed (at least) the pre-request transactions; only the tail
  // replayed from segments.
  EXPECT_LT(db2.recovery().replayed_txns, pre_checkpoint_txns + 50);
  std::int64_t sum = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    sum += IntAt(db2.store(), IncrKey(i));
  }
  EXPECT_EQ(sum, 250);
  db2.Stop();
  RemoveDirRecursive(dir);
}

TEST(WalRecovery, FsyncModeRoundTrips) {
  const std::string dir = FreshDir("fsync");
  Options o;
  o.protocol = Protocol::kOcc;
  o.num_workers = 2;
  o.store_capacity = 1 << 8;
  o.wal_dir = dir.c_str();
  o.wal_fsync = true;
  {
    Database db(o);
    PopulateIncr(db.store(), 4);
    db.Start();
    for (int i = 0; i < 64; ++i) {
      db.Execute([&](Txn& txn) { txn.Add(IncrKey(static_cast<std::uint64_t>(i) % 4), 1); });
    }
    db.Stop();
  }
  Database db2(o);
  PopulateIncr(db2.store(), 4);
  db2.Start();
  EXPECT_EQ(db2.recovery().replayed_txns, 64u);
  std::int64_t sum = 0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    sum += IntAt(db2.store(), IncrKey(i));
  }
  EXPECT_EQ(sum, 64);
  db2.Stop();
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace doppel
