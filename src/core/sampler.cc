#include "src/core/sampler.h"

#include <bit>

#include "src/common/dassert.h"

namespace doppel {

ConflictSampler::ConflictSampler(std::uint32_t sample_every, std::size_t capacity)
    : table_(std::bit_ceil(capacity < 64 ? std::size_t{64} : capacity)),
      scan_table_(kScanCapacity),
      mask_(table_.size() - 1),
      sample_every_(sample_every == 0 ? 1 : sample_every) {}

void ConflictSampler::RecordConflict(const Key& key, OpCode op) {
  if (++tick_ % sample_every_ != 0) {
    return;
  }
  const std::size_t base = static_cast<std::size_t>(key.Hash());
  Entry* victim = nullptr;
  for (int i = 0; i < kProbeWindow; ++i) {
    Entry& e = table_[(base + static_cast<std::size_t>(i)) & mask_];
    if (e.used && e.key == key) {
      e.count++;
      e.op_counts[static_cast<int>(op)]++;
      // Sampled-tally stats counter; racy readers by contract.
      total_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!e.used) {
      victim = &e;
      break;
    }
    if (victim == nullptr || e.count < victim->count) {
      victim = &e;
    }
  }
  DOPPEL_DCHECK(victim != nullptr);
  // Space-saving replacement: the newcomer inherits the evicted count so that a genuine
  // heavy hitter cannot be permanently starved by churn. The inherited mass is NOT
  // attributed to any op bucket (it belongs to the victim's unknown ops), so `count`
  // may exceed sum(op_counts) by the inherited overestimate; eviction priority uses the
  // raw count, while the classifier clamps to the op-tally sum (BarrierBuildPlan) so
  // inherited mass can neither refuse a genuine heavy hitter nor promote a churn key.
  const std::uint32_t inherited = victim->used ? victim->count : 0;
  *victim = Entry{};
  victim->used = true;
  victim->key = key;
  victim->count = inherited + 1;
  victim->op_counts[static_cast<int>(op)] = 1;
  // Sampled-tally stats counter; racy readers by contract.
  total_.fetch_add(1, std::memory_order_relaxed);
}

ConflictSampler::ScanEntry& ConflictSampler::ScanSlot(std::uint64_t table,
                                                      std::uint32_t partition) {
  const std::size_t base =
      static_cast<std::size_t>(HashCombine(Mix64(table), partition)) % kScanCapacity;
  ScanEntry* victim = nullptr;
  for (int i = 0; i < kProbeWindow; ++i) {
    ScanEntry& e = scan_table_[(base + static_cast<std::size_t>(i)) % kScanCapacity];
    if (e.used && e.table == table && e.partition == partition) {
      return e;
    }
    if (!e.used) {
      victim = &e;
      break;
    }
    if (victim == nullptr || e.count < victim->count) {
      victim = &e;
    }
  }
  DOPPEL_DCHECK(victim != nullptr);
  // Space-saving replacement, like the record table: inherit the evicted count so a
  // persistently hot stripe survives churn. Inherited mass is attributed to no op or
  // record (the classifier clamps to op_counts + phantoms, mirroring the record path).
  const std::uint32_t inherited = victim->used ? victim->count : 0;
  *victim = ScanEntry{};
  victim->used = true;
  victim->table = table;
  victim->partition = partition;
  victim->count = inherited;
  return *victim;
}

void ConflictSampler::RecordScanConflict(std::uint64_t table, std::uint32_t partition) {
  if (++tick_ % sample_every_ != 0) {
    return;
  }
  ScanEntry& e = ScanSlot(table, partition);
  e.count++;
  e.phantoms++;
  // Sampled-tally stats counter; racy readers by contract.
  total_.fetch_add(1, std::memory_order_relaxed);
}

void ConflictSampler::RecordScanConflict(std::uint64_t table, std::uint32_t partition,
                                         const Key& key, OpCode op) {
  if (++tick_ % sample_every_ != 0) {
    return;
  }
  ScanEntry& e = ScanSlot(table, partition);
  e.count++;
  e.op_counts[static_cast<int>(op)]++;
  // Boyer-Moore majority: the interior record the window's conflicts concentrate on.
  if (!e.has_hot) {
    e.has_hot = true;
    e.hot_key = key;
    e.hot_votes = 1;
  } else if (e.hot_key == key) {
    e.hot_votes++;
  } else if (--e.hot_votes == 0) {
    e.hot_key = key;
    e.hot_votes = 1;
  }
  // Sampled-tally stats counter; racy readers by contract.
  total_.fetch_add(1, std::memory_order_relaxed);
}

void ConflictSampler::Clear() {
  for (Entry& e : table_) {
    e = Entry{};
  }
  for (ScanEntry& e : scan_table_) {
    e = ScanEntry{};
  }
  // Barrier-time reset (workers quiesced); no concurrent reader needs ordering.
  total_.store(0, std::memory_order_relaxed);
  tick_ = 0;
}

}  // namespace doppel
