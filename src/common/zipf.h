// Zipfian key-popularity distribution (INCRZ, LIKE, RUBiS-C workloads; Tables 1-2).
//
// The kth most popular of n items is drawn with probability (1/k^alpha) / H(n, alpha).
// Sampling uses Walker's alias method: O(n) setup, O(1) exact sampling — the empirical
// distribution matches Probability() exactly, which Table 2's request-coverage column
// depends on.
#ifndef DOPPEL_SRC_COMMON_ZIPF_H_
#define DOPPEL_SRC_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/common/rand.h"

namespace doppel {

// Draws ranks in [0, n) with Zipfian popularity; rank 0 is the most popular item.
// alpha == 0 degenerates to the uniform distribution.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double alpha);

  // Next rank (0 = hottest). Caller supplies its worker-local Rng; the generator itself
  // is immutable after construction and safe to share across workers.
  std::uint64_t Next(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

  // Exact probability that a draw returns `rank` (0-based). Used for Table 1 and for the
  // statistical tests of the generator itself.
  double Probability(std::uint64_t rank) const;

  // Probability mass of ranks [0, count): fraction of requests hitting the `count`
  // hottest keys (Table 2's "% Reqs" column).
  double TopMass(std::uint64_t count) const;

  // Generalized harmonic number H(n, alpha) = sum_{k=1..n} 1/k^alpha.
  static double Harmonic(std::uint64_t n, double alpha);

 private:
  std::uint64_t n_;
  double alpha_;
  double zetan_;  // H(n, alpha)
  // Walker alias tables (empty when alpha == 0: uniform fast path).
  std::vector<double> accept_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_ZIPF_H_
