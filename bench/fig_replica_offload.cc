// Replica offload figure: write throughput when reads run on the primary vs when they
// are offloaded to a phase-aligned read replica (src/replica/).
//
// For each read fraction the bench measures two configurations over the same key space:
//   primary-only  — every worker runs the read/write mix on the primary, so reads and
//                   writes compete for the same worker threads;
//   offload       — primary workers run writes only while dedicated reader threads serve
//                   the reads from an attached Replica (stale-bounded Get), so the
//                   primary's full capacity goes to writes.
// Reported per point: primary write throughput in both configurations, reads served
// (primary reads vs replica reads), and the replica's publish lag p50/p99 — the
// staleness price of the offload.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rand.h"
#include "src/common/timing.h"
#include "src/replica/replica.h"
#include "src/workload/incr.h"

namespace doppel {
namespace {

void ReadProc(Txn& txn, const TxnArgs& args) { (void)txn.GetInt(args.k1); }
void WriteProc(Txn& txn, const TxnArgs& args) { txn.Add(args.k1, 1); }

// read_pct% of transactions read one uniform key; the rest increment one.
class MixedSource : public TxnSource {
 public:
  MixedSource(std::uint64_t num_keys, std::uint32_t read_pct)
      : num_keys_(num_keys), read_pct_(read_pct) {}

  TxnRequest Next(Worker& w) override {
    TxnRequest r;
    if (w.rng.Chance(read_pct_)) {
      r.proc = &ReadProc;
      r.args.tag = kTagRead;
    } else {
      r.proc = &WriteProc;
      r.args.tag = kTagWrite;
    }
    r.args.k1 = IncrKey(w.rng.NextBounded(num_keys_));
    return r;
  }

 private:
  const std::uint64_t num_keys_;
  const std::uint32_t read_pct_;
};

struct OffloadPoint {
  double primary_writes_per_sec = 0.0;
  double primary_reads_per_sec = 0.0;
  double replica_reads_per_sec = 0.0;
  std::uint64_t publish_p50_us = 0;
  std::uint64_t publish_p99_us = 0;
  RunMetrics metrics;
};

double TagShare(const RunMetrics& m, std::uint8_t tag) {
  std::uint64_t total = 0;
  for (int t = 0; t < kNumTags; ++t) {
    total += m.stats.committed_by_tag[t];
  }
  return total == 0 ? 0.0
                    : static_cast<double>(m.stats.committed_by_tag[tag]) /
                          static_cast<double>(total);
}

// Primary-only: the mixed source on the primary; read/write rates split by tag share.
OffloadPoint RunPrimaryOnly(const bench::Flags& flags, std::uint64_t num_keys,
                            std::uint32_t read_pct) {
  Database db(bench::BaseOptions(flags, Protocol::kDoppel, num_keys * 4));
  PopulateIncr(db.store(), num_keys);
  RunMetrics m = RunWorkload(
      db, [=](int) { return std::make_unique<MixedSource>(num_keys, read_pct); },
      flags.MeasureMs(0.4), /*warmup_ms=*/flags.full ? 500 : 100);
  OffloadPoint p;
  p.primary_writes_per_sec = m.throughput * TagShare(m, kTagWrite);
  p.primary_reads_per_sec = m.throughput * TagShare(m, kTagRead);
  p.metrics = std::move(m);
  return p;
}

// Offload: write-only source on the primary, `readers` threads issuing stale-bounded
// Gets against an attached replica at full speed for the duration of the run.
OffloadPoint RunOffload(const bench::Flags& flags, std::uint64_t num_keys,
                        int readers) {
  Database db(bench::BaseOptions(flags, Protocol::kDoppel, num_keys * 4));
  PopulateIncr(db.store(), num_keys);

  std::unique_ptr<Replica> replica;
  std::atomic<bool> stop_readers{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> reader_threads;
  std::uint64_t readers_start_ns = 0;

  const auto on_started = [&](Database& started) {
    replica = AttachReplica(started);
    readers_start_ns = NowNanos();
    for (int i = 0; i < readers; ++i) {
      reader_threads.emplace_back([&, i] {
        Rng rng(0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1));
        std::uint64_t local = 0;
        while (!stop_readers.load(std::memory_order_relaxed)) {
          Value v;
          (void)replica->Get(IncrKey(rng.NextBounded(num_keys)), &v);
          local++;
        }
        reads.fetch_add(local, std::memory_order_relaxed);
      });
    }
  };

  RunMetrics m = RunWorkload(
      db, [=](int) { return std::make_unique<MixedSource>(num_keys, /*read_pct=*/0); },
      flags.MeasureMs(0.4), /*warmup_ms=*/flags.full ? 500 : 100, on_started);

  stop_readers.store(true, std::memory_order_relaxed);
  for (std::thread& t : reader_threads) {
    t.join();
  }
  const double reader_seconds =
      static_cast<double>(NowNanos() - readers_start_ns) * 1e-9;

  OffloadPoint p;
  replica->WaitCaughtUp(/*timeout_ms=*/5000);
  FillReplicaMetrics(*replica, &m);
  const LatencyHistogram lag = replica->PublishLagHistogram();
  p.publish_p50_us = lag.Percentile(50) / 1000;
  p.publish_p99_us = lag.Percentile(99) / 1000;
  replica->Stop();
  replica.reset();

  p.primary_writes_per_sec = m.throughput * TagShare(m, kTagWrite);
  p.replica_reads_per_sec =
      reader_seconds > 0.0
          ? static_cast<double>(reads.load(std::memory_order_relaxed)) / reader_seconds
          : 0.0;
  p.metrics = std::move(m);
  return p;
}

int Main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(argc, argv);
  if (flags.wal_dir.empty()) {
    flags.wal_dir = "/tmp/doppel_replica_offload";  // replication requires a WAL
  }
  const std::uint64_t num_keys = flags.Keys(100000);
  const std::vector<int> read_pcts = {50, 90, 99};
  const int readers = 4;

  std::printf("Replica offload: primary write throughput, reads on primary vs replica\n");
  std::printf("threads=%d readers=%d keys=%llu wal-dir=%s\n\n", flags.ResolvedThreads(),
              readers, static_cast<unsigned long long>(num_keys),
              flags.wal_dir.c_str());

  Table table({"read%", "wr/s primary-only", "rd/s primary-only", "wr/s offload",
               "rd/s replica", "pub_p50_us", "pub_p99_us"});
  for (int pct : read_pcts) {
    OffloadPoint a = RunPrimaryOnly(flags, num_keys,
                                    static_cast<std::uint32_t>(pct));
    std::printf("%s\n", WalSummary(a.metrics).c_str());
    OffloadPoint b = RunOffload(flags, num_keys, readers);
    std::printf("%s\n", WalSummary(b.metrics).c_str());
    table.AddRow({std::to_string(pct), FormatCount(a.primary_writes_per_sec),
                  FormatCount(a.primary_reads_per_sec),
                  FormatCount(b.primary_writes_per_sec),
                  FormatCount(b.replica_reads_per_sec),
                  std::to_string(b.publish_p50_us), std::to_string(b.publish_p99_us)});
  }
  std::printf("\n");
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
