// Per-transaction operand arena backing PendingWrite.
//
// PendingWrite must stay a small POD (the commit path sorts, copies, and scans write
// sets millions of times per second), so variable-size operands — byte payloads and the
// OrderKey of ordered/top-K writes — live here as offset-addressed blocks in one
// contiguous buffer. Txn::Reset recycles the buffer (clear, keep capacity), so steady
// state transaction execution performs no payload heap allocation at all. Offsets, not
// pointers: the buffer may reallocate while a transaction keeps buffering writes.
#ifndef DOPPEL_SRC_TXN_WRITE_ARENA_H_
#define DOPPEL_SRC_TXN_WRITE_ARENA_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "src/store/value.h"

namespace doppel {

class WriteArena {
 public:
  // Appends `len` raw bytes; returns the block's offset.
  std::uint32_t Put(const void* data, std::size_t len) {
    const std::size_t off = buf_.size();
    buf_.resize(off + len);
    if (len != 0) {
      std::memcpy(buf_.data() + off, data, len);
    }
    return static_cast<std::uint32_t>(off);
  }

  // Appends an ordered operand block: the OrderKey followed by the payload bytes.
  // Returns the block's offset (the payload starts kOrderBytes past it).
  std::uint32_t PutOrdered(const OrderKey& order, std::string_view payload) {
    const std::uint32_t off = Put(&order, sizeof(OrderKey));
    Put(payload.data(), payload.size());
    return off;
  }

  std::string_view View(std::uint32_t off, std::uint32_t len) const {
    return std::string_view(buf_.data() + off, len);
  }

  OrderKey OrderAt(std::uint32_t off) const {
    OrderKey k;  // memcpy: the char buffer gives no alignment guarantee
    std::memcpy(&k, buf_.data() + off, sizeof(OrderKey));
    return k;
  }

  void Clear() { buf_.clear(); }  // keeps capacity: the whole point of the arena
  std::size_t size() const { return buf_.size(); }

  static constexpr std::uint32_t kOrderBytes =
      static_cast<std::uint32_t>(sizeof(OrderKey));

 private:
  std::vector<char> buf_;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_TXN_WRITE_ARENA_H_
