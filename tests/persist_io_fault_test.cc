// Storage fault tolerance: the IoEnv seam, the transient/permanent error taxonomy,
// checkpoint rollback + retry, the WAL durability-failure latch, and Database-level
// read-only degraded mode. The seeded fuzz at the bottom drives random fault schedules
// through the full Doppel protocol and asserts the no-abort contract: every schedule
// ends in success, clean bounded retry, or read-only degraded mode — and reopening the
// directory recovers exactly a committed prefix.
#include <fcntl.h>
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/persist/io_env.h"
#include "src/persist/manifest.h"
#include "src/persist/wal.h"
#include "tests/persist_test_util.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::FreshDir;
using testing::IntAt;
using testing::ReadFileBytes;
using testing::RemoveDirRecursive;

std::uint64_t FuzzSeed() {
  const char* env = std::getenv("DOPPEL_FUZZ_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0xfeedULL;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// True when any file in `dir` ends with `suffix` (tmp-debris detector).
bool DirContainsSuffix(const std::string& dir, const std::string& suffix) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return false;
  }
  bool found = false;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      found = true;
    }
  }
  ::closedir(d);
  return found;
}

// Operand storage for PendingWrites built by WAL-level tests (single-threaded,
// Append encodes synchronously — one shared arena is fine).
WriteArena& TestArena() {
  static WriteArena arena;
  return arena;
}

PendingWrite IntWrite(Record* r, OpCode op, std::int64_t n) {
  PendingWrite w;
  w.record = r;
  w.op = op;
  w.n = n;
  return w;
}

// Fast retry policy so exhausted-budget tests don't sleep through real backoff.
IoRetryPolicy FastRetry() {
  IoRetryPolicy p;
  p.backoff_min_us = 1;
  p.backoff_max_us = 10;
  return p;
}

// ---- IoEnv unit ------------------------------------------------------------------------

TEST(IoEnv, PassthroughErrnoConvention) {
  IoEnv* env = IoEnv::Default();
  EXPECT_EQ(env->Open("/nonexistent-dir-xyz/f", O_RDONLY, 0), -ENOENT);
  EXPECT_EQ(env->Unlink("/nonexistent-dir-xyz/f"), -ENOENT);

  const std::string dir = FreshDir("ioenv_pass");
  const std::string path = dir + "/f";
  const int fd = env->Open(path.c_str(), O_CREAT | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(env->Write(fd, "abc", 3), 3);
  EXPECT_EQ(env->Fsync(fd), 0);
  EXPECT_EQ(env->Close(fd), 0);
  EXPECT_EQ(ReadFileBytes(path), "abc");
  RemoveDirRecursive(dir);
}

TEST(IoEnv, TransientClassification) {
  EXPECT_TRUE(IsTransientIoError(-EINTR));
  EXPECT_TRUE(IsTransientIoError(-EAGAIN));
  EXPECT_FALSE(IsTransientIoError(-EIO));
  EXPECT_FALSE(IsTransientIoError(-ENOSPC));
  EXPECT_FALSE(IsTransientIoError(0));
}

TEST(IoEnv, WriteFullyAbsorbsEintrAndShortWrites) {
  const std::string dir = FreshDir("ioenv_transient");
  FaultInjectingIoEnv fenv(1);
  FaultRule eintr;
  eintr.ops = IoOpBit(IoOp::kWrite);
  eintr.err = EINTR;
  eintr.once = true;
  fenv.AddRule(eintr);
  FaultRule shorty;
  shorty.ops = IoOpBit(IoOp::kWrite);
  shorty.short_write = true;
  shorty.once = true;
  fenv.AddRule(shorty);

  const std::string path = dir + "/f";
  const int fd = fenv.Open(path.c_str(), O_CREAT | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  const std::string data(1000, 'x');
  std::atomic<std::uint64_t> retries{0};
  EXPECT_EQ(WriteFullyRetry(&fenv, fd, data.data(), data.size(), FastRetry(), &retries),
            0);
  fenv.Close(fd);
  // Both injected faults were absorbed by bounded retry and the file is whole.
  EXPECT_GE(retries.load(), 2u);
  EXPECT_EQ(ReadFileBytes(path), data);
  RemoveDirRecursive(dir);
}

TEST(IoEnv, WriteFullyEscalatesEnospc) {
  const std::string dir = FreshDir("ioenv_enospc");
  FaultInjectingIoEnv fenv(2);
  FaultRule full;
  full.ops = IoOpBit(IoOp::kWrite);
  full.err = ENOSPC;
  full.sticky = true;
  fenv.AddRule(full);

  const int fd = fenv.Open((dir + "/f").c_str(), O_CREAT | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  std::atomic<std::uint64_t> retries{0};
  EXPECT_EQ(WriteFullyRetry(&fenv, fd, "abc", 3, FastRetry(), &retries), -ENOSPC);
  EXPECT_EQ(retries.load(), 0u);  // permanent errors are not retried
  fenv.Close(fd);
  RemoveDirRecursive(dir);
}

TEST(IoEnv, ExhaustedTransientBudgetEscalates) {
  const std::string dir = FreshDir("ioenv_budget");
  FaultInjectingIoEnv fenv(3);
  FaultRule eintr;
  eintr.ops = IoOpBit(IoOp::kWrite);
  eintr.err = EINTR;
  eintr.sticky = true;  // every write interrupted, forever
  fenv.AddRule(eintr);

  const int fd = fenv.Open((dir + "/f").c_str(), O_CREAT | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  std::atomic<std::uint64_t> retries{0};
  EXPECT_EQ(WriteFullyRetry(&fenv, fd, "abc", 3, FastRetry(), &retries), -EINTR);
  EXPECT_GT(retries.load(), 0u);
  fenv.Close(fd);
  RemoveDirRecursive(dir);
}

TEST(IoEnv, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    const std::string dir = FreshDir("ioenv_seed");
    FaultInjectingIoEnv fenv(seed);
    FaultRule flaky;
    flaky.ops = IoOpBit(IoOp::kWrite);
    flaky.err = EINTR;
    flaky.probability = 0.5;
    fenv.AddRule(flaky);
    const int fd = fenv.Open((dir + "/f").c_str(), O_CREAT | O_WRONLY, 0644);
    std::vector<long> results;
    for (int i = 0; i < 64; ++i) {
      results.push_back(fenv.Write(fd, "x", 1));
    }
    fenv.Close(fd);
    RemoveDirRecursive(dir);
    return results;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // and the seed actually matters
}

// ---- Manifest / checkpoint failure containment ----------------------------------------

TEST(ManifestFault, FailedSaveLeavesOldManifestLive) {
  const std::string dir = FreshDir("manifest_fault");
  Manifest m;
  m.live_segments = {1};
  m.next_segment = 2;
  ASSERT_FALSE(static_cast<bool>(Manifest::Save(dir, m, nullptr, nullptr)));

  FaultInjectingIoEnv fenv(4);
  FaultRule rule;
  rule.ops = IoOpBit(IoOp::kRename);
  rule.path_substring = "MANIFEST";
  rule.err = EIO;
  rule.once = true;
  fenv.AddRule(rule);

  Manifest m2;
  m2.live_segments = {1, 2};
  m2.next_segment = 3;
  const IoFailure f = Manifest::Save(dir, m2, &fenv, nullptr);
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f.err, EIO);
  EXPECT_EQ(f.op, IoOp::kRename);
  // Rollback: no tmp debris, and the old manifest still loads with the old state.
  EXPECT_FALSE(FileExists(dir + "/MANIFEST.tmp"));
  Manifest loaded;
  ASSERT_TRUE(Manifest::Load(dir, &loaded));
  EXPECT_EQ(loaded.live_segments, (std::vector<std::uint64_t>{1}));
  RemoveDirRecursive(dir);
}

// ---- WAL durability-failure latch ------------------------------------------------------

TEST(WalFault, EnospcOnAppendPathLatchesDegraded) {
  const std::string dir = FreshDir("wal_enospc");
  FaultInjectingIoEnv fenv(5);
  FaultRule full;
  full.ops = IoOpBit(IoOp::kWrite);
  full.path_substring = "wal-";
  full.after = 1;  // let the segment header through, then the disk fills
  full.err = ENOSPC;
  full.sticky = true;
  fenv.AddRule(full);

  Store source(256);
  const Key k = Key::FromU64(1);
  source.LoadInt(k, 0);
  WalOptions wo;
  wo.env = &fenv;
  wo.retry = FastRetry();
  WriteAheadLog wal(dir, wo);
  wal.StartLogging();
  ASSERT_FALSE(wal.failed());

  std::vector<PendingWrite> ws;
  ws.push_back(IntWrite(source.Find(k), OpCode::kAdd, 1));
  wal.Append(0, 256, ws, {}, TestArena());
  wal.Flush();

  EXPECT_TRUE(wal.failed());
  EXPECT_EQ(wal.failed_errno(), ENOSPC);
  EXPECT_EQ(wal.failed_op(), IoOp::kWrite);
  // Latched: later appends/flushes/cuts are silent no-ops, not crashes.
  wal.Append(0, 512, ws, {}, TestArena());
  wal.Flush();
  wal.AppendCut(512);
  EXPECT_TRUE(wal.failed());
  RemoveDirRecursive(dir);
}

TEST(WalFault, FailedFsyncIsPermanentAndNeverRetried) {
  const std::string dir = FreshDir("wal_fsync");
  FaultInjectingIoEnv fenv(6);
  FaultRule sick;
  sick.ops = IoOpBit(IoOp::kFsync);
  sick.path_substring = "wal-";
  sick.after = 1;  // the segment-header fsync passes; the first data fsync fails
  sick.err = EIO;
  sick.once = true;  // even though a RETRIED fsync would succeed...
  fenv.AddRule(sick);

  Store source(256);
  const Key k = Key::FromU64(1);
  source.LoadInt(k, 0);
  WalOptions wo;
  wo.env = &fenv;
  wo.fsync = true;
  wo.retry = FastRetry();
  WriteAheadLog wal(dir, wo);
  wal.StartLogging();

  std::vector<PendingWrite> ws;
  ws.push_back(IntWrite(source.Find(k), OpCode::kAdd, 1));
  wal.Append(0, 256, ws, {}, TestArena());
  wal.Flush();

  // ... the policy latches on the FIRST failed fsync: the page-cache state after it is
  // unknowable, so re-fsync-and-claim-durable would be a lie.
  EXPECT_TRUE(wal.failed());
  EXPECT_EQ(wal.failed_errno(), EIO);
  EXPECT_EQ(wal.failed_op(), IoOp::kFsync);
  RemoveDirRecursive(dir);
}

TEST(WalFault, DurabilityLostCallbackFires) {
  const std::string dir = FreshDir("wal_cb");
  FaultInjectingIoEnv fenv(7);
  FaultRule full;
  full.ops = IoOpBit(IoOp::kWrite);
  full.path_substring = "wal-";
  full.after = 1;
  full.err = ENOSPC;
  full.sticky = true;
  fenv.AddRule(full);

  Store source(256);
  const Key k = Key::FromU64(1);
  source.LoadInt(k, 0);
  WalOptions wo;
  wo.env = &fenv;
  wo.retry = FastRetry();
  WriteAheadLog wal(dir, wo);
  std::atomic<int> seen_err{0};
  wal.SetDurabilityLostCallback([&](int err, IoOp) { seen_err.store(err); });
  wal.StartLogging();
  std::vector<PendingWrite> ws;
  ws.push_back(IntWrite(source.Find(k), OpCode::kAdd, 1));
  wal.Append(0, 256, ws, {}, TestArena());
  wal.Flush();
  EXPECT_EQ(seen_err.load(), ENOSPC);

  // Registering after the fact fires immediately (Database may construct its WAL after
  // the mkdir already failed).
  std::atomic<int> late_err{0};
  wal.SetDurabilityLostCallback([&](int err, IoOp) { late_err.store(err); });
  EXPECT_EQ(late_err.load(), ENOSPC);
  RemoveDirRecursive(dir);
}

TEST(WalFault, TransientFlushFaultsAreAbsorbed) {
  const std::string dir = FreshDir("wal_transient");
  FaultInjectingIoEnv fenv(8);
  FaultRule flaky;
  flaky.ops = IoOpBit(IoOp::kWrite);
  flaky.path_substring = "wal-";
  flaky.err = EINTR;
  flaky.probability = 0.3;
  fenv.AddRule(flaky);

  Store source(256);
  const Key kCounter = Key::FromU64(1);
  source.LoadInt(kCounter, 0);
  WalOptions wo;
  wo.env = &fenv;
  wo.retry = FastRetry();
  {
    WriteAheadLog wal(dir, wo);
    wal.StartLogging();
    for (int i = 0; i < 50; ++i) {
      std::vector<PendingWrite> ws;
      ws.push_back(IntWrite(source.Find(kCounter), OpCode::kAdd, 1));
      wal.Append(0, 256u * static_cast<std::uint64_t>(i + 1), ws, {}, TestArena());
      wal.Flush();
    }
    EXPECT_FALSE(wal.failed());
    EXPECT_GT(wal.io_retries(), 0u);
  }
  // Nothing was lost to the absorbed transients: clean reopen replays all 50.
  Store recovered(256);
  recovered.LoadInt(kCounter, 0);
  WriteAheadLog reopened(dir);
  EXPECT_EQ(reopened.Recover(&recovered).replayed_txns, 50u);
  EXPECT_EQ(IntAt(recovered, kCounter), 50);
  RemoveDirRecursive(dir);
}

// ---- Checkpoint rollback + retry -------------------------------------------------------

TEST(CheckpointFault, FailedCheckpointRollsBackAndRetries) {
  const std::string dir = FreshDir("ckpt_rollback");
  FaultInjectingIoEnv fenv(9);
  FaultRule rule;
  rule.ops = IoOpBit(IoOp::kWrite);
  rule.path_substring = ".ckpt.tmp";  // only the checkpoint body, never the log
  rule.err = ENOSPC;
  rule.once = true;
  fenv.AddRule(rule);

  Store store(256);
  const Key k = Key::FromU64(1);
  store.LoadInt(k, 0);
  WalOptions wo;
  wo.env = &fenv;
  wo.retry = FastRetry();
  WriteAheadLog wal(dir, wo);
  wal.StartLogging();
  std::vector<PendingWrite> ws;
  ws.push_back(IntWrite(store.Find(k), OpCode::kAdd, 7));
  wal.Append(0, 256, ws, {}, TestArena());

  Manifest before;
  ASSERT_TRUE(Manifest::Load(dir, &before));
  ASSERT_TRUE(before.checkpoint.empty());

  // First attempt: the checkpoint body write hits ENOSPC. This is NOT a WAL failure —
  // the log keeps appending; only the snapshot is abandoned.
  const CheckpointStats failed = wal.WriteCheckpoint(store);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.failure.err, ENOSPC);
  EXPECT_FALSE(wal.failed());
  EXPECT_EQ(wal.checkpoint_failures(), 1u);
  EXPECT_EQ(wal.checkpoints_taken(), 0u);
  // Rollback: manifest untouched (no checkpoint), and no tmp debris.
  Manifest after;
  ASSERT_TRUE(Manifest::Load(dir, &after));
  EXPECT_TRUE(after.checkpoint.empty());
  EXPECT_FALSE(DirContainsSuffix(dir, ".tmp"));

  // Retry at a "later barrier": the once-rule is spent, so it succeeds.
  const CheckpointStats ok = wal.WriteCheckpoint(store);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(wal.checkpoints_taken(), 1u);
  Manifest final_m;
  ASSERT_TRUE(Manifest::Load(dir, &final_m));
  EXPECT_FALSE(final_m.checkpoint.empty());
  RemoveDirRecursive(dir);
}

TEST(CheckpointFault, ManifestFailureAfterCheckpointWriteLatchesWal) {
  const std::string dir = FreshDir("ckpt_manifest");
  FaultInjectingIoEnv fenv(10);
  FaultRule rule;
  rule.ops = IoOpBit(IoOp::kRename);
  rule.path_substring = "MANIFEST";
  rule.after = 1;  // StartLogging's manifest save passes; the checkpoint repoint fails
  rule.err = EIO;
  rule.sticky = true;
  fenv.AddRule(rule);

  Store store(256);
  store.LoadInt(Key::FromU64(1), 5);
  WalOptions wo;
  wo.env = &fenv;
  wo.retry = FastRetry();
  WriteAheadLog wal(dir, wo);
  wal.StartLogging();
  ASSERT_FALSE(wal.failed());

  const CheckpointStats st = wal.WriteCheckpoint(store);
  // The checkpoint file was written but the manifest can no longer be repointed: that
  // IS a WAL failure (no future durable transition can be recorded).
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(wal.failed());
  EXPECT_EQ(wal.failed_op(), IoOp::kRename);
  RemoveDirRecursive(dir);
}

// ---- Database-level degraded mode ------------------------------------------------------

void AddProc(Txn& txn, const TxnArgs& a) { txn.Add(a.k1, a.n); }
void ReadProc(Txn& txn, const TxnArgs& a) { txn.GetInt(a.k1); }

// Counter+marker scheme (same as persist_test.cc's torn-tail fuzz): txn i does
// Add(kCounter, 1) and PutInt(kMarker, i). With one worker, TID order == submission
// order, so any recovered state must satisfy counter == r, marker == r - 1: exactly a
// committed prefix, never a gap.
class DegradedMode : public ::testing::Test {
 protected:
  static constexpr int kTxns = 200;
  const Key kCounter = Key::FromU64(1);
  const Key kMarker = Key::FromU64(2);

  Options BaseOptions(const std::string& dir, IoEnv* env) {
    Options o;
    o.protocol = Protocol::kDoppel;
    o.num_workers = 1;
    o.phase_us = 2000;
    o.store_capacity = 1 << 10;
    o.wal_dir = dir.c_str();
    o.wal_flush_us = 200;
    o.io_env = env;
    return o;
  }

  void Populate(Database& db) {
    db.store().LoadInt(kCounter, 0);
    db.store().LoadInt(kMarker, 0);
  }

  // Runs the counter+marker workload against `db` until done; returns how many
  // committed (every non-commit must be a durability-lost abort).
  int RunWorkload(Database& db) {
    int committed = 0;
    for (int i = 0; i < kTxns; ++i) {
      TxnResult r = db.Execute([this, i](Txn& txn) {
        txn.Add(kCounter, 1);
        txn.PutInt(kMarker, i);
      });
      if (r.committed) {
        ++committed;
      } else {
        EXPECT_EQ(r.abort, TxnAbort::kDurabilityLost);
      }
    }
    return committed;
  }

  // Reopens the directory with a clean env and asserts the exact-prefix property.
  void CheckPrefix(const std::string& dir, int committed) {
    Options o = BaseOptions(dir, nullptr);
    Database db(o);
    Populate(db);
    db.Start();
    const std::int64_t counter = IntAt(db.store(), kCounter);
    const std::int64_t marker = IntAt(db.store(), kMarker);
    EXPECT_LE(counter, committed);
    if (counter > 0) {
      EXPECT_EQ(marker, counter - 1);
    } else {
      EXPECT_EQ(marker, 0);
    }
    db.Stop();
  }
};

TEST_F(DegradedMode, EnospcMidRunServesReadsBouncesWritesRecoversPrefix) {
  const std::string dir = FreshDir("degraded_enospc");
  FaultInjectingIoEnv fenv(FuzzSeed());
  FaultRule full;
  full.ops = IoOpBit(IoOp::kWrite);
  full.path_substring = "wal-";
  full.after = 3;  // header + a couple of flushed batches, then the disk fills
  full.err = ENOSPC;
  full.sticky = true;
  fenv.AddRule(full);

  int committed = 0;
  {
    Options o = BaseOptions(dir, &fenv);
    Database db(o);
    Populate(db);
    db.Start();
    committed = RunWorkload(db);

    // The sticky ENOSPC must have latched by now (the flusher runs every 200us).
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!db.degraded() && std::chrono::steady_clock::now() < deadline) {
      db.Execute([this](Txn& txn) { txn.Add(kCounter, 1); });
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(db.degraded());
    const DurabilityHealth h = db.durability_health();
    EXPECT_TRUE(h.degraded);
    EXPECT_EQ(h.error, ENOSPC);
    EXPECT_STREQ(h.op, "write");

    // Write submissions bounce at the door...
    TxnRequest wr;
    wr.proc = AddProc;
    wr.args.k1 = kCounter;
    wr.args.n = 1;
    TxnHandle h1;
    EXPECT_EQ(db.TrySubmit(wr, &h1), SubmitStatus::kReadOnly);
    // ... blocking submits terminate with the durability-lost abort ...
    const TxnResult blocked = db.Submit(wr).Wait();
    EXPECT_FALSE(blocked.committed);
    EXPECT_EQ(blocked.abort, TxnAbort::kDurabilityLost);
    // ... and reads keep serving.
    TxnRequest rd;
    rd.proc = ReadProc;
    rd.args.k1 = kCounter;
    rd.read_only = true;
    const TxnResult read = db.Submit(rd).Wait();
    EXPECT_TRUE(read.committed);
    // A "read-only" submission that lies and writes is caught at commit.
    TxnRequest liar;
    liar.proc = AddProc;
    liar.args.k1 = kCounter;
    liar.args.n = 1;
    liar.read_only = true;
    const TxnResult lied = db.Submit(liar).Wait();
    EXPECT_FALSE(lied.committed);
    EXPECT_EQ(lied.abort, TxnAbort::kDurabilityLost);

    const Database::Stats stats = db.CollectStats();
    db.Stop();  // drains cleanly despite the latched WAL
    EXPECT_GE(db.CollectStats().durability_aborts, stats.durability_aborts);
  }
  CheckPrefix(dir, committed);
  RemoveDirRecursive(dir);
}

TEST_F(DegradedMode, FailedFsyncMidRunDegradesAndRecoversPrefix) {
  const std::string dir = FreshDir("degraded_fsync");
  FaultInjectingIoEnv fenv(FuzzSeed() ^ 0xf5ecULL);
  FaultRule sick;
  sick.ops = IoOpBit(IoOp::kFsync);
  sick.path_substring = "wal-";
  sick.after = 2;
  sick.err = EIO;
  sick.once = true;
  fenv.AddRule(sick);

  int committed = 0;
  {
    Options o = BaseOptions(dir, &fenv);
    o.wal_fsync = true;
    Database db(o);
    Populate(db);
    db.Start();
    committed = RunWorkload(db);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!db.degraded() && std::chrono::steady_clock::now() < deadline) {
      db.Execute([this](Txn& txn) { txn.Add(kCounter, 1); });
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(db.degraded());
    EXPECT_STREQ(db.durability_health().op, "fsync");
    db.Stop();
  }
  CheckPrefix(dir, committed);
  RemoveDirRecursive(dir);
}

// ---- Seeded fault-injection fuzz -------------------------------------------------------

// Random fault schedules against the full Doppel protocol (checkpoints, rotation,
// replication cuts all active). The no-abort contract: the process never dies, every
// transaction ends committed or durability-lost-aborted, Stop drains, and a clean
// reopen recovers exactly a committed prefix.
TEST(IoFaultFuzz, RandomScheduleNeverAborts) {
  Rng rng(FuzzSeed() ^ 0x10fa17ULL);
  const Key kCounter = Key::FromU64(1);
  const Key kMarker = Key::FromU64(2);
  constexpr int kSchedules = 12;
  constexpr int kTxns = 150;

  for (int sched = 0; sched < kSchedules; ++sched) {
    const std::string dir = FreshDir("io_fuzz");
    FaultInjectingIoEnv fenv(rng.Next());
    const std::uint32_t n_rules = 1 + static_cast<std::uint32_t>(rng.NextBounded(3));
    for (std::uint32_t i = 0; i < n_rules; ++i) {
      static const IoOp kOps[] = {IoOp::kWrite, IoOp::kFsync, IoOp::kRename,
                                  IoOp::kTruncate, IoOp::kOpen};
      static const char* kPaths[] = {"wal-", "ckpt-", "MANIFEST"};
      static const int kErrs[] = {ENOSPC, EIO, EINTR};
      FaultRule r;
      r.ops = IoOpBit(kOps[rng.NextBounded(5)]);
      r.path_substring = kPaths[rng.NextBounded(3)];
      r.after = rng.NextBounded(60);
      r.err = kErrs[rng.NextBounded(3)];
      if (r.err == EINTR) {
        r.probability = 0.5;  // recurring transient noise
      } else {
        (rng.NextBounded(2) == 0 ? r.sticky : r.once) = true;
      }
      fenv.AddRule(r);
    }

    Options o;
    o.protocol = Protocol::kDoppel;
    o.num_workers = 1;
    o.phase_us = 1000;
    o.store_capacity = 1 << 10;
    o.wal_dir = dir.c_str();
    o.wal_flush_us = 200;
    o.wal_segment_bytes = 4096;  // force rotations
    o.checkpoint_interval_us = 3000;
    o.replication_cuts = true;
    o.wal_fsync = rng.NextBounded(2) == 0;
    o.io_env = &fenv;

    int committed = 0;
    {
      Database db(o);
      db.store().LoadInt(kCounter, 0);
      db.store().LoadInt(kMarker, 0);
      db.Start();
      for (int i = 0; i < kTxns; ++i) {
        const TxnResult r = db.Execute([&, i](Txn& txn) {
          txn.Add(kCounter, 1);
          txn.PutInt(kMarker, i);
        });
        if (r.committed) {
          ++committed;
        } else {
          // The ONLY legal abort under an I/O fault schedule.
          ASSERT_EQ(r.abort, TxnAbort::kDurabilityLost)
              << "schedule " << sched << " txn " << i;
        }
      }
      db.Stop();  // must drain cleanly, degraded or not
    }

    // Clean reopen: recovery tolerates whatever the schedule left behind and restores
    // exactly a committed prefix (checkpoint + replay, never a gap, never garbage).
    {
      Options clean = o;
      clean.io_env = nullptr;
      Database db(clean);
      db.store().LoadInt(kCounter, 0);
      db.store().LoadInt(kMarker, 0);
      db.Start();
      const std::int64_t counter = IntAt(db.store(), kCounter);
      const std::int64_t marker = IntAt(db.store(), kMarker);
      ASSERT_LE(counter, committed) << "schedule " << sched;
      if (counter > 0) {
        ASSERT_EQ(marker, counter - 1) << "schedule " << sched;
      } else {
        ASSERT_EQ(marker, 0) << "schedule " << sched;
      }
      db.Stop();
    }
    RemoveDirRecursive(dir);
  }
}

}  // namespace
}  // namespace doppel
