#include "src/core/doppel_engine.h"

#include <algorithm>
#include <bit>
#include <thread>
#include <utility>

#include "src/common/dassert.h"
#include "src/common/timing.h"

namespace doppel {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kDoppel:
      return "Doppel";
    case Protocol::kOcc:
      return "OCC";
    case Protocol::kTwoPL:
      return "2PL";
    case Protocol::kAtomic:
      return "Atomic";
  }
  return "?";
}

DoppelEngine::DoppelEngine(Store& store, const Options& opts,
                           const std::atomic<bool>& stop)
    : OccEngine(store), opts_(opts), stop_(stop) {
  runner_cfg_.backoff_min_ns = opts.backoff_min_us * 1000;
  runner_cfg_.backoff_max_ns = opts.backoff_max_us * 1000;
}

void DoppelEngine::RegisterWorkers(const std::vector<std::unique_ptr<Worker>>& workers) {
  workers_.clear();
  for (const auto& w : workers) {
    w->ext = std::make_unique<DoppelWorkerState>(opts_.classifier);
    workers_.push_back(w.get());
  }
}

// ---- Access routing -------------------------------------------------------------------

void DoppelEngine::Read(Worker& w, Txn& txn, Record* r, ReadResult* out) {
  // "Recall that split data cannot be read during a split phase" (§7): doom the
  // transaction; it will be stashed and restarted in the next joined phase.
  if (w.LoadPhase() == Phase::kSplit && r->IsSplit()) {
    txn.MarkStash(r, OpCode::kGet);
    out->present = false;
    return;
  }
  OccRead(txn, r, out);
}

void DoppelEngine::Write(Worker& w, Txn& txn, PendingWrite&& pw) {
  if (w.LoadPhase() == Phase::kSplit && pw.record->IsSplit()) {
    if (pw.op == static_cast<OpCode>(pw.record->split_op())) {
      txn.split_writes().push_back(std::move(pw));
      return;
    }
    // "within a given phase, any operation but the selected operation causes the
    // containing transaction to abort (and retry in the next joined phase)" (§4).
    txn.MarkStash(pw.record, pw.op);
    return;
  }
  OccBufferWrite(txn, std::move(pw));
}

std::size_t DoppelEngine::Scan(Worker& w, Txn& txn, std::uint64_t table,
                               std::uint64_t lo, std::uint64_t hi, std::size_t limit,
                               ScanFn fn) {
  return OccScan(txn, table, lo, hi, limit, fn,
                 /*stash_on_split=*/w.LoadPhase() == Phase::kSplit);
}

TxnStatus DoppelEngine::Commit(Worker& w, Txn& txn) {
  // Fig. 3: OCC commit for the read set and reconciled write set; if that succeeds, the
  // split-write set is applied to this core's slices — no locks or version checks, since
  // slices are invisible to concurrently running transactions.
  const TxnStatus status = OccCommit(w, txn);
  if (status != TxnStatus::kCommitted) {
    return status;
  }
  if (!txn.split_writes().empty()) {
    DOPPEL_DCHECK(w.LoadPhase() == Phase::kSplit);
    auto& slices = Ext(w).slices;
    for (const PendingWrite& sw : txn.split_writes()) {
      const std::int32_t idx = sw.record->slice_index();
      DOPPEL_DCHECK(idx >= 0 && static_cast<std::size_t>(idx) < slices.size());
      SliceApply(slices[static_cast<std::size_t>(idx)], sw, txn.arena());
    }
  }
  return TxnStatus::kCommitted;
}

void DoppelEngine::OnConflict(Worker& w, Txn& txn) {
  if (w.LoadPhase() != Phase::kJoined) {
    return;
  }
  ConflictSampler& sampler = Ext(w).sampler;
  if (!txn.conflicts.empty()) {
    for (const auto& [record, op] : txn.conflicts) {
      sampler.RecordConflict(record->key(), op);
    }
  } else if (txn.conflict_record != nullptr) {
    sampler.RecordConflict(txn.conflict_record->key(), txn.conflict_op);
  }
  for (const ScanSetConflict& sc : txn.scan_set_conflicts) {
    if (sc.has_record) {
      sampler.RecordScanConflict(sc.table, sc.partition, sc.key, sc.op);
    } else {
      sampler.RecordScanConflict(sc.table, sc.partition);
    }
  }
}

void DoppelEngine::OnStash(Worker& w, const StashSignal& s) {
  const std::int32_t idx = s.record->slice_index();
  auto& slices = Ext(w).slices;
  if (idx >= 0 && static_cast<std::size_t>(idx) < slices.size()) {
    slices[static_cast<std::size_t>(idx)].stashes++;
  }
  // Pressure gauge feeding the coordinator's hurry heuristic; racy reads fine.
  stash_pressure_.fetch_add(1, std::memory_order_relaxed);
}

// ---- Worker-side phase transitions (§5.4) ---------------------------------------------

void DoppelEngine::BetweenTxns(Worker& w) { MaybeTransition(w); }

void DoppelEngine::MaybeTransition(Worker& w) {
  const std::uint64_t pend = ctrl_.pending();
  if (pend == w.seen_word) {
    return;
  }
  const Phase target = PhaseController::DecodePhase(pend);
  if (w.LoadPhase() == Phase::kSplit) {
    // Leaving the split phase: reconcile this core's slices into the global store.
    MergeWorkerSlices(w);
  }
  if (target == Phase::kSplit) {
    // "our workers delay acknowledging a split phase until they have committed or
    // aborted all previously-stashed transactions."
    DrainStash(w);
  }
  w.acked_word.store(pend, std::memory_order_release);
  // Yield while waiting for the release: the coordinator needs a core to collect acks and
  // run the barrier work, and on machines with as many workers as cores a pure spin here
  // would make every phase change cost scheduler timeslices instead of microseconds.
  std::uint32_t spins = 0;
  while (ctrl_.released() != pend) {
    if (stop_.load(std::memory_order_relaxed)) {
      return;
    }
    if (++spins < 64) {
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }
  if (target == Phase::kSplit) {
    PrepareSlices(w);
  }
  // Worker-local phase mirror: only this worker reads it for decisions; cross-thread
  // observers (stats) tolerate staleness. The barrier ack provides real ordering.
  w.phase.store(target, std::memory_order_relaxed);
  w.seen_word = pend;
}

void DoppelEngine::MergeWorkerSlices(Worker& w) {
  SplitPlan* plan = plan_.get();
  if (plan == nullptr) {
    return;
  }
  auto& slices = Ext(w).slices;
  const std::size_t n = std::min(plan->entries.size(), slices.size());
  for (std::size_t i = 0; i < n; ++i) {
    SplitEntry& e = plan->entries[i];
    Slice& s = slices[i];
    if (s.writes != 0) {
      // Classifier tallies, read only at the next barrier (workers quiesced):
      // the barrier handshake orders them, relaxed suffices here.
      e.writes.fetch_add(s.writes, std::memory_order_relaxed);
    }
    if (s.stashes != 0) {
      e.stashes.fetch_add(s.stashes, std::memory_order_relaxed);
    }
    if (s.dirty) {
      const std::uint64_t tid = w.GenerateTid(Record::TidOf(e.record->LoadTidWord()));
      MergeSliceToGlobal(e.record, e.op, s, tid, &store_.index());
    }
    // Consume the slice so the merge is idempotent. MaybeTransition can re-enter after
    // its early stop_ return (which acks but leaves seen_word stale); without this, the
    // re-entered transition re-merged the same accumulator and double-applied
    // kAdd/kMult deltas (and double-counted the write/stash samples) at shutdown.
    s.dirty = false;
    s.writes = 0;
    s.stashes = 0;
  }
}

void DoppelEngine::DrainStash(Worker& w) {
  // Relaxed stop poll: reacting an iteration late is harmless.
  while (!w.stash.empty() && !stop_.load(std::memory_order_relaxed)) {
    PendingTxn pt = std::move(w.stash.front());
    w.stash.pop_front();
    // Still in the joined phase (we have not acked yet), so this cannot re-stash.
    RunPendingTxn(*this, runner_cfg_, w, std::move(pt));
  }
}

void DoppelEngine::PrepareSlices(Worker& w) {
  const SplitPlan* plan = plan_.get();
  auto& slices = Ext(w).slices;
  const std::size_t n = plan == nullptr ? 0 : plan->size();
  if (slices.size() < n) {
    slices.resize(n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    slices[i].Reset(plan->entries[i].op, plan->entries[i].topk_k);
  }
}

// ---- Coordinator interface ------------------------------------------------------------

void DoppelEngine::MarkSplitManually(const Key& key, OpCode op, std::size_t topk_k) {
  DOPPEL_CHECK(IsSplittable(op));
  Record* r = store_.GetOrCreate(key, OpRecordType(op), topk_k);
  // Manual labels hold this pointer for the engine's lifetime: pin it (never unpinned)
  // so a delete of the key can empty the record but never reclaim it out from under
  // the plan builder.
  r->Pin();
  manual_.push_back(Labeled{r, op});
}

bool DoppelEngine::HasSplitCandidates() const {
  if (!manual_.empty() || !retained_.empty()) {
    return true;
  }
  if (opts_.manual_split_only) {
    return false;
  }
  for (const Worker* w : workers_) {
    const auto& ext = static_cast<const DoppelWorkerState&>(*w->ext);
    if (ext.sampler.ApproxTotal() >= opts_.classifier.min_conflicts) {
      return true;
    }
  }
  return false;
}

void DoppelEngine::WaitForWorkerAcks() const {
  const std::uint64_t pend = ctrl_.pending();
  for (const Worker* w : workers_) {
    std::uint32_t spins = 0;
    while (w->acked_word.load(std::memory_order_acquire) != pend) {
      // Relaxed stop poll: shutdown needs no ordering beyond the acks themselves.
      if (stop_.load(std::memory_order_relaxed)) {
        return;
      }
      if (++spins < 1024) {
        CpuRelax();
      } else {
        std::this_thread::yield();  // let the worker run to its next txn boundary
      }
    }
  }
}

void DoppelEngine::BarrierBuildPlan() {
  const ClassifierOptions& c = opts_.classifier;
  cycle_++;

  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t ops[kNumOps] = {};
  };
  // Per-partition scan-conflict aggregation across workers (the entry universe is tiny:
  // each worker's scan table holds at most 64 stripes, so linear search suffices).
  struct ScanAgg {
    std::uint64_t table = 0;
    std::uint32_t partition = 0;
    std::uint64_t count = 0;
    std::uint64_t phantoms = 0;
    std::uint64_t ops[kNumOps] = {};
    std::vector<std::pair<Key, std::uint64_t>> votes;
  };
  std::unordered_map<Record*, Agg> agg;
  std::vector<ScanAgg> sagg;
  std::uint64_t total = 0;
  if (!opts_.manual_split_only) {
    for (Worker* w : workers_) {
      ConflictSampler& s = Ext(*w).sampler;
      for (const ConflictSampler::ScanEntry& e : s.scan_entries()) {
        if (!e.used) {
          continue;
        }
        ScanAgg* a = nullptr;
        for (ScanAgg& sa : sagg) {
          if (sa.table == e.table && sa.partition == e.partition) {
            a = &sa;
            break;
          }
        }
        if (a == nullptr) {
          sagg.push_back(ScanAgg{});
          a = &sagg.back();
          a->table = e.table;
          a->partition = e.partition;
        }
        // Clamp to what this entry's own tallies account for (space-saving eviction
        // inheritance, same reasoning as the record table below).
        std::uint64_t tally_sum = e.phantoms;
        for (int i = 0; i < kNumOps; ++i) {
          a->ops[i] += e.op_counts[i];
          tally_sum += e.op_counts[i];
        }
        a->count += std::min<std::uint64_t>(e.count, tally_sum);
        a->phantoms += e.phantoms;
        if (e.has_hot && e.hot_votes > 0) {
          bool found = false;
          for (auto& [key, votes] : a->votes) {
            if (key == e.hot_key) {
              votes += e.hot_votes;
              found = true;
              break;
            }
          }
          if (!found) {
            a->votes.emplace_back(e.hot_key, e.hot_votes);
          }
        }
      }
      for (const ConflictSampler::Entry& e : s.entries()) {
        if (!e.used) {
          continue;
        }
        Record* r = store_.Find(e.key);
        if (r == nullptr) {
          continue;
        }
        Agg& a = agg[r];
        // Clamp to the op-tally sum: eviction inheritance (space-saving) can leave
        // e.count above what this key's own sampled ops account for. Counting the raw
        // value skewed min_splittable_fraction both ways — an inflated count made the
        // test refuse genuine heavy hitters, and attributing the inherited mass to an
        // op bucket instead would let a churn key that evicted a big victim qualify.
        std::uint64_t op_sum = 0;
        for (int i = 0; i < kNumOps; ++i) {
          a.ops[i] += e.op_counts[i];
          op_sum += e.op_counts[i];
        }
        const std::uint64_t counted = std::min<std::uint64_t>(e.count, op_sum);
        a.count += counted;
        total += counted;
      }
      s.Clear();
    }
  }

  struct Candidate {
    Record* record;
    OpCode op;
    std::uint64_t score;
  };
  std::vector<Candidate> cands;
  // Most-sampled splittable op in `ops`, plus the splittable mass; -1 if none.
  auto best_splittable_op = [](const std::uint64_t (&ops)[kNumOps],
                               std::uint64_t* splittable_sum) {
    std::uint64_t sum = 0;
    int best = -1;
    std::uint64_t best_count = 0;
    for (int i = 0; i < kNumOps; ++i) {
      if (!IsSplittable(static_cast<OpCode>(i))) {
        continue;
      }
      sum += ops[i];
      if (ops[i] > best_count) {
        best_count = ops[i];
        best = i;
      }
    }
    if (splittable_sum != nullptr) {
      *splittable_sum = sum;
    }
    return best;
  };
  // Inside an un-split suppression window (§5.5 damping)? Expired windows are erased.
  auto is_suppressed = [&](Record* r) {
    const auto it = suppressed_until_.find(r);
    if (it == suppressed_until_.end()) {
      return false;
    }
    if (cycle_ < it->second) {
      return true;
    }
    suppressed_until_.erase(it);
    return false;
  };
  for (const auto& [record, a] : agg) {
    std::uint64_t splittable = 0;
    const int best = best_splittable_op(a.ops, &splittable);
    if (best < 0 || a.ops[best] == 0) {
      continue;  // contended, but only on unsplittable operations
    }
    if (a.count < c.min_conflicts ||
        static_cast<double>(a.count) <
            c.split_conflict_fraction * static_cast<double>(total) ||
        static_cast<double>(splittable) <
            c.min_splittable_fraction * static_cast<double>(a.count)) {
      continue;
    }
    if (is_suppressed(record)) {
      continue;
    }
    cands.push_back(Candidate{record, static_cast<OpCode>(best), a.count});
  }
  // Scan-window votes: a contended partition whose conflicts concentrate on one interior
  // record nominates that record for splitting on its winning writers' operation. This
  // is the signal record-level sampling cannot produce — scanners losing validation
  // charge kGet, so min_splittable_fraction would keep a scan-contended record
  // reconciled forever.
  for (const ScanAgg& a : sagg) {
    if (a.count < c.min_scan_conflicts) {
      continue;
    }
    const std::pair<Key, std::uint64_t>* top = nullptr;
    for (const auto& kv : a.votes) {
      if (top == nullptr || kv.second > top->second) {
        top = &kv;
      }
    }
    if (top == nullptr ||
        static_cast<double>(top->second) <
            c.scan_vote_fraction * static_cast<double>(a.count)) {
      continue;
    }
    Record* r = store_.Find(top->first);
    if (r == nullptr) {
      continue;
    }
    // Split on the voted record's own last committed write op — not the partition-wide
    // op aggregate, which can carry a different record's writers (splitting X on Y's op
    // would stash every one of X's writers for up to a phase each).
    const OpCode op = static_cast<OpCode>(r->last_write_op());
    if (!IsSplittable(op)) {
      continue;  // phantoms only, or unsplittable writers: narrowing territory instead
    }
    if (is_suppressed(r)) {
      continue;
    }
    cands.push_back(Candidate{r, op, a.count});
  }
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) { return a.score > b.score; });

  auto plan = std::make_unique<SplitPlan>();
  plan->version = cycle_;
  auto add = [&](Record* r, OpCode op) {
    if (r->IsSplit() ||
        plan->entries.size() >= static_cast<std::size_t>(c.max_split_records)) {
      return;
    }
    plan->entries.emplace_back(r, op, r->topk_k());
    r->MarkSplit(static_cast<std::uint8_t>(op),
                 static_cast<std::int32_t>(plan->entries.size() - 1));
  };
  for (const Labeled& m : manual_) {
    add(m.record, m.op);
  }
  for (const Labeled& rt : retained_) {
    add(rt.record, rt.op);
    // The cross-phase pin taken at BarrierAfterReconcile has done its job: the record
    // is now either split-marked (sweeper-exempt) or dropped from the plan (no pointer
    // outlives this loop). Workers — including the sweeping one — are parked at this
    // barrier, so the pin transition cannot race a sweep.
    rt.record->Unpin();
  }
  for (const Candidate& cand : cands) {
    add(cand.record, cand.op);
  }
  retained_.clear();
  // Stats gauge; racy readers by contract.
  last_plan_size_.store(plan->size(), std::memory_order_relaxed);
  {
    plan_snapshot_mu_.lock();
    plan_snapshot_.clear();
    for (const SplitEntry& e : plan->entries) {
      plan_snapshot_.emplace_back(e.record->key(), e.op);
    }
    plan_snapshot_mu_.unlock();
  }
  plan_ = std::move(plan);

  // Gauge reset at the barrier (workers quiesced; no ordering needed).
  stash_pressure_.store(0, std::memory_order_relaxed);
  split_start_commits_ = SampleCommits();

  // Workers are still quiesced at this barrier: the only moment adaptive boundary
  // narrowing (which re-bins keys under the partition lock set) is race-free.
  TuneAdaptiveTables();
}

// ---- Adaptive index partitioning ------------------------------------------------------

DoppelEngine::TuneDeltas DoppelEngine::ComputeTuneDeltas(
    const OrderedIndex::TableIndex& t) {
  TuneDeltas d;
  // Barrier-time telemetry reads (workers quiesced, every counter author parked):
  // the barrier handshake orders them, relaxed suffices.
  for (std::size_t i = 0; i < t.partitions.size(); ++i) {
    const std::uint64_t ins = t.partitions[i].inserts.load(std::memory_order_relaxed);
    const std::uint64_t delta = ins - t.tune_insert_marks[i];
    d.inserts += delta;
    d.hot_inserts = std::max(d.hot_inserts, delta);
    d.conflict_total += t.partitions[i].scan_conflicts.load(std::memory_order_relaxed);
  }
  d.conflicts = d.conflict_total - t.tune_conflict_mark;
  return d;
}

unsigned DoppelEngine::NarrowTargetShift(const OrderedIndex::TableIndex& t) {
  // Spread [0, 2 * max_key] over the table's stripe capacity. The doubling is growth
  // headroom: narrowing is irreversible (no widening), so an append-style table whose
  // ids keep climbing must be able to at least double before new keys start clamping
  // into the last stripe and re-serializing there.
  const std::uint64_t max_key = t.max_key.load(std::memory_order_relaxed);
  const unsigned log2_cap =
      static_cast<unsigned>(std::bit_width(t.partitions.size()) - 1);
  const unsigned need = static_cast<unsigned>(std::bit_width(max_key)) + 1;
  return need > log2_cap ? need - log2_cap : 0;
}

bool DoppelEngine::WouldNarrow(const OrderedIndex::TableIndex& t,
                               const TuneDeltas& d) const {
  if (t.partitions.size() < 2) {
    return false;  // NarrowTable would refuse; don't trigger useless quiesce barriers
  }
  const IndexTuneOptions& tu = opts_.index_tune;
  const bool insert_skew =
      d.inserts >= tu.min_inserts &&
      static_cast<double>(d.hot_inserts) >=
          tu.hot_stripe_fraction * static_cast<double>(d.inserts);
  const bool phantom_pressure = d.conflicts >= tu.scan_conflict_pressure;
  if (!insert_skew && !phantom_pressure) {
    return false;
  }
  // Barrier-time read (coordinator is the only shift writer); relaxed suffices.
  return NarrowTargetShift(t) < t.shift.load(std::memory_order_relaxed);
}

bool DoppelEngine::IndexTunePending() {
  if (!opts_.index_tune.adaptive_enabled) {
    return false;
  }
  bool pending = false;
  store_.index().ForEachTable([&](OrderedIndex::TableIndex& t) {
    if (!pending && t.adaptive) {
      pending = WouldNarrow(t, ComputeTuneDeltas(t));
    }
  });
  return pending;
}

void DoppelEngine::TuneAdaptiveTables() {
  if (!opts_.index_tune.adaptive_enabled) {
    return;
  }
  const IndexTuneOptions& tu = opts_.index_tune;
  store_.index().ForEachTable([&](OrderedIndex::TableIndex& t) {
    if (!t.adaptive) {
      return;
    }
    const TuneDeltas d = ComputeTuneDeltas(t);
    // Leave a trickle accumulating across barriers; evaluate (and start a fresh
    // interval) only once either telemetry stream has enough mass to mean something.
    if (d.inserts < tu.min_inserts && d.conflicts < tu.scan_conflict_pressure) {
      return;
    }
    if (WouldNarrow(t, d)) {
      store_.index().NarrowTable(t, NarrowTargetShift(t));
    }
    for (std::size_t i = 0; i < t.partitions.size(); ++i) {
      // Barrier-time telemetry mark (workers quiesced); relaxed suffices.
      t.tune_insert_marks[i] = t.partitions[i].inserts.load(std::memory_order_relaxed);
    }
    t.tune_conflict_mark = d.conflict_total;
  });
}

void DoppelEngine::BarrierAfterReconcile() {
  // Normally empty here (BarrierBuildPlan consumed-and-unpinned it); on a shutdown path
  // that skipped plan building, drop the stale pins so the balance stays exact.
  for (const Labeled& rt : retained_) {
    rt.record->Unpin();
  }
  retained_.clear();
  if (plan_ == nullptr) {
    return;
  }
  const ClassifierOptions& c = opts_.classifier;
  for (SplitEntry& e : plan_->entries) {
    // Barrier-time classifier reads (workers quiesced past their merges): the
    // barrier handshake orders them, relaxed suffices.
    const std::uint64_t writes = e.writes.load(std::memory_order_relaxed);
    const std::uint64_t stashes = e.stashes.load(std::memory_order_relaxed);
    const bool stash_heavy =
        static_cast<double>(stashes) > c.unsplit_stash_ratio * static_cast<double>(writes);
    if (writes >= c.min_split_writes && !stash_heavy) {
      // retained_ carries this pointer across the coming joined phase, during which the
      // record is no longer split-marked (ClearSplit below) and so would be fair game
      // for the epoch sweeper if its key were deleted. Pin before clearing the split
      // mark; BarrierBuildPlan unpins once the next plan is built. Workers are parked
      // at this barrier, so pin-before-clear cannot race a sweep.
      e.record->Pin();
      retained_.push_back(Labeled{e.record, e.op});
    } else if (stash_heavy && stashes > 0) {
      // Reads dominate: move the record back to reconciled and damp oscillation.
      suppressed_until_[e.record] = cycle_ + c.resplit_suppress_phases;
    }
    e.record->ClearSplit();
  }
  plan_.reset();
}

bool DoppelEngine::CheckpointDue() const {
  if (wal_ == nullptr || wal_->failed()) {
    // Degraded (permanent WAL failure): a checkpoint could not update the manifest, so
    // stop asking for barriers on its behalf.
    return false;
  }
  // A failed checkpoint backs off before the next attempt (see BarrierMaybeCheckpoint);
  // until then, don't request barriers that would just retry into the same full disk.
  // Coordinator thread only — the plain reads are safe.
  if (NowNanos() < checkpoint_backoff_until_ns_) {
    return false;
  }
  // Sticky request flag; polled at barriers, no payload rides on it.
  if (checkpoint_requested_.load(std::memory_order_relaxed)) {
    return true;
  }
  if (opts_.checkpoint_interval_us == 0) {
    return false;
  }
  // First barrier after Start checkpoints immediately (last_checkpoint_ns_ == 0), then
  // the cadence applies.
  return last_checkpoint_ns_ == 0 ||
         NowNanos() - last_checkpoint_ns_ >= opts_.checkpoint_interval_us * 1000;
}

void DoppelEngine::BarrierMaybeCheckpoint() {
  if (!CheckpointDue()) {
    return;
  }
  // Flag consume at the barrier; no payload rides on it.
  checkpoint_requested_.store(false, std::memory_order_relaxed);
  const CheckpointStats st = wal_->WriteCheckpoint(store_);
  if (!st.ok()) {
    // The checkpoint rolled back (tmp removed, manifest untouched, old checkpoint
    // live): retry at a later barrier with exponential backoff so a full disk isn't
    // hammered every interval. Re-arm the sticky request so the retry happens even
    // when the cadence alone wouldn't ask again.
    checkpoint_consecutive_failures_ =
        std::min<std::uint32_t>(checkpoint_consecutive_failures_ + 1, 6);
    const std::uint64_t base_ns =
        std::max<std::uint64_t>(opts_.checkpoint_interval_us * 1000, 100'000'000ull);
    checkpoint_backoff_until_ns_ =
        NowNanos() + (base_ns << (checkpoint_consecutive_failures_ - 1));
    // Sticky re-arm read only by this coordinator thread at the next barrier.
    checkpoint_requested_.store(true, std::memory_order_relaxed);
    return;
  }
  checkpoint_consecutive_failures_ = 0;
  checkpoint_backoff_until_ns_ = 0;
  last_checkpoint_ns_ = NowNanos();
}

bool DoppelEngine::ReplicationCutDue() const {
  return wal_ != nullptr && wal_->logging() &&
         (opts_.replication_cuts || wal_->retention_leases() > 0);
}

void DoppelEngine::BarrierEmitReplicationCut() {
  if (!ReplicationCutDue()) {
    return;
  }
  // Workers are parked at the barrier and their acks give happens-before, so plain
  // reads of each worker's TID clock see its final pre-barrier value; the max is the
  // newest committed TID the cut covers.
  std::uint64_t max_tid = 0;
  for (const Worker* w : workers_) {
    max_tid = std::max(max_tid, w->last_tid);
  }
  wal_->AppendCut(max_tid);
}

bool DoppelEngine::ShouldHurrySplitEnd() const {
  // Pressure-gauge peek; a slightly stale value just shifts the heuristic a tick.
  const std::uint64_t stashes = stash_pressure_.load(std::memory_order_relaxed);
  if (stashes >= opts_.stash_hard_limit) {
    return true;
  }
  if (stashes < 1000) {
    return false;
  }
  const std::uint64_t commits = SampleCommits() - split_start_commits_;
  return static_cast<double>(stashes) >
         opts_.hurry_stash_fraction * static_cast<double>(stashes + commits);
}

std::vector<std::pair<Key, OpCode>> DoppelEngine::LastPlanEntries() const {
  plan_snapshot_mu_.lock();
  std::vector<std::pair<Key, OpCode>> out = plan_snapshot_;
  plan_snapshot_mu_.unlock();
  return out;
}

std::uint64_t DoppelEngine::SampleCommits() const {
  std::uint64_t sum = 0;
  for (const Worker* w : workers_) {
    sum += w->shared_commits.Load();
  }
  return sum;
}

}  // namespace doppel
