// Two-phase locking baseline (§8.1).
//
// Per-record reader/writer spinlocks held until commit. The paper's 2PL (Go RWMutex)
// blocks indefinitely and never aborts; its workloads cannot deadlock. Ours spins with a
// bound and aborts + retries on timeout, which behaves identically on those workloads but
// also recovers from genuine multi-key deadlocks (see tests/txn_twopl_test.cc).
#ifndef DOPPEL_SRC_TXN_TWOPL_ENGINE_H_
#define DOPPEL_SRC_TXN_TWOPL_ENGINE_H_

#include "src/common/annotations.h"
#include "src/store/store.h"
#include "src/txn/engine.h"

namespace doppel {

class TwoPLEngine : public Engine {
 public:
  struct Limits {
    std::uint32_t shared_spin = 1u << 20;
    std::uint32_t exclusive_spin = 1u << 20;
    std::uint32_t upgrade_spin = 1u << 16;
  };

  explicit TwoPLEngine(Store& store);
  TwoPLEngine(Store& store, Limits limits) : store_(store), limits_(limits) {}

  const char* name() const override { return "2pl"; }

  Record* Route(Worker& w, const Key& key, RecordType type, std::size_t topk_k) override;
  Record* RouteDelete(Worker& w, const Key& key) override;
  void Read(Worker& w, Txn& txn, Record* r, ReadResult* out) override;
  void Write(Worker& w, Txn& txn, PendingWrite&& pw) override;
  std::size_t Scan(Worker& w, Txn& txn, std::uint64_t table, std::uint64_t lo,
                   std::uint64_t hi, std::size_t limit, ScanFn fn) override;
  TxnStatus Commit(Worker& w, Txn& txn) override;
  void Abort(Worker& w, Txn& txn) override;

 private:
  // Transaction-duration lock sets are outside Clang's function-local analysis: the
  // Ensure* helpers acquire a record/partition RW lock, stash it in txn.locks() /
  // txn.index_locks(), and return still holding it; ReleaseAll drops locks it never
  // acquired. The 2PL invariant (every acquired lock is released exactly once by
  // ReleaseAll at commit/abort, including the ConflictSignal unwind) is checked
  // dynamically by tests/txn_twopl_test.cc under TSan instead.
  void EnsureShared(Txn& txn, Record* r) NO_THREAD_SAFETY_ANALYSIS;
  void EnsureExclusive(Txn& txn, Record* r, OpCode op) NO_THREAD_SAFETY_ANALYSIS;
  // Transaction-duration index-partition locks (phantom protection: scans share,
  // inserts of newly-present records exclude). A timeout is a scan conflict: it is
  // charged to the partition's telemetry and attributed in txn.scan_set_conflicts
  // before the ConflictSignal unwinds.
  void EnsureIndexShared(Txn& txn, std::uint64_t table, std::uint32_t part_index,
                         IndexPartition* p) NO_THREAD_SAFETY_ANALYSIS;
  // Same transaction-duration acquisition pattern as EnsureIndexShared above.
  void EnsureIndexExclusive(Txn& txn, std::uint64_t table, std::uint32_t part_index,
                            IndexPartition* p, OpCode op) NO_THREAD_SAFETY_ANALYSIS;
  // Releases the transaction-duration lock set acquired piecemeal by the Ensure*
  // helpers above — capabilities the analysis never saw this function acquire.
  static void ReleaseAll(Txn& txn) NO_THREAD_SAFETY_ANALYSIS;

  Store& store_;
  Limits limits_;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_TXN_TWOPL_ENGINE_H_
