#include "src/persist/checkpoint.h"

#include <fcntl.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "src/common/dassert.h"
#include "src/persist/crc32.h"
#include "src/persist/encoding.h"
#include "src/persist/fsutil.h"

namespace doppel {
namespace {

// File layout:
//   u32 magic, u32 version
//   u64 max_tid
//   u32 n_tables;  per table: u64 id, u32 shift, u32 partitions, u8 adaptive
//   u64 n_records; per record: u64 key.hi, u64 key.lo, u64 tid, u8 type, u32 topk_k,
//                  value (encoding per type below)
//   u32 crc  (over everything after the 8-byte magic/version header)
constexpr std::uint32_t kMagic = 0x504b4344;  // "DCKP"
constexpr std::uint32_t kVersion = 1;

void EncodeValue(std::vector<char>& out, const Value& v) {
  switch (ValueType(v)) {
    case RecordType::kInt64:
      PutRaw(out, std::get<std::int64_t>(v));
      break;
    case RecordType::kBytes:
      PutBytes(out, std::get<std::string>(v));
      break;
    case RecordType::kOrdered: {
      const auto& t = std::get<OrderedTuple>(v);
      PutRaw(out, t.order.primary);
      PutRaw(out, t.order.secondary);
      PutRaw(out, t.core);
      PutBytes(out, t.payload);
      break;
    }
    case RecordType::kTopK: {
      const auto& set = std::get<TopKSet>(v);
      PutRaw(out, static_cast<std::uint32_t>(set.size()));
      for (const OrderedTuple& t : set.items()) {
        PutRaw(out, t.order.primary);
        PutRaw(out, t.order.secondary);
        PutRaw(out, t.core);
        PutBytes(out, t.payload);
      }
      break;
    }
  }
}

bool DecodeTuple(ByteCursor& c, OrderedTuple* t) {
  return c.Read(&t->order.primary) && c.Read(&t->order.secondary) && c.Read(&t->core) &&
         c.ReadString(&t->payload);
}

}  // namespace

CheckpointStats Checkpoint::Write(const std::string& dir, const std::string& file_name,
                                  const Store& store, IoEnv* env,
                                  std::atomic<std::uint64_t>* retries) {
  if (env == nullptr) {
    env = IoEnv::Default();
  }
  const IoRetryPolicy policy;
  CheckpointStats stats;
  std::vector<char> body;

  std::uint32_t n_tables = 0;
  const std::size_t tables_pos = body.size();
  PutRaw(body, n_tables);  // patched below
  store.index().ForEachTable([&](const OrderedIndex::TableIndex& t) {
    PutRaw(body, t.table);
    PutRaw(body, t.shift.load(std::memory_order_acquire));
    PutRaw(body, static_cast<std::uint32_t>(t.partitions.size()));
    PutRaw(body, static_cast<std::uint8_t>(t.adaptive ? 1 : 0));
    ++n_tables;
  });
  std::memcpy(body.data() + tables_pos, &n_tables, sizeof(n_tables));

  std::uint64_t n_records = 0;
  const std::size_t records_pos = body.size();
  PutRaw(body, n_records);  // patched below
  store.map().ForEach([&](const Record& r) {
    // Workers are quiesced (caller's precondition), so the seqlock read is stable and
    // present records cannot regress; never-written placeholder records are skipped.
    const Record::ValueSnapshot s = r.ReadValue();
    if (!s.present) {
      return;
    }
    PutRaw(body, r.key().hi);
    PutRaw(body, r.key().lo);
    PutRaw(body, s.tid);
    PutRaw(body, static_cast<std::uint8_t>(r.type()));
    PutRaw(body, static_cast<std::uint32_t>(r.topk_k()));
    EncodeValue(body, s.value);
    stats.max_tid = std::max(stats.max_tid, s.tid);
    ++n_records;
  });
  std::memcpy(body.data() + records_pos, &n_records, sizeof(n_records));
  stats.records = n_records;
  stats.tables = n_tables;

  const std::string tmp = dir + "/" + file_name + ".tmp";
  const std::string final_path = dir + "/" + file_name;
  std::vector<char> header;
  PutRaw(header, kMagic);
  PutRaw(header, kVersion);
  PutRaw(header, stats.max_tid);
  const std::uint32_t crc =
      Crc32(body.data(), body.size(),
            Crc32(header.data() + 8, header.size() - 8));  // max_tid onward
  std::vector<char> trailer;
  PutRaw(trailer, crc);

  // All failures below roll the attempt back: remove the tmp file and leave the final
  // path (and thus the MANIFEST's view of the world) untouched.
  const auto fail = [&](int fd, int negative_errno, IoOp op) {
    if (fd >= 0) {
      env->Close(fd);
    }
    env->Unlink(tmp.c_str());
    stats.failure = IoFailure{-negative_errno, op};
    return stats;
  };
  const int fd = OpenRetry(env, tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644,
                           policy, retries);
  if (fd < 0) {
    return fail(-1, fd, IoOp::kOpen);
  }
  for (const std::vector<char>* part : {&header, &body, &trailer}) {
    const int rc = WriteFullyRetry(env, fd, part->data(), part->size(), policy, retries);
    if (rc != 0) {
      return fail(fd, rc, IoOp::kWrite);
    }
  }
  // A failed fsync is permanent by policy (io_env.h): the tmp file's page-cache state
  // is unknowable, so it must never be renamed into place.
  int rc = env->Fsync(fd);
  env->Close(fd);
  if (rc != 0) {
    return fail(-1, rc, IoOp::kFsync);
  }
  rc = RenameRetry(env, tmp.c_str(), final_path.c_str(), policy, retries);
  if (rc != 0) {
    return fail(-1, rc, IoOp::kRename);
  }
  return stats;
}

namespace {

// Parse + restore a fully-read checkpoint image. The manifest never references a
// checkpoint that was not fully written and renamed, so any parse failure here is real
// corruption — fail loudly rather than silently recovering a partial store.
CheckpointStats LoadParsed(const std::string& data, Store* store) {
  DOPPEL_CHECK(data.size() >= sizeof(std::uint32_t) * 3 + sizeof(std::uint64_t));
  ByteCursor c(data.data(), data.size() - sizeof(std::uint32_t));
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  DOPPEL_CHECK(c.Read(&magic) && magic == kMagic);
  DOPPEL_CHECK(c.Read(&version) && version == kVersion);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  DOPPEL_CHECK(Crc32(data.data() + 8, data.size() - 8 - sizeof(stored_crc)) ==
               stored_crc);

  CheckpointStats stats;
  DOPPEL_CHECK(c.Read(&stats.max_tid));

  std::uint32_t n_tables = 0;
  DOPPEL_CHECK(c.Read(&n_tables));
  for (std::uint32_t i = 0; i < n_tables; ++i) {
    std::uint64_t table = 0;
    PartitionConfig cfg;
    std::uint8_t adaptive = 0;
    DOPPEL_CHECK(c.Read(&table) && c.Read(&cfg.shift) && c.Read(&cfg.partitions) &&
                 c.Read(&adaptive));
    cfg.adaptive = adaptive != 0;
    store->index().RestoreTable(table, cfg);
  }
  stats.tables = n_tables;

  std::uint64_t n_records = 0;
  DOPPEL_CHECK(c.Read(&n_records));
  for (std::uint64_t i = 0; i < n_records; ++i) {
    Key key;
    std::uint64_t tid = 0;
    std::uint8_t type = 0;
    std::uint32_t topk_k = 0;
    DOPPEL_CHECK(c.Read(&key.hi) && c.Read(&key.lo) && c.Read(&tid) && c.Read(&type) &&
                 c.Read(&topk_k));
    const RecordType rt = static_cast<RecordType>(type);
    Record* r = store->GetOrCreate(key, rt, topk_k == 0 ? TopKSet::kDefaultK : topk_k);
    r->LockOcc();
    switch (rt) {
      case RecordType::kInt64: {
        std::int64_t v = 0;
        DOPPEL_CHECK(c.Read(&v));
        r->SetInt(v);
        break;
      }
      case RecordType::kBytes: {
        std::string v;
        DOPPEL_CHECK(c.ReadString(&v));
        r->MutateComplex(
            [&](ComplexValue& cv) { std::get<std::string>(cv) = std::move(v); });
        break;
      }
      case RecordType::kOrdered: {
        OrderedTuple t;
        DOPPEL_CHECK(DecodeTuple(c, &t));
        r->MutateComplex(
            [&](ComplexValue& cv) { std::get<OrderedTuple>(cv) = std::move(t); });
        break;
      }
      case RecordType::kTopK: {
        std::uint32_t count = 0;
        DOPPEL_CHECK(c.Read(&count));
        TopKSet set(topk_k == 0 ? TopKSet::kDefaultK : topk_k);
        for (std::uint32_t j = 0; j < count; ++j) {
          OrderedTuple t;
          DOPPEL_CHECK(DecodeTuple(c, &t));
          set.Insert(std::move(t));
        }
        r->MutateComplex(
            [&](ComplexValue& cv) { std::get<TopKSet>(cv) = std::move(set); });
        break;
      }
    }
    store->index().Insert(key, r);
    r->UnlockOccSetTid(tid);
  }
  stats.records = n_records;
  DOPPEL_CHECK(c.AtEnd());
  return stats;
}

}  // namespace

CheckpointStats Checkpoint::Load(const std::string& path, Store* store) {
  std::ifstream in(path, std::ios::binary);
  DOPPEL_CHECK(in.good());
  const std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  return LoadParsed(data, store);
}

bool Checkpoint::TryLoad(const std::string& path, Store* store,
                         CheckpointStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return false;
  }
  const std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  *stats = LoadParsed(data, store);
  return true;
}

}  // namespace doppel
