// Control-flow signals thrown out of transaction bodies.
//
// Doppel transactions are one-shot procedures; when an access cannot proceed (a read of
// split data in a split phase, a lock timeout in 2PL) the whole procedure must unwind
// immediately — exactly what exceptions are for. These are tiny PODs thrown on cold paths
// only; the commit-time OCC conflict path returns a status instead.
#ifndef DOPPEL_SRC_TXN_SIGNALS_H_
#define DOPPEL_SRC_TXN_SIGNALS_H_

#include "src/store/key.h"
#include "src/txn/op.h"

namespace doppel {

class Record;

// The transaction touched split data with an incompatible operation during a split phase;
// it must be stashed and restarted in the next joined phase (§5.2).
struct StashSignal {
  Record* record;
  OpCode op;
};

// The transaction lost a conflict at access time (2PL lock timeout / upgrade failure) and
// should be retried with backoff.
struct ConflictSignal {
  Record* record;
  OpCode op;
};

// The transaction body requested an abort; it will not be retried.
struct UserAbortSignal {};

// An operation required a record type that conflicts with the key's existing record
// (e.g. PutBytes on a key created as an int64 counter). The record's type is fixed at
// creation and only a physical reclaim (epoch sweep of an absent record) can retire it,
// so this is a terminal per-transaction abort, not a retryable conflict.
struct TypeMismatchSignal {
  Key key;
  RecordType required;
  RecordType actual;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_TXN_SIGNALS_H_
