#include "src/common/histogram.h"

#include <algorithm>
#include <bit>

namespace doppel {

LatencyHistogram::LatencyHistogram() : buckets_(kGroups * kSubBuckets, 0) {}

int LatencyHistogram::BucketIndex(std::uint64_t nanos) {
  if (nanos < kSubBuckets) {
    return static_cast<int>(nanos);  // group 0 is exact
  }
  const int msb = 63 - std::countl_zero(nanos);
  const int group = msb - kSubBucketBits + 1;
  const int sub = static_cast<int>((nanos >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  int index = group * kSubBuckets + sub;
  const int last = kGroups * kSubBuckets - 1;
  return index > last ? last : index;
}

std::uint64_t LatencyHistogram::BucketUpperBound(int index) {
  const int group = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (group == 0) {
    return static_cast<std::uint64_t>(sub);
  }
  const int shift = group + kSubBucketBits - 1;
  const std::uint64_t base = 1ULL << shift;
  const std::uint64_t width = base / kSubBuckets;
  return base + static_cast<std::uint64_t>(sub + 1) * width - 1;
}

void LatencyHistogram::Record(std::uint64_t nanos) {
  buckets_[static_cast<std::size_t>(BucketIndex(nanos))]++;
  count_++;
  sum_ += nanos;
  min_ = std::min(min_, nanos);
  max_ = std::max(max_, nanos);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 100.0) {
    p = 100.0;
  }
  const std::uint64_t target =
      static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(BucketUpperBound(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

}  // namespace doppel
