#include "src/workload/driver.h"

#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>

#include "src/common/cacheline.h"
#include "src/common/timing.h"
#include "src/replica/replica.h"

namespace doppel {
namespace {

void FillWalMetrics(const Database& db, RunMetrics* m) {
  const WriteAheadLog* wal = db.wal();
  if (wal == nullptr) {
    return;
  }
  m->wal_enabled = true;
  m->wal_appended_txns = wal->appended_txns();
  m->wal_flushed_batches = wal->flushed_batches();
  m->wal_flushed_bytes = wal->flushed_bytes();
  m->wal_segments = wal->segments_created();
  m->wal_checkpoints = wal->checkpoints_taken();
  m->wal_cuts = wal->cuts_emitted();
  m->wal_io_retries = wal->io_retries();
  m->wal_checkpoint_failures = wal->checkpoint_failures();
  const DurabilityHealth h = db.durability_health();
  m->wal_degraded = h.degraded;
  m->wal_failed_errno = h.error;
  m->wal_failed_op = h.op;
}

// Post-Stop store occupancy gauges. Warns when chains have grown long enough to tax
// every lookup: the map is fixed-size, so the only fix is a larger store_capacity.
void FillStoreMetrics(const Database& db, RunMetrics* m) {
  const Store& s = db.store();
  m->store_records = s.size();
  m->store_buckets = s.map().bucket_count();
  m->store_load_factor = s.map().load_factor();
  if (db.reclaimer() != nullptr) {
    m->reclaimed_records = db.reclaimer()->reclaimed();
  }
  if (m->store_load_factor > 4.0) {
    std::fprintf(stderr,
                 "WARNING: record map load factor %.2f (%zu records / %zu buckets) "
                 "exceeds 4 - raise store_capacity\n",
                 m->store_load_factor, m->store_records, m->store_buckets);
  }
}

}  // namespace

void FillReplicaMetrics(const Replica& replica, RunMetrics* m) {
  const ReplicaProgress p = replica.progress();
  m->replica_enabled = true;
  m->replica_cut_tid = p.applied_cut_tid;
  m->replica_cuts = p.published_cuts;
  m->replica_applied_txns = p.applied_txns;
  m->replica_shipped_bytes = p.shipped_bytes;
  m->replica_lag_bytes = p.lag_bytes;
  m->replica_lag_entries = p.lag_entries;
  m->replica_publish_lag_p99_us = replica.PublishLagHistogram().Percentile(99) / 1000;
}

RunMetrics RunWorkload(Database& db, SourceFactory factory, std::uint64_t measure_ms,
                       std::uint64_t warmup_ms,
                       const std::function<void(Database&)>& on_started) {
  db.Start(std::move(factory));
  if (on_started) {
    on_started(db);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(warmup_ms));

  const std::uint64_t commits_before = db.SampleTotalCommits();
  Stopwatch clock;
  std::this_thread::sleep_for(std::chrono::milliseconds(measure_ms));
  const std::uint64_t commits_after = db.SampleTotalCommits();
  const double seconds = clock.ElapsedSeconds();

  db.Stop();

  RunMetrics m;
  m.seconds = seconds;
  m.committed = commits_after - commits_before;
  m.throughput = static_cast<double>(m.committed) / seconds;
  m.stats = db.CollectStats();
  m.split_records = db.LastPlanSize();
  FillWalMetrics(db, &m);
  FillStoreMetrics(db, &m);
  return m;
}

RunMetrics RunWorkloadTimeSeries(Database& db, SourceFactory factory,
                                 std::uint64_t measure_ms, std::uint64_t sample_ms,
                                 TimeSeries* series,
                                 const std::function<void(std::uint64_t ms)>& on_tick) {
  db.Start(std::move(factory));

  const std::uint64_t start_ns = NowNanos();
  std::uint64_t prev_commits = db.SampleTotalCommits();
  std::uint64_t elapsed_ms = 0;
  while (elapsed_ms < measure_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sample_ms));
    elapsed_ms = (NowNanos() - start_ns) / 1000000;
    const std::uint64_t commits = db.SampleTotalCommits();
    series->seconds.push_back(static_cast<double>(NowNanos() - start_ns) * 1e-9);
    series->throughput.push_back(static_cast<double>(commits - prev_commits) /
                                 (static_cast<double>(sample_ms) * 1e-3));
    prev_commits = commits;
    if (on_tick) {
      on_tick(elapsed_ms);
    }
  }
  const std::uint64_t total = db.SampleTotalCommits();
  const double seconds = static_cast<double>(NowNanos() - start_ns) * 1e-9;
  db.Stop();

  RunMetrics m;
  m.seconds = seconds;
  m.committed = total;
  m.throughput = static_cast<double>(total) / seconds;
  m.stats = db.CollectStats();
  m.split_records = db.LastPlanSize();
  FillWalMetrics(db, &m);
  FillStoreMetrics(db, &m);
  return m;
}

namespace {

// Sleeps coarsely, then spins, until `due_ns`; returns immediately when already late
// (open-loop catch-up burst rather than silent rate reduction).
void PaceUntil(std::uint64_t due_ns) {
  while (true) {
    const std::uint64_t now = NowNanos();
    if (now >= due_ns) {
      return;
    }
    const std::uint64_t remaining = due_ns - now;
    if (remaining > 200000) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(remaining / 2));
    } else {
      CpuRelax();
    }
  }
}

}  // namespace

OpenLoopMetrics RunOpenLoop(Database& db, const RequestGen& gen,
                            const OpenLoopOptions& opts) {
  // Cache-line aligned: adjacent submitters' counters must not false-share while they
  // are incremented millions of times per second in the submission loop.
  struct alignas(kCacheLineSize) SubmitterTally {
    std::uint64_t offered = 0;
    std::uint64_t rejected = 0;
    std::uint64_t accepted = 0;
    std::uint64_t committed = 0;
  };

  db.Start();
  Stopwatch clock;

  std::vector<SubmitterTally> tallies(static_cast<std::size_t>(opts.submitters));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(opts.submitters));
  const double per_submitter =
      opts.offered_per_sec > 0.0 ? opts.offered_per_sec / opts.submitters : 0.0;
  const std::uint64_t interval_ns =
      per_submitter > 0.0 ? static_cast<std::uint64_t>(1e9 / per_submitter) : 0;
  const std::uint64_t deadline_ns = NowNanos() + MillisToNanos(opts.measure_ms);

  for (int s = 0; s < opts.submitters; ++s) {
    threads.emplace_back([&, s] {
      SubmitterTally& tally = tallies[static_cast<std::size_t>(s)];
      Rng rng(0xda3e39cb94b95bdbULL * static_cast<std::uint64_t>(s + 1));
      std::deque<TxnHandle> outstanding;
      std::uint64_t due_ns = NowNanos();
      while (NowNanos() < deadline_ns) {
        if (interval_ns != 0) {
          PaceUntil(due_ns);
          due_ns += interval_ns;
        }
        TxnRequest req = gen(s, rng);
        tally.offered++;
        TxnHandle h;
        if (db.TrySubmit(req, &h) == SubmitStatus::kOk) {
          tally.accepted++;
          outstanding.push_back(std::move(h));
          // Bound memory: reap the oldest handle once the window is full. Under backlog
          // this also self-clocks an unpaced submitter to the completion rate.
          if (outstanding.size() >= opts.max_outstanding) {
            tally.committed += outstanding.front().Wait().committed ? 1 : 0;
            outstanding.pop_front();
          }
        } else {
          // Backpressure: the offered transaction is dropped, as an open-loop client
          // would time it out. Unpaced submitters yield so workers can drain.
          tally.rejected++;
          if (interval_ns == 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(2));
          }
        }
      }
      for (TxnHandle& h : outstanding) {
        tally.committed += h.Wait().committed ? 1 : 0;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double seconds = clock.ElapsedSeconds();  // includes the post-deadline drain
  db.Stop();

  OpenLoopMetrics m;
  m.seconds = seconds;
  for (const SubmitterTally& t : tallies) {
    m.offered += t.offered;
    m.rejected += t.rejected;
    m.accepted += t.accepted;
    m.committed += t.committed;
  }
  m.throughput = static_cast<double>(m.committed) / seconds;
  m.stats = db.CollectStats();
  for (int t = 0; t < kNumTags; ++t) {
    m.latency.Merge(m.stats.latency_by_tag[t]);
  }
  return m;
}

}  // namespace doppel
