// Asynchronous batched redo logging + recovery (an extension the paper points to in §3:
// "Existing work suggests that asynchronous batched logging could be added to Doppel
// without becoming a bottleneck").
//
// Design: workers append *logical* operations (not values) with their Silo commit TID to
// per-worker buffers at commit time; a background flusher batches buffers to disk on a
// fixed interval (group commit). Commits do not wait for disk — durability is
// asynchronous, matching the paper's assumption.
//
// Logging operations rather than states is what makes this compatible with phase
// reconciliation: a split-phase commit knows only its operation (e.g. Add(k, 1)), never
// the record's global value. Recovery replays entries in commit-TID order; TID order is
// consistent with the serial order for conflicting non-commutative writes (the later
// writer's GenerateTid absorbs the earlier TID), and commutative split-phase operations
// are order-insensitive by definition (§4).
#ifndef DOPPEL_SRC_PERSIST_WAL_H_
#define DOPPEL_SRC_PERSIST_WAL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/common/spinlock.h"
#include "src/store/store.h"
#include "src/txn/txn.h"

namespace doppel {

class WriteAheadLog {
 public:
  // Opens (truncates) `path`. `flush_interval_us` is the group-commit cadence.
  WriteAheadLog(std::string path, std::uint64_t flush_interval_us);
  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Worker-side: append one committed transaction's buffered writes. `worker_id` selects
  // the per-worker buffer; safe to call concurrently from distinct workers.
  void Append(int worker_id, std::uint64_t commit_tid,
              const std::vector<PendingWrite>& writes,
              const std::vector<PendingWrite>& split_writes);

  // Forces all buffered bytes to the file (called on Stop and by tests).
  void Flush();

  std::uint64_t appended_txns() const {
    return appended_.load(std::memory_order_relaxed);
  }
  std::uint64_t flushed_batches() const {
    return flushes_.load(std::memory_order_relaxed);
  }

  // ---- Recovery ----
  // Replays a log file into `store`, applying entries in commit-TID order. Returns the
  // number of transactions replayed; partial trailing entries (torn final batch) are
  // ignored, mirroring standard redo-log recovery.
  static std::uint64_t Replay(const std::string& path, Store* store);

 private:
  struct Buffer {
    Spinlock mu;
    std::vector<char> bytes;
  };

  void FlusherMain();
  void FlushLocked();  // gathers buffers and writes them

  const std::string path_;
  const std::uint64_t flush_interval_us_;
  int fd_ = -1;
  static constexpr int kBuffers = 64;  // worker_id % kBuffers
  std::vector<Buffer> buffers_{kBuffers};
  Spinlock file_mu_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::thread flusher_;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_PERSIST_WAL_H_
