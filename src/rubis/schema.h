// RUBiS schema (§7): an auction site modeled after eBay with 7 tables — users, items,
// categories, regions, bids, buy_now, comments — mapped onto the key/value store.
//
// Key layout: Key::Table(table_id, row_id). Materialized auction metadata (the paper's
// maxBid, maxBidder, numBids, bidsPerItemIndex, userRating, plus the category/region
// item indexes added in §7) live in their own key namespaces, one row per parent row.
#ifndef DOPPEL_SRC_RUBIS_SCHEMA_H_
#define DOPPEL_SRC_RUBIS_SCHEMA_H_

#include <cstdint>

#include "src/store/key.h"
#include "src/store/ordered_index.h"

namespace doppel {
namespace rubis {

// Table ids (namespace 16+ to stay clear of the microbenchmark tables).
enum TableId : std::uint32_t {
  kUsers = 16,
  kItems = 17,
  kCategories = 18,
  kRegions = 19,
  kBids = 20,
  kBuyNow = 21,
  kComments = 22,
  // Materialized metadata.
  kMaxBid = 23,          // int: highest bid amount per item
  kMaxBidder = 24,       // ordered tuple: (amount, ts) -> bidder id
  kNumBids = 25,         // int: bid count per item
  kBidsPerItem = 26,     // top-K: bid index per item
  kUserRating = 27,      // int: per-user rating from comments
  kItemsByCategory = 28, // top-K: item index per category
  kItemsByRegion = 29,   // top-K: item index per region
  kNumComments = 30,     // int: comment count per item
  kUserNumBought = 31,   // int: buy-now purchases per user
  kItemsByCatOrd = 33,   // bytes: ordered (category, item) secondary index, range-scanned
};

inline Key UserKey(std::uint64_t id) { return Key::Table(kUsers, id); }
inline Key ItemKey(std::uint64_t id) { return Key::Table(kItems, id); }
inline Key CategoryKey(std::uint64_t id) { return Key::Table(kCategories, id); }
inline Key RegionKey(std::uint64_t id) { return Key::Table(kRegions, id); }
inline Key BidKey(std::uint64_t id) { return Key::Table(kBids, id); }
inline Key BuyNowKey(std::uint64_t id) { return Key::Table(kBuyNow, id); }
inline Key CommentKey(std::uint64_t id) { return Key::Table(kComments, id); }

inline Key MaxBidKey(std::uint64_t item) { return Key::Table(kMaxBid, item); }
inline Key MaxBidderKey(std::uint64_t item) { return Key::Table(kMaxBidder, item); }
inline Key NumBidsKey(std::uint64_t item) { return Key::Table(kNumBids, item); }
inline Key BidsPerItemIndexKey(std::uint64_t item) { return Key::Table(kBidsPerItem, item); }
inline Key UserRatingKey(std::uint64_t user) { return Key::Table(kUserRating, user); }
inline Key ItemsByCategoryKey(std::uint64_t cat) { return Key::Table(kItemsByCategory, cat); }
inline Key ItemsByRegionKey(std::uint64_t reg) { return Key::Table(kItemsByRegion, reg); }
inline Key NumCommentsKey(std::uint64_t item) { return Key::Table(kNumComments, item); }
inline Key UserNumBoughtKey(std::uint64_t user) { return Key::Table(kUserNumBought, user); }

// Row-id allocation for inserted rows (bids, comments, buy_now): ids are sharded by the
// inserting worker so allocation never contends. id = worker * kShardStride + local++.
inline constexpr std::uint64_t kShardStride = std::uint64_t{1} << 40;
inline std::uint64_t ShardedId(int worker, std::uint64_t local) {
  return static_cast<std::uint64_t>(worker) * kShardStride + local;
}

// Index capacities (top-K sets used as indexes, §7).
inline constexpr std::size_t kBidIndexK = 10;
inline constexpr std::size_t kBrowseIndexK = 20;

// ---- Ordered (category, item) index, scanned by SearchItemsByCategory ----
// One bytes row per item, keyed lo = (category << 40) | compact(item) so a category's
// items form one contiguous range. The shift matches the table's registered partition
// boundary (ItemsByCatOrdConfig below), so each category maps onto its own
// version-stamped partition stripe. compact() folds
// worker-sharded item ids (worker * 2^40 + local, see ShardedId) into 40 bits: loaded
// items keep their id, inserted items become (worker << 32) | low-32-bits — distinct
// ranges as long as loaded ids stay below 2^32, which every configuration here does.
inline constexpr std::uint64_t kCatOrdShift = 40;
inline std::uint64_t CompactItemId(std::uint64_t item) {
  return item < (std::uint64_t{1} << kCatOrdShift)
             ? item
             : ((item >> kCatOrdShift) << 32) | (item & 0xFFFFFFFFULL);
}
inline Key ItemsByCatOrdKey(std::uint64_t category, std::uint64_t item) {
  return Key::Table(kItemsByCatOrd, (category << kCatOrdShift) | CompactItemId(item));
}
// Inclusive scan bounds covering every item of `category`.
inline std::uint64_t ItemsByCatOrdLo(std::uint64_t category) {
  return category << kCatOrdShift;
}
inline std::uint64_t ItemsByCatOrdHi(std::uint64_t category) {
  return (category << kCatOrdShift) | ((std::uint64_t{1} << kCatOrdShift) - 1);
}

// Tuned partition layout for kItemsByCatOrd, registered by rubis::Populate. The shift
// keeps one category = one phantom-protection stripe (a SearchItemsByCategory scan locks
// or version-checks exactly its category), while sizing the stripe count to the
// category cardinality — the default 64-stripe layout clamps every category >= 63 into
// the last stripe, making unrelated hot categories share one insert lock and abort each
// other's scans.
inline PartitionConfig ItemsByCatOrdConfig(std::uint64_t num_categories) {
  PartitionConfig cfg;
  cfg.shift = kCatOrdShift;
  const std::uint64_t want = num_categories + 1;  // last stripe stays open-ended
  cfg.partitions = static_cast<std::uint32_t>(
      want < OrderedIndex::kMaxPartitionsPerTable ? want
                                                  : OrderedIndex::kMaxPartitionsPerTable);
  return cfg;
}

}  // namespace rubis
}  // namespace doppel

#endif  // DOPPEL_SRC_RUBIS_SCHEMA_H_
