// Epoch-based reclamation for deleted records (the PR 8 answer to the insert-only
// store leak).
//
// A committed delete makes a record logically absent but leaves it allocated and linked:
// lock-free readers (RecordMap::Find / ForEach, the seqlock read path) may hold a raw
// pointer to it at any moment, so it cannot simply be freed. The protocol here makes
// physical removal safe without adding any cost to those readers:
//
//   1. Workers advance a local epoch slot at every transaction boundary (BetweenTxns,
//      holding no record pointers). The driver (worker 0) advances the global epoch once
//      every worker has observed the current one — so "global advanced twice" implies
//      every worker passed at least one transaction boundary in between.
//   2. The driver sweeps the record map a chunk of buckets at a time. A record is
//      reclaimable when it is not split, not pinned (Doppel classifier state), its 2PL
//      rw lock and OCC lock are both free to a try-acquire, and it is logically absent
//      under those locks. The sweeper then marks it dead and bumps its TID in one
//      release store: a reader whose seqlock snapshot predates the mark fails OCC
//      validation on the TID; one whose snapshot carries the bumped TID observes the
//      dead flag and aborts to a re-route (engines check IsDead after every snapshot).
//      Absent records that were never written (read placeholders) are swept the same
//      way. The record is unlinked from its bucket chain (its own next pointer stays
//      intact, so a concurrent reader mid-chain still reaches the rest) and parked on a
//      limbo list stamped with the sweep epoch. If the key routes through a flat table
//      (src/store/flat_table.h), its slot is poisoned with a tombstone at the kill
//      point (same stripe-lock critical section) and re-opened only when the record is
//      freed — a flat slot is never republished before two epoch advances. Slot arrays
//      retired by flat growth ride the same limbo generation as records.
//   3. The limbo list is freed once the global epoch has advanced by two past the sweep
//      stamp: any transaction that could have routed to the record before it was
//      unlinked has ended (its worker ticked), and no later transaction can reach it
//      (lookups no longer return it, and no transaction carries pointers across its own
//      boundary). Doppel's coordinator holds cross-phase pointers only to split-marked
//      or pinned records, which the sweeper never touches.
//
// The Atomic engine is excluded: its writers mutate presence without taking any lock,
// so step 2's try-acquires prove nothing there. Deletes still work under it; their
// records are simply never physically reclaimed.
#ifndef DOPPEL_SRC_STORE_EPOCH_H_
#define DOPPEL_SRC_STORE_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/cacheline.h"
#include "src/common/function_ref.h"

namespace doppel {

class Record;
class Store;
struct FlatSlotArray;

// Reclamation knobs (Options::reclaim).
struct ReclaimOptions {
  // Master switch. Forced off internally under Protocol::kAtomic (see header comment).
  bool enabled = true;
  // The driver attempts an epoch advance / sweep step once per this many of its own
  // ticks; non-driver ticks only publish the worker's epoch slot.
  std::uint32_t tick_period = 64;
  // Buckets swept per step. Bounds the stripe-lock hold time of one step; the cursor
  // wraps, so smaller chunks just take more epochs to cover the map.
  std::size_t chunk_buckets = 1024;
};

// Global epoch + one observation slot per worker. Single driver (worker 0), many
// observers; all methods are wait-free.
class EpochManager {
 public:
  explicit EpochManager(std::size_t num_workers) : slots_(num_workers) {}
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Called by worker `worker_id` on its own thread at a transaction boundary: it holds
  // no record pointers at this instant, which is exactly what the grace period counts.
  // Returns the epoch the worker just published to its slot — the value a worker-local
  // cache of record pointers (Txn's route cache) must key its validity on.
  std::uint64_t Observe(std::size_t worker_id) {
    const std::uint64_t g = global_.load(std::memory_order_acquire);
    slots_[worker_id].seen.store(g, std::memory_order_release);
    return g;
  }

  // Driver only. Advances the global epoch iff every worker has observed the current
  // one; returns whether it advanced.
  bool TryAdvance() {
    const std::uint64_t g = global_.load(std::memory_order_acquire);
    for (const Slot& s : slots_) {
      if (s.seen.load(std::memory_order_acquire) != g) {
        return false;
      }
    }
    global_.store(g + 1, std::memory_order_release);
    return true;
  }

  std::uint64_t global() const { return global_.load(std::memory_order_acquire); }

 private:
  struct alignas(kCacheLineSize) Slot {
    // Last global epoch this worker observed at a transaction boundary.
    std::atomic<std::uint64_t> seen{0};
  };

  // Written only by the driver; read by every observer.
  std::atomic<std::uint64_t> global_{1};
  std::vector<Slot> slots_;
};

// The sweep driver: walks the store's record map in chunks, unlinks reclaimable
// records, and frees them after a two-epoch grace period. One limbo generation at a
// time: a new sweep step starts only after the previous step's victims are freed,
// which keeps the unfreed backlog bounded by one chunk's yield.
class EpochReclaimer {
 public:
  EpochReclaimer(Store& store, std::size_t num_workers, const ReclaimOptions& opts);
  ~EpochReclaimer();

  // Called on every worker's BetweenTxns tick. Non-driver workers only publish their
  // epoch slot; worker 0 additionally drives advancement, sweeping, and freeing.
  // `gen_tid` mints a TID strictly above its argument (Worker::GenerateTid) — used to
  // bump a killed record's TID so stale readers fail validation. Returns the epoch the
  // worker observed (0 when disabled): a worker must invalidate any cross-transaction
  // record-pointer cache (Txn::InvalidateRouteCache) whenever this value changes,
  // because a free only happens two observed-epoch changes after the unlink.
  std::uint64_t Tick(std::size_t worker_id,
                     FunctionRef<std::uint64_t(std::uint64_t)> gen_tid);

  // After workers are joined (no concurrent readers remain): free the limbo list
  // unconditionally and run one full-map sweep, freeing its yield immediately.
  void DrainAtShutdown(FunctionRef<std::uint64_t(std::uint64_t)> gen_tid);

  // One full-map sweep over a quiescent store — recovery replay just finished, or a
  // replica holding its publish lock exclusively. The caller guarantees no concurrent
  // reader holds record pointers, so victims are freed immediately: no grace period,
  // no epoch machinery, no worker TID clock. Returns the number of records freed.
  static std::size_t SweepQuiescent(Store& store);

  // Cumulative counters (relaxed gauges for stats/report code).
  std::uint64_t swept() const { return swept_.load(std::memory_order_relaxed); }
  std::uint64_t reclaimed() const { return reclaimed_.load(std::memory_order_relaxed); }

  const EpochManager& epochs() const { return epochs_; }

 private:
  // The sweep predicate (runs under the bucket's stripe lock): returns true — after
  // marking the record dead and bumping its TID — iff `r` is provably reclaimable.
  static bool TryKill(Record& r, FunctionRef<std::uint64_t(std::uint64_t)> gen_tid);

  Store& store_;
  const ReclaimOptions opts_;
  EpochManager epochs_;

  // ---- Driver-only state (worker 0's thread; no synchronization needed) ----
  std::uint32_t ticks_until_drive_ = 0;
  std::size_t cursor_ = 0;  // next bucket to sweep (wraps)
  std::vector<Record*> limbo_;
  // Flat slot arrays retired by growth, freed with the same generation's records: a
  // lock-free FlatTable::Find may hold the old array pointer until its transaction ends.
  std::vector<FlatSlotArray*> limbo_arrays_;
  std::uint64_t limbo_epoch_ = 0;  // global epoch when limbo_ was unlinked
  // Idle gate: a full map pass that unlinks nothing parks the sweeper until the
  // store's change hint (records created + index keys removed — every absent record
  // appears through one of the two) moves past what the idle pass started from. A
  // workload that never deletes and never touches absent keys pays for exactly one
  // pass, then only the per-tick hint load.
  bool idle_ = false;
  std::uint64_t idle_hint_ = 0;   // hint value the idling pass started from
  std::uint64_t pass_hint_ = 0;   // hint sampled when the current pass began
  bool pass_found_ = false;       // did the current pass unlink anything?

  // Cumulative telemetry: driver-written, racily read by stats snapshots.
  std::atomic<std::uint64_t> swept_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_STORE_EPOCH_H_
