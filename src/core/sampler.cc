#include "src/core/sampler.h"

#include <bit>

#include "src/common/dassert.h"

namespace doppel {

ConflictSampler::ConflictSampler(std::uint32_t sample_every, std::size_t capacity)
    : table_(std::bit_ceil(capacity < 64 ? std::size_t{64} : capacity)),
      mask_(table_.size() - 1),
      sample_every_(sample_every == 0 ? 1 : sample_every) {}

void ConflictSampler::RecordConflict(const Key& key, OpCode op) {
  if (++tick_ % sample_every_ != 0) {
    return;
  }
  const std::size_t base = static_cast<std::size_t>(key.Hash());
  Entry* victim = nullptr;
  for (int i = 0; i < kProbeWindow; ++i) {
    Entry& e = table_[(base + static_cast<std::size_t>(i)) & mask_];
    if (e.used && e.key == key) {
      e.count++;
      e.op_counts[static_cast<int>(op)]++;
      total_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!e.used) {
      victim = &e;
      break;
    }
    if (victim == nullptr || e.count < victim->count) {
      victim = &e;
    }
  }
  DOPPEL_DCHECK(victim != nullptr);
  // Space-saving replacement: the newcomer inherits the evicted count so that a genuine
  // heavy hitter cannot be permanently starved by churn. The inherited mass is NOT
  // attributed to any op bucket (it belongs to the victim's unknown ops), so `count`
  // may exceed sum(op_counts) by the inherited overestimate; eviction priority uses the
  // raw count, while the classifier clamps to the op-tally sum (BarrierBuildPlan) so
  // inherited mass can neither refuse a genuine heavy hitter nor promote a churn key.
  const std::uint32_t inherited = victim->used ? victim->count : 0;
  *victim = Entry{};
  victim->used = true;
  victim->key = key;
  victim->count = inherited + 1;
  victim->op_counts[static_cast<int>(op)] = 1;
  total_.fetch_add(1, std::memory_order_relaxed);
}

void ConflictSampler::Clear() {
  for (Entry& e : table_) {
    e = Entry{};
  }
  total_.store(0, std::memory_order_relaxed);
  tick_ = 0;
}

}  // namespace doppel
