// Shared filesystem durability helpers for the persistence directory. The
// crash-safety-critical fsync sequence (make the new bytes durable, then make the
// rename durable) lives here once, used by both the manifest and the checkpointer.
#ifndef DOPPEL_SRC_PERSIST_FSUTIL_H_
#define DOPPEL_SRC_PERSIST_FSUTIL_H_

#include <fcntl.h>
#include <unistd.h>

#include <string>

#include "src/common/dassert.h"

namespace doppel {

inline void FsyncPath(const std::string& path, int open_flags = O_RDONLY) {
  const int fd = ::open(path.c_str(), open_flags);
  DOPPEL_CHECK(fd >= 0);
  DOPPEL_CHECK(::fsync(fd) == 0);
  ::close(fd);
}

inline void FsyncDir(const std::string& dir) {
  FsyncPath(dir, O_RDONLY | O_DIRECTORY);
}

}  // namespace doppel

#endif  // DOPPEL_SRC_PERSIST_FSUTIL_H_
