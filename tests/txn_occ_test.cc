// Tests for the Silo-style OCC engine (Fig. 2): buffered writes, read-own-writes,
// validation, conflict reporting, and exactness under concurrency.
#include <gtest/gtest.h>

#include "src/txn/occ_engine.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::EngineHarness;
using testing::IntAt;

class OccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    h_.engine = std::make_unique<OccEngine>(h_.store);
    h_.MakeWorkers(2);
  }
  EngineHarness h_;
  Worker& w0() { return *h_.workers[0]; }
  Worker& w1() { return *h_.workers[1]; }
};

TEST_F(OccTest, PutThenGetAcrossTxns) {
  ASSERT_EQ(h_.TryOnce(w0(), [](Txn& t) { t.PutInt(Key::FromU64(1), 5); }),
            TxnStatus::kCommitted);
  std::int64_t v = -1;
  ASSERT_EQ(h_.TryOnce(w0(), [&](Txn& t) { v = t.GetInt(Key::FromU64(1)).value_or(-1); }),
            TxnStatus::kCommitted);
  EXPECT_EQ(v, 5);
}

TEST_F(OccTest, GetAbsentReturnsNullopt) {
  bool absent = false;
  ASSERT_EQ(h_.TryOnce(w0(),
                       [&](Txn& t) { absent = !t.GetInt(Key::FromU64(9)).has_value(); }),
            TxnStatus::kCommitted);
  EXPECT_TRUE(absent);
}

TEST_F(OccTest, ReadOwnWrites) {
  std::int64_t after_put = 0;
  std::int64_t after_add = 0;
  std::string bytes;
  ASSERT_EQ(h_.TryOnce(w0(),
                       [&](Txn& t) {
                         t.PutInt(Key::FromU64(1), 10);
                         after_put = t.GetInt(Key::FromU64(1)).value_or(-1);
                         t.Add(Key::FromU64(1), 5);
                         after_add = t.GetInt(Key::FromU64(1)).value_or(-1);
                         t.PutBytes(Key::FromU64(2), "own");
                         bytes = t.GetBytes(Key::FromU64(2)).value_or("");
                       }),
            TxnStatus::kCommitted);
  EXPECT_EQ(after_put, 10);
  EXPECT_EQ(after_add, 15);
  EXPECT_EQ(bytes, "own");
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 15);
}

TEST_F(OccTest, ReadOwnWritesTopKAndOrdered) {
  std::size_t size = 0;
  OrderedTuple winner;
  ASSERT_EQ(h_.TryOnce(w0(),
                       [&](Txn& t) {
                         t.TopKInsert(Key::FromU64(3), OrderKey{5, 0}, "a", 4);
                         t.TopKInsert(Key::FromU64(3), OrderKey{7, 0}, "b", 4);
                         size = t.GetTopK(Key::FromU64(3), 4)->size();
                         t.OPut(Key::FromU64(4), OrderKey{1, 0}, "x");
                         t.OPut(Key::FromU64(4), OrderKey{9, 0}, "y");
                         winner = *t.GetOrdered(Key::FromU64(4));
                       }),
            TxnStatus::kCommitted);
  EXPECT_EQ(size, 2u);
  EXPECT_EQ(winner.payload, "y");
}

TEST_F(OccTest, AbsentSemanticsOfCommutativeOps) {
  ASSERT_EQ(h_.TryOnce(w0(),
                       [](Txn& t) {
                         t.Add(Key::FromU64(1), 7);     // absent + 7 = 7
                         t.Max(Key::FromU64(2), -5);    // absent -> -5
                         t.Min(Key::FromU64(3), 11);    // absent -> 11
                         t.Mult(Key::FromU64(4), 6);    // absent treated as 1 -> 6
                       }),
            TxnStatus::kCommitted);
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 7);
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(2)), -5);
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(3)), 11);
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(4)), 6);
}

TEST_F(OccTest, MinMaxMultApplySemantics) {
  h_.store.LoadInt(Key::FromU64(1), 10);
  ASSERT_EQ(h_.TryOnce(w0(),
                       [](Txn& t) {
                         t.Max(Key::FromU64(1), 3);   // keeps 10
                         t.Min(Key::FromU64(1), 8);   // 8
                         t.Mult(Key::FromU64(1), -2); // -16
                       }),
            TxnStatus::kCommitted);
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), -16);
}

TEST_F(OccTest, WriteConflictAborts) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  // w0 reads (via Add's RMW read entry) but does not commit yet; w1 commits a write in
  // between; w0's validation must fail.
  Txn& txn = w0().txn;
  txn.Reset(h_.engine.get(), &w0());
  txn.Add(Key::FromU64(1), 1);
  ASSERT_EQ(h_.TryOnce(w1(), [](Txn& t) { t.Add(Key::FromU64(1), 1); }),
            TxnStatus::kCommitted);
  EXPECT_EQ(h_.engine->Commit(w0(), txn), TxnStatus::kConflict);
  EXPECT_EQ(txn.conflict_record, h_.store.Find(Key::FromU64(1)));
  // The loser's effects are not applied.
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 1);
}

TEST_F(OccTest, ReadValidationFailureAborts) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  Txn& txn = w0().txn;
  txn.Reset(h_.engine.get(), &w0());
  (void)txn.GetInt(Key::FromU64(1));
  txn.PutInt(Key::FromU64(2), 1);  // write something else so commit isn't trivial
  ASSERT_EQ(h_.TryOnce(w1(), [](Txn& t) { t.PutInt(Key::FromU64(1), 9); }),
            TxnStatus::kCommitted);
  EXPECT_EQ(h_.engine->Commit(w0(), txn), TxnStatus::kConflict);
  // Aborted: key 2 must not exist.
  EXPECT_FALSE(h_.store.ReadSnapshot(Key::FromU64(2)).present);
}

TEST_F(OccTest, BlindWritesDoNotValidate) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  Txn& txn = w0().txn;
  txn.Reset(h_.engine.get(), &w0());
  txn.PutInt(Key::FromU64(1), 100);  // blind write: no read entry
  ASSERT_EQ(h_.TryOnce(w1(), [](Txn& t) { t.PutInt(Key::FromU64(1), 50); }),
            TxnStatus::kCommitted);
  // Last writer wins; no validation failure for blind writes (Silo semantics).
  EXPECT_EQ(h_.engine->Commit(w0(), txn), TxnStatus::kCommitted);
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 100);
}

TEST_F(OccTest, MultiConflictReportingListsAllHotRecords) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  h_.store.LoadInt(Key::FromU64(2), 0);
  Txn& txn = w0().txn;
  txn.Reset(h_.engine.get(), &w0());
  txn.Add(Key::FromU64(1), 1);
  txn.Add(Key::FromU64(2), 1);
  ASSERT_EQ(h_.TryOnce(w1(),
                       [](Txn& t) {
                         t.Add(Key::FromU64(1), 1);
                         t.Add(Key::FromU64(2), 1);
                       }),
            TxnStatus::kCommitted);
  EXPECT_EQ(h_.engine->Commit(w0(), txn), TxnStatus::kConflict);
  // Both co-hot records must be charged (classifier input, §5.5).
  ASSERT_EQ(txn.conflicts.size(), 2u);
  EXPECT_EQ(txn.conflicts[0].second, OpCode::kAdd);
  EXPECT_EQ(txn.conflicts[1].second, OpCode::kAdd);
}

TEST_F(OccTest, SameKeyWrittenTwiceAppliesInOrder) {
  ASSERT_EQ(h_.TryOnce(w0(),
                       [](Txn& t) {
                         t.PutInt(Key::FromU64(1), 3);
                         t.Add(Key::FromU64(1), 4);
                         t.Mult(Key::FromU64(1), 2);
                       }),
            TxnStatus::kCommitted);
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 14);
}

TEST_F(OccTest, TidAdvancesPerCommit) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  Record* r = h_.store.Find(Key::FromU64(1));
  std::uint64_t prev = Record::TidOf(r->LoadTidWord());
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(h_.TryOnce(w0(), [](Txn& t) { t.Add(Key::FromU64(1), 1); }),
              TxnStatus::kCommitted);
    const std::uint64_t cur = Record::TidOf(r->LoadTidWord());
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST_F(OccTest, TidEmbedsWorkerId) {
  Worker w(3, 1);
  const std::uint64_t tid = w.GenerateTid(0);
  EXPECT_EQ(tid & ((1u << Worker::kWorkerTidBits) - 1), 3u);
  const std::uint64_t tid2 = w.GenerateTid(tid + 12345);
  EXPECT_GT(tid2, tid + 12345);
  EXPECT_EQ(tid2 & ((1u << Worker::kWorkerTidBits) - 1), 3u);
}

TEST_F(OccTest, UserAbortDiscardsEverything) {
  h_.store.LoadInt(Key::FromU64(1), 5);
  EXPECT_EQ(h_.TryOnce(w0(),
                       [](Txn& t) {
                         t.PutInt(Key::FromU64(1), 99);
                         t.UserAbort();
                       }),
            TxnStatus::kUserAbort);
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 5);
}

TEST_F(OccTest, ConcurrentAddsSumExactly) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  constexpr int kOps = 30000;
  h_.Parallel([&](Worker& w) {
    for (int i = 0; i < kOps; ++i) {
      h_.MustCommit(w, [](Txn& t) { t.Add(Key::FromU64(1), 1); });
    }
  });
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 2 * kOps);
}

TEST_F(OccTest, ConcurrentDisjointMultiKeySums) {
  constexpr int kKeys = 16;
  constexpr int kOps = 5000;
  for (int k = 0; k < kKeys; ++k) {
    h_.store.LoadInt(Key::FromU64(static_cast<std::uint64_t>(k)), 0);
  }
  h_.Parallel([&](Worker& w) {
    for (int i = 0; i < kOps; ++i) {
      const std::uint64_t k = w.rng.NextBounded(kKeys);
      h_.MustCommit(w, [k](Txn& t) { t.Add(Key::FromU64(k), 1); });
    }
  });
  std::int64_t total = 0;
  for (int k = 0; k < kKeys; ++k) {
    total += IntAt(h_.store, Key::FromU64(static_cast<std::uint64_t>(k)));
  }
  EXPECT_EQ(total, 2 * kOps);
}

TEST_F(OccTest, SnapshotPairInvariantUnderConcurrency) {
  // Writers set (k1, k2) to the same value inside one transaction; readers must never
  // observe k1 != k2 in a committed read transaction.
  h_.store.LoadInt(Key::FromU64(1), 0);
  h_.store.LoadInt(Key::FromU64(2), 0);
  std::atomic<bool> mismatch{false};
  h_.Parallel([&](Worker& w) {
    if (w.id == 0) {
      for (std::int64_t i = 1; i <= 20000; ++i) {
        h_.MustCommit(w, [i](Txn& t) {
          t.PutInt(Key::FromU64(1), i);
          t.PutInt(Key::FromU64(2), i);
        });
      }
    } else {
      for (int i = 0; i < 20000; ++i) {
        std::int64_t a = 0;
        std::int64_t b = 0;
        h_.MustCommit(w, [&](Txn& t) {
          a = t.GetInt(Key::FromU64(1)).value_or(0);
          b = t.GetInt(Key::FromU64(2)).value_or(0);
        });
        if (a != b) {
          mismatch = true;
        }
      }
    }
  });
  EXPECT_FALSE(mismatch.load());
}

}  // namespace
}  // namespace doppel
