// perf_smoke: the repo's tracked per-transaction constant-factor benchmark.
//
// Runs the INCR1 microbenchmark (fig08-style) for Doppel, OCC, and 2PL at a uniform
// low-contention point — where commit-path and runner-loop constant factors dominate —
// plus a hot-key sweep, and emits a machine-readable JSON file so every PR leaves a
// point on the perf trajectory (see README "Performance" for the schema, and
// bench/run_perf.sh for the tracked invocation that writes BENCH_PR5.json).
//
// Extra flags beyond bench_common:
//   --json=PATH   write the JSON report to PATH (default: no JSON, table only)
//   --hot=A,B,C   hot-key percentages for the contended sweep (default 10,50,90)
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/workload/incr.h"

namespace doppel {
namespace {

struct PointReport {
  std::string engine;
  std::string config;
  std::uint32_t hot_pct = 0;
  RunStats commits_per_sec;
  std::uint64_t committed = 0;
  std::uint64_t aborts = 0;
  std::uint64_t stashes = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

PointReport MeasureIncrPoint(const bench::Flags& flags, Protocol proto,
                             const std::string& config, std::uint32_t hot_pct,
                             std::uint64_t keys,
                             const std::atomic<std::uint64_t>* hot_index) {
  PointReport r;
  r.engine = ProtocolName(proto);
  r.config = config;
  r.hot_pct = hot_pct;
  // Counters sum and latency histograms merge across runs, so every field of the
  // tracked JSON point covers all runs (throughput as mean/min/max, the rest as
  // totals/merged percentiles) — not just whichever run happened to come last.
  LatencyHistogram merged;
  for (int run = 0; run < flags.Runs(); ++run) {
    auto db =
        std::make_unique<Database>(bench::BaseOptions(flags, proto, keys * 2));
    PopulateIncr(db->store(), keys);
    RunMetrics m = RunWorkload(*db, MakeIncr1Factory(keys, hot_pct, hot_index),
                               flags.MeasureMs(/*default_seconds=*/0.5));
    r.commits_per_sec.Add(m.throughput);
    r.committed += m.stats.committed;
    r.aborts += m.stats.conflicts;
    r.stashes += m.stats.stash_events;
    for (int t = 0; t < kNumTags; ++t) {
      merged.Merge(m.stats.latency_by_tag[t]);
    }
  }
  r.p50_us = static_cast<double>(merged.Percentile(50.0)) * 1e-3;
  r.p99_us = static_cast<double>(merged.Percentile(99.0)) * 1e-3;
  return r;
}

void WriteJson(const std::string& path, const bench::Flags& flags, std::uint64_t keys,
               const std::vector<PointReport>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_smoke: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"perf_smoke\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"threads\": %d,\n", flags.ResolvedThreads());
  std::fprintf(f, "  \"keys\": %llu,\n", static_cast<unsigned long long>(keys));
  std::fprintf(f, "  \"seconds_per_point\": %.3f,\n",
               static_cast<double>(flags.MeasureMs(0.5)) * 1e-3);
  std::fprintf(f, "  \"runs_per_point\": %d,\n", flags.Runs());
  std::fprintf(f, "  \"phase_ms\": %llu,\n",
               static_cast<unsigned long long>(flags.phase_ms));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointReport& p = points[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"config\": \"%s\", \"hot_pct\": %u, "
                 "\"commits_per_sec\": %.1f, \"commits_per_sec_min\": %.1f, "
                 "\"commits_per_sec_max\": %.1f, \"committed\": %llu, "
                 "\"aborts\": %llu, \"stashes\": %llu, \"p50_us\": %.2f, "
                 "\"p99_us\": %.2f}%s\n",
                 p.engine.c_str(), p.config.c_str(), p.hot_pct,
                 p.commits_per_sec.mean(), p.commits_per_sec.min(),
                 p.commits_per_sec.max(),
                 static_cast<unsigned long long>(p.committed),
                 static_cast<unsigned long long>(p.aborts),
                 static_cast<unsigned long long>(p.stashes), p.p50_us, p.p99_us,
                 i + 1 == points.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  std::string json_path;
  std::vector<std::uint32_t> hot_pcts{10, 50, 90};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--hot=", 6) == 0) {
      hot_pcts.clear();
      for (const char* p = argv[i] + 6; *p != '\0';) {
        hot_pcts.push_back(static_cast<std::uint32_t>(std::strtoul(p, nullptr, 10)));
        while (*p != '\0' && *p != ',') {
          ++p;
        }
        if (*p == ',') {
          ++p;
        }
      }
    }
  }
  const std::uint64_t keys = flags.Keys(200000);
  const Protocol protocols[] = {Protocol::kDoppel, Protocol::kOcc, Protocol::kTwoPL};

  std::printf("perf_smoke: INCR1 constant-factor benchmark\n");
  std::printf("threads=%d keys=%llu phase=%llums seconds/point=%.2f runs/point=%d\n\n",
              flags.ResolvedThreads(), static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(flags.phase_ms),
              static_cast<double>(flags.MeasureMs(0.5)) * 1e-3, flags.Runs());

  std::atomic<std::uint64_t> hot{0};
  std::vector<PointReport> points;
  Table table({"engine", "config", "hot%", "commits/s", "min", "max", "aborts",
               "p50us", "p99us"});
  auto run_point = [&](Protocol proto, const std::string& config,
                       std::uint32_t hot_pct) {
    PointReport p = MeasureIncrPoint(flags, proto, config, hot_pct, keys, &hot);
    table.AddRow({p.engine, p.config, std::to_string(p.hot_pct),
                  FormatCount(p.commits_per_sec.mean()),
                  FormatCount(p.commits_per_sec.min()),
                  FormatCount(p.commits_per_sec.max()), std::to_string(p.aborts),
                  FormatDouble(p.p50_us, 1), FormatDouble(p.p99_us, 1)});
    points.push_back(std::move(p));
  };
  for (Protocol proto : protocols) {
    // The uniform low-contention point: constant factors, not conflicts, set the number.
    run_point(proto, "uniform", 0);
    // The contended sweep; the highest percentage is the tracked "hot" configuration.
    for (std::size_t i = 0; i < hot_pcts.size(); ++i) {
      run_point(proto, i + 1 == hot_pcts.size() ? "hot" : "sweep", hot_pcts[i]);
    }
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  if (!json_path.empty()) {
    WriteJson(json_path, flags, keys, points);
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
