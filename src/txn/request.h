// Transaction requests: a plain function pointer plus POD arguments.
//
// Workers generate and execute millions of transactions per second, and aborted or stashed
// transactions are queued for later retry; keeping requests POD avoids a heap allocation
// per transaction. (The convenience std::function path used by Database::Execute is built
// on top of this in src/core/database.h.)
#ifndef DOPPEL_SRC_TXN_REQUEST_H_
#define DOPPEL_SRC_TXN_REQUEST_H_

#include <cstdint>

#include "src/store/key.h"

namespace doppel {

class Txn;

// Arguments available to a transaction procedure. Workloads map their parameters onto
// these fields; anything larger is derived deterministically inside the procedure.
struct TxnArgs {
  Key k1;
  Key k2;
  std::int64_t n = 0;
  std::uint32_t aux = 0;
  std::uint8_t tag = 0;          // workload-defined class (e.g. read vs write)
  std::uint64_t submit_ns = 0;   // stamped at submission; latency includes queueing,
                                 // retries, and stash delay
};

using TxnProc = void (*)(Txn&, const TxnArgs&);

// Why a transaction ended without committing (kNone when it committed).
enum class TxnAbort : std::uint8_t {
  kNone = 0,
  // Txn::Abort() from the body, or the database stopped before the transaction ran.
  kUser = 1,
  // An op's required record type conflicted with the key's existing record type
  // (see TypeMismatchSignal); terminal, never retried.
  kTypeMismatch = 2,
  // The database is in read-only degraded mode after a permanent WAL failure: the
  // transaction's writes could not be made durable, so it was terminated (in-flight)
  // or refused (at submission). Terminal, never retried — the degraded latch is
  // one-way for the process lifetime.
  kDurabilityLost = 3,
};

// Final outcome of a submitted transaction.
struct TxnResult {
  bool committed = false;
  std::uint32_t attempts = 0;
  TxnAbort abort = TxnAbort::kNone;
};

// Completion slot: invoked exactly once on the committing worker's thread when the
// transaction reaches a terminal state (commit or user abort). Must not block; a plain
// function pointer + context keeps TxnRequest POD (no per-request heap allocation).
using TxnCompletionFn = void (*)(const TxnResult& result, void* ctx);

struct TxnRequest {
  TxnProc proc = nullptr;
  TxnArgs args;
  TxnCompletionFn on_complete = nullptr;
  void* on_complete_ctx = nullptr;
  // Declares the transaction write-free. Read-only submissions are admitted even in
  // degraded (durability-lost) mode — they need no redo entry, so nothing about them
  // is lost. Purely an admission hint: a "read-only" body that does write is still
  // caught by the runner's degraded gate at commit time.
  bool read_only = false;
};

// Workload tags used by the built-in benchmarks (Table 3 separates read and write
// transaction latencies).
inline constexpr std::uint8_t kTagWrite = 0;
inline constexpr std::uint8_t kTagRead = 1;
inline constexpr int kNumTags = 4;

}  // namespace doppel

#endif  // DOPPEL_SRC_TXN_REQUEST_H_
