#include "src/core/database.h"

#include <chrono>
#include <utility>

#include "src/common/cpu.h"
#include "src/common/timing.h"
#include "src/txn/atomic_engine.h"
#include "src/txn/occ_engine.h"
#include "src/txn/twopl_engine.h"

namespace doppel {

Database::Database(Options opts) : opts_(opts), store_(opts.store_capacity) {
  if (opts_.num_workers <= 0) {
    opts_.num_workers = NumCpus();
  }
  runner_cfg_.backoff_min_ns = opts_.backoff_min_us * 1000;
  runner_cfg_.backoff_max_ns = opts_.backoff_max_us * 1000;
  if (opts_.wal_path != nullptr && opts_.wal_path[0] != '\0') {
    wal_ = std::make_unique<WriteAheadLog>(opts_.wal_path, opts_.wal_flush_us);
    runner_cfg_.wal = wal_.get();
  }

  for (int i = 0; i < opts_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(
        i, 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1)));
  }

  switch (opts_.protocol) {
    case Protocol::kDoppel: {
      auto engine = std::make_unique<DoppelEngine>(store_, opts_, stop_workers_);
      doppel_ = engine.get();
      doppel_->RegisterWorkers(workers_);
      doppel_->SetWal(wal_.get());
      engine_ = std::move(engine);
      coordinator_ =
          std::make_unique<Coordinator>(*doppel_, opts_, stop_coord_, stop_workers_);
      break;
    }
    case Protocol::kOcc:
      engine_ = std::make_unique<OccEngine>(store_);
      break;
    case Protocol::kTwoPL:
      engine_ = std::make_unique<TwoPLEngine>(store_);
      break;
    case Protocol::kAtomic:
      engine_ = std::make_unique<AtomicEngine>(store_);
      break;
  }
}

Database::~Database() { Stop(); }

void Database::MarkSplitManually(const Key& key, OpCode op, std::size_t topk_k) {
  DOPPEL_CHECK(doppel_ != nullptr);
  DOPPEL_CHECK(!started_);
  doppel_->MarkSplitManually(key, op, topk_k);
}

void Database::Start(SourceFactory factory) {
  DOPPEL_CHECK(!started_);
  started_ = true;
  sources_.clear();
  for (int i = 0; i < opts_.num_workers; ++i) {
    sources_.push_back(factory ? factory(i) : nullptr);
  }
  for (int i = 0; i < opts_.num_workers; ++i) {
    Worker* w = workers_[static_cast<std::size_t>(i)].get();
    TxnSource* src = sources_[static_cast<std::size_t>(i)].get();
    threads_.emplace_back([this, w, src] { WorkerMain(*w, src); });
  }
  if (coordinator_ != nullptr) {
    threads_.emplace_back([this] { coordinator_->Run(); });
  }
}

void Database::Stop() {
  if (!started_ || stopped_) {
    return;
  }
  stopped_ = true;
  // Coordinator first: it finishes any split phase (reconciling all slices) and then
  // releases the workers.
  stop_coord_.store(true, std::memory_order_release);
  if (coordinator_ == nullptr) {
    stop_workers_.store(true, std::memory_order_release);
  }
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
}

bool Database::TryRunSubmitted(Worker& w) {
  if (submit_count_.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  std::shared_ptr<SubmitTicket> ticket;
  {
    if (!submit_mu_.try_lock()) {
      return false;
    }
    if (!submit_queue_.empty()) {
      ticket = std::move(submit_queue_.front());
      submit_queue_.pop_front();
      submit_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    submit_mu_.unlock();
  }
  if (!ticket) {
    return false;
  }
  PendingTxn pt;
  pt.ticket = std::move(ticket);
  RunPendingTxn(*engine_, runner_cfg_, w, std::move(pt));
  return true;
}

void Database::WorkerMain(Worker& w, TxnSource* source) {
  if (opts_.pin_threads) {
    PinThreadToCpu(w.id);
  }
  while (!stop_workers_.load(std::memory_order_relaxed)) {
    engine_->BetweenTxns(w);

    const std::uint64_t now = NowNanos();
    if (w.HasDueRetry(now)) {
      std::pop_heap(w.retry_heap.begin(), w.retry_heap.end());
      PendingTxn pt = std::move(w.retry_heap.back().txn);
      w.retry_heap.pop_back();
      RunPendingTxn(*engine_, runner_cfg_, w, std::move(pt));
      continue;
    }
    if (!w.stash.empty() && engine_->CurrentPhase(w) == Phase::kJoined) {
      PendingTxn pt = std::move(w.stash.front());
      w.stash.pop_front();
      RunPendingTxn(*engine_, runner_cfg_, w, std::move(pt));
      continue;
    }
    if (TryRunSubmitted(w)) {
      continue;
    }
    if (source != nullptr) {
      TxnRequest req = source->Next(w);
      req.args.submit_ns = now;
      PendingTxn pt;
      pt.req = req;
      RunPendingTxn(*engine_, runner_cfg_, w, std::move(pt));
      continue;
    }
    // Idle (Execute-only mode): nap briefly, staying responsive to phase changes.
    std::this_thread::sleep_for(std::chrono::microseconds(w.retry_heap.empty() ? 50 : 5));
  }
}

TxnResult Database::Execute(std::function<void(Txn&)> fn) {
  DOPPEL_CHECK(started_ && !stopped_);
  auto ticket = std::make_shared<SubmitTicket>();
  ticket->fn = std::move(fn);
  {
    submit_mu_.lock();
    submit_queue_.push_back(ticket);
    submit_mu_.unlock();
  }
  submit_count_.fetch_add(1, std::memory_order_relaxed);
  int state = ticket->state.load(std::memory_order_acquire);
  while (state == 0) {
    ticket->state.wait(0, std::memory_order_acquire);
    state = ticket->state.load(std::memory_order_acquire);
  }
  return TxnResult{state == 1, ticket->attempts.load(std::memory_order_relaxed)};
}

std::uint64_t Database::SampleTotalCommits() const {
  std::uint64_t sum = 0;
  for (const auto& w : workers_) {
    sum += w->shared_commits.Load();
  }
  return sum;
}

Database::Stats Database::CollectStats() const {
  Stats s;
  for (const auto& w : workers_) {
    s.committed += w->committed;
    s.committed_split_phase += w->committed_split_phase;
    s.conflicts += w->conflicts;
    s.stash_events += w->stash_events;
    s.user_aborts += w->user_aborts;
    for (int t = 0; t < kNumTags; ++t) {
      s.committed_by_tag[t] += w->committed_by_tag[t];
      s.latency_by_tag[t].Merge(w->latency_by_tag[t]);
    }
  }
  return s;
}

}  // namespace doppel
