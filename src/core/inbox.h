// Bounded MPSC inbox: the per-worker submission queue behind Database::Submit.
//
// Multiple client threads push transactions; exactly one worker (the owner) pops them in
// FIFO order between transactions. The design is a bounded ring of sequence-stamped cells
// (Vyukov's bounded queue): producers claim a cell with one fetch-add-like CAS on the
// enqueue cursor and publish with a release store of the cell's sequence, so a push is
// wait-free in the common case and never takes a lock — this removes the try_lock bailout
// that let the old global deque strand a submitted transaction for a full worker cycle.
// Cursors and cells are cache-line padded (src/common/cacheline.h): producers on one
// core must not false-share with the consuming worker's pops.
//
// A full inbox rejects the push (backpressure, Database::SubmitStatus::kQueueFull)
// instead of resizing: unbounded queues just move overload from the client into memory.
#ifndef DOPPEL_SRC_CORE_INBOX_H_
#define DOPPEL_SRC_CORE_INBOX_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/common/cacheline.h"
#include "src/txn/worker.h"

namespace doppel {

class SubmitInbox {
 public:
  // `capacity` is rounded up to a power of two; minimum 2.
  explicit SubmitInbox(std::size_t capacity);
  SubmitInbox(const SubmitInbox&) = delete;
  SubmitInbox& operator=(const SubmitInbox&) = delete;

  // Producer side (any thread). Returns false when the ring is full; `item` is left
  // intact so the caller can retry on another inbox.
  bool TryPush(PendingTxn& item);

  // Consumer side (owning worker only). Returns false when empty.
  bool TryPop(PendingTxn* out);

  // Consumer side: pops up to `max` items into `out` in FIFO order and returns the
  // count. One cursor pass per batch instead of one TryPop round-trip per transaction —
  // the worker hot loop's dequeue amortization.
  std::size_t TryPopBatch(PendingTxn* out, std::size_t max);

  std::size_t capacity() const { return capacity_; }

  // Racy occupancy estimate (diagnostics; placement itself is plain round-robin).
  std::size_t ApproxSize() const;

 private:
  // alignas rounds sizeof(Cell) up to a cache-line multiple, so neighbouring cells never
  // share a line: a producer publishing cell i must not invalidate the consumer draining
  // cell i-1.
  struct alignas(kCacheLineSize) Cell {
    std::atomic<std::uint64_t> seq;
    PendingTxn item;
  };

  std::size_t capacity_;
  std::uint64_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLineSize) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> dequeue_pos_{0};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_CORE_INBOX_H_
