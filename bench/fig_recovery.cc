// Durability bench (extension, §3): what does asynchronous batched logging cost, and
// how fast is recovery as the log grows?
//
// Part 1 — logging overhead: INCR1 throughput with logging off / on / on+fsync; the
// paper's claim is that group-commit redo logging does not become a bottleneck.
//
// Part 2 — recovery time vs log volume: run a logged workload for increasing
// durations, then time a reopen's recovery (segment parse + TID sort + replay) with 1
// thread and with parallel replay. A checkpointed variant shows the coordinator's
// joined-phase snapshots truncating the log: recovery cost tracks the volume since the
// last checkpoint, not database lifetime (STAR's observation).
//
//   ./fig_recovery [--threads=N] [--seconds=F] [--keys=N] [--csv]
#include <memory>
#include <string>
#include <unistd.h>

#include "bench/bench_common.h"
#include "src/common/timing.h"
#include "src/workload/incr.h"

namespace doppel {
namespace bench {
namespace {

std::string BenchDir(const char* tag) {
  return "/tmp/doppel_fig_recovery_" + std::string(tag) + "_" +
         std::to_string(::getpid());
}

void RemoveDir(const std::string& dir) {
  // Best-effort: the WAL layer names every file it creates.
  Manifest m;
  if (Manifest::Load(dir, &m)) {
    for (std::uint64_t seg : m.live_segments) {
      std::remove((dir + "/" + Manifest::SegmentFileName(seg)).c_str());
    }
    if (!m.checkpoint.empty()) {
      std::remove((dir + "/" + m.checkpoint).c_str());
    }
  }
  std::remove((dir + "/MANIFEST").c_str());
  ::rmdir(dir.c_str());
}

struct LoggedRun {
  RunMetrics metrics;
  std::string dir;
};

LoggedRun RunLogged(const Flags& f, std::uint64_t keys, std::uint64_t measure_ms,
                    const char* tag, bool fsync, std::uint64_t checkpoint_us) {
  LoggedRun r;
  r.dir = BenchDir(tag);
  RemoveDir(r.dir);
  Options o = BaseOptions(f, Protocol::kDoppel, keys * 2);
  o.wal_dir = r.dir.c_str();
  o.wal_fsync = fsync;
  o.checkpoint_interval_us = checkpoint_us;
  auto db = std::make_unique<Database>(o);
  PopulateIncr(db->store(), keys);
  std::atomic<std::uint64_t> hot{0};
  r.metrics = RunWorkload(*db, MakeIncr1Factory(keys, 10, &hot), measure_ms, 100);
  return r;
}

}  // namespace

int Main(int argc, char** argv) {
  const Flags f = ParseFlags(argc, argv);
  const std::uint64_t keys = f.Keys(1 << 14);
  const std::uint64_t measure_ms = f.MeasureMs(0.5);

  // ---- Part 1: logging overhead ----
  std::printf("== logging overhead (INCR1, 10%% hot, %llu keys, %llums) ==\n",
              static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(measure_ms));
  Table overhead({"mode", "throughput", "wal_txns", "flushes", "flushed"});
  {
    Options o = BaseOptions(f, Protocol::kDoppel, keys * 2);
    auto db = std::make_unique<Database>(o);
    PopulateIncr(db->store(), keys);
    std::atomic<std::uint64_t> hot{0};
    RunMetrics m = RunWorkload(*db, MakeIncr1Factory(keys, 10, &hot), measure_ms, 100);
    overhead.AddRow({"off", FormatCount(m.throughput), "-", "-", "-"});
  }
  for (const bool fsync : {false, true}) {
    LoggedRun r = RunLogged(f, keys, measure_ms, fsync ? "ov_fsync" : "ov_wal", fsync,
                            /*checkpoint_us=*/0);
    overhead.AddRow({fsync ? "wal+fsync" : "wal",
                     FormatCount(r.metrics.throughput),
                     FormatCount(static_cast<double>(r.metrics.wal_appended_txns)),
                     FormatCount(static_cast<double>(r.metrics.wal_flushed_batches)),
                     FormatBytes(static_cast<double>(r.metrics.wal_flushed_bytes))});
    std::printf("%s\n", WalSummary(r.metrics).c_str());
    RemoveDir(r.dir);
  }
  overhead.Print();
  if (f.csv) {
    overhead.PrintCsv();
  }

  // ---- Part 2: recovery time vs log volume ----
  std::printf("\n== recovery time vs log volume ==\n");
  Table recovery({"run_ms", "mode", "log", "ckpt_records", "replayed", "recover_1t_ms",
                  "recover_par_ms", "par_threads"});
  const std::uint64_t volumes[] = {measure_ms / 2, measure_ms, measure_ms * 2};
  for (const std::uint64_t run_ms : volumes) {
    for (const bool checkpointed : {false, true}) {
      LoggedRun r =
          RunLogged(f, keys, run_ms, checkpointed ? "vol_ckpt" : "vol_log", false,
                    // Checkpoint roughly four times per run; 0 disables.
                    checkpointed ? std::max<std::uint64_t>(run_ms * 250, 1000) : 0);
      double ms_serial = 0.0;
      double ms_parallel = 0.0;
      RecoveryResult res_parallel;
      {
        Store store(keys * 2);
        PopulateIncr(store, keys);
        WriteAheadLog wal(r.dir);
        Stopwatch clock;
        wal.Recover(&store, 1);
        ms_serial = clock.ElapsedSeconds() * 1000.0;
      }
      {
        Store store(keys * 2);
        PopulateIncr(store, keys);
        WriteAheadLog wal(r.dir);
        Stopwatch clock;
        res_parallel = wal.Recover(&store, 0);
        ms_parallel = clock.ElapsedSeconds() * 1000.0;
      }
      recovery.AddRow(
          {std::to_string(run_ms), checkpointed ? "checkpointed" : "log-only",
           FormatBytes(static_cast<double>(r.metrics.wal_flushed_bytes)),
           FormatCount(static_cast<double>(res_parallel.checkpoint_records)),
           FormatCount(static_cast<double>(res_parallel.replayed_txns)),
           FormatDouble(ms_serial, 1), FormatDouble(ms_parallel, 1),
           std::to_string(res_parallel.replay_threads)});
      RemoveDir(r.dir);
    }
  }
  recovery.Print();
  if (f.csv) {
    recovery.PrintCsv();
  }
  return 0;
}

}  // namespace bench
}  // namespace doppel

int main(int argc, char** argv) { return doppel::bench::Main(argc, argv); }
