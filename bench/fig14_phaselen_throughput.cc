// Figure 14: "Throughput in Doppel with the LIKE benchmark, varying phase length":
// uniform, skewed 50/50, skewed write-heavy.
#include "bench/phaselen_common.h"

int main(int argc, char** argv) {
  const auto flags = doppel::bench::ParseFlags(argc, argv);
  doppel::bench_phaselen::RunSweep(
      flags, "Figure 14: Doppel LIKE throughput vs phase length",
      [](const doppel::RunMetrics& m) { return doppel::FormatCount(m.throughput); });
  return 0;
}
