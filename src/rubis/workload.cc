#include "src/rubis/workload.h"

#include "src/common/dassert.h"
#include "src/rubis/txns.h"

namespace doppel {
namespace rubis {
namespace {

enum class TxnKind {
  kViewItem,
  kSearchCategory,
  kSearchRegion,
  kViewUser,
  kViewBidHistory,
  kBrowseCategories,
  kBrowseRegions,
  kAboutMe,
  kStoreBid,
  kStoreComment,
  kStoreItem,
  kRegisterUser,
  kStoreBuyNow,
};

struct MixEntry {
  TxnKind kind;
  std::uint32_t weight;  // percent
};

// RUBiS Bidding mix: 85% read-only interactions, 15% read-write (§8.8).
constexpr MixEntry kBiddingMix[] = {
    {TxnKind::kViewItem, 25},        {TxnKind::kSearchCategory, 20},
    {TxnKind::kSearchRegion, 10},    {TxnKind::kViewUser, 10},
    {TxnKind::kViewBidHistory, 8},   {TxnKind::kBrowseCategories, 5},
    {TxnKind::kBrowseRegions, 3},    {TxnKind::kAboutMe, 4},
    {TxnKind::kStoreBid, 7},         {TxnKind::kStoreComment, 2},
    {TxnKind::kStoreItem, 2},        {TxnKind::kRegisterUser, 2},
    {TxnKind::kStoreBuyNow, 2},
};

// RUBiS-C: 50% bids; every non-bid transaction scaled down proportionally from the
// bidding mix (whose non-bid share is 93%).
constexpr MixEntry kContendedMix[] = {
    {TxnKind::kStoreBid, 50},        {TxnKind::kViewItem, 14},
    {TxnKind::kSearchCategory, 11},  {TxnKind::kSearchRegion, 5},
    {TxnKind::kViewUser, 5},         {TxnKind::kViewBidHistory, 4},
    {TxnKind::kBrowseCategories, 3}, {TxnKind::kBrowseRegions, 2},
    {TxnKind::kAboutMe, 2},          {TxnKind::kStoreComment, 1},
    {TxnKind::kStoreItem, 1},        {TxnKind::kRegisterUser, 1},
    {TxnKind::kStoreBuyNow, 1},
};

TxnKind DrawKind(Rng& rng, const MixEntry* mix, std::size_t n) {
  std::uint64_t roll = rng.NextBounded(100);
  for (std::size_t i = 0; i < n; ++i) {
    if (roll < mix[i].weight) {
      return mix[i].kind;
    }
    roll -= mix[i].weight;
  }
  return mix[n - 1].kind;
}

}  // namespace

RubisSource::RubisSource(const WorkloadConfig& cfg, const ZipfianGenerator* zipf,
                         int worker_id)
    : cfg_(cfg), zipf_(zipf), worker_id_(worker_id) {
  if (cfg_.mix == Mix::kContended) {
    DOPPEL_CHECK(zipf_ != nullptr);
  }
}

std::uint64_t RubisSource::PickItem(Worker& w) {
  return w.rng.NextBounded(cfg_.data.num_items);
}

TxnRequest RubisSource::Next(Worker& w) {
  const Config& d = cfg_.data;
  TxnRequest r;
  TxnKind kind;
  if (cfg_.mix == Mix::kBidding) {
    kind = DrawKind(w.rng, kBiddingMix, std::size(kBiddingMix));
  } else {
    kind = DrawKind(w.rng, kContendedMix, std::size(kContendedMix));
  }
  switch (kind) {
    case TxnKind::kViewItem:
      r.proc = &ViewItem;
      r.args.tag = kTagRead;
      r.args.k1 = ItemKey(PickItem(w));
      break;
    case TxnKind::kSearchCategory:
      r.proc = &SearchItemsByCategory;
      r.args.tag = kTagRead;
      r.args.k1 = CategoryKey(w.rng.NextBounded(d.num_categories));
      break;
    case TxnKind::kSearchRegion:
      r.proc = &SearchItemsByRegion;
      r.args.tag = kTagRead;
      r.args.k1 = RegionKey(w.rng.NextBounded(d.num_regions));
      break;
    case TxnKind::kViewUser:
      r.proc = &ViewUserInfo;
      r.args.tag = kTagRead;
      r.args.k1 = UserKey(w.rng.NextBounded(d.num_users));
      break;
    case TxnKind::kViewBidHistory:
      r.proc = &ViewBidHistory;
      r.args.tag = kTagRead;
      r.args.k1 = ItemKey(PickItem(w));
      break;
    case TxnKind::kBrowseCategories:
      r.proc = &BrowseCategories;
      r.args.tag = kTagRead;
      r.args.aux = static_cast<std::uint32_t>(w.rng.NextBounded(d.num_categories));
      break;
    case TxnKind::kBrowseRegions:
      r.proc = &BrowseRegions;
      r.args.tag = kTagRead;
      r.args.aux = static_cast<std::uint32_t>(w.rng.NextBounded(d.num_regions));
      break;
    case TxnKind::kAboutMe:
      r.proc = &AboutMe;
      r.args.tag = kTagRead;
      r.args.k1 = UserKey(w.rng.NextBounded(d.num_users));
      break;
    case TxnKind::kStoreBid: {
      r.proc = cfg_.plain_store_bid ? &StoreBidPlain : &StoreBid;
      r.args.tag = kTagWrite;
      const std::uint64_t item =
          cfg_.mix == Mix::kContended ? zipf_->Next(w.rng) : PickItem(w);
      r.args.k1 = ItemKey(item);
      r.args.k2 = BidKey(NextRowId());
      r.args.aux = static_cast<std::uint32_t>(w.rng.NextBounded(d.num_users));
      r.args.n = 1 + static_cast<std::int64_t>(w.rng.NextBounded(1000000));
      break;
    }
    case TxnKind::kStoreComment:
      r.proc = &StoreComment;
      r.args.tag = kTagWrite;
      r.args.k1 = ItemKey(PickItem(w));
      r.args.k2 = CommentKey(NextRowId());
      r.args.aux = static_cast<std::uint32_t>(w.rng.NextBounded(d.num_users));
      r.args.n = 1 + static_cast<std::int64_t>(w.rng.NextBounded(5));
      break;
    case TxnKind::kStoreItem:
      r.proc = &StoreItem;
      r.args.tag = kTagWrite;
      r.args.k1 = ItemKey(d.num_items + NextRowId());
      r.args.aux = static_cast<std::uint32_t>(w.rng.NextBounded(d.num_users));
      break;
    case TxnKind::kRegisterUser:
      r.proc = &RegisterUser;
      r.args.tag = kTagWrite;
      r.args.k1 = UserKey(d.num_users + NextRowId());
      break;
    case TxnKind::kStoreBuyNow:
      r.proc = &StoreBuyNow;
      r.args.tag = kTagWrite;
      r.args.k1 = ItemKey(PickItem(w));
      r.args.k2 = BuyNowKey(NextRowId());
      r.args.aux = static_cast<std::uint32_t>(w.rng.NextBounded(d.num_users));
      break;
  }
  return r;
}

SourceFactory MakeRubisFactory(const WorkloadConfig& cfg, const ZipfianGenerator* zipf) {
  return [cfg, zipf](int worker_id) {
    return std::make_unique<RubisSource>(cfg, zipf, worker_id);
  };
}

}  // namespace rubis
}  // namespace doppel
