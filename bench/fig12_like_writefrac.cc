// Figure 12: "Throughput of the LIKE benchmark as a function of the fraction of
// transactions that write, alpha = 1.4." Series: Doppel, OCC, 2PL.
#include <memory>

#include "bench/bench_common.h"
#include "src/common/zipf.h"
#include "src/workload/like.h"

namespace doppel {
namespace {

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const std::uint64_t n = flags.Keys(100000);  // users == pages == n
  const std::vector<int> write_pcts = flags.full
                                          ? std::vector<int>{0,  10, 20, 30, 40, 50,
                                                             60, 70, 80, 90, 100}
                                          : std::vector<int>{0, 20, 30, 50, 80, 100};
  const Protocol protocols[] = {Protocol::kDoppel, Protocol::kOcc, Protocol::kTwoPL};

  std::printf("Figure 12: LIKE throughput vs write fraction (alpha=1.4)\n");
  std::printf("threads=%d users=pages=%llu\n\n", flags.ResolvedThreads(),
              static_cast<unsigned long long>(n));

  const ZipfianGenerator zipf(n, 1.4);
  Table table({"write%", "Doppel", "OCC", "2PL", "doppel_split"});
  for (int pct : write_pcts) {
    LikeConfig cfg;
    cfg.num_users = n;
    cfg.num_pages = n;
    cfg.write_pct = static_cast<std::uint32_t>(pct);
    cfg.alpha = 1.4;
    std::vector<std::string> row{std::to_string(pct)};
    std::size_t split_records = 0;
    for (Protocol p : protocols) {
      auto point = bench::MeasurePoint(
          flags, /*default_seconds=*/0.4,
          [&] {
            auto db = std::make_unique<Database>(
                bench::BaseOptions(flags, p, n * 4));
            PopulateLike(db->store(), cfg);
            return db;
          },
          [&] { return MakeLikeFactory(cfg, &zipf); });
      row.push_back(FormatCount(point.throughput.mean()));
      if (p == Protocol::kDoppel) {
        split_records = point.last.split_records;
      }
    }
    row.push_back(std::to_string(split_records));
    table.AddRow(std::move(row));
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
