// Typed record values: int64, byte string, ordered tuple, top-K set (§3-4 of the paper).
//
// "Doppel records have typed values, and each type supports one or more operations."
// A record's type is fixed when the record is created.
#ifndef DOPPEL_SRC_STORE_VALUE_H_
#define DOPPEL_SRC_STORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace doppel {

enum class RecordType : std::uint8_t {
  kInt64 = 0,   // Get/Put/Add/Max/Min/Mult
  kBytes = 1,   // Get/Put
  kOrdered = 2, // Get/OPut (ordered tuple)
  kTopK = 3,    // Get/TopKInsert (top-K set)
};

const char* RecordTypeName(RecordType t);

// Lexicographic order component of ordered tuples. The paper allows the order to be
// "a number (or several numbers in lexicographic order)"; RUBiS uses [amount, timestamp].
struct OrderKey {
  std::int64_t primary = 0;
  std::int64_t secondary = 0;

  static constexpr OrderKey NegInf() {
    return OrderKey{INT64_MIN, INT64_MIN};
  }

  friend constexpr bool operator==(const OrderKey& a, const OrderKey& b) {
    return a.primary == b.primary && a.secondary == b.secondary;
  }
  friend constexpr bool operator<(const OrderKey& a, const OrderKey& b) {
    return a.primary != b.primary ? a.primary < b.primary : a.secondary < b.secondary;
  }
  friend constexpr bool operator>(const OrderKey& a, const OrderKey& b) { return b < a; }
};

// An ordered tuple (o, j, x): order, writing core id, payload. OPut replaces the stored
// tuple iff (o', j') > (o, j) lexicographically, which makes OPut self-commutative.
struct OrderedTuple {
  OrderKey order = OrderKey::NegInf();
  std::uint32_t core = 0;
  std::string payload;

  // True if `a` beats `b` under the (order, core id) total order.
  static bool Wins(const OrderedTuple& a, const OrderedTuple& b) {
    if (a.order == b.order) {
      return a.core > b.core;
    }
    return b.order < a.order;
  }

  friend bool operator==(const OrderedTuple& a, const OrderedTuple& b) {
    return a.order == b.order && a.core == b.core && a.payload == b.payload;
  }
};

// A bounded set of ordered tuples holding the K largest orders seen. At most one tuple per
// order value; on duplicate order the tuple with the highest core ID is kept (paper §4).
// Stored as a vector sorted descending by (order, core); K is small (indexes, top-k lists).
class TopKSet {
 public:
  explicit TopKSet(std::size_t k = kDefaultK);

  // Inserts (order, core, payload); drops the smallest tuple if the set exceeds K.
  // Returns true if the set changed.
  bool Insert(const OrderedTuple& t);

  // Merges `other` into this set: the result is the top-K of the union, with per-order
  // core-id dedup. Cost O(K), independent of how many inserts produced `other` — the
  // requirement 4 of §4.
  void MergeFrom(const TopKSet& other);

  std::size_t k() const { return k_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  // Descending by (order, core).
  const std::vector<OrderedTuple>& items() const { return items_; }
  // Smallest order currently retained (useful for tests).
  const OrderedTuple& back() const { return items_.back(); }

  friend bool operator==(const TopKSet& a, const TopKSet& b) {
    return a.k_ == b.k_ && a.items_ == b.items_;
  }

  static constexpr std::size_t kDefaultK = 10;

 private:
  std::size_t k_;
  std::vector<OrderedTuple> items_;
};

// A full typed value snapshot; used for loading, snapshots returned to transactions, and
// tests. (Hot paths use the typed accessors on Record instead.)
using Value = std::variant<std::int64_t, std::string, OrderedTuple, TopKSet>;

RecordType ValueType(const Value& v);

}  // namespace doppel

#endif  // DOPPEL_SRC_STORE_VALUE_H_
