// Async submission API tests: TxnHandle completion, completion callbacks, per-worker
// MPSC inbox semantics (FIFO, backpressure), batch ordering, drain on Stop, and the
// Execute lost-wakeup regression (the old global deque's try_lock bailout could strand a
// submitted transaction for a full worker cycle).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/core/inbox.h"
#include "src/txn/occ_engine.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

TxnRequest MakeAdd(const Key& k, std::int64_t n) {
  TxnRequest r;
  r.proc = [](Txn& txn, const TxnArgs& a) { txn.Add(a.k1, a.n); };
  r.args.k1 = k;
  r.args.n = n;
  return r;
}

// ---- SubmitInbox unit tests ----

TEST(SubmitInbox, FifoAndCapacity) {
  SubmitInbox inbox(/*capacity=*/3);  // rounds up to 4
  EXPECT_EQ(inbox.capacity(), 4u);
  for (std::int64_t i = 0; i < 4; ++i) {
    PendingTxn pt;
    pt.req = MakeAdd(Key::FromU64(1), i);
    EXPECT_TRUE(inbox.TryPush(pt));
  }
  PendingTxn overflow;
  overflow.req = MakeAdd(Key::FromU64(1), 99);
  EXPECT_FALSE(inbox.TryPush(overflow));
  EXPECT_EQ(overflow.req.args.n, 99);  // rejected push leaves the item intact
  EXPECT_EQ(inbox.ApproxSize(), 4u);

  for (std::int64_t i = 0; i < 4; ++i) {
    PendingTxn pt;
    ASSERT_TRUE(inbox.TryPop(&pt));
    EXPECT_EQ(pt.req.args.n, i);  // FIFO
  }
  PendingTxn empty;
  EXPECT_FALSE(inbox.TryPop(&empty));
  EXPECT_EQ(inbox.ApproxSize(), 0u);
}

TEST(SubmitInbox, MpscStressDeliversEverythingOnce) {
  SubmitInbox inbox(/*capacity=*/64);
  constexpr int kProducers = 4;
  constexpr std::int64_t kPerProducer = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        PendingTxn pt;
        pt.req = MakeAdd(Key::FromU64(1), p * kPerProducer + i);
        while (!inbox.TryPush(pt)) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::int64_t popped = 0;
  std::int64_t sum = 0;
  std::int64_t last_seen[kProducers] = {-1, -1, -1, -1};
  std::thread consumer([&] {
    PendingTxn pt;
    while (true) {
      if (inbox.TryPop(&pt)) {
        const std::int64_t v = pt.req.args.n;
        const int p = static_cast<int>(v / kPerProducer);
        EXPECT_GT(v % kPerProducer, last_seen[p]);  // per-producer order preserved
        last_seen[p] = v % kPerProducer;
        popped++;
        sum += v;
        continue;
      }
      if (done.load(std::memory_order_acquire)) {
        break;  // producers joined before `done`: an empty pop now is final
      }
      std::this_thread::yield();
    }
  });
  for (auto& t : producers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  // Drain any leftovers raced past the consumer's final empty check.
  PendingTxn pt;
  while (inbox.TryPop(&pt)) {
    popped++;
    sum += pt.req.args.n;
  }
  const std::int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped, n);
  EXPECT_EQ(sum, n * (n - 1) / 2);  // each value delivered exactly once
}

// ---- Handle completion ----

class AsyncSubmitTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(AsyncSubmitTest, HandlesCompleteAndCounterIsExact) {
  Options opts;
  opts.protocol = GetParam();
  opts.num_workers = 2;
  opts.phase_us = 2000;
  opts.store_capacity = 1024;
  Database db(opts);
  const Key k = Key::FromU64(7);
  db.store().LoadInt(k, 0);
  db.Start();

  constexpr int kOps = 500;
  std::vector<TxnHandle> handles;
  handles.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    handles.push_back(db.Submit(MakeAdd(k, 1)));
  }
  std::uint64_t committed = 0;
  for (TxnHandle& h : handles) {
    ASSERT_TRUE(h.valid());
    TxnResult res = h.Wait();
    EXPECT_TRUE(h.done());
    EXPECT_GE(res.attempts, 1u);
    committed += res.committed ? 1 : 0;
  }
  db.Stop();
  EXPECT_EQ(committed, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(testing::IntAt(db.store(), k), kOps);
}

TEST_P(AsyncSubmitTest, SubmitStampsQueueingLatency) {
  Options opts;
  opts.protocol = GetParam();
  opts.num_workers = 2;
  opts.phase_us = 2000;
  opts.store_capacity = 1024;
  Database db(opts);
  const Key k = Key::FromU64(7);
  db.store().LoadInt(k, 0);
  db.Start();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Execute([&](Txn& t) { t.Add(k, 1); }).committed);
  }
  db.Stop();
  // Externally submitted transactions must record submission→commit latency (tag 0).
  const Database::Stats stats = db.CollectStats();
  EXPECT_EQ(stats.latency_by_tag[0].count(), 50u);
  EXPECT_GT(stats.latency_by_tag[0].min(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, AsyncSubmitTest,
                         ::testing::Values(Protocol::kDoppel, Protocol::kOcc,
                                           Protocol::kTwoPL));

// ---- Completion callbacks ----

TEST(AsyncSubmit, CallbackRunsOnWorkerThreadExactlyOnce) {
  Options opts;
  opts.protocol = Protocol::kOcc;
  opts.num_workers = 2;
  opts.store_capacity = 64;
  Database db(opts);
  const Key k = Key::FromU64(1);
  db.store().LoadInt(k, 0);
  db.Start();

  const std::thread::id submitter = std::this_thread::get_id();
  std::atomic<int> fired{0};
  std::atomic<bool> on_submitter_thread{false};
  std::atomic<bool> saw_commit{false};

  TxnHandle h = db.Submit(MakeAdd(k, 5));
  h.OnComplete([&](const TxnResult& res) {
    fired.fetch_add(1);
    saw_commit.store(res.committed);
    if (std::this_thread::get_id() == submitter) {
      on_submitter_thread.store(true);
    }
  });
  EXPECT_TRUE(h.Wait().committed);
  // Wait() returning only guarantees the state flip; spin briefly for the callback.
  for (int i = 0; i < 100000 && fired.load() == 0; ++i) {
    std::this_thread::yield();
  }
  db.Stop();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(saw_commit.load());
  // The transaction was in flight when OnComplete was registered (or finished just
  // after); in either case a callback delivered by a worker is not on this thread. When
  // it lost the race and ran inline, on_submitter_thread is legitimately true — accept
  // both, but verify the POD slot below pins the worker thread.

  // POD completion slot: fires on the committing worker's thread.
  struct SlotCtx {
    std::atomic<int> fired{0};
    std::atomic<bool> on_submitter{true};
    std::thread::id submitter;
  } ctx;
  ctx.submitter = submitter;
  TxnRequest req = MakeAdd(k, 1);
  req.on_complete = [](const TxnResult& res, void* p) {
    auto* c = static_cast<SlotCtx*>(p);
    c->fired.fetch_add(1);
    c->on_submitter.store(std::this_thread::get_id() == c->submitter);
    ASSERT_TRUE(res.committed);
  };
  req.on_complete_ctx = &ctx;

  Options opts2 = opts;
  Database db2(opts2);
  db2.store().LoadInt(k, 0);
  db2.Start();
  TxnHandle h2 = db2.Submit(req);
  EXPECT_TRUE(h2.Wait().committed);
  db2.Stop();
  EXPECT_EQ(ctx.fired.load(), 1);
  EXPECT_FALSE(ctx.on_submitter.load());  // ran on a worker, not the submitting thread
}

TEST(AsyncSubmit, OnCompleteAfterCompletionRunsInline) {
  Options opts;
  opts.protocol = Protocol::kOcc;
  opts.num_workers = 1;
  opts.store_capacity = 64;
  Database db(opts);
  const Key k = Key::FromU64(1);
  db.store().LoadInt(k, 0);
  db.Start();
  TxnHandle h = db.Submit(MakeAdd(k, 1));
  h.Wait();
  bool fired = false;
  const std::thread::id self = std::this_thread::get_id();
  h.OnComplete([&](const TxnResult& res) {
    fired = std::this_thread::get_id() == self;  // inline delivery on this thread
    EXPECT_TRUE(res.committed);
  });
  EXPECT_TRUE(fired);
  db.Stop();
}

// ---- Backpressure ----

TEST(AsyncSubmit, TrySubmitReportsQueueFull) {
  Options opts;
  opts.protocol = Protocol::kOcc;  // no coordinator: a blocked worker stalls nothing else
  opts.num_workers = 1;
  opts.store_capacity = 64;
  opts.submit_inbox_capacity = 4;
  Database db(opts);
  const Key k = Key::FromU64(1);
  db.store().LoadInt(k, 0);
  db.Start();

  // Park the only worker inside a transaction body so the inbox cannot drain.
  std::atomic<bool> release{false};
  TxnHandle blocker = db.Submit([&](Txn& txn) {
    txn.Add(Key::FromU64(1), 1);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });

  // Fill the inbox past capacity; TrySubmit must eventually report kQueueFull without
  // blocking or dropping accepted work.
  std::vector<TxnHandle> accepted;
  bool saw_full = false;
  for (int i = 0; i < 64 && !saw_full; ++i) {
    TxnHandle h;
    const SubmitStatus s = db.TrySubmit(MakeAdd(k, 1), &h);
    if (s == SubmitStatus::kOk) {
      ASSERT_TRUE(h.valid());
      accepted.push_back(std::move(h));
    } else {
      EXPECT_EQ(s, SubmitStatus::kQueueFull);
      EXPECT_FALSE(h.valid());
      saw_full = true;
    }
  }
  EXPECT_TRUE(saw_full);
  EXPECT_LE(accepted.size(), 4u);

  release.store(true, std::memory_order_release);
  EXPECT_TRUE(blocker.Wait().committed);
  for (TxnHandle& h : accepted) {
    EXPECT_TRUE(h.Wait().committed);
  }
  db.Stop();
  EXPECT_EQ(testing::IntAt(db.store(), k),
            static_cast<std::int64_t>(accepted.size()) + 1);
}

// ---- Batch submission ----

TEST(AsyncSubmit, BatchPreservesPerInboxOrder) {
  Options opts;
  opts.protocol = Protocol::kOcc;
  opts.num_workers = 1;  // one inbox: batch order == execution order
  opts.store_capacity = 64;
  Database db(opts);
  const Key k = Key::FromU64(1);
  db.store().LoadInt(k, 0);
  db.Start();

  struct OrderCtx {
    Spinlock mu;
    std::vector<std::int64_t> order;
  } ctx;
  constexpr std::int64_t kBatch = 200;
  // Completion order is recorded through the POD slot: one Slot per request carries the
  // collector plus that request's batch index.
  struct Slot {
    OrderCtx* ctx;
    std::int64_t index;
  };
  std::vector<Slot> slots(kBatch);
  std::vector<TxnRequest> reqs;
  reqs.reserve(kBatch);
  for (std::int64_t i = 0; i < kBatch; ++i) {
    slots[static_cast<std::size_t>(i)] = Slot{&ctx, i};
    TxnRequest r;
    r.proc = [](Txn& txn, const TxnArgs& a) { txn.PutInt(a.k1, a.n); };
    r.args.k1 = k;
    r.args.n = i;
    r.on_complete = [](const TxnResult& res, void* p) {
      ASSERT_TRUE(res.committed);
      auto* slot = static_cast<Slot*>(p);
      slot->ctx->mu.lock();
      slot->ctx->order.push_back(slot->index);
      slot->ctx->mu.unlock();
    };
    r.on_complete_ctx = &slots[static_cast<std::size_t>(i)];
    reqs.push_back(r);
  }

  std::vector<TxnHandle> handles = db.SubmitBatch(reqs);
  ASSERT_EQ(handles.size(), static_cast<std::size_t>(kBatch));
  for (TxnHandle& h : handles) {
    EXPECT_TRUE(h.Wait().committed);
  }
  db.Stop();

  ASSERT_EQ(ctx.order.size(), static_cast<std::size_t>(kBatch));
  for (std::int64_t i = 0; i < kBatch; ++i) {
    EXPECT_EQ(ctx.order[static_cast<std::size_t>(i)], i);  // strict submission order
  }
  // Last writer in batch order determines the final value.
  EXPECT_EQ(testing::IntAt(db.store(), k), kBatch - 1);
}

// ---- Drain on Stop ----

TEST(AsyncSubmit, StopDrainsInFlightHandles) {
  Options opts;
  opts.protocol = Protocol::kDoppel;  // stashes must be replayed before Stop returns
  opts.num_workers = 2;
  opts.phase_us = 1000;
  opts.store_capacity = 1024;
  Database db(opts);
  const Key k = Key::FromU64(3);
  db.store().LoadInt(k, 0);
  db.Start();

  constexpr int kOps = 3000;
  std::vector<TxnHandle> handles;
  handles.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    handles.push_back(db.Submit(MakeAdd(k, 1)));
  }
  // Stop with most submissions still queued: it must drain them all, then join.
  db.Stop();
  std::uint64_t committed = 0;
  for (TxnHandle& h : handles) {
    ASSERT_TRUE(h.done());  // no waiting: Stop() already drained
    committed += h.Wait().committed ? 1 : 0;
  }
  EXPECT_EQ(committed, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(db.InflightSubmissions(), 0u);
  EXPECT_EQ(testing::IntAt(db.store(), k), kOps);
}

// ---- Lost-wakeup regression ----

// The old global submit queue's TryRunSubmitted bailed out when try_lock failed even
// with submit_count_ > 0, so a submitted transaction could sit a full BetweenTxns cycle
// per collision. Hammering Execute from 8 threads against 2 workers made that visible
// as multi-cycle stalls; per-worker MPSC inboxes have no lock to lose.
TEST(AsyncSubmit, ExecuteHammerFromManyThreads) {
  Options opts;
  opts.protocol = Protocol::kDoppel;
  opts.num_workers = 2;
  opts.phase_us = 2000;
  opts.store_capacity = 1024;
  Database db(opts);
  const Key k = Key::FromU64(11);
  db.store().LoadInt(k, 0);
  db.Start();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> committed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (db.Execute([&](Txn& txn) { txn.Add(k, 1); }).committed) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  db.Stop();
  EXPECT_EQ(committed.load(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(testing::IntAt(db.store(), k), kThreads * kPerThread);
}

// ---- Shutdown with stashed submissions ----

// A submission stashed on split data must not pin Stop() for the rest of the split
// phase: Stop sets the drain flag, the coordinator ends the split phase immediately and
// starts no new one, and the stashed transaction retires in the joined phase. Before the
// fix, Stop's in-flight wait sat out the remaining phase length (2s here).
TEST(AsyncSubmit, StopRetiresStashedSubmissionsPromptly) {
  Options o;
  o.protocol = Protocol::kDoppel;
  o.num_workers = 2;
  o.manual_split_only = true;
  o.phase_us = 2000000;  // 2s phases: a stash early in a split phase has ~2s to wait
  o.store_capacity = 1 << 10;
  Database db(o);
  const Key hot = Key::FromU64(1);
  db.store().LoadInt(hot, 7);
  db.MarkSplitManually(hot, OpCode::kAdd);
  db.Start();

  // Submit reads of the split record during a live split phase until one is observed
  // stashed (a read can slip through unstashed in the instant before a worker finishes
  // entering the split phase, so this retries).
  std::atomic<std::int64_t> seen{-1};
  std::vector<TxnHandle> handles;
  bool stashed = false;
  for (int attempt = 0; attempt < 50 && !stashed; ++attempt) {
    bool in_split = false;
    for (int i = 0; i < 5000 && !in_split; ++i) {
      in_split = db.doppel()->controller().CurrentReleasedPhase() == Phase::kSplit;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(in_split);
    handles.push_back(
        db.Submit([&](Txn& t) { seen.store(t.GetInt(hot).value_or(-2)); }));
    for (int i = 0; i < 100 && !stashed; ++i) {
      stashed = db.doppel()->stash_pressure() > 0;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }
  ASSERT_TRUE(stashed) << "no submitted read ever reached the split record";

  const auto t0 = std::chrono::steady_clock::now();
  db.Stop();
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  for (const TxnHandle& h : handles) {
    EXPECT_TRUE(h.Wait().committed);
  }
  EXPECT_EQ(seen.load(), 7);
  EXPECT_GE(db.CollectStats().stash_events, 1u);
  EXPECT_LT(stop_seconds, 1.0)
      << "Stop must drain stashed submissions without waiting out the split phase";
}

// ---- Workload tag bounds ----

using AsyncSubmitDeathTest = ::testing::Test;

TEST(AsyncSubmitDeathTest, OutOfRangeTagFailsFast) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Single-threaded engine harness: committed_by_tag[kNumTags] must never be indexed
  // with a workload tag >= kNumTags.
  EXPECT_DEATH(
      {
        Store store(64);
        store.LoadInt(Key::FromU64(1), 0);
        OccEngine engine(store);
        Worker w(0, 42);
        RunnerConfig cfg;
        PendingTxn pt;
        pt.req = MakeAdd(Key::FromU64(1), 1);
        pt.req.args.tag = kNumTags;  // one past the end
        RunPendingTxn(engine, cfg, w, std::move(pt));
      },
      "tag < kNumTags");
}

}  // namespace
}  // namespace doppel
