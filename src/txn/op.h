// Operation codes. Each operation accesses exactly one record (§3); multi-record logic is
// composed in transactions. Splittable operations (§4) commute with themselves and return
// nothing; only they may execute against per-core slices in a split phase.
#ifndef DOPPEL_SRC_TXN_OP_H_
#define DOPPEL_SRC_TXN_OP_H_

#include <cstdint>

#include "src/store/value.h"

namespace doppel {

enum class OpCode : std::uint8_t {
  kGet = 0,
  kPutInt = 1,
  kPutBytes = 2,
  kAdd = 3,
  kMax = 4,
  kMin = 5,
  kMult = 6,
  kOPut = 7,
  kTopKInsert = 8,
  // Removes the key: commits as a write that installs absence, then drops the key from
  // its OrderedIndex partition (with the phantom-guard version bump) so scans stop
  // seeing it. Not splittable — under Doppel a delete on a split record stashes, which
  // pressures the split phase to end. The record itself is reclaimed later by the
  // epoch sweeper (src/store/epoch.h).
  kDelete = 9,
};

inline constexpr int kNumOps = 10;

constexpr bool IsSplittable(OpCode op) {
  switch (op) {
    case OpCode::kAdd:
    case OpCode::kMax:
    case OpCode::kMin:
    case OpCode::kMult:
    case OpCode::kOPut:
    case OpCode::kTopKInsert:
      return true;
    default:
      return false;
  }
}

// The record type an operation requires. kGet and kDelete adapt to the record's actual
// type and are handled separately.
constexpr RecordType OpRecordType(OpCode op) {
  switch (op) {
    case OpCode::kPutBytes:
      return RecordType::kBytes;
    case OpCode::kOPut:
      return RecordType::kOrdered;
    case OpCode::kTopKInsert:
      return RecordType::kTopK;
    default:
      return RecordType::kInt64;
  }
}

const char* OpName(OpCode op);

}  // namespace doppel

#endif  // DOPPEL_SRC_TXN_OP_H_
