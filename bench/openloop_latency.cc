// Open-loop submission→commit latency: external submitter threads push INCR1-style
// transactions through Database::TrySubmit at a paced offered load, and latency is
// measured from inbox acceptance to commit (queueing + retries + stash delay included).
// Series: Doppel vs OCC, sweeping offered load; rejected column shows backpressure
// (kQueueFull) once a protocol saturates.
//
// Flags: --threads=N (workers) --keys=N --phase-ms=N --seconds=F (per point)
//        --submitters=N (default 4) --hot=PCT (default 90) --csv
#include <memory>

#include "bench/bench_common.h"
#include "src/workload/incr.h"

namespace doppel {
namespace {

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  int submitters = 4;
  unsigned hot_pct = 90;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--submitters=", 13) == 0) {
      submitters = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--hot=", 6) == 0) {
      hot_pct = static_cast<unsigned>(std::atoi(argv[i] + 6));
    }
  }
  if (submitters <= 0) {
    std::fprintf(stderr, "error: --submitters must be >= 1 (got %d)\n", submitters);
    return 2;
  }
  const std::uint64_t keys = flags.Keys(100000);
  const std::vector<double> offered =
      flags.full ? std::vector<double>{50e3, 100e3, 200e3, 500e3, 1e6, 2e6, 0}
                 : std::vector<double>{50e3, 200e3, 0};  // 0 = unpaced (max rate)
  const Protocol protocols[] = {Protocol::kDoppel, Protocol::kOcc};

  std::printf(
      "Open-loop submission latency: INCR1 %u%% hot, %d submitters, %d workers\n\n",
      hot_pct, submitters, flags.ResolvedThreads());

  std::vector<std::string> headers{"protocol", "offered/s", "accepted", "rejected",
                                   "committed/s"};
  for (const std::string& h : LatencyPercentileHeaders()) {
    headers.push_back(h);
  }
  Table table(headers);

  std::atomic<std::uint64_t> hot{0};
  for (Protocol p : protocols) {
    for (double rate : offered) {
      auto db = std::make_unique<Database>(bench::BaseOptions(flags, p, keys * 2));
      PopulateIncr(db->store(), keys);

      Incr1Source source(keys, hot_pct, &hot);
      // Reuse the closed-loop INCR1 generator through one persistent worker shell per
      // submitter (its only role here is carrying the submitter's Rng).
      std::vector<std::unique_ptr<Worker>> shells;
      for (int s = 0; s < submitters; ++s) {
        shells.push_back(
            std::make_unique<Worker>(db->num_workers() + s, 0x2545f4914f6cdd1dULL * (s + 1)));
      }
      OpenLoopOptions olo;
      olo.submitters = submitters;
      olo.offered_per_sec = rate;
      olo.measure_ms = flags.MeasureMs(/*default_seconds=*/0.5);
      OpenLoopMetrics m = RunOpenLoop(
          *db, [&source, &shells](int s, Rng&) { return source.Next(*shells[s]); }, olo);

      std::vector<std::string> row{
          ProtocolName(p),
          rate == 0 ? std::string("max") : FormatCount(rate),
          FormatCount(static_cast<double>(m.accepted)),
          FormatCount(static_cast<double>(m.rejected)),
          FormatCount(m.throughput),
      };
      for (const std::string& cell : LatencyPercentileCells(m.latency)) {
        row.push_back(cell);
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
