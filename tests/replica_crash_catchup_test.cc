// Crash catch-up: a primary is SIGKILLed mid-run (no Stop, no final flush, possibly a
// torn active-segment tail). An unattached replica tailing the directory must serve
// EXACTLY the durable cut-consistent prefix: every transaction up to the last durable
// replication cut, nothing after it — computed independently here by walking the
// surviving segments entry by entry and replaying the cut windows serially. A second
// phase restarts the primary on the same directory (recovery truncates the torn tail
// and opens the next segment) and the same replica must follow it across the
// generation boundary and converge to the new final state.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/persist/log_reader.h"
#include "src/persist/manifest.h"
#include "src/replica/replica.h"
#include "src/workload/incr.h"
#include "tests/persist_test_util.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::FreshDir;
using testing::IntAt;
using testing::RemoveDirRecursive;
using testing::WriteFileBytes;

const Key kCounterKey = IncrKey(0);
const Key kMarkerKey = IncrKey(1);
// Insert+delete churn rides along: txn i inserts ChurnKey(i) and deletes
// ChurnKey(i-1), so a cut-consistent state always has exactly the marker's churn row
// live and its predecessor absent — deletes must replicate, not resurrect.
Key ChurnKey(std::uint64_t i) { return Key::Table(7, i); }
constexpr int kChildTxns = 4000;
constexpr int kProgressEvery = 250;
constexpr int kKillAfter = 1000;  // parent kills once the child reports this many

Options PrimaryOptions(const std::string& dir) {
  Options o;
  o.protocol = Protocol::kDoppel;
  o.num_workers = 2;
  o.phase_us = 2000;
  o.store_capacity = 1 << 12;
  o.wal_dir = dir.c_str();
  o.wal_flush_us = 1000;
  o.replication_cuts = true;  // no attached replica in the child; force cut emission
  return o;
}

// Child body: commit pair-writes until killed. DOPPEL_CHECK instead of gtest asserts
// (asserts do not work across fork).
void CrashingChild(const std::string& dir, const std::string& progress_path) {
  Options o = PrimaryOptions(dir);
  Database db(o);
  PopulateIncr(db.store(), 2);
  db.Start();
  for (int i = 0; i < kChildTxns; ++i) {
    const TxnResult res = db.Execute([i](Txn& txn) {
      txn.Add(kCounterKey, 1);
      txn.PutInt(kMarkerKey, i);
      txn.PutInt(ChurnKey(static_cast<std::uint64_t>(i)), i);
      if (i > 0) {
        txn.Delete(ChurnKey(static_cast<std::uint64_t>(i) - 1));
      }
    });
    DOPPEL_CHECK(res.committed);
    if ((i + 1) % kProgressEvery == 0) {
      WriteFileBytes(progress_path + ".tmp", std::to_string(i + 1));
      DOPPEL_CHECK(
          std::rename((progress_path + ".tmp").c_str(), progress_path.c_str()) == 0);
    }
  }
  ::_exit(0);  // child outran the parent's kill; the parent tolerates either exit
}

// Independent ground truth: walk the surviving segments entry by entry, replaying
// each cut window (TID-sorted, exactly the replica's publish rule) into `shadow`.
// Returns the last durable cut TID (0 if none) and fills txn/cut counts.
std::uint64_t ReplayDurableCutPrefix(const std::string& dir, Store* shadow,
                                     std::uint64_t* txns_applied,
                                     std::uint64_t* cuts_seen) {
  Manifest m;
  DOPPEL_CHECK(Manifest::Load(dir, &m));
  WriteArena arena;
  std::vector<WalTxn> window;
  std::uint64_t last_cut_tid = 0;
  *txns_applied = 0;
  *cuts_seen = 0;
  for (const std::uint64_t seg : m.live_segments) {
    SegmentTailer tailer(dir + "/" + Manifest::SegmentFileName(seg));
    WalEntry e;
    SegmentTailer::Status st;
    while ((st = tailer.Next(&e)) == SegmentTailer::Status::kEntry) {
      if (e.type == WalEntryType::kTxn) {
        window.push_back(std::move(e.txn));
      } else {
        std::sort(window.begin(), window.end(),
                  [](const WalTxn& a, const WalTxn& b) { return a.tid < b.tid; });
        for (const WalTxn& t : window) {
          for (const WalOp& op : t.ops) {
            ApplyWalOp(shadow, op, t.tid, &arena);
          }
        }
        *txns_applied += window.size();
        window.clear();
        last_cut_tid = e.cut.cut_tid;
        ++(*cuts_seen);
      }
    }
    if (st == SegmentTailer::Status::kCorrupt) {
      break;  // damaged tail: durable history ends here
    }
  }
  return last_cut_tid;
}

TEST(ReplicaCrashCatchup, ServesExactlyTheDurableCutPrefixAfterPrimaryKill) {
  const std::string dir = FreshDir("replica_crash");
  const std::string progress_path = dir + ".progress";
  std::remove(progress_path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    CrashingChild(dir, progress_path);  // never returns
  }

  // Kill abruptly once enough committed work exists (cuts ride the 2ms phase cadence,
  // so by then many cuts are durable).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (true) {
    std::ifstream in(progress_path);
    std::uint64_t done = 0;
    if (in.good() && (in >> done) && done >= kKillAfter) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "child made no progress";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);

  // Ground truth from the surviving bytes alone.
  Store shadow(1 << 12);
  std::uint64_t expect_txns = 0;
  std::uint64_t expect_cuts = 0;
  const std::uint64_t last_cut_tid =
      ReplayDurableCutPrefix(dir, &shadow, &expect_txns, &expect_cuts);
  ASSERT_GT(last_cut_tid, 0u) << "no durable cut survived the kill";
  ASSERT_GT(expect_txns, 0u);
  const std::int64_t expect_counter = IntAt(shadow, kCounterKey);
  const std::int64_t expect_marker = IntAt(shadow, kMarkerKey);
  ASSERT_EQ(expect_counter, expect_marker + 1);  // pair-writes: serial prefix

  // An unattached replica on the crashed directory must converge to exactly that
  // prefix — and publish only cut-consistent states on the way there.
  std::atomic<int> violations{0};
  Replica* rp = nullptr;
  ReplicaOptions ropts;
  ropts.poll_us = 100;
  ropts.on_publish = [&] {
    Replica::View v(*rp);
    Value a;
    Value b;
    const std::int64_t c = v.Get(kCounterKey, &a) ? std::get<std::int64_t>(a) : 0;
    const std::int64_t mk = v.Get(kMarkerKey, &b) ? std::get<std::int64_t>(b) : -1;
    if (c != mk + 1) {
      violations.fetch_add(1);
    }
    // Churn invariant at every published cut: the marker's own churn row is live with
    // its value, the one the marker's transaction deleted is absent.
    if (mk >= 0) {
      Value cv;
      if (!v.Get(ChurnKey(static_cast<std::uint64_t>(mk)), &cv) ||
          std::get<std::int64_t>(cv) != mk) {
        violations.fetch_add(1);
      }
      if (mk >= 1 && v.Get(ChurnKey(static_cast<std::uint64_t>(mk) - 1), &cv)) {
        violations.fetch_add(1);  // deleted churn row visible in a published cut
      }
    }
  };
  auto replica = std::make_unique<Replica>(dir, ropts);
  rp = replica.get();
  replica->Start();

  ASSERT_TRUE(replica->WaitForCutTid(last_cut_tid, /*timeout_ms=*/20000));
  EXPECT_EQ(violations.load(), 0);
  ReplicaProgress p = replica->progress();
  EXPECT_FALSE(p.halted);
  EXPECT_EQ(p.applied_cut_tid, last_cut_tid);
  EXPECT_EQ(p.applied_txns, expect_txns);
  EXPECT_EQ(p.published_cuts, expect_cuts);
  EXPECT_EQ(IntAt(replica->store(), kCounterKey), expect_counter);
  EXPECT_EQ(IntAt(replica->store(), kMarkerKey), expect_marker);
  EXPECT_EQ(IntAt(replica->store(), ChurnKey(static_cast<std::uint64_t>(expect_marker))),
            expect_marker);
  {
    const Record* dead =
        replica->store().Find(ChurnKey(static_cast<std::uint64_t>(expect_marker) - 1));
    EXPECT_TRUE(dead == nullptr || !dead->ReadValue().present)
        << "replica resurrected a replicated delete";
  }
  // ~1000 durable deletes crossed the publish-time sweep threshold: the replica
  // physically reclaimed churned records rather than accumulating them forever.
  EXPECT_GT(replica->progress().reclaimed_records, 0u);

  // ---- Phase 2: the primary restarts on the directory. Recovery truncates the torn
  // tail back to the prefix the replica already stands on and opens the next segment;
  // the same replica must follow across the generation boundary.
  Options o = PrimaryOptions(dir);
  Database db2(o);
  PopulateIncr(db2.store(), 2);
  db2.Start();
  const std::int64_t recovered = IntAt(db2.store(), kCounterKey);
  EXPECT_GE(recovered, expect_counter);  // recovery replays past the last cut too
  for (int i = 0; i < 300; ++i) {
    // Keep the counter == marker + 1 pair-write invariant across the restart so the
    // publish hook can keep checking cut consistency through the generation change.
    ASSERT_TRUE(db2.Execute([&](Txn& txn) {
                     txn.Add(kCounterKey, 1);
                     txn.PutInt(kMarkerKey, recovered + i);
                     // Continue the churn chain where the recovered marker left it, so
                     // the publish-hook invariant holds across the generation change.
                     txn.PutInt(ChurnKey(static_cast<std::uint64_t>(recovered + i)),
                                recovered + i);
                     txn.Delete(ChurnKey(static_cast<std::uint64_t>(recovered + i) - 1));
                   }).committed);
  }
  db2.Stop();  // appends a final cut covering everything
  const std::int64_t final_counter = IntAt(db2.store(), kCounterKey);
  const std::int64_t final_marker = IntAt(db2.store(), kMarkerKey);
  const std::uint64_t final_tid =
      Record::TidOf(db2.store().Find(kCounterKey)->LoadTidWord());

  ASSERT_TRUE(replica->WaitForCutTid(final_tid, /*timeout_ms=*/20000));
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(IntAt(replica->store(), kCounterKey), final_counter);
  EXPECT_EQ(IntAt(replica->store(), kMarkerKey), final_marker);
  EXPECT_EQ(IntAt(replica->store(), ChurnKey(static_cast<std::uint64_t>(final_marker))),
            final_marker);
  {
    const Record* dead =
        replica->store().Find(ChurnKey(static_cast<std::uint64_t>(final_marker) - 1));
    EXPECT_TRUE(dead == nullptr || !dead->ReadValue().present);
  }
  EXPECT_FALSE(replica->progress().halted);

  replica->Stop();
  replica.reset();
  std::remove(progress_path.c_str());
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace doppel
