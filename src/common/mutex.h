// Capability-annotated wrappers for the standard OS mutexes.
//
// libstdc++'s std::mutex / std::shared_mutex carry no Clang thread-safety annotations,
// so data they protect cannot be GUARDED_BY-checked. These wrappers forward to the
// standard types 1:1 and add the CAPABILITY contract plus scoped guards, making the
// blocking-lock paths (the replica's publish lock is the main user — spinlocks fit the
// engine's microsecond critical sections, but a replica View can be held across
// arbitrary reader work) analyzable like the spinlocks in src/common/spinlock.h.
//
// House rule (enforced by tools/lint_concurrency.py): naked std::mutex /
// std::shared_mutex anywhere in src/ outside this header is an error — wrap or use a
// Spinlock. std::unique_lock<doppel::Mutex> etc. remain fine where a guard must move;
// prefer the scoped guards below, which the analysis understands.
#ifndef DOPPEL_SRC_COMMON_MUTEX_H_
#define DOPPEL_SRC_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "src/common/annotations.h"

namespace doppel {

// std::mutex with the thread-safety CAPABILITY contract. Satisfies Lockable.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

  // The wrapped handle, for std::condition_variable_any or std::unique_lock
  // interoperability. Using it bypasses the analysis; pair with ASSERT_CAPABILITY or a
  // NO_THREAD_SAFETY_ANALYSIS rationale at the use site.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// std::shared_mutex with the thread-safety CAPABILITY contract. Satisfies SharedLockable.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) { return mu_.try_lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Scoped exclusive guard for Mutex (annotation-aware std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Scoped exclusive (writer) guard for SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterMutexLock() RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Scoped shared (reader) guard for SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_MUTEX_H_
