// Per-worker state. One worker runs per core (§3): it generates transactions, executes
// them to completion, retries aborted ones with exponential backoff, stashes transactions
// blocked on split data, and participates in phase-change barriers.
#ifndef DOPPEL_SRC_TXN_WORKER_H_
#define DOPPEL_SRC_TXN_WORKER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/cacheline.h"
#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/common/spinlock.h"
#include "src/txn/phase.h"
#include "src/txn/request.h"
#include "src/txn/txn.h"

namespace doppel {

// Completion state shared between a TxnHandle and the worker that finishes the
// transaction. One ticket is allocated per external submission (Submit / SubmitBatch /
// Execute); source-generated benchmark transactions never allocate one.
struct SubmitTicket {
  // Set iff the submission used the std::function convenience path; POD submissions
  // carry their proc in PendingTxn::req instead.
  std::function<void(Txn&)> fn;
  // 0 = pending, 1 = committed, 2 = user-aborted, 3 = type-mismatch abort (terminal,
  // never retried: the key exists with a different record type), 4 = durability-lost
  // abort (terminal: the database is in read-only degraded mode).
  std::atomic<int> state{0};
  std::atomic<std::uint32_t> attempts{0};
  // Database's drain counter: decremented (release) once the ticket is fully finished,
  // so Stop() can wait for in-flight handles.
  std::atomic<std::uint64_t>* inflight = nullptr;

  // TxnHandle::OnComplete hook. cb_mu orders callback registration against completion:
  // whichever side arrives second delivers the callback exactly once.
  Spinlock cb_mu;
  bool finished GUARDED_BY(cb_mu) = false;
  // Held under cb_mu until `finished`; the completing side moves it out.
  std::function<void(const TxnResult&)> callback GUARDED_BY(cb_mu);

  TxnResult result() const {
    const int s = state.load(std::memory_order_acquire);
    TxnResult r{s == 1, attempts.load(std::memory_order_relaxed)};
    if (s == 2) {
      r.abort = TxnAbort::kUser;
    } else if (s == 3) {
      r.abort = TxnAbort::kTypeMismatch;
    } else if (s == 4) {
      r.abort = TxnAbort::kDurabilityLost;
    }
    return r;
  }
};

// A transaction waiting in an inbox, retry, or stash queue. `req` carries the POD proc
// (or, for the std::function path, just args/metadata with proc == nullptr, in which
// case `ticket->fn` is the body).
struct PendingTxn {
  TxnRequest req;
  std::shared_ptr<SubmitTicket> ticket;
  std::uint32_t attempts = 0;
};

struct RetryItem {
  std::uint64_t due_ns;
  PendingTxn txn;
  friend bool operator<(const RetryItem& a, const RetryItem& b) {
    return a.due_ns > b.due_ns;  // min-heap under std::push_heap
  }
};

// Engine-specific per-worker extension (Doppel hangs slices and samplers here).
struct WorkerExt {
  virtual ~WorkerExt() = default;
};

class Worker {
 public:
  Worker(int id, std::uint64_t seed) : id(id), rng(seed) {}
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  const int id;
  Rng rng;
  Txn txn;  // reused across transactions to avoid per-transaction allocation

  // ---- Silo TID generation (§5.1): per-core, no global coordination ----
  std::uint64_t last_tid = 2;
  static constexpr int kWorkerTidBits = 8;
  std::uint64_t GenerateTid(std::uint64_t max_seen) {
    const std::uint64_t base = last_tid > max_seen ? last_tid : max_seen;
    const std::uint64_t tid = (((base >> kWorkerTidBits) + 1) << kWorkerTidBits) |
                              static_cast<std::uint64_t>(id);
    last_tid = tid;
    return tid;
  }

  // Last epoch this worker observed (EpochReclaimer::Tick's return; owner thread
  // only). The run loop invalidates txn's route cache when it moves — the lever that
  // keeps cached Record*s inside the reclamation grace period.
  std::uint64_t epoch_seen = 0;

  // Cached wall clock (owner thread only). Refreshed wherever the hot path already
  // pays a clock read — commit-latency measurement, retry scheduling, batch
  // boundaries in the worker loop — so source-generated transactions can be stamped
  // without an extra clock_gettime each.
  std::uint64_t clock_ns = 0;

  // ---- Metrics (owner-written; aggregated after a run) ----
  std::uint64_t committed = 0;
  std::uint64_t committed_split_phase = 0;  // committed while in a split phase
  std::uint64_t conflicts = 0;
  std::uint64_t stash_events = 0;
  std::uint64_t user_aborts = 0;
  std::uint64_t type_mismatch_aborts = 0;
  std::uint64_t durability_aborts = 0;  // terminated by the degraded-mode gate
  std::uint64_t committed_by_tag[kNumTags] = {};
  LatencyHistogram latency_by_tag[kNumTags];
  // Readable while running (throughput-over-time series, Fig. 10).
  PaddedCounter shared_commits;

  // ---- Queues ----
  std::vector<RetryItem> retry_heap;     // std::push_heap/pop_heap by due time
  std::deque<PendingTxn> stash;          // split-blocked; drained in joined phases

  bool HasDueRetry(std::uint64_t now_ns) const {
    return !retry_heap.empty() && retry_heap.front().due_ns <= now_ns;
  }

  // ---- Phase machinery (Doppel; inert for other engines) ----
  // Written only by the owning worker at phase transitions; atomic because observers
  // (tests, diagnostics) may peek via Engine::CurrentPhase from other threads. All
  // owner-side accesses use relaxed ordering (plain loads/stores on every target);
  // cross-thread visibility of barrier-time state rides on the ack/release words below.
  std::atomic<Phase> phase{Phase::kJoined};
  Phase LoadPhase() const { return phase.load(std::memory_order_relaxed); }
  std::uint64_t seen_word = 0;
  alignas(kCacheLineSize) std::atomic<std::uint64_t> acked_word{0};

  std::unique_ptr<WorkerExt> ext;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_TXN_WORKER_H_
