// Injectable I/O environment for the persistence layer.
//
// Every syscall the durability stack issues (WAL append/fsync, checkpoint write,
// manifest rename, segment open/unlink/truncate) funnels through an IoEnv so tests can
// substitute a deterministic FaultInjectingIoEnv and exercise the full failure surface:
// transient errors (EINTR/EAGAIN/short write) that the caller must absorb with bounded
// retry, and permanent errors (ENOSPC, EIO, any failed fsync) that must escalate into
// read-only degraded mode instead of aborting the process.
//
// Conventions:
//  - Open returns a file descriptor (>= 0) or -errno.
//  - Write/Pread return bytes transferred (>= 0) or -errno; short transfers are legal.
//  - Everything else returns 0 or -errno.
//
// The default env is a stateless passthrough; its virtual dispatch sits in front of a
// syscall, so the indirection is noise (and the transaction hot path does no I/O at
// all — WAL Append only encodes into a memory buffer; the flusher thread owns the
// syscalls).
#ifndef DOPPEL_SRC_PERSIST_IO_ENV_H_
#define DOPPEL_SRC_PERSIST_IO_ENV_H_

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/rand.h"
#include "src/common/spinlock.h"

namespace doppel {

// Syscall classes an IoEnv mediates. Also used to report which operation first failed
// permanently (Database::durability_health, RunMetrics).
enum class IoOp : std::uint8_t {
  kOpen = 0,
  kWrite,
  kPread,
  kFsync,
  kClose,
  kRename,
  kTruncate,
  kUnlink,
  kMkdir,
};
constexpr int kNumIoOps = 9;

const char* IoOpName(IoOp op);

// Outcome of a fallible persistence routine: err == 0 means success; otherwise err is
// the positive errno of the first permanent failure and op the syscall class it came
// from.
struct IoFailure {
  int err = 0;
  IoOp op = IoOp::kWrite;
  explicit operator bool() const { return err != 0; }
};

// Base environment doubles as the passthrough POSIX implementation.
class IoEnv {
 public:
  virtual ~IoEnv() = default;

  virtual int Open(const char* path, int flags, int mode);
  virtual long Write(int fd, const void* buf, std::size_t n);
  virtual long Pread(int fd, void* buf, std::size_t n, std::uint64_t offset);
  virtual int Fsync(int fd);
  virtual int Close(int fd);
  virtual int Rename(const char* from, const char* to);
  virtual int Truncate(const char* path, std::uint64_t len);
  virtual int Unlink(const char* path);
  virtual int Mkdir(const char* path, int mode);

  // Process-wide passthrough instance (never destroyed; it is stateless).
  static IoEnv* Default();
};

// ---- Error taxonomy ----
//
// Transient: the syscall may succeed if simply reissued (interrupted by a signal, or
// a nonblocking hiccup). Bounded retry with backoff is the policy.
// Permanent: everything else — ENOSPC, EIO, and notably *any* failed fsync. After a
// failed fsync the kernel may have discarded the dirty pages that failed to reach
// stable media, so retrying the fsync and having it succeed proves nothing about the
// earlier writes; the only honest response is to stop claiming durability (degraded
// mode), never re-fsync-and-carry-on.
inline bool IsTransientIoError(int negative_errno) {
  return negative_errno == -EINTR || negative_errno == -EAGAIN;
}

// Bounded retry policy for the transient class.
struct IoRetryPolicy {
  int max_attempts = 8;
  std::uint64_t backoff_min_us = 50;
  std::uint64_t backoff_max_us = 5000;
};

// Writes all n bytes, absorbing EINTR/EAGAIN and short writes with bounded
// exponential backoff. Returns 0 on success or -errno of the failure that escalated
// (exhausted transient retries escalate as permanent). Each absorbed transient fault
// bumps *retries (may be null). Deliberately does NOT fsync — see the taxonomy note.
int WriteFullyRetry(IoEnv* env, int fd, const char* data, std::size_t n,
                    const IoRetryPolicy& policy, std::atomic<std::uint64_t>* retries);

// open/rename/truncate with the same bounded transient-retry policy. Fsync has no
// retry wrapper on purpose (any failed fsync is permanent).
int OpenRetry(IoEnv* env, const char* path, int flags, int mode,
              const IoRetryPolicy& policy, std::atomic<std::uint64_t>* retries);
int RenameRetry(IoEnv* env, const char* from, const char* to,
                const IoRetryPolicy& policy, std::atomic<std::uint64_t>* retries);
int TruncateRetry(IoEnv* env, const char* path, std::uint64_t len,
                  const IoRetryPolicy& policy, std::atomic<std::uint64_t>* retries);

// ---- Fault injection (tests only) ----

// One armed fault. A call matches when its op bit is set in `ops` and the target path
// contains `path_substring` (fd-based ops resolve the path registered at Open). The
// first `after` matches pass through; each later match fires with `probability`.
struct FaultRule {
  std::uint32_t ops = 0xffffffffu;  // bitmask of (1u << IoOp)
  std::string path_substring;       // empty = match any path
  std::uint64_t after = 0;          // matches to let through before arming
  double probability = 1.0;         // chance an armed match fires
  int err = EIO;                    // positive errno to inject
  bool short_write = false;         // Write only: transfer half the bytes, no error
  bool sticky = false;              // once fired, every later match fails (full disk)
  bool once = false;                // disarm after the first firing
};

inline constexpr std::uint32_t IoOpBit(IoOp op) {
  return 1u << static_cast<std::uint32_t>(op);
}

// Deterministic, seeded fault-injecting wrapper around a base env. Thread-safe: the
// WAL flusher, the coordinator, and test threads all reach it concurrently.
class FaultInjectingIoEnv : public IoEnv {
 public:
  explicit FaultInjectingIoEnv(std::uint64_t seed, IoEnv* base = nullptr);

  void AddRule(const FaultRule& rule);

  std::uint64_t injected_faults() const {
    // Stats counter: racy reads are the contract.
    return injected_.load(std::memory_order_relaxed);
  }

  int Open(const char* path, int flags, int mode) override;
  long Write(int fd, const void* buf, std::size_t n) override;
  long Pread(int fd, void* buf, std::size_t n, std::uint64_t offset) override;
  int Fsync(int fd) override;
  int Close(int fd) override;
  int Rename(const char* from, const char* to) override;
  int Truncate(const char* path, std::uint64_t len) override;
  int Unlink(const char* path) override;
  int Mkdir(const char* path, int mode) override;

 private:
  struct ArmedRule {
    FaultRule rule;
    std::uint64_t matches = 0;
    bool tripped = false;    // a sticky rule that has fired
    bool disarmed = false;   // a once rule that has fired
  };

  // Returns 0 (pass through), a positive errno to inject, or kShortWrite.
  static constexpr int kShortWrite = -1;
  int MaybeFail(IoOp op, const std::string& path);
  std::string PathForFd(int fd);

  IoEnv* const base_;
  Spinlock mu_;
  Rng rng_ GUARDED_BY(mu_);
  std::vector<ArmedRule> rules_ GUARDED_BY(mu_);
  std::unordered_map<int, std::string> fd_paths_ GUARDED_BY(mu_);
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_PERSIST_IO_ENV_H_
