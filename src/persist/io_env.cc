#include "src/persist/io_env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <thread>

namespace doppel {

const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kOpen:
      return "open";
    case IoOp::kWrite:
      return "write";
    case IoOp::kPread:
      return "pread";
    case IoOp::kFsync:
      return "fsync";
    case IoOp::kClose:
      return "close";
    case IoOp::kRename:
      return "rename";
    case IoOp::kTruncate:
      return "truncate";
    case IoOp::kUnlink:
      return "unlink";
    case IoOp::kMkdir:
      return "mkdir";
  }
  return "?";
}

int IoEnv::Open(const char* path, int flags, int mode) {
  const int fd = ::open(path, flags, mode);
  return fd >= 0 ? fd : -errno;
}

long IoEnv::Write(int fd, const void* buf, std::size_t n) {
  const ssize_t r = ::write(fd, buf, n);
  return r >= 0 ? static_cast<long>(r) : -errno;
}

long IoEnv::Pread(int fd, void* buf, std::size_t n, std::uint64_t offset) {
  const ssize_t r = ::pread(fd, buf, n, static_cast<off_t>(offset));
  return r >= 0 ? static_cast<long>(r) : -errno;
}

int IoEnv::Fsync(int fd) { return ::fsync(fd) == 0 ? 0 : -errno; }

int IoEnv::Close(int fd) { return ::close(fd) == 0 ? 0 : -errno; }

int IoEnv::Rename(const char* from, const char* to) {
  return std::rename(from, to) == 0 ? 0 : -errno;
}

int IoEnv::Truncate(const char* path, std::uint64_t len) {
  return ::truncate(path, static_cast<off_t>(len)) == 0 ? 0 : -errno;
}

int IoEnv::Unlink(const char* path) { return ::unlink(path) == 0 ? 0 : -errno; }

int IoEnv::Mkdir(const char* path, int mode) {
  return ::mkdir(path, static_cast<mode_t>(mode)) == 0 ? 0 : -errno;
}

IoEnv* IoEnv::Default() {
  // Leaked on purpose: stateless, and callers (WAL destructors, static test fixtures)
  // may touch it arbitrarily late in process teardown.
  static IoEnv* const env = new IoEnv();
  return env;
}

namespace {

void BackoffSleep(int attempt, const IoRetryPolicy& policy) {
  std::uint64_t us = policy.backoff_min_us << (attempt < 16 ? attempt : 16);
  if (us > policy.backoff_max_us) {
    us = policy.backoff_max_us;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

// Shared retry loop for the non-write syscalls: reissue on EINTR/EAGAIN with bounded
// backoff, escalate everything else (and exhausted retries) as permanent.
template <typename Fn>
int RetryTransient(Fn&& fn, const IoRetryPolicy& policy,
                   std::atomic<std::uint64_t>* retries) {
  int rc = 0;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    rc = fn();
    if (rc >= 0 || !IsTransientIoError(rc)) {
      return rc;
    }
    if (retries != nullptr) {
      // Stats counter: racy reads are the contract.
      retries->fetch_add(1, std::memory_order_relaxed);
    }
    BackoffSleep(attempt, policy);
  }
  return rc;
}

}  // namespace

int WriteFullyRetry(IoEnv* env, int fd, const char* data, std::size_t n,
                    const IoRetryPolicy& policy, std::atomic<std::uint64_t>* retries) {
  int attempts_without_progress = 0;
  while (n > 0) {
    const long r = env->Write(fd, data, n);
    if (r > 0) {
      // Progress resets the transient budget; a short write just continues the loop.
      if (static_cast<std::size_t>(r) < n && retries != nullptr) {
        // Stats counter: racy reads are the contract.
        retries->fetch_add(1, std::memory_order_relaxed);
      }
      data += r;
      n -= static_cast<std::size_t>(r);
      attempts_without_progress = 0;
      continue;
    }
    const int rc = r == 0 ? -EAGAIN : static_cast<int>(r);
    if (!IsTransientIoError(rc)) {
      return rc;
    }
    if (++attempts_without_progress >= policy.max_attempts) {
      return rc;  // transient budget exhausted: escalate as permanent
    }
    if (retries != nullptr) {
      // Stats counter: racy reads are the contract.
      retries->fetch_add(1, std::memory_order_relaxed);
    }
    BackoffSleep(attempts_without_progress - 1, policy);
  }
  return 0;
}

int OpenRetry(IoEnv* env, const char* path, int flags, int mode,
              const IoRetryPolicy& policy, std::atomic<std::uint64_t>* retries) {
  return RetryTransient([&] { return env->Open(path, flags, mode); }, policy, retries);
}

int RenameRetry(IoEnv* env, const char* from, const char* to,
                const IoRetryPolicy& policy, std::atomic<std::uint64_t>* retries) {
  return RetryTransient([&] { return env->Rename(from, to); }, policy, retries);
}

int TruncateRetry(IoEnv* env, const char* path, std::uint64_t len,
                  const IoRetryPolicy& policy, std::atomic<std::uint64_t>* retries) {
  return RetryTransient([&] { return env->Truncate(path, len); }, policy, retries);
}

// ---- FaultInjectingIoEnv ----

FaultInjectingIoEnv::FaultInjectingIoEnv(std::uint64_t seed, IoEnv* base)
    : base_(base != nullptr ? base : IoEnv::Default()), rng_(seed) {}

void FaultInjectingIoEnv::AddRule(const FaultRule& rule) {
  SpinlockGuard lock(mu_);
  rules_.push_back(ArmedRule{rule, 0, false, false});
}

std::string FaultInjectingIoEnv::PathForFd(int fd) {
  SpinlockGuard lock(mu_);
  const auto it = fd_paths_.find(fd);
  return it != fd_paths_.end() ? it->second : std::string();
}

int FaultInjectingIoEnv::MaybeFail(IoOp op, const std::string& path) {
  SpinlockGuard lock(mu_);
  for (ArmedRule& r : rules_) {
    if (r.disarmed || (r.rule.ops & IoOpBit(op)) == 0) {
      continue;
    }
    if (!r.rule.path_substring.empty() &&
        path.find(r.rule.path_substring) == std::string::npos) {
      continue;
    }
    if (r.tripped) {
      // Stats counter: racy reads are the contract.
      injected_.fetch_add(1, std::memory_order_relaxed);
      return r.rule.short_write ? kShortWrite : r.rule.err;
    }
    if (r.matches++ < r.rule.after) {
      continue;
    }
    const bool fire =
        r.rule.probability >= 1.0 ||
        rng_.NextBounded(1u << 20) < static_cast<std::uint64_t>(
                                         r.rule.probability * (1u << 20));
    if (!fire) {
      continue;
    }
    if (r.rule.sticky) {
      r.tripped = true;
    }
    if (r.rule.once) {
      r.disarmed = true;
    }
    // Stats counter: racy reads are the contract.
    injected_.fetch_add(1, std::memory_order_relaxed);
    return r.rule.short_write ? kShortWrite : r.rule.err;
  }
  return 0;
}

int FaultInjectingIoEnv::Open(const char* path, int flags, int mode) {
  const int fault = MaybeFail(IoOp::kOpen, path);
  if (fault > 0) {
    return -fault;
  }
  const int fd = base_->Open(path, flags, mode);
  if (fd >= 0) {
    SpinlockGuard lock(mu_);
    fd_paths_[fd] = path;
  }
  return fd;
}

long FaultInjectingIoEnv::Write(int fd, const void* buf, std::size_t n) {
  const int fault = MaybeFail(IoOp::kWrite, PathForFd(fd));
  if (fault > 0) {
    return -fault;
  }
  if (fault == kShortWrite && n > 1) {
    n /= 2;  // deliver half; the retry loop must finish the job
  }
  return base_->Write(fd, buf, n);
}

long FaultInjectingIoEnv::Pread(int fd, void* buf, std::size_t n,
                                std::uint64_t offset) {
  const int fault = MaybeFail(IoOp::kPread, PathForFd(fd));
  if (fault > 0) {
    return -fault;
  }
  return base_->Pread(fd, buf, n, offset);
}

int FaultInjectingIoEnv::Fsync(int fd) {
  const int fault = MaybeFail(IoOp::kFsync, PathForFd(fd));
  if (fault > 0) {
    return -fault;
  }
  return base_->Fsync(fd);
}

int FaultInjectingIoEnv::Close(int fd) {
  {
    SpinlockGuard lock(mu_);
    fd_paths_.erase(fd);
  }
  return base_->Close(fd);  // close never injected: leaking fds helps no test
}

int FaultInjectingIoEnv::Rename(const char* from, const char* to) {
  const int fault = MaybeFail(IoOp::kRename, to);
  if (fault > 0) {
    return -fault;
  }
  return base_->Rename(from, to);
}

int FaultInjectingIoEnv::Truncate(const char* path, std::uint64_t len) {
  const int fault = MaybeFail(IoOp::kTruncate, path);
  if (fault > 0) {
    return -fault;
  }
  return base_->Truncate(path, len);
}

int FaultInjectingIoEnv::Unlink(const char* path) {
  const int fault = MaybeFail(IoOp::kUnlink, path);
  if (fault > 0) {
    return -fault;
  }
  return base_->Unlink(path);
}

int FaultInjectingIoEnv::Mkdir(const char* path, int mode) {
  const int fault = MaybeFail(IoOp::kMkdir, path);
  if (fault > 0) {
    return -fault;
  }
  return base_->Mkdir(path, mode);
}

}  // namespace doppel
