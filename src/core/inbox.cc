#include "src/core/inbox.h"

#include <utility>

#include "src/common/dassert.h"

namespace doppel {
namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

SubmitInbox::SubmitInbox(std::size_t capacity)
    : capacity_(RoundUpPow2(capacity < 2 ? 2 : capacity)),
      mask_(capacity_ - 1),
      cells_(new Cell[capacity_]) {
  for (std::size_t i = 0; i < capacity_; ++i) {
    // Pre-publication init (constructor): no concurrent observer yet.
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool SubmitInbox::TryPush(PendingTxn& item) {
  // Relaxed cursor peek (Vyukov MPSC): the cell's seq acquire/release handshake is
  // what orders payload access; the cursor CAS below just claims a slot index.
  std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  while (true) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const std::int64_t dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      // Cell is free at this position; claim it by advancing the cursor.
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        cell.item = std::move(item);
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS failure reloaded `pos`; retry with the new cursor.
    } else if (dif < 0) {
      // Cell still holds an unconsumed item from one lap ago: the ring is full. A racing
      // pop may free it any nanosecond, but callers treat "momentarily full" as full —
      // that is the backpressure contract.
      return false;
    } else {
      // Another producer claimed this position; chase the cursor.
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool SubmitInbox::TryPop(PendingTxn* out) { return TryPopBatch(out, 1) == 1; }

std::size_t SubmitInbox::TryPopBatch(PendingTxn* out, std::size_t max) {
  // Single consumer: no CAS needed on dequeue_pos_, a plain advance suffices.
  std::size_t n = 0;
  std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  while (n < max) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const std::int64_t dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
    if (dif < 0) {
      break;  // producer has not published this cell yet
    }
    DOPPEL_DCHECK(dif == 0);
    out[n++] = std::move(cell.item);
    cell.item = PendingTxn{};  // drop the ticket reference eagerly
    cell.seq.store(pos + capacity_, std::memory_order_release);
    ++pos;
  }
  if (n != 0) {
    dequeue_pos_.store(pos, std::memory_order_relaxed);
  }
  return n;
}

std::size_t SubmitInbox::ApproxSize() const {
  // Racy size estimate by contract; the two relaxed cursor reads need no ordering.
  const std::uint64_t enq = enqueue_pos_.load(std::memory_order_relaxed);
  const std::uint64_t deq = dequeue_pos_.load(std::memory_order_relaxed);
  return enq > deq ? static_cast<std::size_t>(enq - deq) : 0;
}

}  // namespace doppel
