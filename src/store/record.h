// A database record: Silo-style TID word (lock bit + transaction id), a typed value, and
// Doppel's split marking.
//
// Physical access rules:
//  * int64 values live in a std::atomic and are read with a seqlock (TID word as the
//    sequence); no lock is taken on the read path.
//  * complex values (bytes / ordered tuple / top-K) are copied under a tiny per-record
//    spinlock, with the same seqlock validation for consistency with the TID.
//  * writers mutate only while holding the OCC lock bit (commit protocols, reconciliation
//    merges, or the Atomic engine's direct ops).
//  * the split descriptor (selected operation + slice index) is written by the coordinator
//    only while all workers are quiesced at a phase barrier; workers read it with relaxed
//    loads (the barrier's release/acquire pair provides the happens-before edge).
#ifndef DOPPEL_SRC_STORE_RECORD_H_
#define DOPPEL_SRC_STORE_RECORD_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "src/common/cacheline.h"
#include "src/common/dassert.h"
#include "src/common/spinlock.h"
#include "src/store/key.h"
#include "src/store/value.h"

namespace doppel {

// Complex (non-int) payload storage; exactly one alternative is ever active, fixed by the
// record type at creation.
using ComplexValue = std::variant<std::string, OrderedTuple, TopKSet>;

class Record {
 public:
  static constexpr std::uint64_t kLockBit = 1ULL << 63;
  static constexpr std::uint8_t kNotSplit = 0xff;

  Record(const Key& key, RecordType type, std::size_t topk_k);
  Record(const Record&) = delete;
  Record& operator=(const Record&) = delete;

  const Key& key() const { return key_; }
  RecordType type() const { return type_; }
  // Capacity of a top-K record (0 for other types); immutable after creation.
  std::size_t topk_k() const { return topk_k_; }

  // ---- TID word (Silo) ----
  static bool IsLocked(std::uint64_t word) { return (word & kLockBit) != 0; }
  static std::uint64_t TidOf(std::uint64_t word) { return word & ~kLockBit; }

  std::uint64_t LoadTidWord() const { return tid_word_.load(std::memory_order_acquire); }

  // Spin until the word is unlocked and return it (readers recording a read-set entry).
  std::uint64_t StableTid() const {
    std::uint64_t w = LoadTidWord();
    while (IsLocked(w)) {
      CpuRelax();
      w = LoadTidWord();
    }
    return w;
  }

  // Commit-protocol lock: set the lock bit. TryLock fails immediately if held (OCC aborts
  // on locked write-set records); Lock spins (reconciliation merges must proceed).
  bool TryLockOcc() {
    std::uint64_t w = tid_word_.load(std::memory_order_relaxed);
    if (IsLocked(w)) {
      return false;
    }
    return tid_word_.compare_exchange_strong(w, w | kLockBit, std::memory_order_acq_rel,
                                             std::memory_order_relaxed);
  }

  void LockOcc() {
    while (!TryLockOcc()) {
      CpuRelax();
    }
  }

  // Release the lock, installing `tid` as the record's new transaction id.
  void UnlockOccSetTid(std::uint64_t tid) {
    DOPPEL_DCHECK(IsLocked(tid_word_.load(std::memory_order_relaxed)));
    DOPPEL_DCHECK((tid & kLockBit) == 0);
    tid_word_.store(tid, std::memory_order_release);
  }

  // Release the lock without changing the tid (abort path).
  void UnlockOcc() {
    std::uint64_t w = tid_word_.load(std::memory_order_relaxed);
    DOPPEL_DCHECK(IsLocked(w));
    tid_word_.store(w & ~kLockBit, std::memory_order_release);
  }

  // ---- Stable (seqlock) reads ----
  // Each returns the TID the snapshot corresponds to, plus presence. A record created as a
  // read placeholder is physically allocated but logically absent until first written.

  struct IntSnapshot {
    bool present;
    std::int64_t value;
    std::uint64_t tid;
  };
  IntSnapshot ReadInt() const;

  struct ComplexSnapshot {
    bool present;
    ComplexValue value;
    std::uint64_t tid;
  };
  ComplexSnapshot ReadComplex() const;

  // Type-generic snapshot (tests, loading tools).
  struct ValueSnapshot {
    bool present;
    Value value;
    std::uint64_t tid;
  };
  ValueSnapshot ReadValue() const;

  // ---- Writes (caller must hold the OCC lock bit) ----
  void SetInt(std::int64_t v) {
    DOPPEL_DCHECK(type_ == RecordType::kInt64);
    ival_.store(v, std::memory_order_relaxed);
    present_.store(1, std::memory_order_relaxed);
  }

  void SetAbsent() { present_.store(0, std::memory_order_relaxed); }

  // Run `fn(ComplexValue&)` under the physical value lock. Presence is set afterwards.
  template <typename Fn>
  void MutateComplex(Fn&& fn) {
    DOPPEL_DCHECK(type_ != RecordType::kInt64);
    val_lock_.lock();
    fn(complex_);
    val_lock_.unlock();
    // Relaxed: the caller holds the OCC lock bit; readers observe presence only
    // through a seqlock-validated snapshot ordered by the TID-word release.
    present_.store(1, std::memory_order_relaxed);
  }

  // Presence / raw value peeks for writers that already hold the OCC lock bit (commit
  // protocols, reconciliation merges).
  bool PresentLocked() const { return present_.load(std::memory_order_relaxed) != 0; }
  std::int64_t IntValueLocked() const { return ival_.load(std::memory_order_relaxed); }

  // ---- Lock-free direct ops (Atomic engine; no TID maintenance) ----
  std::int64_t AtomicLoadInt() const { return ival_.load(std::memory_order_relaxed); }
  void AtomicAdd(std::int64_t n) {
    ival_.fetch_add(n, std::memory_order_relaxed);
    present_.store(1, std::memory_order_relaxed);
  }
  void AtomicMax(std::int64_t n);
  void AtomicMin(std::int64_t n);
  void AtomicMult(std::int64_t n);

  // ---- Last committed write op ----
  // Best-effort tag of the most recent operation applied to this record (set by commit
  // application and slice reconciliation). Scan-conflict telemetry reads it to guess
  // which operation a contended interior record is hot on: when a scanner loses
  // validation to concurrent writers, the record already carries the winners' op.
  void NoteWriteOp(std::uint8_t op) { last_op_.store(op, std::memory_order_relaxed); }
  std::uint8_t last_write_op() const { return last_op_.load(std::memory_order_relaxed); }

  // ---- Doppel split descriptor ----
  bool IsSplit() const { return split_op_.load(std::memory_order_relaxed) != kNotSplit; }
  std::uint8_t split_op() const { return split_op_.load(std::memory_order_relaxed); }
  std::int32_t slice_index() const { return slice_index_.load(std::memory_order_relaxed); }
  void MarkSplit(std::uint8_t op, std::int32_t slice_index) {
    slice_index_.store(slice_index, std::memory_order_relaxed);
    split_op_.store(op, std::memory_order_relaxed);
  }
  void ClearSplit() {
    split_op_.store(kNotSplit, std::memory_order_relaxed);
    slice_index_.store(-1, std::memory_order_relaxed);
  }

  // ---- Reclamation lifecycle (epoch sweeper, src/store/epoch.h) ----
  // A record the sweeper has decided to unlink is marked dead first, under both its OCC
  // lock bit and its 2PL rw lock, with a bumped TID. Dead is terminal: engines that find
  // it after acquiring either lock treat the access as a conflict and re-route, readers
  // whose seqlock snapshot carries the bumped TID abort via the dead check on the read
  // path, and readers with an older TID fail commit validation. The physical free
  // happens two epochs after the unlink.
  bool IsDead() const { return dead_.load(std::memory_order_acquire) != 0; }
  // Caller holds the OCC lock bit and the rw write lock (the sweeper).
  void MarkDead() { dead_.store(1, std::memory_order_release); }

  // Pin count: the Doppel classifier holds cross-phase Record* (manual labels,
  // retained split candidates); a pinned record is never reclaimed. Coordinator-thread
  // writes only, at phase barriers; the sweeper reads it racily, which is safe because
  // pins only change while workers (including the sweeping worker) are parked at a
  // barrier.
  bool IsPinned() const { return pin_count_.load(std::memory_order_relaxed) != 0; }
  void Pin() {
    // Relaxed: coordinator-thread-only counter; visibility to the sweeping worker is
    // provided by the phase barrier's release/acquire pair, not by this store.
    pin_count_.fetch_add(1, std::memory_order_relaxed);
  }
  void Unpin() {
    // Relaxed: same barrier-provided ordering as Pin().
    pin_count_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Intrusive hash chain (owned by RecordMap).
  std::atomic<Record*> hash_next{nullptr};

  // Long-lived reader/writer lock used only by the 2PL engine (held for transaction
  // duration, unlike the short OCC lock bit above).
  RWSpinlock rw;

 private:
  std::atomic<std::uint64_t> tid_word_{0};
  std::atomic<std::int64_t> ival_{0};
  Key key_;
  mutable Spinlock val_lock_;
  std::atomic<std::uint8_t> present_{0};
  RecordType type_;
  std::atomic<std::uint8_t> last_op_{0};  // OpCode::kGet until first applied write
  std::atomic<std::uint8_t> split_op_{kNotSplit};
  std::atomic<std::uint8_t> dead_{0};
  std::atomic<std::uint8_t> pin_count_{0};
  std::atomic<std::int32_t> slice_index_{-1};
  std::uint32_t topk_k_ = 0;
  // Physical copy/mutate protection only; *logical* visibility of a complex write
  // still rides on the TID-word seqlock (see ReadComplex).
  ComplexValue complex_ GUARDED_BY(val_lock_);
};

}  // namespace doppel

#endif  // DOPPEL_SRC_STORE_RECORD_H_
