// CRC-32 (IEEE 802.3 polynomial, table-driven) for log-entry and checkpoint integrity.
// Torn writes at the tail of a segment are detected by the length prefix; CRC catches
// the harder case of a partially-overwritten or bit-flipped entry body, which a length
// check alone would happily parse into garbage operations.
#ifndef DOPPEL_SRC_PERSIST_CRC32_H_
#define DOPPEL_SRC_PERSIST_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace doppel {

namespace internal {

inline constexpr std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

inline std::uint32_t Crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    c = internal::kCrc32Table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace doppel

#endif  // DOPPEL_SRC_PERSIST_CRC32_H_
