// Replica tail robustness fuzz: a segment is fed to a tailing replica in random
// byte-sized increments, so the replica sees every possible torn-tail prefix of a real
// log — partial entry headers, half-written bodies, split cut records. The replica
// must never apply a state that is not an exact cut-aligned serial prefix (checked at
// every publish), never halt on a torn active tail, and converge to the full state
// once the final cut lands. A second test flips a byte inside a *sealed* segment and
// expects the replica to halt — frozen at the last good cut — instead of serving a
// damaged prefix.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rand.h"
#include "src/persist/manifest.h"
#include "src/persist/wal.h"
#include "src/replica/replica.h"
#include "src/workload/incr.h"
#include "tests/persist_test_util.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::FreshDir;
using testing::IntAt;
using testing::ReadFileBytes;
using testing::RemoveDirRecursive;
using testing::WriteFileBytes;

std::uint64_t FuzzSeed() {
  const char* env = std::getenv("DOPPEL_FUZZ_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0xfeedULL;
}

// WriteFileBytes truncates; the feeder must extend the file in place (the tailer holds
// its position in it).
void AppendFileBytes(const std::string& path, const char* data, std::size_t n) {
  FILE* f = std::fopen(path.c_str(), "ab");
  DOPPEL_CHECK(f != nullptr);
  DOPPEL_CHECK(std::fwrite(data, 1, n, f) == n);
  DOPPEL_CHECK(std::fclose(f) == 0);
}

constexpr int kTxns = 200;
constexpr int kTxnsPerCut = 10;
const Key kCounter = IncrKey(0);
const Key kMarker = IncrKey(1);

std::uint64_t TidOf(int i) { return 256u * static_cast<std::uint64_t>(i + 1); }

// Builds a log in `dir`: txn i = Add(counter, 1) + PutInt(marker, i), one cut every
// kTxnsPerCut txns plus a trailing cut, all from one worker in ascending TID order (so
// byte order == TID order == serial order). Returns the number of cuts written.
std::uint64_t BuildStagedLog(const std::string& dir, std::uint64_t segment_bytes) {
  Store source(64);
  source.LoadInt(kCounter, 0);
  source.LoadInt(kMarker, 0);
  WriteArena arena;
  WalOptions wo;
  wo.segment_bytes = segment_bytes;
  WriteAheadLog wal(dir, wo);
  wal.StartLogging();
  std::uint64_t cuts = 0;
  for (int i = 0; i < kTxns; ++i) {
    std::vector<PendingWrite> ws;
    PendingWrite add;
    add.record = source.Find(kCounter);
    add.op = OpCode::kAdd;
    add.n = 1;
    ws.push_back(add);
    PendingWrite put;
    put.record = source.Find(kMarker);
    put.op = OpCode::kPutInt;
    put.n = i;
    ws.push_back(put);
    wal.Append(0, TidOf(i), ws, {}, arena);
    if ((i + 1) % kTxnsPerCut == 0) {
      wal.AppendCut(TidOf(i));  // flushes the buffered appends first
      ++cuts;
    }
  }
  wal.AppendCut(TidOf(kTxns - 1));
  return cuts + 1;
}

std::int64_t ViewInt(const Replica::View& v, const Key& k) {
  Value val;
  return v.Get(k, &val) ? std::get<std::int64_t>(val) : 0;
}

TEST(ReplicaTailFuzz, IncrementalFeedPublishesOnlySerialCutPrefixes) {
  const std::string staging = FreshDir("rfuzz_stage");
  const std::uint64_t cuts_written = BuildStagedLog(staging, 8ull << 20);
  Manifest m;
  ASSERT_TRUE(Manifest::Load(staging, &m));
  ASSERT_EQ(m.live_segments.size(), 1u);  // one big segment: every tear is a tail tear
  const std::string seg_name = Manifest::SegmentFileName(m.live_segments[0]);
  const std::string full = ReadFileBytes(staging + "/" + seg_name);

  const std::string dir = FreshDir("rfuzz_feed");
  Manifest::Save(dir, m);
  WriteFileBytes(dir + "/" + seg_name, "");

  std::atomic<int> violations{0};
  Replica* rp = nullptr;
  ReplicaOptions ropts;
  ropts.poll_us = 50;
  ropts.on_publish = [&] {
    Replica::View v(*rp);
    const std::int64_t c = ViewInt(v, kCounter);
    const std::int64_t mk = ViewInt(v, kMarker);
    // Exactly a serial prefix, and only at cut boundaries (multiples of kTxnsPerCut,
    // or the full log for the trailing cut).
    if (c != mk + 1 || (c % kTxnsPerCut != 0 && c != kTxns)) {
      violations.fetch_add(1);
    }
  };
  auto replica = std::make_unique<Replica>(dir, ropts);
  rp = replica.get();
  replica->Start();

  Rng rng(FuzzSeed());
  std::size_t fed = 0;
  while (fed < full.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.NextBounded(37), full.size() - fed);
    AppendFileBytes(dir + "/" + seg_name, full.data() + fed, n);
    fed += n;
    if (rng.Chance(20)) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  ASSERT_TRUE(replica->WaitForCutTid(TidOf(kTxns - 1), /*timeout_ms=*/10000));
  // The trailing cut shares the last boundary cut's TID, so WaitForCutTid can return
  // one publish early; wait for the cut count itself.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (replica->progress().published_cuts < cuts_written) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "trailing cut never landed";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(violations.load(), 0);
  const ReplicaProgress p = replica->progress();
  EXPECT_FALSE(p.halted);
  EXPECT_EQ(p.published_cuts, cuts_written);
  EXPECT_EQ(p.applied_txns, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(IntAt(replica->store(), kCounter), kTxns);
  EXPECT_EQ(IntAt(replica->store(), kMarker), kTxns - 1);

  replica->Stop();
  replica.reset();
  RemoveDirRecursive(staging);
  RemoveDirRecursive(dir);
}

TEST(ReplicaTailFuzz, SealedSegmentCorruptionHaltsAtLastGoodCut) {
  const std::string dir = FreshDir("rfuzz_halt");
  BuildStagedLog(dir, 512);  // tiny segments: plenty of sealed ones
  Manifest m;
  ASSERT_TRUE(Manifest::Load(dir, &m));
  ASSERT_GE(m.live_segments.size(), 3u);

  // Flip a byte in the entry region of a middle (sealed) segment.
  const std::string victim =
      dir + "/" + Manifest::SegmentFileName(m.live_segments[m.live_segments.size() / 2]);
  std::string bytes = ReadFileBytes(victim);
  ASSERT_GT(bytes.size(), kWalSegmentHeaderBytes + 4);
  bytes[kWalSegmentHeaderBytes + 4] ^= static_cast<char>(0xff);
  WriteFileBytes(victim, bytes);

  std::atomic<int> violations{0};
  Replica* rp = nullptr;
  ReplicaOptions ropts;
  ropts.poll_us = 50;
  ropts.on_publish = [&] {
    Replica::View v(*rp);
    const std::int64_t c = ViewInt(v, kCounter);
    if (c != ViewInt(v, kMarker) + 1 || (c % kTxnsPerCut != 0 && c != kTxns)) {
      violations.fetch_add(1);
    }
  };
  auto replica = std::make_unique<Replica>(dir, ropts);
  rp = replica.get();
  replica->Start();

  // The replica must refuse to ship past the damage: it halts rather than publishing
  // a gapped history, and everything it did publish was still cut-consistent.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!replica->progress().halted) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "replica never halted";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(violations.load(), 0);
  EXPECT_LT(IntAt(replica->store(), kCounter), kTxns);
  EXPECT_FALSE(replica->WaitForCutTid(TidOf(kTxns - 1), /*timeout_ms=*/100));

  replica->Stop();
  replica.reset();
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace doppel
