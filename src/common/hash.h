// Hash functions for keys and sampling tables.
#ifndef DOPPEL_SRC_COMMON_HASH_H_
#define DOPPEL_SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace doppel {

// Finalizer from MurmurHash3 / SplitMix64: full avalanche on 64 bits.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// FNV-1a for byte strings (payload hashing in tests).
inline std::uint64_t HashBytes(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_HASH_H_
