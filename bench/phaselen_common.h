// Shared phase-length sweep for Figures 13 and 14 (§8.7).
#ifndef DOPPEL_BENCH_PHASELEN_COMMON_H_
#define DOPPEL_BENCH_PHASELEN_COMMON_H_

#include <memory>

#include "bench/bench_common.h"
#include "src/common/zipf.h"
#include "src/workload/like.h"

namespace doppel {
namespace bench_phaselen {

struct Variant {
  const char* name;
  double alpha;
  std::uint32_t write_pct;
};

inline constexpr Variant kVariants[] = {
    {"Uniform", 0.0, 50},
    {"Skewed", 1.4, 50},
    {"SkewedWriteHeavy", 1.4, 90},
};

// Shared sweep for Figures 13 and 14.
template <typename RowFn>
void RunSweep(const bench::Flags& flags, const char* title, RowFn&& row_fn) {
  const std::uint64_t n = flags.Keys(100000);
  const std::vector<std::uint64_t> phase_ms =
      flags.full ? std::vector<std::uint64_t>{1, 2, 5, 10, 20, 40, 60, 80, 100}
                 : std::vector<std::uint64_t>{2, 5, 20, 50};

  std::printf("%s\nthreads=%d users=pages=%llu\n\n", title, flags.ResolvedThreads(),
              static_cast<unsigned long long>(n));

  const ZipfianGenerator zipf(n, 1.4);
  Table table({"phase(ms)", "Uniform", "Skewed", "SkewedWriteHeavy"});
  for (std::uint64_t pm : phase_ms) {
    std::vector<std::string> row{std::to_string(pm)};
    for (const Variant& v : kVariants) {
      LikeConfig cfg;
      cfg.num_users = n;
      cfg.num_pages = n;
      cfg.write_pct = v.write_pct;
      cfg.alpha = v.alpha;
      bench::Flags pf = flags;
      pf.phase_ms = pm;
      auto db = std::make_unique<Database>(
          bench::BaseOptions(pf, Protocol::kDoppel, n * 4));
      PopulateLike(db->store(), cfg);
      RunMetrics m = RunWorkload(*db, MakeLikeFactory(cfg, &zipf),
                                 flags.MeasureMs(/*default_seconds=*/0.5));
      row.push_back(row_fn(m));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
}

}  // namespace bench_phaselen
}  // namespace doppel


#endif  // DOPPEL_BENCH_PHASELEN_COMMON_H_
