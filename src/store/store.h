// The shared global store: a concurrent record map plus non-transactional loading helpers
// used to pre-populate benchmarks ("we pre-allocate all the records", §8.1).
#ifndef DOPPEL_SRC_STORE_STORE_H_
#define DOPPEL_SRC_STORE_STORE_H_

#include <cstdint>
#include <string>

#include "src/store/ordered_index.h"
#include "src/store/record_map.h"

namespace doppel {

class Store {
 public:
  explicit Store(std::size_t capacity_hint) : map_(capacity_hint) {}

  RecordMap& map() { return map_; }
  const RecordMap& map() const { return map_; }

  // Ordered per-table key index over the map; records appear when first logically
  // present. Engines consult it for Txn::Scan and maintain it at commit time.
  OrderedIndex& index() { return index_; }
  const OrderedIndex& index() const { return index_; }

  // Registers a table's ordered-index partition layout (shift, stripe count, adaptive
  // narrowing). Must run before the table's first insert or scan — typically right
  // before pre-population. Tables never configured get the default layout.
  void ConfigureTable(std::uint64_t table, const PartitionConfig& cfg) {
    index_.ConfigureTable(table, cfg);
  }

  Record* Find(const Key& key) const { return map_.Find(key); }
  std::size_t size() const { return map_.size(); }

  // Typed upsert used by engines when a transaction touches a key for the first time.
  Record* GetOrCreate(const Key& key, RecordType type,
                      std::size_t topk_k = TopKSet::kDefaultK) {
    Record* r = map_.GetOrCreate(key, type, topk_k);
    DOPPEL_CHECK(r->type() == type);
    return r;
  }

  // ---- Non-transactional loading (single writer or quiesced store) ----
  void LoadInt(const Key& key, std::int64_t v);
  void LoadBytes(const Key& key, std::string v);
  void LoadOrdered(const Key& key, OrderedTuple v);
  // Creates an empty top-K record with capacity k.
  void LoadTopK(const Key& key, std::size_t k);
  // Inserts one tuple into a top-K record (creating it with capacity k if needed).
  void LoadTopKItem(const Key& key, std::size_t k, OrderedTuple t);

  // Reads a committed snapshot (any time; used by tests and report code).
  Record::ValueSnapshot ReadSnapshot(const Key& key) const;

 private:
  static constexpr std::uint64_t kLoadTid = 2;  // above 0 so loaded != never-written

  RecordMap map_;
  OrderedIndex index_;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_STORE_STORE_H_
