#include "src/store/store.h"

#include <utility>

namespace doppel {

void Store::LoadInt(const Key& key, std::int64_t v) {
  Record* r = GetOrCreate(key, RecordType::kInt64);
  r->LockOcc();
  r->SetInt(v);
  index_.Insert(key, r);
  r->UnlockOccSetTid(kLoadTid);
}

void Store::LoadBytes(const Key& key, std::string v) {
  Record* r = GetOrCreate(key, RecordType::kBytes);
  r->LockOcc();
  r->MutateComplex([&](ComplexValue& cv) { std::get<std::string>(cv) = std::move(v); });
  index_.Insert(key, r);
  r->UnlockOccSetTid(kLoadTid);
}

void Store::LoadOrdered(const Key& key, OrderedTuple v) {
  Record* r = GetOrCreate(key, RecordType::kOrdered);
  r->LockOcc();
  r->MutateComplex([&](ComplexValue& cv) { std::get<OrderedTuple>(cv) = std::move(v); });
  index_.Insert(key, r);
  r->UnlockOccSetTid(kLoadTid);
}

void Store::LoadTopK(const Key& key, std::size_t k) {
  Record* r = GetOrCreate(key, RecordType::kTopK, k);
  r->LockOcc();
  r->MutateComplex([&](ComplexValue&) {});  // mark present, keep empty set
  index_.Insert(key, r);
  r->UnlockOccSetTid(kLoadTid);
}

void Store::LoadTopKItem(const Key& key, std::size_t k, OrderedTuple t) {
  Record* r = GetOrCreate(key, RecordType::kTopK, k);
  r->LockOcc();
  r->MutateComplex(
      [&](ComplexValue& cv) { std::get<TopKSet>(cv).Insert(std::move(t)); });
  index_.Insert(key, r);
  r->UnlockOccSetTid(kLoadTid);
}

Record::ValueSnapshot Store::ReadSnapshot(const Key& key) const {
  Record* r = map_.Find(key);
  if (r == nullptr) {
    return Record::ValueSnapshot{false, Value{std::int64_t{0}}, 0};
  }
  return r->ReadValue();
}

}  // namespace doppel
