// The concurrency-control engine interface.
//
// A Txn routes every data access through its engine; the worker loop calls BetweenTxns
// for phase upkeep and Commit/Abort to finish a transaction. Implementations: OccEngine
// (Silo-style OCC, §5.1), TwoPLEngine, AtomicEngine (baselines, §8.1), and DoppelEngine
// (phase reconciliation, §5).
#ifndef DOPPEL_SRC_TXN_ENGINE_H_
#define DOPPEL_SRC_TXN_ENGINE_H_

#include <cstddef>

#include "src/common/spinlock.h"
#include "src/store/key.h"
#include "src/store/record.h"
#include "src/store/store.h"
#include "src/txn/phase.h"
#include "src/txn/signals.h"
#include "src/txn/txn.h"
#include "src/txn/worker.h"

namespace doppel {

enum class TxnStatus {
  kCommitted,
  kConflict,   // lost an OCC validation / lock; retry with backoff
  kStashed,    // blocked on split data; restart in the next joined phase
  kUserAbort,  // transaction body aborted; do not retry
};

class Engine {
 public:
  virtual ~Engine() = default;
  virtual const char* name() const = 0;

  // Key -> record, creating a logically-absent record of `type` on first access.
  // Throws TypeMismatchSignal when the key already exists with a different type (the
  // record's type is fixed at creation; only a physical reclaim can retire it).
  virtual Record* Route(Worker& w, const Key& key, RecordType type, std::size_t topk_k) = 0;

  // Key -> record for Txn::Delete: adapts to whatever type the key currently has
  // (creating an absent int placeholder for a never-stored key), so deletes never
  // type-mismatch.
  virtual Record* RouteDelete(Worker& w, const Key& key) = 0;

  // Protocol read into `out`. May throw StashSignal (Doppel) or ConflictSignal (2PL).
  virtual void Read(Worker& w, Txn& txn, Record* r, ReadResult* out) = 0;

  // Protocol write routing. May throw StashSignal or ConflictSignal.
  virtual void Write(Worker& w, Txn& txn, PendingWrite&& pw) = 0;

  // Serializable range scan over the ordered index (see Txn::Scan for the contract).
  // May throw ConflictSignal (2PL); Doppel dooms the transaction for stashing instead.
  // `fn` is a borrowed reference (FunctionRef): call it during the scan only.
  virtual std::size_t Scan(Worker& w, Txn& txn, std::uint64_t table, std::uint64_t lo,
                           std::uint64_t hi, std::size_t limit, ScanFn fn) = 0;

  // Commit protocol; returns kCommitted or kConflict (conflict details left in txn).
  virtual TxnStatus Commit(Worker& w, Txn& txn) = 0;

  // Releases engine resources after a signal or user abort.
  virtual void Abort(Worker& w, Txn& txn) = 0;

  // Called by the worker loop between transactions (phase transitions; default no-op).
  virtual void BetweenTxns(Worker& w) { (void)w; }

  virtual Phase CurrentPhase(const Worker& w) const {
    (void)w;
    return Phase::kJoined;
  }

  // Classifier hooks (Doppel).
  virtual void OnConflict(Worker& w, Txn& txn) {
    (void)w;
    (void)txn;
  }
  virtual void OnStash(Worker& w, const StashSignal& s) {
    (void)w;
    (void)s;
  }

 protected:
  // Shared Route body: resolve the key — worker-local route cache first, then the
  // store's front door — skipping past records the epoch sweeper has marked dead (a
  // dead record is instants from being unlinked — spin until the fresh lookup stops
  // returning it), then enforce the type contract.
  static Record* RouteInStore(Worker& w, Store& s, const Key& key, RecordType type,
                              std::size_t topk_k) {
    Record* r = RouteAnyType(w, s, key, type, topk_k);
    if (r->type() != type) {
      throw TypeMismatchSignal{key, type, r->type()};
    }
    return r;
  }

  // Type-agnostic variant for deletes: returns whatever record the key has (possibly a
  // fresh absent placeholder of `fallback` type).
  static Record* RouteAnyType(Worker& w, Store& s, const Key& key, RecordType fallback,
                              std::size_t topk_k) {
    // Cache hit: a pointer this worker resolved earlier in the current epoch window
    // (abort-retry being the payoff case). The IsDead re-check here mirrors the one
    // every freshly-routed pointer gets from the engines after each snapshot; a hit
    // can never alias freed memory because the run loop invalidates the cache on
    // every observed epoch change, ahead of the two-advance free gate.
    if (Record* r = w.txn.CachedRoute(key)) {
      if (!r->IsDead()) {
        return r;
      }
    }
    Record* r = s.Route(key, fallback, topk_k == 0 ? TopKSet::kDefaultK : topk_k);
    while (r->IsDead()) {
      // The sweeper marks a record dead under its bucket's stripe lock and unlinks it
      // before releasing that lock, so a fresh lookup stops observing it as soon as the
      // sweeping thread finishes this bucket.
      CpuRelax();
      r = s.Route(key, fallback, topk_k == 0 ? TopKSet::kDefaultK : topk_k);
    }
    w.txn.CacheRoute(key, r);
    return r;
  }
};

}  // namespace doppel

#endif  // DOPPEL_SRC_TXN_ENGINE_H_
