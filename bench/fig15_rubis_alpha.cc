// Figure 15: "The RUBiS-C benchmark, varying alpha on the x-axis." Series: Doppel, OCC,
// 2PL. Doppel matches OCC up to alpha ~1 and pulls ahead as bid skew grows (§8.8).
#include <memory>

#include "bench/bench_common.h"
#include "src/common/zipf.h"
#include "src/rubis/workload.h"

namespace doppel {
namespace {

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  rubis::Config data;
  data.num_users = flags.full ? 1000000 : 50000;
  data.num_items = flags.full ? 33000 : 10000;
  const std::vector<double> alphas =
      flags.full
          ? std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
          : std::vector<double>{0.0, 0.8, 1.2, 1.8};
  const Protocol protocols[] = {Protocol::kDoppel, Protocol::kOcc, Protocol::kTwoPL};

  std::printf("Figure 15: RUBiS-C throughput vs alpha\n");
  std::printf("threads=%d users=%llu items=%llu\n\n", flags.ResolvedThreads(),
              static_cast<unsigned long long>(data.num_users),
              static_cast<unsigned long long>(data.num_items));

  Table table({"alpha", "Doppel", "OCC", "2PL", "doppel_split"});
  for (double alpha : alphas) {
    const ZipfianGenerator zipf(data.num_items, alpha);
    std::vector<std::string> row{FormatDouble(alpha, 1)};
    std::size_t split_records = 0;
    for (Protocol p : protocols) {
      rubis::WorkloadConfig cfg;
      cfg.data = data;
      cfg.mix = rubis::Mix::kContended;
      cfg.alpha = alpha;
      auto point = bench::MeasurePoint(
          flags, /*default_seconds=*/0.5,
          [&] {
            auto db = std::make_unique<Database>(bench::BaseOptions(
                flags, p, data.num_users * 4 + data.num_items * 8));
            rubis::Populate(db->store(), data);
            return db;
          },
          [&] { return rubis::MakeRubisFactory(cfg, &zipf); });
      row.push_back(FormatCount(point.throughput.mean()));
      if (p == Protocol::kDoppel) {
        split_records = point.last.split_records;
      }
    }
    row.push_back(std::to_string(split_records));
    table.AddRow(std::move(row));
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
