// Log-linear latency histogram (HDR-style), used for Table 3 and Figures 13-14.
//
// Buckets: 64 power-of-two magnitude groups x 16 linear sub-buckets, covering 1ns..2^63ns
// with <= 6.25% relative error. Recording is wait-free on a per-worker instance; results
// are merged after a run.
#ifndef DOPPEL_SRC_COMMON_HISTOGRAM_H_
#define DOPPEL_SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace doppel {

class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(std::uint64_t nanos);
  void Merge(const LatencyHistogram& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;
  // p in [0, 100]; returns an upper bound of the bucket containing the quantile.
  std::uint64_t Percentile(double p) const;

 private:
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 16
  static constexpr int kGroups = 60;

  static int BucketIndex(std::uint64_t nanos);
  static std::uint64_t BucketUpperBound(int index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_HISTOGRAM_H_
