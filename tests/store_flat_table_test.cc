// Flat store routing (PR 9): unit tests for the FlatTable slot lifecycle, the Store
// Route front door and per-table registration, the two-epoch republication gate
// (acceptance: a reclaimed flat slot is never reopened before two epoch advances), and
// a multi-worker torture run racing routes, deletes, sweeps, and slot republication
// under every lock-based protocol (the CI TSan/ASan teeth for the flat path).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/store/epoch.h"
#include "src/store/flat_table.h"
#include "src/store/store.h"

namespace doppel {
namespace {

using SlotState = FlatTable::SlotState;

TEST(FlatTable, InstallFindGrowAndRange) {
  FlatTable f(/*table=*/7, /*base=*/100, /*span=*/1000, /*initial_slots=*/4);
  EXPECT_TRUE(f.InRange(100));
  EXPECT_TRUE(f.InRange(1099));
  EXPECT_FALSE(f.InRange(99));
  EXPECT_FALSE(f.InRange(1100));
  EXPECT_EQ(f.Find(99), nullptr);
  EXPECT_EQ(f.Find(1100), nullptr);
  EXPECT_EQ(f.Probe(99), SlotState::kMiss);
  EXPECT_EQ(f.Probe(100), SlotState::kEmpty);

  Record r1(Key::Table(7, 100), RecordType::kInt64, 1);
  Record r2(Key::Table(7, 100), RecordType::kInt64, 1);
  f.TryInstall(100, &r1);
  EXPECT_EQ(f.Find(100), &r1);
  EXPECT_EQ(f.Probe(100), SlotState::kLive);
  // Installs never overwrite: the slot keeps its first pointer.
  f.TryInstall(100, &r2);
  EXPECT_EQ(f.Find(100), &r1);

  // Offset beyond the 4-slot initial array: growth covers it and keeps r1.
  Record r3(Key::Table(7, 900), RecordType::kInt64, 1);
  EXPECT_EQ(f.Probe(900), SlotState::kMiss) << "offset not yet covered by the array";
  f.TryInstall(900, &r3);
  EXPECT_EQ(f.Find(900), &r3);
  EXPECT_EQ(f.Find(100), &r1);
  // The pre-growth array was retired, not freed (readers may still hold it).
  std::vector<FlatSlotArray*> retired;
  f.DrainRetired(&retired);
  ASSERT_FALSE(retired.empty());
  for (FlatSlotArray* a : retired) {
    delete a;
  }
}

TEST(FlatTable, TombstoneBlocksInstallUntilCleared) {
  FlatTable f(/*table=*/7, /*base=*/0, /*span=*/64, /*initial_slots=*/64);
  Record r(Key::Table(7, 5), RecordType::kInt64, 1);
  f.TryInstall(5, &r);
  EXPECT_EQ(f.Probe(5), SlotState::kLive);

  f.WriteTombstone(5);
  EXPECT_EQ(f.Probe(5), SlotState::kTombstone);
  EXPECT_EQ(f.Find(5), nullptr) << "a tombstoned slot must read as a miss";
  // Install against the sentinel is refused — the grace period owns the slot.
  f.TryInstall(5, &r);
  EXPECT_EQ(f.Probe(5), SlotState::kTombstone);

  f.ClearTombstone(5);
  EXPECT_EQ(f.Probe(5), SlotState::kEmpty);
  f.TryInstall(5, &r);
  EXPECT_EQ(f.Find(5), &r);

  // Quiescent publish: overwrites anything, nullptr clears.
  f.WriteTombstone(5);
  f.Publish(5, &r);
  EXPECT_EQ(f.Find(5), &r);
  f.Publish(5, nullptr);
  EXPECT_EQ(f.Probe(5), SlotState::kEmpty);

  // The sentinel lands even beyond the current array (the array grows to hold it):
  // a racing install of a dying record must always have something to collide with.
  FlatTable g(/*table=*/7, /*base=*/0, /*span=*/4096, /*initial_slots=*/4);
  g.WriteTombstone(1000);
  EXPECT_EQ(g.Probe(1000), SlotState::kTombstone);
  std::vector<FlatSlotArray*> retired;
  g.DrainRetired(&retired);
  for (FlatSlotArray* a : retired) {
    delete a;
  }
}

TEST(StoreRouting, FlatRegistrationRoutesAndFallsBack) {
  Store store(1 << 8);
  // Records of other tables may pre-exist; the registration rehash must keep them.
  store.LoadInt(Key::Table(9, 1), 42);

  TableOptions opts;
  opts.layout = TableLayout::kFlat;
  opts.flat_base = 0;
  opts.flat_span = 64;
  opts.capacity_hint = 1 << 9;
  store.ConfigureTable(5, opts);
  EXPECT_TRUE(store.HasFlatTable(5));
  EXPECT_FALSE(store.HasFlatTable(4));
  // capacity_hint: construction hint (2^8) + 2^9 -> next power of two.
  EXPECT_EQ(store.map().bucket_count(), std::size_t{1} << 10);
  EXPECT_EQ(std::get<std::int64_t>(store.ReadSnapshot(Key::Table(9, 1)).value), 42);

  const Key in = Key::Table(5, 7);
  Record* r = store.GetOrCreateUnchecked(in, RecordType::kInt64, 0);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(store.FlatProbe(in), SlotState::kLive) << "route must back-fill the slot";
  EXPECT_EQ(store.GetOrCreateUnchecked(in, RecordType::kInt64, 0), r);
  EXPECT_EQ(store.Find(in), r) << "the map stays the authoritative owner";

  // Out-of-range key of a flat table: plain hash routing.
  const Key out = Key::Table(5, 1000);
  Record* ro = store.GetOrCreateUnchecked(out, RecordType::kInt64, 0);
  ASSERT_NE(ro, nullptr);
  EXPECT_EQ(store.FlatProbe(out), SlotState::kMiss);
  EXPECT_EQ(store.Find(out), ro);

  // Non-flat tables are untouched by the directory.
  EXPECT_EQ(store.FlatProbe(Key::Table(9, 1)), SlotState::kMiss);
}

// The acceptance-criteria assertion: a flat slot whose record the sweeper reclaimed is
// never republished before two epoch advances, and reopens exactly at the free point.
TEST(EpochReclaimerFlat, SlotRepublicationGatedOnTwoAdvances) {
  Store store(1 << 8);
  TableOptions opts;
  opts.layout = TableLayout::kFlat;
  opts.flat_base = 0;
  opts.flat_span = 64;
  store.ConfigureTable(11, opts);

  const Key k = Key::Table(11, 7);
  // Created absent and never written: a reclamation candidate from birth.
  Record* victim = store.GetOrCreateUnchecked(k, RecordType::kInt64, 0);
  ASSERT_EQ(store.FlatProbe(k), SlotState::kLive);

  ReclaimOptions ro;
  ro.tick_period = 0;           // drive an advance + sweep step on every tick
  ro.chunk_buckets = 1 << 20;   // whole map per step
  EpochReclaimer rec(store, /*num_workers=*/1, ro);
  auto gen_tid = [](std::uint64_t t) { return t + (std::uint64_t{1} << 8); };

  // Tick 1 (epoch 1 -> 2): the sweep kills + unlinks the victim and poisons its slot.
  rec.Tick(0, gen_tid);
  EXPECT_EQ(store.Find(k), nullptr) << "victim should be unlinked";
  ASSERT_EQ(store.FlatProbe(k), SlotState::kTombstone);

  // Routing during the grace period resolves to a FRESH record via the hash fallback
  // and must not take the slot.
  Record* fresh = store.GetOrCreateUnchecked(k, RecordType::kInt64, 0);
  ASSERT_NE(fresh, victim);
  EXPECT_EQ(store.FlatProbe(k), SlotState::kTombstone)
      << "slot republished during the grace period";
  // Make the fresh record present so later sweeps leave it (and this test) alone.
  store.LoadInt(k, 99);

  // Tick 2 (epoch 2 -> 3): one advance past the sweep stamp — still gated.
  rec.Tick(0, gen_tid);
  EXPECT_EQ(store.FlatProbe(k), SlotState::kTombstone)
      << "slot republished after only one epoch advance";

  // Tick 3 (epoch 3 -> 4): two advances past the stamp — free point, slot reopens.
  rec.Tick(0, gen_tid);
  EXPECT_EQ(store.FlatProbe(k), SlotState::kEmpty);

  // The next route reinstalls the (present) fresh record.
  EXPECT_EQ(store.GetOrCreateUnchecked(k, RecordType::kInt64, 0), fresh);
  EXPECT_EQ(store.FlatProbe(k), SlotState::kLive);
  EXPECT_EQ(std::get<std::int64_t>(store.ReadSnapshot(k).value), 99);
}

// ---- Torture: routes vs deletes vs sweeps vs republication, all protocols ----

constexpr std::uint64_t kTortureTable = 6;
constexpr std::uint64_t kKeysPerWorker = 64;
constexpr std::uint64_t kTortureSpan = 1024;
// One key every worker hammers: OCC conflicts here drive abort-retry through the
// per-transaction route cache, and periodic deletes force its liveness re-validation.
constexpr std::uint64_t kHotLo = kTortureSpan - 1;

std::atomic<std::uint64_t> g_value_errors{0};

void TorturePut(Txn& txn, const TxnArgs& args) { txn.PutInt(args.k1, args.n); }
void TortureDelete(Txn& txn, const TxnArgs& args) { txn.Delete(args.k1); }
void TortureGetExpect(Txn& txn, const TxnArgs& args) {
  const std::optional<std::int64_t> got = txn.GetInt(args.k1);
  if (args.aux != 0) {  // expect present with value args.n
    if (!got.has_value() || *got != args.n) {
      g_value_errors.fetch_add(1, std::memory_order_relaxed);
    }
  } else {  // expect absent
    if (got.has_value()) {
      g_value_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
}
void TortureGetAny(Txn& txn, const TxnArgs& args) { (void)txn.GetInt(args.k1); }

// Closed-loop per-worker state machine over worker-private keys:
//   Put(k, v) -> Get(k) == v -> Delete(k) -> Get(k) absent -> read a random foreign key
//   -> hammer the shared hot key (worker 0 periodically deletes it).
// Private keys make the value assertions exact — but only if the steps commit in issue
// order, and a conflicted transaction is retried *later* while the worker moves on. So
// each state-machine step gates on the previous one's on_complete; while one is in
// flight (retry backoff, Doppel stash) the source emits ungated foreign reads, which
// double as the cross-worker races (installs vs tombstones, cached pointers vs
// reclaim) that TSan/ASan are here to chew on.
class TortureSource : public TxnSource {
 public:
  explicit TortureSource(int worker_id) : worker_id_(worker_id) {}

  static void OnDone(const TxnResult& result, void* ctx) {
    (void)result;  // state txns always commit eventually (no user aborts/mismatches)
    // Release pairs with the acquire in Next: the next step observes the finished
    // transaction's outcome before issuing its successor.
    static_cast<TortureSource*>(ctx)->ready_.store(true, std::memory_order_release);
  }

  TxnRequest Next(Worker& w) override {
    TxnRequest r;
    r.args.tag = kTagWrite;
    if (!ready_.load(std::memory_order_acquire)) {
      // Previous state-machine step still in flight: stay busy with race-fodder.
      r.proc = &TortureGetAny;
      r.args.k1 = Key::Table(kTortureTable, w.rng.NextBounded(kTortureSpan));
      return r;
    }
    // Single owner between here and OnDone (the worker issues, the worker completes);
    // relaxed store is only ordered against this thread's own issue below.
    ready_.store(false, std::memory_order_relaxed);
    const std::uint64_t cycle = step_ / 6;
    const Key own =
        Key::Table(kTortureTable, static_cast<std::uint64_t>(worker_id_) *
                                          kKeysPerWorker +
                                      (cycle % kKeysPerWorker));
    const auto v = static_cast<std::int64_t>(cycle + 1);
    switch (step_ % 6) {
      case 0:
        r.proc = &TorturePut;
        r.args.k1 = own;
        r.args.n = v;
        break;
      case 1:
        r.proc = &TortureGetExpect;
        r.args.k1 = own;
        r.args.n = v;
        r.args.aux = 1;  // expect present
        break;
      case 2:
        r.proc = &TortureDelete;
        r.args.k1 = own;
        break;
      case 3:
        r.proc = &TortureGetExpect;
        r.args.k1 = own;
        r.args.aux = 0;  // expect absent
        break;
      case 4:
        r.proc = &TortureGetAny;  // foreign key: no expectation, just the race
        r.args.k1 = Key::Table(kTortureTable, w.rng.NextBounded(kTortureSpan));
        break;
      default:
        if (worker_id_ == 0 && cycle % 16 == 15) {
          r.proc = &TortureDelete;  // periodically kill the hot key
        } else {
          r.proc = &TorturePut;
          r.args.n = v;
        }
        r.args.k1 = Key::Table(kTortureTable, kHotLo);
        break;
    }
    r.on_complete = &OnDone;
    r.on_complete_ctx = this;
    step_++;
    return r;
  }

 private:
  const int worker_id_;
  std::uint64_t step_ = 0;
  std::atomic<bool> ready_{true};
};

class FlatTortureTest : public ::testing::TestWithParam<Protocol> {};

INSTANTIATE_TEST_SUITE_P(Protocols, FlatTortureTest,
                         ::testing::Values(Protocol::kOcc, Protocol::kTwoPL,
                                           Protocol::kDoppel),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

TEST_P(FlatTortureTest, RoutesNeverObserveStaleRecordsUnderChurn) {
  g_value_errors.store(0);
  Options opts;
  opts.protocol = GetParam();
  opts.num_workers = 3;
  opts.phase_us = 1000;
  opts.store_capacity = 1 << 10;
  opts.reclaim.tick_period = 4;          // drive aggressively: maximal republication churn
  opts.reclaim.chunk_buckets = 1 << 20;  // whole map per sweep step
  Database db(opts);

  TableOptions topts;
  topts.layout = TableLayout::kFlat;
  topts.flat_base = 0;
  topts.flat_span = kTortureSpan;
  topts.flat_initial_slots = 8;  // force growth (and retired-array limbo) mid-run
  db.store().ConfigureTable(kTortureTable, topts);

  db.Start([](int worker_id) { return std::make_unique<TortureSource>(worker_id); });
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  db.Stop();

  EXPECT_EQ(g_value_errors.load(), 0u)
      << "a transaction observed a stale or lost value through the flat path";
  ASSERT_NE(db.reclaimer(), nullptr);
  EXPECT_GT(db.reclaimer()->reclaimed(), 0u) << "torture never exercised reclamation";
  EXPECT_GE(db.reclaimer()->epochs().global(), 10u);
}

}  // namespace
}  // namespace doppel
