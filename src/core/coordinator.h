// The coordinator thread (§5.4): owns the phase clock, initiates transitions, waits for
// worker acknowledgements, runs the classifier at barriers, and applies the feedback
// rules (delay split phases when nothing is contended; hurry the joined phase when the
// split phase stashes too much).
#ifndef DOPPEL_SRC_CORE_COORDINATOR_H_
#define DOPPEL_SRC_CORE_COORDINATOR_H_

#include <atomic>
#include <cstdint>

#include "src/core/doppel_engine.h"
#include "src/core/options.h"

namespace doppel {

class Coordinator {
 public:
  // `stop_coord` asks the coordinator to wind down; it finishes any split phase (so all
  // slices reconcile), then sets `stop_workers` and returns. `drain` (set by
  // Database::Stop before it waits on in-flight submissions) makes the coordinator
  // hurry: phase sleeps end immediately and no new split phase starts, so transactions
  // stashed in a split phase retire in the next joined phase instead of keeping Stop
  // waiting for up to a full phase length.
  Coordinator(DoppelEngine& engine, const Options& opts, std::atomic<bool>& stop_coord,
              std::atomic<bool>& stop_workers, const std::atomic<bool>& drain)
      : engine_(engine),
        opts_(opts),
        stop_coord_(stop_coord),
        stop_workers_(stop_workers),
        drain_(drain) {}

  // Thread body.
  void Run();

  std::uint64_t completed_cycles() const {
    return cycles_.load(std::memory_order_relaxed);
  }

  // Quiesce-only joined -> joined barriers run for adaptive index narrowing and/or
  // due checkpoints (observability).
  std::uint64_t tune_barriers() const {
    return tune_barriers_.load(std::memory_order_relaxed);
  }

  // Cumulative wall time per stage (nanoseconds), for observability and tests.
  struct StageTimes {
    std::uint64_t joined_ns = 0;
    std::uint64_t split_ns = 0;
    std::uint64_t to_split_barrier_ns = 0;  // acks + classify + plan
    std::uint64_t to_joined_barrier_ns = 0; // acks (incl. reconciliation) + retention
  };
  StageTimes stage_times() const {
    StageTimes t;
    t.joined_ns = joined_ns_.load(std::memory_order_relaxed);
    t.split_ns = split_ns_.load(std::memory_order_relaxed);
    t.to_split_barrier_ns = to_split_barrier_ns_.load(std::memory_order_relaxed);
    t.to_joined_barrier_ns = to_joined_barrier_ns_.load(std::memory_order_relaxed);
    return t;
  }

 private:
  // Chunked sleep; returns early on stop (and, for split phases, on stash pressure).
  void SleepJoined(std::uint64_t ns) const;
  void SleepSplit(std::uint64_t ns) const;

  DoppelEngine& engine_;
  const Options& opts_;
  std::atomic<bool>& stop_coord_;
  std::atomic<bool>& stop_workers_;
  const std::atomic<bool>& drain_;
  std::atomic<std::uint64_t> cycles_{0};
  std::atomic<std::uint64_t> tune_barriers_{0};
  std::atomic<std::uint64_t> joined_ns_{0};
  std::atomic<std::uint64_t> split_ns_{0};
  std::atomic<std::uint64_t> to_split_barrier_ns_{0};
  std::atomic<std::uint64_t> to_joined_barrier_ns_{0};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_CORE_COORDINATOR_H_
