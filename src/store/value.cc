#include "src/store/value.h"

#include <algorithm>

#include "src/common/dassert.h"

namespace doppel {

const char* RecordTypeName(RecordType t) {
  switch (t) {
    case RecordType::kInt64:
      return "int64";
    case RecordType::kBytes:
      return "bytes";
    case RecordType::kOrdered:
      return "ordered";
    case RecordType::kTopK:
      return "topk";
  }
  return "?";
}

TopKSet::TopKSet(std::size_t k) : k_(k) {
  DOPPEL_CHECK(k >= 1);
  items_.reserve(k);
}

bool TopKSet::Insert(const OrderedTuple& t) {
  // Find the insertion point in the descending (order, core) sequence; check the
  // duplicate-order rule along the way.
  auto it = std::lower_bound(items_.begin(), items_.end(), t,
                             [](const OrderedTuple& a, const OrderedTuple& b) {
                               return OrderedTuple::Wins(a, b);
                             });
  // A tuple with equal order would sit adjacent to `it`: core-descending within an order
  // means an existing equal-order tuple with a higher core is before `it`, one with a
  // lower core is exactly at `it`.
  if (it != items_.begin() && std::prev(it)->order == t.order) {
    return false;  // existing tuple has same order and higher (or equal) core: keep it
  }
  if (it != items_.end() && it->order == t.order) {
    if (t.core > it->core) {
      *it = t;  // replace: same order, higher core wins
      return true;
    }
    return false;
  }
  if (items_.size() == k_) {
    if (it == items_.end()) {
      return false;  // smaller than everything retained
    }
    items_.pop_back();
  }
  items_.insert(it, t);
  return true;
}

void TopKSet::MergeFrom(const TopKSet& other) {
  for (const OrderedTuple& t : other.items_) {
    Insert(t);
  }
}

RecordType ValueType(const Value& v) {
  switch (v.index()) {
    case 0:
      return RecordType::kInt64;
    case 1:
      return RecordType::kBytes;
    case 2:
      return RecordType::kOrdered;
    default:
      return RecordType::kTopK;
  }
}

}  // namespace doppel
