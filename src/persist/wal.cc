#include "src/persist/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>

#include "src/common/dassert.h"
#include "src/persist/crc32.h"
#include "src/persist/encoding.h"
#include "src/txn/apply.h"

namespace doppel {
namespace {

// Segment layout:
//   u32 magic, u32 version, u64 segment_number
//   entries: u32 payload_len, u32 payload_crc, payload
// Entry payload:
//   u64 commit_tid
//   u16 op_count
//   per op: u8 opcode, u64 key.hi, u64 key.lo, i64 n, i64 order.primary,
//           i64 order.secondary, u32 core, u32 topk_k, u32 payload_len, bytes payload
constexpr std::uint32_t kSegmentMagic = 0x4c415744;  // "DWAL"
constexpr std::uint32_t kSegmentVersion = 1;
constexpr std::size_t kSegmentHeaderBytes =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t);
// An entry's payload can't plausibly exceed this; a larger length prefix is a tear or
// corruption, not data (the group-commit path writes entries far smaller).
constexpr std::uint32_t kMaxEntryBytes = 64u << 20;

void PutOp(std::vector<char>& out, const PendingWrite& w, const WriteArena& arena) {
  PutRaw(out, static_cast<std::uint8_t>(w.op));
  PutRaw(out, w.record->key().hi);
  PutRaw(out, w.record->key().lo);
  PutRaw(out, w.n);
  const OrderKey order = w.OrderOf(arena);
  PutRaw(out, order.primary);
  PutRaw(out, order.secondary);
  PutRaw(out, static_cast<std::uint32_t>(w.core));
  PutRaw(out, static_cast<std::uint32_t>(w.record->topk_k()));
  const std::string_view payload = w.PayloadOf(arena);
  PutRaw(out, static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty()) {
    PutSpan(out, payload.data(), payload.size());
  }
}

struct ReplayOp {
  OpCode op;
  Key key;
  std::int64_t n;
  OrderKey order;
  std::uint32_t core;
  std::uint32_t topk_k;
  std::string payload;
};

struct ReplayTxn {
  std::uint64_t tid;
  std::vector<ReplayOp> ops;
};

// Parses one segment file into `out`. Stops (returning false, with everything parsed
// so far appended) at the first torn or CRC-failing entry; returns true only when the
// file parsed cleanly to its end. A tear in the segment that was active at the crash
// is the normal case — everything before it is a committed prefix. A parse failure in
// any *earlier* segment is corruption, and the caller must not replay the segments
// after it (that would recover a state matching no committed prefix). Missing or
// unrecognizable files parse as empty and not-clean — recovery must degrade, never
// crash, on a damaged directory.
bool ParseSegment(const std::string& path, std::vector<ReplayTxn>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return false;
  }
  const std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  ByteCursor outer(data.data(), data.size());
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t segment_number = 0;
  if (!outer.Read(&magic) || magic != kSegmentMagic || !outer.Read(&version) ||
      version != kSegmentVersion || !outer.Read(&segment_number)) {
    return false;
  }
  while (!outer.AtEnd()) {
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (!outer.Read(&len) || !outer.Read(&crc) || len > kMaxEntryBytes) {
      return false;  // torn length/crc prefix
    }
    std::string body;
    if (!outer.ReadBytes(&body, len)) {
      return false;  // torn final batch: length promises more bytes than exist
    }
    if (Crc32(body.data(), body.size()) != crc) {
      return false;  // partially-overwritten or corrupted entry body
    }
    ByteCursor entry(body.data(), body.size());
    ReplayTxn txn;
    std::uint16_t n_ops = 0;
    if (!entry.Read(&txn.tid) || !entry.Read(&n_ops)) {
      return false;
    }
    bool ok = true;
    for (std::uint16_t i = 0; i < n_ops && ok; ++i) {
      ReplayOp op;
      std::uint8_t code = 0;
      ok = entry.Read(&code) && entry.Read(&op.key.hi) && entry.Read(&op.key.lo) &&
           entry.Read(&op.n) && entry.Read(&op.order.primary) &&
           entry.Read(&op.order.secondary) && entry.Read(&op.core) &&
           entry.Read(&op.topk_k) && entry.ReadString(&op.payload);
      op.op = static_cast<OpCode>(code);
      if (ok) {
        txn.ops.push_back(std::move(op));
      }
    }
    if (!ok || !entry.AtEnd()) {
      // Short ops, or trailing bytes the op count does not account for: either way the
      // entry does not faithfully describe one committed transaction — stop here.
      return false;
    }
    out->push_back(std::move(txn));
  }
  return true;
}

// Redo one logical operation against the store, maintaining the ordered index exactly
// like a live commit does (a record entering logical presence becomes scannable).
// `arena` is per-caller scratch for the op's operand block (cleared each call).
void ApplyReplayOp(Store* store, const ReplayOp& op, std::uint64_t tid,
                   WriteArena* arena) {
  Record* r = store->GetOrCreate(op.key, OpRecordType(op.op),
                                 op.topk_k == 0 ? TopKSet::kDefaultK : op.topk_k);
  PendingWrite w;
  w.record = r;
  w.op = op.op;
  w.n = op.n;
  w.core = static_cast<std::uint16_t>(op.core);
  arena->Clear();
  StoreOperand(*arena, op.op, op.order, op.payload, &w);
  r->LockOcc();
  const bool was_present = r->PresentLocked();
  ApplyWriteToRecord(w, *arena);
  if (!was_present) {
    store->index().Insert(op.key, r);
  }
  r->UnlockOccSetTid(tid);
}

void WriteFully(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    DOPPEL_CHECK(n > 0);
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string dir, WalOptions opts)
    : dir_(std::move(dir)), opts_(opts) {
  DOPPEL_CHECK(!dir_.empty());
  if (::mkdir(dir_.c_str(), 0755) != 0) {
    DOPPEL_CHECK(errno == EEXIST);
  }
  Manifest::Load(dir_, &manifest_);  // fresh directory leaves the default manifest
}

WriteAheadLog::~WriteAheadLog() {
  if (logging_) {
    stop_.store(true, std::memory_order_release);
    flusher_.join();
    Flush();
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

RecoveryResult WriteAheadLog::Recover(Store* store, int replay_threads) {
  DOPPEL_CHECK(!logging_);
  RecoveryResult result;
  if (!manifest_.checkpoint.empty()) {
    const CheckpointStats ck =
        Checkpoint::Load(dir_ + "/" + manifest_.checkpoint, store);
    result.had_checkpoint = true;
    result.checkpoint_records = ck.records;
    result.checkpoint_tables = ck.tables;
    result.max_tid = ck.max_tid;
  }

  std::vector<ReplayTxn> txns;
  for (std::uint64_t seg : manifest_.live_segments) {
    const std::size_t before = txns.size();
    const bool clean = ParseSegment(dir_ + "/" + Manifest::SegmentFileName(seg), &txns);
    if (txns.size() != before) {
      result.replayed_segments++;
    }
    if (!clean) {
      // A tear here ends the recoverable history: entries in later segments were
      // logged *after* the ones this segment lost, and replaying them over the gap
      // would produce a state matching no committed prefix. (For the last — active —
      // segment this is the ordinary crash tail and the break is a no-op.)
      break;
    }
  }
  // Redo in commit-TID order (TIDs are unique: worker id lives in the low bits).
  std::sort(txns.begin(), txns.end(),
            [](const ReplayTxn& a, const ReplayTxn& b) { return a.tid < b.tid; });
  result.replayed_txns = txns.size();
  for (const ReplayTxn& t : txns) {
    result.max_tid = std::max(result.max_tid, t.tid);
  }

  int threads = replay_threads;
  if (threads <= 0) {
    threads = static_cast<int>(
        std::min<unsigned>(4, std::max<unsigned>(1, std::thread::hardware_concurrency())));
  }
  if (txns.size() < 256) {
    threads = 1;  // not worth the fan-out
  }
  result.replay_threads = threads;

  if (threads <= 1) {
    WriteArena arena;
    for (const ReplayTxn& t : txns) {
      for (const ReplayOp& op : t.ops) {
        ApplyReplayOp(store, op, t.tid, &arena);
      }
    }
    return result;
  }

  // Parallel replay: partition ops by key stripe so each record's redo sequence is
  // applied by exactly one thread, in TID order (the txn list is already sorted). Final
  // state per record depends only on that per-record sequence, so this matches serial
  // replay; cross-record interleaving is unobservable in the recovered snapshot.
  struct StripedOp {
    std::uint64_t tid;
    const ReplayOp* op;
  };
  std::vector<std::vector<StripedOp>> striped(static_cast<std::size_t>(threads));
  for (const ReplayTxn& t : txns) {
    for (const ReplayOp& op : t.ops) {
      const std::size_t stripe =
          static_cast<std::size_t>(op.key.Hash()) % static_cast<std::size_t>(threads);
      striped[stripe].push_back(StripedOp{t.tid, &op});
    }
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    pool.emplace_back([store, &striped, i] {
      WriteArena arena;
      for (const StripedOp& s : striped[static_cast<std::size_t>(i)]) {
        ApplyReplayOp(store, *s.op, s.tid, &arena);
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  return result;
}

void WriteAheadLog::OpenSegmentLocked(std::uint64_t number) {
  const std::string path = dir_ + "/" + Manifest::SegmentFileName(number);
  fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  DOPPEL_CHECK(fd_ >= 0);
  std::vector<char> header;
  PutRaw(header, kSegmentMagic);
  PutRaw(header, kSegmentVersion);
  PutRaw(header, number);
  WriteFully(fd_, header.data(), header.size());
  // Make the (possibly empty) segment durable before the manifest references it, so a
  // crash between the two never leaves the manifest naming a missing file.
  DOPPEL_CHECK(::fsync(fd_) == 0);
  active_segment_ = number;
  active_bytes_ = kSegmentHeaderBytes;
  segments_created_.fetch_add(1, std::memory_order_relaxed);
}

void WriteAheadLog::SweepUnreferencedLocked() {
  // Files the manifest does not name are garbage from an interrupted transition (a
  // crash between repointing the manifest and unlinking what it replaced, or a torn
  // tmp write). Only files matching our own naming are touched.
  DIR* d = ::opendir(dir_.c_str());
  DOPPEL_CHECK(d != nullptr);
  std::vector<std::string> doomed;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    const bool wal_file =
        name.size() > 4 && name.compare(0, 4, "wal-") == 0 &&
        name.compare(name.size() - 4, 4, ".log") == 0;
    const bool ckpt_file =
        name.size() > 5 && name.compare(0, 5, "ckpt-") == 0 &&
        name.compare(name.size() - 5, 5, ".ckpt") == 0;
    const bool tmp_file =
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (!wal_file && !ckpt_file && !tmp_file) {
      continue;
    }
    bool referenced = name == manifest_.checkpoint;
    for (std::uint64_t seg : manifest_.live_segments) {
      referenced = referenced || name == Manifest::SegmentFileName(seg);
    }
    if (!referenced) {
      doomed.push_back(name);
    }
  }
  ::closedir(d);
  for (const std::string& name : doomed) {
    ::unlink((dir_ + "/" + name).c_str());
  }
}

void WriteAheadLog::DiscardDurableState() {
  DOPPEL_CHECK(!logging_);
  file_mu_.lock();
  manifest_.checkpoint.clear();
  manifest_.live_segments.clear();
  Manifest::Save(dir_, manifest_);
  file_mu_.unlock();
}

void WriteAheadLog::StartLogging() {
  DOPPEL_CHECK(!logging_);
  file_mu_.lock();
  SweepUnreferencedLocked();
  const std::uint64_t seg = manifest_.next_segment;
  OpenSegmentLocked(seg);
  manifest_.live_segments.push_back(seg);
  manifest_.next_segment = seg + 1;
  Manifest::Save(dir_, manifest_);
  file_mu_.unlock();
  logging_ = true;
  flusher_ = std::thread([this] { FlusherMain(); });
}

void WriteAheadLog::Append(int worker_id, std::uint64_t commit_tid,
                           const std::vector<PendingWrite>& writes,
                           const std::vector<PendingWrite>& split_writes,
                           const WriteArena& arena) {
  const std::size_t n_ops = writes.size() + split_writes.size();
  if (n_ops == 0) {
    return;  // read-only transactions need no redo entry
  }
  // The entry header carries the op count as u16; silently truncating it would make a
  // CRC-valid entry that replays only a subset of a committed transaction's writes.
  DOPPEL_CHECK(n_ops <= 0xffff);
  Buffer& buf = buffers_[static_cast<std::size_t>(worker_id) % kBuffers];
  buf.mu.lock();
  // Encode straight into the batch buffer: reserve the length/CRC header, lay the entry
  // body down after it, then backpatch the header from the in-place bytes. One encode,
  // zero staging copies per logged commit.
  const std::size_t header_at = buf.bytes.size();
  PutRaw(buf.bytes, std::uint32_t{0});  // payload_len, backpatched
  PutRaw(buf.bytes, std::uint32_t{0});  // payload_crc, backpatched
  const std::size_t body_at = buf.bytes.size();
  PutRaw(buf.bytes, commit_tid);
  PutRaw(buf.bytes, static_cast<std::uint16_t>(n_ops));
  for (const PendingWrite& w : writes) {
    PutOp(buf.bytes, w, arena);
  }
  for (const PendingWrite& w : split_writes) {
    PutOp(buf.bytes, w, arena);
  }
  const std::uint32_t len = static_cast<std::uint32_t>(buf.bytes.size() - body_at);
  const std::uint32_t crc = Crc32(buf.bytes.data() + body_at, len);
  std::memcpy(buf.bytes.data() + header_at, &len, sizeof(len));
  std::memcpy(buf.bytes.data() + header_at + sizeof(len), &crc, sizeof(crc));
  buf.mu.unlock();
  appended_.fetch_add(1, std::memory_order_relaxed);
}

void WriteAheadLog::FlushLocked() {
  DOPPEL_CHECK(fd_ >= 0);
  // Steal each buffer with an O(1) swap instead of copying under its spinlock: a
  // worker appending into a buffer whose accumulated batch is being gathered must not
  // stall behind a multi-megabyte memcpy. The buffer gets last cycle's recycled
  // vector (empty, grown) in exchange, so appends keep their amortized capacity.
  struct TakenChunk {
    Buffer* buf;
    std::vector<char> bytes;
  };
  std::vector<TakenChunk> taken;
  for (Buffer& buf : buffers_) {
    buf.mu.lock();
    if (!buf.bytes.empty()) {
      taken.push_back(TakenChunk{&buf, {}});
      taken.back().bytes.swap(buf.bytes);
      buf.bytes.swap(buf.spare);
    }
    buf.mu.unlock();
  }
  if (taken.empty()) {
    return;
  }
  std::size_t total = 0;
  for (TakenChunk& chunk : taken) {
    WriteFully(fd_, chunk.bytes.data(), chunk.bytes.size());
    total += chunk.bytes.size();
    // Return the grown vector as the buffer's next spare.
    chunk.bytes.clear();
    chunk.buf->mu.lock();
    chunk.buf->spare.swap(chunk.bytes);
    chunk.buf->mu.unlock();
  }
  if (opts_.fsync) {
    DOPPEL_CHECK(::fsync(fd_) == 0);
  }
  active_bytes_ += total;
  flushes_.fetch_add(1, std::memory_order_relaxed);
  flushed_bytes_.fetch_add(total, std::memory_order_relaxed);
  if (active_bytes_ >= opts_.segment_bytes) {
    RotateLocked();
  }
}

void WriteAheadLog::RotateLocked() {
  // Seal the active segment. Its bytes' durability follows the fsync policy: with
  // wal_fsync off, sealed data still rides on OS writeback (asynchronous durability).
  if (opts_.fsync) {
    DOPPEL_CHECK(::fsync(fd_) == 0);
  }
  ::close(fd_);
  const std::uint64_t seg = manifest_.next_segment;
  OpenSegmentLocked(seg);
  manifest_.live_segments.push_back(seg);
  manifest_.next_segment = seg + 1;
  Manifest::Save(dir_, manifest_);
}

void WriteAheadLog::Flush() {
  file_mu_.lock();
  if (fd_ >= 0) {
    FlushLocked();
  }
  file_mu_.unlock();
}

CheckpointStats WriteAheadLog::WriteCheckpoint(const Store& store) {
  DOPPEL_CHECK(logging_);
  file_mu_.lock();
  // Everything committed is in the buffers (workers are quiesced past their last
  // commit); flush it, then seal so the sealed set is exactly the checkpoint's past.
  FlushLocked();
  RotateLocked();
  std::vector<std::uint64_t> sealed = manifest_.live_segments;
  sealed.pop_back();  // the freshly-opened active segment stays live

  const std::string ckpt_name = Manifest::CheckpointFileName(active_segment_);
  const CheckpointStats stats = Checkpoint::Write(dir_, ckpt_name, store);

  const std::string old_ckpt = manifest_.checkpoint;
  manifest_.checkpoint = ckpt_name;
  manifest_.live_segments = {active_segment_};
  Manifest::Save(dir_, manifest_);

  // Only now are the sealed segments (and the previous checkpoint) unreferenced by any
  // manifest a crash could resurrect.
  for (std::uint64_t seg : sealed) {
    ::unlink((dir_ + "/" + Manifest::SegmentFileName(seg)).c_str());
  }
  if (!old_ckpt.empty()) {
    ::unlink((dir_ + "/" + old_ckpt).c_str());
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  file_mu_.unlock();
  return stats;
}

void WriteAheadLog::FlusherMain() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(opts_.flush_interval_us));
    // try_lock, not lock: a checkpoint holds file_mu_ for a full store serialization
    // plus fsyncs, and a background cadence tick must skip that window instead of
    // burning a core spinning on it. The buffers just carry over to the next tick.
    if (file_mu_.try_lock()) {
      if (fd_ >= 0) {
        FlushLocked();
      }
      file_mu_.unlock();
    }
  }
}

}  // namespace doppel
