// Public configuration for a Database instance.
#ifndef DOPPEL_SRC_CORE_OPTIONS_H_
#define DOPPEL_SRC_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "src/store/epoch.h"

namespace doppel {

class IoEnv;  // src/persist/io_env.h

enum class Protocol : std::uint8_t {
  kDoppel = 0,  // phase reconciliation (the paper's contribution)
  kOcc = 1,     // Silo-style OCC baseline
  kTwoPL = 2,   // two-phase locking baseline
  kAtomic = 3,  // atomic-instruction upper bound (single-op transactions only)
};

const char* ProtocolName(Protocol p);

// Contention classifier knobs (§5.5). Defaults are tuned for the paper's workloads; the
// ablation bench sweeps them.
struct ClassifierOptions {
  // Sample 1 in `sample_every` commit-time conflicts during joined phases. Conflicts are
  // already the slow path, so the default samples every abort; raise this on machines
  // with very high abort rates (ablation B sweeps it).
  std::uint32_t sample_every = 1;
  // A record qualifies for splitting when its sampled conflict count over one joined
  // phase reaches both an absolute floor and a fraction of all sampled conflicts.
  std::uint64_t min_conflicts = 4;
  double split_conflict_fraction = 0.01;
  // ... and when at least this share of its conflicts involve a splittable operation.
  // Conflicts attributed to reads (kGet) predict stashes, which cost up to a phase of
  // latency each; 0.25 reproduces the paper's LIKE behaviour of splitting only once
  // ~30% of transactions write (§8.5) and keeps read-mostly records reconciled.
  double min_splittable_fraction = 0.25;
  // Upper bound on simultaneously split records.
  int max_split_records = 64;
  // Retention (split-phase write sampling): a split record stays split while it collects
  // at least `min_split_writes` slice writes per split phase...
  std::uint32_t min_split_writes = 64;
  // ... and while stashed accesses don't exceed `unsplit_stash_ratio` x writes.
  double unsplit_stash_ratio = 2.5;
  // After a stash-pressure unsplit, don't re-split the record for this many phase cycles.
  std::uint32_t resplit_suppress_phases = 16;

  // ---- Per-partition scan-conflict signal (ordered-index telemetry) ----
  // An index partition's sampled scan conflicts over one joined phase must reach this
  // floor before the classifier acts on the partition at all.
  std::uint64_t min_scan_conflicts = 8;
  // When at least this share of a contended partition's scan conflicts pin one interior
  // record (the sampler's majority vote), that record becomes a split candidate on its
  // winning writers' operation — even if its own record-level conflicts are all reads
  // (scanners losing validation charge kGet, which min_splittable_fraction would
  // otherwise refuse forever).
  double scan_vote_fraction = 0.5;
};

// Adaptive ordered-index partitioning (coordinator-driven, Doppel only). Tables
// registered with PartitionConfig::adaptive get their boundary shift narrowed at phase
// barriers — with every worker quiesced — when the per-partition telemetry shows the
// load collapsing onto one stripe.
struct IndexTuneOptions {
  // Master switch for coordinator narrowing.
  bool adaptive_enabled = true;
  // Evaluate a table only once it has absorbed this many new inserts since the last
  // evaluation (the share test below is meaningless on a trickle).
  std::uint64_t min_inserts = 4096;
  // Narrow when one stripe absorbed at least this share of the interval's inserts.
  double hot_stripe_fraction = 0.5;
  // ... or when the table's stripes absorbed this many new scan conflicts (phantom
  // pressure: inserts keep invalidating scans of a too-wide stripe).
  std::uint64_t scan_conflict_pressure = 64;
};

struct Options {
  Protocol protocol = Protocol::kDoppel;
  // 0 = one worker per available CPU.
  int num_workers = 0;
  // Phase change cadence (§5.4: "usually starts a phase change every 20 milliseconds").
  std::uint64_t phase_us = 20000;
  bool pin_threads = false;
  // Expected record count (the store does not resize).
  std::size_t store_capacity = std::size_t{1} << 20;

  ClassifierOptions classifier;
  IndexTuneOptions index_tune;
  // Epoch-based reclamation of deleted records (src/store/epoch.h). Ignored — treated
  // as disabled — under Protocol::kAtomic, whose lock-free writers defeat the sweep
  // protocol's try-lock proof.
  ReclaimOptions reclaim;
  // Disable automatic detection; only manually labeled records split (ablation §5.5).
  bool manual_split_only = false;

  // Exponential backoff for conflict retries (§8.1).
  std::uint64_t backoff_min_us = 2;
  std::uint64_t backoff_max_us = 1000;

  // Capacity of each per-worker submission inbox (rounded up to a power of two). When
  // every inbox is full, TrySubmit reports SubmitStatus::kQueueFull (backpressure) and
  // blocking Submit spins until a slot frees up.
  std::size_t submit_inbox_capacity = 1024;

  // Transactions a worker runs per hot-loop pass before re-checking phase state and
  // re-reading the clock: inbox pops are batched and the per-transaction fixed costs
  // (BetweenTxns, retry-heap due check, timestamp reads) amortize across the batch.
  // Batches are executed back to back in microseconds, so phase-change acknowledgement
  // latency stays far below any sane phase_us; 1 restores unbatched behaviour.
  int worker_batch = 16;

  // Durability (extension, §3 of the paper): when non-empty, this directory holds the
  // persistence state — segmented redo logs plus checkpoints under a MANIFEST.
  // Committed transactions' logical operations are appended by an asynchronous batched
  // flusher; commits never wait for disk. On Start the directory is recovered into the
  // store (checkpoint + parallel segment replay) before workers spawn. See
  // src/persist/wal.h.
  const char* wal_dir = "";
  std::uint64_t wal_flush_us = 2000;
  // fsync the active segment on every group-commit flush (and on seal). Off by
  // default: flushed data then survives process death but not OS/power failure — the
  // paper's asynchronous-durability regime. Benches report the overhead either way.
  bool wal_fsync = false;
  // Seal the active segment and rotate once it exceeds this size.
  std::uint64_t wal_segment_bytes = 8ull << 20;
  // Doppel only: the coordinator takes a consistent checkpoint at a joined-phase
  // quiesce barrier at least this often (0 = only when RequestCheckpoint is called).
  // Each checkpoint truncates the sealed log segments it subsumes, bounding recovery
  // cost by the log volume since the last barrier-aligned snapshot.
  std::uint64_t checkpoint_interval_us = 0;
  // Threads for partitioned segment replay on Start (0 = auto).
  int recovery_threads = 0;
  // Doppel only: emit a replication-cut WAL record at every joined-phase quiesce
  // barrier even when no replica is attached. Cuts are emitted automatically while any
  // retention lease is held (an attached replica), so this is mainly for tests and for
  // pre-populating a log a replica will bootstrap from later. See
  // WriteAheadLog::AppendCut and src/replica/replica.h.
  bool replication_cuts = false;
  // I/O environment for every persistence-layer syscall (nullptr = the passthrough
  // default). Test hook: fault-injection tests install a FaultInjectingIoEnv here to
  // exercise the error taxonomy and degraded mode deterministically.
  IoEnv* io_env = nullptr;
  // Replay the persistence directory into the store on Start. Disabling it DISCARDS
  // the directory's durable state (manifest is repointed at nothing and old files are
  // swept): the new generation's TID clocks restart, so its log can never legally
  // coexist with the old one. For tools/benches that want logging without recovery.
  bool recover_on_start = true;

  // Split-phase feedback (§5.4): hurry the next joined phase when too large a share of
  // split-phase transactions is being stashed (they are deferred work that only the next
  // joined phase can retire).
  std::uint64_t stash_hard_limit = std::uint64_t{1} << 16;
  double hurry_stash_fraction = 0.3;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_CORE_OPTIONS_H_
