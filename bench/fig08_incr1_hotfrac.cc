// Figure 8: "Total throughput for INCR1 as a function of the percentage of transactions
// that increment the single hot key." Series: Doppel, OCC, 2PL, Atomic.
#include <memory>

#include "bench/bench_common.h"
#include "src/workload/incr.h"

namespace doppel {
namespace {

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const std::uint64_t keys = flags.Keys(100000);
  const std::vector<int> hot_pcts = flags.full
                                        ? std::vector<int>{0,  2,  5,  10, 20, 30, 40,
                                                           50, 60, 70, 80, 90, 100}
                                        : std::vector<int>{0, 10, 50, 100};
  const Protocol protocols[] = {Protocol::kDoppel, Protocol::kOcc, Protocol::kTwoPL,
                                Protocol::kAtomic};

  std::printf("Figure 8: INCR1 throughput vs %% of transactions on the hot key\n");
  std::printf("threads=%d keys=%llu phase=%llums\n\n", flags.ResolvedThreads(),
              static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(flags.phase_ms));

  Table table({"hot%", "Doppel", "OCC", "2PL", "Atomic", "doppel_split"});
  std::atomic<std::uint64_t> hot{0};
  for (int pct : hot_pcts) {
    std::vector<std::string> row{std::to_string(pct)};
    std::size_t split_records = 0;
    for (Protocol p : protocols) {
      auto point = bench::MeasurePoint(
          flags, /*default_seconds=*/0.4,
          [&] {
            auto db = std::make_unique<Database>(
                bench::BaseOptions(flags, p, keys * 2));
            PopulateIncr(db->store(), keys);
            return db;
          },
          [&] {
            return MakeIncr1Factory(keys, static_cast<std::uint32_t>(pct), &hot);
          });
      row.push_back(FormatCount(point.throughput.mean()));
      if (p == Protocol::kDoppel) {
        split_records = point.last.split_records;
      }
    }
    row.push_back(std::to_string(split_records));
    table.AddRow(std::move(row));
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
