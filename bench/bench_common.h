// Shared flag parsing and run plumbing for the benchmark binaries.
//
// Every bench accepts:
//   --threads=N      worker threads (default: all CPUs)
//   --seconds=F      measurement seconds per point (default CI-sized per bench)
//   --runs=N         consecutive runs per point, reported as mean [min,max] (default 1)
//   --keys=N         key-space size where applicable
//   --phase-ms=N     Doppel phase length (default 20, as in the paper)
//   --full           paper-scale parameters (1M keys, 20s runs, 3 repeats)
//   --csv            also emit csv rows
//   --wal-dir=PATH   enable durability logging into PATH (each point prints a
//                    "wal: ..." summary line, so logging overhead is visible in any
//                    bench; each point discards the previous point's durable state
//                    rather than recovering it — this measures logging, not replay)
//   --wal-fsync      fsync every group-commit flush (with --wal-dir)
//   --replica        attach a phase-aligned read replica for each point (with
//                    --wal-dir); the summary line grows replica shipping/apply
//                    watermarks and the publish-lag p99
#ifndef DOPPEL_BENCH_BENCH_COMMON_H_
#define DOPPEL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/cpu.h"
#include "src/core/database.h"
#include "src/replica/replica.h"
#include "src/workload/driver.h"
#include "src/workload/report.h"

namespace doppel {
namespace bench {

struct Flags {
  int threads = 0;  // 0 = NumCpus()
  double seconds = 0.0;
  int runs = 1;
  std::uint64_t keys = 0;
  std::uint64_t phase_ms = 20;
  bool full = false;
  bool csv = false;
  std::string wal_dir;  // empty = logging off
  bool wal_fsync = false;
  bool replica = false;  // attach a read replica per point (needs --wal-dir)

  int ResolvedThreads() const { return threads > 0 ? threads : NumCpus(); }
  std::uint64_t MeasureMs(double default_seconds) const {
    const double s = seconds > 0.0 ? seconds : (full ? 20.0 : default_seconds);
    return static_cast<std::uint64_t>(s * 1000.0);
  }
  int Runs() const { return full && runs == 1 ? 3 : runs; }
  std::uint64_t Keys(std::uint64_t ci_default) const {
    return keys > 0 ? keys : (full ? 1000000 : ci_default);
  }
};

inline Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
    };
    if (const char* v = val("--threads=")) {
      f.threads = std::atoi(v);
    } else if (const char* v = val("--seconds=")) {
      f.seconds = std::atof(v);
    } else if (const char* v = val("--runs=")) {
      f.runs = std::atoi(v);
    } else if (const char* v = val("--keys=")) {
      f.keys = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--phase-ms=")) {
      f.phase_ms = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--wal-dir=")) {
      f.wal_dir = v;
    } else if (std::strcmp(a, "--wal-fsync") == 0) {
      f.wal_fsync = true;
    } else if (std::strcmp(a, "--replica") == 0) {
      f.replica = true;
    } else if (std::strcmp(a, "--full") == 0) {
      f.full = true;
    } else if (std::strcmp(a, "--csv") == 0) {
      f.csv = true;
    } else if (std::strcmp(a, "--help") == 0) {
      std::printf(
          "flags: --threads=N --seconds=F --runs=N --keys=N --phase-ms=N --full --csv "
          "--wal-dir=PATH --wal-fsync --replica\n");
      std::exit(0);
    }
  }
  return f;
}

inline Options BaseOptions(const Flags& f, Protocol p, std::size_t capacity) {
  Options o;
  o.protocol = p;
  o.num_workers = f.ResolvedThreads();
  o.phase_us = f.phase_ms * 1000;
  o.store_capacity = capacity;
  if (!f.wal_dir.empty()) {
    // The pointer aliases the Flags string: bench flags outlive every Database they
    // configure. Recovery is skipped (which discards the previous point's durable
    // state) — each point measures logging overhead, not replay.
    o.wal_dir = f.wal_dir.c_str();
    o.wal_fsync = f.wal_fsync;
    o.recover_on_start = false;
  }
  return o;
}

// Mean throughput over f.Runs() fresh databases, built and populated by `make_db` and
// driven by `make_factory`.
struct PointResult {
  RunStats throughput;
  RunMetrics last;
};

template <typename MakeDb, typename MakeFactory>
PointResult MeasurePoint(const Flags& f, double default_seconds, MakeDb&& make_db,
                         MakeFactory&& make_factory) {
  PointResult r;
  for (int run = 0; run < f.Runs(); ++run) {
    auto db = make_db();
    std::unique_ptr<Replica> replica;
    const auto on_started = [&](Database& started) {
      if (f.replica && !f.wal_dir.empty()) {
        replica = AttachReplica(started);
      }
    };
    RunMetrics m = RunWorkload(*db, make_factory(), f.MeasureMs(default_seconds),
                               /*warmup_ms=*/f.full ? 500 : 100, on_started);
    if (replica != nullptr) {
      replica->WaitCaughtUp(/*timeout_ms=*/5000);
      FillReplicaMetrics(*replica, &m);
      replica->Stop();
      replica.reset();  // before the primary Database is destroyed
    }
    r.throughput.Add(m.throughput);
    r.last = std::move(m);
  }
  if (r.last.wal_enabled) {
    std::printf("%s\n", WalSummary(r.last).c_str());
  }
  return r;
}

inline const char* kProtocolHeader[] = {"Doppel", "OCC", "2PL", "Atomic"};

}  // namespace bench
}  // namespace doppel

#endif  // DOPPEL_BENCH_BENCH_COMMON_H_
