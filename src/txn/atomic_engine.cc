#include "src/txn/atomic_engine.h"

#include <utility>

namespace doppel {

Record* AtomicEngine::Route(Worker& w, const Key& key, RecordType type,
                            std::size_t topk_k) {
  return RouteInStore(w, store_, key, type, topk_k);
}

Record* AtomicEngine::RouteDelete(Worker& w, const Key& key) {
  return RouteAnyType(w, store_, key, RecordType::kInt64, 0);
}

void AtomicEngine::Read(Worker& w, Txn& txn, Record* r, ReadResult* out) {
  (void)w;
  (void)txn;
  if (r->type() == RecordType::kInt64) {
    const Record::IntSnapshot s = r->ReadInt();
    out->present = s.present;
    out->i = s.value;
    return;
  }
  Record::ComplexSnapshot s = r->ReadComplex();
  out->present = s.present;
  out->complex = std::move(s.value);
}

void AtomicEngine::Write(Worker& w, Txn& txn, PendingWrite&& pw) {
  (void)w;
  const WriteArena& arena = txn.arena();
  Record* r = pw.record;
  // Racy first-presence detection (no lock discipline in this engine); the index insert
  // below is idempotent, so a double-detect costs nothing.
  const bool was_present = pw.op != OpCode::kGet && r->PresentLocked();
  if (pw.op == OpCode::kDelete) {
    // The one op this engine runs under the record's OCC lock: the present -> absent
    // transition must be exclusive with the index maintenance (the Insert/Remove
    // callers' contract), and unlike the atomics above it cannot be expressed as a
    // single hardware instruction. Records deleted under this engine stay absent but
    // are never physically reclaimed — the epoch sweeper's dead-flag protocol assumes
    // writers lock, which this engine's other ops do not.
    r->LockOcc();
    const bool present = r->PresentLocked();
    r->SetAbsent();
    r->NoteWriteOp(static_cast<std::uint8_t>(OpCode::kDelete));
    if (present) {
      store_.index().Remove(r->key());
    }
    r->UnlockOcc();
    return;
  }
  switch (pw.op) {
    case OpCode::kAdd:
      r->AtomicAdd(pw.n);
      break;
    case OpCode::kMax:
      r->AtomicMax(pw.n);
      break;
    case OpCode::kMin:
      r->AtomicMin(pw.n);
      break;
    case OpCode::kMult:
      r->AtomicMult(pw.n);
      break;
    case OpCode::kPutInt:
      r->SetInt(pw.n);
      break;
    case OpCode::kPutBytes: {
      const std::string_view payload = pw.PayloadOf(arena);
      r->MutateComplex([&](ComplexValue& cv) {
        std::get<std::string>(cv).assign(payload.data(), payload.size());
      });
      break;
    }
    case OpCode::kOPut:
      r->MutateComplex([&](ComplexValue& cv) {
        auto& cur = std::get<OrderedTuple>(cv);
        OrderedTuple next{pw.OrderOf(arena), pw.core, std::string(pw.PayloadOf(arena))};
        // A never-written OrderedTuple holds order -inf, so the first put wins.
        if (OrderedTuple::Wins(next, cur)) {
          cur = std::move(next);
        }
      });
      break;
    case OpCode::kTopKInsert:
      r->MutateComplex([&](ComplexValue& cv) {
        std::get<TopKSet>(cv).Insert(
            OrderedTuple{pw.OrderOf(arena), pw.core, std::string(pw.PayloadOf(arena))});
      });
      break;
    case OpCode::kDelete:  // handled above the switch
    case OpCode::kGet:
      break;
  }
  if (pw.op != OpCode::kGet && !was_present) {
    store_.index().Insert(r->key(), r);
  }
}

std::size_t AtomicEngine::Scan(Worker& w, Txn& txn, std::uint64_t table, std::uint64_t lo,
                               std::uint64_t hi, std::size_t limit, ScanFn fn) {
  if (lo > hi) {
    return 0;
  }
  OrderedIndex::TableIndex& tab = store_.index().GetOrCreateTable(table);
  const std::size_t p_lo = tab.PartitionOf(lo);
  const std::size_t p_hi = tab.PartitionOf(hi);
  std::size_t visited = 0;
  Txn::ScanScratchLease lease(txn.scan_batch());
  auto& batch = lease.get();
  for (std::size_t p = p_lo; p <= p_hi; ++p) {
    batch.clear();
    OrderedIndex::SnapshotRange(tab.partitions[p], lo, hi,
                                limit == 0 ? 0 : limit - visited, &batch);
    for (const auto& [key_lo, rec] : batch) {
      (void)key_lo;
      ReadResult res;
      Read(w, txn, rec, &res);
      if (!res.present) {
        continue;
      }
      ++visited;
      if (!fn(rec->key(), res)) {
        return visited;
      }
      if (limit != 0 && visited >= limit) {
        return visited;
      }
    }
  }
  return visited;
}

TxnStatus AtomicEngine::Commit(Worker& w, Txn& txn) {
  (void)w;
  (void)txn;
  return TxnStatus::kCommitted;
}

void AtomicEngine::Abort(Worker& w, Txn& txn) {
  (void)w;
  (void)txn;
}

}  // namespace doppel
