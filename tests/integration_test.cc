// Cross-engine integration tests: identical deterministic operation multisets applied
// concurrently under every protocol must converge to the same final store; mixed-type
// stress across phase cycles keeps all typed invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "src/core/database.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::IntAt;

// A deterministic operation stream over a small key space, all commutative ops (order
// across clients must not matter). Issued via Execute so every op provably commits.
void ApplyDeterministicOp(Txn& t, int client, int index) {
  std::uint64_t s = static_cast<std::uint64_t>(client) * 1000003 +
                    static_cast<std::uint64_t>(index);
  const std::uint64_t r1 = SplitMix64(s);
  const std::uint64_t r2 = SplitMix64(s);
  const std::uint64_t key = r1 % 8;
  const std::int64_t n = static_cast<std::int64_t>(r2 % 1000) - 500;
  switch (r2 % 4) {
    case 0:
      t.Add(Key::FromU64(key), n);
      break;
    case 1:
      t.Max(Key::FromU64(100 + key), n);
      break;
    case 2:
      t.Min(Key::FromU64(200 + key), n);
      break;
    default:
      t.TopKInsert(Key::FromU64(300), OrderKey{n, static_cast<std::int64_t>(key)},
                   std::to_string(n), 6);
      break;
  }
}

// Expected final state computed serially.
struct Expected {
  std::map<std::uint64_t, std::int64_t> adds;
  std::map<std::uint64_t, std::int64_t> maxes;
  std::map<std::uint64_t, std::int64_t> mins;
  TopKSet topk{6};
};

Expected ComputeExpected(int clients, int ops_per_client) {
  Expected e;
  for (int c = 0; c < clients; ++c) {
    for (int i = 0; i < ops_per_client; ++i) {
      std::uint64_t s = static_cast<std::uint64_t>(c) * 1000003 +
                        static_cast<std::uint64_t>(i);
      const std::uint64_t r1 = SplitMix64(s);
      const std::uint64_t r2 = SplitMix64(s);
      const std::uint64_t key = r1 % 8;
      const std::int64_t n = static_cast<std::int64_t>(r2 % 1000) - 500;
      switch (r2 % 4) {
        case 0:
          e.adds[key] += n;
          break;
        case 1: {
          auto [it, fresh] = e.maxes.try_emplace(100 + key, n);
          if (!fresh) {
            it->second = std::max(it->second, n);
          }
          break;
        }
        case 2: {
          auto [it, fresh] = e.mins.try_emplace(200 + key, n);
          if (!fresh) {
            it->second = std::min(it->second, n);
          }
          break;
        }
        default:
          e.topk.Insert(OrderedTuple{OrderKey{n, static_cast<std::int64_t>(key)}, 0,
                                     std::to_string(n)});
          break;
      }
    }
  }
  return e;
}

class CrossEngineParity : public ::testing::TestWithParam<Protocol> {};

INSTANTIATE_TEST_SUITE_P(Protocols, CrossEngineParity,
                         ::testing::Values(Protocol::kDoppel, Protocol::kOcc,
                                           Protocol::kTwoPL, Protocol::kAtomic),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

TEST_P(CrossEngineParity, DeterministicStreamsConverge) {
  constexpr int kClients = 2;
  constexpr int kOps = 3000;
  Options o;
  o.protocol = GetParam();
  o.num_workers = 2;
  o.phase_us = 2000;
  o.store_capacity = 1 << 12;
  Database db(o);
  // Pre-create the Add keys so absent-record semantics are identical everywhere.
  for (std::uint64_t k = 0; k < 8; ++k) {
    db.store().LoadInt(Key::FromU64(k), 0);
  }
  db.Start();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kOps; ++i) {
        ASSERT_TRUE(
            db.Execute([&](Txn& t) { ApplyDeterministicOp(t, c, i); }).committed);
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  db.Stop();

  const Expected e = ComputeExpected(kClients, kOps);
  for (const auto& [key, sum] : e.adds) {
    EXPECT_EQ(IntAt(db.store(), Key::FromU64(key)), sum) << "add key " << key;
  }
  for (const auto& [key, m] : e.maxes) {
    EXPECT_EQ(IntAt(db.store(), Key::FromU64(key)), m) << "max key " << key;
  }
  for (const auto& [key, m] : e.mins) {
    EXPECT_EQ(IntAt(db.store(), Key::FromU64(key)), m) << "min key " << key;
  }
  const auto topk = std::get<TopKSet>(db.store().ReadSnapshot(Key::FromU64(300)).value);
  ASSERT_EQ(topk.size(), e.topk.size());
  for (std::size_t i = 0; i < topk.size(); ++i) {
    EXPECT_EQ(topk.items()[i].order, e.topk.items()[i].order) << i;
  }
}

// Long-running mixed stress under Doppel with aggressive phase cycling: reads, writes,
// inserts, user aborts; every invariant checked at the end.
TEST(Integration, DoppelMixedStressStaysConsistent) {
  Options o;
  o.protocol = Protocol::kDoppel;
  o.num_workers = 2;
  o.phase_us = 1000;  // 1ms phases: hundreds of cycles
  o.store_capacity = 1 << 14;
  Database db(o);
  const Key counter = Key::FromU64(1);
  const Key maxkey = Key::FromU64(2);
  db.store().LoadInt(counter, 0);
  db.store().LoadInt(maxkey, 0);

  struct StressSource : TxnSource {
    TxnRequest Next(Worker& w) override {
      TxnRequest r;
      const std::uint64_t kind = w.rng.NextBounded(10);
      r.args.n = static_cast<std::int64_t>(w.rng.NextBounded(1000000));
      if (kind < 5) {
        r.proc = +[](Txn& t, const TxnArgs& a) {
          t.Add(Key::FromU64(1), 1);
          t.Max(Key::FromU64(2), a.n);
        };
        r.args.tag = kTagWrite;
      } else if (kind < 8) {
        r.proc = +[](Txn& t, const TxnArgs&) {
          const auto c = t.GetInt(Key::FromU64(1));
          const auto m = t.GetInt(Key::FromU64(2));
          // Reads may be nullopt only before any write committed.
          if (c.has_value() && c.value() < 0) {
            t.UserAbort();
          }
          (void)m;
        };
        r.args.tag = kTagRead;
      } else {
        r.proc = +[](Txn& t, const TxnArgs& a) {
          t.PutBytes(Key::Table(5, a.n % 97), "blob" + std::to_string(a.n));
        };
        r.args.tag = kTagWrite;
      }
      return r;
    }
  };
  db.Start([](int) { return std::make_unique<StressSource>(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  db.Stop();

  const auto stats = db.CollectStats();
  EXPECT_GT(stats.committed, 0u);
  EXPECT_EQ(stats.user_aborts, 0u);  // the counter never goes negative
  // Every counter increment came from a committed write transaction.
  EXPECT_GT(IntAt(db.store(), counter), 0);
  EXPECT_LE(static_cast<std::uint64_t>(IntAt(db.store(), counter)),
            stats.committed_by_tag[kTagWrite]);
  EXPECT_GE(IntAt(db.store(), maxkey), 0);
  EXPECT_LT(IntAt(db.store(), maxkey), 1000000);
}

// Database lifecycle edge cases.
TEST(Integration, StopIsIdempotentAndDestructorSafe) {
  Options o;
  o.protocol = Protocol::kDoppel;
  o.num_workers = 2;
  o.store_capacity = 1 << 8;
  auto db = std::make_unique<Database>(o);
  db->store().LoadInt(Key::FromU64(1), 0);
  db->Start();
  ASSERT_TRUE(db->Execute([](Txn& t) { t.Add(Key::FromU64(1), 1); }).committed);
  db->Stop();
  db->Stop();      // idempotent
  db.reset();      // destructor after Stop
  SUCCEED();
}

TEST(Integration, DatabaseNeverStartedDestructsCleanly) {
  Options o;
  o.protocol = Protocol::kDoppel;
  o.store_capacity = 1 << 8;
  Database db(o);
  db.store().LoadInt(Key::FromU64(1), 5);
  SUCCEED();
}

TEST(Integration, ZeroWorkerCountDefaultsToCpus) {
  Options o;
  o.protocol = Protocol::kOcc;
  o.num_workers = 0;
  o.store_capacity = 1 << 8;
  Database db(o);
  EXPECT_GE(db.num_workers(), 1);
}

}  // namespace
}  // namespace doppel
