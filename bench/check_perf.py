#!/usr/bin/env python3
"""Compare a fresh perf_smoke JSON against the committed baseline.

Usage: check_perf.py BASELINE.json CURRENT.json [--max-regression=0.40]

Exits non-zero only on a catastrophic regression: any (engine, config) point whose
commits_per_sec dropped by more than the threshold relative to the baseline. CI machines
are noisy, so this is a tripwire for order-of-magnitude breakage, not a gate on small
deltas — the tracked trajectory in BENCH_*.json is what PRs reason about.
"""
import json
import sys


def load_points(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["engine"], r["config"], r["hot_pct"]): r for r in doc["results"]}


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    threshold = 0.40
    for a in argv[3:]:
        if a.startswith("--max-regression="):
            threshold = float(a.split("=", 1)[1])
    baseline = load_points(argv[1])
    current = load_points(argv[2])
    failures = []
    for key, base in baseline.items():
        cur = current.get(key)
        if cur is None:
            print(f"note: point {key} missing from current run (skipped)")
            continue
        b, c = base["commits_per_sec"], cur["commits_per_sec"]
        if b <= 0:
            continue
        delta = (c - b) / b
        marker = "REGRESSION" if delta < -threshold else "ok"
        print(f"{key}: baseline={b:.0f} current={c:.0f} delta={delta:+.1%} [{marker}]")
        if delta < -threshold:
            failures.append(key)
    if failures:
        print(f"\ncatastrophic regression (> {threshold:.0%}) on: {failures}")
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
