// Cross-engine semantic-equivalence fuzz for the refactored commit path.
//
// Guards the arena-backed PendingWrite, the commit-time index sort, and the
// read-your-own-writes chains/index:
//
//  * SerialScriptsAgreeAcrossEngines — the same randomized mixed int/bytes/ordered/top-K
//    transaction script, executed serially (one worker, one Execute at a time), must
//    produce byte-identical mid-transaction observations (GetX after buffering writes —
//    the RYOW overlay), identical scan streams (engine rows + pending-insert merge), and
//    an identical final store under OCC, 2PL, and Doppel. Scripts include transactions
//    with many writes (exercising the lazy write index) and repeated writes to one
//    record in one transaction (exercising chain order + the index sort's stability).
//
//  * ContendedRetriesPreservePayloadIntegrity — a concurrent contended run per engine:
//    every transaction Add(counter)s, rewrites a bytes record with a key-deterministic
//    ~100-byte payload, and pushes a top-K tuple whose payload encodes its order.
//    Conflict retries re-execute bodies against a recycled arena; any stale-offset
//    aliasing would surface as a counter/commit mismatch or a corrupted payload.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/common/rand.h"
#include "src/core/database.h"
#include "src/workload/driver.h"

namespace doppel {
namespace {

constexpr std::uint64_t kIntTable = 1;
constexpr std::uint64_t kBytesTable = 2;
constexpr std::uint64_t kOrderedTable = 3;
constexpr std::uint64_t kTopKTable = 4;
constexpr std::uint64_t kIntKeys = 24;
constexpr std::uint64_t kBytesKeys = 8;
constexpr std::uint64_t kOrderedKeys = 8;
constexpr std::uint64_t kTopKKeys = 3;

std::uint64_t FuzzSeed() {
  const char* env = std::getenv("DOPPEL_FUZZ_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0xc0ffeeULL;
}

// One buffered operation of the generated script.
struct ScriptOp {
  OpCode op;
  std::uint64_t table;
  std::uint64_t lo;
  std::int64_t n;
  OrderKey order;
  std::string payload;
};

struct ScriptTxn {
  std::vector<ScriptOp> ops;
  // Post-write observation points (RYOW): int keys read back inside the transaction.
  std::vector<std::uint64_t> observe_int;
  // Full-table scan of kIntTable after the writes (records engine rows + own inserts).
  bool scan = false;
};

std::vector<ScriptTxn> GenerateScript(std::uint64_t seed, int txns) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<ScriptTxn> script;
  script.reserve(static_cast<std::size_t>(txns));
  // Deleting a key that never existed creates an absent placeholder of the delete's
  // fallback type (int64), which pins the key's type until physical reclamation. Only
  // delete bytes keys the script has already created, so no wrong-typed placeholder
  // ever makes a later PutBytes abort.
  std::vector<bool> bytes_created(kBytesKeys, false);
  for (int t = 0; t < txns; ++t) {
    ScriptTxn txn;
    // Mostly small transactions; every 8th is large enough to build the write index,
    // with repeated keys so same-record chains have length > 1.
    const int n_ops = t % 8 == 7 ? 10 + static_cast<int>(rng.NextBounded(8))
                                 : 1 + static_cast<int>(rng.NextBounded(5));
    for (int i = 0; i < n_ops; ++i) {
      ScriptOp op;
      switch (rng.NextBounded(12)) {
        case 0:
        case 1:
        case 2: {  // int RMW ops
          static const OpCode kInts[] = {OpCode::kAdd, OpCode::kMax, OpCode::kMin,
                                         OpCode::kMult};
          op.op = kInts[rng.NextBounded(4)];
          op.table = kIntTable;
          op.lo = rng.NextBounded(kIntKeys);
          op.n = op.op == OpCode::kMult
                     ? static_cast<std::int64_t>(1 + rng.NextBounded(2))
                     : static_cast<std::int64_t>(rng.NextBounded(2000)) - 1000;
          break;
        }
        case 3:
        case 4: {
          op.op = OpCode::kPutInt;
          op.table = kIntTable;
          op.lo = rng.NextBounded(kIntKeys);
          op.n = static_cast<std::int64_t>(rng.NextBounded(5000));
          break;
        }
        case 5:
        case 6: {
          op.op = OpCode::kPutBytes;
          op.table = kBytesTable;
          op.lo = rng.NextBounded(kBytesKeys);
          op.payload = "bytes-" + std::to_string(t) + "-" + std::to_string(i) +
                       std::string(rng.NextBounded(120), 'b');
          bytes_created[op.lo] = true;
          break;
        }
        case 7:
        case 8: {
          op.op = OpCode::kOPut;
          op.table = kOrderedTable;
          op.lo = rng.NextBounded(kOrderedKeys);
          op.order = OrderKey{static_cast<std::int64_t>(rng.NextBounded(50)),
                              static_cast<std::int64_t>(rng.NextBounded(3))};
          op.payload = "op-" + std::to_string(t) + "-" + std::to_string(i);
          break;
        }
        case 9: {
          op.op = OpCode::kTopKInsert;
          op.table = kTopKTable;
          op.lo = rng.NextBounded(kTopKKeys);
          op.order = OrderKey{static_cast<std::int64_t>(rng.NextBounded(1000)), 0};
          op.payload = "tk-" + std::to_string(t) + "-" + std::to_string(i);
          break;
        }
        default: {  // transactional delete; later writes to the same key reinsert it,
                    // exercising the delete -> absent -> fresh-insert lifecycle
          op.op = OpCode::kDelete;
          op.table = kIntTable;
          op.lo = rng.NextBounded(kIntKeys);
          if (!rng.Chance(50)) {
            const std::uint64_t cand = rng.NextBounded(kBytesKeys);
            if (bytes_created[cand]) {
              op.table = kBytesTable;
              op.lo = cand;
            }
          }
          break;
        }
      }
      txn.ops.push_back(std::move(op));
    }
    for (std::uint64_t k = 0; k < 2; ++k) {
      txn.observe_int.push_back(rng.NextBounded(kIntKeys));
    }
    txn.scan = rng.Chance(25);
    script.push_back(std::move(txn));
  }
  return script;
}

void IssueOp(Txn& txn, const ScriptOp& op) {
  const Key key = Key::Table(op.table, op.lo);
  switch (op.op) {
    case OpCode::kAdd:
      txn.Add(key, op.n);
      break;
    case OpCode::kMax:
      txn.Max(key, op.n);
      break;
    case OpCode::kMin:
      txn.Min(key, op.n);
      break;
    case OpCode::kMult:
      txn.Mult(key, op.n);
      break;
    case OpCode::kPutInt:
      txn.PutInt(key, op.n);
      break;
    case OpCode::kPutBytes:
      txn.PutBytes(key, op.payload);
      break;
    case OpCode::kOPut:
      txn.OPut(key, op.order, op.payload);
      break;
    case OpCode::kTopKInsert:
      txn.TopKInsert(key, op.order, op.payload, 4);
      break;
    case OpCode::kDelete:
      txn.Delete(key);
      break;
    case OpCode::kGet:
      break;
  }
}

// Everything an engine's serial execution of the script exposes: in-transaction
// observations, scan streams, and the final store contents.
struct ExecutionTrace {
  std::vector<std::string> log;

  void Note(const std::string& s) { log.push_back(s); }
};

std::string FormatValue(const Record::ValueSnapshot& snap) {
  if (!snap.present) {
    return "absent";
  }
  if (std::holds_alternative<std::int64_t>(snap.value)) {
    return std::to_string(std::get<std::int64_t>(snap.value));
  }
  if (std::holds_alternative<std::string>(snap.value)) {
    return std::get<std::string>(snap.value);
  }
  if (std::holds_alternative<OrderedTuple>(snap.value)) {
    const auto& t = std::get<OrderedTuple>(snap.value);
    return "ord(" + std::to_string(t.order.primary) + "," +
           std::to_string(t.order.secondary) + "," + std::to_string(t.core) + "," +
           t.payload + ")";
  }
  const auto& tk = std::get<TopKSet>(snap.value);
  std::string out = "topk[";
  for (const OrderedTuple& t : tk.items()) {
    out += "(" + std::to_string(t.order.primary) + "," + std::to_string(t.core) + "," +
           t.payload + ")";
  }
  return out + "]";
}

// The cross-layout dimension: the same scripts must trace identically whether the
// tables route through the RecordMap (kHash) or a direct-indexed FlatTable (kFlat).
enum class Layout { kHash, kFlat };

void RegisterFlatTables(Store& store) {
  // Every script table, registered flat over its exact key range — plus slack on the
  // int table so out-of-range fallback routing is NOT exercised there (the point is
  // to run the whole script through the flat path). Tiny initial arrays force growth
  // (and retired-array handling) mid-script.
  const struct {
    std::uint64_t table;
    std::uint64_t span;
  } kTables[] = {{kIntTable, kIntKeys},
                 {kBytesTable, kBytesKeys},
                 {kOrderedTable, kOrderedKeys},
                 {kTopKTable, kTopKKeys}};
  for (const auto& t : kTables) {
    TableOptions topts;
    topts.layout = TableLayout::kFlat;
    topts.flat_base = 0;
    topts.flat_span = t.span;
    topts.flat_initial_slots = 2;
    store.ConfigureTable(t.table, topts);
  }
}

ExecutionTrace RunScript(Protocol proto, const std::vector<ScriptTxn>& script,
                         Layout layout = Layout::kHash) {
  Options opts;
  opts.protocol = proto;
  opts.num_workers = 1;
  opts.store_capacity = 1 << 12;
  // Reclamation timing would make the trace nondeterministic (a swept placeholder
  // flips "absent" to "never-created" in the final dump); keep records in place.
  opts.reclaim.enabled = false;
  Database db(opts);
  if (layout == Layout::kFlat) {
    RegisterFlatTables(db.store());
  }
  db.Start();

  ExecutionTrace trace;
  for (std::size_t t = 0; t < script.size(); ++t) {
    const ScriptTxn& st = script[t];
    const TxnResult res = db.Execute([&](Txn& txn) {
      for (const ScriptOp& op : st.ops) {
        IssueOp(txn, op);
      }
      // RYOW observations: buffered writes must be visible through every accessor,
      // identically on every engine.
      for (std::uint64_t k : st.observe_int) {
        const auto v = txn.GetInt(Key::Table(kIntTable, k));
        trace.Note("obs " + std::to_string(t) + " k" + std::to_string(k) + " = " +
                   (v ? std::to_string(*v) : "absent"));
      }
      if (st.scan) {
        std::string row_log;
        txn.Scan(kIntTable, 0, kIntKeys, 0,
                 [&](const Key& key, const ReadResult& value) {
                   row_log += " " + std::to_string(key.lo) + ":" +
                              std::to_string(value.i);
                   return true;
                 });
        trace.Note("scan " + std::to_string(t) + row_log);
      }
    });
    EXPECT_TRUE(res.committed) << "serial transactions must commit";
  }

  db.Stop();

  // Final store contents, via type-generic snapshots.
  Store& store = db.store();
  auto dump = [&](std::uint64_t table, std::uint64_t keys, const char* label) {
    for (std::uint64_t k = 0; k < keys; ++k) {
      const Record* r = store.Find(Key::Table(table, k));
      trace.Note(std::string(label) + std::to_string(k) + " = " +
                 (r == nullptr ? "never-created" : FormatValue(r->ReadValue())));
    }
  };
  dump(kIntTable, kIntKeys, "int");
  dump(kBytesTable, kBytesKeys, "bytes");
  dump(kOrderedTable, kOrderedKeys, "ordered");
  dump(kTopKTable, kTopKKeys, "topk");
  return trace;
}

TEST(CommitEquivalenceFuzz, SerialScriptsAgreeAcrossEngines) {
  const std::uint64_t base_seed = FuzzSeed();
  for (std::uint64_t round = 0; round < 3; ++round) {
    const std::uint64_t seed = base_seed + round * 977;
    const std::vector<ScriptTxn> script = GenerateScript(seed, 200);
    ExecutionTrace occ = RunScript(Protocol::kOcc, script);
    ExecutionTrace twopl = RunScript(Protocol::kTwoPL, script);
    ExecutionTrace doppel = RunScript(Protocol::kDoppel, script);
    // Cross-layout: same engines, tables registered flat. One trace per engine — six
    // executions total must agree entry for entry.
    ExecutionTrace occ_flat = RunScript(Protocol::kOcc, script, Layout::kFlat);
    ExecutionTrace twopl_flat = RunScript(Protocol::kTwoPL, script, Layout::kFlat);
    ExecutionTrace doppel_flat = RunScript(Protocol::kDoppel, script, Layout::kFlat);
    ASSERT_EQ(occ.log.size(), twopl.log.size()) << "seed " << seed;
    ASSERT_EQ(occ.log.size(), doppel.log.size()) << "seed " << seed;
    ASSERT_EQ(occ.log.size(), occ_flat.log.size()) << "seed " << seed;
    ASSERT_EQ(occ.log.size(), twopl_flat.log.size()) << "seed " << seed;
    ASSERT_EQ(occ.log.size(), doppel_flat.log.size()) << "seed " << seed;
    for (std::size_t i = 0; i < occ.log.size(); ++i) {
      ASSERT_EQ(occ.log[i], twopl.log[i]) << "seed " << seed << " entry " << i;
      ASSERT_EQ(occ.log[i], doppel.log[i]) << "seed " << seed << " entry " << i;
      ASSERT_EQ(occ.log[i], occ_flat.log[i])
          << "flat layout diverged, seed " << seed << " entry " << i;
      ASSERT_EQ(occ.log[i], twopl_flat.log[i])
          << "flat layout diverged, seed " << seed << " entry " << i;
      ASSERT_EQ(occ.log[i], doppel_flat.log[i])
          << "flat layout diverged, seed " << seed << " entry " << i;
    }
  }
}

// ---- Concurrent part: payload integrity across conflict retries ----

constexpr std::uint64_t kContendedCounters = 4;

std::string CounterPayload(std::uint64_t k) {
  // ~100 bytes (heap range), fully determined by the key: any arena aliasing across a
  // retry re-execution produces a mismatch here.
  return std::string(90, static_cast<char>('a' + (k % 26))) + ":" + std::to_string(k);
}

std::string OrderPayload(std::int64_t order) { return "o=" + std::to_string(order); }

void ContendedProc(Txn& txn, const TxnArgs& args) {
  const std::uint64_t k = args.k1.lo;
  txn.Add(Key::Table(kIntTable, k), 1);
  txn.PutBytes(Key::Table(kBytesTable, k), CounterPayload(k));
  txn.TopKInsert(Key::Table(kTopKTable, 0), OrderKey{args.n, 0}, OrderPayload(args.n), 8);
}

class ContendedSource : public TxnSource {
 public:
  TxnRequest Next(Worker& w) override {
    TxnRequest r;
    r.proc = &ContendedProc;
    r.args.tag = kTagWrite;
    r.args.k1 = Key::Table(kIntTable, w.rng.NextBounded(kContendedCounters));
    r.args.n = static_cast<std::int64_t>(w.rng.NextBounded(100000));
    return r;
  }
};

class ContendedRetryTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(ContendedRetryTest, ContendedRetriesPreservePayloadIntegrity) {
  Options opts;
  opts.protocol = GetParam();
  opts.num_workers = 4;
  opts.store_capacity = 1 << 10;
  Database db(opts);
  for (std::uint64_t k = 0; k < kContendedCounters; ++k) {
    db.store().LoadInt(Key::Table(kIntTable, k), 0);
  }
  const RunMetrics m = RunWorkload(
      db, [](int) { return std::make_unique<ContendedSource>(); },
      /*measure_ms=*/300, /*warmup_ms=*/50);

  // Every committed transaction added exactly 1 to exactly one counter.
  std::int64_t sum = 0;
  for (std::uint64_t k = 0; k < kContendedCounters; ++k) {
    const auto snap = db.store().ReadSnapshot(Key::Table(kIntTable, k));
    ASSERT_TRUE(snap.present);
    sum += std::get<std::int64_t>(snap.value);
  }
  EXPECT_EQ(sum, static_cast<std::int64_t>(m.stats.committed));
  EXPECT_GT(m.stats.committed, 0u);

  // Bytes payloads are key-deterministic: any retry-aliasing corruption shows here.
  for (std::uint64_t k = 0; k < kContendedCounters; ++k) {
    const Record* r = db.store().Find(Key::Table(kBytesTable, k));
    if (r == nullptr) {
      continue;  // no committed transaction picked this k (possible but unlikely)
    }
    const auto snap = r->ReadValue();
    ASSERT_TRUE(snap.present);
    EXPECT_EQ(std::get<std::string>(snap.value), CounterPayload(k)) << "k=" << k;
  }

  // Top-K payloads encode their own order key exactly.
  const Record* tk = db.store().Find(Key::Table(kTopKTable, 0));
  ASSERT_NE(tk, nullptr);
  const auto snap = tk->ReadValue();
  ASSERT_TRUE(snap.present);
  for (const OrderedTuple& t : std::get<TopKSet>(snap.value).items()) {
    EXPECT_EQ(t.payload, OrderPayload(t.order.primary));
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ContendedRetryTest,
                         ::testing::Values(Protocol::kOcc, Protocol::kTwoPL,
                                           Protocol::kDoppel),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

}  // namespace
}  // namespace doppel
