// Tests for the Atomic engine: direct atomic application, upper-bound semantics.
#include <gtest/gtest.h>

#include "src/txn/atomic_engine.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::EngineHarness;
using testing::IntAt;

class AtomicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    h_.engine = std::make_unique<AtomicEngine>(h_.store);
    h_.MakeWorkers(2);
  }
  EngineHarness h_;
  Worker& w0() { return *h_.workers[0]; }
};

TEST_F(AtomicTest, OpsApplyImmediately) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  Txn& txn = w0().txn;
  txn.Reset(h_.engine.get(), &w0());
  txn.Add(Key::FromU64(1), 5);
  // Visible before commit: the Atomic scheme has no isolation.
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 5);
  EXPECT_EQ(h_.engine->Commit(w0(), txn), TxnStatus::kCommitted);
}

TEST_F(AtomicTest, NeverConflicts) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(h_.TryOnce(w0(), [](Txn& t) { t.Add(Key::FromU64(1), 1); }),
              TxnStatus::kCommitted);
  }
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 100);
}

TEST_F(AtomicTest, ConcurrentAddsSumExactly) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  constexpr int kOps = 100000;
  h_.Parallel([&](Worker& w) {
    for (int i = 0; i < kOps; ++i) {
      h_.MustCommit(w, [](Txn& t) { t.Add(Key::FromU64(1), 1); });
    }
  });
  EXPECT_EQ(IntAt(h_.store, Key::FromU64(1)), 2 * kOps);
}

TEST_F(AtomicTest, ConcurrentMaxExact) {
  h_.store.LoadInt(Key::FromU64(1), 0);
  h_.Parallel([&](Worker& w) {
    for (int i = 0; i < 50000; ++i) {
      const std::int64_t v = static_cast<std::int64_t>(w.rng.NextBounded(1000000));
      h_.MustCommit(w, [v](Txn& t) { t.Max(Key::FromU64(1), v); });
    }
  });
  // With 100K samples over 1M values the max is overwhelmingly likely > 900000 and the
  // record must hold a value some worker actually wrote.
  EXPECT_GT(IntAt(h_.store, Key::FromU64(1)), 900000);
  EXPECT_LT(IntAt(h_.store, Key::FromU64(1)), 1000000);
}

TEST_F(AtomicTest, GetReadsCurrentValue) {
  h_.store.LoadInt(Key::FromU64(1), 3);
  std::int64_t v = 0;
  ASSERT_EQ(h_.TryOnce(w0(), [&](Txn& t) { v = t.GetInt(Key::FromU64(1)).value_or(-1); }),
            TxnStatus::kCommitted);
  EXPECT_EQ(v, 3);
}

TEST_F(AtomicTest, ComplexOpsSerializedByValueLock) {
  h_.store.LoadTopK(Key::FromU64(1), 5);
  h_.Parallel([&](Worker& w) {
    for (int i = 0; i < 5000; ++i) {
      const std::int64_t o = static_cast<std::int64_t>(w.rng.NextBounded(100000));
      h_.MustCommit(w, [&, o](Txn& t) {
        t.TopKInsert(Key::FromU64(1), OrderKey{o, w.id}, "p", 5);
      });
    }
  });
  const auto topk = std::get<TopKSet>(h_.store.ReadSnapshot(Key::FromU64(1)).value);
  EXPECT_EQ(topk.size(), 5u);
  // Descending and internally consistent.
  for (std::size_t i = 1; i < topk.items().size(); ++i) {
    EXPECT_TRUE(OrderedTuple::Wins(topk.items()[i - 1], topk.items()[i]));
  }
}

TEST_F(AtomicTest, OPutKeepsWinner) {
  h_.Parallel([&](Worker& w) {
    for (int i = 0; i < 10000; ++i) {
      const std::int64_t o = static_cast<std::int64_t>(w.rng.NextBounded(1000));
      h_.MustCommit(w, [&, o](Txn& t) {
        t.OPut(Key::FromU64(2), OrderKey{o, 0}, std::to_string(o));
      });
    }
  });
  const auto tuple = std::get<OrderedTuple>(h_.store.ReadSnapshot(Key::FromU64(2)).value);
  // Payload always matches its own order: no torn mixes.
  EXPECT_EQ(tuple.payload, std::to_string(tuple.order.primary));
  EXPECT_GT(tuple.order.primary, 900);  // 20K draws over [0,1000)
}

}  // namespace
}  // namespace doppel
