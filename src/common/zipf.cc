#include "src/common/zipf.h"

#include <cmath>

#include "src/common/dassert.h"

namespace doppel {

double ZipfianGenerator::Harmonic(std::uint64_t n, double alpha) {
  // Direct summation; n <= a few million in all our workloads and this runs once per
  // generator. Summing ascending keeps the small terms from being absorbed too early.
  double sum = 0.0;
  for (std::uint64_t k = n; k >= 1; --k) {
    sum += 1.0 / std::pow(static_cast<double>(k), alpha);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  DOPPEL_CHECK(n >= 1);
  DOPPEL_CHECK(alpha >= 0.0);
  DOPPEL_CHECK(n <= (std::uint64_t{1} << 32));
  zetan_ = Harmonic(n, alpha);
  if (alpha == 0.0) {
    return;  // uniform fast path, no tables
  }
  // Walker alias construction (Vose's stable variant).
  accept_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  const double nn = static_cast<double>(n);
  for (std::uint64_t k = 0; k < n; ++k) {
    scaled[k] = Probability(k) * nn;
    (scaled[k] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(k));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    accept_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t k : large) {
    accept_[k] = 1.0;
    alias_[k] = k;
  }
  for (std::uint32_t k : small) {
    accept_[k] = 1.0;  // numerical leftovers
    alias_[k] = k;
  }
}

std::uint64_t ZipfianGenerator::Next(Rng& rng) const {
  const std::uint64_t slot = rng.NextBounded(n_);
  if (alpha_ == 0.0) {
    return slot;
  }
  return rng.NextDouble() < accept_[slot] ? slot : alias_[slot];
}

double ZipfianGenerator::Probability(std::uint64_t rank) const {
  DOPPEL_CHECK(rank < n_);
  if (alpha_ == 0.0) {
    return 1.0 / static_cast<double>(n_);
  }
  return (1.0 / std::pow(static_cast<double>(rank + 1), alpha_)) / zetan_;
}

double ZipfianGenerator::TopMass(std::uint64_t count) const {
  if (count >= n_) {
    return 1.0;
  }
  if (alpha_ == 0.0) {
    return static_cast<double>(count) / static_cast<double>(n_);
  }
  return Harmonic(count, alpha_) / zetan_;
}

}  // namespace doppel
