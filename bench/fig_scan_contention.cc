// Scan contention: throughput of a mixed workload where scanners range-scan a fixed
// window of keys while writers increment one hot key inside that window, Doppel vs OCC.
//
// Under OCC every scan records the hot record in its read set, so each concurrent
// increment invalidates in-flight scans and the two halves of the workload serialize.
// Under Doppel the classifier splits the hot key; scans that meet the split record
// during a split phase are stashed (split data is unreadable mid-scan, §7) and retire in
// the next joined phase, while the increments fan out across per-core slices — the
// stash/throughput tradeoff this bench makes visible (stash column).
//
// A second experiment measures dense-key insert scaling: every worker bulk-inserts rows
// whose ids all sit far below 2^40. Under the fixed default layout (shift 40) the whole
// table serializes on one partition stripe; a tuned per-table PartitionConfig gives each
// worker's id range its own stripe; the adaptive layout starts at the bad default and
// lets the Doppel coordinator narrow the boundaries from the observed telemetry.
#include <memory>

#include "bench/bench_common.h"

namespace doppel {
namespace {

constexpr std::uint32_t kScanTable = 2;  // clear of the INCR (0) and RUBiS (16+) tables
constexpr std::uint32_t kDenseTable = 3;
constexpr std::uint64_t kDenseStride = 1ULL << 20;  // per-worker id range, all < 2^26

void ScanWindowProc(Txn& t, const TxnArgs& a) {
  // a.k1.lo = inclusive window end. Consume the values so the scan cannot be elided.
  std::int64_t sum = 0;
  t.Scan(kScanTable, 0, a.k1.lo, 0, [&](const Key&, const ReadResult& v) {
    sum += v.i;
    return true;
  });
  if (sum < 0) {
    t.UserAbort();  // unreachable; keeps `sum` observable
  }
}

void AddHotProc(Txn& t, const TxnArgs& a) { t.Add(a.k1, 1); }

class ScanContentionSource : public TxnSource {
 public:
  ScanContentionSource(std::uint64_t window, std::uint32_t scan_pct)
      : window_(window), scan_pct_(scan_pct) {}

  TxnRequest Next(Worker& w) override {
    TxnRequest r;
    if (w.rng.NextBounded(100) < scan_pct_) {
      r.proc = &ScanWindowProc;
      r.args.tag = kTagRead;
      r.args.k1 = Key::Table(kScanTable, window_ - 1);
    } else {
      r.proc = &AddHotProc;
      r.args.tag = kTagWrite;
      r.args.k1 = Key::Table(kScanTable, window_ / 2);  // the hot key sits mid-window
    }
    return r;
  }

 private:
  const std::uint64_t window_;
  const std::uint32_t scan_pct_;
};

// ---- Dense-key insert scaling ---------------------------------------------------------

void InsertDenseProc(Txn& t, const TxnArgs& a) { t.PutInt(a.k1, 1); }

class DenseInsertSource : public TxnSource {
 public:
  TxnRequest Next(Worker& w) override {
    TxnRequest r;
    r.proc = &InsertDenseProc;
    r.args.tag = kTagWrite;
    // Wrap within the worker's id range: a very long run overwrites its own keys
    // instead of spilling into the next worker's stripe (which would silently break
    // the one-stripe-per-worker premise this experiment measures).
    r.args.k1 = Key::Table(
        kDenseTable, static_cast<std::uint64_t>(w.id) * kDenseStride + next_);
    next_ = (next_ + 1) % kDenseStride;
    return r;
  }

 private:
  std::uint64_t next_ = 0;
};

void RunDenseInsertScaling(const bench::Flags& flags) {
  struct Layout {
    const char* name;
    Protocol proto;
    bool configure;
    PartitionConfig cfg;
  };
  const unsigned tuned_shift = 20;  // one worker id range (kDenseStride) per stripe
  const Layout layouts[] = {
      {"fixed-shift40", Protocol::kOcc, false, {}},
      {"tuned-shift20", Protocol::kOcc, true, {tuned_shift, 64, false}},
      {"adaptive", Protocol::kDoppel, true, {40, 64, true}},
  };

  std::printf("\nDense insert scaling: per-worker bulk inserts, ids all below 2^26\n");
  std::printf("(fixed default layout serializes every insert on stripe 0)\n\n");
  Table table({"layout", "proto", "inserts/s", "final_shift", "stripes_used", "rebins"});
  for (const Layout& lay : layouts) {
    RunStats tput;
    OrderedIndex::TableStats st;
    std::size_t stripes_used = 0;  // distinct stripes holding entries = insert parallelism
    for (int run = 0; run < flags.Runs(); ++run) {
      Options opts = bench::BaseOptions(flags, lay.proto, std::size_t{1} << 21);
      opts.index_tune.min_inserts = 2048;
      auto db = std::make_unique<Database>(opts);
      if (lay.configure) {
        db->store().ConfigureTable(kDenseTable, lay.cfg);
      }
      const RunMetrics m = RunWorkload(
          *db, [](int) { return std::make_unique<DenseInsertSource>(); },
          flags.MeasureMs(/*default_seconds=*/0.3), /*warmup_ms=*/flags.full ? 500 : 100);
      tput.Add(m.throughput);
      st = db->store().index().StatsFor(kDenseTable);
      stripes_used = 0;
      if (const OrderedIndex::TableIndex* t =
              db->store().index().FindTable(kDenseTable)) {
        for (const IndexPartition& p : t->partitions) {
          stripes_used += p.entries.empty() ? 0 : 1;
        }
      }
    }
    table.AddRow({lay.name, ProtocolName(lay.proto), FormatCount(tput.mean()),
                  std::to_string(st.shift), std::to_string(stripes_used),
                  std::to_string(st.rebins)});
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
}

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const std::uint64_t window = flags.Keys(64);  // scanned keys per transaction
  const std::vector<int> scan_pcts =
      flags.full ? std::vector<int>{1, 5, 10, 20, 30, 50, 70, 90}
                 : std::vector<int>{5, 20, 50, 90};
  const Protocol protocols[] = {Protocol::kDoppel, Protocol::kOcc};

  std::printf("Scan contention: window scan vs hot-key increments (window=%llu)\n",
              static_cast<unsigned long long>(window));
  std::printf("threads=%d phase=%llums\n\n", flags.ResolvedThreads(),
              static_cast<unsigned long long>(flags.phase_ms));

  Table table({"scan%", "Doppel", "OCC", "doppel_split", "doppel_stashes"});
  for (int pct : scan_pcts) {
    std::vector<std::string> row{std::to_string(pct)};
    std::size_t split_records = 0;
    std::uint64_t stashes = 0;
    for (Protocol p : protocols) {
      auto point = bench::MeasurePoint(
          flags, /*default_seconds=*/0.4,
          [&] {
            auto db =
                std::make_unique<Database>(bench::BaseOptions(flags, p, window * 4));
            for (std::uint64_t i = 0; i < window; ++i) {
              db->store().LoadInt(Key::Table(kScanTable, i), 0);
            }
            return db;
          },
          [&] {
            const std::uint32_t scan_pct = static_cast<std::uint32_t>(pct);
            return [=](int) -> std::unique_ptr<TxnSource> {
              return std::make_unique<ScanContentionSource>(window, scan_pct);
            };
          });
      row.push_back(FormatCount(point.throughput.mean()));
      if (p == Protocol::kDoppel) {
        split_records = point.last.split_records;
        stashes = point.last.stats.stash_events;
      }
    }
    row.push_back(std::to_string(split_records));
    row.push_back(std::to_string(stashes));
    table.AddRow(std::move(row));
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }

  RunDenseInsertScaling(flags);
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
