#include "src/replica/replica.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>

#include "src/common/dassert.h"
#include "src/common/timing.h"
#include "src/core/database.h"
#include "src/persist/checkpoint.h"
#include "src/persist/manifest.h"
#include "src/persist/wal.h"
#include "src/store/epoch.h"

namespace doppel {
namespace {

bool FileSize(const std::string& path, std::uint64_t* size) {
  struct stat sb;
  if (::stat(path.c_str(), &sb) != 0) {
    return false;
  }
  *size = static_cast<std::uint64_t>(sb.st_size);
  return true;
}

}  // namespace

Replica::Replica(std::string dir, ReplicaOptions opts)
    : dir_(std::move(dir)), opts_(std::move(opts)), store_(opts_.store_capacity) {
  DOPPEL_CHECK(!dir_.empty());
}

Replica::~Replica() { Stop(); }

void Replica::AttachPrimary(WriteAheadLog* wal) {
  DOPPEL_CHECK(wal != nullptr);
  DOPPEL_CHECK(!started_ && primary_ == nullptr);
  primary_ = wal;
  // The lease pins sealed segments from the oldest live one onward, so nothing this
  // replica will need can be truncated out from under it — acquire before the first
  // manifest read, closing the window where a checkpoint could race bootstrap.
  lease_id_ = wal->AcquireRetentionLease();
}

void Replica::Start() {
  DOPPEL_CHECK(!started_);
  started_ = true;
  stop_.store(false, std::memory_order_release);
  tailer_ = std::thread([this] { TailerMain(); });
}

void Replica::Stop() {
  if (started_) {
    stop_.store(true, std::memory_order_release);
    tailer_.join();
    started_ = false;
  }
  if (primary_ != nullptr && lease_id_ >= 0) {
    primary_->ReleaseRetentionLease(lease_id_);
    lease_id_ = -1;
  }
}

void Replica::PublishWindow(std::vector<WalTxn>* window, const WalCut& cut) {
  // Within one cut window, per-record TID order matches the serial order (conflicting
  // later writers absorb the earlier TID), so TID-sorted replay reproduces the
  // barrier state — the same argument as crash-recovery replay.
  std::sort(window->begin(), window->end(),
            [](const WalTxn& a, const WalTxn& b) { return a.tid < b.tid; });
  {
    WriterMutexLock lock(publish_mu_);
    WriteArena arena;
    for (const WalTxn& t : *window) {
      for (const WalOp& op : t.ops) {
        ApplyWalOp(&store_, op, t.tid, &arena);
        if (op.op == OpCode::kDelete) {
          ++deletes_since_sweep_;
        }
      }
    }
    if (deletes_since_sweep_ >= kSweepAfterDeletes) {
      // The exclusive publish lock excludes every View reader, so the store is
      // quiescent here: deleted records are unlinked and freed immediately. Stats
      // gauge below is racy-read by contract (progress()) — relaxed.
      reclaimed_records_.fetch_add(EpochReclaimer::SweepQuiescent(store_),
                                   std::memory_order_relaxed);
      deletes_since_sweep_ = 0;
    }
    // Progress counters are stats: only applied_cut_tid_ / published_cuts_ carry
    // release ordering (View readers acquire them); the rest are racy-read gauges.
    DOPPEL_CHECK(cut.cut_tid >= applied_cut_tid_.load(std::memory_order_relaxed));
    applied_cut_tid_.store(cut.cut_tid, std::memory_order_release);
    applied_txns_.fetch_add(window->size(), std::memory_order_relaxed);
    pending_txns_.fetch_sub(window->size(), std::memory_order_relaxed);
    published_cuts_.fetch_add(1, std::memory_order_release);
    last_cut_wall_ns_.store(cut.wall_ns, std::memory_order_relaxed);
  }
  const std::uint64_t now = NowNanos();
  if (now > cut.wall_ns && cut.wall_ns != 0) {
    SpinlockGuard lock(hist_mu_);
    publish_lag_.Record(now - cut.wall_ns);
  }
  window->clear();
  if (opts_.on_publish) {
    opts_.on_publish();  // outside the lock: the hook may open Views or block
  }
}

void Replica::TailerMain() {
  const auto poll = std::chrono::microseconds(opts_.poll_us);

  // ---- Bootstrap: latest checkpoint, retried through concurrent replacement ----
  Manifest m;
  while (!stop_.load(std::memory_order_acquire)) {
    if (Manifest::Load(dir_, &m) && !m.live_segments.empty()) {
      if (m.checkpoint.empty()) {
        break;  // no checkpoint yet: the live segments are the full history
      }
      CheckpointStats ck;
      bool loaded = false;
      {
        WriterMutexLock lock(publish_mu_);
        loaded = Checkpoint::TryLoad(dir_ + "/" + m.checkpoint, &store_, &ck);
      }
      if (loaded) {
        // The checkpoint was taken right after a cut at the same barrier, so its
        // max_tid IS a cut TID: the replica starts cut-aligned. The record count is
        // a stats gauge (relaxed); the cut TID store is the release publication.
        applied_cut_tid_.store(ck.max_tid, std::memory_order_release);
        bootstrap_records_.store(ck.records, std::memory_order_relaxed);
        break;
      }
      // Lost the open race: the primary replaced (and unlinked) the checkpoint our
      // manifest snapshot named. Reload and try the new one.
    }
    std::this_thread::sleep_for(poll);
  }
  if (stop_.load(std::memory_order_acquire)) {
    return;
  }

  // ---- Tail: live.front() onward; segment numbers are contiguous ----
  std::uint64_t cur = m.live_segments.front();
  if (primary_ != nullptr) {
    primary_->AdvanceRetentionLease(lease_id_, cur);
  }
  auto seg_path = [this](std::uint64_t n) {
    return dir_ + "/" + Manifest::SegmentFileName(n);
  };
  auto tailer = std::make_unique<SegmentTailer>(seg_path(cur), opts_.io_env);
  tail_segment_.store(cur, std::memory_order_release);
  std::uint64_t shipped_base = 0;  // payload bytes from fully-shipped segments
  std::uint64_t retry_base = 0;    // EINTR retries from fully-shipped segments
  std::uint32_t read_error_streak = 0;  // consecutive hard read errors (backoff shift)
  std::vector<WalTxn> window;      // applied-at-next-cut buffer

  while (!stop_.load(std::memory_order_acquire)) {
    WalEntry e;
    const SegmentTailer::Status st = tailer->Next(&e);
    if (st == SegmentTailer::Status::kEntry) {
      read_error_streak = 0;
      // Gauge for progress(); racy readers by contract — relaxed.
      read_retries_.store(retry_base + tailer->read_retries(),
                          std::memory_order_relaxed);
      // Shipping gauges for progress(): single-writer (tailer thread), racy readers
      // tolerate any interleaving, nothing is published through them — relaxed.
      shipped_entries_.fetch_add(1, std::memory_order_relaxed);
      shipped_bytes_.store(shipped_base + tailer->payload_consumed(),
                           std::memory_order_relaxed);
      tail_consumed_.store(tailer->consumed_bytes(), std::memory_order_relaxed);
      if (e.type == WalEntryType::kTxn) {
        pending_txns_.fetch_add(1, std::memory_order_relaxed);
        window.push_back(std::move(e.txn));
      } else {
        PublishWindow(&window, e.cut);
      }
      continue;
    }

    if (st == SegmentTailer::Status::kNeedMore) {
      if (const int err = tailer->TakeLastReadError(); err != 0) {
        // Hard read error (EIO, ...), as opposed to "no new bytes yet": back off with
        // a bounded exponential and reissue from the same position — the tailer's
        // consumed offset did not move, so cut alignment is preserved. A persistently
        // sick disk just shows up as growing read_retries / lag, never a halt: the
        // primary's durable state is intact, only this replica's view of it stalls.
        last_read_errno_.store(err, std::memory_order_relaxed);
        retry_base += 1;
        read_retries_.store(retry_base + tailer->read_retries(),
                            std::memory_order_relaxed);
        read_error_streak = std::min(read_error_streak + 1, 6u);
        std::this_thread::sleep_for(poll * (1u << read_error_streak));
        continue;
      }
      read_error_streak = 0;
    }

    // Stalled (kNeedMore) or damaged (kCorrupt): consult the manifest. A live
    // segment newer than ours means ours is sealed — fully written, nothing more
    // coming.
    Manifest fresh;
    const bool sealed = Manifest::Load(dir_, &fresh) &&
                        !fresh.live_segments.empty() &&
                        fresh.live_segments.back() > cur;
    std::uint64_t size = 0;
    const bool size_known = FileSize(seg_path(cur), &size);

    if (st == SegmentTailer::Status::kNeedMore) {
      if (sealed && size_known && size <= tailer->consumed_bytes()) {
        // Shipped the sealed segment end to end: move to the next one.
        shipped_base += tailer->payload_consumed();
        retry_base += tailer->read_retries();
        ++cur;
        tailer = std::make_unique<SegmentTailer>(seg_path(cur), opts_.io_env);
        tail_segment_.store(cur, std::memory_order_release);
        // Gauge reset; readers pair it with the release store of tail_segment_.
        tail_consumed_.store(0, std::memory_order_relaxed);
        if (primary_ != nullptr) {
          primary_->AdvanceRetentionLease(lease_id_, cur);
        }
        continue;
      }
      std::this_thread::sleep_for(poll);
      continue;
    }

    // kCorrupt. In a sealed segment with bytes beyond our position this is genuine
    // corruption — no future write can repair a sealed file — so freeze at the last
    // published cut rather than serve a damaged prefix.
    if (sealed && size_known && size > tailer->consumed_bytes()) {
      halted_.store(true, std::memory_order_release);
      return;
    }
    // Active-segment tear: the primary crashed mid-flush. This is the end of durable
    // history until a restarted primary truncates the tear away — back to exactly the
    // valid prefix where this tailer already stands (same parse, same prefix) — and
    // opens its next segment. Drop the buffered tail so the re-read sees the
    // truncated file, then wait.
    tailer->ResetTail();
    std::this_thread::sleep_for(poll);
  }
}

bool Replica::View::Get(const Key& key, Value* out) const {
  const Record::ValueSnapshot s = r_.store_.ReadSnapshot(key);
  if (!s.present) {
    return false;
  }
  if (out != nullptr) {
    *out = s.value;
  }
  return true;
}

std::size_t Replica::View::Scan(std::uint64_t table, std::uint64_t lo, std::uint64_t hi,
                                std::size_t limit,
                                FunctionRef<bool(const Key&, const Value&)> fn) const {
  OrderedIndex::TableIndex* t = r_.store_.index().FindTable(table);
  if (t == nullptr) {
    return 0;
  }
  // Partitions are contiguous ascending key ranges, so walking them low to high (keys
  // sorted within each) yields a globally ascending scan. The publish lock (held by
  // this View) excludes the tailer, so the snapshot cannot shift mid-scan.
  const std::size_t p_lo = t->PartitionOf(lo);
  const std::size_t p_hi = t->PartitionOf(hi);
  std::vector<std::pair<std::uint64_t, Record*>> items;
  std::size_t visited = 0;
  for (std::size_t p = p_lo; p <= p_hi; ++p) {
    items.clear();
    const std::size_t max_items = limit == 0 ? 0 : limit - visited;
    OrderedIndex::SnapshotRange(t->partitions[p], lo, hi, max_items, &items);
    for (const auto& [key_lo, rec] : items) {
      const Record::ValueSnapshot s = rec->ReadValue();
      if (!s.present) {
        continue;
      }
      ++visited;
      if (!fn(Key(t->table, key_lo), s.value)) {
        return visited;
      }
      if (limit != 0 && visited >= limit) {
        return visited;
      }
    }
  }
  return visited;
}

bool Replica::Get(const Key& key, Value* out) const {
  return View(*this).Get(key, out);
}

std::size_t Replica::Scan(std::uint64_t table, std::uint64_t lo, std::uint64_t hi,
                          std::size_t limit,
                          FunctionRef<bool(const Key&, const Value&)> fn) const {
  return View(*this).Scan(table, lo, hi, limit, fn);
}

ReplicaProgress Replica::progress() const {
  ReplicaProgress p;
  p.attached = primary_ != nullptr;
  p.halted = halted_.load(std::memory_order_acquire);
  p.applied_cut_tid = applied_cut_tid_.load(std::memory_order_acquire);
  p.published_cuts = published_cuts_.load(std::memory_order_acquire);
  // The remaining fields are racy gauges (progress() is documented point-in-time
  // racy); only the cut TID / cut count above pair with the publisher's releases.
  p.applied_txns = applied_txns_.load(std::memory_order_relaxed);
  p.pending_txns = pending_txns_.load(std::memory_order_relaxed);
  p.shipped_entries = shipped_entries_.load(std::memory_order_relaxed);
  p.shipped_bytes = shipped_bytes_.load(std::memory_order_relaxed);
  p.bootstrap_records = bootstrap_records_.load(std::memory_order_relaxed);
  p.reclaimed_records = reclaimed_records_.load(std::memory_order_relaxed);
  p.last_cut_wall_ns = last_cut_wall_ns_.load(std::memory_order_relaxed);
  p.read_retries = read_retries_.load(std::memory_order_relaxed);
  p.last_read_errno = last_read_errno_.load(std::memory_order_relaxed);
  const std::uint64_t tail_seg = tail_segment_.load(std::memory_order_acquire);
  p.tailing = tail_seg != 0;
  if (p.tailing) {
    // On-disk bytes ahead of the tailer: the rest of its current segment plus every
    // later segment up to the newest live one. Segment numbers are contiguous and the
    // retention lease keeps the files stat-able; a freshly opened segment contributes
    // only its 16-byte header, which counts as already consumed.
    Manifest m;
    if (Manifest::Load(dir_, &m) && !m.live_segments.empty()) {
      const std::uint64_t consumed = tail_consumed_.load(std::memory_order_relaxed);
      for (std::uint64_t seg = tail_seg; seg <= m.live_segments.back(); ++seg) {
        std::uint64_t size = 0;
        if (!FileSize(dir_ + "/" + Manifest::SegmentFileName(seg), &size)) {
          continue;
        }
        const std::uint64_t done =
            seg == tail_seg
                ? std::max<std::uint64_t>(consumed, kWalSegmentHeaderBytes)
                : kWalSegmentHeaderBytes;
        p.lag_bytes += size > done ? size - done : 0;
      }
    }
  }
  if (primary_ != nullptr) {
    const std::uint64_t appended = primary_->appended_txns();
    const std::uint64_t seen = p.applied_txns + p.pending_txns;
    p.lag_entries = appended > seen ? appended - seen : 0;
  }
  if (p.last_cut_wall_ns != 0) {
    const std::uint64_t now = NowNanos();
    p.lag_us = now > p.last_cut_wall_ns ? (now - p.last_cut_wall_ns) / 1000 : 0;
  }
  return p;
}

LatencyHistogram Replica::PublishLagHistogram() const {
  SpinlockGuard lock(hist_mu_);
  return publish_lag_;
}

bool Replica::WaitForCutTid(std::uint64_t tid, std::uint64_t timeout_ms) const {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (applied_cut_tid_.load(std::memory_order_acquire) < tid) {
    if (halted_.load(std::memory_order_acquire) ||
        std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return true;
}

bool Replica::WaitCaughtUp(std::uint64_t timeout_ms) const {
  DOPPEL_CHECK(primary_ != nullptr);  // "caught up to what?" needs a primary
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const ReplicaProgress p = progress();
    if (p.halted) {
      return false;
    }
    if (p.tailing && p.lag_bytes == 0 && p.pending_txns == 0) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

std::unique_ptr<Replica> AttachReplica(Database& db, ReplicaOptions opts) {
  WriteAheadLog* wal = db.wal();
  DOPPEL_CHECK(wal != nullptr && wal->logging());  // requires wal_dir and Start()
  auto replica = std::make_unique<Replica>(wal->dir(), std::move(opts));
  replica->AttachPrimary(wal);
  replica->Start();
  return replica;
}

}  // namespace doppel
