// Tests for the RNG and the Zipfian generator (Table 1 depends on Probability; every
// skewed workload depends on Next matching that distribution).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rand.h"
#include "src/common/zipf.h"

namespace doppel {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += a.Next() == b.Next();
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBoundedInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1000000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    seen[rng.NextBounded(10)]++;
  }
  for (int count : seen) {
    EXPECT_GT(count, 700);  // each residue ~1000 expected
    EXPECT_LT(count, 1300);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesPercentage) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.Chance(30);
  }
  EXPECT_NEAR(hits / 100000.0, 0.30, 0.01);
}

TEST(Rng, ChanceZeroAndHundred) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0));
    EXPECT_TRUE(rng.Chance(100));
  }
}

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t a = SplitMix64(s);
  const std::uint64_t b = SplitMix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(SplitMix64(s2), a);
}

TEST(Zipf, HarmonicKnownValues) {
  EXPECT_DOUBLE_EQ(ZipfianGenerator::Harmonic(1, 1.0), 1.0);
  EXPECT_NEAR(ZipfianGenerator::Harmonic(2, 1.0), 1.5, 1e-12);
  EXPECT_NEAR(ZipfianGenerator::Harmonic(4, 1.0), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  EXPECT_NEAR(ZipfianGenerator::Harmonic(3, 0.0), 3.0, 1e-12);
  EXPECT_NEAR(ZipfianGenerator::Harmonic(3, 2.0), 1.0 + 0.25 + 1.0 / 9, 1e-12);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  for (double alpha : {0.0, 0.5, 1.0, 1.4, 2.0}) {
    const ZipfianGenerator zipf(1000, alpha);
    double sum = 0.0;
    for (std::uint64_t k = 0; k < 1000; ++k) {
      sum += zipf.Probability(k);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "alpha=" << alpha;
  }
}

// Table 1 of the paper: percentage of writes to the most popular key, 1M keys.
struct Table1Case {
  double alpha;
  double first_pct;   // paper column "1st"
  double second_pct;  // paper column "2nd"
};

class ZipfTable1Test : public ::testing::TestWithParam<Table1Case> {};

TEST_P(ZipfTable1Test, MatchesPaperTable1) {
  const auto& c = GetParam();
  const ZipfianGenerator zipf(1000000, c.alpha);
  EXPECT_NEAR(zipf.Probability(0) * 100.0, c.first_pct, c.first_pct * 0.02 + 0.0002);
  EXPECT_NEAR(zipf.Probability(1) * 100.0, c.second_pct, c.second_pct * 0.02 + 0.0002);
}

INSTANTIATE_TEST_SUITE_P(PaperValues, ZipfTable1Test,
                         ::testing::Values(Table1Case{0.0, 0.0001, 0.0001},
                                           Table1Case{0.4, 0.0151, 0.0114},
                                           Table1Case{0.8, 1.337, 0.7678},
                                           Table1Case{1.0, 6.953, 3.476},
                                           Table1Case{1.4, 32.30, 12.24},
                                           Table1Case{1.8, 53.13, 15.26},
                                           Table1Case{2.0, 60.80, 15.20}));

TEST(Zipf, TopMassMonotoneAndBounded) {
  const ZipfianGenerator zipf(100000, 1.2);
  double prev = 0.0;
  for (std::uint64_t n : {0ULL, 1ULL, 2ULL, 10ULL, 100ULL, 100000ULL}) {
    const double mass = zipf.TopMass(n);
    EXPECT_GE(mass, prev);
    EXPECT_LE(mass, 1.0 + 1e-12);
    prev = mass;
  }
  EXPECT_DOUBLE_EQ(zipf.TopMass(100000), 1.0);
  EXPECT_DOUBLE_EQ(zipf.TopMass(200000), 1.0);
}

class ZipfSamplingTest : public ::testing::TestWithParam<double> {};

// The empirical frequency of the hottest ranks must match Probability().
TEST_P(ZipfSamplingTest, EmpiricalMatchesAnalytic) {
  const double alpha = GetParam();
  const std::uint64_t n = 10000;
  const ZipfianGenerator zipf(n, alpha);
  Rng rng(12345);
  constexpr int kSamples = 200000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t r = zipf.Next(rng);
    ASSERT_LT(r, n);
    counts[r]++;
  }
  for (std::uint64_t rank : {0ULL, 1ULL, 2ULL, 9ULL}) {
    const double expected = zipf.Probability(rank) * kSamples;
    if (expected < 50) {
      continue;  // too rare for a tight bound
    }
    EXPECT_NEAR(counts[rank], expected, expected * 0.15 + 30)
        << "alpha=" << alpha << " rank=" << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfSamplingTest,
                         ::testing::Values(0.0, 0.4, 0.8, 0.99, 1.0, 1.2, 1.6, 2.0));

TEST(Zipf, UniformWhenAlphaZero) {
  const ZipfianGenerator zipf(100, 0.0);
  Rng rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) {
    counts[zipf.Next(rng)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 600);
    EXPECT_LT(c, 1400);
  }
}

TEST(Zipf, SingleItemAlwaysRankZero) {
  const ZipfianGenerator zipf(1, 1.4);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Next(rng), 0u);
  }
  EXPECT_DOUBLE_EQ(zipf.Probability(0), 1.0);
}

}  // namespace
}  // namespace doppel
