// The shared global store: a concurrent record map plus non-transactional loading helpers
// used to pre-populate benchmarks ("we pre-allocate all the records", §8.1).
//
// Since PR 9 the store also owns the per-table access-path choice: tables registered
// with TableLayout::kFlat get a direct-indexed FlatTable in front of the RecordMap, and
// every internal consumer — engines, WAL replay, checkpoint load, replica apply, the
// loaders — resolves keys through the Route() front door so the layout is invisible
// above this layer.
#ifndef DOPPEL_SRC_STORE_STORE_H_
#define DOPPEL_SRC_STORE_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/spinlock.h"
#include "src/store/flat_table.h"
#include "src/store/ordered_index.h"
#include "src/store/record_map.h"

namespace doppel {

// Per-table record access path (TableOptions::layout).
enum class TableLayout {
  kHash,  // RecordMap only (default; any key shape)
  kFlat,  // direct-indexed FlatTable over a dense key range, RecordMap fallback
};

// Extended per-table registration (ConfigureTable). The original PartitionConfig
// overload stays for index-only registration.
struct TableOptions {
  TableLayout layout = TableLayout::kHash;
  // kFlat only: keys lo in [flat_base, flat_base + flat_span) route through the flat
  // array; other keys of the table fall back to the hash map. flat_span is required.
  std::uint64_t flat_base = 0;
  std::uint64_t flat_span = 0;
  // kFlat only: first slot-array size (0 = small default; growth covers the rest).
  // Pre-sizing to flat_span avoids all growth on the hot path.
  std::size_t flat_initial_slots = 0;
  // Expected record count this table adds to the store. Triggers a quiescent rehash of
  // the RecordMap so a hot table no longer depends on the single construction-time
  // capacity hint (the >4 load-factor warning's remedy). Must run before Start.
  std::size_t capacity_hint = 0;
  // Optional ordered-index layout (same meaning as the PartitionConfig overload).
  std::optional<PartitionConfig> index;
};

class Store {
 public:
  explicit Store(std::size_t capacity_hint)
      : map_(capacity_hint), capacity_request_(capacity_hint) {}

  RecordMap& map() { return map_; }
  const RecordMap& map() const { return map_; }

  // Ordered per-table key index over the map; records appear when first logically
  // present. Engines consult it for Txn::Scan and maintain it at commit time.
  OrderedIndex& index() { return index_; }
  const OrderedIndex& index() const { return index_; }

  // Registers a table's ordered-index partition layout (shift, stripe count, adaptive
  // narrowing). Must run before the table's first insert or scan — typically right
  // before pre-population. Tables never configured get the default layout.
  void ConfigureTable(std::uint64_t table, const PartitionConfig& cfg) {
    index_.ConfigureTable(table, cfg);
  }

  // Extended registration: store layout (kFlat + key range), per-table RecordMap
  // capacity hint, and optionally the ordered-index layout in one call. Same contract
  // as above: must run before the table's first insert or scan (pre-Start, quiescent);
  // re-registering a flat table is a checked error.
  void ConfigureTable(std::uint64_t table, const TableOptions& opts);

  // ---- Key -> record routing (the front door) ----
  // Resolves `key` to its record, creating a logically-absent record of `type` on
  // first access. Flat-registered tables are tried through their direct-indexed slot
  // first; a flat miss falls back to the RecordMap (which stays the authoritative
  // owner of every record) and back-fills the slot.
  Record* Route(const Key& key, RecordType type, std::size_t topk_k) {
    if (FlatTable* f = FlatFor(key.hi)) {
      if (Record* r = f->Find(key.lo)) {
        return r;
      }
      Record* r = map_.GetOrCreate(key, type, topk_k);
      f->TryInstall(key.lo, r);
      return r;
    }
    return map_.GetOrCreate(key, type, topk_k);
  }

  Record* Find(const Key& key) const { return map_.Find(key); }
  std::size_t size() const { return map_.size(); }

  // Typed upsert for trusted internal paths (loaders, checkpoint restore, manual split
  // labels) whose types are self-consistent by construction.
  Record* GetOrCreate(const Key& key, RecordType type,
                      std::size_t topk_k = TopKSet::kDefaultK) {
    Record* r = Route(key, type, topk_k);
    DOPPEL_CHECK(r->type() == type);
    return r;
  }

  // Untrusted-path variant (engines routing client ops): returns the existing record
  // even on a type mismatch so the caller can turn it into a per-transaction abort
  // instead of killing the process.
  Record* GetOrCreateUnchecked(const Key& key, RecordType type, std::size_t topk_k) {
    return Route(key, type, topk_k == 0 ? TopKSet::kDefaultK : topk_k);
  }

  // ---- Flat-slot maintenance (epoch sweeper / reclaimer / quiescent sweeps) ----
  // All are no-ops for keys outside any registered flat range.

  // Sweeper, at the kill point (caller holds the record's bucket stripe lock): poison
  // the key's flat slot so it cannot be republished until the grace period ends.
  void FlatTombstone(const Key& key) {
    if (FlatTable* f = FlatFor(key.hi)) {
      f->WriteTombstone(key.lo);
    }
  }
  // Reclaimer, at the victim's free point (two epoch advances later): re-open the slot.
  void FlatClearTombstone(const Key& key) {
    if (FlatTable* f = FlatFor(key.hi)) {
      f->ClearTombstone(key.lo);
    }
  }
  // Quiescent contexts only (no concurrent readers): clear the key's slot outright.
  void FlatClearSlot(const Key& key) {
    if (FlatTable* f = FlatFor(key.hi)) {
      f->Publish(key.lo, nullptr);
    }
  }
  // Moves slot arrays retired by flat growth to `out` (epoch reclaimer's array limbo).
  void DrainFlatRetired(std::vector<FlatSlotArray*>* out) {
    for (FlatDirSlot& s : flats_) {
      if (s.tag.load(std::memory_order_acquire) != 0) {
        // tag is published after the table pointer (release), ordering this load.
        s.table.load(std::memory_order_relaxed)->DrainRetired(out);
      }
    }
  }

  bool HasFlatTable(std::uint64_t table) const { return FlatFor(table) != nullptr; }
  // Slot-state probe for tests and stats; kMiss for non-flat tables.
  FlatTable::SlotState FlatProbe(const Key& key) const {
    const FlatTable* f = FlatFor(key.hi);
    return f == nullptr ? FlatTable::SlotState::kMiss : f->Probe(key.lo);
  }

  // ---- Physical record replacement + deferred frees (recovery / replica apply) ----
  // Replaces `key`'s logically-absent record with a fresh absent one of `type` (see
  // RecordMap::ReplaceWithType); the old record joins the store's retired list. The
  // key's flat slot (if any) is repointed at the fresh record — the caller's context
  // (recovery replay, replica apply under its publish lock) excludes concurrent
  // same-key access, which is what makes the overwrite safe.
  Record* ReplaceAbsent(const Key& key, RecordType type, std::size_t topk_k) {
    Record* fresh;
    {
      SpinlockGuard lock(retired_mu_);
      fresh = map_.ReplaceWithType(key, type, topk_k == 0 ? TopKSet::kDefaultK : topk_k,
                                   &retired_);
    }
    if (FlatTable* f = FlatFor(key.hi)) {
      f->Publish(key.lo, fresh);
    }
    return fresh;
  }
  // Appends sweep output to the retired list (replica apply under its publish lock).
  void RetireRecords(std::vector<Record*>* records) {
    SpinlockGuard lock(retired_mu_);
    retired_.insert(retired_.end(), records->begin(), records->end());
    records->clear();
  }
  // Frees everything retired so far. Caller guarantees no concurrent reader can still
  // hold a pointer to a retired record (end of recovery, replica under exclusive
  // publish lock, store teardown). Returns how many were freed.
  std::size_t FreeRetired() {
    std::vector<Record*> victims;
    {
      SpinlockGuard lock(retired_mu_);
      victims.swap(retired_);
    }
    for (Record* r : victims) {
      delete r;
    }
    return victims.size();
  }

  ~Store();

  // ---- Non-transactional loading (single writer or quiesced store) ----
  void LoadInt(const Key& key, std::int64_t v);
  void LoadBytes(const Key& key, std::string v);
  void LoadOrdered(const Key& key, OrderedTuple v);
  // Creates an empty top-K record with capacity k.
  void LoadTopK(const Key& key, std::size_t k);
  // Inserts one tuple into a top-K record (creating it with capacity k if needed).
  void LoadTopKItem(const Key& key, std::size_t k, OrderedTuple t);

  // Reads a committed snapshot (any time; used by tests and report code).
  Record::ValueSnapshot ReadSnapshot(const Key& key) const;

 private:
  static constexpr std::uint64_t kLoadTid = 2;  // above 0 so loaded != never-written
  // Flat-table directory capacity; dense tables are rare and registered explicitly.
  static constexpr std::size_t kMaxFlatTables = 8;

  struct FlatDirSlot {
    // 0 = empty; otherwise table id + 1 (so table id 0 is representable).
    std::atomic<std::uint64_t> tag{0};
    std::atomic<FlatTable*> table{nullptr};
  };

  // Lock-free directory lookup; nullptr if `table` has no flat registration.
  FlatTable* FlatFor(std::uint64_t table) const {
    // One relaxed load gates the common no-flat-tables case; the counter only moves
    // during quiescent registration, so any value it returns is safe to act on.
    if (flat_count_.load(std::memory_order_relaxed) == 0) {
      return nullptr;
    }
    for (const FlatDirSlot& s : flats_) {
      const std::uint64_t tag = s.tag.load(std::memory_order_acquire);
      if (tag == 0) {
        return nullptr;
      }
      if (tag == table + 1) {
        // tag is published after the table pointer (release), ordering this load.
        return s.table.load(std::memory_order_relaxed);
      }
    }
    return nullptr;
  }

  RecordMap map_;
  OrderedIndex index_;
  // Cumulative RecordMap capacity request: construction hint + per-table hints.
  std::size_t capacity_request_;
  FlatDirSlot flats_[kMaxFlatTables];
  std::atomic<std::uint32_t> flat_count_{0};
  Spinlock flat_mu_;  // serializes registration (rare: once per flat table)
  // Unlinked-but-not-freed records (ReplaceAbsent / RetireRecords): physically out of
  // the map, awaiting a moment with no concurrent readers.
  mutable Spinlock retired_mu_;
  std::vector<Record*> retired_ GUARDED_BY(retired_mu_);
};

}  // namespace doppel

#endif  // DOPPEL_SRC_STORE_STORE_H_
