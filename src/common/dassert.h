// Lightweight CHECK/DCHECK macros.
//
// CHECK is always on (invariant violations in a concurrency control engine must fail fast,
// never corrupt the store); DCHECK compiles away outside debug builds.
#ifndef DOPPEL_SRC_COMMON_DASSERT_H_
#define DOPPEL_SRC_COMMON_DASSERT_H_

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace doppel {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

[[noreturn]] inline void PCheckFailed(const char* expr, const char* file, int line,
                                      int err) {
  std::fprintf(stderr, "PCHECK failed: %s at %s:%d (errno %d: %s)\n", expr, file, line,
               err, std::strerror(err));
  std::abort();
}

}  // namespace doppel

#define DOPPEL_CHECK(expr)                                 \
  do {                                                     \
    if (__builtin_expect(!(expr), 0)) {                    \
      ::doppel::CheckFailed(#expr, __FILE__, __LINE__);    \
    }                                                      \
  } while (0)

// CHECK for syscall results: captures errno at the failure site and prints it with
// strerror, instead of discarding the one fact that explains the failure.
#define DOPPEL_PCHECK(expr)                                        \
  do {                                                             \
    if (__builtin_expect(!(expr), 0)) {                            \
      ::doppel::PCheckFailed(#expr, __FILE__, __LINE__, errno);    \
    }                                                              \
  } while (0)

#ifndef NDEBUG
#define DOPPEL_DCHECK(expr) DOPPEL_CHECK(expr)
#else
#define DOPPEL_DCHECK(expr) \
  do {                      \
  } while (0)
#endif

#endif  // DOPPEL_SRC_COMMON_DASSERT_H_
