// Checkpoint-equivalence fuzz (same harness idioms as store_scan_fuzz_test.cc:
// balanced transfers + fresh-key inserts + full-window scan-sum invariants, randomized
// per seed). A Doppel database runs the workload with mid-run coordinator checkpoints,
// is shut down without any shutdown snapshot (the recovered state must come from
// mid-run checkpoint + segment replay), and a reopened database must reproduce the
// exact serial final state — every record value and the ordered-index scan view.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "tests/persist_test_util.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::FreshDir;
using testing::IntAt;
using testing::RemoveDirRecursive;

constexpr std::uint64_t kTable = 5;
constexpr std::uint64_t kInitialKeys = 32;
constexpr std::int64_t kInitialValue = 1000;
constexpr int kTxns = 1200;

PartitionConfig TableConfig() {
  PartitionConfig cfg;
  cfg.shift = 4;  // dense ids: spread them over real stripes
  cfg.partitions = 16;
  return cfg;
}

Options MakeOptions(const std::string& dir) {
  Options o;
  o.protocol = Protocol::kDoppel;
  o.num_workers = 4;
  o.phase_us = 1000;
  o.store_capacity = 1 << 12;
  o.wal_dir = dir.c_str();
  o.wal_flush_us = 500;
  // Several checkpoints land mid-run (first one immediately, then on this cadence).
  o.checkpoint_interval_us = 5000;
  return o;
}

void Populate(Database& db) {
  db.store().ConfigureTable(kTable, TableConfig());
  for (std::uint64_t i = 0; i < kInitialKeys; ++i) {
    db.store().LoadInt(Key::Table(kTable, i), kInitialValue);
  }
}

// Scans the whole table transactionally; returns (key -> value) in scan order.
std::vector<std::pair<std::uint64_t, std::int64_t>> ScanAll(Database& db) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> out;
  const TxnResult res = db.Execute([&](Txn& txn) {
    out.clear();
    txn.Scan(kTable, 0, ~std::uint64_t{0} >> 1, 0,
             [&](const Key& k, const ReadResult& v) {
               out.emplace_back(k.lo, v.i);
               return true;
             });
  });
  DOPPEL_CHECK(res.committed);
  return out;
}

void RunSeed(std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed);
  const std::string dir = FreshDir(("ckptfuzz_" + std::to_string(seed)).c_str());
  // Serial shadow model: transactions are submitted one at a time (Execute waits), so
  // the commit order equals the submission order and the model is exact.
  std::map<std::uint64_t, std::int64_t> model;
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < kInitialKeys; ++i) {
    model[i] = kInitialValue;
    ids.push_back(i);
  }
  std::uint64_t next_id = 1 << 10;
  std::uint64_t checkpoints = 0;
  {
    Options o = MakeOptions(dir);
    Database db(o);
    Populate(db);
    db.Start();
    Rng rng(seed);
    for (int t = 0; t < kTxns; ++t) {
      const std::uint64_t pick = rng.NextBounded(100);
      if (pick < 60) {
        // Balanced transfer between two existing keys (sum invariant preserved).
        const std::uint64_t a = ids[rng.NextBounded(ids.size())];
        std::uint64_t b = ids[rng.NextBounded(ids.size())];
        if (a == b) {
          continue;
        }
        const std::int64_t x = static_cast<std::int64_t>(rng.NextBounded(10));
        ASSERT_TRUE(db.Execute([&](Txn& txn) {
                        txn.Add(Key::Table(kTable, a), -x);
                        txn.Add(Key::Table(kTable, b), x);
                      })
                        .committed);
        model[a] -= x;
        model[b] += x;
      } else if (pick < 85) {
        // Insert a fresh row (phantom source for concurrent scans; exercises index
        // rebuild on recovery).
        const std::uint64_t id = next_id++;
        const std::int64_t v = static_cast<std::int64_t>(rng.NextBounded(50));
        ASSERT_TRUE(
            db.Execute([&](Txn& txn) { txn.PutInt(Key::Table(kTable, id), v); })
                .committed);
        model[id] = v;
        ids.push_back(id);
      } else {
        // Scan-sum check against the shadow model mid-run.
        std::int64_t want = 0;
        for (const auto& [id, v] : model) {
          want += v;
        }
        const auto scanned = ScanAll(db);
        std::int64_t got = 0;
        for (const auto& [id, v] : scanned) {
          got += v;
        }
        ASSERT_EQ(got, want) << "live scan-sum diverged at txn " << t;
        ASSERT_EQ(scanned.size(), model.size());
      }
    }
    db.wal()->Flush();
    checkpoints = db.wal()->checkpoints_taken();
    db.Stop();  // flushes the tail; takes no shutdown checkpoint
  }
  ASSERT_GE(checkpoints, 1u) << "workload never hit a mid-run checkpoint";

  // Crash-and-recover equivalence: reopen and compare against the no-crash state.
  Options o2 = MakeOptions(dir);
  Database db2(o2);
  Populate(db2);  // same pre-population as the original run
  db2.Start();
  EXPECT_TRUE(db2.recovery().had_checkpoint);
  for (const auto& [id, v] : model) {
    ASSERT_EQ(IntAt(db2.store(), Key::Table(kTable, id)), v) << "key " << id;
  }
  const auto scanned = ScanAll(db2);
  ASSERT_EQ(scanned.size(), model.size());
  std::uint64_t prev = 0;
  bool first = true;
  for (const auto& [id, v] : scanned) {
    ASSERT_TRUE(first || id > prev) << "scan out of key order at " << id;
    first = false;
    prev = id;
    const auto it = model.find(id);
    ASSERT_TRUE(it != model.end()) << "scan surfaced unknown key " << id;
    ASSERT_EQ(v, it->second) << "key " << id;
  }
  db2.Stop();
  RemoveDirRecursive(dir);
}

TEST(CheckpointFuzz, RecoveryMatchesNoCrashRun) {
  const char* env = std::getenv("DOPPEL_FUZZ_SEED");
  if (env != nullptr) {
    RunSeed(std::strtoull(env, nullptr, 10));
    return;
  }
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    RunSeed(seed);
  }
}

}  // namespace
}  // namespace doppel
