// Kill-the-process durability: a child process runs a logged workload, confirms a
// durability point after each explicit group-commit flush, then dies abruptly
// (_exit: no Stop, no destructors, no final flush — the in-memory buffer tail is
// lost, exactly like a crash). The parent reopens a Database on the same persistence
// directory and asserts that recovery (checkpoint + parallel segment replay)
// reproduces every confirmed-flushed transaction, with ordered-index scans consistent
// and TID clocks seeded for the next generation.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/workload/incr.h"
#include "tests/persist_test_util.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::FreshDir;
using testing::IntAt;
using testing::ReadFileBytes;
using testing::RemoveDirRecursive;
using testing::WriteFileBytes;

constexpr std::uint64_t kCounters = 8;    // INCR-style counters, table 0
constexpr std::uint64_t kRowTable = 9;    // ordered rows, scanned after recovery
constexpr std::uint64_t kChurnTable = 10; // insert+delete churn: one live row at a time
constexpr int kFlushRounds = 10;
constexpr int kTxnsPerRound = 40;
constexpr int kUnflushedTail = 37;  // committed after the last confirmed flush

PartitionConfig RowTableConfig() {
  PartitionConfig cfg;
  cfg.shift = 6;  // rows are dense small ids; default bit-40 would collapse to stripe 0
  cfg.partitions = 16;
  return cfg;
}

Options MakeOptions(const std::string& dir, Protocol proto) {
  Options o;
  o.protocol = proto;
  o.num_workers = 2;
  o.phase_us = 2000;
  o.store_capacity = 1 << 12;
  o.wal_dir = dir.c_str();
  // Long flusher interval: durability points come (almost) only from the child's
  // explicit Flush calls, so the unflushed tail genuinely can be lost.
  o.wal_flush_us = 500000;
  return o;
}

void Populate(Database& db) {
  PopulateIncr(db.store(), kCounters);
  db.store().ConfigureTable(kRowTable, RowTableConfig());
  db.store().ConfigureTable(kChurnTable, RowTableConfig());
}

// Child body. Uses DOPPEL_CHECK (abort -> parent sees a signal) instead of gtest
// asserts, which do not work across fork.
void CrashingChild(const std::string& dir, const std::string& progress_path,
                   Protocol proto) {
  Options o = MakeOptions(dir, proto);
  Database db(o);
  Populate(db);
  db.Start();
  std::uint64_t flushed = 0;
  for (int round = 0; round < kFlushRounds; ++round) {
    for (int i = 0; i < kTxnsPerRound; ++i) {
      const std::uint64_t id =
          static_cast<std::uint64_t>(round) * kTxnsPerRound + static_cast<std::uint64_t>(i);
      const TxnResult res = db.Execute([id](Txn& txn) {
        txn.Add(IncrKey(id % kCounters), 1);
        txn.PutInt(Key::Table(kRowTable, id), static_cast<std::int64_t>(id));
        // Delete churn: each transaction inserts its own churn row and deletes its
        // predecessor's, so at every commit boundary exactly one churn row is live.
        txn.PutInt(Key::Table(kChurnTable, id), static_cast<std::int64_t>(id));
        if (id > 0) {
          txn.Delete(Key::Table(kChurnTable, id - 1));
        }
      });
      DOPPEL_CHECK(res.committed);
    }
    db.wal()->Flush();
    flushed += kTxnsPerRound;
    // Confirm the durability point: progress file updated only after the flush, via
    // atomic rename so the parent never reads a torn count.
    WriteFileBytes(progress_path + ".tmp", std::to_string(flushed));
    DOPPEL_CHECK(std::rename((progress_path + ".tmp").c_str(),
                             progress_path.c_str()) == 0);
  }
  // Post-flush tail: committed but never explicitly flushed. May or may not survive
  // (the background flusher could fire); recovery must contain [0, flushed) exactly
  // and at most this much more.
  for (int i = 0; i < kUnflushedTail; ++i) {
    const TxnResult res = db.Execute([i](Txn& txn) {
      txn.Add(IncrKey(static_cast<std::uint64_t>(i) % kCounters), 1);
    });
    DOPPEL_CHECK(res.committed);
  }
  ::_exit(0);  // crash: threads die mid-flight, nothing else reaches disk
}

class KillProcessDurability : public ::testing::TestWithParam<Protocol> {};

INSTANTIATE_TEST_SUITE_P(Protocols, KillProcessDurability,
                         ::testing::Values(Protocol::kOcc, Protocol::kDoppel),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

TEST_P(KillProcessDurability, RecoversEveryConfirmedFlush) {
  const std::string dir = FreshDir(ProtocolName(GetParam()));
  const std::string progress_path = dir + ".progress";
  std::remove(progress_path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    CrashingChild(dir, progress_path, GetParam());  // never returns
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child crashed before its planned _exit";

  const std::uint64_t confirmed = std::strtoull(
      ReadFileBytes(progress_path).c_str(), nullptr, 10);
  ASSERT_EQ(confirmed, static_cast<std::uint64_t>(kFlushRounds * kTxnsPerRound));

  // Reopen. Start() recovers: checkpoint (if the Doppel coordinator took one) plus
  // segment replay, rebuilt ordered index, seeded TID clocks.
  Options o = MakeOptions(dir, GetParam());
  Database db(o);
  Populate(db);
  db.Start();

  // Every confirmed-flushed transaction must be present in the recovered state.
  std::int64_t counter_sum = 0;
  for (std::uint64_t i = 0; i < kCounters; ++i) {
    counter_sum += IntAt(db.store(), IncrKey(i));
  }
  EXPECT_GE(counter_sum, static_cast<std::int64_t>(confirmed));
  EXPECT_LE(counter_sum, static_cast<std::int64_t>(confirmed) + kUnflushedTail);
  for (std::uint64_t id = 0; id < confirmed; ++id) {
    EXPECT_EQ(IntAt(db.store(), Key::Table(kRowTable, id)),
              static_cast<std::int64_t>(id))
        << "flushed row " << id << " lost";
  }

  // Ordered-index consistency: a transactional scan sees every recovered row, in key
  // order, with matching values.
  std::vector<std::uint64_t> scanned;
  bool ordered = true;
  bool values_match = true;
  const TxnResult scan_res = db.Execute([&](Txn& txn) {
    scanned.clear();
    ordered = values_match = true;
    txn.Scan(kRowTable, 0, ~std::uint64_t{0} >> 1, 0,
             [&](const Key& k, const ReadResult& v) {
               if (!scanned.empty() && scanned.back() >= k.lo) {
                 ordered = false;
               }
               if (v.i != static_cast<std::int64_t>(k.lo)) {
                 values_match = false;
               }
               scanned.push_back(k.lo);
               return true;
             });
  });
  EXPECT_TRUE(scan_res.committed);
  EXPECT_GE(scanned.size(), static_cast<std::size_t>(confirmed));
  EXPECT_TRUE(ordered);
  EXPECT_TRUE(values_match);

  // Delete churn: every confirmed transaction deleted its predecessor's churn row
  // (and the unflushed tail wrote none), so of the confirmed prefix only the newest
  // row survives recovery. Deleted keys must be invisible to point reads and to the
  // rebuilt ordered index alike.
  EXPECT_EQ(IntAt(db.store(), Key::Table(kChurnTable, confirmed - 1)),
            static_cast<std::int64_t>(confirmed - 1));
  for (std::uint64_t id = 0; id + 1 < confirmed; ++id) {
    const Record* r = db.store().Find(Key::Table(kChurnTable, id));
    EXPECT_TRUE(r == nullptr || !r->ReadValue().present)
        << "deleted churn row " << id << " resurrected by recovery";
  }
  std::size_t churn_rows = 0;
  EXPECT_TRUE(db.Execute([&](Txn& txn) {
                  churn_rows =
                      txn.Scan(kChurnTable, 0, ~std::uint64_t{0} >> 1, 0,
                               [](const Key&, const ReadResult&) { return true; });
                }).committed);
  EXPECT_EQ(churn_rows, 1u);
  if (!db.recovery().had_checkpoint) {
    // Full log replay recreated every churn row before deleting it again; the
    // end-of-recovery sweep must have freed the deleted ones instead of leaking them.
    EXPECT_GE(db.recovery().reclaimed_records, confirmed - 1);
  }

  // The reopened generation stays writable and its TIDs sort after recovery.
  const std::uint64_t max_recovered = db.recovery().max_tid;
  ASSERT_GT(max_recovered, 0u);
  EXPECT_TRUE(db.Execute([](Txn& txn) { txn.Add(IncrKey(0), 1); }).committed);
  EXPECT_GT(Record::TidOf(db.store().Find(IncrKey(0))->LoadTidWord()), max_recovered);
  db.Stop();

  std::remove(progress_path.c_str());
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace doppel
