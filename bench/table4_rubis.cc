// Table 4: "The throughput of Doppel, OCC, and 2PL on RUBiS-B and on RUBiS-C with
// Zipfian parameter alpha = 1.8, in millions of transactions per second."
#include <memory>

#include "bench/bench_common.h"
#include "src/common/zipf.h"
#include "src/rubis/workload.h"

namespace doppel {
namespace {

rubis::Config DataConfig(const bench::Flags& flags) {
  rubis::Config d;
  if (flags.full) {
    d.num_users = 1000000;  // paper: 1M users, 33K auctions
    d.num_items = 33000;
  } else {
    d.num_users = 50000;
    d.num_items = 10000;
  }
  return d;
}

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const rubis::Config data = DataConfig(flags);
  const Protocol protocols[] = {Protocol::kDoppel, Protocol::kOcc, Protocol::kTwoPL};

  std::printf("Table 4: RUBiS-B and RUBiS-C (alpha=1.8) throughput\n");
  std::printf("threads=%d users=%llu items=%llu\n\n", flags.ResolvedThreads(),
              static_cast<unsigned long long>(data.num_users),
              static_cast<unsigned long long>(data.num_items));

  const ZipfianGenerator zipf(data.num_items, 1.8);
  Table table({"scheme", "RUBiS-B", "RUBiS-C", "C_split"});
  for (Protocol p : protocols) {
    std::vector<std::string> row{ProtocolName(p)};
    std::size_t split_records = 0;
    for (const rubis::Mix mix : {rubis::Mix::kBidding, rubis::Mix::kContended}) {
      rubis::WorkloadConfig cfg;
      cfg.data = data;
      cfg.mix = mix;
      cfg.alpha = 1.8;
      auto point = bench::MeasurePoint(
          flags, /*default_seconds=*/0.6,
          [&] {
            auto db = std::make_unique<Database>(bench::BaseOptions(
                flags, p, data.num_users * 4 + data.num_items * 8));
            rubis::Populate(db->store(), data);
            return db;
          },
          [&] { return rubis::MakeRubisFactory(cfg, &zipf); });
      row.push_back(FormatCount(point.throughput.mean()));
      if (p == Protocol::kDoppel && mix == rubis::Mix::kContended) {
        split_records = point.last.split_records;
      }
    }
    row.push_back(std::to_string(split_records));
    table.AddRow(std::move(row));
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
