// Scan contention: throughput of a mixed workload where scanners range-scan a fixed
// window of keys while writers increment one hot key inside that window, Doppel vs OCC.
//
// Under OCC every scan records the hot record in its read set, so each concurrent
// increment invalidates in-flight scans and the two halves of the workload serialize.
// Under Doppel the classifier splits the hot key; scans that meet the split record
// during a split phase are stashed (split data is unreadable mid-scan, §7) and retire in
// the next joined phase, while the increments fan out across per-core slices — the
// stash/throughput tradeoff this bench makes visible (stash column).
#include <memory>

#include "bench/bench_common.h"

namespace doppel {
namespace {

constexpr std::uint32_t kScanTable = 2;  // clear of the INCR (0) and RUBiS (16+) tables

void ScanWindowProc(Txn& t, const TxnArgs& a) {
  // a.k1.lo = inclusive window end. Consume the values so the scan cannot be elided.
  std::int64_t sum = 0;
  t.Scan(kScanTable, 0, a.k1.lo, 0, [&](const Key&, const ReadResult& v) {
    sum += v.i;
    return true;
  });
  if (sum < 0) {
    t.UserAbort();  // unreachable; keeps `sum` observable
  }
}

void AddHotProc(Txn& t, const TxnArgs& a) { t.Add(a.k1, 1); }

class ScanContentionSource : public TxnSource {
 public:
  ScanContentionSource(std::uint64_t window, std::uint32_t scan_pct)
      : window_(window), scan_pct_(scan_pct) {}

  TxnRequest Next(Worker& w) override {
    TxnRequest r;
    if (w.rng.NextBounded(100) < scan_pct_) {
      r.proc = &ScanWindowProc;
      r.args.tag = kTagRead;
      r.args.k1 = Key::Table(kScanTable, window_ - 1);
    } else {
      r.proc = &AddHotProc;
      r.args.tag = kTagWrite;
      r.args.k1 = Key::Table(kScanTable, window_ / 2);  // the hot key sits mid-window
    }
    return r;
  }

 private:
  const std::uint64_t window_;
  const std::uint32_t scan_pct_;
};

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const std::uint64_t window = flags.Keys(64);  // scanned keys per transaction
  const std::vector<int> scan_pcts =
      flags.full ? std::vector<int>{1, 5, 10, 20, 30, 50, 70, 90}
                 : std::vector<int>{5, 20, 50, 90};
  const Protocol protocols[] = {Protocol::kDoppel, Protocol::kOcc};

  std::printf("Scan contention: window scan vs hot-key increments (window=%llu)\n",
              static_cast<unsigned long long>(window));
  std::printf("threads=%d phase=%llums\n\n", flags.ResolvedThreads(),
              static_cast<unsigned long long>(flags.phase_ms));

  Table table({"scan%", "Doppel", "OCC", "doppel_split", "doppel_stashes"});
  for (int pct : scan_pcts) {
    std::vector<std::string> row{std::to_string(pct)};
    std::size_t split_records = 0;
    std::uint64_t stashes = 0;
    for (Protocol p : protocols) {
      auto point = bench::MeasurePoint(
          flags, /*default_seconds=*/0.4,
          [&] {
            auto db =
                std::make_unique<Database>(bench::BaseOptions(flags, p, window * 4));
            for (std::uint64_t i = 0; i < window; ++i) {
              db->store().LoadInt(Key::Table(kScanTable, i), 0);
            }
            return db;
          },
          [&] {
            const std::uint32_t scan_pct = static_cast<std::uint32_t>(pct);
            return [=](int) -> std::unique_ptr<TxnSource> {
              return std::make_unique<ScanContentionSource>(window, scan_pct);
            };
          });
      row.push_back(FormatCount(point.throughput.mean()));
      if (p == Protocol::kDoppel) {
        split_records = point.last.split_records;
        stashes = point.last.stats.stash_events;
      }
    }
    row.push_back(std::to_string(split_records));
    row.push_back(std::to_string(stashes));
    table.AddRow(std::move(row));
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
