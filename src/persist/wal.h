// Durability: a persistence *directory* of segmented redo logs plus consistent
// checkpoints (an extension the paper points to in §3: "Existing work suggests that
// asynchronous batched logging could be added to Doppel without becoming a
// bottleneck").
//
// Logging: workers append *logical* operations (not values) with their Silo commit TID
// to per-worker buffers at commit time; a background flusher batches buffers to the
// active log segment on a fixed interval (group commit, optionally fsynced). Commits do
// not wait for disk — durability is asynchronous, matching the paper's assumption.
// Segments rotate at a size threshold; the directory's MANIFEST names the checkpoint
// and the live segments and is replaced atomically on every transition.
//
// Logging operations rather than states is what makes this compatible with phase
// reconciliation: a split-phase commit knows only its operation (e.g. Add(k, 1)), never
// the record's global value. Recovery replays entries in commit-TID order; TID order is
// consistent with the serial order for conflicting non-commutative writes (the later
// writer's GenerateTid absorbs the earlier TID), and commutative split-phase operations
// are order-insensitive by definition (§4).
//
// Checkpoints: the coordinator calls WriteCheckpoint at joined-phase quiesce barriers
// (slices merged, workers parked), which seals the active segment, snapshots the store
// and ordered-index layouts, repoints the MANIFEST, and deletes the sealed segments the
// checkpoint subsumes — bounding recovery cost by the log volume since the last
// barrier-aligned snapshot rather than by database lifetime.
//
// Recovery (Database::Start): load the checkpoint (if any), replay the live segments in
// commit-TID order — partitioned by key stripe across threads, since per-record redo
// order is all that final state depends on — rebuild ordered-index partitions as
// records regain presence, and seed worker TID clocks past the maximum recovered TID so
// the next log generation's TIDs sort after everything recovered.
#ifndef DOPPEL_SRC_PERSIST_WAL_H_
#define DOPPEL_SRC_PERSIST_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/spinlock.h"
#include "src/persist/checkpoint.h"
#include "src/persist/io_env.h"
#include "src/persist/log_reader.h"
#include "src/persist/manifest.h"
#include "src/store/store.h"
#include "src/txn/txn.h"

namespace doppel {

struct WalOptions {
  // Group-commit cadence for the background flusher.
  std::uint64_t flush_interval_us = 2000;
  // fsync the active segment on every group-commit flush (and on segment seal). Off by
  // default: flushed data then survives process death but not OS/power failure, which
  // is the paper's asynchronous-durability regime. See Options::wal_fsync.
  bool fsync = false;
  // Seal the active segment and open a fresh one once it exceeds this size.
  std::uint64_t segment_bytes = 8ull << 20;
  // I/O environment every syscall routes through; nullptr = passthrough default.
  // Tests inject a FaultInjectingIoEnv here.
  IoEnv* env = nullptr;
  // Bounded-retry policy for transient I/O errors (EINTR/EAGAIN/short write).
  IoRetryPolicy retry;
};

struct RecoveryResult {
  bool had_checkpoint = false;
  std::uint64_t checkpoint_records = 0;
  std::uint64_t checkpoint_tables = 0;
  std::uint64_t replayed_txns = 0;
  std::uint64_t replayed_segments = 0;
  // Highest TID restored from checkpoint or segment replay; Database seeds every
  // worker's TID clock past this.
  std::uint64_t max_tid = 0;
  // Records whose replayed history ends in a delete, freed by the end-of-recovery
  // sweep (nothing else runs against the store yet, so no grace period is needed).
  std::uint64_t reclaimed_records = 0;
  int replay_threads = 0;
};

class WriteAheadLog {
 public:
  // Opens (creating if needed) the persistence directory and reads its MANIFEST. Does
  // not start logging: the open/recover lifecycle is
  //   WriteAheadLog wal(dir);          // read manifest
  //   wal.Recover(&store);             // checkpoint + segment replay into the store
  //   wal.StartLogging();              // fresh active segment + background flusher
  explicit WriteAheadLog(std::string dir, WalOptions opts = WalOptions{});
  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Replays the directory's durable state (checkpoint, then live segments in commit-TID
  // order) into `store`, which must not be receiving concurrent transactional writes.
  // `replay_threads` <= 0 picks a default; replay work is partitioned by key stripe, so
  // any thread count produces the same final state as serial replay. Must precede
  // StartLogging. Tolerates torn tails and CRC-failing entries: replay stops at the
  // first damaged entry and ignores all later segments too, so what is applied is
  // exactly a prefix of the logged history — never a state with a gap in the middle.
  RecoveryResult Recover(Store* store, int replay_threads = 0) EXCLUDES(file_mu_);

  // Opens a fresh active segment, registers it in the MANIFEST, and starts the
  // background flusher. Called once (Database::Start does this after recovery).
  void StartLogging() EXCLUDES(file_mu_);
  bool logging() const { return logging_; }

  // Declares the directory's durable state abandoned: drops the checkpoint and every
  // live segment from the manifest (segment numbering keeps climbing, so stale files
  // can never be confused with fresh ones; the files themselves are swept when logging
  // starts). Required before StartLogging when recovery was intentionally skipped —
  // appending a new generation with reset TID clocks into a manifest that still lists
  // the old generation's segments would interleave the generations' TIDs and corrupt
  // any later recovery. Must precede StartLogging.
  void DiscardDurableState() EXCLUDES(file_mu_);

  // Worker-side: append one committed transaction's buffered writes (`arena` holds
  // their byte/ordered operands). `worker_id` selects the per-worker buffer; safe to
  // call concurrently from distinct workers.
  void Append(int worker_id, std::uint64_t commit_tid,
              const std::vector<PendingWrite>& writes,
              const std::vector<PendingWrite>& split_writes, const WriteArena& arena);

  // Forces all buffered bytes to the active segment (fsyncing when configured). Called
  // by the flusher, on Stop, and by tests/clients that need a durability point.
  void Flush() EXCLUDES(file_mu_);

  // Appends a replication-cut record carrying `cut_tid` (the maximum committed TID at
  // the quiesce point). Flushes every buffered entry first, so the physical log prefix
  // ending at the cut contains exactly the transactions the cut covers. PRECONDITION:
  // workers quiesced (coordinator barrier, or post-join in Database::Stop) — otherwise
  // the prefix would not be transaction-consistent. No-op before StartLogging.
  void AppendCut(std::uint64_t cut_tid) EXCLUDES(file_mu_);

  // ---- Retention leases (replica log shipping) ----
  //
  // A lease pins sealed segments on disk from the holder's position onward: while any
  // lease's next-needed segment is <= S, a checkpoint moves S (and every later sealed
  // segment) to the manifest's retained set instead of unlinking it. The holder
  // advances its lease as it finishes shipping each segment; segments every lease has
  // passed are pruned. Acquire returns a lease id; the lease initially needs the
  // oldest live segment (a new replica bootstraps from the current checkpoint, whose
  // redo tail starts there).
  int AcquireRetentionLease() EXCLUDES(file_mu_);
  void AdvanceRetentionLease(int lease_id, std::uint64_t next_needed_segment)
      EXCLUDES(file_mu_);
  void ReleaseRetentionLease(int lease_id) EXCLUDES(file_mu_);
  int retention_leases() const { return lease_count_.load(std::memory_order_acquire); }

  // Takes a consistent checkpoint of `store`: flush + seal the active segment, snapshot
  // store + index layouts to a new checkpoint file, repoint the MANIFEST, delete the
  // sealed segments and the previous checkpoint. PRECONDITION: no worker may be
  // mutating records or appending — the Doppel coordinator calls this at quiesce
  // barriers; tests call it with workers stopped.
  CheckpointStats WriteCheckpoint(const Store& store) EXCLUDES(file_mu_);

  // ---- Durability-failure latch ----
  //
  // The first permanent I/O failure on the append path (segment open/write, fsync,
  // manifest replace, torn-tail truncate) latches the log into a failed state: the
  // active fd is closed, every later Append/Flush/AppendCut becomes a no-op, and no
  // checkpoint can be taken (there is no durable log to align it with). The latch is
  // one-way — the page-cache state after a failed fsync is unknowable, so the log
  // never resumes claiming durability. Clients (Database) observe the latch and run
  // read-only degraded. Losing the in-flight group-commit window is within the
  // asynchronous-durability contract: those commits were never durably acknowledged.
  bool failed() const { return failed_errno_.load(std::memory_order_acquire) != 0; }
  // Positive errno / syscall class of the first permanent failure (0 / kWrite when
  // healthy).
  int failed_errno() const { return failed_errno_.load(std::memory_order_acquire); }
  IoOp failed_op() const {
    return static_cast<IoOp>(failed_op_.load(std::memory_order_acquire));
  }
  // Invoked exactly once, from inside the failing call (flusher, appender, or
  // coordinator thread), when the latch trips. Must be non-blocking and must not
  // re-enter the log. Set before StartLogging; if the log already failed (e.g. mkdir
  // in the constructor), the callback fires immediately.
  void SetDurabilityLostCallback(std::function<void(int, IoOp)> cb) EXCLUDES(file_mu_);

  // ---- Stats (relaxed monotonic counters; racy reads are the contract) ----
  std::uint64_t io_retries() const {
    return io_retries_.load(std::memory_order_relaxed);
  }
  std::uint64_t checkpoint_failures() const {
    return checkpoint_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t appended_txns() const {
    return appended_.load(std::memory_order_relaxed);
  }
  std::uint64_t flushed_batches() const {
    return flushes_.load(std::memory_order_relaxed);
  }
  std::uint64_t flushed_bytes() const {
    return flushed_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t segments_created() const {
    return segments_created_.load(std::memory_order_relaxed);
  }
  std::uint64_t checkpoints_taken() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  std::uint64_t cuts_emitted() const { return cuts_.load(std::memory_order_relaxed); }

  const std::string& dir() const { return dir_; }

 private:
  struct Buffer {
    Spinlock mu;
    // Entries are encoded directly into `bytes` with a backpatched length/CRC header —
    // no per-entry staging buffer, no second copy (`bytes` is contiguous, so the CRC
    // runs over the freshly encoded region in place).
    std::vector<char> bytes GUARDED_BY(mu);
    // Emptied-but-grown vector recycled by the flusher (see FlushLocked): steals and
    // returns are both O(1) swaps, and steady-state appends never re-grow from zero.
    std::vector<char> spare GUARDED_BY(mu);
  };

  struct Lease {
    int id;
    std::uint64_t next_needed_segment;
  };

  void FlusherMain() EXCLUDES(file_mu_);
  void FlushLocked() REQUIRES(file_mu_);  // gathers buffers and writes them
  // create file + header (+fsync); false = latched failed
  bool OpenSegmentLocked(std::uint64_t number) REQUIRES(file_mu_);
  // seal active, open next, save manifest; false = latched failed
  bool RotateLocked() REQUIRES(file_mu_);
  // Trips the durability-failure latch: closes the active fd, records the first
  // failure's errno/op, and fires the durability-lost callback. Idempotent.
  void FailLocked(int err, IoOp op) REQUIRES(file_mu_);
  // WriteFullyRetry against the active fd; on permanent failure latches via
  // FailLocked and returns false.
  bool WriteRetryLocked(const char* data, std::size_t n) REQUIRES(file_mu_);
  // Deletes wal/ckpt/tmp files the manifest does not reference (garbage left by a
  // crash between a manifest repoint and the unlink of what it replaced).
  void SweepUnreferencedLocked() REQUIRES(file_mu_);
  // Unlinks retained segments every lease has advanced past (manifest resaved when
  // anything was pruned).
  void PruneRetainedLocked() REQUIRES(file_mu_);

  const std::string dir_;
  const WalOptions opts_;
  IoEnv* const env_;  // never null (defaults to IoEnv::Default())

  // file_mu_ serializes every durable-state transition: the active segment's fd and
  // byte count, the manifest (and its on-disk replacement), the torn-tail fixup, and
  // the retention-lease table. Ordering: buffer spinlocks (Buffer::mu) nest inside
  // file_mu_ (FlushLocked takes them); never the reverse.
  Spinlock file_mu_;
  Manifest manifest_ GUARDED_BY(file_mu_);
  int fd_ GUARDED_BY(file_mu_) = -1;
  std::uint64_t active_segment_ GUARDED_BY(file_mu_) = 0;
  std::uint64_t active_bytes_ GUARDED_BY(file_mu_) = 0;
  // Lifecycle flag, not shared state: written on the open/recover/start path before
  // any concurrent appender or the flusher exists, then read-only.
  bool logging_ = false;
  // Torn tail of the last live segment found by Recover: StartLogging truncates the
  // file to the valid prefix so the next generation's recovery (and a tailing replica)
  // never sees damaged bytes between two good generations.
  std::uint64_t torn_segment_ GUARDED_BY(file_mu_) = 0;
  std::uint64_t torn_valid_bytes_ GUARDED_BY(file_mu_) = 0;
  bool has_torn_tail_ GUARDED_BY(file_mu_) = false;

  static constexpr int kBuffers = 64;  // worker_id % kBuffers
  std::vector<Buffer> buffers_{kBuffers};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> flushed_bytes_{0};
  std::atomic<std::uint64_t> segments_created_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<std::uint64_t> cuts_{0};
  std::atomic<std::uint64_t> io_retries_{0};
  std::atomic<std::uint64_t> checkpoint_failures_{0};
  // Failure latch: 0 = healthy, else the positive errno of the first permanent
  // failure. Written once under file_mu_ (FailLocked); read lock-free. failed_op_ is
  // stored before failed_errno_ (the release store readers acquire on), so a reader
  // that sees the latch set also sees the op that tripped it.
  std::atomic<int> failed_errno_{0};
  std::atomic<std::uint8_t> failed_op_{0};
  std::function<void(int, IoOp)> on_durability_lost_ GUARDED_BY(file_mu_);
  std::vector<Lease> leases_ GUARDED_BY(file_mu_);
  int next_lease_id_ GUARDED_BY(file_mu_) = 1;
  std::atomic<int> lease_count_{0};
  std::thread flusher_;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_PERSIST_WAL_H_
