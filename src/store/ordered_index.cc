#include "src/store/ordered_index.h"

#include "src/common/dassert.h"
#include "src/common/hash.h"
#include "src/store/record.h"

namespace doppel {

OrderedIndex::OrderedIndex() : slots_(kMaxTables) {}

OrderedIndex::~OrderedIndex() {
  for (Slot& s : slots_) {
    delete s.index.load(std::memory_order_relaxed);
  }
}

OrderedIndex::TableIndex* OrderedIndex::FindTable(std::uint64_t table) const {
  const std::uint64_t tag = table + 1;
  std::size_t i = static_cast<std::size_t>(Mix64(table)) % kMaxTables;
  for (std::size_t probes = 0; probes < kMaxTables; ++probes) {
    const std::uint64_t t = slots_[i].tag.load(std::memory_order_acquire);
    if (t == 0) {
      return nullptr;
    }
    if (t == tag) {
      // tag is published after index (release), so the acquire above orders this load.
      return slots_[i].index.load(std::memory_order_relaxed);
    }
    i = (i + 1) % kMaxTables;
  }
  return nullptr;
}

OrderedIndex::TableIndex& OrderedIndex::GetOrCreateTable(std::uint64_t table) {
  if (TableIndex* t = FindTable(table)) {
    return *t;
  }
  create_mu_.lock();
  TableIndex* existing = FindTable(table);  // re-check under the creation lock
  if (existing != nullptr) {
    create_mu_.unlock();
    return *existing;
  }
  const std::uint64_t tag = table + 1;
  std::size_t i = static_cast<std::size_t>(Mix64(table)) % kMaxTables;
  for (std::size_t probes = 0; probes < kMaxTables; ++probes) {
    if (slots_[i].tag.load(std::memory_order_relaxed) == 0) {
      auto* idx = new TableIndex();
      idx->table = table;
      slots_[i].index.store(idx, std::memory_order_relaxed);
      slots_[i].tag.store(tag, std::memory_order_release);
      create_mu_.unlock();
      return *idx;
    }
    i = (i + 1) % kMaxTables;
  }
  create_mu_.unlock();
  DOPPEL_CHECK(false);  // more than kMaxTables distinct tables
  __builtin_unreachable();
}

void OrderedIndex::Insert(const Key& key, Record* r) {
  IndexPartition& part = PartitionFor(key);
  part.mu.lock();
  const bool inserted = part.entries.emplace(key.lo, r).second;
  if (inserted) {
    part.version.fetch_add(1, std::memory_order_release);
  }
  part.mu.unlock();
}

std::uint64_t OrderedIndex::SnapshotRange(
    IndexPartition& part, std::uint64_t lo, std::uint64_t hi, std::size_t max_items,
    std::vector<std::pair<std::uint64_t, Record*>>* out) {
  part.mu.lock();
  const std::uint64_t version = part.version.load(std::memory_order_relaxed);
  for (auto it = part.entries.lower_bound(lo); it != part.entries.end() && it->first <= hi;
       ++it) {
    out->emplace_back(it->first, it->second);
    if (max_items != 0 && out->size() >= max_items) {
      break;
    }
  }
  part.mu.unlock();
  return version;
}

std::size_t OrderedIndex::size(std::uint64_t table) const {
  const TableIndex* t = FindTable(table);
  if (t == nullptr) {
    return 0;
  }
  std::size_t n = 0;
  for (const IndexPartition& p : t->partitions) {
    p.mu.lock();
    n += p.entries.size();
    p.mu.unlock();
  }
  return n;
}

}  // namespace doppel
