#include "src/persist/manifest.h"

#include <fcntl.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/dassert.h"
#include "src/persist/fsutil.h"

namespace doppel {
namespace {

constexpr const char* kManifestName = "MANIFEST";
// v2 adds "retained" lines (segments kept for replica shipping, not replayed by
// recovery). Loaders accept v1 manifests unchanged — they simply have none.
constexpr const char* kHeader = "doppel-wal-manifest v2";
constexpr const char* kHeaderV1 = "doppel-wal-manifest v1";

}  // namespace

std::string Manifest::SegmentFileName(std::uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(number));
  return buf;
}

std::string Manifest::CheckpointFileName(std::uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%06llu.ckpt",
                static_cast<unsigned long long>(number));
  return buf;
}

bool Manifest::Load(const std::string& dir, Manifest* out) {
  *out = Manifest{};
  std::ifstream in(dir + "/" + kManifestName);
  if (!in.good()) {
    return false;
  }
  std::string line;
  DOPPEL_CHECK(std::getline(in, line) && (line == kHeader || line == kHeaderV1));
  bool saw_next = false;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "checkpoint") {
      fields >> out->checkpoint;
      DOPPEL_CHECK(!fields.fail() && !out->checkpoint.empty());
    } else if (kind == "segment") {
      std::uint64_t n = 0;
      fields >> n;
      DOPPEL_CHECK(!fields.fail());
      DOPPEL_CHECK(out->live_segments.empty() || out->live_segments.back() < n);
      out->live_segments.push_back(n);
    } else if (kind == "retained") {
      std::uint64_t n = 0;
      fields >> n;
      DOPPEL_CHECK(!fields.fail());
      DOPPEL_CHECK(out->retained_segments.empty() || out->retained_segments.back() < n);
      out->retained_segments.push_back(n);
    } else if (kind == "next") {
      fields >> out->next_segment;
      DOPPEL_CHECK(!fields.fail());
      saw_next = true;
    } else {
      DOPPEL_CHECK(false);  // unknown manifest line: corruption or version skew
    }
  }
  DOPPEL_CHECK(saw_next);
  return true;
}

IoFailure Manifest::Save(const std::string& dir, const Manifest& m, IoEnv* env,
                         std::atomic<std::uint64_t>* retries) {
  if (env == nullptr) {
    env = IoEnv::Default();
  }
  const IoRetryPolicy policy;
  const std::string tmp = dir + "/" + kManifestName + ".tmp";
  const std::string final_path = dir + "/" + kManifestName;

  std::ostringstream body;
  body << kHeader << "\n";
  if (!m.checkpoint.empty()) {
    body << "checkpoint " << m.checkpoint << "\n";
  }
  for (std::uint64_t n : m.live_segments) {
    body << "segment " << n << "\n";
  }
  for (std::uint64_t n : m.retained_segments) {
    body << "retained " << n << "\n";
  }
  body << "next " << m.next_segment << "\n";
  const std::string text = body.str();

  const int fd = OpenRetry(env, tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644,
                           policy, retries);
  if (fd < 0) {
    return IoFailure{-fd, IoOp::kOpen};
  }
  int rc = WriteFullyRetry(env, fd, text.data(), text.size(), policy, retries);
  if (rc != 0) {
    env->Close(fd);
    env->Unlink(tmp.c_str());
    return IoFailure{-rc, IoOp::kWrite};
  }
  // A failed fsync is permanent by policy (io_env.h): the page-cache state of the tmp
  // file is unknowable, so it must not be renamed into place.
  rc = env->Fsync(fd);
  env->Close(fd);
  if (rc != 0) {
    env->Unlink(tmp.c_str());
    return IoFailure{-rc, IoOp::kFsync};
  }
  rc = RenameRetry(env, tmp.c_str(), final_path.c_str(), policy, retries);
  if (rc != 0) {
    env->Unlink(tmp.c_str());
    return IoFailure{-rc, IoOp::kRename};
  }
  // The rename itself must be durable before any caller deletes files the *old*
  // manifest depended on.
  return FsyncDirEnv(env, dir);
}

}  // namespace doppel
