// Figure 11: "Total throughput for INCRZ as a function of alpha (the Zipfian distribution
// parameter)." Series: Doppel, OCC, 2PL, Atomic.
#include <memory>

#include "bench/bench_common.h"
#include "src/common/zipf.h"
#include "src/workload/incr.h"

namespace doppel {
namespace {

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const std::uint64_t keys = flags.Keys(100000);
  const std::vector<double> alphas =
      flags.full ? std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 1.0,
                                       1.2, 1.4, 1.6, 1.8, 2.0}
                 : std::vector<double>{0.0, 0.4, 0.8, 1.0, 1.4, 2.0};
  const Protocol protocols[] = {Protocol::kDoppel, Protocol::kOcc, Protocol::kTwoPL,
                                Protocol::kAtomic};

  std::printf("Figure 11: INCRZ throughput vs alpha\n");
  std::printf("threads=%d keys=%llu\n\n", flags.ResolvedThreads(),
              static_cast<unsigned long long>(keys));

  Table table({"alpha", "Doppel", "OCC", "2PL", "Atomic", "doppel_split"});
  for (double alpha : alphas) {
    const ZipfianGenerator zipf(keys, alpha);
    std::vector<std::string> row{FormatDouble(alpha, 1)};
    std::size_t split_records = 0;
    for (Protocol p : protocols) {
      auto point = bench::MeasurePoint(
          flags, /*default_seconds=*/0.4,
          [&] {
            auto db = std::make_unique<Database>(
                bench::BaseOptions(flags, p, keys * 2));
            PopulateIncr(db->store(), keys);
            return db;
          },
          [&] { return MakeIncrZFactory(&zipf); });
      row.push_back(FormatCount(point.throughput.mean()));
      if (p == Protocol::kDoppel) {
        split_records = point.last.split_records;
      }
    }
    row.push_back(std::to_string(split_records));
    table.AddRow(std::move(row));
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
