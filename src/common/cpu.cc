#include "src/common/cpu.h"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <thread>

namespace doppel {

int NumCpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool PinThreadToCpu(int cpu) {
  const int ncpu = NumCpus();
  if (ncpu <= 0) {
    return false;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu % ncpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

}  // namespace doppel
