// Ablations of Doppel's design choices (DESIGN.md §4) — not in the paper.
//
//  A. Classifier off vs automatic vs manual labeling on INCR1-100%: automatic detection
//     should match manual labeling; disabling splitting degenerates to OCC.
//  B. Conflict sample rate sensitivity (sample 1/1 .. 1/64).
//  C. RUBiS StoreBid programmed commutatively (Fig. 7) vs plain read-modify-write
//     (Fig. 6) under Doppel: the plain form cannot be split and serializes (§8.8).
#include <memory>

#include "bench/bench_common.h"
#include "src/common/zipf.h"
#include "src/rubis/workload.h"
#include "src/workload/incr.h"

namespace doppel {
namespace {

double MeasureIncr(const bench::Flags& flags, Options opts, std::uint64_t keys,
                   std::uint32_t hot_pct) {
  static std::atomic<std::uint64_t> hot{0};
  auto point = bench::MeasurePoint(
      flags, /*default_seconds=*/0.4,
      [&] {
        auto db = std::make_unique<Database>(opts);
        PopulateIncr(db->store(), keys);
        if (opts.manual_split_only && opts.classifier.max_split_records > 0 &&
            opts.classifier.sample_every == 0xdead) {
          // sentinel unused; manual labeling handled by caller via MarkSplitManually
        }
        return db;
      },
      [&] { return MakeIncr1Factory(keys, hot_pct, &hot); });
  return point.throughput.mean();
}

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const std::uint64_t keys = flags.Keys(100000);
  std::atomic<std::uint64_t> hot{0};

  std::printf("Doppel ablations (threads=%d keys=%llu)\n\n", flags.ResolvedThreads(),
              static_cast<unsigned long long>(keys));

  // ---- A: splitting machinery on INCR1-100% ----
  {
    Table table({"variant", "txn/s"});

    Options off = bench::BaseOptions(flags, Protocol::kDoppel, keys * 2);
    off.manual_split_only = true;  // no labels: never splits
    table.AddRow({"no-split (classifier off)", FormatCount(MeasureIncr(flags, off, keys, 100))});

    Options autodetect = bench::BaseOptions(flags, Protocol::kDoppel, keys * 2);
    table.AddRow({"automatic classifier",
                  FormatCount(MeasureIncr(flags, autodetect, keys, 100))});

    // Manual labeling: split the hot key from the start.
    {
      auto point = bench::MeasurePoint(
          flags, 0.4,
          [&] {
            Options manual = bench::BaseOptions(flags, Protocol::kDoppel, keys * 2);
            manual.manual_split_only = true;
            auto db = std::make_unique<Database>(manual);
            PopulateIncr(db->store(), keys);
            db->MarkSplitManually(IncrKey(0), OpCode::kAdd);
            return db;
          },
          [&] { return MakeIncr1Factory(keys, 100, &hot); });
      table.AddRow({"manual labeling", FormatCount(point.throughput.mean())});
    }

    Options occ = bench::BaseOptions(flags, Protocol::kOcc, keys * 2);
    table.AddRow({"OCC reference", FormatCount(MeasureIncr(flags, occ, keys, 100))});

    std::printf("A. INCR1 100%% hot: split machinery\n");
    table.Print();
    if (flags.csv) {
      table.PrintCsv();
    }
    std::printf("\n");
  }

  // ---- B: sample-rate sensitivity ----
  {
    Table table({"sample 1/N", "txn/s", "split"});
    for (std::uint32_t rate : {1u, 4u, 16u, 64u}) {
      Options opts = bench::BaseOptions(flags, Protocol::kDoppel, keys * 2);
      opts.classifier.sample_every = rate;
      auto point = bench::MeasurePoint(
          flags, 0.4,
          [&] {
            auto db = std::make_unique<Database>(opts);
            PopulateIncr(db->store(), keys);
            return db;
          },
          [&] { return MakeIncr1Factory(keys, 100, &hot); });
      table.AddRow({std::to_string(rate), FormatCount(point.throughput.mean()),
                    std::to_string(point.last.split_records)});
    }
    std::printf("B. INCR1 100%% hot: conflict sample rate\n");
    table.Print();
    if (flags.csv) {
      table.PrintCsv();
    }
    std::printf("\n");
  }

  // ---- C: commutative vs plain StoreBid under Doppel (RUBiS-C, alpha=1.8) ----
  {
    rubis::Config data;
    data.num_users = flags.full ? 1000000 : 50000;
    data.num_items = flags.full ? 33000 : 10000;
    const ZipfianGenerator zipf(data.num_items, 1.8);
    Table table({"StoreBid form", "txn/s", "split"});
    for (const bool plain : {false, true}) {
      rubis::WorkloadConfig cfg;
      cfg.data = data;
      cfg.mix = rubis::Mix::kContended;
      cfg.alpha = 1.8;
      cfg.plain_store_bid = plain;
      auto point = bench::MeasurePoint(
          flags, 0.5,
          [&] {
            auto db = std::make_unique<Database>(bench::BaseOptions(
                flags, Protocol::kDoppel, data.num_users * 4 + data.num_items * 8));
            rubis::Populate(db->store(), data);
            return db;
          },
          [&] { return rubis::MakeRubisFactory(cfg, &zipf); });
      table.AddRow({plain ? "plain (Fig. 6)" : "commutative (Fig. 7)",
                    FormatCount(point.throughput.mean()),
                    std::to_string(point.last.split_records)});
    }
    std::printf("C. RUBiS-C: StoreBid programming form under Doppel\n");
    table.Print();
    if (flags.csv) {
      table.PrintCsv();
    }
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
