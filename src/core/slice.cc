#include "src/core/slice.h"

#include <algorithm>
#include <utility>

#include "src/common/dassert.h"
#include "src/store/ordered_index.h"

namespace doppel {

void Slice::Reset(OpCode op, std::size_t topk_k) {
  dirty = false;
  has = false;
  writes = 0;
  stashes = 0;
  switch (op) {
    case OpCode::kAdd:
      acc = 0;
      break;
    case OpCode::kMult:
      acc = 1;
      break;
    case OpCode::kMax:
    case OpCode::kMin:
      acc = 0;  // meaningful only once `has` is set
      break;
    case OpCode::kOPut:
      tuple = OrderedTuple{};
      break;
    case OpCode::kTopKInsert:
      topk = TopKSet(topk_k == 0 ? TopKSet::kDefaultK : topk_k);
      break;
    default:
      DOPPEL_CHECK(false);  // non-splittable op in a split plan
  }
}

void SliceApply(Slice& slice, const PendingWrite& w, const WriteArena& arena) {
  switch (w.op) {
    case OpCode::kAdd:
      slice.acc += w.n;
      break;
    case OpCode::kMax:
      slice.acc = slice.has ? std::max(slice.acc, w.n) : w.n;
      slice.has = true;
      break;
    case OpCode::kMin:
      slice.acc = slice.has ? std::min(slice.acc, w.n) : w.n;
      slice.has = true;
      break;
    case OpCode::kMult:
      slice.acc *= w.n;
      break;
    case OpCode::kOPut: {
      OrderedTuple next{w.OrderOf(arena), w.core, std::string(w.PayloadOf(arena))};
      if (!slice.has || OrderedTuple::Wins(next, slice.tuple)) {
        slice.tuple = std::move(next);
      }
      slice.has = true;
      break;
    }
    case OpCode::kTopKInsert:
      slice.topk.Insert(
          OrderedTuple{w.OrderOf(arena), w.core, std::string(w.PayloadOf(arena))});
      break;
    default:
      DOPPEL_CHECK(false);
  }
  slice.dirty = true;
  slice.writes++;
}

void MergeSliceToGlobal(Record* r, OpCode op, const Slice& slice, std::uint64_t new_tid,
                        OrderedIndex* index) {
  if (!slice.dirty) {
    return;
  }
  r->LockOcc();
  const bool present = r->PresentLocked();
  switch (op) {
    case OpCode::kAdd:
      r->SetInt((present ? r->IntValueLocked() : 0) + slice.acc);
      break;
    case OpCode::kMax:
      if (slice.has) {
        r->SetInt(present ? std::max(r->IntValueLocked(), slice.acc) : slice.acc);
      }
      break;
    case OpCode::kMin:
      if (slice.has) {
        r->SetInt(present ? std::min(r->IntValueLocked(), slice.acc) : slice.acc);
      }
      break;
    case OpCode::kMult:
      r->SetInt((present ? r->IntValueLocked() : 1) * slice.acc);
      break;
    case OpCode::kOPut:
      if (slice.has) {
        r->MutateComplex([&](ComplexValue& cv) {
          auto& cur = std::get<OrderedTuple>(cv);
          if (!present || OrderedTuple::Wins(slice.tuple, cur)) {
            cur = slice.tuple;
          }
        });
      }
      break;
    case OpCode::kTopKInsert:
      r->MutateComplex(
          [&](ComplexValue& cv) { std::get<TopKSet>(cv).MergeFrom(slice.topk); });
      break;
    default:
      DOPPEL_CHECK(false);
  }
  if (!present && index != nullptr && r->PresentLocked()) {
    index->Insert(r->key(), r);
  }
  r->NoteWriteOp(static_cast<std::uint8_t>(op));
  r->UnlockOccSetTid(new_tid);
}

}  // namespace doppel
