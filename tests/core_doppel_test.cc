// End-to-end Database tests for phase reconciliation: classification, splitting,
// stashing, reconciliation exactness, adaptivity, and the Execute API.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/database.h"
#include "src/workload/driver.h"
#include "src/workload/incr.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::IntAt;

Options FastDoppel(int workers = 2) {
  Options o;
  o.protocol = Protocol::kDoppel;
  o.num_workers = workers;
  o.phase_us = 2000;  // 2ms phases: many cycles per test second
  o.store_capacity = 1 << 14;
  return o;
}

TEST(Doppel, HotKeySplitsWithinBoundedTime) {
  Database db(FastDoppel());
  PopulateIncr(db.store(), 64);
  std::atomic<std::uint64_t> hot{0};
  db.Start(MakeIncr1Factory(64, 100, &hot));
  bool split = false;
  for (int i = 0; i < 200 && !split; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    split = db.LastPlanSize() >= 1;
  }
  db.Stop();
  EXPECT_TRUE(split) << "100% hot-key Adds must be detected and split within 2s";
  EXPECT_EQ(IntAt(db.store(), IncrKey(0)),
            static_cast<std::int64_t>(db.CollectStats().committed));
}

TEST(Doppel, UniformWorkloadNeverSplits) {
  Database db(FastDoppel());
  PopulateIncr(db.store(), 8192);
  std::atomic<std::uint64_t> hot{0};
  RunMetrics m = RunWorkload(db, MakeIncr1Factory(8192, 0, &hot), 400, 50);
  // Rare random collisions may trigger an (empty) split-phase check, but no record has
  // enough conflicts to qualify for splitting.
  EXPECT_EQ(m.split_records, 0u);
}

TEST(Doppel, RotatingHotKeyResplits) {
  Database db(FastDoppel());
  PopulateIncr(db.store(), 64);
  std::atomic<std::uint64_t> hot{0};
  db.Start(MakeIncr1Factory(64, 100, &hot));

  auto wait_for_split_of = [&](std::uint64_t key_id) {
    for (int i = 0; i < 300; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      for (const auto& [key, op] : db.doppel()->LastPlanEntries()) {
        if (key == IncrKey(key_id) && op == OpCode::kAdd) {
          return true;
        }
      }
    }
    return false;
  };
  EXPECT_TRUE(wait_for_split_of(0));
  hot.store(7);  // popularity moves (§8.3)
  EXPECT_TRUE(wait_for_split_of(7));
  db.Stop();
  // Exactness across the change: every commit incremented exactly one key.
  std::int64_t sum = 0;
  for (std::uint64_t k = 0; k < 64; ++k) {
    sum += IntAt(db.store(), IncrKey(k));
  }
  EXPECT_EQ(sum, static_cast<std::int64_t>(db.CollectStats().committed));
}

TEST(Doppel, ManualLabelingSplitsImmediately) {
  Options o = FastDoppel();
  o.manual_split_only = true;
  Database db(o);
  PopulateIncr(db.store(), 64);
  db.MarkSplitManually(IncrKey(3), OpCode::kAdd);
  std::atomic<std::uint64_t> hot{3};
  RunMetrics m = RunWorkload(db, MakeIncr1Factory(64, 100, &hot), 300, 50);
  EXPECT_EQ(m.split_records, 1u);
  const auto entries = db.doppel()->LastPlanEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, IncrKey(3));
  EXPECT_EQ(IntAt(db.store(), IncrKey(3)),
            static_cast<std::int64_t>(m.stats.committed));
}

TEST(Doppel, ReadsOfSplitDataStashAndStillCommit) {
  Options o = FastDoppel();
  o.manual_split_only = true;
  o.phase_us = 5000;
  Database db(o);
  db.store().LoadInt(Key::FromU64(1), 0);
  db.MarkSplitManually(Key::FromU64(1), OpCode::kAdd);

  // A writer source keeps the split phases busy.
  struct AddSource : TxnSource {
    TxnRequest Next(Worker&) override {
      TxnRequest r;
      r.proc = +[](Txn& t, const TxnArgs&) { t.Add(Key::FromU64(1), 1); };
      return r;
    }
  };
  db.Start([](int) { return std::make_unique<AddSource>(); });

  // Reads submitted while split phases cycle must block (stash) but eventually commit
  // with a value consistent with all merges so far.
  std::int64_t prev = -1;
  for (int i = 0; i < 50; ++i) {
    std::int64_t v = -1;
    TxnResult res = db.Execute([&](Txn& t) { v = t.GetInt(Key::FromU64(1)).value_or(0); });
    ASSERT_TRUE(res.committed);
    EXPECT_GE(v, prev);  // counter only grows
    prev = v;
  }
  db.Stop();
  EXPECT_GT(db.CollectStats().stash_events, 0u)
      << "with 5ms phases and a hot writer, some reads must have stashed";
  // All commits except the 50 read transactions incremented the counter.
  EXPECT_EQ(IntAt(db.store(), Key::FromU64(1)),
            static_cast<std::int64_t>(db.CollectStats().committed) - 50);
}

TEST(Doppel, PairedAddsStayEqualForReaders) {
  // Writers Add to (a, b) in one transaction; committed readers must always observe
  // a == b. Exercises stash ordering and barrier ordering of merges (§5.6).
  Options o = FastDoppel();
  o.phase_us = 3000;
  Database db(o);
  const Key a = Key::FromU64(1);
  const Key b = Key::FromU64(2);
  db.store().LoadInt(a, 0);
  db.store().LoadInt(b, 0);

  struct PairSource : TxnSource {
    TxnRequest Next(Worker&) override {
      TxnRequest r;
      r.proc = +[](Txn& t, const TxnArgs&) {
        t.Add(Key::FromU64(1), 1);
        t.Add(Key::FromU64(2), 1);
      };
      return r;
    }
  };
  db.Start([](int) { return std::make_unique<PairSource>(); });
  for (int i = 0; i < 100; ++i) {
    std::int64_t va = -1;
    std::int64_t vb = -2;
    TxnResult res = db.Execute([&](Txn& t) {
      va = t.GetInt(Key::FromU64(1)).value_or(0);
      vb = t.GetInt(Key::FromU64(2)).value_or(0);
    });
    ASSERT_TRUE(res.committed);
    EXPECT_EQ(va, vb) << "transactionally-paired counters diverged";
  }
  db.Stop();
  EXPECT_EQ(IntAt(db.store(), a), IntAt(db.store(), b));
}

TEST(Doppel, ExecuteUserAbortReported) {
  Database db(FastDoppel());
  db.store().LoadInt(Key::FromU64(1), 5);
  db.Start();
  TxnResult res = db.Execute([](Txn& t) {
    t.PutInt(Key::FromU64(1), 99);
    t.UserAbort();
  });
  EXPECT_FALSE(res.committed);
  db.Stop();
  EXPECT_EQ(IntAt(db.store(), Key::FromU64(1)), 5);
}

TEST(Doppel, ExecuteFromManyClientThreads) {
  Database db(FastDoppel());
  db.store().LoadInt(Key::FromU64(1), 0);
  db.Start();
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 250; ++i) {
        ASSERT_TRUE(db.Execute([](Txn& t) { t.Add(Key::FromU64(1), 1); }).committed);
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  db.Stop();
  EXPECT_EQ(IntAt(db.store(), Key::FromU64(1)), 1000);
}

TEST(Doppel, SingleWorkerStillExact) {
  Database db(FastDoppel(1));
  PopulateIncr(db.store(), 16);
  std::atomic<std::uint64_t> hot{0};
  RunMetrics m = RunWorkload(db, MakeIncr1Factory(16, 100, &hot), 300, 50);
  EXPECT_EQ(IntAt(db.store(), IncrKey(0)), static_cast<std::int64_t>(m.stats.committed));
}

TEST(Doppel, StopDuringSplitPhaseReconcilesEverything) {
  // Stop() must land all slice state in the global store even when called mid-split.
  Options o = FastDoppel();
  o.phase_us = 50000;  // long phases: Stop almost certainly lands inside a split phase
  o.manual_split_only = true;
  Database db(o);
  db.store().LoadInt(Key::FromU64(1), 0);
  db.MarkSplitManually(Key::FromU64(1), OpCode::kAdd);
  struct AddSource : TxnSource {
    TxnRequest Next(Worker&) override {
      TxnRequest r;
      r.proc = +[](Txn& t, const TxnArgs&) { t.Add(Key::FromU64(1), 1); };
      return r;
    }
  };
  db.Start([](int) { return std::make_unique<AddSource>(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  db.Stop();
  EXPECT_EQ(IntAt(db.store(), Key::FromU64(1)),
            static_cast<std::int64_t>(db.CollectStats().committed));
}

TEST(Doppel, LatencyTagsRecorded) {
  Database db(FastDoppel());
  PopulateIncr(db.store(), 64);
  std::atomic<std::uint64_t> hot{0};
  RunMetrics m = RunWorkload(db, MakeIncr1Factory(64, 50, &hot), 300, 50);
  EXPECT_GT(m.stats.committed_by_tag[kTagWrite], 0u);
  EXPECT_GT(m.stats.latency_by_tag[kTagWrite].count(), 0u);
  EXPECT_GT(m.stats.latency_by_tag[kTagWrite].Mean(), 0.0);
}

class AllProtocolExactness
    : public ::testing::TestWithParam<std::tuple<Protocol, OpCode>> {};

// Every engine must produce the exact serial-equivalent result for each commutative op
// hammered by all workers on one key.
TEST_P(AllProtocolExactness, HotKeyOpExactness) {
  const auto [protocol, op] = GetParam();
  Options o;
  o.protocol = protocol;
  o.num_workers = 2;
  o.phase_us = 2000;
  o.store_capacity = 1 << 10;
  Database db(o);
  const Key k = Key::FromU64(1);
  db.store().LoadInt(k, 0);
  db.Start();
  constexpr int kOpsPerClient = 400;
  std::atomic<std::int64_t> expected_max{INT64_MIN};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      for (int i = 0; i < kOpsPerClient; ++i) {
        const std::int64_t v = static_cast<std::int64_t>(rng.NextBounded(1000000));
        switch (op) {
          case OpCode::kAdd:
            ASSERT_TRUE(db.Execute([&](Txn& t) { t.Add(k, 1); }).committed);
            break;
          case OpCode::kMax: {
            ASSERT_TRUE(db.Execute([&](Txn& t) { t.Max(k, v); }).committed);
            std::int64_t cur = expected_max.load();
            while (v > cur && !expected_max.compare_exchange_weak(cur, v)) {
            }
            break;
          }
          default:
            break;
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  db.Stop();
  if (op == OpCode::kAdd) {
    EXPECT_EQ(IntAt(db.store(), k), 2 * kOpsPerClient);
  } else {
    EXPECT_EQ(IntAt(db.store(), k), std::max<std::int64_t>(0, expected_max.load()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllProtocolExactness,
    ::testing::Combine(::testing::Values(Protocol::kDoppel, Protocol::kOcc,
                                         Protocol::kTwoPL, Protocol::kAtomic),
                       ::testing::Values(OpCode::kAdd, OpCode::kMax)),
    [](const ::testing::TestParamInfo<std::tuple<Protocol, OpCode>>& info) {
      return std::string(ProtocolName(std::get<0>(info.param))) +
             OpName(std::get<1>(info.param));
    });

// Regression (double merge at shutdown): MaybeTransition's early stop_ return acks the
// transition but leaves seen_word stale, so the worker loop re-enters the same
// transition. Before the fix, MergeWorkerSlices never cleared Slice::dirty, and the
// re-entered transition re-merged the same accumulator — double-applying kAdd/kMult
// deltas. The exact interleaving is forced here on a raw engine with no coordinator.
TEST(DoppelRegression, ShutdownReentryDoesNotDoubleMergeSlices) {
  std::atomic<bool> stop{false};
  Store store(1 << 10);
  Options opts;
  opts.manual_split_only = true;
  DoppelEngine engine(store, opts, stop);
  std::vector<std::unique_ptr<Worker>> workers;
  workers.push_back(std::make_unique<Worker>(0, 42));
  engine.RegisterWorkers(workers);
  Worker& w = *workers[0];
  const Key k = Key::FromU64(1);
  store.LoadInt(k, 100);
  engine.MarkSplitManually(k, OpCode::kAdd);

  // JOINED -> SPLIT, single-threaded barrier protocol (as the coordinator would run it).
  engine.controller().BeginTransition(Phase::kSplit);
  engine.BarrierBuildPlan();
  engine.controller().Release();
  engine.BetweenTxns(w);
  ASSERT_EQ(engine.CurrentPhase(w), Phase::kSplit);

  // One committed split write: the worker's slice now holds a dirty +5 accumulator.
  w.txn.Reset(&engine, &w);
  w.txn.Add(k, 5);
  ASSERT_EQ(engine.Commit(w, w.txn), TxnStatus::kCommitted);

  // SPLIT -> JOINED whose release the worker never observes (the shutdown race): with
  // stop set before the worker notices the transition, it merges, acks, and returns
  // early from the release spin with seen_word still stale...
  engine.controller().BeginTransition(Phase::kJoined);
  stop.store(true);
  engine.BetweenTxns(w);  // merge #1, ack, early return
  // ...so the worker loop re-enters the transition and merges again.
  engine.BetweenTxns(w);  // re-entry: must be a no-op on the already-consumed slice
  engine.controller().Release();
  engine.BarrierAfterReconcile();

  EXPECT_EQ(IntAt(store, k), 105) << "re-entered transition re-applied the Add delta";
}

}  // namespace
}  // namespace doppel
