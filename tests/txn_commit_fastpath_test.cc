// Commit-path constant-factor guarantees (the PR-5 acceptance criteria):
//   * PendingWrite stays a <= 32-byte trivially-copyable POD;
//   * committing a single-write transaction performs no heap allocation and never
//     touches the commit-order sort scratch (the sort is skipped for n <= 1).
//
// Allocation counting overrides global operator new/delete with a counter. The counted
// window is a warmed-up single transaction executed directly against an OccEngine on
// this thread — no Database, no worker threads — so the count is exact.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "src/store/store.h"
#include "src/txn/occ_engine.h"
#include "src/txn/txn.h"
#include "src/txn/worker.h"

namespace {

// All threads share the counter (gtest is single-threaded here; atomics keep any
// background allocation visible rather than racy).
std::atomic<std::uint64_t> g_allocs{0};

void* CountedAlloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t) { return CountedAlloc(size); }
void* operator new[](std::size_t size, std::align_val_t) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace doppel {
namespace {

std::uint64_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }

TEST(CommitFastPath, PendingWriteIsSmallPod) {
  static_assert(sizeof(PendingWrite) <= 32,
                "PendingWrite grew past 32 bytes: the commit path sorts and copies "
                "these millions of times per second");
  static_assert(std::is_trivially_copyable_v<PendingWrite>);
  SUCCEED();
}

TEST(CommitFastPath, SingleIntWriteCommitAllocatesNothing) {
  Store store(64);
  OccEngine engine(store);
  Worker w(0, 0x1234);
  store.LoadInt(Key::FromU64(7), 0);

  Txn& txn = w.txn;
  // Warm-up: read/write-set vectors and the arena grow to steady-state capacity.
  for (int i = 0; i < 4; ++i) {
    txn.Reset(&engine, &w);
    txn.Add(Key::FromU64(7), 1);
    ASSERT_EQ(engine.Commit(w, txn), TxnStatus::kCommitted);
  }

  const std::uint64_t before = AllocCount();
  txn.Reset(&engine, &w);
  txn.Add(Key::FromU64(7), 1);
  ASSERT_EQ(engine.Commit(w, txn), TxnStatus::kCommitted);
  EXPECT_EQ(AllocCount(), before) << "single-write commit must not heap-allocate";
  // The index-sort scratch was never touched: the single-write path skips sorting.
  EXPECT_EQ(txn.commit_order().capacity(), 0u);
  EXPECT_EQ(std::get<std::int64_t>(store.ReadSnapshot(Key::FromU64(7)).value), 5);
}

TEST(CommitFastPath, SingleBytesWriteReusesWarmArena) {
  Store store(64);
  OccEngine engine(store);
  Worker w(0, 0x5678);
  const Key key = Key::FromU64(9);
  const std::string payload(100, 'x');  // well past SSO: would heap-churn without the arena
  store.LoadBytes(key, payload);

  Txn& txn = w.txn;
  for (int i = 0; i < 4; ++i) {
    txn.Reset(&engine, &w);
    txn.PutBytes(key, payload);
    ASSERT_EQ(engine.Commit(w, txn), TxnStatus::kCommitted);
  }

  const std::uint64_t before = AllocCount();
  txn.Reset(&engine, &w);
  txn.PutBytes(key, payload);  // copies into the recycled arena, no allocation
  ASSERT_EQ(engine.Commit(w, txn), TxnStatus::kCommitted);
  EXPECT_EQ(AllocCount(), before)
      << "a warmed arena + preallocated record string must absorb the payload";
}

TEST(CommitFastPath, MultiWriteCommitStillAppliesInIssueOrder) {
  // Not an allocation test: a cheap guard that the index-sort path (n > 1, duplicate
  // records) applies same-record writes in issue order. PutInt(3) then Add(4) must end
  // at 7 regardless of how the sort permuted the slots.
  Store store(64);
  OccEngine engine(store);
  Worker w(0, 0x9abc);
  store.LoadInt(Key::FromU64(1), 100);
  store.LoadInt(Key::FromU64(2), 0);

  Txn& txn = w.txn;
  txn.Reset(&engine, &w);
  txn.PutInt(Key::FromU64(1), 3);
  txn.Add(Key::FromU64(2), 1);
  txn.Add(Key::FromU64(1), 4);
  ASSERT_EQ(engine.Commit(w, txn), TxnStatus::kCommitted);
  EXPECT_EQ(std::get<std::int64_t>(store.ReadSnapshot(Key::FromU64(1)).value), 7);
  EXPECT_GT(txn.commit_order().capacity(), 0u);  // the sort path ran
}

}  // namespace
}  // namespace doppel
