// RUBiS data generation and population.
#ifndef DOPPEL_SRC_RUBIS_DATA_H_
#define DOPPEL_SRC_RUBIS_DATA_H_

#include <cstdint>
#include <string>

#include "src/rubis/schema.h"
#include "src/store/store.h"

namespace doppel {
namespace rubis {

struct Config {
  // Paper (§8.8): 1M users bidding on 33K auctions; original RUBiS uses 20 categories
  // and 62 regions. Benchmarks scale these down for CI by default.
  std::uint64_t num_users = 100000;
  std::uint64_t num_items = 33000;
  std::uint64_t num_categories = 20;
  std::uint64_t num_regions = 62;
};

// Deterministic attribute derivations shared by population and transactions.
std::uint64_t SellerOf(std::uint64_t item, const Config& cfg);
std::uint64_t CategoryOf(std::uint64_t item, const Config& cfg);
std::uint64_t RegionOf(std::uint64_t item, const Config& cfg);

// Row payload builders (deterministic byte strings).
std::string UserRow(std::uint64_t user);
std::string ItemRow(std::uint64_t item, std::uint64_t seller, std::uint64_t category,
                    std::uint64_t region);
std::string BidRow(std::uint64_t item, std::uint64_t bidder, std::int64_t amount);
std::string CommentRow(std::uint64_t item, std::uint64_t from, std::int64_t rating);
std::string BuyNowRow(std::uint64_t item, std::uint64_t buyer);
std::string CategoryRow(std::uint64_t category);
std::string RegionRow(std::uint64_t region);

// Loads all tables and materialized metadata, and publishes `cfg` for the transaction
// procedures (one active RUBiS configuration per process; see txns.h).
void Populate(Store& store, const Config& cfg);

// The configuration published by the last Populate call.
const Config& ActiveConfig();

}  // namespace rubis
}  // namespace doppel

#endif  // DOPPEL_SRC_RUBIS_DATA_H_
