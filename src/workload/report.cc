#include "src/workload/report.h"

#include <cstdio>

#include "src/common/dassert.h"
#include "src/common/histogram.h"
#include "src/workload/driver.h"

namespace doppel {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  DOPPEL_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t wcol : widths) {
    total += wcol + 2;
  }
  for (std::size_t i = 0; i < total; ++i) {
    std::printf("-");
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::PrintCsv() const {
  auto print_row = [](const std::vector<std::string>& cells) {
    std::printf("csv");
    for (const auto& cell : cells) {
      std::printf(",%s", cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string FormatCount(double v) {
  char buf[64];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatMicros(double nanos) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", nanos / 1000.0);
  return buf;
}

std::string FormatBytes(double v) {
  char buf[64];
  if (v >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", v / (1024.0 * 1024.0 * 1024.0));
  } else if (v >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", v / (1024.0 * 1024.0));
  } else if (v >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", v / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", v);
  }
  return buf;
}

std::string WalSummary(const RunMetrics& m) {
  if (!m.wal_enabled) {
    return "";
  }
  char buf[512];
  int n = std::snprintf(
      buf, sizeof(buf),
      "wal: %s txns logged, %llu flushes, %s, %llu segments, %llu checkpoints, "
      "%llu cuts",
      FormatCount(static_cast<double>(m.wal_appended_txns)).c_str(),
      static_cast<unsigned long long>(m.wal_flushed_batches),
      FormatBytes(static_cast<double>(m.wal_flushed_bytes)).c_str(),
      static_cast<unsigned long long>(m.wal_segments),
      static_cast<unsigned long long>(m.wal_checkpoints),
      static_cast<unsigned long long>(m.wal_cuts));
  // One-line durability health: healthy runs show retry absorption (usually 0), a
  // degraded run names the syscall and errno that tripped the read-only latch.
  if (n > 0 && static_cast<std::size_t>(n) < sizeof(buf)) {
    if (m.wal_degraded) {
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                         ", health DEGRADED read-only (%s failed, errno %d)",
                         m.wal_failed_op, m.wal_failed_errno);
    } else {
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                         ", health ok (%llu io retries, %llu ckpt retries)",
                         static_cast<unsigned long long>(m.wal_io_retries),
                         static_cast<unsigned long long>(m.wal_checkpoint_failures));
    }
  }
  if (m.replica_enabled && n > 0 && static_cast<std::size_t>(n) < sizeof(buf)) {
    std::snprintf(
        buf + n, sizeof(buf) - static_cast<std::size_t>(n),
        "\nreplica: cut tid %llu, %llu cuts published, %s txns applied, %s shipped, "
        "lag %s/%llu entries, publish p99 %lluus",
        static_cast<unsigned long long>(m.replica_cut_tid),
        static_cast<unsigned long long>(m.replica_cuts),
        FormatCount(static_cast<double>(m.replica_applied_txns)).c_str(),
        FormatBytes(static_cast<double>(m.replica_shipped_bytes)).c_str(),
        FormatBytes(static_cast<double>(m.replica_lag_bytes)).c_str(),
        static_cast<unsigned long long>(m.replica_lag_entries),
        static_cast<unsigned long long>(m.replica_publish_lag_p99_us));
  }
  return buf;
}

std::vector<std::string> LatencyPercentileHeaders() {
  return {"mean_us", "p50_us", "p90_us", "p99_us", "max_us"};
}

std::vector<std::string> LatencyPercentileCells(const LatencyHistogram& h) {
  // Every sample must carry a real submission timestamp: Database::Submit and the worker
  // loop both stamp submit_ns before execution, so a zero minimum means some path lost
  // the stamp and its queueing delay.
  DOPPEL_CHECK(h.count() == 0 || h.min() > 0);
  return {FormatMicros(h.Mean()), FormatMicros(static_cast<double>(h.Percentile(50))),
          FormatMicros(static_cast<double>(h.Percentile(90))),
          FormatMicros(static_cast<double>(h.Percentile(99))),
          FormatMicros(static_cast<double>(h.max()))};
}

}  // namespace doppel
