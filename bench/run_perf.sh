#!/usr/bin/env bash
# Builds the Release perf benchmarks and writes the tracked perf-trajectory JSON
# (BENCH_PR9.json at the repo root by default), plus the point_read routing-path
# microbench log. See README "Performance" for the schema.
#
# Environment overrides:
#   BUILD_DIR      build directory (default build-perf)
#   PERF_OUT       output JSON path (default <repo>/BENCH_PR9.json)
#   PERF_SECONDS   measurement seconds per point (default 1.0)
#   PERF_RUNS      runs per point, reported as mean [min,max] (default 3)
#   PERF_THREADS   worker threads (default: all CPUs)
#   PERF_KEYS      key-space size (default 200000)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-perf}"
PERF_OUT="${PERF_OUT:-$REPO_ROOT/BENCH_PR9.json}"
PERF_SECONDS="${PERF_SECONDS:-1.0}"
PERF_RUNS="${PERF_RUNS:-3}"
PERF_THREADS="${PERF_THREADS:-0}"
PERF_KEYS="${PERF_KEYS:-200000}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target perf_smoke --target point_read

"$BUILD_DIR/perf_smoke" \
  --seconds="$PERF_SECONDS" \
  --runs="$PERF_RUNS" \
  --threads="$PERF_THREADS" \
  --keys="$PERF_KEYS" \
  --json="$PERF_OUT"

echo "perf trajectory point written to $PERF_OUT"

# Routing-path split (hash vs flat vs txn-cache): logged, not gated — the end-to-end
# commits/s above is the tracked number; this explains where it comes from.
"$BUILD_DIR/point_read"
