#include "src/common/stats.h"

#include <algorithm>

#include "src/common/dassert.h"

namespace doppel {

void RunStats::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  n_++;
}

double RunStats::mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }

double LeastSquaresSlope(const std::vector<double>& xs, const std::vector<double>& ys) {
  DOPPEL_CHECK(xs.size() == ys.size());
  DOPPEL_CHECK(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  DOPPEL_CHECK(denom != 0.0);
  return (n * sxy - sx * sy) / denom;
}

}  // namespace doppel
