// Shared helpers for concurrency tests: a thread harness over raw engines (no Database /
// coordinator) and retry helpers.
#ifndef DOPPEL_TESTS_TEST_UTIL_H_
#define DOPPEL_TESTS_TEST_UTIL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/barrier.h"
#include "src/core/runner.h"
#include "src/store/store.h"
#include "src/txn/engine.h"

namespace doppel {
namespace testing {

// Runs `fn(worker)` on `n` threads, one worker each, all released together.
class EngineHarness {
 public:
  explicit EngineHarness(std::size_t store_capacity = 1 << 16)
      : store(store_capacity) {}

  Store store;
  std::unique_ptr<Engine> engine;
  std::vector<std::unique_ptr<Worker>> workers;

  void MakeWorkers(int n) {
    workers.clear();
    for (int i = 0; i < n; ++i) {
      workers.push_back(std::make_unique<Worker>(i, 1234567 + 99991ULL * i));
    }
  }

  void Parallel(const std::function<void(Worker&)>& fn) {
    SpinBarrier barrier(static_cast<std::uint32_t>(workers.size()));
    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (auto& w : workers) {
      Worker* worker = w.get();
      threads.emplace_back([&, worker] {
        barrier.Wait();
        fn(*worker);
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  }

  // One attempt; returns the outcome.
  TxnStatus TryOnce(Worker& w, const std::function<void(Txn&)>& body) {
    Txn& txn = w.txn;
    txn.Reset(engine.get(), &w);
    try {
      body(txn);
    } catch (const ConflictSignal& c) {
      engine->Abort(w, txn);
      txn.conflict_record = c.record;
      txn.conflict_op = c.op;
      return TxnStatus::kConflict;
    } catch (const StashSignal&) {
      engine->Abort(w, txn);
      return TxnStatus::kStashed;
    } catch (const UserAbortSignal&) {
      engine->Abort(w, txn);
      return TxnStatus::kUserAbort;
    }
    if (txn.stash_doomed()) {
      engine->Abort(w, txn);
      return TxnStatus::kStashed;
    }
    return engine->Commit(w, txn);
  }

  // Retries (spinning) until committed. Only for workloads that cannot stash.
  void MustCommit(Worker& w, const std::function<void(Txn&)>& body) {
    while (TryOnce(w, body) != TxnStatus::kCommitted) {
    }
  }
};

inline std::int64_t IntAt(const Store& store, const Key& k) {
  const Record* r = store.Find(k);
  if (r == nullptr) {
    return 0;
  }
  const Record::IntSnapshot s = r->ReadInt();
  return s.present ? s.value : 0;
}

}  // namespace testing
}  // namespace doppel

#endif  // DOPPEL_TESTS_TEST_UTIL_H_
