// A closing auction (§1, §7): many users bid on one popular item in the final seconds.
// Runs the RUBiS StoreBid transaction (Fig. 7) against Doppel and a chosen baseline and
// verifies the auction metadata exactly: highest bid, winner, and bid count.
//
// Usage: auction [doppel|occ|2pl] [seconds]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "src/core/database.h"
#include "src/rubis/txns.h"
#include "src/rubis/workload.h"
#include "src/workload/driver.h"

namespace {

using namespace doppel;

// Every transaction bids on item 0 with a random amount.
class ClosingAuctionSource : public TxnSource {
 public:
  explicit ClosingAuctionSource(int worker_id) : worker_id_(worker_id) {}

  TxnRequest Next(Worker& w) override {
    TxnRequest r;
    r.proc = &rubis::StoreBid;
    r.args.tag = kTagWrite;
    r.args.k1 = rubis::ItemKey(0);
    r.args.k2 = rubis::BidKey(rubis::ShardedId(worker_id_, next_id_++));
    r.args.aux = static_cast<std::uint32_t>(w.rng.NextBounded(10000));
    r.args.n = 1 + static_cast<std::int64_t>(w.rng.NextBounded(1000000));
    return r;
  }

 private:
  const int worker_id_;
  std::uint64_t next_id_ = 1;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace doppel;
  Protocol protocol = Protocol::kDoppel;
  if (argc > 1) {
    if (std::strcmp(argv[1], "occ") == 0) {
      protocol = Protocol::kOcc;
    } else if (std::strcmp(argv[1], "2pl") == 0) {
      protocol = Protocol::kTwoPL;
    }
  }
  const double seconds = argc > 2 ? std::atof(argv[2]) : 1.0;

  Options opts;
  opts.protocol = protocol;
  Database db(opts);
  rubis::Config data;
  data.num_users = 10000;
  data.num_items = 100;
  rubis::Populate(db.store(), data);

  RunMetrics m = RunWorkload(
      db, [](int w) { return std::make_unique<ClosingAuctionSource>(w); },
      static_cast<std::uint64_t>(seconds * 1000));

  std::printf("closing auction under %s: %.2fM bids/sec, %zu records split\n",
              ProtocolName(protocol), m.throughput / 1e6, m.split_records);

  // Verify the materialized auction metadata against ground truth.
  const auto num_bids = db.store().ReadSnapshot(rubis::NumBidsKey(0));
  const auto max_bid = db.store().ReadSnapshot(rubis::MaxBidKey(0));
  const auto max_bidder = db.store().ReadSnapshot(rubis::MaxBidderKey(0));
  std::printf("numBids = %lld (committed bids = %llu) => %s\n",
              static_cast<long long>(std::get<std::int64_t>(num_bids.value)),
              static_cast<unsigned long long>(m.stats.committed),
              std::get<std::int64_t>(num_bids.value) ==
                      static_cast<std::int64_t>(m.stats.committed)
                  ? "EXACT"
                  : "MISMATCH");
  const auto& winner = std::get<OrderedTuple>(max_bidder.value);
  std::printf("maxBid = %lld, winner = user %s (bid %lld)\n",
              static_cast<long long>(std::get<std::int64_t>(max_bid.value)),
              winner.payload.c_str(), static_cast<long long>(winner.order.primary));
  return std::get<std::int64_t>(max_bid.value) == winner.order.primary ? 0 : 1;
}
