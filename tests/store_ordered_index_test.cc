// OrderedIndex unit tests (partition mapping, version stamping, idempotent insert) and
// engine-level Txn::Scan behavior: ordering, limits, bounds, overlay of the scanning
// transaction's own writes, and deterministic phantom detection under OCC and 2PL.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/store/ordered_index.h"
#include "src/txn/occ_engine.h"
#include "src/txn/twopl_engine.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::EngineHarness;

TEST(OrderedIndex, DefaultPartitionMappingIsMonotonicAndClamped) {
  OrderedIndex idx;
  const OrderedIndex::TableIndex& t = idx.GetOrCreateTable(1);
  EXPECT_EQ(t.PartitionOf(0), 0u);
  EXPECT_EQ(t.PartitionOf((1ULL << 40) - 1), 0u);
  EXPECT_EQ(t.PartitionOf(1ULL << 40), 1u);
  EXPECT_EQ(t.PartitionOf(63ULL << 40), 63u);
  EXPECT_EQ(t.PartitionOf(64ULL << 40), 63u);  // clamped to the last stripe
  EXPECT_EQ(t.PartitionOf(~0ULL), 63u);
}

TEST(OrderedIndex, PerTablePartitionConfig) {
  OrderedIndex idx;
  // 1-key-per-partition extreme: shift 0 with a small stripe count.
  const OrderedIndex::TableIndex& fine = idx.ConfigureTable(1, {0, 8, false});
  EXPECT_EQ(fine.PartitionOf(0), 0u);
  EXPECT_EQ(fine.PartitionOf(7), 7u);
  EXPECT_EQ(fine.PartitionOf(8), 7u);  // clamped
  EXPECT_EQ(fine.partitions.size(), 8u);
  // Degenerate single partition: everything maps to stripe 0.
  const OrderedIndex::TableIndex& one = idx.ConfigureTable(2, {40, 1, false});
  EXPECT_EQ(one.PartitionOf(0), 0u);
  EXPECT_EQ(one.PartitionOf(~0ULL), 0u);
  EXPECT_EQ(one.partitions.size(), 1u);
  // Unconfigured tables keep the default layout.
  const OrderedIndex::TableIndex& dflt = idx.GetOrCreateTable(3);
  EXPECT_EQ(dflt.partitions.size(), OrderedIndex::kDefaultPartitions);
  EXPECT_EQ(dflt.shift.load(), OrderedIndex::kDefaultShift);
}

TEST(OrderedIndex, ConfiguredShiftSpreadsDenseKeysAcrossStripes) {
  Store store(1 << 12);
  store.ConfigureTable(9, {4, 16, false});  // stripes of 16 keys each
  for (std::uint64_t i = 0; i < 64; ++i) {
    store.LoadInt(Key::Table(9, i), 1);
  }
  const OrderedIndex::TableIndex* t = store.index().FindTable(9);
  ASSERT_NE(t, nullptr);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(t->partitions[p].entries.size(), 16u) << p;
    EXPECT_EQ(t->partitions[p].inserts.load(), 16u) << p;
  }
  EXPECT_EQ(store.index().StatsFor(9).max_key, 63u);
}

TEST(OrderedIndex, NarrowTableRebinsEntriesAndBumpsVersions) {
  Store store(1 << 12);
  store.ConfigureTable(5, {40, 16, true});
  for (std::uint64_t i = 0; i < 100; ++i) {
    store.LoadInt(Key::Table(5, i * 3), static_cast<std::int64_t>(i));
  }
  OrderedIndex::TableIndex* t = store.index().FindTable(5);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->partitions[0].entries.size(), 100u);  // everything below 2^40: one stripe
  const std::uint64_t v0 = t->partitions[0].version.load();

  // Narrowing to shift 5 spreads [0, 297] over ~10 stripes and bumps every version.
  EXPECT_TRUE(store.index().NarrowTable(*t, 5));
  EXPECT_EQ(t->shift.load(), 5u);
  EXPECT_EQ(store.index().size(5), 100u);
  EXPECT_GT(t->partitions[0].version.load(), v0);
  EXPECT_LT(t->partitions[0].entries.size(), 100u);
  std::size_t nonempty = 0;
  for (const IndexPartition& p : t->partitions) {
    nonempty += p.entries.empty() ? 0 : 1;
  }
  EXPECT_GT(nonempty, 5u);
  // Every entry is findable where the new mapping says it lives.
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t lo = i * 3;
    const IndexPartition& p = t->partitions[t->PartitionOf(lo)];
    EXPECT_EQ(p.entries.count(lo), 1u) << lo;
  }
  // Widening (or an equal shift) is refused.
  EXPECT_FALSE(store.index().NarrowTable(*t, 5));
  EXPECT_FALSE(store.index().NarrowTable(*t, 6));
  EXPECT_EQ(store.index().StatsFor(5).rebins, 1u);
}

TEST(OrderedIndex, InsertIsIdempotentAndVersionStamped) {
  Store store(1 << 10);
  store.LoadInt(Key::Table(7, 5), 50);  // LoadInt indexes the record
  Record* r = store.Find(Key::Table(7, 5));
  ASSERT_NE(r, nullptr);
  OrderedIndex& idx = store.index();
  IndexPartition& part = idx.PartitionFor(Key::Table(7, 5));
  const std::uint64_t v1 = part.version.load();
  EXPECT_EQ(idx.size(7), 1u);

  idx.Insert(Key::Table(7, 5), r);  // re-insert: no-op, no version bump
  EXPECT_EQ(idx.size(7), 1u);
  EXPECT_EQ(part.version.load(), v1);

  store.LoadInt(Key::Table(7, 9), 90);
  EXPECT_EQ(idx.size(7), 2u);
  EXPECT_EQ(part.version.load(), v1 + 1);
}

TEST(OrderedIndex, SnapshotRangeRespectsBoundsAndCap) {
  Store store(1 << 10);
  for (std::uint64_t i = 0; i < 10; ++i) {
    store.LoadInt(Key::Table(3, i * 2), static_cast<std::int64_t>(i));  // even keys
  }
  IndexPartition& part = store.index().PartitionFor(Key::Table(3, 0));
  std::vector<std::pair<std::uint64_t, Record*>> out;
  OrderedIndex::SnapshotRange(part, 3, 11, 0, &out);
  ASSERT_EQ(out.size(), 4u);  // 4, 6, 8, 10
  EXPECT_EQ(out.front().first, 4u);
  EXPECT_EQ(out.back().first, 10u);

  out.clear();
  OrderedIndex::SnapshotRange(part, 0, ~0ULL >> 24, 3, &out);
  EXPECT_EQ(out.size(), 3u);  // capped
}

TEST(OrderedIndex, TableDirectoryHandlesManyTables) {
  Store store(1 << 12);
  for (std::uint64_t t = 0; t < 100; ++t) {
    store.LoadInt(Key::Table(static_cast<std::uint32_t>(t), t), 1);
  }
  for (std::uint64_t t = 0; t < 100; ++t) {
    ASSERT_NE(store.index().FindTable(t), nullptr) << t;
    EXPECT_EQ(store.index().size(t), 1u);
  }
  EXPECT_EQ(store.index().FindTable(100), nullptr);
}

// ---- Txn::Scan through the engines ----

class ScanEngineTest : public ::testing::Test {
 protected:
  void UseOcc() {
    h_.engine = std::make_unique<OccEngine>(h_.store);
    h_.MakeWorkers(2);
  }
  void UseTwoPL() {
    // Short spins so intentional lock conflicts resolve in microseconds, not seconds.
    TwoPLEngine::Limits limits;
    limits.shared_spin = 1 << 10;
    limits.exclusive_spin = 1 << 10;
    limits.upgrade_spin = 1 << 10;
    h_.engine = std::make_unique<TwoPLEngine>(h_.store, limits);
    h_.MakeWorkers(2);
  }

  // Ten int rows in table 1, keys 10..19, value = key * 10.
  void PopulateRows() {
    for (std::uint64_t i = 10; i < 20; ++i) {
      h_.store.LoadInt(Key::Table(1, i), static_cast<std::int64_t>(i) * 10);
    }
  }

  EngineHarness h_;
};

TEST_F(ScanEngineTest, ScanVisitsRangeInAscendingOrder) {
  UseOcc();
  PopulateRows();
  std::vector<std::uint64_t> seen;
  std::int64_t sum = 0;
  h_.MustCommit(*h_.workers[0], [&](Txn& t) {
    seen.clear();
    sum = 0;
    const std::size_t n = t.Scan(1, 12, 17, 0, [&](const Key& k, const ReadResult& v) {
      seen.push_back(k.lo);
      sum += v.i;
      return true;
    });
    EXPECT_EQ(n, 6u);
  });
  ASSERT_EQ(seen.size(), 6u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 12 + i);
  }
  EXPECT_EQ(sum, (12 + 13 + 14 + 15 + 16 + 17) * 10);
}

TEST_F(ScanEngineTest, ScanHonorsLimitAndEarlyStop) {
  UseOcc();
  PopulateRows();
  h_.MustCommit(*h_.workers[0], [&](Txn& t) {
    std::size_t calls = 0;
    EXPECT_EQ(t.Scan(1, 0, ~0ULL, 3, [&](const Key&, const ReadResult&) {
      calls++;
      return true;
    }), 3u);
    EXPECT_EQ(calls, 3u);

    calls = 0;
    EXPECT_EQ(t.Scan(1, 0, ~0ULL, 0, [&](const Key&, const ReadResult&) {
      return ++calls < 2;  // early stop after the second row
    }), 2u);

    EXPECT_EQ(t.Scan(1, 500, 600, 0, [&](const Key&, const ReadResult&) { return true; }),
              0u);  // empty range
    EXPECT_EQ(t.Scan(99, 0, ~0ULL, 0, [&](const Key&, const ReadResult&) { return true; }),
              0u);  // never-written table
  });
}

TEST_F(ScanEngineTest, ScanObservesOwnBufferedWrites) {
  UseOcc();
  PopulateRows();
  h_.MustCommit(*h_.workers[0], [&](Txn& t) {
    t.PutInt(Key::Table(1, 15), 7777);  // buffered, not yet committed
    std::int64_t at15 = 0;
    t.Scan(1, 15, 15, 0, [&](const Key&, const ReadResult& v) {
      at15 = v.i;
      return true;
    });
    EXPECT_EQ(at15, 7777);
  });
}

// The Silo phantom case, deterministically interleaved: T1 scans [10, 30], then T2
// commits an insert of key 25 into the scanned range, then T1 tries to commit. T1's
// scan-set validation must fail (the index partition version changed).
TEST_F(ScanEngineTest, OccPhantomInsertAbortsScanner) {
  UseOcc();
  PopulateRows();
  Worker& w1 = *h_.workers[0];
  Worker& w2 = *h_.workers[1];

  Txn& t1 = w1.txn;
  t1.Reset(h_.engine.get(), &w1);
  std::size_t n = t1.Scan(1, 10, 30, 0, [](const Key&, const ReadResult&) { return true; });
  EXPECT_EQ(n, 10u);

  // T2: phantom insert into the scanned range, committed while T1 is still open.
  h_.MustCommit(w2, [&](Txn& t) { t.PutInt(Key::Table(1, 25), 1); });

  EXPECT_EQ(h_.engine->Commit(w1, t1), TxnStatus::kConflict);
  EXPECT_TRUE(t1.scan_conflict);

  // Retried, T1 sees the new row and commits.
  h_.MustCommit(w1, [&](Txn& t) {
    EXPECT_EQ(t.Scan(1, 10, 30, 0, [](const Key&, const ReadResult&) { return true; }),
              11u);
  });
}

// An insert into a different partition stripe of the same table must NOT abort the
// scanner (version stamping is per partition, not per table).
TEST_F(ScanEngineTest, OccInsertOutsideScannedStripeDoesNotAbort) {
  UseOcc();
  PopulateRows();  // partition 0 (keys < 2^40)
  Worker& w1 = *h_.workers[0];
  Worker& w2 = *h_.workers[1];

  Txn& t1 = w1.txn;
  t1.Reset(h_.engine.get(), &w1);
  (void)t1.Scan(1, 10, 30, 0, [](const Key&, const ReadResult&) { return true; });

  // Same table, key in partition 2: outside every partition the scan traversed.
  h_.MustCommit(w2, [&](Txn& t) { t.PutInt(Key::Table(1, 2ULL << 40), 1); });

  EXPECT_EQ(h_.engine->Commit(w1, t1), TxnStatus::kCommitted);
}

// A read-modify-write on a scanned record (no insert) is caught by ordinary read-set
// validation: the scan added the record to the read set.
TEST_F(ScanEngineTest, OccUpdateOfScannedRecordAbortsScanner) {
  UseOcc();
  PopulateRows();
  Worker& w1 = *h_.workers[0];
  Worker& w2 = *h_.workers[1];

  Txn& t1 = w1.txn;
  t1.Reset(h_.engine.get(), &w1);
  (void)t1.Scan(1, 10, 19, 0, [](const Key&, const ReadResult&) { return true; });

  h_.MustCommit(w2, [&](Txn& t) { t.PutInt(Key::Table(1, 15), 0); });

  EXPECT_EQ(h_.engine->Commit(w1, t1), TxnStatus::kConflict);
  EXPECT_FALSE(t1.scan_conflict);  // record-level, not partition-level
}

// 2PL: a scanner holds the partition's shared lock until commit, so a concurrent insert
// into the scanned stripe times out and aborts (ConflictSignal) instead of committing.
TEST_F(ScanEngineTest, TwoPLScanBlocksPhantomInsert) {
  UseTwoPL();
  PopulateRows();
  Worker& w1 = *h_.workers[0];
  Worker& w2 = *h_.workers[1];

  Txn& t1 = w1.txn;
  t1.Reset(h_.engine.get(), &w1);
  EXPECT_EQ(t1.Scan(1, 10, 30, 0, [](const Key&, const ReadResult&) { return true; }),
            10u);

  // While t1 is open, an insert into the stripe must fail its partition lock.
  EXPECT_EQ(h_.TryOnce(w2, [&](Txn& t) { t.PutInt(Key::Table(1, 25), 1); }),
            TxnStatus::kConflict);
  // An insert into a different stripe of the same table is unaffected.
  EXPECT_EQ(h_.TryOnce(w2, [&](Txn& t) { t.PutInt(Key::Table(1, 2ULL << 40), 1); }),
            TxnStatus::kCommitted);

  EXPECT_EQ(h_.engine->Commit(w1, t1), TxnStatus::kCommitted);

  // With the scanner gone, the insert succeeds and a new scan sees it.
  h_.MustCommit(w2, [&](Txn& t) { t.PutInt(Key::Table(1, 25), 1); });
  h_.MustCommit(w1, [&](Txn& t) {
    EXPECT_EQ(t.Scan(1, 10, 30, 0, [](const Key&, const ReadResult&) { return true; }),
              11u);
  });
}

}  // namespace
}  // namespace doppel
