#include "src/store/store.h"

#include <algorithm>
#include <utility>

#include "src/common/dassert.h"

namespace doppel {

Store::~Store() {
  FreeRetired();
  for (FlatDirSlot& s : flats_) {
    // Teardown: no concurrent access remains.
    delete s.table.load(std::memory_order_relaxed);
  }
}

void Store::ConfigureTable(std::uint64_t table, const TableOptions& opts) {
  if (opts.index.has_value()) {
    index_.ConfigureTable(table, *opts.index);
  }
  if (opts.capacity_hint != 0) {
    // Quiescent by the registration contract (pre-Start, before first insert of this
    // table): safe to rebuild the map's bucket array for the cumulative expectation.
    capacity_request_ += opts.capacity_hint;
    map_.RehashQuiescent(capacity_request_);
  }
  if (opts.layout != TableLayout::kFlat) {
    return;
  }
  DOPPEL_CHECK(opts.flat_span > 0);  // a flat table needs a key-range bound
  SpinlockGuard lock(flat_mu_);
  std::size_t free_slot = kMaxFlatTables;
  for (std::size_t i = 0; i < kMaxFlatTables; ++i) {
    const std::uint64_t tag = flats_[i].tag.load(std::memory_order_acquire);
    if (tag == 0) {
      free_slot = std::min(free_slot, i);
      continue;
    }
    DOPPEL_CHECK(tag != table + 1);  // re-registering a flat table is an error
  }
  DOPPEL_CHECK(free_slot < kMaxFlatTables);  // directory full: raise kMaxFlatTables
  auto* flat = new FlatTable(table, opts.flat_base, opts.flat_span,
                             opts.flat_initial_slots);
  // Pointer first (relaxed is fine pre-publication), then the tag with release: a
  // reader that observes the tag observes the table pointer.
  flats_[free_slot].table.store(flat, std::memory_order_relaxed);
  flats_[free_slot].tag.store(table + 1, std::memory_order_release);
  flat_count_.fetch_add(1, std::memory_order_release);
}

void Store::LoadInt(const Key& key, std::int64_t v) {
  Record* r = GetOrCreate(key, RecordType::kInt64);
  r->LockOcc();
  r->SetInt(v);
  index_.Insert(key, r);
  r->UnlockOccSetTid(kLoadTid);
}

void Store::LoadBytes(const Key& key, std::string v) {
  Record* r = GetOrCreate(key, RecordType::kBytes);
  r->LockOcc();
  r->MutateComplex([&](ComplexValue& cv) { std::get<std::string>(cv) = std::move(v); });
  index_.Insert(key, r);
  r->UnlockOccSetTid(kLoadTid);
}

void Store::LoadOrdered(const Key& key, OrderedTuple v) {
  Record* r = GetOrCreate(key, RecordType::kOrdered);
  r->LockOcc();
  r->MutateComplex([&](ComplexValue& cv) { std::get<OrderedTuple>(cv) = std::move(v); });
  index_.Insert(key, r);
  r->UnlockOccSetTid(kLoadTid);
}

void Store::LoadTopK(const Key& key, std::size_t k) {
  Record* r = GetOrCreate(key, RecordType::kTopK, k);
  r->LockOcc();
  r->MutateComplex([&](ComplexValue&) {});  // mark present, keep empty set
  index_.Insert(key, r);
  r->UnlockOccSetTid(kLoadTid);
}

void Store::LoadTopKItem(const Key& key, std::size_t k, OrderedTuple t) {
  Record* r = GetOrCreate(key, RecordType::kTopK, k);
  r->LockOcc();
  r->MutateComplex(
      [&](ComplexValue& cv) { std::get<TopKSet>(cv).Insert(std::move(t)); });
  index_.Insert(key, r);
  r->UnlockOccSetTid(kLoadTid);
}

Record::ValueSnapshot Store::ReadSnapshot(const Key& key) const {
  Record* r = map_.Find(key);
  if (r == nullptr) {
    return Record::ValueSnapshot{false, Value{std::int64_t{0}}, 0};
  }
  return r->ReadValue();
}

}  // namespace doppel
