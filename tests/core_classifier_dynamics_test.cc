// Classifier dynamics across multiple phase cycles, driven deterministically with manual
// barrier calls (no coordinator thread): op re-selection, retention by write sampling,
// un-split by stash pressure, and re-split suppression (§4-5.5).
#include <gtest/gtest.h>

#include "src/core/doppel_engine.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

class ClassifierDynamicsTest : public ::testing::Test {
 protected:
  ClassifierDynamicsTest() : store_(1 << 10) {}

  void Build(const Options& opts) {
    engine_ = std::make_unique<DoppelEngine>(store_, opts, stop_);
    workers_.push_back(std::make_unique<Worker>(0, 11));
    engine_->RegisterWorkers(workers_);
    w_ = workers_[0].get();
  }

  // Simulate `n` sampled conflicts on `key` with `op` (joined phase).
  void Conflicts(const Key& key, OpCode op, int n) {
    for (int i = 0; i < n; ++i) {
      w_->txn.Reset(engine_.get(), w_);
      w_->txn.conflict_record = store_.Find(key);
      w_->txn.conflict_op = op;
      engine_->OnConflict(*w_, w_->txn);
    }
  }

  // Single-threaded phase-transition helpers. The coordinator's barrier work runs on
  // this thread with the (idle) worker quiescent, and Release precedes the worker's
  // BetweenTxns so its ack/release spin exits immediately.
  void EnterSplit() {
    engine_->controller().BeginTransition(Phase::kSplit);
    engine_->BarrierBuildPlan();
    engine_->controller().Release();
    engine_->BetweenTxns(*w_);  // ack, observe release, prepare slices, enter split
    ASSERT_EQ(engine_->CurrentPhase(*w_), Phase::kSplit);
  }

  void EnterJoined() {
    engine_->controller().BeginTransition(Phase::kJoined);
    engine_->controller().Release();
    engine_->BetweenTxns(*w_);  // merge slices, ack, enter joined
    engine_->BarrierAfterReconcile();  // reads the stats the merge just reported
    ASSERT_EQ(engine_->CurrentPhase(*w_), Phase::kJoined);
  }

  // Run one full phase cycle on the single (not-running) worker, committing `writes`
  // transactions of the selected op against the split record during the split phase.
  void Cycle(const Key& key, int writes, int stashed_reads) {
    EnterSplit();

    Record* r = store_.Find(key);
    for (int i = 0; i < writes && r != nullptr && r->IsSplit(); ++i) {
      w_->txn.Reset(engine_.get(), w_);
      w_->txn.Add(key, 1);
      ASSERT_EQ(engine_->Commit(*w_, w_->txn), TxnStatus::kCommitted);
    }
    for (int i = 0; i < stashed_reads && r != nullptr && r->IsSplit(); ++i) {
      w_->txn.Reset(engine_.get(), w_);
      (void)w_->txn.GetInt(key);
      ASSERT_TRUE(w_->txn.stash_doomed());
      engine_->OnStash(*w_, StashSignal{w_->txn.stash_record(), OpCode::kGet});
      engine_->Abort(*w_, w_->txn);
    }

    EnterJoined();
  }

  std::atomic<bool> stop_{false};
  Store store_;
  std::unique_ptr<DoppelEngine> engine_;
  std::vector<std::unique_ptr<Worker>> workers_;
  Worker* w_ = nullptr;
};

TEST_F(ClassifierDynamicsTest, SplitPhaseWritesApplyThroughSliceAndMerge) {
  Options opts;
  Build(opts);
  const Key k = Key::FromU64(1);
  store_.LoadInt(k, 10);
  Conflicts(k, OpCode::kAdd, 50);
  Cycle(k, 25, 0);
  // The 25 split-phase Adds merged into the global value at reconciliation.
  EXPECT_EQ(testing::IntAt(store_, k), 35);
}

TEST_F(ClassifierDynamicsTest, SelectedOpCanChangeBetweenPhases) {
  // "the operation for key k might be Min in one split phase, and Max in the next" (§4).
  Options opts;
  opts.classifier.min_split_writes = 1000000;  // disable retention: re-classify each time
  Build(opts);
  const Key k = Key::FromU64(1);
  store_.LoadInt(k, 0);

  Conflicts(k, OpCode::kMin, 50);
  EnterSplit();
  auto entries = engine_->LastPlanEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].second, OpCode::kMin);
  EnterJoined();

  Conflicts(k, OpCode::kMax, 50);
  EnterSplit();
  entries = engine_->LastPlanEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].second, OpCode::kMax);
  EnterJoined();
}

TEST_F(ClassifierDynamicsTest, RetentionKeepsWriteHotRecordSplit) {
  Options opts;
  opts.classifier.min_split_writes = 10;
  Build(opts);
  const Key k = Key::FromU64(1);
  store_.LoadInt(k, 0);
  Conflicts(k, OpCode::kAdd, 50);
  Cycle(k, 100, 0);  // plenty of split-phase writes
  // No new conflicts, but write sampling retains the record for the next split phase.
  EXPECT_TRUE(engine_->HasSplitCandidates());
  Cycle(k, 100, 0);
  EXPECT_EQ(engine_->LastPlanSize(), 1u);
}

TEST_F(ClassifierDynamicsTest, StashPressureUnsplitsAndSuppresses) {
  Options opts;
  opts.classifier.min_split_writes = 10;
  opts.classifier.unsplit_stash_ratio = 1.0;
  opts.classifier.resplit_suppress_phases = 100;
  Build(opts);
  const Key k = Key::FromU64(1);
  store_.LoadInt(k, 0);
  Conflicts(k, OpCode::kAdd, 50);
  Cycle(k, 20, 100);  // stashes far outnumber writes: must be un-split + suppressed
  EXPECT_FALSE(engine_->HasSplitCandidates()) << "retention must drop the record";
  // Fresh conflicts arrive, but the suppression window blocks re-splitting.
  Conflicts(k, OpCode::kAdd, 50);
  Cycle(k, 20, 0);
  EXPECT_EQ(engine_->LastPlanSize(), 0u);
}

TEST_F(ClassifierDynamicsTest, LowWriteRateUnsplits) {
  Options opts;
  opts.classifier.min_split_writes = 50;
  Build(opts);
  const Key k = Key::FromU64(1);
  store_.LoadInt(k, 0);
  Conflicts(k, OpCode::kAdd, 50);
  Cycle(k, 5, 0);  // too few split-phase writes: not worth keeping split
  EXPECT_FALSE(engine_->HasSplitCandidates());
}

// Regression (classifier skew under eviction churn): the sampler's space-saving
// replacement inherits the victim's count, so an entry's count can exceed the sum of
// its own op tallies. BarrierBuildPlan used the raw count, and the inflated denominator
// made min_splittable_fraction refuse to split a genuine heavy hitter whose entry had
// been through an eviction. The fix clamps the classified count to the op-tally sum.
// This drives the exact eviction deterministically: keys that collide in the sampler's
// probe window are computed from Key::Hash, the window is filled with mid-count churn
// entries, and the heavy hitter's first conflict is forced to inherit a victim's count.
TEST_F(ClassifierDynamicsTest, EvictionInheritanceDoesNotSkewClassification) {
  Options opts;
  Build(opts);

  // Keys whose sampler slots share one probe window (sampler capacity is 512; if that
  // default grows these keys simply stop colliding and the test degrades to trivially
  // passing rather than breaking).
  constexpr std::uint64_t kSamplerMask = 511;
  std::vector<Key> colliders;
  const std::uint64_t target = Key::FromU64(1).Hash() & kSamplerMask;
  for (std::uint64_t id = 1; colliders.size() < 10 && id < 1000000; ++id) {
    const Key k = Key::FromU64(id);
    if ((k.Hash() & kSamplerMask) == target) {
      colliders.push_back(k);
      store_.LoadInt(k, 0);
    }
  }
  ASSERT_EQ(colliders.size(), 10u);

  // Fill the probe window (8 slots) with Get-churn entries of count 50 each.
  for (int i = 0; i < 8; ++i) {
    Conflicts(colliders[static_cast<std::size_t>(i)], OpCode::kGet, 50);
  }
  // The heavy hitter's first sample must evict a count-50 victim and inherit its count:
  // entry becomes count=51 with op_counts[kAdd]=1, then accumulates 9 more real Adds.
  // Pre-fix: splittable 10 / count 60 < 0.25 => refused. Post-fix: clamped to 10/10.
  const Key hot = colliders[8];
  Conflicts(hot, OpCode::kAdd, 10);
  // A one-shot churn key that also inherits a big count must NOT be promoted: its
  // clamped count (1) is below min_conflicts even though its raw count is ~51.
  const Key churn = colliders[9];
  Conflicts(churn, OpCode::kAdd, 1);

  EnterSplit();
  Record* hot_r = store_.Find(hot);
  Record* churn_r = store_.Find(churn);
  ASSERT_NE(hot_r, nullptr);
  ASSERT_NE(churn_r, nullptr);
  EXPECT_TRUE(hot_r->IsSplit()) << "inherited count skew refused the heavy hitter";
  EXPECT_FALSE(churn_r->IsSplit()) << "inherited count promoted a one-shot churn key";
  EnterJoined();
}

// With consistent tallies, a genuine heavy hitter survives churn and still splits.
TEST_F(ClassifierDynamicsTest, HeavyHitterSplitsDespiteEvictionChurn) {
  Options opts;
  Build(opts);
  const Key hot = Key::FromU64(1);
  store_.LoadInt(hot, 0);
  Rng rng(21);
  for (int i = 0; i < 5000; ++i) {
    const Key churn = Key::FromU64(1000 + rng.NextBounded(1u << 14));
    store_.LoadInt(churn, 0);
    Conflicts(churn, OpCode::kGet, 1);
    if (i % 8 == 0) {
      Conflicts(hot, OpCode::kAdd, 1);
    }
  }
  EnterSplit();
  Record* r = store_.Find(hot);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->IsSplit()) << "churned sampler must still classify the heavy hitter";
  EnterJoined();
}

}  // namespace
}  // namespace doppel
