// point_read: ns/lookup microbench for the three record-routing paths (PR 9).
//
//   hash   — RecordMap-only routing (the pre-PR9 path: hash mix, bucket probe, chain)
//   flat   — Store::Route through a kFlat direct-indexed table (bounds check + load)
//   cache  — Txn route-cache hit (the abort-retry fast path: one probe, no store trip)
//
// Single-threaded by design: this isolates the constant factor per lookup that
// perf_smoke measures end to end. Wired into bench/run_perf.sh so every tracked perf
// run logs the split alongside BENCH_PR9.json.
//
// Flags: --keys=N (dense key-space size, default 65536)
//        --lookups=N (measured lookups per path, default 2^23)
//        --json=PATH (optional machine-readable report)
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/timing.h"
#include "src/store/store.h"
#include "src/txn/txn.h"

namespace doppel {
namespace {

// Deterministic key sequence; cheap enough to not drown the measured lookup.
inline std::uint64_t Lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return s >> 33;
}

constexpr std::uint64_t kTable = 0;

template <typename LookupFn>
double MeasureNsPerOp(std::uint64_t lookups, std::uint64_t keys, LookupFn&& lookup) {
  std::uint64_t seed = 42;
  std::uintptr_t sink = 0;  // data-dependent accumulator: defeats dead-code elimination
  const std::uint64_t t0 = NowNanos();
  for (std::uint64_t i = 0; i < lookups; ++i) {
    const std::uint64_t lo = Lcg(seed) % keys;
    sink += reinterpret_cast<std::uintptr_t>(lookup(lo));
  }
  const std::uint64_t t1 = NowNanos();
  if (sink == 0) {
    std::fprintf(stderr, "point_read: lookup path returned only nulls?\n");
    std::exit(1);
  }
  return static_cast<double>(t1 - t0) / static_cast<double>(lookups);
}

int Main(int argc, char** argv) {
  std::uint64_t keys = 1 << 16;
  std::uint64_t lookups = 1 << 23;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      keys = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--lookups=", 10) == 0) {
      lookups = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "point_read: unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  // Hash-routed store: no flat registration, every lookup walks the RecordMap.
  Store hash_store(keys * 2);
  for (std::uint64_t i = 0; i < keys; ++i) {
    hash_store.GetOrCreate(Key::Table(kTable, i), RecordType::kInt64, 0);
  }
  const double hash_ns = MeasureNsPerOp(lookups, keys, [&](std::uint64_t lo) {
    return hash_store.GetOrCreateUnchecked(Key::Table(kTable, lo),
                                           RecordType::kInt64, 0);
  });

  // Flat-routed store: same keys behind a pre-sized direct-indexed table.
  Store flat_store(keys * 2);
  TableOptions opts;
  opts.layout = TableLayout::kFlat;
  opts.flat_base = 0;
  opts.flat_span = keys;
  opts.flat_initial_slots = static_cast<std::size_t>(keys);
  flat_store.ConfigureTable(kTable, opts);
  for (std::uint64_t i = 0; i < keys; ++i) {
    flat_store.GetOrCreate(Key::Table(kTable, i), RecordType::kInt64, 0);
  }
  const double flat_ns = MeasureNsPerOp(lookups, keys, [&](std::uint64_t lo) {
    return flat_store.GetOrCreateUnchecked(Key::Table(kTable, lo),
                                           RecordType::kInt64, 0);
  });

  // Txn route-cache hit: pick keys that map to distinct cache slots, pre-cache them,
  // and measure pure hits — the cost an abort-retry pays to re-reach its records.
  Txn txn;
  std::vector<std::uint64_t> cached;
  std::vector<bool> slot_taken(64, false);
  for (std::uint64_t lo = 0; lo < keys && cached.size() < 64; ++lo) {
    const Key k = Key::Table(kTable, lo);
    const std::size_t slot = k.Hash() & 63;
    if (slot_taken[slot]) {
      continue;
    }
    slot_taken[slot] = true;
    txn.CacheRoute(k, flat_store.Find(k));
    cached.push_back(lo);
  }
  const std::uint64_t n_cached = cached.size();
  const double cache_ns = MeasureNsPerOp(lookups, n_cached, [&](std::uint64_t i) {
    return txn.CachedRoute(Key::Table(kTable, cached[i]));
  });

  std::printf("point_read: keys=%" PRIu64 " lookups=%" PRIu64 "\n", keys, lookups);
  std::printf("  %-22s %8.2f ns/lookup\n", "hash (RecordMap)", hash_ns);
  std::printf("  %-22s %8.2f ns/lookup\n", "flat (Store::Route)", flat_ns);
  std::printf("  %-22s %8.2f ns/lookup\n", "txn-cache hit", cache_ns);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "point_read: cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"point_read\",\n  \"schema_version\": 1,\n"
                 "  \"keys\": %" PRIu64 ",\n  \"lookups\": %" PRIu64 ",\n"
                 "  \"hash_ns_per_lookup\": %.3f,\n"
                 "  \"flat_ns_per_lookup\": %.3f,\n"
                 "  \"txn_cache_ns_per_lookup\": %.3f\n}\n",
                 keys, lookups, hash_ns, flat_ns, cache_ns);
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
