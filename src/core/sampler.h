// Per-worker conflict sampling (§5.5).
//
// "During joined execution, Doppel samples transactions' conflicting record accesses, and
// keeps a count of which records are most conflicted (are causing the most aborts) and by
// which operations."
//
// A fixed-size open-addressing table owned by one worker. The owner inserts; the
// coordinator reads exactly at phase barriers (workers quiesced) and peeks the total
// counter racily between barriers to decide whether a split phase is worth starting.
// Eviction uses a space-saving approximation: a new key replaces the smallest-count entry
// in its probe window and inherits that count, so heavy hitters survive churn.
#ifndef DOPPEL_SRC_CORE_SAMPLER_H_
#define DOPPEL_SRC_CORE_SAMPLER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/store/key.h"
#include "src/txn/op.h"

namespace doppel {

class ConflictSampler {
 public:
  struct Entry {
    Key key;
    std::uint32_t count = 0;
    std::uint32_t op_counts[kNumOps] = {};
    bool used = false;
  };

  explicit ConflictSampler(std::uint32_t sample_every, std::size_t capacity = 512);

  // Owner worker: record that a transaction aborted because of `key`, where the aborted
  // transaction's operation on the record was `op` (kGet for pure read validation loss).
  void RecordConflict(const Key& key, OpCode op);

  // Racy peek (coordinator, between barriers): sampled conflicts since the last Clear.
  std::uint64_t ApproxTotal() const { return total_.load(std::memory_order_relaxed); }

  // Coordinator, at barriers only.
  const std::vector<Entry>& entries() const { return table_; }
  void Clear();

 private:
  static constexpr int kProbeWindow = 8;

  std::vector<Entry> table_;
  std::uint64_t mask_;
  std::uint32_t sample_every_;
  std::uint32_t tick_ = 0;
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_CORE_SAMPLER_H_
