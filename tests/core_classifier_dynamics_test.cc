// Classifier dynamics across multiple phase cycles, driven deterministically with manual
// barrier calls (no coordinator thread): op re-selection, retention by write sampling,
// un-split by stash pressure, and re-split suppression (§4-5.5).
#include <gtest/gtest.h>

#include "src/core/doppel_engine.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

class ClassifierDynamicsTest : public ::testing::Test {
 protected:
  ClassifierDynamicsTest() : store_(1 << 10) {}

  void Build(const Options& opts, int num_workers = 1) {
    engine_ = std::make_unique<DoppelEngine>(store_, opts, stop_);
    for (int i = 0; i < num_workers; ++i) {
      workers_.push_back(std::make_unique<Worker>(i, 11 + 7 * i));
    }
    engine_->RegisterWorkers(workers_);
    w_ = workers_[0].get();
  }

  // Simulate `n` sampled conflicts on `key` with `op` (joined phase).
  void Conflicts(const Key& key, OpCode op, int n) {
    for (int i = 0; i < n; ++i) {
      w_->txn.Reset(engine_.get(), w_);
      w_->txn.conflict_record = store_.Find(key);
      w_->txn.conflict_op = op;
      engine_->OnConflict(*w_, w_->txn);
    }
  }

  // Single-threaded phase-transition helpers. The coordinator's barrier work runs on
  // this thread with the (idle) worker quiescent, and Release precedes the worker's
  // BetweenTxns so its ack/release spin exits immediately.
  void EnterSplit() {
    engine_->controller().BeginTransition(Phase::kSplit);
    engine_->BarrierBuildPlan();
    engine_->controller().Release();
    for (auto& w : workers_) {
      engine_->BetweenTxns(*w);  // ack, observe release, prepare slices, enter split
    }
    ASSERT_EQ(engine_->CurrentPhase(*w_), Phase::kSplit);
  }

  void EnterJoined() {
    engine_->controller().BeginTransition(Phase::kJoined);
    engine_->controller().Release();
    for (auto& w : workers_) {
      engine_->BetweenTxns(*w);  // merge slices, ack, enter joined
    }
    engine_->BarrierAfterReconcile();  // reads the stats the merge just reported
    ASSERT_EQ(engine_->CurrentPhase(*w_), Phase::kJoined);
  }

  // Run one full phase cycle on the single (not-running) worker, committing `writes`
  // transactions of the selected op against the split record during the split phase.
  void Cycle(const Key& key, int writes, int stashed_reads) {
    EnterSplit();

    Record* r = store_.Find(key);
    for (int i = 0; i < writes && r != nullptr && r->IsSplit(); ++i) {
      w_->txn.Reset(engine_.get(), w_);
      w_->txn.Add(key, 1);
      ASSERT_EQ(engine_->Commit(*w_, w_->txn), TxnStatus::kCommitted);
    }
    for (int i = 0; i < stashed_reads && r != nullptr && r->IsSplit(); ++i) {
      w_->txn.Reset(engine_.get(), w_);
      (void)w_->txn.GetInt(key);
      ASSERT_TRUE(w_->txn.stash_doomed());
      engine_->OnStash(*w_, StashSignal{w_->txn.stash_record(), OpCode::kGet});
      engine_->Abort(*w_, w_->txn);
    }

    EnterJoined();
  }

  std::atomic<bool> stop_{false};
  Store store_;
  std::unique_ptr<DoppelEngine> engine_;
  std::vector<std::unique_ptr<Worker>> workers_;
  Worker* w_ = nullptr;
};

TEST_F(ClassifierDynamicsTest, SplitPhaseWritesApplyThroughSliceAndMerge) {
  Options opts;
  Build(opts);
  const Key k = Key::FromU64(1);
  store_.LoadInt(k, 10);
  Conflicts(k, OpCode::kAdd, 50);
  Cycle(k, 25, 0);
  // The 25 split-phase Adds merged into the global value at reconciliation.
  EXPECT_EQ(testing::IntAt(store_, k), 35);
}

TEST_F(ClassifierDynamicsTest, SelectedOpCanChangeBetweenPhases) {
  // "the operation for key k might be Min in one split phase, and Max in the next" (§4).
  Options opts;
  opts.classifier.min_split_writes = 1000000;  // disable retention: re-classify each time
  Build(opts);
  const Key k = Key::FromU64(1);
  store_.LoadInt(k, 0);

  Conflicts(k, OpCode::kMin, 50);
  EnterSplit();
  auto entries = engine_->LastPlanEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].second, OpCode::kMin);
  EnterJoined();

  Conflicts(k, OpCode::kMax, 50);
  EnterSplit();
  entries = engine_->LastPlanEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].second, OpCode::kMax);
  EnterJoined();
}

TEST_F(ClassifierDynamicsTest, RetentionKeepsWriteHotRecordSplit) {
  Options opts;
  opts.classifier.min_split_writes = 10;
  Build(opts);
  const Key k = Key::FromU64(1);
  store_.LoadInt(k, 0);
  Conflicts(k, OpCode::kAdd, 50);
  Cycle(k, 100, 0);  // plenty of split-phase writes
  // No new conflicts, but write sampling retains the record for the next split phase.
  EXPECT_TRUE(engine_->HasSplitCandidates());
  Cycle(k, 100, 0);
  EXPECT_EQ(engine_->LastPlanSize(), 1u);
}

TEST_F(ClassifierDynamicsTest, StashPressureUnsplitsAndSuppresses) {
  Options opts;
  opts.classifier.min_split_writes = 10;
  opts.classifier.unsplit_stash_ratio = 1.0;
  opts.classifier.resplit_suppress_phases = 100;
  Build(opts);
  const Key k = Key::FromU64(1);
  store_.LoadInt(k, 0);
  Conflicts(k, OpCode::kAdd, 50);
  Cycle(k, 20, 100);  // stashes far outnumber writes: must be un-split + suppressed
  EXPECT_FALSE(engine_->HasSplitCandidates()) << "retention must drop the record";
  // Fresh conflicts arrive, but the suppression window blocks re-splitting.
  Conflicts(k, OpCode::kAdd, 50);
  Cycle(k, 20, 0);
  EXPECT_EQ(engine_->LastPlanSize(), 0u);
}

TEST_F(ClassifierDynamicsTest, LowWriteRateUnsplits) {
  Options opts;
  opts.classifier.min_split_writes = 50;
  Build(opts);
  const Key k = Key::FromU64(1);
  store_.LoadInt(k, 0);
  Conflicts(k, OpCode::kAdd, 50);
  Cycle(k, 5, 0);  // too few split-phase writes: not worth keeping split
  EXPECT_FALSE(engine_->HasSplitCandidates());
}

// Regression (classifier skew under eviction churn): the sampler's space-saving
// replacement inherits the victim's count, so an entry's count can exceed the sum of
// its own op tallies. BarrierBuildPlan used the raw count, and the inflated denominator
// made min_splittable_fraction refuse to split a genuine heavy hitter whose entry had
// been through an eviction. The fix clamps the classified count to the op-tally sum.
// This drives the exact eviction deterministically: keys that collide in the sampler's
// probe window are computed from Key::Hash, the window is filled with mid-count churn
// entries, and the heavy hitter's first conflict is forced to inherit a victim's count.
TEST_F(ClassifierDynamicsTest, EvictionInheritanceDoesNotSkewClassification) {
  Options opts;
  Build(opts);

  // Keys whose sampler slots share one probe window (sampler capacity is 512; if that
  // default grows these keys simply stop colliding and the test degrades to trivially
  // passing rather than breaking).
  constexpr std::uint64_t kSamplerMask = 511;
  std::vector<Key> colliders;
  const std::uint64_t target = Key::FromU64(1).Hash() & kSamplerMask;
  for (std::uint64_t id = 1; colliders.size() < 10 && id < 1000000; ++id) {
    const Key k = Key::FromU64(id);
    if ((k.Hash() & kSamplerMask) == target) {
      colliders.push_back(k);
      store_.LoadInt(k, 0);
    }
  }
  ASSERT_EQ(colliders.size(), 10u);

  // Fill the probe window (8 slots) with Get-churn entries of count 50 each.
  for (int i = 0; i < 8; ++i) {
    Conflicts(colliders[static_cast<std::size_t>(i)], OpCode::kGet, 50);
  }
  // The heavy hitter's first sample must evict a count-50 victim and inherit its count:
  // entry becomes count=51 with op_counts[kAdd]=1, then accumulates 9 more real Adds.
  // Pre-fix: splittable 10 / count 60 < 0.25 => refused. Post-fix: clamped to 10/10.
  const Key hot = colliders[8];
  Conflicts(hot, OpCode::kAdd, 10);
  // A one-shot churn key that also inherits a big count must NOT be promoted: its
  // clamped count (1) is below min_conflicts even though its raw count is ~51.
  const Key churn = colliders[9];
  Conflicts(churn, OpCode::kAdd, 1);

  EnterSplit();
  Record* hot_r = store_.Find(hot);
  Record* churn_r = store_.Find(churn);
  ASSERT_NE(hot_r, nullptr);
  ASSERT_NE(churn_r, nullptr);
  EXPECT_TRUE(hot_r->IsSplit()) << "inherited count skew refused the heavy hitter";
  EXPECT_FALSE(churn_r->IsSplit()) << "inherited count promoted a one-shot churn key";
  EnterJoined();
}

// ---- Per-partition scan-conflict signal ----

// A hot scanned window with a contended interior record: scanners keep losing read-set
// validation to writers incrementing a record inside the window. Record-level sampling
// charges the losers' op (kGet), which min_splittable_fraction refuses forever; the
// per-partition scan attribution carries the winners' op (the record's last committed
// write), so the classifier splits the record within the next joined -> split
// transition — i.e. well inside the required two joined phases. This is the regression
// test that a scan-window conflict alone can drive a record split.
TEST_F(ClassifierDynamicsTest, ScanWindowConflictAloneDrivesRecordSplit) {
  Options opts;
  Build(opts, 2);
  constexpr std::uint64_t kT = 2;
  for (std::uint64_t i = 10; i <= 20; ++i) {
    store_.LoadInt(Key::Table(kT, i), 0);
  }
  const Key hot = Key::Table(kT, 15);
  Worker& scanner = *workers_[0];
  Worker& writer = *workers_[1];

  for (int i = 0; i < 12; ++i) {
    Txn& t = scanner.txn;
    t.Reset(engine_.get(), &scanner);
    (void)t.Scan(kT, 10, 20, 0, [](const Key&, const ReadResult&) { return true; });
    // A writer commits an Add on the interior record while the scan is open.
    writer.txn.Reset(engine_.get(), &writer);
    writer.txn.Add(hot, 1);
    ASSERT_EQ(engine_->Commit(writer, writer.txn), TxnStatus::kCommitted);
    ASSERT_EQ(engine_->Commit(scanner, t), TxnStatus::kConflict);
    ASSERT_FALSE(t.scan_set_conflicts.empty());
    engine_->OnConflict(scanner, t);
  }

  EnterSplit();
  Record* r = store_.Find(hot);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->IsSplit()) << "scan-window votes must split the interior record";
  auto entries = engine_->LastPlanEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].second, OpCode::kAdd) << "split op must be the winners' op";
  EnterJoined();
}

// Control for the test above: the same contention pattern expressed as plain point
// reads (no scan) must NOT split the record — read-mostly records stay reconciled
// (§5.5); the scan window is what changes the verdict.
TEST_F(ClassifierDynamicsTest, PlainReadConflictsDoNotSplit) {
  Options opts;
  Build(opts, 2);
  const Key hot = Key::FromU64(15);
  store_.LoadInt(hot, 0);
  Worker& reader = *workers_[0];
  Worker& writer = *workers_[1];

  for (int i = 0; i < 12; ++i) {
    Txn& t = reader.txn;
    t.Reset(engine_.get(), &reader);
    (void)t.GetInt(hot);
    writer.txn.Reset(engine_.get(), &writer);
    writer.txn.Add(hot, 1);
    ASSERT_EQ(engine_->Commit(writer, writer.txn), TxnStatus::kCommitted);
    ASSERT_EQ(engine_->Commit(reader, t), TxnStatus::kConflict);
    engine_->OnConflict(reader, t);
  }

  EnterSplit();
  Record* r = store_.Find(hot);
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->IsSplit());
  EnterJoined();
}

// ---- Adaptive boundary narrowing ----

TEST_F(ClassifierDynamicsTest, SkewedInsertsNarrowAdaptiveTable) {
  Options opts;
  opts.index_tune.min_inserts = 512;
  Build(opts);
  store_.ConfigureTable(6, {40, 64, true});
  for (std::uint64_t i = 0; i < 2000; ++i) {
    store_.LoadInt(Key::Table(6, i), 1);  // dense sub-2^40 keys: all on stripe 0
  }
  EXPECT_TRUE(engine_->IndexTunePending());
  engine_->BarrierTuneIndexes();
  const OrderedIndex::TableStats st = store_.index().StatsFor(6);
  EXPECT_EQ(st.rebins, 1u);
  // bit_width(1999) = 11, +1 headroom bit, minus log2(64 stripes).
  EXPECT_EQ(st.shift, 6u);
  EXPECT_EQ(st.entries, 2000u);
  // A fresh interval starts at the evaluation: nothing pending until new telemetry.
  EXPECT_FALSE(engine_->IndexTunePending());
  // Scans see every row across the re-binned layout.
  w_->txn.Reset(engine_.get(), w_);
  EXPECT_EQ(w_->txn.Scan(6, 0, 1ULL << 41, 0,
                         [](const Key&, const ReadResult&) { return true; }),
            2000u);
  ASSERT_EQ(engine_->Commit(*w_, w_->txn), TxnStatus::kCommitted);
}

TEST_F(ClassifierDynamicsTest, NarrowingDoesNotFireOnUniformWorkload) {
  Options opts;
  opts.index_tune.min_inserts = 256;
  Build(opts);
  // Uniform: 64 keys into each of the 16 configured stripes.
  store_.ConfigureTable(7, {12, 16, true});
  for (std::uint64_t i = 0; i < 1024; ++i) {
    store_.LoadInt(Key::Table(7, ((i % 16) << 12) | (i / 16)), 1);
  }
  EXPECT_FALSE(engine_->IndexTunePending());
  engine_->BarrierTuneIndexes();
  EXPECT_EQ(store_.index().StatsFor(7).rebins, 0u);
  EXPECT_EQ(store_.index().StatsFor(7).shift, 12u);

  // Contrast: the same volume collapsed onto one stripe narrows.
  store_.ConfigureTable(8, {12, 16, true});
  for (std::uint64_t i = 0; i < 1024; ++i) {
    store_.LoadInt(Key::Table(8, i), 1);
  }
  EXPECT_TRUE(engine_->IndexTunePending());
  engine_->BarrierTuneIndexes();
  EXPECT_EQ(store_.index().StatsFor(8).rebins, 1u);
  // bit_width(1023) = 10, +1 headroom bit, minus log2(16).
  EXPECT_EQ(store_.index().StatsFor(8).shift, 7u);
}

TEST_F(ClassifierDynamicsTest, PhantomScanPressureNarrowsAdaptiveTable) {
  Options opts;
  opts.index_tune.min_inserts = std::uint64_t{1} << 30;  // isolate the conflict trigger
  opts.index_tune.scan_conflict_pressure = 16;
  Build(opts);
  store_.ConfigureTable(9, {40, 64, true});
  for (std::uint64_t i = 0; i < 1000; ++i) {
    store_.LoadInt(Key::Table(9, i), 1);
  }
  EXPECT_FALSE(engine_->IndexTunePending());
  // Inserts keep invalidating scans of the one overloaded stripe (raw telemetry the
  // OCC commit path and 2PL lock timeouts feed).
  OrderedIndex::TableIndex* t = store_.index().FindTable(9);
  ASSERT_NE(t, nullptr);
  t->partitions[0].scan_conflicts.store(20);
  EXPECT_TRUE(engine_->IndexTunePending());
  engine_->BarrierTuneIndexes();
  const OrderedIndex::TableStats st = store_.index().StatsFor(9);
  EXPECT_EQ(st.rebins, 1u);
  EXPECT_EQ(st.shift, 5u);  // bit_width(999) = 10, +1 headroom bit, minus log2(64)
}

// With consistent tallies, a genuine heavy hitter survives churn and still splits.
TEST_F(ClassifierDynamicsTest, HeavyHitterSplitsDespiteEvictionChurn) {
  Options opts;
  Build(opts);
  const Key hot = Key::FromU64(1);
  store_.LoadInt(hot, 0);
  Rng rng(21);
  for (int i = 0; i < 5000; ++i) {
    const Key churn = Key::FromU64(1000 + rng.NextBounded(1u << 14));
    store_.LoadInt(churn, 0);
    Conflicts(churn, OpCode::kGet, 1);
    if (i % 8 == 0) {
      Conflicts(hot, OpCode::kAdd, 1);
    }
  }
  EnterSplit();
  Record* r = store_.Find(hot);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->IsSplit()) << "churned sampler must still classify the heavy hitter";
  EnterJoined();
}

}  // namespace
}  // namespace doppel
