// Reusable spinning barrier for tests and benchmark start/stop synchronization.
#ifndef DOPPEL_SRC_COMMON_BARRIER_H_
#define DOPPEL_SRC_COMMON_BARRIER_H_

#include <atomic>
#include <cstdint>

#include "src/common/cacheline.h"

namespace doppel {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {}
  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  // Blocks until `parties` threads have arrived; reusable across generations.
  void Wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      return;
    }
    while (generation_.load(std::memory_order_acquire) == gen) {
      CpuRelax();
    }
  }

 private:
  const std::uint32_t parties_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_BARRIER_H_
