#include "src/store/record.h"

namespace doppel {

Record::Record(const Key& key, RecordType type, std::size_t topk_k)
    : key_(key), type_(type) {
  switch (type) {
    case RecordType::kInt64:
      break;
    case RecordType::kBytes:
      complex_.emplace<std::string>();
      break;
    case RecordType::kOrdered:
      complex_.emplace<OrderedTuple>();
      break;
    case RecordType::kTopK:
      complex_.emplace<TopKSet>(topk_k);
      topk_k_ = static_cast<std::uint32_t>(topk_k);
      break;
  }
}

Record::IntSnapshot Record::ReadInt() const {
  DOPPEL_DCHECK(type_ == RecordType::kInt64);
  while (true) {
    const std::uint64_t w1 = tid_word_.load(std::memory_order_acquire);
    if (IsLocked(w1)) {
      CpuRelax();
      continue;
    }
    // Seqlock read: the data loads are relaxed — the acquire load of w1 above orders
    // them after the writer's release of a stable word, and the acquire fence + w2
    // re-check below detects any writer that intervened (retry on mismatch).
    const std::int64_t v = ival_.load(std::memory_order_relaxed);
    const bool present = present_.load(std::memory_order_relaxed) != 0;
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t w2 = tid_word_.load(std::memory_order_relaxed);
    if (w1 == w2) {
      return IntSnapshot{present, v, TidOf(w1)};
    }
  }
}

Record::ComplexSnapshot Record::ReadComplex() const {
  DOPPEL_DCHECK(type_ != RecordType::kInt64);
  while (true) {
    const std::uint64_t w1 = tid_word_.load(std::memory_order_acquire);
    if (IsLocked(w1)) {
      CpuRelax();
      continue;
    }
    val_lock_.lock();
    ComplexValue copy = complex_;
    // Same seqlock discipline as ReadInt: relaxed data loads bracketed by the w1
    // acquire above and the fence + w2 re-check below (retry on mismatch).
    const bool present = present_.load(std::memory_order_relaxed) != 0;
    val_lock_.unlock();
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t w2 = tid_word_.load(std::memory_order_relaxed);
    if (w1 == w2) {
      return ComplexSnapshot{present, std::move(copy), TidOf(w1)};
    }
  }
}

Record::ValueSnapshot Record::ReadValue() const {
  if (type_ == RecordType::kInt64) {
    IntSnapshot s = ReadInt();
    return ValueSnapshot{s.present, Value{s.value}, s.tid};
  }
  ComplexSnapshot s = ReadComplex();
  ValueSnapshot out;
  out.present = s.present;
  out.tid = s.tid;
  switch (type_) {
    case RecordType::kBytes:
      out.value = std::get<std::string>(std::move(s.value));
      break;
    case RecordType::kOrdered:
      out.value = std::get<OrderedTuple>(std::move(s.value));
      break;
    default:
      out.value = std::get<TopKSet>(std::move(s.value));
      break;
  }
  return out;
}

// The Atomic engine (no concurrency control) treats absent int records as holding 0; the
// benchmarks that use it pre-load every record, so this only matters for ad-hoc use.
void Record::AtomicMax(std::int64_t n) {
  std::int64_t cur = ival_.load(std::memory_order_relaxed);
  while (cur < n &&
         !ival_.compare_exchange_weak(cur, n, std::memory_order_relaxed)) {
  }
  present_.store(1, std::memory_order_relaxed);
}

void Record::AtomicMin(std::int64_t n) {
  std::int64_t cur = ival_.load(std::memory_order_relaxed);
  while (cur > n &&
         !ival_.compare_exchange_weak(cur, n, std::memory_order_relaxed)) {
  }
  present_.store(1, std::memory_order_relaxed);
}

void Record::AtomicMult(std::int64_t n) {
  std::int64_t cur = ival_.load(std::memory_order_relaxed);
  while (!ival_.compare_exchange_weak(cur, cur * n, std::memory_order_relaxed)) {
  }
  present_.store(1, std::memory_order_relaxed);
}

}  // namespace doppel
