#include "src/store/ordered_index.h"

#include <utility>

#include "src/common/dassert.h"
#include "src/common/hash.h"
#include "src/store/record.h"

namespace doppel {

OrderedIndex::OrderedIndex() : slots_(kMaxTables) {}

OrderedIndex::~OrderedIndex() {
  for (Slot& s : slots_) {
    // Destructor: no concurrent access remains, any order suffices.
    delete s.index.load(std::memory_order_relaxed);
  }
}

OrderedIndex::TableIndex* OrderedIndex::FindTable(std::uint64_t table) const {
  const std::uint64_t tag = table + 1;
  std::size_t i = static_cast<std::size_t>(Mix64(table)) % kMaxTables;
  for (std::size_t probes = 0; probes < kMaxTables; ++probes) {
    const std::uint64_t t = slots_[i].tag.load(std::memory_order_acquire);
    if (t == 0) {
      return nullptr;
    }
    if (t == tag) {
      // tag is published after index (release), so the acquire above orders this load.
      return slots_[i].index.load(std::memory_order_relaxed);
    }
    i = (i + 1) % kMaxTables;
  }
  return nullptr;
}

OrderedIndex::TableIndex& OrderedIndex::CreateTable(std::uint64_t table,
                                                    const PartitionConfig& cfg) {
  DOPPEL_CHECK(cfg.partitions <= kMaxPartitionsPerTable);
  const std::uint64_t tag = table + 1;
  std::size_t i = static_cast<std::size_t>(Mix64(table)) % kMaxTables;
  for (std::size_t probes = 0; probes < kMaxTables; ++probes) {
    // Creation is serialized by create_mu_ (callers hold it), so the probe reads are
    // relaxed; the tag release-store below is what publishes the slot to lock-free
    // readers, ordering the index store before it.
    if (slots_[i].tag.load(std::memory_order_relaxed) == 0) {
      auto* idx = new TableIndex(table, cfg);
      slots_[i].index.store(idx, std::memory_order_relaxed);
      slots_[i].tag.store(tag, std::memory_order_release);
      return *idx;
    }
    i = (i + 1) % kMaxTables;
  }
  DOPPEL_CHECK(false);  // more than kMaxTables distinct tables
  __builtin_unreachable();
}

OrderedIndex::TableIndex& OrderedIndex::ConfigureTable(std::uint64_t table,
                                                       const PartitionConfig& cfg) {
  create_mu_.lock();
  // Layouts are fixed at creation (partition addresses are held raw by scan and lock
  // sets), so reconfiguring a live table is a programming error.
  DOPPEL_CHECK(FindTable(table) == nullptr);
  TableIndex& t = CreateTable(table, cfg);
  create_mu_.unlock();
  return t;
}

OrderedIndex::TableIndex& OrderedIndex::RestoreTable(std::uint64_t table,
                                                     const PartitionConfig& cfg) {
  create_mu_.lock();
  TableIndex* existing = FindTable(table);
  if (existing == nullptr) {
    TableIndex& t = CreateTable(table, cfg);
    create_mu_.unlock();
    return t;
  }
  create_mu_.unlock();
  // The table was registered (and possibly pre-populated) before recovery. Stripe
  // capacity cannot change, but a checkpoint taken after adaptive narrowing carries a
  // tighter shift than the registration default — resume from it.
  if (cfg.shift < existing->shift.load(std::memory_order_acquire)) {
    NarrowTable(*existing, cfg.shift);
  }
  return *existing;
}

OrderedIndex::TableIndex& OrderedIndex::GetOrCreateTable(std::uint64_t table) {
  if (TableIndex* t = FindTable(table)) {
    return *t;
  }
  create_mu_.lock();
  TableIndex* existing = FindTable(table);  // re-check under the creation lock
  if (existing != nullptr) {
    create_mu_.unlock();
    return *existing;
  }
  TableIndex& t = CreateTable(table, PartitionConfig{});
  create_mu_.unlock();
  return t;
}

void OrderedIndex::Insert(const Key& key, Record* r) {
  TableIndex& t = GetOrCreateTable(key.hi);
  while (true) {
    const unsigned s = t.shift.load(std::memory_order_acquire);
    IndexPartition& part = t.partitions[t.PartitionWithShift(key.lo, s)];
    part.mu.lock();
    // Relaxed shift re-check: NarrowTable publishes the new shift while holding every
    // partition lock, so holding ours orders the read — a stale value is impossible,
    // only a changed one (lost the race: re-bin under the new boundaries).
    if (t.shift.load(std::memory_order_relaxed) != s) {
      part.mu.unlock();
      continue;
    }
    const bool inserted = part.entries.emplace(key.lo, r).second;
    if (inserted) {
      part.version.fetch_add(1, std::memory_order_release);
      // Telemetry (cumulative counter) and the max-key high-water mark are read only
      // by the coordinator at barriers or by stats snapshots: racy reads fine.
      part.inserts.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t cur = t.max_key.load(std::memory_order_relaxed);
      while (key.lo > cur &&
             !t.max_key.compare_exchange_weak(cur, key.lo, std::memory_order_relaxed)) {
      }
    }
    part.mu.unlock();
    return;
  }
}

void OrderedIndex::Remove(const Key& key) {
  TableIndex* t = FindTable(key.hi);
  if (t == nullptr) {
    return;  // the key was never indexed (deleted while still absent)
  }
  while (true) {
    const unsigned s = t->shift.load(std::memory_order_acquire);
    IndexPartition& part = t->partitions[t->PartitionWithShift(key.lo, s)];
    part.mu.lock();
    // Relaxed shift re-check: same argument as Insert — NarrowTable publishes the new
    // shift while holding every partition lock, so holding ours orders the read.
    if (t->shift.load(std::memory_order_relaxed) != s) {
      part.mu.unlock();
      continue;
    }
    if (part.entries.erase(key.lo) != 0) {
      // The phantom-delete guard: a scan that traversed this range (and so may have
      // seen the key) revalidates against the bumped version and aborts.
      part.version.fetch_add(1, std::memory_order_release);
      // Telemetry (cumulative counters): racy stats reads by contract.
      part.removes.fetch_add(1, std::memory_order_relaxed);
      total_removes_.fetch_add(1, std::memory_order_relaxed);
    }
    part.mu.unlock();
    return;
  }
}

// Loop-acquired full partition lock set — outside the function-local analysis.
bool OrderedIndex::NarrowTable(TableIndex& t, unsigned new_shift)
    NO_THREAD_SAFETY_ANALYSIS {
  if (t.partitions.size() < 2 || new_shift >= t.shift.load(std::memory_order_acquire)) {
    return false;
  }
  for (IndexPartition& p : t.partitions) {
    p.mu.lock();
  }
  // Re-check under the full lock set (a concurrent NarrowTable call may have won).
  if (new_shift >= t.shift.load(std::memory_order_relaxed)) {
    for (auto it = t.partitions.rbegin(); it != t.partitions.rend(); ++it) {
      it->mu.unlock();
    }
    return false;
  }
  std::vector<std::pair<std::uint64_t, Record*>> all;
  for (IndexPartition& p : t.partitions) {
    for (const auto& [lo, rec] : p.entries) {
      all.emplace_back(lo, rec);
    }
    p.entries.clear();
  }
  // Publish the new boundary before re-binning so a blocked Insert that re-checks its
  // partition choice sees the new layout the moment its stripe lock is released.
  t.shift.store(new_shift, std::memory_order_release);
  for (const auto& [lo, rec] : all) {
    IndexPartition& p = t.partitions[t.PartitionWithShift(lo, new_shift)];
    p.entries.emplace(lo, rec);
  }
  for (IndexPartition& p : t.partitions) {
    // Conservatively invalidate every scan that straddles the re-bin: entry membership
    // moved, so old (partition, version) observations no longer describe any range.
    p.version.fetch_add(1, std::memory_order_release);
  }
  t.rebins.fetch_add(1, std::memory_order_relaxed);
  for (auto it = t.partitions.rbegin(); it != t.partitions.rend(); ++it) {
    it->mu.unlock();
  }
  return true;
}

OrderedIndex::TableStats OrderedIndex::StatsFor(std::uint64_t table) const {
  TableStats st;
  const TableIndex* t = FindTable(table);
  if (t == nullptr) {
    return st;
  }
  st.shift = t->shift.load(std::memory_order_acquire);
  st.partitions = t->partitions.size();
  st.adaptive = t->adaptive;
  // Stats snapshot: cumulative telemetry counters, racy reads by contract.
  st.rebins = t->rebins.load(std::memory_order_relaxed);
  st.max_key = t->max_key.load(std::memory_order_relaxed);
  for (const IndexPartition& p : t->partitions) {
    p.mu.lock();
    st.entries += p.entries.size();
    p.mu.unlock();
    // Same: cumulative telemetry, racy reads by contract.
    st.inserts += p.inserts.load(std::memory_order_relaxed);
    st.removes += p.removes.load(std::memory_order_relaxed);
    st.scan_conflicts += p.scan_conflicts.load(std::memory_order_relaxed);
  }
  return st;
}

std::uint64_t OrderedIndex::SnapshotRange(
    IndexPartition& part, std::uint64_t lo, std::uint64_t hi, std::size_t max_items,
    std::vector<std::pair<std::uint64_t, Record*>>* out) {
  part.mu.lock();
  // Relaxed under part.mu: every version bump happens while holding the same lock,
  // so this read is ordered with all of them by the lock itself.
  const std::uint64_t version = part.version.load(std::memory_order_relaxed);
  for (auto it = part.entries.lower_bound(lo); it != part.entries.end() && it->first <= hi;
       ++it) {
    out->emplace_back(it->first, it->second);
    if (max_items != 0 && out->size() >= max_items) {
      break;
    }
  }
  part.mu.unlock();
  return version;
}

std::size_t OrderedIndex::size(std::uint64_t table) const {
  const TableIndex* t = FindTable(table);
  if (t == nullptr) {
    return 0;
  }
  std::size_t n = 0;
  for (const IndexPartition& p : t->partitions) {
    p.mu.lock();
    n += p.entries.size();
    p.mu.unlock();
  }
  return n;
}

}  // namespace doppel
