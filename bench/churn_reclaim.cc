// Insert/delete churn: does the store's memory stay bounded when keys come and go?
//
// Every transaction PutInts a never-reused key and deletes the previous one, so the
// live set is one row per worker while the key space churns without end. Before this
// repo grew transactional deletes + epoch reclamation, each churned key left one
// permanently-allocated record behind — Store::size() and RSS grew linearly with
// committed transactions. With reclamation on, the epoch sweeper frees records two
// epochs after their delete commits, and both gauges flatline.
//
// Rows: reclaim-on per protocol, then reclaim-off last (its leaked records return to
// the allocator only at teardown; running it first would hand later rows a warm free
// pool and mask their RSS growth). The no-reclaim row also demonstrates the record-map
// load-factor warning once leaked chains pass 4 records/bucket.
#include <memory>

#include "bench/bench_common.h"

namespace doppel {
namespace {

constexpr std::uint64_t kChurnTable = 5;  // clear of INCR (0) and RUBiS (16+) tables
// Per-worker disjoint key ranges; ids only ever move forward, so no key is reused.
constexpr std::uint64_t kWorkerStride = 1ULL << 40;

void ChurnProc(Txn& t, const TxnArgs& a) {
  t.PutInt(a.k1, 1);
  if (a.n != 0) {
    t.Delete(a.k2);
  }
}

class ChurnSource : public TxnSource {
 public:
  TxnRequest Next(Worker& w) override {
    const std::uint64_t id =
        static_cast<std::uint64_t>(w.id) * kWorkerStride + next_++;
    TxnRequest r;
    r.proc = &ChurnProc;
    r.args.tag = kTagWrite;
    r.args.k1 = Key::Table(kChurnTable, id);
    r.args.k2 = Key::Table(kChurnTable, id - 1);
    r.args.n = next_ > 1 ? 1 : 0;  // the first transaction has no predecessor
    return r;
  }

 private:
  std::uint64_t next_ = 0;
};

// Current resident set, bytes, from /proc/self/status (0 if unreadable). Sampled
// before/after each row so growth is attributed per configuration.
std::size_t ReadRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %zu kB", &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  struct Config {
    const char* name;
    Protocol proto;
    bool reclaim;
  };
  const Config configs[] = {
      {"occ+reclaim", Protocol::kOcc, true},
      {"2pl+reclaim", Protocol::kTwoPL, true},
      {"doppel+reclaim", Protocol::kDoppel, true},
      {"occ-noreclaim", Protocol::kOcc, false},
  };

  std::printf("Insert/delete churn: 1 fresh insert + 1 delete per txn, keys never "
              "reused\n");
  std::printf("threads=%d phase=%llums (reclaim-off last: leaked records are only "
              "returned at teardown)\n\n",
              flags.ResolvedThreads(),
              static_cast<unsigned long long>(flags.phase_ms));

  Table table({"config", "txns/s", "records", "load", "reclaimed", "epochs",
               "rss_growth"});
  for (const Config& cfg : configs) {
    RunStats tput;
    RunMetrics last;
    std::uint64_t epochs = 0;
    std::size_t rss_growth = 0;
    for (int run = 0; run < flags.Runs(); ++run) {
      Options opts =
          bench::BaseOptions(flags, cfg.proto, std::size_t{1} << 16);
      opts.reclaim.enabled = cfg.reclaim;
      opts.reclaim.tick_period = 16;          // sweep often: the point is reclamation
      opts.reclaim.chunk_buckets = 1 << 14;   // cover the whole map every few steps
      auto db = std::make_unique<Database>(opts);
      const std::size_t rss_before = ReadRssBytes();
      const RunMetrics m = RunWorkload(
          *db, [](int) { return std::make_unique<ChurnSource>(); },
          flags.MeasureMs(/*default_seconds=*/0.4),
          /*warmup_ms=*/flags.full ? 500 : 100);
      const std::size_t rss_after = ReadRssBytes();
      tput.Add(m.throughput);
      last = m;
      epochs = db->reclaimer() != nullptr ? db->reclaimer()->epochs().global() : 0;
      rss_growth = rss_after > rss_before ? rss_after - rss_before : 0;
    }
    table.AddRow({cfg.name, FormatCount(tput.mean()),
                  FormatCount(static_cast<double>(last.store_records)),
                  FormatDouble(last.store_load_factor, 2),
                  FormatCount(static_cast<double>(last.reclaimed_records)),
                  std::to_string(epochs),
                  FormatBytes(static_cast<double>(rss_growth))});
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
