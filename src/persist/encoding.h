// Little binary plumbing shared by the segmented WAL and the checkpointer: raw POD
// append to a byte buffer and a bounds-checked read cursor. All on-disk integers are
// host-endian (the persistence directory is not a portable interchange format; it is
// reopened by the process image that wrote it).
#ifndef DOPPEL_SRC_PERSIST_ENCODING_H_
#define DOPPEL_SRC_PERSIST_ENCODING_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

namespace doppel {

// resize + memcpy rather than vector::insert of an iterator range: equivalent, a hair
// cheaper, and it does not trip GCC 12's spurious -Wstringop-overflow on char ranges.
inline void PutSpan(std::vector<char>& out, const void* data, std::size_t len) {
  const std::size_t off = out.size();
  out.resize(off + len);
  std::memcpy(out.data() + off, data, len);
}

template <typename T>
void PutRaw(std::vector<char>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  PutSpan(out, &v, sizeof(T));
}

inline void PutBytes(std::vector<char>& out, const std::string& s) {
  PutRaw(out, static_cast<std::uint32_t>(s.size()));
  PutSpan(out, s.data(), s.size());
}

// Bounds-checked reader over a byte range; every Read reports whether the bytes were
// actually there, which is how torn tails and truncated files surface as a clean stop
// instead of an out-of-bounds read.
class ByteCursor {
 public:
  ByteCursor(const char* data, std::size_t size) : p_(data), end_(data + size) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > static_cast<std::size_t>(end_ - p_)) {
      return false;
    }
    std::memcpy(out, p_, sizeof(T));
    p_ += sizeof(T);
    return true;
  }

  bool ReadBytes(std::string* out, std::size_t len) {
    if (len > static_cast<std::size_t>(end_ - p_)) {
      return false;
    }
    out->assign(p_, len);
    p_ += len;
    return true;
  }

  bool ReadString(std::string* out) {
    std::uint32_t len = 0;
    return Read(&len) && ReadBytes(out, len);
  }

  bool AtEnd() const { return p_ == end_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_PERSIST_ENCODING_H_
