// The transaction context and user-facing access API.
//
// Transaction bodies are written against this class with no knowledge of reconciled vs.
// split data, per-core slices, or phases (§6): the engine behind it routes each access.
// All writes are buffered (into the write set or, for split data, the split-write set) and
// applied at commit by the engine's protocol.
//
// Hot-path layout notes: PendingWrite is a 32-byte POD whose variable-size operands
// (payload bytes, ordered-op OrderKeys) live in the transaction's WriteArena, recycled by
// Reset — commit-time sorting, WAL encoding, and read-your-own-writes overlays never
// touch a std::string. Writes to the same record are chained through PendingWrite::next
// in issue order; once the write set outgrows a small threshold an open-addressing index
// over those chains makes own-write lookup O(1) instead of O(write set).
#ifndef DOPPEL_SRC_TXN_TXN_H_
#define DOPPEL_SRC_TXN_TXN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/function_ref.h"
#include "src/store/key.h"
#include "src/store/record.h"
#include "src/store/value.h"
#include "src/txn/op.h"
#include "src/txn/write_arena.h"

namespace doppel {

class Engine;
class Worker;
struct IndexPartition;

// A read-set entry: the TID the record had when this transaction read it (Fig. 2).
// Entries recorded by a range scan also carry the index partition the record was reached
// through, so a validation failure can be attributed to that scan window (per-partition
// conflict telemetry). The table is not stored: index entries are keyed by Key.hi, so it
// is recoverable as record->key().hi.
struct ReadEntry {
  Record* record;
  std::uint64_t tid;
  std::int32_t scan_part = -1;  // >= 0: reached via a scan of this partition index
};

// A buffered write. `n` carries int operands; ordered/byte operands live in the owning
// transaction's WriteArena at `arg_off` (see OrderOf/PayloadOf). `core` is the writing
// worker's id (the paper's core ID component). `next` chains this transaction's writes
// to the same record in issue order (read-your-own-writes overlays walk the chain).
struct PendingWrite {
  static constexpr std::uint32_t kNoNext = 0xffffffffu;

  Record* record = nullptr;
  std::int64_t n = 0;
  std::uint32_t arg_off = 0;      // arena offset of the operand block
  std::uint32_t payload_len = 0;  // payload byte length (OrderKey header excluded)
  std::uint32_t next = kNoNext;   // next write to the same record, or kNoNext
  std::uint16_t core = 0;
  OpCode op = OpCode::kGet;

  bool has_ordered_operand() const {
    return op == OpCode::kOPut || op == OpCode::kTopKInsert;
  }
  OrderKey OrderOf(const WriteArena& a) const {
    return has_ordered_operand() ? a.OrderAt(arg_off) : OrderKey{};
  }
  std::string_view PayloadOf(const WriteArena& a) const {
    if (op == OpCode::kPutBytes) {
      return a.View(arg_off, payload_len);
    }
    if (has_ordered_operand()) {
      return a.View(arg_off + WriteArena::kOrderBytes, payload_len);
    }
    return {};
  }
};
// The commit path sorts, dedups, and copies write sets millions of times per second;
// growing this struct is a measured throughput regression, not a style choice.
static_assert(sizeof(PendingWrite) <= 32, "PendingWrite must stay a small POD");
static_assert(std::is_trivially_copyable_v<PendingWrite>);

// Fills `w`'s arena-addressed operand fields for `op` from `order`/`payload`.
// Int-operand ops store nothing; byte ops store the payload; ordered ops store the
// OrderKey followed by the payload.
inline void StoreOperand(WriteArena& a, OpCode op, const OrderKey& order,
                         std::string_view payload, PendingWrite* w) {
  switch (op) {
    case OpCode::kOPut:
    case OpCode::kTopKInsert:
      w->arg_off = a.PutOrdered(order, payload);
      w->payload_len = static_cast<std::uint32_t>(payload.size());
      break;
    case OpCode::kPutBytes:
      w->arg_off = a.Put(payload.data(), payload.size());
      w->payload_len = static_cast<std::uint32_t>(payload.size());
      break;
    default:
      w->arg_off = 0;
      w->payload_len = 0;
      break;
  }
}

// A typed snapshot produced by an engine read.
struct ReadResult {
  bool present = false;
  std::int64_t i = 0;
  ComplexValue complex;
};

// A 2PL lock-set entry (unused by the other engines).
struct LockEntry {
  Record* record;
  bool exclusive;
};

// A scan-set entry: one ordered-index partition this transaction's scan traversed, and
// the version it saw. OCC commit validation rechecks these alongside the read set
// (Silo-style phantom protection: an insert into the range bumps the version).
struct IndexScanEntry {
  IndexPartition* partition;
  std::uint64_t version;
  std::uint64_t table = 0;
  std::uint32_t part_index = 0;
};

// One scan conflict, attributed to an index partition: either a phantom (the partition's
// version moved under a scan — a concurrent insert; no record to blame) or a validation
// failure on a record that was reached through a scan (`key` names it, `op` is the
// record's last committed write op — the operation the winners are hot on). Commit
// protocols fill these; DoppelEngine::OnConflict feeds them to the per-worker sampler.
struct ScanSetConflict {
  std::uint64_t table = 0;
  std::uint32_t partition = 0;
  bool has_record = false;
  Key key{};
  OpCode op = OpCode::kGet;
};

// A 2PL index-partition lock (shared by scanners, exclusive by inserters).
struct IndexLockEntry {
  IndexPartition* partition;
  bool exclusive;
};

// Scan callback: invoked per logically-present record in ascending key order with the
// record's snapshot (ints in `i`, other types in `complex`). Return false to stop early.
// A FunctionRef, not std::function: scans run per transaction on the hot path and the
// callback must never cost an allocation; it is only ever passed down the stack.
using ScanFn = FunctionRef<bool(const Key& key, const ReadResult& value)>;

class Txn {
 public:
  Txn() = default;
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  // ---- User API ----
  // Reads return std::nullopt for logically-absent records. Every accessor observes the
  // transaction's own buffered writes.
  std::optional<std::int64_t> GetInt(const Key& key);
  std::optional<std::string> GetBytes(const Key& key);
  std::optional<OrderedTuple> GetOrdered(const Key& key);
  std::optional<TopKSet> GetTopK(const Key& key, std::size_t k = TopKSet::kDefaultK);

  void PutInt(const Key& key, std::int64_t v);
  void PutBytes(const Key& key, std::string_view v);

  // Deletes the key (any record type): a committed delete makes the key absent to
  // subsequent reads and scans and removes it from the ordered index; the physical
  // record is reclaimed later by the epoch sweeper. Deleting an absent key is a
  // serializable no-op. This transaction's own reads/scans observe the delete.
  void Delete(const Key& key);

  // Splittable operations (§4). They return nothing by design.
  void Add(const Key& key, std::int64_t n);
  void Max(const Key& key, std::int64_t n);
  void Min(const Key& key, std::int64_t n);
  void Mult(const Key& key, std::int64_t n);
  void OPut(const Key& key, OrderKey order, std::string_view payload);
  void TopKInsert(const Key& key, OrderKey order, std::string_view payload,
                  std::size_t k = TopKSet::kDefaultK);

  // Serializable range scan over the ordered index of `table` (a Key.hi namespace):
  // visits every logically-present record with key lo in [lo, hi] (inclusive), ascending,
  // calling `fn` for up to `limit` records (0 = unlimited). Returns the number visited.
  // The scan observes all of this transaction's own buffered writes: updates to
  // already-present records are overlaid onto their snapshots, and the transaction's own
  // not-yet-committed inserts (writes to records absent from the index) are merged into
  // the result in key order.
  // Phantom protection is per index partition: under OCC a concurrent committed insert
  // into a traversed partition aborts this transaction at commit; under 2PL partitions
  // are read-locked for the transaction's duration; under Doppel a scan whose window
  // contains a split record during a split phase stashes the transaction (§7: split data
  // is unreadable in a split phase).
  std::size_t Scan(std::uint64_t table, std::uint64_t lo, std::uint64_t hi,
                   std::size_t limit, ScanFn fn);

  // Aborts the transaction; it will not be retried.
  [[noreturn]] void UserAbort();

  // Identity of the executing worker (also the OPut/TopKInsert core-ID component).
  int worker_id() const;
  // Worker-local RNG, usable for in-transaction payload generation.
  class Rng& rng();

  // ---- Engine API ----
  void Reset(Engine* engine, Worker* worker) {
    engine_ = engine;
    worker_ = worker;
    read_set_.clear();
    write_set_.clear();
    split_writes_.clear();
    arena_.Clear();
    windex_built_ = false;
    locks_.clear();
    scan_set_.clear();
    index_locks_.clear();
    conflict_record = nullptr;
    conflict_op = OpCode::kGet;
    conflicts.clear();
    scan_conflict = false;
    scan_set_conflicts.clear();
    stash_doomed_ = false;
    stash_record_ = nullptr;
    stash_op_ = OpCode::kGet;
  }

  std::vector<ReadEntry>& read_set() { return read_set_; }
  std::vector<PendingWrite>& write_set() { return write_set_; }
  std::vector<PendingWrite>& split_writes() { return split_writes_; }
  WriteArena& arena() { return arena_; }
  const WriteArena& arena() const { return arena_; }
  std::vector<LockEntry>& locks() { return locks_; }
  std::vector<IndexScanEntry>& scan_set() { return scan_set_; }
  std::vector<IndexLockEntry>& index_locks() { return index_locks_; }

  // Appends `w` to the write set, maintaining the same-record issue-order chain and (once
  // built) the own-write index. Engines must buffer through this, never by mutating
  // write_set() directly, or read-your-own-writes misses the new entry.
  void BufferWrite(PendingWrite&& w);

  // First buffered write to `r` (chain head, issue order) or nullptr. O(1) once the
  // write index is built; linear below the threshold, where linear is faster anyway.
  const PendingWrite* FindOwnWrite(const Record* r) const;

  // Applies this transaction's buffered writes for `r` on top of a fresh snapshot
  // (engines use it so scans observe the transaction's own writes).
  void OverlayPending(Record* r, ReadResult* res) const;

  // Reusable commit-time scratch: the record-address sort order of the write set lives
  // here as indices, so commit never copies or reorders the 32-byte elements themselves
  // (and single-write commits never touch this at all).
  std::vector<std::uint32_t>& commit_order() { return commit_order_; }

  // Commit order for the write set: slot indices sorted by record address, equal
  // records tie-broken on slot so same-record writes keep issue order (stable). Write
  // sets of size <= 1 skip the sort and the scratch vector entirely — `single` is the
  // caller-provided storage the returned pointer aliases in that case. Shared by the
  // OCC and 2PL commit protocols; valid until the next BufferWrite/Reset.
  const std::uint32_t* CommitOrder(std::uint32_t* single);

  // Reusable scan scratch (engine range snapshots / RYOW merge). Callers take the
  // buffer with std::move and return it when done, so a nested scan degrades to a fresh
  // allocation instead of corrupting the outer scan's state.
  std::vector<std::pair<std::uint64_t, Record*>>& scan_batch() { return scan_batch_; }
  std::vector<std::pair<std::uint64_t, Record*>>& scan_own() { return scan_own_; }

  // RAII move-out/move-back lease over a scan scratch buffer (see scan_batch()).
  class ScanScratchLease {
   public:
    explicit ScanScratchLease(std::vector<std::pair<std::uint64_t, Record*>>& home)
        : home_(&home), buf_(std::move(home)) {}
    ScanScratchLease(const ScanScratchLease&) = delete;
    ScanScratchLease& operator=(const ScanScratchLease&) = delete;
    ~ScanScratchLease() { *home_ = std::move(buf_); }
    std::vector<std::pair<std::uint64_t, Record*>>& get() { return buf_; }

   private:
    std::vector<std::pair<std::uint64_t, Record*>>* home_;
    std::vector<std::pair<std::uint64_t, Record*>> buf_;
  };

  Worker& worker() { return *worker_; }
  Engine& engine() { return *engine_; }

  // ---- Cross-transaction route cache ----
  // Key -> Record* memo that deliberately survives Reset: an aborted transaction's
  // retry — the workload Doppel exists for — touches the same records and should not
  // pay the store's hash walk again (ROADMAP item 1 / PR 9). Safety has two layers:
  //  * Liveness: a hit is re-validated by the engine's post-snapshot IsDead check (the
  //    same check every routed pointer gets), so a record the sweeper killed is
  //    detected and re-routed.
  //  * Reclamation: a cached pointer must never outlive the record's free. Frees happen
  //    only after every worker observes two epoch advances past the unlink; the worker
  //    bumps `route_cache_gen_` (InvalidateRouteCache, called by the run loop) whenever
  //    the epoch it *observes* changes, so any entry cached before the unlink's epoch
  //    is stamped with an older generation — and ignored — before the free can occur.
  // Direct-mapped: one probe, no tombstone churn; collisions just evict.
  Record* CachedRoute(const Key& key) const {
    const RouteCacheEntry& e = route_cache_[RouteSlot(key)];
    if (e.gen != route_cache_gen_ || e.record == nullptr || !(e.key == key)) {
      return nullptr;
    }
    return e.record;
  }
  void CacheRoute(const Key& key, Record* r) {
    RouteCacheEntry& e = route_cache_[RouteSlot(key)];
    e.key = key;
    e.record = r;
    e.gen = route_cache_gen_;
  }
  // Generation bump: every existing entry becomes stale in O(1). Run loop calls this
  // when the worker's observed epoch moves (see EpochReclaimer::Tick).
  void InvalidateRouteCache() { ++route_cache_gen_; }

  // Set by commit protocols when the transaction loses a conflict; fed to the classifier.
  // `conflicts` lists every record whose validation failed (a transaction touching
  // several co-hot records — e.g. RUBiS's maxBid/numBids/bidsPerItem — must charge all of
  // them, or the ones behind the first failure are never detected as contended).
  Record* conflict_record = nullptr;
  OpCode conflict_op = OpCode::kGet;
  std::vector<std::pair<Record*, OpCode>> conflicts;
  // Set when scan-set (index partition) validation fails; there is no single record to
  // attribute, so it is reported separately from conflict_record.
  bool scan_conflict = false;
  // Per-partition attribution of scan-related conflicts (phantom inserts and failed
  // validations of scanned records); bounded like `conflicts`.
  std::vector<ScanSetConflict> scan_set_conflicts;

  // ---- Stash poisoning (split-phase blocking, §5.2) ----
  // A transaction that touches split data incompatibly is doomed: it will be stashed and
  // restarted in the next joined phase. Doomed execution continues without side effects —
  // reads return nullopt, writes are dropped — instead of unwinding via an exception;
  // with tens of thousands of stashes per second the unwinder (which serializes across
  // threads) would otherwise dominate split-phase cost.
  void MarkStash(Record* r, OpCode op) {
    if (!stash_doomed_) {
      stash_doomed_ = true;
      stash_record_ = r;
      stash_op_ = op;
    }
  }
  bool stash_doomed() const { return stash_doomed_; }
  Record* stash_record() const { return stash_record_; }
  OpCode stash_op() const { return stash_op_; }

 private:
  void IssueWrite(const Key& key, OpCode op, std::int64_t n, const OrderKey& order,
                  std::string_view payload, std::size_t topk_k);

  // Own-write index machinery (see BufferWrite). The open-addressing table maps
  // Record* -> chain head/tail indices; it is built lazily once the write set passes
  // kWriteIndexThreshold and abandoned by Reset (flag flip, no clearing cost).
  struct WriteSlot {
    Record* record = nullptr;
    std::uint32_t head = 0;
    std::uint32_t tail = 0;
  };
  static constexpr std::size_t kWriteIndexThreshold = 8;
  // Route cache geometry: 64 direct-mapped slots covers the handful of records a
  // transaction (and its retries) touches; 3 KiB per worker, reset-free invalidation.
  static constexpr std::size_t kRouteCacheSlots = 64;
  struct RouteCacheEntry {
    Key key{};
    Record* record = nullptr;
    std::uint64_t gen = 0;
  };
  std::size_t RouteSlot(const Key& key) const {
    return key.Hash() & (kRouteCacheSlots - 1);
  }
  void BuildWriteIndex();
  WriteSlot* WindexSlot(const Record* r);
  std::uint32_t OwnWriteHead(const Record* r) const;

  Engine* engine_ = nullptr;
  Worker* worker_ = nullptr;
  std::vector<ReadEntry> read_set_;
  std::vector<PendingWrite> write_set_;
  std::vector<PendingWrite> split_writes_;
  WriteArena arena_;
  std::vector<LockEntry> locks_;
  std::vector<IndexScanEntry> scan_set_;
  std::vector<IndexLockEntry> index_locks_;
  std::vector<std::uint32_t> commit_order_;
  std::vector<std::pair<std::uint64_t, Record*>> scan_batch_;
  std::vector<std::pair<std::uint64_t, Record*>> scan_own_;
  std::vector<WriteSlot> windex_;
  std::size_t windex_mask_ = 0;
  bool windex_built_ = false;
  // Survives Reset by design (see CachedRoute); generation bump is the only eviction.
  RouteCacheEntry route_cache_[kRouteCacheSlots];
  std::uint64_t route_cache_gen_ = 1;
  bool stash_doomed_ = false;
  Record* stash_record_ = nullptr;
  OpCode stash_op_ = OpCode::kGet;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_TXN_TXN_H_
