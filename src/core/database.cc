#include "src/core/database.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/common/cpu.h"
#include "src/common/timing.h"
#include "src/txn/atomic_engine.h"
#include "src/txn/occ_engine.h"
#include "src/txn/twopl_engine.h"

namespace doppel {

// ---- TxnHandle ----

bool TxnHandle::done() const {
  DOPPEL_CHECK(ticket_ != nullptr);
  return ticket_->state.load(std::memory_order_acquire) != 0;
}

TxnResult TxnHandle::Wait() const {
  DOPPEL_CHECK(ticket_ != nullptr);
  int state = ticket_->state.load(std::memory_order_acquire);
  while (state == 0) {
    ticket_->state.wait(0, std::memory_order_acquire);
    state = ticket_->state.load(std::memory_order_acquire);
  }
  return ticket_->result();
}

bool TxnHandle::TryGet(TxnResult* out) const {
  DOPPEL_CHECK(ticket_ != nullptr);
  const int state = ticket_->state.load(std::memory_order_acquire);
  if (state == 0) {
    return false;
  }
  *out = ticket_->result();
  return true;
}

void TxnHandle::OnComplete(std::function<void(const TxnResult&)> cb) {
  DOPPEL_CHECK(ticket_ != nullptr);
  SubmitTicket& t = *ticket_;
  t.cb_mu.lock();
  if (!t.finished) {
    DOPPEL_CHECK(!t.callback);  // at most one callback per handle
    t.callback = std::move(cb);
    t.cb_mu.unlock();
    return;
  }
  t.cb_mu.unlock();
  cb(t.result());  // already terminal: deliver inline on the caller's thread
}

// ---- Database ----

Database::Database(Options opts) : opts_(opts), store_(opts.store_capacity) {
  if (opts_.num_workers <= 0) {
    opts_.num_workers = NumCpus();
  }
  // A worker id lives in the TID's low kWorkerTidBits bits (Silo-style decentralized
  // TID generation). One id past the limit would alias worker 0's TIDs — silently
  // corrupting commit order, WAL replay, and recovery — so refuse loudly up front.
  constexpr int kMaxWorkers = 1 << Worker::kWorkerTidBits;
  if (opts_.num_workers > kMaxWorkers) {
    std::fprintf(stderr,
                 "doppel: num_workers=%d exceeds the %d-worker limit (worker ids must "
                 "fit in the TID's low %d bits)\n",
                 opts_.num_workers, kMaxWorkers, Worker::kWorkerTidBits);
    std::abort();
  }
  worker_batch_ = std::min(std::max(opts_.worker_batch, 1), kMaxWorkerBatch);
  runner_cfg_.backoff_min_ns = opts_.backoff_min_us * 1000;
  runner_cfg_.backoff_max_ns = opts_.backoff_max_us * 1000;
  if (opts_.wal_dir != nullptr && opts_.wal_dir[0] != '\0') {
    WalOptions wo;
    wo.flush_interval_us = opts_.wal_flush_us;
    wo.fsync = opts_.wal_fsync;
    wo.segment_bytes = opts_.wal_segment_bytes;
    wo.env = opts_.io_env;
    wal_ = std::make_unique<WriteAheadLog>(opts_.wal_dir, wo);
    runner_cfg_.wal = wal_.get();
    runner_cfg_.degraded = &degraded_;
    // Fires on the thread that hit the permanent failure (flusher, a committing worker,
    // or — if the WAL constructor already failed on mkdir — inline right here). The
    // errno/op details live in the WAL's own latch; this flag just routes the hot paths.
    wal_->SetDurabilityLostCallback(
        [this](int, IoOp) { degraded_.store(true, std::memory_order_release); });
  }

  for (int i = 0; i < opts_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(
        i, 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1)));
    inboxes_.push_back(std::make_unique<SubmitInbox>(opts_.submit_inbox_capacity));
  }

  switch (opts_.protocol) {
    case Protocol::kDoppel: {
      auto engine = std::make_unique<DoppelEngine>(store_, opts_, stop_workers_);
      doppel_ = engine.get();
      doppel_->RegisterWorkers(workers_);
      doppel_->SetWal(wal_.get());
      doppel_->SetDegradedFlag(&degraded_);
      engine_ = std::move(engine);
      coordinator_ = std::make_unique<Coordinator>(*doppel_, opts_, stop_coord_,
                                                   stop_workers_, draining_);
      break;
    }
    case Protocol::kOcc:
      engine_ = std::make_unique<OccEngine>(store_);
      break;
    case Protocol::kTwoPL:
      engine_ = std::make_unique<TwoPLEngine>(store_);
      break;
    case Protocol::kAtomic:
      engine_ = std::make_unique<AtomicEngine>(store_);
      break;
  }
  // Epoch reclamation rides the worker loop of every locking protocol. The Atomic
  // engine is excluded: its writers flip presence without any lock, so the sweeper's
  // try-lock proof of quiescence does not hold there.
  if (opts_.reclaim.enabled && opts_.protocol != Protocol::kAtomic) {
    reclaimer_ = std::make_unique<EpochReclaimer>(
        store_, static_cast<std::size_t>(opts_.num_workers), opts_.reclaim);
  }
}

Database::~Database() { Stop(); }

void Database::MarkSplitManually(const Key& key, OpCode op, std::size_t topk_k) {
  DOPPEL_CHECK(doppel_ != nullptr);
  DOPPEL_CHECK(!started_);
  doppel_->MarkSplitManually(key, op, topk_k);
}

void Database::Start(SourceFactory factory) {
  DOPPEL_CHECK(!started_);
  started_ = true;
  if (wal_ != nullptr) {
    if (opts_.recover_on_start) {
      recovery_ = wal_->Recover(&store_, opts_.recovery_threads);
      // Seed TID clocks past everything recovered: a fresh worker would otherwise mint
      // TIDs below already-logged ones, corrupting the replay order of the next log
      // generation (non-commutative redo entries sort by TID).
      for (auto& w : workers_) {
        w->last_tid = std::max(w->last_tid, recovery_.max_tid);
      }
    } else {
      // Ignoring the durable state means abandoning it: this generation's TID clocks
      // restart, so its entries must never share a manifest with the old segments (a
      // later recovery would sort the generations' TIDs into one bogus history).
      wal_->DiscardDurableState();
    }
    wal_->StartLogging();
  }
  sources_.clear();
  for (int i = 0; i < opts_.num_workers; ++i) {
    sources_.push_back(factory ? factory(i) : nullptr);
  }
  accepting_.store(true);
  for (int i = 0; i < opts_.num_workers; ++i) {
    Worker* w = workers_[static_cast<std::size_t>(i)].get();
    TxnSource* src = sources_[static_cast<std::size_t>(i)].get();
    threads_.emplace_back([this, w, src] { WorkerMain(*w, src); });
  }
  if (coordinator_ != nullptr) {
    threads_.emplace_back([this] { coordinator_->Run(); });
  }
}

void Database::Stop() {
  if (!started_ || stopped_) {
    return;
  }
  stopped_ = true;
  // Phase 1: refuse new submissions, then drain the ones already accepted. Workers and
  // the coordinator are still running, so queued, retried, and stashed transactions all
  // reach a terminal state (stashes need the coordinator to reach a joined phase).
  // `draining_` makes the coordinator end any running split phase immediately and start
  // no new one: otherwise a submission stashed on split data keeps this wait pinned for
  // up to a full phase length (or, with recurring splits, indefinitely).
  accepting_.store(false);
  draining_.store(true, std::memory_order_release);
  // Wait while the drain makes progress; give up only if the in-flight count stalls
  // outright (a wedged worker or queue). Bailing out here is what makes the post-join
  // sweep below reachable — it then completes the stuck handles as aborted instead of
  // this loop spinning on them forever.
  std::uint64_t last_inflight = inflight_.load();
  auto stall_start = std::chrono::steady_clock::now();
  while (last_inflight != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
    const std::uint64_t cur = inflight_.load();
    if (cur != last_inflight) {
      last_inflight = cur;
      stall_start = std::chrono::steady_clock::now();
    } else if (std::chrono::steady_clock::now() - stall_start >
               std::chrono::seconds(2)) {
      break;
    }
  }
  // Phase 2: coordinator next. It finishes any split phase (reconciling all slices) and
  // then releases the workers.
  stop_coord_.store(true, std::memory_order_release);
  if (coordinator_ == nullptr) {
    stop_workers_.store(true, std::memory_order_release);
  }
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  // Safety net: no ticketed transaction may be left pending after Stop — a leaked ticket
  // hangs TxnHandle::Wait forever. Workers are joined, so their queues are ours to sweep;
  // anything still holding a live SubmitTicket completes as aborted.
  for (auto& w : workers_) {
    while (!w->stash.empty()) {
      AbandonPendingTxn(std::move(w->stash.front()));
      w->stash.pop_front();
    }
    for (RetryItem& item : w->retry_heap) {
      AbandonPendingTxn(std::move(item.txn));
    }
    w->retry_heap.clear();
  }
  for (auto& inbox : inboxes_) {
    PendingTxn pt;
    while (inbox->TryPop(&pt)) {
      AbandonPendingTxn(std::move(pt));
    }
  }
  if (reclaimer_ != nullptr) {
    // Workers are joined: free the pending limbo generation and run one final full-map
    // sweep so post-Stop observers (tests, reports) see the exact reclaimed state.
    Worker& w0 = *workers_.front();
    reclaimer_->DrainAtShutdown(
        [&w0](std::uint64_t max_seen) { return w0.GenerateTid(max_seen); });
  }
  if (wal_ != nullptr) {
    // Workers are joined: every committed transaction has been appended, and the
    // system is fully quiesced — the strongest consistency point there is. Seal the
    // log generation with a final replication cut at the max committed TID (all
    // protocols; AppendCut flushes first), so a tailing replica converges to exactly
    // the primary's final state instead of stalling just short of it at the last
    // barrier cut. A clean Stop therefore never loses acknowledged work to the
    // group-commit window either.
    std::uint64_t max_tid = 0;
    for (const auto& w : workers_) {
      max_tid = std::max(max_tid, w->last_tid);
    }
    wal_->AppendCut(max_tid);
  }
}

bool Database::RequestCheckpoint() {
  if (wal_ == nullptr || doppel_ == nullptr) {
    return false;
  }
  doppel_->RequestCheckpoint();
  return true;
}

std::size_t Database::TryRunSubmitted(Worker& w) {
  PendingTxn batch[kMaxWorkerBatch];
  const std::size_t n = inboxes_[static_cast<std::size_t>(w.id)]->TryPopBatch(
      batch, static_cast<std::size_t>(worker_batch_));
  for (std::size_t i = 0; i < n; ++i) {
    RunPendingTxn(*engine_, runner_cfg_, w, std::move(batch[i]));
  }
  return n;
}

void Database::WorkerMain(Worker& w, TxnSource* source) {
  if (opts_.pin_threads) {
    PinThreadToCpu(w.id);
  }
  // The hot loop is batched: each pass pays the fixed costs — BetweenTxns (phase
  // acknowledgement), one clock read, the retry/stash/inbox checks — once, then runs up
  // to worker_batch_ transactions back to back. A batch lasts microseconds, so phase
  // changes (ms-scale) are acknowledged promptly; within a pass the priority order
  // (due retries, stashed, submitted, source-generated) is unchanged.
  const int batch = worker_batch_;
  while (!stop_workers_.load(std::memory_order_relaxed)) {
    engine_->BetweenTxns(w);
    if (reclaimer_ != nullptr) {
      // Transaction boundary: this worker holds no record pointers, the moment the
      // epoch protocol counts. Worker 0's tick additionally drives sweep/free steps.
      const std::uint64_t seen = reclaimer_->Tick(
          static_cast<std::size_t>(w.id),
          [&w](std::uint64_t max_seen) { return w.GenerateTid(max_seen); });
      if (seen != w.epoch_seen) {
        // The observed epoch moved: generations cached under the old epoch may cover
        // records the sweeper has since unlinked. Invalidating here — before the free
        // gate (two advances, each requiring every worker to pass this line) can open —
        // is what makes Txn's cross-transaction route cache safe.
        w.epoch_seen = seen;
        w.txn.InvalidateRouteCache();
      }
    }

    const std::uint64_t now = NowNanos();
    w.clock_ns = now;
    bool ran = false;
    for (int i = 0; i < batch && w.HasDueRetry(w.clock_ns); ++i) {
      std::pop_heap(w.retry_heap.begin(), w.retry_heap.end());
      PendingTxn pt = std::move(w.retry_heap.back().txn);
      w.retry_heap.pop_back();
      RunPendingTxn(*engine_, runner_cfg_, w, std::move(pt));
      ran = true;
    }
    if (ran) {
      continue;
    }
    for (int i = 0;
         i < batch && !w.stash.empty() && engine_->CurrentPhase(w) == Phase::kJoined;
         ++i) {
      PendingTxn pt = std::move(w.stash.front());
      w.stash.pop_front();
      RunPendingTxn(*engine_, runner_cfg_, w, std::move(pt));
      ran = true;
    }
    if (ran) {
      continue;
    }
    if (TryRunSubmitted(w) != 0) {
      continue;
    }
    if (source != nullptr) {
      for (int i = 0; i < batch; ++i) {
        TxnRequest req = source->Next(w);
        // Stamp from the worker's clock cache: refreshed at the pass boundary above and
        // by each commit's latency read, so the stamp is the previous transaction's end
        // time — the moment this closed-loop "client" issued the next request — without
        // a second clock read per transaction.
        req.args.submit_ns = w.clock_ns;
        PendingTxn pt;
        pt.req = req;
        RunPendingTxn(*engine_, runner_cfg_, w, std::move(pt));
      }
      continue;
    }
    // Idle (submission-only mode): nap briefly, staying responsive to phase changes and
    // fresh inbox arrivals.
    std::this_thread::sleep_for(std::chrono::microseconds(w.retry_heap.empty() ? 20 : 5));
  }
}

SubmitStatus Database::TrySubmitPending(PendingTxn&& pt, std::uint32_t start_inbox,
                                        bool failover, TxnHandle* handle) {
  DOPPEL_CHECK(started_);
  DOPPEL_CHECK(pt.ticket != nullptr);
  // Charge the drain counter before the accepting_ check (both sides seq_cst): Stop()'s
  // drain loop then observes either this in-flight submission or nothing at all — never
  // a push it has already stopped waiting for.
  pt.ticket->inflight = &inflight_;
  inflight_.fetch_add(1);
  if (!accepting_.load()) {
    inflight_.fetch_sub(1);
    return SubmitStatus::kStopped;
  }
  if (!pt.req.read_only && degraded_.load(std::memory_order_acquire)) {
    // Read-only degraded mode: bounce writes at the door instead of queueing work that
    // the runner's commit-time gate would only terminate with kDurabilityLost anyway.
    // Submissions declared read_only pass; a lying body is still caught at commit.
    inflight_.fetch_sub(1);
    return SubmitStatus::kReadOnly;
  }
  // Stamp at acceptance, not first execution: reported latency must include queueing.
  pt.req.args.submit_ns = NowNanos();
  std::shared_ptr<SubmitTicket> ticket = pt.ticket;
  const std::size_t n = inboxes_.size();
  const std::size_t attempts = failover ? n : 1;
  for (std::size_t i = 0; i < attempts; ++i) {
    if (inboxes_[(start_inbox + i) % n]->TryPush(pt)) {
      *handle = TxnHandle(std::move(ticket));
      return SubmitStatus::kOk;
    }
  }
  inflight_.fetch_sub(1);
  return SubmitStatus::kQueueFull;
}

TxnHandle Database::SubmitPendingBlocking(PendingTxn&& pt, std::uint32_t start_inbox,
                                          bool failover) {
  TxnHandle handle;
  while (true) {
    const SubmitStatus s = TrySubmitPending(std::move(pt), start_inbox, failover, &handle);
    if (s == SubmitStatus::kOk) {
      return handle;
    }
    if (s == SubmitStatus::kStopped) {
      // Stop() began while we were blocked on backpressure (or the caller raced Stop):
      // reject gracefully with a handle that reports the abort, never a crash.
      pt.ticket->state.store(2, std::memory_order_release);
      pt.ticket->state.notify_all();
      return TxnHandle(std::move(pt.ticket));
    }
    if (s == SubmitStatus::kReadOnly) {
      // Degraded mode is one-way: blocking would never unblock. Terminal ticket with
      // the durability-lost abort (state 4) so Wait() reports why.
      pt.ticket->state.store(4, std::memory_order_release);
      pt.ticket->state.notify_all();
      return TxnHandle(std::move(pt.ticket));
    }
    // Inbox(es) full: yield briefly, then retry from the same starting inbox.
    std::this_thread::sleep_for(std::chrono::microseconds(5));
  }
}

TxnHandle Database::Submit(TxnRequest req) {
  DOPPEL_CHECK(req.proc != nullptr);  // a null proc would kill a worker thread later
  PendingTxn pt;
  pt.req = req;
  pt.ticket = std::make_shared<SubmitTicket>();
  return SubmitPendingBlocking(std::move(pt), next_inbox_.fetch_add(1),
                               /*failover=*/true);
}

TxnHandle Database::Submit(std::function<void(Txn&)> fn) {
  PendingTxn pt;
  pt.ticket = std::make_shared<SubmitTicket>();
  pt.ticket->fn = std::move(fn);
  return SubmitPendingBlocking(std::move(pt), next_inbox_.fetch_add(1),
                               /*failover=*/true);
}

SubmitStatus Database::TrySubmit(const TxnRequest& req, TxnHandle* handle) {
  DOPPEL_CHECK(req.proc != nullptr);
  PendingTxn pt;
  pt.req = req;
  pt.ticket = std::make_shared<SubmitTicket>();
  return TrySubmitPending(std::move(pt), next_inbox_.fetch_add(1), /*failover=*/true,
                          handle);
}

std::vector<TxnHandle> Database::SubmitBatch(std::span<const TxnRequest> reqs) {
  std::vector<TxnHandle> handles;
  handles.reserve(reqs.size());
  // One cursor reservation for the whole batch: request i goes to inbox (start + i) % n,
  // so consecutive requests land on consecutive workers and order is preserved within
  // each inbox.
  const std::uint32_t start =
      next_inbox_.fetch_add(static_cast<std::uint32_t>(reqs.size()));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    DOPPEL_CHECK(reqs[i].proc != nullptr);
    PendingTxn pt;
    pt.req = reqs[i];
    pt.ticket = std::make_shared<SubmitTicket>();
    // No failover: a full designated inbox blocks this entry rather than reordering it
    // behind a later same-inbox entry.
    handles.push_back(SubmitPendingBlocking(
        std::move(pt), start + static_cast<std::uint32_t>(i), /*failover=*/false));
  }
  return handles;
}

TxnResult Database::Execute(std::function<void(Txn&)> fn) {
  return Submit(std::move(fn)).Wait();
}

std::uint64_t Database::SampleTotalCommits() const {
  std::uint64_t sum = 0;
  for (const auto& w : workers_) {
    sum += w->shared_commits.Load();
  }
  return sum;
}

DurabilityHealth Database::durability_health() const {
  DurabilityHealth h;
  if (wal_ == nullptr) {
    return h;
  }
  h.degraded = wal_->failed();
  if (h.degraded) {
    h.error = wal_->failed_errno();
    h.op = IoOpName(wal_->failed_op());
  }
  return h;
}

Database::Stats Database::CollectStats() const {
  Stats s;
  for (const auto& w : workers_) {
    s.committed += w->committed;
    s.committed_split_phase += w->committed_split_phase;
    s.conflicts += w->conflicts;
    s.stash_events += w->stash_events;
    s.user_aborts += w->user_aborts;
    s.type_mismatch_aborts += w->type_mismatch_aborts;
    s.durability_aborts += w->durability_aborts;
    for (int t = 0; t < kNumTags; ++t) {
      s.committed_by_tag[t] += w->committed_by_tag[t];
      s.latency_by_tag[t].Merge(w->latency_by_tag[t]);
    }
  }
  return s;
}

}  // namespace doppel
