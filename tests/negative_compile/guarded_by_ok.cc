// Positive control for guarded_by_violation.cc: identical shape, but every
// access to the GUARDED_BY member holds the mutex. This translation unit MUST
// compile cleanly under clang -Werror=thread-safety. It guards the negative
// check against false confidence: if this file failed too (broken include path,
// bad flag), the violation fixture's failure would prove nothing.
#include "src/common/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    doppel::MutexLock lock(mu_);
    ++value_;
  }

  int GuardedRead() const {
    doppel::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable doppel::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.GuardedRead();
}
