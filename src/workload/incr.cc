#include "src/workload/incr.h"

namespace doppel {
namespace {

void IncrProc(Txn& txn, const TxnArgs& args) { txn.Add(args.k1, 1); }

}  // namespace

void PopulateIncr(Store& store, std::uint64_t num_keys) {
  if (!store.HasFlatTable(0)) {
    // The INCR key space is exactly a dense range — the textbook kFlat table. Pre-size
    // both layers so population (and the run) never grows anything.
    TableOptions opts;
    opts.layout = TableLayout::kFlat;
    opts.flat_base = 0;
    opts.flat_span = num_keys;
    opts.flat_initial_slots = static_cast<std::size_t>(num_keys);
    opts.capacity_hint = static_cast<std::size_t>(num_keys);
    store.ConfigureTable(0, opts);
  }
  for (std::uint64_t i = 0; i < num_keys; ++i) {
    store.LoadInt(IncrKey(i), 0);
  }
}

TxnRequest Incr1Source::Next(Worker& w) {
  TxnRequest r;
  r.proc = &IncrProc;
  r.args.tag = kTagWrite;
  // Benchmark knob: which key is hot may lag a rotation by a request; no ordering.
  const std::uint64_t hot = hot_index_->load(std::memory_order_relaxed);
  if (w.rng.Chance(hot_pct_)) {
    r.args.k1 = IncrKey(hot);
  } else {
    // Uniform over the non-hot keys.
    std::uint64_t i = w.rng.NextBounded(num_keys_ - 1);
    if (i >= hot) {
      i++;
    }
    r.args.k1 = IncrKey(i);
  }
  return r;
}

TxnRequest IncrZSource::Next(Worker& w) {
  TxnRequest r;
  r.proc = &IncrProc;
  r.args.tag = kTagWrite;
  r.args.k1 = IncrKey(zipf_->Next(w.rng));
  return r;
}

SourceFactory MakeIncr1Factory(std::uint64_t num_keys, std::uint32_t hot_pct,
                               const std::atomic<std::uint64_t>* hot_index) {
  return [=](int) { return std::make_unique<Incr1Source>(num_keys, hot_pct, hot_index); };
}

SourceFactory MakeIncrZFactory(const ZipfianGenerator* zipf) {
  return [=](int) { return std::make_unique<IncrZSource>(zipf); };
}

}  // namespace doppel
