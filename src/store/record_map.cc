#include "src/store/record_map.h"

#include <bit>

#include "src/common/dassert.h"

namespace doppel {

RecordMap::RecordMap(std::size_t capacity_hint)
    : buckets_(std::bit_ceil(capacity_hint < 16 ? std::size_t{16} : capacity_hint)),
      mask_(buckets_.size() - 1),
      insert_locks_(std::make_unique<Spinlock[]>(kInsertStripes)) {}

RecordMap::~RecordMap() {
  for (Bucket& b : buckets_) {
    // Destructor: no concurrent access remains, any order suffices.
    Record* r = b.head.load(std::memory_order_relaxed);
    while (r != nullptr) {
      Record* next = r->hash_next.load(std::memory_order_relaxed);
      delete r;
      r = next;
    }
  }
}

Record* RecordMap::Find(const Key& key) const {
  const Bucket& b = buckets_[BucketIndex(key)];
  for (Record* r = b.head.load(std::memory_order_acquire); r != nullptr;
       r = r->hash_next.load(std::memory_order_acquire)) {
    if (r->key() == key) {
      return r;
    }
  }
  return nullptr;
}

Record* RecordMap::GetOrCreate(const Key& key, RecordType type, std::size_t topk_k,
                               bool* created) {
  if (Record* r = Find(key)) {
    if (created != nullptr) {
      *created = false;
    }
    return r;
  }
  const std::size_t index = BucketIndex(key);
  Spinlock& stripe = insert_locks_[index & (kInsertStripes - 1)];
  stripe.lock();
  // Re-scan under the stripe lock: a racing inserter may have won.
  Bucket& b = buckets_[index];
  for (Record* r = b.head.load(std::memory_order_relaxed); r != nullptr;
       r = r->hash_next.load(std::memory_order_relaxed)) {
    if (r->key() == key) {
      stripe.unlock();
      if (created != nullptr) {
        *created = false;
      }
      return r;
    }
  }
  auto* rec = new Record(key, type, topk_k);
  // Chain writes stay relaxed: only the head release-store below publishes the new
  // record (readers reach hash_next through it with acquire loads). The stripe lock
  // already orders us against other inserters.
  rec->hash_next.store(b.head.load(std::memory_order_relaxed), std::memory_order_relaxed);
  b.head.store(rec, std::memory_order_release);
  stripe.unlock();
  // Size gauge; racy reads by contract (size() documents call-time semantics).
  size_.fetch_add(1, std::memory_order_relaxed);
  if (created != nullptr) {
    *created = true;
  }
  return rec;
}

}  // namespace doppel
