// Table 3: "Average and 99% read and write latencies for Doppel, OCC, and 2PL on two
// LIKE workloads: a uniform workload and a skewed workload with alpha = 1.4."
// 50% reads / 50% writes. Doppel's read latency on the skewed workload is high (stashed
// reads wait for the next joined phase); that is the price of its higher throughput.
#include <memory>

#include "bench/bench_common.h"
#include "src/common/zipf.h"
#include "src/workload/like.h"

namespace doppel {
namespace {

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const std::uint64_t n = flags.Keys(100000);
  const Protocol protocols[] = {Protocol::kDoppel, Protocol::kOcc, Protocol::kTwoPL};

  std::printf("Table 3: LIKE latency, uniform vs skewed (alpha=1.4), 50%% writes\n");
  std::printf("threads=%d users=pages=%llu (latencies in microseconds)\n\n",
              flags.ResolvedThreads(), static_cast<unsigned long long>(n));

  const ZipfianGenerator zipf(n, 1.4);
  Table table({"workload", "scheme", "meanR(us)", "meanW(us)", "p99R(us)", "p99W(us)",
               "txn/s"});
  for (const bool skewed : {false, true}) {
    LikeConfig cfg;
    cfg.num_users = n;
    cfg.num_pages = n;
    cfg.write_pct = 50;
    cfg.alpha = skewed ? 1.4 : 0.0;
    for (Protocol p : protocols) {
      auto db = std::make_unique<Database>(bench::BaseOptions(flags, p, n * 4));
      PopulateLike(db->store(), cfg);
      RunMetrics m = RunWorkload(*db, MakeLikeFactory(cfg, &zipf),
                                 flags.MeasureMs(/*default_seconds=*/0.6));
      const auto& read_lat = m.stats.latency_by_tag[kTagRead];
      const auto& write_lat = m.stats.latency_by_tag[kTagWrite];
      table.AddRow({skewed ? "skewed" : "uniform", ProtocolName(p),
                    FormatMicros(read_lat.Mean()), FormatMicros(write_lat.Mean()),
                    FormatMicros(static_cast<double>(read_lat.Percentile(99))),
                    FormatMicros(static_cast<double>(write_lat.Percentile(99))),
                    FormatCount(m.throughput)});
    }
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
