// Tests for the insert-only concurrent record map and the Store facade.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/store/record_map.h"
#include "src/store/store.h"

namespace doppel {
namespace {

TEST(RecordMap, FindMissingReturnsNull) {
  RecordMap map(64);
  EXPECT_EQ(map.Find(Key::FromU64(1)), nullptr);
  EXPECT_EQ(map.size(), 0u);
}

TEST(RecordMap, GetOrCreateInsertsOnce) {
  RecordMap map(64);
  bool created = false;
  Record* a = map.GetOrCreate(Key::FromU64(1), RecordType::kInt64, 0, &created);
  EXPECT_TRUE(created);
  Record* b = map.GetOrCreate(Key::FromU64(1), RecordType::kInt64, 0, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(a, b);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Find(Key::FromU64(1)), a);
}

TEST(RecordMap, DistinctKeysDistinctRecords) {
  RecordMap map(64);
  Record* a = map.GetOrCreate(Key{1, 2}, RecordType::kInt64, 0);
  Record* b = map.GetOrCreate(Key{2, 1}, RecordType::kInt64, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(map.size(), 2u);
}

TEST(RecordMap, KeyAndTypePreserved) {
  RecordMap map(64);
  Record* r = map.GetOrCreate(Key{7, 9}, RecordType::kTopK, 5);
  EXPECT_EQ(r->key(), (Key{7, 9}));
  EXPECT_EQ(r->type(), RecordType::kTopK);
  EXPECT_EQ(r->topk_k(), 5u);
}

TEST(RecordMap, TinyBucketCountStillCorrect) {
  RecordMap map(1);  // forces collision chains
  for (std::uint64_t i = 0; i < 200; ++i) {
    map.GetOrCreate(Key::FromU64(i), RecordType::kInt64, 0);
  }
  EXPECT_EQ(map.size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_NE(map.Find(Key::FromU64(i)), nullptr) << i;
  }
}

TEST(RecordMap, ForEachVisitsAll) {
  RecordMap map(64);
  for (std::uint64_t i = 0; i < 50; ++i) {
    map.GetOrCreate(Key::FromU64(i), RecordType::kInt64, 0);
  }
  std::size_t visited = 0;
  std::uint64_t key_sum = 0;
  map.ForEach([&](Record& r) {
    visited++;
    key_sum += r.key().lo;
  });
  EXPECT_EQ(visited, 50u);
  EXPECT_EQ(key_sum, 49u * 50 / 2);
}

TEST(RecordMap, ConcurrentInsertSameKeyYieldsOneRecord) {
  RecordMap map(1024);
  constexpr int kThreads = 4;
  std::vector<Record*> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        results[t] = map.GetOrCreate(Key::FromU64(42), RecordType::kInt64, 0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t], results[0]);
  }
  EXPECT_EQ(map.size(), 1u);
}

TEST(RecordMap, ConcurrentDisjointInsertsAllPresent) {
  RecordMap map(1 << 14);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        map.GetOrCreate(Key{static_cast<std::uint64_t>(t), i}, RecordType::kInt64, 0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(map.size(), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; i += 97) {
      ASSERT_NE(map.Find(Key{static_cast<std::uint64_t>(t), i}), nullptr);
    }
  }
}

TEST(RecordMap, ConcurrentReadersDuringInserts) {
  RecordMap map(1 << 12);
  std::atomic<bool> stop{false};
  std::atomic<bool> lost{false};
  std::thread inserter([&] {
    for (std::uint64_t i = 0; i < 20000; ++i) {
      map.GetOrCreate(Key::FromU64(i), RecordType::kInt64, 0);
    }
    stop = true;
  });
  std::thread reader([&] {
    while (!stop.load()) {
      // Find the newest key currently visible; publication order (single inserter,
      // acquire loads) guarantees every older key is visible too.
      std::uint64_t newest = 0;
      bool found_any = false;
      for (std::uint64_t i = 19999;; i -= 1111) {
        if (map.Find(Key::FromU64(i)) != nullptr) {
          newest = i;
          found_any = true;
          break;
        }
        if (i < 1111) {
          break;
        }
      }
      if (found_any) {
        for (std::uint64_t i = 0; i < newest; i += 113) {
          if (map.Find(Key::FromU64(i)) == nullptr) {
            lost = true;
          }
        }
      }
    }
  });
  inserter.join();
  reader.join();
  EXPECT_FALSE(lost.load());
}

TEST(Store, LoadIntAndSnapshot) {
  Store store(64);
  store.LoadInt(Key::FromU64(1), 77);
  const auto snap = store.ReadSnapshot(Key::FromU64(1));
  EXPECT_TRUE(snap.present);
  EXPECT_EQ(std::get<std::int64_t>(snap.value), 77);
  EXPECT_GT(snap.tid, 0u);
}

TEST(Store, LoadBytesOrderedTopK) {
  Store store(64);
  store.LoadBytes(Key::FromU64(2), "blob");
  store.LoadOrdered(Key::FromU64(3), OrderedTuple{OrderKey{4, 0}, 1, "w"});
  store.LoadTopK(Key::FromU64(4), 3);
  store.LoadTopKItem(Key::FromU64(4), 3, OrderedTuple{OrderKey{10, 0}, 0, "a"});
  store.LoadTopKItem(Key::FromU64(4), 3, OrderedTuple{OrderKey{20, 0}, 0, "b"});

  EXPECT_EQ(std::get<std::string>(store.ReadSnapshot(Key::FromU64(2)).value), "blob");
  EXPECT_EQ(std::get<OrderedTuple>(store.ReadSnapshot(Key::FromU64(3)).value).payload,
            "w");
  const auto topk = std::get<TopKSet>(store.ReadSnapshot(Key::FromU64(4)).value);
  ASSERT_EQ(topk.size(), 2u);
  EXPECT_EQ(topk.items()[0].payload, "b");
}

TEST(Store, SnapshotOfMissingKeyIsAbsent) {
  Store store(64);
  EXPECT_FALSE(store.ReadSnapshot(Key::FromU64(99)).present);
}

TEST(Store, LoadOverwrites) {
  Store store(64);
  store.LoadInt(Key::FromU64(1), 1);
  store.LoadInt(Key::FromU64(1), 2);
  EXPECT_EQ(std::get<std::int64_t>(store.ReadSnapshot(Key::FromU64(1)).value), 2);
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace doppel
