// Per-table ordered key index with version-stamped partitions (Silo-style phantom
// protection for range scans).
//
// The store's RecordMap is an unordered hash table; this index layers an ordered view on
// top of it. Records enter the index when they first become logically present (the
// absent -> present transition happens under the record's OCC lock bit, so the engine
// applying the write inserts race-free), and never leave: presence is monotonic in this
// system, matching the insert-only RecordMap.
//
// Each table's key space ([lo] within the Key.hi namespace) is striped into
// kPartitionsPerTable contiguous ranges. A partition is the phantom-protection unit: it
// carries a version counter bumped by every insert into its range. A transactional scan
// records the (partition, version) pairs it traversed; OCC commit validation rechecks
// them alongside the read set, so an insert into a scanned range between scan and commit
// aborts the scanner (no phantoms). 2PL instead takes the partition's reader/writer lock
// for the transaction's duration.
//
// Partition boundaries sit at multiples of 2^kPartitionShift (the last partition is
// open-ended). This is chosen to match the repo's key layouts: RUBiS shards inserted row
// ids by worker at bit 40 (schema.h kShardStride), so concurrent inserters land on
// distinct partitions, and composite scan keys put the scan dimension (category, bucket)
// in bits >= 40, so one scan dimension maps to one partition stripe.
#ifndef DOPPEL_SRC_STORE_ORDERED_INDEX_H_
#define DOPPEL_SRC_STORE_ORDERED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "src/common/spinlock.h"
#include "src/store/key.h"

namespace doppel {

class Record;

// One version-stamped stripe of a table's ordered key space.
struct IndexPartition {
  // Guards `entries`; held only for O(log n) map operations and bounded range copies.
  // Never acquire a record lock while holding `mu` (writers insert while holding their
  // record's OCC lock bit, so the reverse order would deadlock).
  mutable Spinlock mu;
  // Bumped under `mu` by every structural insert; read without `mu` by OCC validation.
  std::atomic<std::uint64_t> version{0};
  // Ordered by key lo. Values are stable Record pointers (records never move or die).
  std::map<std::uint64_t, Record*> entries;
  // Transaction-duration phantom lock for the 2PL engine (unused by OCC/Doppel).
  RWSpinlock rw;
};

class OrderedIndex {
 public:
  static constexpr std::size_t kPartitionsPerTable = 64;
  static constexpr unsigned kPartitionShift = 40;
  // Open-addressed table directory capacity; far above any workload's table count.
  static constexpr std::size_t kMaxTables = 256;

  struct TableIndex {
    std::uint64_t table = 0;
    std::vector<IndexPartition> partitions{kPartitionsPerTable};
  };

  OrderedIndex();
  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;
  ~OrderedIndex();

  static std::size_t PartitionOf(std::uint64_t lo) {
    const std::uint64_t p = lo >> kPartitionShift;
    return p < kPartitionsPerTable ? static_cast<std::size_t>(p)
                                   : kPartitionsPerTable - 1;
  }

  // Inserts `key` -> `r`. Idempotent (re-inserting an indexed key is a no-op and does
  // not bump the partition version). The caller must hold whatever lock made the
  // record's absent -> present transition exclusive (the OCC lock bit, or the record's
  // 2PL write lock); this keeps insert-before-record-unlock ordering, which is what
  // makes a committed insert visible to any scan that validates after the writer's
  // commit point.
  void Insert(const Key& key, Record* r);

  // The table's index, created on demand. Scans call this (not FindTable) so that even
  // a never-written table gets version-stamped partitions — otherwise an insert racing
  // the first scan of an empty table could slip in unvalidated.
  TableIndex& GetOrCreateTable(std::uint64_t table);

  // Lock-free lookup; nullptr if no record of this table was ever indexed or scanned.
  TableIndex* FindTable(std::uint64_t table) const;

  IndexPartition& PartitionFor(const Key& key) {
    return GetOrCreateTable(key.hi).partitions[PartitionOf(key.lo)];
  }

  // Copies the entries of `part` lying in [lo, hi] (inclusive) in ascending key order,
  // up to `max_items` (0 = unbounded), and returns the partition version that the copy
  // is consistent with (read under the same critical section).
  static std::uint64_t SnapshotRange(IndexPartition& part, std::uint64_t lo,
                                     std::uint64_t hi, std::size_t max_items,
                                     std::vector<std::pair<std::uint64_t, Record*>>* out);

  std::size_t size(std::uint64_t table) const;  // entries across partitions (tests)

 private:
  struct Slot {
    // 0 = empty; otherwise table id + 1 (so table id 0 is representable).
    std::atomic<std::uint64_t> tag{0};
    std::atomic<TableIndex*> index{nullptr};
  };

  std::vector<Slot> slots_;
  Spinlock create_mu_;  // serializes table creation (rare: once per table)
};

}  // namespace doppel

#endif  // DOPPEL_SRC_STORE_ORDERED_INDEX_H_
