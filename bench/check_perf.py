#!/usr/bin/env python3
"""Compare a fresh perf_smoke JSON against one or more committed baselines.

Usage: check_perf.py BASELINE.json [BASELINE2.json ...] CURRENT.json \
           [--max-regression=0.40]

The last positional argument is the current run; every earlier one is a baseline
(e.g. both BENCH_PR5.json and BENCH_PR8.json), each compared independently.

Exits non-zero only on a catastrophic regression: any (engine, config) point whose
commits_per_sec dropped by more than the threshold relative to EVERY baseline that has
the point. Requiring all baselines to agree keeps one outlier machine-class baseline
from tripping CI; CI machines are noisy, so this is a tripwire for order-of-magnitude
breakage, not a gate on small deltas — the tracked trajectory in BENCH_*.json is what
PRs reason about.
"""
import json
import sys


def load_points(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["engine"], r["config"], r["hot_pct"]): r for r in doc["results"]}


def main(argv):
    threshold = 0.40
    paths = []
    for a in argv[1:]:
        if a.startswith("--max-regression="):
            threshold = float(a.split("=", 1)[1])
        else:
            paths.append(a)
    if len(paths) < 2:
        print(__doc__)
        return 2
    baselines = {p: load_points(p) for p in paths[:-1]}
    current = load_points(paths[-1])

    # key -> set of baseline paths it regressed against; a failure needs all of them.
    regressed = {}
    covered = {}
    for bpath, baseline in baselines.items():
        print(f"--- vs {bpath} ---")
        for key, base in baseline.items():
            cur = current.get(key)
            if cur is None:
                print(f"note: point {key} missing from current run (skipped)")
                continue
            b, c = base["commits_per_sec"], cur["commits_per_sec"]
            if b <= 0:
                continue
            covered.setdefault(key, set()).add(bpath)
            delta = (c - b) / b
            marker = "REGRESSION" if delta < -threshold else "ok"
            print(f"{key}: baseline={b:.0f} current={c:.0f} delta={delta:+.1%} [{marker}]")
            if delta < -threshold:
                regressed.setdefault(key, set()).add(bpath)

    failures = [k for k, v in regressed.items() if v == covered.get(k)]
    if failures:
        print(f"\ncatastrophic regression (> {threshold:.0%}) vs every baseline on: "
              f"{failures}")
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
