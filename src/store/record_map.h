// Concurrent hash map: Key -> Record.
//
// The paper's store is "a set of key/value maps ... implemented as hash tables" with
// per-key locks. Lookups here are lock-free (chained buckets with atomic next pointers);
// inserts serialize on a striped lock. Records are never *relocated*, but since PR 8 they
// can be *removed*: SweepRange physically unlinks records the epoch sweeper
// (src/store/epoch.h) has proven reclaimable, leaving the unlinked record's own chain
// pointer intact so concurrent lock-free readers mid-traversal still reach the rest of
// the chain. Unlinked records stay allocated until their epoch-limbo grace period ends.
//
// The bucket array is sized at construction and can be rebuilt while quiesced
// (RehashQuiescent): workloads that know a table's cardinality pass a per-table
// capacity_hint through Store::ConfigureTable before population instead of relying on
// the single construction-time global hint. load_factor() stays exported as a run gauge
// (warned on at >4) for churn that outgrows the hints. Dense-keyed tables can skip this
// map on the hot path entirely via the kFlat layout (src/store/flat_table.h); the map
// remains the authoritative record owner either way.
#ifndef DOPPEL_SRC_STORE_RECORD_MAP_H_
#define DOPPEL_SRC_STORE_RECORD_MAP_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/function_ref.h"
#include "src/common/spinlock.h"
#include "src/store/key.h"
#include "src/store/record.h"

namespace doppel {

class RecordMap {
 public:
  // `capacity_hint` ~ expected number of records; bucket count is the next power of two.
  explicit RecordMap(std::size_t capacity_hint);
  ~RecordMap();
  RecordMap(const RecordMap&) = delete;
  RecordMap& operator=(const RecordMap&) = delete;

  // Lock-free lookup; nullptr if the key was never inserted.
  Record* Find(const Key& key) const;

  // Find or insert. When inserting, the record is created with `type` (and `topk_k` for
  // top-K records) and is logically absent until first written. `created` (optional)
  // reports whether an insert happened. If the key exists with a different type, the
  // existing record is returned unchanged (callers decide: engines abort the
  // transaction, trusted loaders CHECK).
  Record* GetOrCreate(const Key& key, RecordType type, std::size_t topk_k = TopKSet::kDefaultK,
                      bool* created = nullptr);

  // Racy gauge (relaxed): exact only when no insert/sweep is in flight.
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  // Monotonic insert count (never decremented by sweeps). Every created record starts
  // absent — i.e. is a reclamation candidate until first written — so this feeds the
  // epoch sweeper's has-anything-changed hint.
  std::uint64_t created() const { return created_.load(std::memory_order_relaxed); }
  std::size_t bucket_count() const { return buckets_.size(); }
  // Records per bucket; >4 means the construction-time capacity_hint was badly low for
  // this workload and every lookup pays a long chain walk.
  double load_factor() const {
    return static_cast<double>(size()) / static_cast<double>(bucket_count());
  }

  // Visits every record present at call time (concurrent inserts may or may not be seen).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Bucket& b : buckets_) {
      for (Record* r = b.head.load(std::memory_order_acquire); r != nullptr;
           r = r->hash_next.load(std::memory_order_acquire)) {
        fn(*r);
      }
    }
  }

  // ---- Physical removal (epoch sweeper / recovery) ----

  // Walks buckets [begin, end) (clamped to bucket_count()) under their insert stripes,
  // calling `should_reclaim` on every record; records it approves are unlinked from
  // their chain and appended to `retired`. The predicate runs with the bucket's stripe
  // lock held (it may take per-record try-locks; nothing in the system acquires a
  // stripe lock while holding a record lock, so the order is acyclic). The unlinked
  // record is NOT freed and its hash_next is left intact: concurrent lock-free readers
  // that already hold a pointer to it can still finish traversing; the caller frees it
  // only once no reader can hold such a pointer (epoch grace, or a quiesced store).
  // Returns the number of records unlinked.
  std::size_t SweepRange(std::size_t begin, std::size_t end,
                         FunctionRef<bool(Record&)> should_reclaim,
                         std::vector<Record*>* retired);

  // Replaces the record for `key` (which must exist, be logically absent, and be
  // unreachable by concurrent same-key writers — recovery replay and replica apply are
  // the only callers) with a fresh absent record of `type`. The old record is unlinked
  // and appended to `retired` under the same free-deferral contract as SweepRange.
  // Returns the fresh record. Used when a log replays a delete followed by a reinsert
  // under a different type: live execution created a new record after the reclaim; the
  // replayer mirrors that by replacing in place.
  Record* ReplaceWithType(const Key& key, RecordType type, std::size_t topk_k,
                          std::vector<Record*>* retired);

  // Rebuilds the bucket array for ~`capacity_hint` records, relinking every existing
  // record into its new chain. Caller guarantees quiescence (no concurrent access of
  // any kind) — Store::ConfigureTable's pre-population registration window. Never
  // shrinks below the current bucket count.
  void RehashQuiescent(std::size_t capacity_hint);

 private:
  struct Bucket {
    std::atomic<Record*> head{nullptr};
  };

  std::size_t BucketIndex(const Key& key) const { return key.Hash() & mask_; }

  std::vector<Bucket> buckets_;
  std::uint64_t mask_;
  static constexpr std::size_t kInsertStripes = 1024;
  std::unique_ptr<Spinlock[]> insert_locks_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> created_{0};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_STORE_RECORD_MAP_H_
