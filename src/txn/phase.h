// Execution phases (§5). Reconciliation is not a phase transactions run in: it is the
// work each worker performs while acknowledging the SPLIT -> JOINED transition.
#ifndef DOPPEL_SRC_TXN_PHASE_H_
#define DOPPEL_SRC_TXN_PHASE_H_

#include <cstdint>

namespace doppel {

enum class Phase : std::uint8_t {
  kJoined = 0,
  kSplit = 1,
};

inline const char* PhaseName(Phase p) { return p == Phase::kJoined ? "joined" : "split"; }

}  // namespace doppel

#endif  // DOPPEL_SRC_TXN_PHASE_H_
