#include "src/txn/twopl_engine.h"

#include <algorithm>

#include "src/txn/apply.h"

namespace doppel {

TwoPLEngine::TwoPLEngine(Store& store) : TwoPLEngine(store, Limits{}) {}

Record* TwoPLEngine::Route(Worker& w, const Key& key, RecordType type,
                           std::size_t topk_k) {
  return RouteInStore(w, store_, key, type, topk_k);
}

Record* TwoPLEngine::RouteDelete(Worker& w, const Key& key) {
  return RouteAnyType(w, store_, key, RecordType::kInt64, 0);
}

void TwoPLEngine::EnsureShared(Txn& txn, Record* r) {
  for (const LockEntry& e : txn.locks()) {
    if (e.record == r) {
      return;  // shared or exclusive: either allows reading
    }
  }
  if (!r->rw.try_lock_shared_for(limits_.shared_spin)) {
    throw ConflictSignal{r, OpCode::kGet};
  }
  txn.locks().push_back(LockEntry{r, false});
  // The sweeper marks a record dead only while holding rw exclusively, so under our
  // shared lock deadness is stable: dead here means it was unlinked before we locked,
  // and the retry re-routes to a fresh record. ReleaseAll drops the lock on unwind.
  if (r->IsDead()) {
    throw ConflictSignal{r, OpCode::kGet};
  }
}

void TwoPLEngine::EnsureExclusive(Txn& txn, Record* r, OpCode op) {
  for (LockEntry& e : txn.locks()) {
    if (e.record == r) {
      if (e.exclusive) {
        return;
      }
      if (!r->rw.try_upgrade_for(limits_.upgrade_spin)) {
        throw ConflictSignal{r, op};  // upgrade deadlock (two upgraders) resolves here
      }
      e.exclusive = true;
      return;
    }
  }
  if (!r->rw.try_lock_for(limits_.exclusive_spin)) {
    throw ConflictSignal{r, op};
  }
  txn.locks().push_back(LockEntry{r, true});
  // Same argument as EnsureShared: a record already in txn.locks() was vetted when
  // first acquired and cannot die while we hold its rw lock.
  if (r->IsDead()) {
    throw ConflictSignal{r, op};
  }
}

namespace {

// A partition-lock timeout is this protocol's scan conflict: record it against the
// stripe (raw telemetry) and in the transaction (sampled attribution) before unwinding.
[[noreturn]] void ThrowIndexConflict(Txn& txn, std::uint64_t table,
                                     std::uint32_t part_index, IndexPartition* p,
                                     OpCode op) {
  p->scan_conflicts.fetch_add(1, std::memory_order_relaxed);
  if (txn.scan_set_conflicts.size() < 8) {
    txn.scan_set_conflicts.push_back(ScanSetConflict{table, part_index});
  }
  throw ConflictSignal{nullptr, op};
}

}  // namespace

void TwoPLEngine::EnsureIndexShared(Txn& txn, std::uint64_t table,
                                    std::uint32_t part_index, IndexPartition* p) {
  for (const IndexLockEntry& e : txn.index_locks()) {
    if (e.partition == p) {
      return;
    }
  }
  if (!p->rw.try_lock_shared_for(limits_.shared_spin)) {
    ThrowIndexConflict(txn, table, part_index, p, OpCode::kGet);
  }
  txn.index_locks().push_back(IndexLockEntry{p, false});
}

void TwoPLEngine::EnsureIndexExclusive(Txn& txn, std::uint64_t table,
                                       std::uint32_t part_index, IndexPartition* p,
                                       OpCode op) {
  for (IndexLockEntry& e : txn.index_locks()) {
    if (e.partition == p) {
      if (e.exclusive) {
        return;
      }
      if (!p->rw.try_upgrade_for(limits_.upgrade_spin)) {
        ThrowIndexConflict(txn, table, part_index, p, op);
      }
      e.exclusive = true;
      return;
    }
  }
  if (!p->rw.try_lock_for(limits_.exclusive_spin)) {
    ThrowIndexConflict(txn, table, part_index, p, op);
  }
  txn.index_locks().push_back(IndexLockEntry{p, true});
}

void TwoPLEngine::Read(Worker& w, Txn& txn, Record* r, ReadResult* out) {
  (void)w;
  EnsureShared(txn, r);
  // Holding at least a shared lock: no 2PL writer can be applying, so the snapshot spin
  // loops never iterate.
  if (r->type() == RecordType::kInt64) {
    const Record::IntSnapshot s = r->ReadInt();
    out->present = s.present;
    out->i = s.value;
    return;
  }
  Record::ComplexSnapshot s = r->ReadComplex();
  out->present = s.present;
  out->complex = std::move(s.value);
}

void TwoPLEngine::Write(Worker& w, Txn& txn, PendingWrite&& pw) {
  (void)w;
  EnsureExclusive(txn, pw.record, pw.op);
  // A write to a logically-absent record is an insert-to-be: commit will add it to the
  // ordered index, so the growing phase must also take the index partition's exclusive
  // lock (2PL phantom protection against concurrent scanners). A delete is the mirror
  // image — commit may remove the key from the index — and needs the same stripe
  // exclusivity. Presence is stable here because it only changes under the record's
  // exclusive lock, which we now hold.
  if (!pw.record->PresentLocked() || pw.op == OpCode::kDelete) {
    const Key& k = pw.record->key();
    OrderedIndex::TableIndex& tab = store_.index().GetOrCreateTable(k.hi);
    const std::size_t p = tab.PartitionOf(k.lo);
    EnsureIndexExclusive(txn, k.hi, static_cast<std::uint32_t>(p), &tab.partitions[p],
                         pw.op);
  }
  txn.BufferWrite(std::move(pw));
}

std::size_t TwoPLEngine::Scan(Worker& w, Txn& txn, std::uint64_t table, std::uint64_t lo,
                              std::uint64_t hi, std::size_t limit, ScanFn fn) {
  (void)w;
  if (lo > hi) {
    return 0;
  }
  OrderedIndex::TableIndex& tab = store_.index().GetOrCreateTable(table);
  const std::size_t p_lo = tab.PartitionOf(lo);
  const std::size_t p_hi = tab.PartitionOf(hi);
  std::size_t visited = 0;
  Txn::ScanScratchLease lease(txn.scan_batch());
  auto& batch = lease.get();
  for (std::size_t p = p_lo; p <= p_hi; ++p) {
    IndexPartition& part = tab.partitions[p];
    // Held until commit/abort: no insert into this stripe can commit while we run.
    EnsureIndexShared(txn, table, static_cast<std::uint32_t>(p), &part);
    batch.clear();
    OrderedIndex::SnapshotRange(part, lo, hi, limit == 0 ? 0 : limit - visited, &batch);
    for (const auto& [key_lo, rec] : batch) {
      (void)key_lo;
      ReadResult res;
      Read(w, txn, rec, &res);  // takes the record's shared lock for the txn's duration
      txn.OverlayPending(rec, &res);
      if (!res.present) {
        continue;
      }
      ++visited;
      if (!fn(rec->key(), res)) {
        return visited;
      }
      if (limit != 0 && visited >= limit) {
        return visited;
      }
    }
  }
  return visited;
}

TxnStatus TwoPLEngine::Commit(Worker& w, Txn& txn) {
  auto& ws = txn.write_set();
  const std::size_t n = ws.size();
  // Record-address commit order as slot indices (Txn::CommitOrder): groups same-record
  // writes in issue order without copying the elements; single-write transactions skip
  // the sort and scratch entirely.
  std::uint32_t single = 0;
  const std::uint32_t* order = txn.CommitOrder(&single);
  // We hold every write record exclusively: the short OCC lock below cannot contend with
  // other 2PL transactions; it exists to keep the record's seqlock/TID discipline intact
  // for external snapshot readers.
  std::uint64_t max_seen = 0;
  for (const PendingWrite& pw : ws) {
    max_seen = std::max(max_seen, Record::TidOf(pw.record->LoadTidWord()));
  }
  const std::uint64_t commit_tid = w.GenerateTid(max_seen);
  for (std::size_t i = 0; i < n; ++i) {
    const PendingWrite& pw = ws[order[i]];
    Record* r = pw.record;
    if (i == 0 || ws[order[i - 1]].record != r) {
      r->LockOcc();
    }
    const bool was_present = r->PresentLocked();
    ApplyWriteToRecord(pw, txn.arena());
    if (pw.op == OpCode::kDelete) {
      // Mirror of the insert path: the partition's exclusive lock was taken at Write()
      // time, so no scanner holds the stripe while the key vanishes.
      if (was_present) {
        store_.index().Remove(r->key());
      }
    } else if (!was_present) {
      // The partition's exclusive lock was taken at Write() time, so no scanner holds
      // the stripe; the version bump keeps OCC-side bookkeeping consistent.
      store_.index().Insert(r->key(), r);
    }
    if (i + 1 == n || ws[order[i + 1]].record != r) {
      r->UnlockOccSetTid(commit_tid);
    }
  }
  ReleaseAll(txn);
  return TxnStatus::kCommitted;
}

void TwoPLEngine::Abort(Worker& w, Txn& txn) {
  (void)w;
  ReleaseAll(txn);
}

void TwoPLEngine::ReleaseAll(Txn& txn) {
  for (const LockEntry& e : txn.locks()) {
    if (e.exclusive) {
      e.record->rw.unlock();
    } else {
      e.record->rw.unlock_shared();
    }
  }
  txn.locks().clear();
  for (const IndexLockEntry& e : txn.index_locks()) {
    if (e.exclusive) {
      e.partition->rw.unlock();
    } else {
      e.partition->rw.unlock_shared();
    }
  }
  txn.index_locks().clear();
}

}  // namespace doppel
