// Tests for typed values: OrderKey ordering, OPut win rules, and top-K set semantics
// (§4's commutativity rules depend on these).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rand.h"
#include "src/store/value.h"

namespace doppel {
namespace {

TEST(OrderKey, LexicographicOrder) {
  EXPECT_LT((OrderKey{1, 0}), (OrderKey{2, 0}));
  EXPECT_LT((OrderKey{1, 5}), (OrderKey{2, 0}));
  EXPECT_LT((OrderKey{1, 1}), (OrderKey{1, 2}));
  EXPECT_EQ((OrderKey{3, 4}), (OrderKey{3, 4}));
  EXPECT_GT((OrderKey{3, 5}), (OrderKey{3, 4}));
}

TEST(OrderKey, NegInfLosesToEverything) {
  const OrderKey neg = OrderKey::NegInf();
  EXPECT_LT(neg, (OrderKey{INT64_MIN, INT64_MIN + 1}));
  EXPECT_LT(neg, (OrderKey{0, 0}));
  EXPECT_EQ(neg, OrderKey::NegInf());
}

TEST(OrderedTuple, WinsByOrderThenCore) {
  const OrderedTuple low{OrderKey{1, 0}, 9, "low"};
  const OrderedTuple high{OrderKey{2, 0}, 0, "high"};
  EXPECT_TRUE(OrderedTuple::Wins(high, low));
  EXPECT_FALSE(OrderedTuple::Wins(low, high));
  // "if o' = o and j' > j": the higher core ID wins ties (§4).
  const OrderedTuple core1{OrderKey{2, 0}, 1, "c1"};
  const OrderedTuple core2{OrderKey{2, 0}, 2, "c2"};
  EXPECT_TRUE(OrderedTuple::Wins(core2, core1));
  EXPECT_FALSE(OrderedTuple::Wins(core1, core2));
  // A tuple never beats itself (strictness keeps OPut idempotent).
  EXPECT_FALSE(OrderedTuple::Wins(core1, core1));
}

TEST(OrderedTuple, DefaultIsNegInf) {
  const OrderedTuple fresh;
  const OrderedTuple any{OrderKey{INT64_MIN, INT64_MIN + 1}, 0, ""};
  EXPECT_TRUE(OrderedTuple::Wins(any, fresh));
}

TEST(TopK, InsertKeepsDescendingOrder) {
  TopKSet set(5);
  for (std::int64_t o : {3, 1, 4, 1, 5, 9, 2, 6}) {
    set.Insert(OrderedTuple{OrderKey{o, 0}, 0, std::to_string(o)});
  }
  ASSERT_EQ(set.size(), 5u);
  const auto& items = set.items();
  EXPECT_EQ(items[0].order.primary, 9);
  EXPECT_EQ(items[1].order.primary, 6);
  EXPECT_EQ(items[2].order.primary, 5);
  EXPECT_EQ(items[3].order.primary, 4);
  EXPECT_EQ(items[4].order.primary, 3);
}

TEST(TopK, AtMostOneTuplePerOrderHighestCoreWins) {
  TopKSet set(5);
  EXPECT_TRUE(set.Insert(OrderedTuple{OrderKey{7, 0}, 1, "core1"}));
  // Same order, higher core: replaces.
  EXPECT_TRUE(set.Insert(OrderedTuple{OrderKey{7, 0}, 3, "core3"}));
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.items()[0].payload, "core3");
  // Same order, lower core: rejected.
  EXPECT_FALSE(set.Insert(OrderedTuple{OrderKey{7, 0}, 2, "core2"}));
  EXPECT_EQ(set.items()[0].payload, "core3");
  // Identical insert: idempotent.
  EXPECT_FALSE(set.Insert(OrderedTuple{OrderKey{7, 0}, 3, "core3"}));
  EXPECT_EQ(set.size(), 1u);
}

TEST(TopK, DropsSmallestWhenFull) {
  TopKSet set(3);
  set.Insert(OrderedTuple{OrderKey{10, 0}, 0, "a"});
  set.Insert(OrderedTuple{OrderKey{20, 0}, 0, "b"});
  set.Insert(OrderedTuple{OrderKey{30, 0}, 0, "c"});
  // Larger than the minimum: evicts order 10.
  EXPECT_TRUE(set.Insert(OrderedTuple{OrderKey{25, 0}, 0, "d"}));
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.back().order.primary, 20);
  // Smaller than the minimum: rejected.
  EXPECT_FALSE(set.Insert(OrderedTuple{OrderKey{5, 0}, 0, "e"}));
  EXPECT_EQ(set.size(), 3u);
}

TEST(TopK, SecondaryOrderBreaksPrimaryTies) {
  TopKSet set(4);
  set.Insert(OrderedTuple{OrderKey{10, 1}, 0, "a"});
  set.Insert(OrderedTuple{OrderKey{10, 2}, 0, "b"});  // distinct order: both retained
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.items()[0].order.secondary, 2);
}

TEST(TopK, KOne) {
  TopKSet set(1);
  set.Insert(OrderedTuple{OrderKey{1, 0}, 0, "a"});
  set.Insert(OrderedTuple{OrderKey{5, 0}, 0, "b"});
  set.Insert(OrderedTuple{OrderKey{3, 0}, 0, "c"});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.items()[0].payload, "b");
}

// Reference implementation: global top-K over all inserted tuples with per-order dedup
// by max core.
TopKSet ReferenceTopK(std::size_t k, const std::vector<OrderedTuple>& all) {
  std::vector<OrderedTuple> best;
  for (const auto& t : all) {
    auto it = std::find_if(best.begin(), best.end(),
                           [&](const OrderedTuple& b) { return b.order == t.order; });
    if (it == best.end()) {
      best.push_back(t);
    } else if (t.core > it->core) {
      *it = t;
    }
  }
  std::sort(best.begin(), best.end(),
            [](const OrderedTuple& a, const OrderedTuple& b) {
              return OrderedTuple::Wins(a, b);
            });
  if (best.size() > k) {
    best.resize(k);
  }
  TopKSet out(k);
  for (const auto& t : best) {
    out.Insert(t);
  }
  return out;
}

class TopKPropertyTest : public ::testing::TestWithParam<int> {};

// Property (the §4 merge requirement): splitting a random insert stream across J "cores"
// and merging the per-core sets equals inserting the whole stream into one set.
TEST_P(TopKPropertyTest, MergeEqualsSerialInsertion) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t k = 1 + rng.NextBounded(12);
  const int cores = 2 + static_cast<int>(rng.NextBounded(4));
  const int n = 1 + static_cast<int>(rng.NextBounded(300));

  std::vector<OrderedTuple> all;
  std::vector<TopKSet> slices(static_cast<std::size_t>(cores), TopKSet(k));
  TopKSet serial(k);
  for (int i = 0; i < n; ++i) {
    const std::uint32_t core = static_cast<std::uint32_t>(rng.NextBounded(cores));
    OrderedTuple t{OrderKey{static_cast<std::int64_t>(rng.NextBounded(40)), 0}, core,
                   "p" + std::to_string(i)};
    all.push_back(t);
    serial.Insert(t);
    slices[core].Insert(t);
  }
  TopKSet merged(k);
  for (const auto& s : slices) {
    merged.MergeFrom(s);
  }
  // Both must equal the reference; note serial insertion itself must too.
  const TopKSet expected = ReferenceTopK(k, all);
  EXPECT_EQ(merged, expected) << "seed=" << seed;
  EXPECT_EQ(serial, expected) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, TopKPropertyTest, ::testing::Range(0, 25));

TEST(TopK, MergeFromEmptyIsNoop) {
  TopKSet a(3);
  a.Insert(OrderedTuple{OrderKey{1, 0}, 0, "x"});
  const TopKSet before = a;
  a.MergeFrom(TopKSet(3));
  EXPECT_EQ(a, before);
}

TEST(ValueType, MatchesAlternatives) {
  EXPECT_EQ(ValueType(Value{std::int64_t{3}}), RecordType::kInt64);
  EXPECT_EQ(ValueType(Value{std::string("x")}), RecordType::kBytes);
  EXPECT_EQ(ValueType(Value{OrderedTuple{}}), RecordType::kOrdered);
  EXPECT_EQ(ValueType(Value{TopKSet(2)}), RecordType::kTopK);
}

TEST(RecordTypeName, AllNamed) {
  EXPECT_STREQ(RecordTypeName(RecordType::kInt64), "int64");
  EXPECT_STREQ(RecordTypeName(RecordType::kBytes), "bytes");
  EXPECT_STREQ(RecordTypeName(RecordType::kOrdered), "ordered");
  EXPECT_STREQ(RecordTypeName(RecordType::kTopK), "topk");
}

}  // namespace
}  // namespace doppel
