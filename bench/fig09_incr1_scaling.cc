// Figure 9: "Throughput per core for INCR1 when all transactions increment a single hot
// key." Perfect scalability would be a horizontal line.
#include <memory>

#include "bench/bench_common.h"
#include "src/workload/incr.h"

namespace doppel {
namespace {

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const std::uint64_t keys = flags.Keys(100000);
  const int max_threads = flags.ResolvedThreads();
  const Protocol protocols[] = {Protocol::kDoppel, Protocol::kOcc, Protocol::kTwoPL,
                                Protocol::kAtomic};

  std::printf("Figure 9: INCR1 per-core throughput vs cores (100%% hot key)\n");
  std::printf("max_threads=%d keys=%llu\n\n", max_threads,
              static_cast<unsigned long long>(keys));

  Table table({"cores", "Doppel/core", "OCC/core", "2PL/core", "Atomic/core"});
  std::atomic<std::uint64_t> hot{0};
  for (int threads = 1; threads <= max_threads; ++threads) {
    std::vector<std::string> row{std::to_string(threads)};
    for (Protocol p : protocols) {
      bench::Flags point_flags = flags;
      point_flags.threads = threads;
      auto point = bench::MeasurePoint(
          point_flags, /*default_seconds=*/0.4,
          [&] {
            auto db = std::make_unique<Database>(
                bench::BaseOptions(point_flags, p, keys * 2));
            PopulateIncr(db->store(), keys);
            return db;
          },
          [&] { return MakeIncr1Factory(keys, 100, &hot); });
      row.push_back(FormatCount(point.throughput.mean() / threads));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
