#include "src/txn/twopl_engine.h"

#include <algorithm>

#include "src/txn/apply.h"

namespace doppel {

TwoPLEngine::TwoPLEngine(Store& store) : TwoPLEngine(store, Limits{}) {}

Record* TwoPLEngine::Route(Worker& w, const Key& key, RecordType type,
                           std::size_t topk_k) {
  (void)w;
  return store_.GetOrCreate(key, type, topk_k == 0 ? TopKSet::kDefaultK : topk_k);
}

void TwoPLEngine::EnsureShared(Txn& txn, Record* r) {
  for (const LockEntry& e : txn.locks()) {
    if (e.record == r) {
      return;  // shared or exclusive: either allows reading
    }
  }
  if (!r->rw.try_lock_shared_for(limits_.shared_spin)) {
    throw ConflictSignal{r, OpCode::kGet};
  }
  txn.locks().push_back(LockEntry{r, false});
}

void TwoPLEngine::EnsureExclusive(Txn& txn, Record* r, OpCode op) {
  for (LockEntry& e : txn.locks()) {
    if (e.record == r) {
      if (e.exclusive) {
        return;
      }
      if (!r->rw.try_upgrade_for(limits_.upgrade_spin)) {
        throw ConflictSignal{r, op};  // upgrade deadlock (two upgraders) resolves here
      }
      e.exclusive = true;
      return;
    }
  }
  if (!r->rw.try_lock_for(limits_.exclusive_spin)) {
    throw ConflictSignal{r, op};
  }
  txn.locks().push_back(LockEntry{r, true});
}

void TwoPLEngine::Read(Worker& w, Txn& txn, Record* r, ReadResult* out) {
  (void)w;
  EnsureShared(txn, r);
  // Holding at least a shared lock: no 2PL writer can be applying, so the snapshot spin
  // loops never iterate.
  if (r->type() == RecordType::kInt64) {
    const Record::IntSnapshot s = r->ReadInt();
    out->present = s.present;
    out->i = s.value;
    return;
  }
  Record::ComplexSnapshot s = r->ReadComplex();
  out->present = s.present;
  out->complex = std::move(s.value);
}

void TwoPLEngine::Write(Worker& w, Txn& txn, PendingWrite&& pw) {
  (void)w;
  EnsureExclusive(txn, pw.record, pw.op);
  txn.write_set().push_back(std::move(pw));
}

TxnStatus TwoPLEngine::Commit(Worker& w, Txn& txn) {
  auto& ws = txn.write_set();
  std::stable_sort(ws.begin(), ws.end(), [](const PendingWrite& a, const PendingWrite& b) {
    return a.record < b.record;
  });
  // We hold every write record exclusively: the short OCC lock below cannot contend with
  // other 2PL transactions; it exists to keep the record's seqlock/TID discipline intact
  // for external snapshot readers.
  std::uint64_t max_seen = 0;
  for (const PendingWrite& pw : ws) {
    max_seen = std::max(max_seen, Record::TidOf(pw.record->LoadTidWord()));
  }
  const std::uint64_t commit_tid = w.GenerateTid(max_seen);
  for (std::size_t i = 0; i < ws.size(); ++i) {
    if (i == 0 || ws[i].record != ws[i - 1].record) {
      ws[i].record->LockOcc();
    }
    ApplyWriteToRecord(ws[i]);
    if (i + 1 == ws.size() || ws[i + 1].record != ws[i].record) {
      ws[i].record->UnlockOccSetTid(commit_tid);
    }
  }
  ReleaseAll(txn);
  return TxnStatus::kCommitted;
}

void TwoPLEngine::Abort(Worker& w, Txn& txn) {
  (void)w;
  ReleaseAll(txn);
}

void TwoPLEngine::ReleaseAll(Txn& txn) {
  for (const LockEntry& e : txn.locks()) {
    if (e.exclusive) {
      e.record->rw.unlock();
    } else {
      e.record->rw.unlock_shared();
    }
  }
  txn.locks().clear();
}

}  // namespace doppel
