#include "src/store/epoch.h"

#include <algorithm>

#include "src/store/record.h"
#include "src/store/store.h"

namespace doppel {

EpochReclaimer::EpochReclaimer(Store& store, std::size_t num_workers,
                               const ReclaimOptions& opts)
    : store_(store), opts_(opts), epochs_(num_workers) {}

EpochReclaimer::~EpochReclaimer() {
  for (Record* r : limbo_) {
    delete r;
  }
  for (FlatSlotArray* a : limbo_arrays_) {
    delete a;
  }
}

bool EpochReclaimer::TryKill(Record& r,
                             FunctionRef<std::uint64_t(std::uint64_t)> gen_tid) {
  // Split records live in the current Doppel plan; pinned records are held by the
  // classifier across phases (retained/manual labels). Both are skipped outright.
  if (r.IsSplit() || r.IsPinned()) {
    return false;
  }
  // Try-acquire both record locks. The rw lock excludes 2PL transactions (they hold it
  // shared/exclusive from Ensure* until commit); the OCC lock bit excludes OCC/Doppel
  // committers and the seqlock write path. Busy record: skip, the cursor will return.
  if (!r.rw.try_lock()) {
    return false;
  }
  if (!r.TryLockOcc()) {
    r.rw.unlock();
    return false;
  }
  if (r.PresentLocked()) {
    r.UnlockOcc();
    r.rw.unlock();
    return false;
  }
  // Absent under both locks: kill it. MarkDead is sequenced before the TID release
  // store, so any reader whose snapshot carries the bumped TID also observes the dead
  // flag (engines check IsDead after every snapshot); a reader with the old TID fails
  // OCC validation against the bump. Either way no stale "absent" read can commit
  // against a record that is about to leave the map.
  r.MarkDead();
  r.UnlockOccSetTid(gen_tid(Record::TidOf(r.LoadTidWord())));
  r.rw.unlock();
  return true;
}

std::uint64_t EpochReclaimer::Tick(std::size_t worker_id,
                                   FunctionRef<std::uint64_t(std::uint64_t)> gen_tid) {
  if (!opts_.enabled) {
    return 0;  // constant: nothing is ever freed, caches never need invalidation
  }
  const std::uint64_t observed = epochs_.Observe(worker_id);
  if (worker_id != 0) {
    return observed;
  }
  if (ticks_until_drive_ != 0) {
    ticks_until_drive_--;
    return observed;
  }
  ticks_until_drive_ = opts_.tick_period;
  epochs_.TryAdvance();
  const std::uint64_t now = epochs_.global();
  if (!limbo_.empty() || !limbo_arrays_.empty()) {
    // Single-generation limbo: wait out the grace period before sweeping more. Two
    // advances past the sweep stamp mean every worker passed a transaction boundary
    // after the unlink, so no one still holds a pointer into this generation.
    if (now < limbo_epoch_ + 2) {
      return observed;
    }
    // Cumulative telemetry gauge; racy stats reads by contract.
    reclaimed_.fetch_add(limbo_.size(), std::memory_order_relaxed);
    for (Record* r : limbo_) {
      // Free point: re-open the key's flat slot (if any) only now, never earlier —
      // the tombstone planted at the kill point kept it closed through the grace
      // period, so no republished slot can alias the dead pointer.
      store_.FlatClearTombstone(r->key());
      delete r;
    }
    limbo_.clear();
    for (FlatSlotArray* a : limbo_arrays_) {
      delete a;
    }
    limbo_arrays_.clear();
  }
  // Idle gate: after a whole pass over the map unlinked nothing, don't walk it again
  // until the store has plausibly grown a reclamation candidate. Absent records only
  // appear via record creation (created absent) or a committed delete (which always
  // removes an index key), so the two monotonic counters together form the hint.
  // (Flat slot arrays retired by growth wait in their FlatTable until the next active
  // sweep drains them — they are safe to hold indefinitely.)
  const std::uint64_t hint = store_.map().created() + store_.index().removes();
  if (idle_ && hint == idle_hint_) {
    return observed;
  }
  idle_ = false;
  if (cursor_ == 0) {
    // Sample at pass start: changes that land mid-pass behind the cursor are covered,
    // because they keep hint above pass_hint_ and so re-arm the next pass.
    pass_hint_ = hint;
    pass_found_ = false;
  }
  const std::size_t n_buckets = store_.map().bucket_count();
  const std::size_t begin = cursor_;
  const std::size_t end = std::min(begin + opts_.chunk_buckets, n_buckets);
  const std::size_t unlinked = store_.map().SweepRange(
      begin, end,
      [&](Record& r) {
        if (!TryKill(r, gen_tid)) {
          return false;
        }
        // Kill point, still under the victim's bucket stripe lock: poison the key's
        // flat slot before the unlink, so no router can (re)install the dying pointer
        // and no fresh record for the key can take the slot before the free point.
        store_.FlatTombstone(r.key());
        return true;
      },
      &limbo_);
  cursor_ = end >= n_buckets ? 0 : end;
  pass_found_ = pass_found_ || unlinked != 0;
  // Slot arrays retired by flat growth join this generation's grace period.
  store_.DrainFlatRetired(&limbo_arrays_);
  if (cursor_ == 0 && !pass_found_) {
    idle_ = true;
    idle_hint_ = pass_hint_;
  }
  if (!limbo_.empty() || !limbo_arrays_.empty()) {
    // Cumulative telemetry gauge; racy stats reads by contract.
    swept_.fetch_add(limbo_.size(), std::memory_order_relaxed);
    limbo_epoch_ = now;
  }
  return observed;
}

std::size_t EpochReclaimer::SweepQuiescent(Store& store) {
  std::vector<Record*> victims;
  store.map().SweepRange(
      0, store.map().bucket_count(),
      [](Record& r) {
        // Victims are freed before any reader can exist again, so the minted TID is
        // never observable; a trivial bump suffices (no worker clock available here).
        return TryKill(r, [](std::uint64_t t) { return t + 1; });
      },
      &victims);
  const std::size_t n = victims.size();
  for (Record* r : victims) {
    // Quiescent: no concurrent reader exists, so the slot can be cleared outright.
    store.FlatClearSlot(r->key());
    delete r;
  }
  // Retired slot arrays are likewise free to go immediately.
  std::vector<FlatSlotArray*> arrays;
  store.DrainFlatRetired(&arrays);
  for (FlatSlotArray* a : arrays) {
    delete a;
  }
  return n;
}

void EpochReclaimer::DrainAtShutdown(
    FunctionRef<std::uint64_t(std::uint64_t)> gen_tid) {
  if (!opts_.enabled) {
    return;
  }
  // Workers are joined: no concurrent readers, so the grace period is moot. Free the
  // pending generation, then sweep the whole map once and free that yield too — the
  // store's destructor would leak nothing either way, but tests asserting bounded
  // Store::size() after Stop want the final state exact.
  reclaimed_.fetch_add(limbo_.size(), std::memory_order_relaxed);  // teardown telemetry
  for (Record* r : limbo_) {
    // Workers are joined: quiescent, clear the slot (tombstoned at the kill) outright.
    store_.FlatClearSlot(r->key());
    delete r;
  }
  limbo_.clear();
  std::vector<Record*> victims;
  store_.map().SweepRange(
      0, store_.map().bucket_count(),
      [&](Record& r) { return TryKill(r, gen_tid); }, &victims);
  // Teardown telemetry (single-threaded here); relaxed suffices.
  swept_.fetch_add(victims.size(), std::memory_order_relaxed);
  reclaimed_.fetch_add(victims.size(), std::memory_order_relaxed);
  for (Record* r : victims) {
    store_.FlatClearSlot(r->key());  // quiescent, as above
    delete r;
  }
  store_.DrainFlatRetired(&limbo_arrays_);
  for (FlatSlotArray* a : limbo_arrays_) {
    delete a;
  }
  limbo_arrays_.clear();
}

}  // namespace doppel
