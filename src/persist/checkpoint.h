// Consistent store checkpoints for the persistence directory.
//
// A checkpoint is a full snapshot of the store — every logically-present record with
// its committed TID — plus the ordered-index partition layout of every registered
// table, so recovery can rebuild range-scan structures exactly as they were tuned (a
// narrowed adaptive table recovers narrowed, not at its registration default). The
// phase-reconciliation coordinator takes checkpoints at joined-phase quiesce barriers:
// per-core slices are merged and every worker is parked between transactions, so a
// plain iteration over the record map observes a transaction-consistent state without
// any locking. STAR-style reasoning applies: recovery cost is dominated by the log
// volume between snapshots, and the joined-phase barrier is a consistency point the
// system already pays for.
//
// Durability: the snapshot is written to a temporary file, fsynced, and renamed; the
// MANIFEST only references it afterwards, so a half-written checkpoint can never
// become live. The file carries a trailing CRC as defense in depth.
#ifndef DOPPEL_SRC_PERSIST_CHECKPOINT_H_
#define DOPPEL_SRC_PERSIST_CHECKPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/persist/io_env.h"
#include "src/store/store.h"

namespace doppel {

struct CheckpointStats {
  std::uint64_t records = 0;
  std::uint64_t tables = 0;
  // Highest committed TID captured (Write) or restored (Load); recovery seeds worker
  // TID clocks past it so post-recovery commits sort after everything checkpointed.
  std::uint64_t max_tid = 0;
  // Write only: clear on success. On failure the tmp file has been removed and the
  // final path untouched — the previous checkpoint (if any) stays live; the caller
  // retries at a later consistency point.
  IoFailure failure;
  bool ok() const { return failure.err == 0; }
};

class Checkpoint {
 public:
  // Snapshots `store` into `dir`/`file_name` (via tmp + fsync + rename). PRECONDITION:
  // no writer may be mutating records — the caller quiesces workers (coordinator
  // barrier) or has exclusive ownership (tests, post-Stop shutdown checkpoints).
  // I/O goes through `env` (nullptr = passthrough default); transient errors retry
  // bounded (counted into *retries), permanent ones surface in stats.failure with the
  // tmp file unlinked and MANIFEST-visible state untouched.
  static CheckpointStats Write(const std::string& dir, const std::string& file_name,
                               const Store& store, IoEnv* env = nullptr,
                               std::atomic<std::uint64_t>* retries = nullptr);

  // Restores `path` into `store`, overwriting any record it names (pre-loaded initial
  // data keeps its value only for keys the checkpoint never captured — i.e. keys that
  // did not exist when it was taken). Ordered-index table layouts are restored first so
  // record insertion re-bins under the checkpointed partition boundaries.
  static CheckpointStats Load(const std::string& path, Store* store);

  // Like Load, but returns false — touching nothing — when the file cannot be opened.
  // A replica bootstrapping against a live primary can lose the open race: the primary
  // replaces and unlinks the checkpoint the replica's manifest read named. That is a
  // retry, not corruption (once an open succeeds, a concurrent unlink cannot hurt the
  // read). A file that opens but fails to parse is still a checked error.
  static bool TryLoad(const std::string& path, Store* store, CheckpointStats* stats);
};

}  // namespace doppel

#endif  // DOPPEL_SRC_PERSIST_CHECKPOINT_H_
