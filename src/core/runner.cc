#include "src/core/runner.h"

#include <algorithm>
#include <utility>

#include "src/common/timing.h"

namespace doppel {
namespace {

void FinishTicket(PendingTxn& pt, int state) {
  if (pt.ticket) {
    pt.ticket->attempts.store(pt.attempts + 1, std::memory_order_relaxed);
    pt.ticket->state.store(state, std::memory_order_release);
    pt.ticket->state.notify_one();
  }
}

}  // namespace

void ScheduleRetry(Worker& w, const RunnerConfig& cfg, PendingTxn&& pt) {
  pt.attempts++;
  const std::uint32_t shift = std::min(pt.attempts, 20u);
  std::uint64_t delay = cfg.backoff_min_ns << shift;
  delay = std::min(delay, cfg.backoff_max_ns);
  // +-25% jitter decorrelates retries of transactions aborted by the same conflict.
  const std::uint64_t jitter = delay / 2;
  delay = delay - delay / 4 + (jitter == 0 ? 0 : w.rng.NextBounded(jitter));
  w.retry_heap.push_back(RetryItem{NowNanos() + delay, std::move(pt)});
  std::push_heap(w.retry_heap.begin(), w.retry_heap.end());
}

RunOutcome RunPendingTxn(Engine& engine, const RunnerConfig& cfg, Worker& w,
                         PendingTxn&& pt) {
  Txn& txn = w.txn;
  txn.Reset(&engine, &w);
  try {
    if (pt.ticket) {
      pt.ticket->fn(txn);
    } else {
      pt.req.proc(txn, pt.req.args);
    }
  } catch (const StashSignal& s) {
    engine.Abort(w, txn);
    engine.OnStash(w, s);
    w.stash_events++;
    w.stash.push_back(std::move(pt));
    return RunOutcome::kStashed;
  } catch (const ConflictSignal& c) {
    engine.Abort(w, txn);
    txn.conflict_record = c.record;
    txn.conflict_op = c.op;
    engine.OnConflict(w, txn);
    w.conflicts++;
    ScheduleRetry(w, cfg, std::move(pt));
    return RunOutcome::kRetryScheduled;
  } catch (const UserAbortSignal&) {
    engine.Abort(w, txn);
    w.user_aborts++;
    FinishTicket(pt, 2);
    return RunOutcome::kUserAborted;
  }

  if (txn.stash_doomed()) {
    // Doomed by a split-data access (poison path, no exception): stash for the next
    // joined phase.
    engine.Abort(w, txn);
    engine.OnStash(w, StashSignal{txn.stash_record(), txn.stash_op()});
    w.stash_events++;
    w.stash.push_back(std::move(pt));
    return RunOutcome::kStashed;
  }

  const TxnStatus status = engine.Commit(w, txn);
  if (status == TxnStatus::kConflict) {
    engine.OnConflict(w, txn);
    w.conflicts++;
    ScheduleRetry(w, cfg, std::move(pt));
    return RunOutcome::kRetryScheduled;
  }

  if (cfg.wal != nullptr) {
    // w.last_tid is the TID this commit generated (Silo TID generation is per-worker).
    cfg.wal->Append(w.id, w.last_tid, txn.write_set(), txn.split_writes());
  }
  w.committed++;
  if (w.phase == Phase::kSplit) {
    w.committed_split_phase++;
  }
  w.shared_commits.Add(1);
  const std::uint8_t tag = pt.ticket ? 0 : pt.req.args.tag;
  w.committed_by_tag[tag]++;
  const std::uint64_t submit_ns = pt.ticket ? 0 : pt.req.args.submit_ns;
  if (submit_ns != 0) {
    w.latency_by_tag[tag].Record(NowNanos() - submit_ns);
  }
  FinishTicket(pt, 1);
  return RunOutcome::kCommitted;
}

}  // namespace doppel
