// Benchmark drivers.
//
// Closed-loop (§8.1): each worker generates its own transactions via a TxnSource and
// executes them back-to-back for a fixed duration; reports throughput (committed
// transactions / elapsed) and latency stats. "Each point is the mean of three consecutive
// runs, with error bars showing min and max."
//
// Open-loop: external submitter threads push transactions through Database::Submit at a
// paced offered load (or flat out), so submission→commit latency includes inbox queueing
// and backpressure is visible as rejected submissions — the server-facing regime the
// closed-loop driver cannot measure.
#ifndef DOPPEL_SRC_WORKLOAD_DRIVER_H_
#define DOPPEL_SRC_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <vector>

#include "src/common/stats.h"
#include "src/core/database.h"

namespace doppel {

struct RunMetrics {
  double seconds = 0.0;
  std::uint64_t committed = 0;
  double throughput = 0.0;  // txns/sec
  Database::Stats stats;    // exact post-stop aggregation (includes warmup)
  std::size_t split_records = 0;
  std::uint64_t phase_cycles = 0;

  // Durability-side accounting (zero when the run had no wal_dir), so logging overhead
  // is visible next to every throughput number. See report.h WalSummary.
  bool wal_enabled = false;
  std::uint64_t wal_appended_txns = 0;
  std::uint64_t wal_flushed_batches = 0;
  std::uint64_t wal_flushed_bytes = 0;
  std::uint64_t wal_segments = 0;
  std::uint64_t wal_checkpoints = 0;
};

// Starts `db` with `factory`, warms up, measures for `measure_ms`, stops, aggregates.
// The database must be freshly constructed (Start/Stop are one-shot).
RunMetrics RunWorkload(Database& db, SourceFactory factory, std::uint64_t measure_ms,
                       std::uint64_t warmup_ms = 100);

// Like RunWorkload but samples cumulative commits every `sample_ms` (Fig. 10). The
// returned series holds throughput (txns/sec) per sample interval.
struct TimeSeries {
  std::vector<double> seconds;
  std::vector<double> throughput;
};
RunMetrics RunWorkloadTimeSeries(Database& db, SourceFactory factory,
                                 std::uint64_t measure_ms, std::uint64_t sample_ms,
                                 TimeSeries* series,
                                 const std::function<void(std::uint64_t ms)>& on_tick);

// ---- Open-loop driver ----

// Generates one request per call on a submitter thread. `submitter_id` is 0-based;
// `rng` is the submitter's private generator.
using RequestGen = std::function<TxnRequest(int submitter_id, Rng& rng)>;

struct OpenLoopOptions {
  int submitters = 4;
  // Total offered load across all submitters, txns/sec. 0 = unpaced: submit as fast as
  // the inboxes accept.
  double offered_per_sec = 0.0;
  std::uint64_t measure_ms = 1000;
  // Per-submitter cap on handles awaited at once; bounds memory at high offered loads.
  std::size_t max_outstanding = 4096;
};

struct OpenLoopMetrics {
  double seconds = 0.0;
  std::uint64_t offered = 0;    // generation attempts (incl. rejected)
  std::uint64_t rejected = 0;   // TrySubmit returned kQueueFull
  std::uint64_t accepted = 0;
  std::uint64_t committed = 0;  // of accepted, handles that reported commit
  double throughput = 0.0;      // committed/sec over the submission window
  // submission→commit latency (stamped at Submit acceptance; includes inbox queueing,
  // conflict retries, and stash delay), merged across all tags.
  LatencyHistogram latency;
  Database::Stats stats;  // exact post-stop aggregation
};

// Starts `db` with no sources, runs `opts.submitters` external threads submitting
// `gen`-produced requests for `opts.measure_ms`, waits for every accepted handle, stops
// the database, and aggregates. The database must be freshly constructed.
OpenLoopMetrics RunOpenLoop(Database& db, const RequestGen& gen,
                            const OpenLoopOptions& opts);

}  // namespace doppel

#endif  // DOPPEL_SRC_WORKLOAD_DRIVER_H_
