// Tests for the Record: TID word protocol, seqlock snapshot consistency, typed values,
// presence, split markings, and direct atomic operations.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/store/record.h"

namespace doppel {
namespace {

TEST(Record, NewRecordIsAbsent) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  const auto snap = r.ReadInt();
  EXPECT_FALSE(snap.present);
  EXPECT_EQ(snap.tid, 0u);
}

TEST(Record, SetIntVisibleAfterUnlock) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  r.LockOcc();
  r.SetInt(42);
  r.UnlockOccSetTid(100);
  const auto snap = r.ReadInt();
  EXPECT_TRUE(snap.present);
  EXPECT_EQ(snap.value, 42);
  EXPECT_EQ(snap.tid, 100u);
}

TEST(Record, TidWordLockBit) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  EXPECT_FALSE(Record::IsLocked(r.LoadTidWord()));
  EXPECT_TRUE(r.TryLockOcc());
  EXPECT_TRUE(Record::IsLocked(r.LoadTidWord()));
  EXPECT_FALSE(r.TryLockOcc());  // already held
  r.UnlockOcc();
  EXPECT_FALSE(Record::IsLocked(r.LoadTidWord()));
  EXPECT_EQ(Record::TidOf(r.LoadTidWord()), 0u);  // abort path keeps tid
}

TEST(Record, UnlockSetTidReplacesTid) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  r.LockOcc();
  r.UnlockOccSetTid(7);
  EXPECT_EQ(Record::TidOf(r.LoadTidWord()), 7u);
  r.LockOcc();
  r.UnlockOccSetTid(9);
  EXPECT_EQ(Record::TidOf(r.LoadTidWord()), 9u);
}

TEST(Record, StableTidWaitsForUnlock) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  r.LockOcc();
  std::atomic<bool> read_done{false};
  std::thread reader([&] {
    EXPECT_EQ(r.StableTid(), 55u);
    read_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(read_done.load());
  r.UnlockOccSetTid(55);
  reader.join();
  EXPECT_TRUE(read_done.load());
}

TEST(Record, BytesRoundTrip) {
  Record r(Key::FromU64(1), RecordType::kBytes, 0);
  r.LockOcc();
  r.MutateComplex([](ComplexValue& cv) { std::get<std::string>(cv) = "payload"; });
  r.UnlockOccSetTid(3);
  auto snap = r.ReadComplex();
  EXPECT_TRUE(snap.present);
  EXPECT_EQ(std::get<std::string>(snap.value), "payload");
}

TEST(Record, TopKCreatedWithCapacity) {
  Record r(Key::FromU64(1), RecordType::kTopK, 7);
  EXPECT_EQ(r.topk_k(), 7u);
  auto snap = r.ReadComplex();
  EXPECT_EQ(std::get<TopKSet>(snap.value).k(), 7u);
}

TEST(Record, ReadValueTypedSnapshot) {
  Record ri(Key::FromU64(1), RecordType::kInt64, 0);
  ri.LockOcc();
  ri.SetInt(5);
  ri.UnlockOccSetTid(2);
  EXPECT_EQ(std::get<std::int64_t>(ri.ReadValue().value), 5);

  Record ro(Key::FromU64(2), RecordType::kOrdered, 0);
  ro.LockOcc();
  ro.MutateComplex([](ComplexValue& cv) {
    std::get<OrderedTuple>(cv) = OrderedTuple{OrderKey{9, 0}, 1, "w"};
  });
  ro.UnlockOccSetTid(2);
  EXPECT_EQ(std::get<OrderedTuple>(ro.ReadValue().value).payload, "w");
}

TEST(Record, SetAbsentHidesValue) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  r.LockOcc();
  r.SetInt(1);
  r.SetAbsent();
  r.UnlockOccSetTid(2);
  EXPECT_FALSE(r.ReadInt().present);
}

TEST(Record, SplitMarking) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  EXPECT_FALSE(r.IsSplit());
  EXPECT_EQ(r.slice_index(), -1);
  r.MarkSplit(3, 17);
  EXPECT_TRUE(r.IsSplit());
  EXPECT_EQ(r.split_op(), 3);
  EXPECT_EQ(r.slice_index(), 17);
  r.ClearSplit();
  EXPECT_FALSE(r.IsSplit());
  EXPECT_EQ(r.slice_index(), -1);
}

TEST(Record, AtomicAddAccumulates) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  r.AtomicAdd(5);
  r.AtomicAdd(-2);
  EXPECT_EQ(r.AtomicLoadInt(), 3);
  EXPECT_TRUE(r.ReadInt().present);
}

TEST(Record, AtomicMaxMinSemantics) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  r.AtomicMax(10);
  r.AtomicMax(5);
  EXPECT_EQ(r.AtomicLoadInt(), 10);
  r.AtomicMax(20);
  EXPECT_EQ(r.AtomicLoadInt(), 20);
  Record r2(Key::FromU64(2), RecordType::kInt64, 0);
  r2.AtomicMin(-3);
  r2.AtomicMin(4);
  EXPECT_EQ(r2.AtomicLoadInt(), -3);
}

TEST(Record, AtomicMultSemantics) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  r.AtomicAdd(1);  // start at 1
  r.AtomicMult(6);
  r.AtomicMult(7);
  EXPECT_EQ(r.AtomicLoadInt(), 42);
}

TEST(Record, ConcurrentAtomicAddExact) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  constexpr int kThreads = 4;
  constexpr int kOps = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        r.AtomicAdd(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(r.AtomicLoadInt(), kThreads * kOps);
}

TEST(Record, ConcurrentAtomicMaxExact) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20000; ++i) {
        r.AtomicMax(t * 100000 + i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(r.AtomicLoadInt(), 3 * 100000 + 19999);
}

// Seqlock torn-read check: a writer alternates between two internally-consistent states;
// readers must never observe a mix. The value encodes its own checksum: v = x * 1e6 + x.
TEST(Record, SeqlockIntReadersNeverSeeTornState) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  r.LockOcc();
  r.SetInt(0);
  r.UnlockOccSetTid(2);
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&] {
    std::uint64_t tid = 4;
    for (std::int64_t x = 0; !stop.load(std::memory_order_relaxed); ++x) {
      r.LockOcc();
      r.SetInt(x % 1000);
      r.UnlockOccSetTid(tid += 2);
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto s1 = r.ReadInt();
      const auto s2 = r.ReadInt();
      // TIDs advance monotonically with values; a snapshot pair must be ordered.
      if (s2.tid < s1.tid) {
        torn = true;
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop = true;
  writer.join();
  reader.join();
  EXPECT_FALSE(torn.load());
}

// Complex-value torn-read check: writer installs strings whose length encodes content;
// readers validate the invariant on every snapshot.
TEST(Record, SeqlockComplexReadersSeeConsistentStrings) {
  Record r(Key::FromU64(1), RecordType::kBytes, 0);
  r.LockOcc();
  r.MutateComplex([](ComplexValue& cv) { std::get<std::string>(cv) = "aa"; });
  r.UnlockOccSetTid(2);
  std::atomic<bool> stop{false};
  std::atomic<bool> corrupt{false};
  std::thread writer([&] {
    std::uint64_t tid = 4;
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const char c = static_cast<char>('a' + (i % 26));
      const std::string payload(1 + static_cast<std::size_t>(i % 40), c);
      r.LockOcc();
      r.MutateComplex([&](ComplexValue& cv) { std::get<std::string>(cv) = payload; });
      r.UnlockOccSetTid(tid += 2);
      i++;
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto snap = r.ReadComplex();
      const auto& s = std::get<std::string>(snap.value);
      for (char c : s) {
        if (c != s[0]) {
          corrupt = true;  // mixed content: torn copy
        }
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop = true;
  writer.join();
  reader.join();
  EXPECT_FALSE(corrupt.load());
}

}  // namespace
}  // namespace doppel
