// The LIKE benchmark (§7, §8.5-8.7): users "liking" pages on a social networking site.
//
// "A write transaction chooses a page from a Zipfian distribution, increments the page's
// count of likes, and updates the user's row; ... A read transaction chooses a page using
// the same Zipfian distribution, and reads the page's count and the user's row. There are
// 1M users and 1M pages."
#ifndef DOPPEL_SRC_WORKLOAD_LIKE_H_
#define DOPPEL_SRC_WORKLOAD_LIKE_H_

#include <cstdint>
#include <memory>

#include "src/common/zipf.h"
#include "src/core/database.h"

namespace doppel {

inline constexpr std::uint32_t kLikeUserTable = 1;
inline constexpr std::uint32_t kLikePageTable = 2;

inline Key LikeUserKey(std::uint64_t u) { return Key::Table(kLikeUserTable, u); }
inline Key LikePageKey(std::uint64_t p) { return Key::Table(kLikePageTable, p); }

struct LikeConfig {
  std::uint64_t num_users = 1000000;
  std::uint64_t num_pages = 1000000;
  std::uint32_t write_pct = 50;
  double alpha = 1.4;  // 0 = uniform page popularity
};

void PopulateLike(Store& store, const LikeConfig& cfg);

class LikeSource : public TxnSource {
 public:
  LikeSource(const LikeConfig& cfg, const ZipfianGenerator* zipf)
      : cfg_(cfg), zipf_(zipf) {}

  TxnRequest Next(Worker& w) override;

 private:
  const LikeConfig cfg_;
  const ZipfianGenerator* zipf_;
};

// `zipf` must outlive the returned factory's sources and be built over cfg.num_pages.
SourceFactory MakeLikeFactory(const LikeConfig& cfg, const ZipfianGenerator* zipf);

}  // namespace doppel

#endif  // DOPPEL_SRC_WORKLOAD_LIKE_H_
