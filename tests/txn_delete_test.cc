// Transactional deletes (PR 8): a committed Delete makes the key absent to reads and
// scans on every engine, removes it from the ordered index, observes read-your-own-
// writes inside the issuing transaction, and composes with reinsertion. Also the
// type-mismatch regression: an op whose required record type conflicts with the key's
// existing record aborts that transaction (TxnAbort::kTypeMismatch) instead of killing
// the process, and the database keeps committing afterwards.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/core/database.h"

namespace doppel {
namespace {

constexpr std::uint64_t kTable = 1;

Key K(std::uint64_t lo) { return Key::Table(kTable, lo); }

Options BaseOptions(Protocol proto) {
  Options opts;
  opts.protocol = proto;
  opts.num_workers = 2;
  opts.phase_us = 1000;
  opts.store_capacity = 1 << 10;
  return opts;
}

class DeleteSemanticsTest : public ::testing::TestWithParam<Protocol> {};

INSTANTIATE_TEST_SUITE_P(AllProtocols, DeleteSemanticsTest,
                         ::testing::Values(Protocol::kOcc, Protocol::kTwoPL,
                                           Protocol::kDoppel, Protocol::kAtomic),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

TEST_P(DeleteSemanticsTest, DeleteMakesKeyAbsentAndIsIdempotent) {
  Database db(BaseOptions(GetParam()));
  db.store().LoadInt(K(1), 42);
  db.Start();

  EXPECT_TRUE(db.Execute([](Txn& txn) { txn.Delete(K(1)); }).committed);

  std::optional<std::int64_t> got = 0;
  EXPECT_TRUE(db.Execute([&](Txn& txn) { got = txn.GetInt(K(1)); }).committed);
  EXPECT_FALSE(got.has_value()) << "deleted key visible to a later read";

  // Deleting an already-absent key — or one that never existed — is a serializable
  // no-op, not an error.
  EXPECT_TRUE(db.Execute([](Txn& txn) { txn.Delete(K(1)); }).committed);
  EXPECT_TRUE(db.Execute([](Txn& txn) { txn.Delete(K(777)); }).committed);
  db.Stop();
}

TEST_P(DeleteSemanticsTest, OwnDeleteIsObservedAndReinsertWins) {
  Database db(BaseOptions(GetParam()));
  db.store().LoadInt(K(2), 5);
  db.Start();

  std::optional<std::int64_t> after_delete = 0;
  std::optional<std::int64_t> after_reinsert;
  EXPECT_TRUE(db.Execute([&](Txn& txn) {
                  txn.Delete(K(2));
                  after_delete = txn.GetInt(K(2));  // RYOW: own delete observed
                  txn.PutInt(K(2), 9);
                  after_reinsert = txn.GetInt(K(2));
                }).committed);
  EXPECT_FALSE(after_delete.has_value());
  ASSERT_TRUE(after_reinsert.has_value());
  EXPECT_EQ(*after_reinsert, 9);

  // The commit applied the buffered ops in issue order: the reinsert survives.
  std::optional<std::int64_t> final_value;
  EXPECT_TRUE(
      db.Execute([&](Txn& txn) { final_value = txn.GetInt(K(2)); }).committed);
  ASSERT_TRUE(final_value.has_value());
  EXPECT_EQ(*final_value, 9);
  db.Stop();
}

TEST_P(DeleteSemanticsTest, DeletedKeysAreInvisibleToScans) {
  Database db(BaseOptions(GetParam()));
  for (std::uint64_t i = 0; i < 10; ++i) {
    db.store().LoadInt(K(i), static_cast<std::int64_t>(i));
  }
  db.Start();

  EXPECT_TRUE(db.Execute([](Txn& txn) { txn.Delete(K(5)); }).committed);

  auto scan_keys = [&] {
    std::vector<std::uint64_t> keys;
    EXPECT_TRUE(db.Execute([&](Txn& txn) {
                    keys.clear();
                    txn.Scan(kTable, 0, 9, 0,
                             [&](const Key& k, const ReadResult&) {
                               keys.push_back(k.lo);
                               return true;
                             });
                  }).committed);
    return keys;
  };

  std::vector<std::uint64_t> keys = scan_keys();
  EXPECT_EQ(keys.size(), 9u);
  for (std::uint64_t k : keys) {
    EXPECT_NE(k, 5u) << "deleted key surfaced in a scan";
  }

  // Reinsert: the key re-enters the ordered index and the scan window.
  EXPECT_TRUE(db.Execute([](Txn& txn) { txn.PutInt(K(5), 50); }).committed);
  keys = scan_keys();
  EXPECT_EQ(keys.size(), 10u);
  db.Stop();
}

TEST_P(DeleteSemanticsTest, TypeMismatchAbortsTheTransactionNotTheProcess) {
  Database db(BaseOptions(GetParam()));
  db.store().LoadInt(K(3), 7);
  db.Start();

  // A write requiring a different record type on an existing key: terminal
  // per-transaction abort, never a retry loop, never a process kill.
  const TxnResult put = db.Execute([](Txn& txn) { txn.PutBytes(K(3), "oops"); });
  EXPECT_FALSE(put.committed);
  EXPECT_EQ(put.abort, TxnAbort::kTypeMismatch);

  // Same for a typed read routed at the wrong type.
  const TxnResult get = db.Execute([](Txn& txn) { txn.GetBytes(K(3)); });
  EXPECT_FALSE(get.committed);
  EXPECT_EQ(get.abort, TxnAbort::kTypeMismatch);

  // The database is unharmed: later well-typed transactions commit, and the aborts
  // are accounted.
  EXPECT_TRUE(db.Execute([](Txn& txn) { txn.Add(K(3), 1); }).committed);
  db.Stop();
  EXPECT_GE(db.CollectStats().type_mismatch_aborts, 2u);
}

TEST_P(DeleteSemanticsTest, DeleteFreesTheKeyForADifferentType) {
  Database db(BaseOptions(GetParam()));
  db.store().LoadInt(K(4), 11);
  db.Start();

  // While the int record exists (even logically absent but unreclaimed), a bytes
  // write still routes to it — delete only changes logical presence. The key becomes
  // writable at a new type once the record is physically reclaimed; here we only
  // assert the delete itself and the unchanged-type reinsert.
  EXPECT_TRUE(db.Execute([](Txn& txn) { txn.Delete(K(4)); }).committed);
  EXPECT_TRUE(db.Execute([](Txn& txn) { txn.PutInt(K(4), 12); }).committed);
  std::optional<std::int64_t> v;
  EXPECT_TRUE(db.Execute([&](Txn& txn) { v = txn.GetInt(K(4)); }).committed);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 12);
  db.Stop();
}

// Doppel-specific: deleting split data is incompatible with a split phase (absence is
// a global fact, per-core slices are not), so the transaction stashes and commits at
// the next joined phase — invisible to the caller beyond latency.
TEST(DoppelSplitDelete, DeleteOnSplitRecordStashesThenCommits) {
  Options opts = BaseOptions(Protocol::kDoppel);
  Database db(opts);
  db.store().LoadInt(K(9), 5);
  db.MarkSplitManually(K(9), OpCode::kAdd);
  db.Start();

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Execute([](Txn& txn) { txn.Add(K(9), 1); }).committed);
  }
  EXPECT_TRUE(db.Execute([](Txn& txn) { txn.Delete(K(9)); }).committed);

  std::optional<std::int64_t> got = 0;
  EXPECT_TRUE(db.Execute([&](Txn& txn) { got = txn.GetInt(K(9)); }).committed);
  EXPECT_FALSE(got.has_value()) << "deleted split record visible after commit";
  db.Stop();
}

}  // namespace
}  // namespace doppel
