// 16-byte database keys.
//
// The paper's microbenchmarks use "1M 16-byte keys"; RUBiS needs composite keys
// (table, row id) plus unique keys for freshly inserted rows. A 2x64-bit POD covers both:
// `hi` holds a table/namespace tag, `lo` the row id (or any 128-bit value).
#ifndef DOPPEL_SRC_STORE_KEY_H_
#define DOPPEL_SRC_STORE_KEY_H_

#include <cstdint>
#include <functional>

#include "src/common/hash.h"

namespace doppel {

struct Key {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  constexpr Key() = default;
  constexpr Key(std::uint64_t hi_part, std::uint64_t lo_part) : hi(hi_part), lo(lo_part) {}

  // A key in the default (0) namespace.
  static constexpr Key FromU64(std::uint64_t v) { return Key(0, v); }
  // A key in a table namespace (RUBiS tables, LIKE pages vs. users, ...).
  static constexpr Key Table(std::uint32_t table, std::uint64_t id) {
    return Key(static_cast<std::uint64_t>(table), id);
  }

  friend constexpr bool operator==(const Key& a, const Key& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend constexpr bool operator!=(const Key& a, const Key& b) { return !(a == b); }
  // Total order, used for deterministic lock ordering in commit protocols.
  friend constexpr bool operator<(const Key& a, const Key& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  std::uint64_t Hash() const { return HashCombine(Mix64(hi), lo); }
};

static_assert(sizeof(Key) == 16, "paper uses 16-byte keys");

struct KeyHash {
  std::size_t operator()(const Key& k) const { return static_cast<std::size_t>(k.Hash()); }
};

}  // namespace doppel

#endif  // DOPPEL_SRC_STORE_KEY_H_
