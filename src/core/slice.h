// Per-core slices (§4): the core-local state a split record's selected operation
// accumulates into during a split phase, and its O(1)-per-core merge into the global
// store during reconciliation (Fig. 4, Fig. 5).
//
// Requirements from §4: initialization O(1); applying an operation O(1) (O(log K) for
// top-K); the merged size independent of the number of operations applied.
#ifndef DOPPEL_SRC_CORE_SLICE_H_
#define DOPPEL_SRC_CORE_SLICE_H_

#include <cstdint>

#include "src/store/record.h"
#include "src/txn/op.h"
#include "src/txn/txn.h"

namespace doppel {

struct Slice {
  bool dirty = false;   // any committed operation this phase
  bool has = false;     // Max/Min/OPut: an operand has been absorbed
  std::int64_t acc = 0; // Add: sum; Max/Min: best; Mult: product
  std::uint32_t writes = 0;   // write sampling (§5.5)
  std::uint32_t stashes = 0;  // stash sampling (§5.5)
  OrderedTuple tuple;         // OPut champion
  TopKSet topk;               // TopKInsert local set

  Slice() : topk(1) {}

  // Prepares the slice for a split phase with the given selected operation.
  void Reset(OpCode op, std::size_t topk_k);
};

// Applies a committed split write to the executing core's slice; `arena` is the
// transaction arena holding `w`'s byte/ordered operands. No locks, no version checks:
// slices are invisible to other cores (§5.2).
void SliceApply(Slice& slice, const PendingWrite& w, const WriteArena& arena);

class OrderedIndex;

// Merges a dirty slice into the global record under the record's OCC lock, installing
// `new_tid` (Fig. 4 / Fig. 5 merge functions). When `index` is given and the merge makes
// the record logically present for the first time, the record enters the ordered index
// before the unlock (scan/phantom visibility matches the OCC commit path).
void MergeSliceToGlobal(Record* r, OpCode op, const Slice& slice, std::uint64_t new_tid,
                        OrderedIndex* index = nullptr);

}  // namespace doppel

#endif  // DOPPEL_SRC_CORE_SLICE_H_
