// Epoch-based record reclamation (PR 8): unit tests for the epoch advancement rule,
// the quiescent full-map sweep, and an end-to-end insert/delete churn workload proving
// the store no longer leaks one record per deleted key — Store::size() stays bounded
// across many reclamation epochs and everything absent is freed at shutdown.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "src/core/database.h"
#include "src/store/epoch.h"
#include "src/store/store.h"

namespace doppel {
namespace {

constexpr std::uint64_t kChurnTable = 3;

TEST(EpochManager, AdvancesOnlyAfterEveryWorkerObserves) {
  EpochManager em(2);
  EXPECT_EQ(em.global(), 1u);
  EXPECT_FALSE(em.TryAdvance()) << "advanced before anyone observed";
  em.Observe(0);
  EXPECT_FALSE(em.TryAdvance()) << "advanced with one worker unobserved";
  em.Observe(1);
  EXPECT_TRUE(em.TryAdvance());
  EXPECT_EQ(em.global(), 2u);
  // The advance invalidates every slot: nothing moves until all re-observe.
  EXPECT_FALSE(em.TryAdvance());
  em.Observe(0);
  em.Observe(1);
  EXPECT_TRUE(em.TryAdvance());
  EXPECT_EQ(em.global(), 3u);
}

TEST(EpochReclaimer, QuiescentSweepFreesAbsentRecordsOnly) {
  Store store(1 << 8);
  store.LoadInt(Key::FromU64(1), 10);  // present: must survive
  for (std::uint64_t i = 100; i < 110; ++i) {
    // Allocated but never written: logically absent, eligible for reclamation.
    store.GetOrCreate(Key::FromU64(i), RecordType::kInt64, 0);
  }
  EXPECT_EQ(store.size(), 11u);
  EXPECT_EQ(EpochReclaimer::SweepQuiescent(store), 10u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.Find(Key::FromU64(1)), nullptr);
  EXPECT_EQ(store.Find(Key::FromU64(105)), nullptr);
  // Idempotent: nothing left to free.
  EXPECT_EQ(EpochReclaimer::SweepQuiescent(store), 0u);
}

TEST(EpochReclaimer, DisabledUnderAtomicProtocolAndByOption) {
  {
    Options opts;
    opts.protocol = Protocol::kAtomic;
    Database db(opts);
    EXPECT_EQ(db.reclaimer(), nullptr)
        << "atomic writers mutate presence without locks; sweeping is unsound there";
  }
  {
    Options opts;
    opts.protocol = Protocol::kOcc;
    opts.reclaim.enabled = false;
    Database db(opts);
    EXPECT_EQ(db.reclaimer(), nullptr);
  }
}

class ChurnBoundedTest : public ::testing::TestWithParam<Protocol> {};

INSTANTIATE_TEST_SUITE_P(Protocols, ChurnBoundedTest,
                         ::testing::Values(Protocol::kOcc, Protocol::kTwoPL,
                                           Protocol::kDoppel),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

TEST_P(ChurnBoundedTest, InsertDeleteChurnDoesNotLeakRecords) {
  Options opts;
  opts.protocol = GetParam();
  opts.num_workers = 2;
  opts.phase_us = 1000;
  opts.store_capacity = 1 << 10;
  opts.reclaim.tick_period = 4;          // drive aggressively: the test wants epochs
  opts.reclaim.chunk_buckets = 1 << 20;  // whole map per sweep step
  Database db(opts);
  db.Start();
  ASSERT_NE(db.reclaimer(), nullptr);

  // Every pair touches a NEVER-reused key: pre-fix, the store grew by one record per
  // pair forever (the insert-only leak this PR closes).
  constexpr std::uint64_t kPairs = 20000;
  std::size_t peak = 0;
  for (std::uint64_t i = 0; i < kPairs; ++i) {
    const Key k = Key::Table(kChurnTable, i);
    ASSERT_TRUE(db.Execute([&](Txn& txn) {
                    txn.PutInt(k, static_cast<std::int64_t>(i));
                  }).committed);
    ASSERT_TRUE(db.Execute([&](Txn& txn) { txn.Delete(k); }).committed);
    peak = std::max(peak, db.store().size());
  }

  // The run crossed well past ten reclamation epochs and physically freed most of the
  // churned records; the live set is bounded far below the keys touched.
  EXPECT_GE(db.reclaimer()->epochs().global(), 10u);
  EXPECT_GT(db.reclaimer()->reclaimed(), kPairs / 2);
  EXPECT_LT(db.store().size(), kPairs / 2);
  EXPECT_LT(peak, kPairs / 2)
      << "store grew one record per churned key: the leak is back";

  // Deleted keys stay invisible even while their records await reclamation.
  std::optional<std::int64_t> got = 0;
  EXPECT_TRUE(db.Execute([&](Txn& txn) {
                  got = txn.GetInt(Key::Table(kChurnTable, kPairs - 1));
                }).committed);
  EXPECT_FALSE(got.has_value());

  // Shutdown drains the limbo list and sweeps once more with no readers left: every
  // absent record is gone (the Get above added one read placeholder, also swept).
  // Doppel's classifier may legitimately hold a handful of pinned records across the
  // final barrier; everything else must be freed.
  db.Stop();
  EXPECT_LE(db.store().size(), GetParam() == Protocol::kDoppel ? 4u : 0u);
}

}  // namespace
}  // namespace doppel
