#include "src/txn/txn.h"

#include <algorithm>
#include <utility>

#include "src/common/dassert.h"
#include "src/txn/apply.h"
#include "src/txn/engine.h"
#include "src/txn/signals.h"
#include "src/txn/worker.h"

namespace doppel {

const char* OpName(OpCode op) {
  switch (op) {
    case OpCode::kGet:
      return "Get";
    case OpCode::kPutInt:
      return "PutInt";
    case OpCode::kPutBytes:
      return "PutBytes";
    case OpCode::kAdd:
      return "Add";
    case OpCode::kMax:
      return "Max";
    case OpCode::kMin:
      return "Min";
    case OpCode::kMult:
      return "Mult";
    case OpCode::kOPut:
      return "OPut";
    case OpCode::kTopKInsert:
      return "TopKInsert";
  }
  return "?";
}

int Txn::worker_id() const { return worker_->id; }

Rng& Txn::rng() { return worker_->rng; }

void Txn::OverlayPending(Record* r, ReadResult* res) const {
  for (const PendingWrite& w : write_set_) {
    if (w.record == r) {
      ApplyWriteToResult(w, res);
    }
  }
}

std::optional<std::int64_t> Txn::GetInt(const Key& key) {
  if (stash_doomed_) {
    return std::nullopt;
  }
  Record* r = engine_->Route(*worker_, key, RecordType::kInt64, 0);
  DOPPEL_CHECK(r->type() == RecordType::kInt64);
  ReadResult res;
  engine_->Read(*worker_, *this, r, &res);
  OverlayPending(r, &res);
  if (!res.present) {
    return std::nullopt;
  }
  return res.i;
}

std::optional<std::string> Txn::GetBytes(const Key& key) {
  if (stash_doomed_) {
    return std::nullopt;
  }
  Record* r = engine_->Route(*worker_, key, RecordType::kBytes, 0);
  DOPPEL_CHECK(r->type() == RecordType::kBytes);
  ReadResult res;
  engine_->Read(*worker_, *this, r, &res);
  OverlayPending(r, &res);
  if (!res.present) {
    return std::nullopt;
  }
  return std::get<std::string>(std::move(res.complex));
}

std::optional<OrderedTuple> Txn::GetOrdered(const Key& key) {
  if (stash_doomed_) {
    return std::nullopt;
  }
  Record* r = engine_->Route(*worker_, key, RecordType::kOrdered, 0);
  DOPPEL_CHECK(r->type() == RecordType::kOrdered);
  ReadResult res;
  engine_->Read(*worker_, *this, r, &res);
  OverlayPending(r, &res);
  if (!res.present) {
    return std::nullopt;
  }
  return std::get<OrderedTuple>(std::move(res.complex));
}

std::optional<TopKSet> Txn::GetTopK(const Key& key, std::size_t k) {
  if (stash_doomed_) {
    return std::nullopt;
  }
  Record* r = engine_->Route(*worker_, key, RecordType::kTopK, k);
  DOPPEL_CHECK(r->type() == RecordType::kTopK);
  ReadResult res;
  engine_->Read(*worker_, *this, r, &res);
  OverlayPending(r, &res);
  if (!res.present) {
    return std::nullopt;
  }
  return std::get<TopKSet>(std::move(res.complex));
}

void Txn::IssueWrite(const Key& key, OpCode op, std::int64_t n, OrderKey order,
                     std::string payload, std::size_t topk_k) {
  if (stash_doomed_) {
    return;  // the transaction will be stashed; all effects are discarded
  }
  Record* r = engine_->Route(*worker_, key, OpRecordType(op), topk_k);
  DOPPEL_CHECK(r->type() == OpRecordType(op));
  PendingWrite w;
  w.record = r;
  w.op = op;
  w.n = n;
  w.order = order;
  w.core = static_cast<std::uint32_t>(worker_->id);
  w.payload = std::move(payload);
  engine_->Write(*worker_, *this, std::move(w));
}

void Txn::PutInt(const Key& key, std::int64_t v) {
  IssueWrite(key, OpCode::kPutInt, v, OrderKey{}, {}, 0);
}

void Txn::PutBytes(const Key& key, std::string v) {
  IssueWrite(key, OpCode::kPutBytes, 0, OrderKey{}, std::move(v), 0);
}

void Txn::Add(const Key& key, std::int64_t n) {
  IssueWrite(key, OpCode::kAdd, n, OrderKey{}, {}, 0);
}

void Txn::Max(const Key& key, std::int64_t n) {
  IssueWrite(key, OpCode::kMax, n, OrderKey{}, {}, 0);
}

void Txn::Min(const Key& key, std::int64_t n) {
  IssueWrite(key, OpCode::kMin, n, OrderKey{}, {}, 0);
}

void Txn::Mult(const Key& key, std::int64_t n) {
  IssueWrite(key, OpCode::kMult, n, OrderKey{}, {}, 0);
}

void Txn::OPut(const Key& key, OrderKey order, std::string payload) {
  IssueWrite(key, OpCode::kOPut, 0, order, std::move(payload), 0);
}

void Txn::TopKInsert(const Key& key, OrderKey order, std::string payload, std::size_t k) {
  IssueWrite(key, OpCode::kTopKInsert, 0, order, std::move(payload), k);
}

std::size_t Txn::Scan(std::uint64_t table, std::uint64_t lo, std::uint64_t hi,
                      std::size_t limit, const ScanFn& fn) {
  if (stash_doomed_) {
    return 0;  // the transaction will be stashed; execution continues without effects
  }
  // Read-your-own-writes for inserts: a write-set record that is still absent from the
  // index (a not-yet-committed insert) is invisible to the engine scan, so the window's
  // own pending keys are merged into the result stream here, in key order. Write-set
  // entries for records the engine does visit are dropped on the key match below (the
  // engine already overlays pending writes onto visited snapshots).
  std::vector<std::pair<std::uint64_t, Record*>> own;
  for (const PendingWrite& pw : write_set_) {
    const Key& k = pw.record->key();
    if (k.hi == table && k.lo >= lo && k.lo <= hi) {
      own.emplace_back(k.lo, pw.record);
    }
  }
  if (own.empty()) {
    return engine_->Scan(*worker_, *this, table, lo, hi, limit, fn);
  }
  std::sort(own.begin(), own.end());
  own.erase(std::unique(own.begin(), own.end(),
                        [](const auto& a, const auto& b) { return a.first == b.first; }),
            own.end());

  std::size_t emitted = 0;
  bool stopped = false;
  std::size_t oi = 0;
  // Emits one pending-insert row (absent base + this transaction's buffered writes);
  // returns false once the user stops or the limit is reached.
  auto emit_own = [&](Record* r) {
    ReadResult base;  // absent
    OverlayPending(r, &base);
    if (!base.present) {
      return true;  // the buffered ops never made the record logically present
    }
    ++emitted;
    if (!fn(r->key(), base) || (limit != 0 && emitted >= limit)) {
      stopped = true;
      return false;
    }
    return true;
  };
  // The limit applies to the merged stream, enforced through the wrapped callback's
  // return value. Passing it through to the engine as well keeps the engine's own
  // bounding (snapshot caps, 2PL partition-lock early-out); its internal limit check
  // can never fire first because `emitted` >= engine-visited rows at every step.
  engine_->Scan(*worker_, *this, table, lo, hi, limit,
                [&](const Key& k, const ReadResult& v) {
                  while (oi < own.size() && own[oi].first < k.lo) {
                    if (!emit_own(own[oi++].second)) {
                      return false;
                    }
                  }
                  if (oi < own.size() && own[oi].first == k.lo) {
                    ++oi;  // visited by the engine: the overlay already applied our writes
                  }
                  ++emitted;
                  if (!fn(k, v) || (limit != 0 && emitted >= limit)) {
                    stopped = true;
                    return false;
                  }
                  return true;
                });
  if (stash_doomed_) {
    return emitted;  // doomed mid-scan (split window); all effects are discarded anyway
  }
  while (!stopped && oi < own.size()) {
    if (!emit_own(own[oi++].second)) {
      break;
    }
  }
  return emitted;
}

void Txn::UserAbort() { throw UserAbortSignal{}; }

}  // namespace doppel
