// Property tests for the shared operation-application logic: the read-own-writes overlay
// (ApplyWriteToResult) must agree exactly with the committed application path
// (ApplyWriteToRecord), and op metadata must be self-consistent.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rand.h"
#include "src/txn/apply.h"

namespace doppel {
namespace {

TEST(OpMetadata, SplittableOpsAreRmwAndTyped) {
  for (int i = 0; i < kNumOps; ++i) {
    const OpCode op = static_cast<OpCode>(i);
    if (IsSplittable(op)) {
      // Every splittable op logically reads its record (the OCC contention source the
      // split phase removes).
      EXPECT_TRUE(IsReadModifyWrite(op)) << OpName(op);
    }
  }
  EXPECT_FALSE(IsSplittable(OpCode::kGet));
  EXPECT_FALSE(IsSplittable(OpCode::kPutInt));
  EXPECT_FALSE(IsSplittable(OpCode::kPutBytes));
  EXPECT_EQ(OpRecordType(OpCode::kAdd), RecordType::kInt64);
  EXPECT_EQ(OpRecordType(OpCode::kPutBytes), RecordType::kBytes);
  EXPECT_EQ(OpRecordType(OpCode::kOPut), RecordType::kOrdered);
  EXPECT_EQ(OpRecordType(OpCode::kTopKInsert), RecordType::kTopK);
}

TEST(OpMetadata, AllOpsNamed) {
  for (int i = 0; i < kNumOps; ++i) {
    EXPECT_STRNE(OpName(static_cast<OpCode>(i)), "?");
  }
}

class OverlayEquivalenceTest : public ::testing::TestWithParam<int> {};

// Random int-op sequences: applying through the overlay (uncommitted view) and through
// the record (committed view) must produce identical values and presence.
TEST_P(OverlayEquivalenceTest, IntOpsMatch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 7);
  Record record(Key::FromU64(1), RecordType::kInt64, 0);
  ReadResult overlay;  // starts absent, like the record
  overlay.present = false;

  WriteArena arena;
  const OpCode int_ops[] = {OpCode::kPutInt, OpCode::kAdd, OpCode::kMax, OpCode::kMin};
  const int n = 1 + static_cast<int>(rng.NextBounded(50));
  for (int i = 0; i < n; ++i) {
    PendingWrite w;
    w.record = &record;
    w.op = int_ops[rng.NextBounded(4)];
    w.n = static_cast<std::int64_t>(rng.NextBounded(200)) - 100;
    record.LockOcc();
    ApplyWriteToRecord(w, arena);
    record.UnlockOccSetTid(static_cast<std::uint64_t>(2 * i + 2));
    ApplyWriteToResult(w, arena, &overlay);

    const auto snap = record.ReadInt();
    ASSERT_EQ(snap.present, overlay.present);
    ASSERT_EQ(snap.value, overlay.i) << "after " << OpName(w.op) << "(" << w.n << ")";
  }
}

TEST_P(OverlayEquivalenceTest, TopKOpsMatch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 733 + 1);
  const std::size_t k = 1 + rng.NextBounded(6);
  Record record(Key::FromU64(1), RecordType::kTopK, k);
  ReadResult overlay;
  overlay.present = true;  // engine Read fills `complex` with the record's typed default
  overlay.complex = TopKSet(k);

  WriteArena arena;
  const int n = 1 + static_cast<int>(rng.NextBounded(60));
  for (int i = 0; i < n; ++i) {
    arena.Clear();
    PendingWrite w;
    w.record = &record;
    w.op = OpCode::kTopKInsert;
    w.core = static_cast<std::uint16_t>(rng.NextBounded(4));
    StoreOperand(arena, w.op,
                 OrderKey{static_cast<std::int64_t>(rng.NextBounded(30)), 0},
                 "p" + std::to_string(i), &w);
    record.LockOcc();
    ApplyWriteToRecord(w, arena);
    record.UnlockOccSetTid(static_cast<std::uint64_t>(2 * i + 2));
    ApplyWriteToResult(w, arena, &overlay);
  }
  const auto snap = record.ReadComplex();
  EXPECT_EQ(std::get<TopKSet>(snap.value), std::get<TopKSet>(overlay.complex));
}

TEST_P(OverlayEquivalenceTest, OPutMatch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 3191 + 5);
  Record record(Key::FromU64(1), RecordType::kOrdered, 0);
  ReadResult overlay;
  overlay.present = false;
  overlay.complex = OrderedTuple{};

  WriteArena arena;
  const int n = 1 + static_cast<int>(rng.NextBounded(40));
  for (int i = 0; i < n; ++i) {
    arena.Clear();
    PendingWrite w;
    w.record = &record;
    w.op = OpCode::kOPut;
    w.core = static_cast<std::uint16_t>(rng.NextBounded(4));
    StoreOperand(arena, w.op,
                 OrderKey{static_cast<std::int64_t>(rng.NextBounded(20)),
                          static_cast<std::int64_t>(rng.NextBounded(3))},
                 "v" + std::to_string(i), &w);
    record.LockOcc();
    ApplyWriteToRecord(w, arena);
    record.UnlockOccSetTid(static_cast<std::uint64_t>(2 * i + 2));
    ApplyWriteToResult(w, arena, &overlay);
  }
  const auto snap = record.ReadComplex();
  EXPECT_EQ(std::get<OrderedTuple>(snap.value), std::get<OrderedTuple>(overlay.complex));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayEquivalenceTest, ::testing::Range(0, 12));

TEST(MultOverflowDiscipline, SmallOperandsStayExact) {
  WriteArena arena;
  Record record(Key::FromU64(1), RecordType::kInt64, 0);
  PendingWrite w;
  w.record = &record;
  w.op = OpCode::kMult;
  w.n = 2;
  for (int i = 0; i < 10; ++i) {
    record.LockOcc();
    ApplyWriteToRecord(w, arena);  // absent treated as multiplicative identity 1
    record.UnlockOccSetTid(static_cast<std::uint64_t>(2 * i + 2));
  }
  EXPECT_EQ(record.ReadInt().value, 1024);
}

}  // namespace
}  // namespace doppel
