// Insert-only concurrent hash map: Key -> Record.
//
// The paper's store is "a set of key/value maps ... implemented as hash tables" with
// per-key locks. Lookups here are lock-free (chained buckets with atomic next pointers;
// records are never removed or relocated while the map lives), inserts serialize on a
// striped lock. The bucket array is sized once at construction; the paper pre-allocates
// all records, and our workloads keep load factor near 1 (inserted RUBiS rows included).
#ifndef DOPPEL_SRC_STORE_RECORD_MAP_H_
#define DOPPEL_SRC_STORE_RECORD_MAP_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/spinlock.h"
#include "src/store/key.h"
#include "src/store/record.h"

namespace doppel {

class RecordMap {
 public:
  // `capacity_hint` ~ expected number of records; bucket count is the next power of two.
  explicit RecordMap(std::size_t capacity_hint);
  ~RecordMap();
  RecordMap(const RecordMap&) = delete;
  RecordMap& operator=(const RecordMap&) = delete;

  // Lock-free lookup; nullptr if the key was never inserted.
  Record* Find(const Key& key) const;

  // Find or insert. When inserting, the record is created with `type` (and `topk_k` for
  // top-K records) and is logically absent until first written. `created` (optional)
  // reports whether an insert happened. If the key exists with a different type, the
  // existing record is returned unchanged (callers CHECK the type).
  Record* GetOrCreate(const Key& key, RecordType type, std::size_t topk_k = TopKSet::kDefaultK,
                      bool* created = nullptr);

  // Racy gauge (relaxed): exact only when no insert is in flight.
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  std::size_t bucket_count() const { return buckets_.size(); }

  // Visits every record present at call time (concurrent inserts may or may not be seen).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Bucket& b : buckets_) {
      for (Record* r = b.head.load(std::memory_order_acquire); r != nullptr;
           r = r->hash_next.load(std::memory_order_acquire)) {
        fn(*r);
      }
    }
  }

 private:
  struct Bucket {
    std::atomic<Record*> head{nullptr};
  };

  std::size_t BucketIndex(const Key& key) const { return key.Hash() & mask_; }

  std::vector<Bucket> buckets_;
  std::uint64_t mask_;
  static constexpr std::size_t kInsertStripes = 1024;
  std::unique_ptr<Spinlock[]> insert_locks_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_STORE_RECORD_MAP_H_
