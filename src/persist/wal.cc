#include "src/persist/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>

#include "src/common/dassert.h"
#include "src/common/timing.h"
#include "src/persist/crc32.h"
#include "src/persist/encoding.h"
#include "src/persist/log_reader.h"
#include "src/store/epoch.h"
#include "src/txn/apply.h"

namespace doppel {
namespace {

// Segment and entry wire format: see log_reader.h (constants and both decoders live
// there, shared with the replica tailer; this file owns only the encoders).

void PutOp(std::vector<char>& out, const PendingWrite& w, const WriteArena& arena) {
  PutRaw(out, static_cast<std::uint8_t>(w.op));
  PutRaw(out, w.record->key().hi);
  PutRaw(out, w.record->key().lo);
  PutRaw(out, w.n);
  const OrderKey order = w.OrderOf(arena);
  PutRaw(out, order.primary);
  PutRaw(out, order.secondary);
  PutRaw(out, static_cast<std::uint32_t>(w.core));
  PutRaw(out, static_cast<std::uint32_t>(w.record->topk_k()));
  const std::string_view payload = w.PayloadOf(arena);
  PutRaw(out, static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty()) {
    PutSpan(out, payload.data(), payload.size());
  }
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string dir, WalOptions opts)
    : dir_(std::move(dir)),
      opts_(opts),
      env_(opts.env != nullptr ? opts.env : IoEnv::Default()) {
  DOPPEL_CHECK(!dir_.empty());
  const int rc = env_->Mkdir(dir_.c_str(), 0755);
  if (rc != 0 && rc != -EEXIST) {
    // Cannot even create the persistence directory: latch failed from birth. The
    // database still starts (degraded, serving whatever was recoverable — here
    // nothing) instead of aborting the process.
    SpinlockGuard lock(file_mu_);
    FailLocked(-rc, IoOp::kMkdir);
  }
  Manifest::Load(dir_, &manifest_);  // fresh directory leaves the default manifest
}

WriteAheadLog::~WriteAheadLog() {
  if (logging_) {
    stop_.store(true, std::memory_order_release);
    flusher_.join();
    Flush();
  }
  if (fd_ >= 0) {
    env_->Close(fd_);
  }
}

void WriteAheadLog::SetDurabilityLostCallback(std::function<void(int, IoOp)> cb) {
  file_mu_.lock();
  on_durability_lost_ = std::move(cb);
  // If the latch already tripped (e.g. mkdir failed in the constructor, before any
  // callback could be registered), deliver the notification now so the client never
  // misses the transition.
  std::function<void(int, IoOp)> fire;
  if (failed() && on_durability_lost_ != nullptr) {
    fire = on_durability_lost_;
  }
  const int err = failed_errno();
  const IoOp op = failed_op();
  file_mu_.unlock();
  if (fire != nullptr) {
    fire(err, op);
  }
}

void WriteAheadLog::FailLocked(int err, IoOp op) {
  if (failed()) {
    return;  // the latch is one-way; only the first failure is recorded
  }
  if (fd_ >= 0) {
    env_->Close(fd_);
    fd_ = -1;
  }
  // Op first, then errno with release: failed_errno_ is the latch readers acquire on,
  // so a reader that sees it set also sees the op.
  failed_op_.store(static_cast<std::uint8_t>(op), std::memory_order_relaxed);
  failed_errno_.store(err, std::memory_order_release);
  if (on_durability_lost_ != nullptr) {
    on_durability_lost_(err, op);
  }
}

bool WriteAheadLog::WriteRetryLocked(const char* data, std::size_t n) {
  const int rc = WriteFullyRetry(env_, fd_, data, n, opts_.retry, &io_retries_);
  if (rc != 0) {
    FailLocked(-rc, IoOp::kWrite);
    return false;
  }
  return true;
}

RecoveryResult WriteAheadLog::Recover(Store* store, int replay_threads) {
  DOPPEL_CHECK(!logging_);
  // Recovery runs before the flusher or any appender exists, but it reads the
  // manifest and records the torn tail — file_mu_-guarded state — so it takes the
  // (uncontended) lock to keep the guarded contract total rather than escape it.
  SpinlockGuard file_lock(file_mu_);
  RecoveryResult result;
  if (!manifest_.checkpoint.empty()) {
    const CheckpointStats ck =
        Checkpoint::Load(dir_ + "/" + manifest_.checkpoint, store);
    result.had_checkpoint = true;
    result.checkpoint_records = ck.records;
    result.checkpoint_tables = ck.tables;
    result.max_tid = ck.max_tid;
  }

  std::vector<WalTxn> txns;
  std::vector<WalCut> cuts;
  for (std::uint64_t seg : manifest_.live_segments) {
    const std::size_t before = txns.size();
    std::uint64_t valid_prefix = 0;
    const bool clean = ParseWalSegment(dir_ + "/" + Manifest::SegmentFileName(seg),
                                       &txns, &cuts, &valid_prefix);
    if (txns.size() != before) {
      result.replayed_segments++;
    }
    if (!clean) {
      // A tear here ends the recoverable history: entries in later segments were
      // logged *after* the ones this segment lost, and replaying them over the gap
      // would produce a state matching no committed prefix. (For the last — active —
      // segment this is the ordinary crash tail.) Remember the tear so StartLogging
      // can truncate the file back to its valid prefix: leaving damaged bytes in a
      // still-live segment would make the *next* crash's recovery stop there and
      // silently drop every generation logged after it.
      if (seg == manifest_.live_segments.back() &&
          valid_prefix >= kWalSegmentHeaderBytes) {
        torn_segment_ = seg;
        torn_valid_bytes_ = valid_prefix;
        has_torn_tail_ = true;
      }
      break;
    }
  }
  // Redo in commit-TID order (TIDs are unique: worker id lives in the low bits).
  std::sort(txns.begin(), txns.end(),
            [](const WalTxn& a, const WalTxn& b) { return a.tid < b.tid; });
  result.replayed_txns = txns.size();
  for (const WalTxn& t : txns) {
    result.max_tid = std::max(result.max_tid, t.tid);
  }
  for (const WalCut& c : cuts) {
    result.max_tid = std::max(result.max_tid, c.cut_tid);
  }

  int threads = replay_threads;
  if (threads <= 0) {
    threads = static_cast<int>(
        std::min<unsigned>(4, std::max<unsigned>(1, std::thread::hardware_concurrency())));
  }
  if (txns.size() < 256) {
    threads = 1;  // not worth the fan-out
  }
  result.replay_threads = threads;

  if (threads <= 1) {
    WriteArena arena;
    for (const WalTxn& t : txns) {
      for (const WalOp& op : t.ops) {
        ApplyWalOp(store, op, t.tid, &arena);
      }
    }
  } else {
    // Parallel replay: partition ops by key stripe so each record's redo sequence is
    // applied by exactly one thread, in TID order (the txn list is already sorted).
    // Final state per record depends only on that per-record sequence, so this matches
    // serial replay; cross-record interleaving is unobservable in the recovered
    // snapshot.
    struct StripedOp {
      std::uint64_t tid;
      const WalOp* op;
    };
    std::vector<std::vector<StripedOp>> striped(static_cast<std::size_t>(threads));
    for (const WalTxn& t : txns) {
      for (const WalOp& op : t.ops) {
        const std::size_t stripe =
            static_cast<std::size_t>(op.key.Hash()) % static_cast<std::size_t>(threads);
        striped[stripe].push_back(StripedOp{t.tid, &op});
      }
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      pool.emplace_back([store, &striped, i] {
        WriteArena arena;
        for (const StripedOp& s : striped[static_cast<std::size_t>(i)]) {
          ApplyWalOp(store, *s.op, s.tid, &arena);
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  // Keys whose replayed history ends in a delete are logically absent but still
  // allocated and linked. Nothing runs against the store until Start spawns workers,
  // so free them now instead of waiting for the epoch machinery (a recovered log of
  // churn would otherwise resurrect the leak it was fixed to avoid).
  result.reclaimed_records = EpochReclaimer::SweepQuiescent(*store);
  return result;
}

bool WriteAheadLog::OpenSegmentLocked(std::uint64_t number) {
  const std::string path = dir_ + "/" + Manifest::SegmentFileName(number);
  const int fd =
      OpenRetry(env_, path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644, opts_.retry,
                &io_retries_);
  if (fd < 0) {
    FailLocked(-fd, IoOp::kOpen);
    return false;
  }
  fd_ = fd;
  std::vector<char> header;
  PutRaw(header, kWalSegmentMagic);
  PutRaw(header, kWalSegmentVersion);
  PutRaw(header, number);
  if (!WriteRetryLocked(header.data(), header.size())) {
    return false;
  }
  // Make the (possibly empty) segment durable before the manifest references it, so a
  // crash between the two never leaves the manifest naming a missing file. A failed
  // fsync is permanent by policy (io_env.h) — never retried.
  const int rc = env_->Fsync(fd_);
  if (rc != 0) {
    FailLocked(-rc, IoOp::kFsync);
    return false;
  }
  active_segment_ = number;
  active_bytes_ = kWalSegmentHeaderBytes;
  // Monotonic stats counter; readers are racy by contract.
  segments_created_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void WriteAheadLog::SweepUnreferencedLocked() {
  // Files the manifest does not name are garbage from an interrupted transition (a
  // crash between repointing the manifest and unlinking what it replaced, or a torn
  // tmp write). Only files matching our own naming are touched.
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    return;  // sweeping is best-effort garbage collection; recovery never needs it
  }
  std::vector<std::string> doomed;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    const bool wal_file =
        name.size() > 4 && name.compare(0, 4, "wal-") == 0 &&
        name.compare(name.size() - 4, 4, ".log") == 0;
    const bool ckpt_file =
        name.size() > 5 && name.compare(0, 5, "ckpt-") == 0 &&
        name.compare(name.size() - 5, 5, ".ckpt") == 0;
    const bool tmp_file =
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (!wal_file && !ckpt_file && !tmp_file) {
      continue;
    }
    bool referenced = name == manifest_.checkpoint;
    for (std::uint64_t seg : manifest_.live_segments) {
      referenced = referenced || name == Manifest::SegmentFileName(seg);
    }
    for (std::uint64_t seg : manifest_.retained_segments) {
      referenced = referenced || name == Manifest::SegmentFileName(seg);
    }
    if (!referenced) {
      doomed.push_back(name);
    }
  }
  ::closedir(d);
  for (const std::string& name : doomed) {
    env_->Unlink((dir_ + "/" + name).c_str());
  }
}

void WriteAheadLog::DiscardDurableState() {
  DOPPEL_CHECK(!logging_);
  file_mu_.lock();
  manifest_.checkpoint.clear();
  manifest_.live_segments.clear();
  manifest_.retained_segments.clear();
  has_torn_tail_ = false;
  if (const IoFailure f = Manifest::Save(dir_, manifest_, env_, &io_retries_)) {
    FailLocked(f.err, f.op);
  }
  file_mu_.unlock();
}

void WriteAheadLog::StartLogging() {
  DOPPEL_CHECK(!logging_);
  file_mu_.lock();
  if (has_torn_tail_ && !failed()) {
    // Trim the crash tear found by Recover back to its valid prefix. The file keeps
    // its durable header (manifest-listed segments are fsynced before being named), so
    // the segment now parses clean end-to-end and a future recovery — or a replica
    // tailer — reads straight through it into the segments this generation appends.
    const int rc = TruncateRetry(
        env_, (dir_ + "/" + Manifest::SegmentFileName(torn_segment_)).c_str(),
        torn_valid_bytes_, opts_.retry, &io_retries_);
    if (rc != 0) {
      // Cannot repair the tear: appending a new generation after damaged bytes would
      // poison the next recovery, so the log starts degraded instead.
      FailLocked(-rc, IoOp::kTruncate);
    } else {
      has_torn_tail_ = false;
    }
  }
  if (!failed()) {
    SweepUnreferencedLocked();
    const std::uint64_t seg = manifest_.next_segment;
    if (OpenSegmentLocked(seg)) {
      manifest_.live_segments.push_back(seg);
      manifest_.next_segment = seg + 1;
      if (const IoFailure f = Manifest::Save(dir_, manifest_, env_, &io_retries_)) {
        // The in-memory manifest now references a segment the on-disk one never
        // will; harmless — nothing more is saved after the latch trips, and
        // recovery trusts only the on-disk manifest.
        FailLocked(f.err, f.op);
      }
    }
  }
  file_mu_.unlock();
  // The flusher starts even when degraded: it idles on fd_ < 0, and the lifecycle
  // (Stop/join) stays uniform for the caller.
  logging_ = true;
  flusher_ = std::thread([this] { FlusherMain(); });
}

void WriteAheadLog::Append(int worker_id, std::uint64_t commit_tid,
                           const std::vector<PendingWrite>& writes,
                           const std::vector<PendingWrite>& split_writes,
                           const WriteArena& arena) {
  const std::size_t n_ops = writes.size() + split_writes.size();
  if (n_ops == 0) {
    return;  // read-only transactions need no redo entry
  }
  if (failed()) {
    return;  // durability lost: buffering more bytes would only grow memory forever
  }
  // The entry header carries the op count as u16; silently truncating it would make a
  // CRC-valid entry that replays only a subset of a committed transaction's writes.
  DOPPEL_CHECK(n_ops <= 0xffff);
  Buffer& buf = buffers_[static_cast<std::size_t>(worker_id) % kBuffers];
  buf.mu.lock();
  // Encode straight into the batch buffer: reserve the length/CRC header, lay the entry
  // body down after it, then backpatch the header from the in-place bytes. One encode,
  // zero staging copies per logged commit.
  const std::size_t header_at = buf.bytes.size();
  PutRaw(buf.bytes, std::uint32_t{0});  // payload_len, backpatched
  PutRaw(buf.bytes, std::uint32_t{0});  // payload_crc, backpatched
  const std::size_t body_at = buf.bytes.size();
  PutRaw(buf.bytes, static_cast<std::uint8_t>(WalEntryType::kTxn));
  PutRaw(buf.bytes, commit_tid);
  PutRaw(buf.bytes, static_cast<std::uint16_t>(n_ops));
  for (const PendingWrite& w : writes) {
    PutOp(buf.bytes, w, arena);
  }
  for (const PendingWrite& w : split_writes) {
    PutOp(buf.bytes, w, arena);
  }
  const std::uint32_t len = static_cast<std::uint32_t>(buf.bytes.size() - body_at);
  const std::uint32_t crc = Crc32(buf.bytes.data() + body_at, len);
  std::memcpy(buf.bytes.data() + header_at, &len, sizeof(len));
  std::memcpy(buf.bytes.data() + header_at + sizeof(len), &crc, sizeof(crc));
  buf.mu.unlock();
  // Monotonic stats counter; readers are racy by contract.
  appended_.fetch_add(1, std::memory_order_relaxed);
}

void WriteAheadLog::FlushLocked() {
  if (fd_ < 0) {
    return;  // degraded: buffered bytes are never written (Append stopped adding more)
  }
  // Steal each buffer with an O(1) swap instead of copying under its spinlock: a
  // worker appending into a buffer whose accumulated batch is being gathered must not
  // stall behind a multi-megabyte memcpy. The buffer gets last cycle's recycled
  // vector (empty, grown) in exchange, so appends keep their amortized capacity.
  struct TakenChunk {
    Buffer* buf;
    std::vector<char> bytes;
  };
  std::vector<TakenChunk> taken;
  for (Buffer& buf : buffers_) {
    buf.mu.lock();
    if (!buf.bytes.empty()) {
      taken.push_back(TakenChunk{&buf, {}});
      taken.back().bytes.swap(buf.bytes);
      buf.bytes.swap(buf.spare);
    }
    buf.mu.unlock();
  }
  if (taken.empty()) {
    return;
  }
  std::size_t total = 0;
  bool ok = true;
  for (TakenChunk& chunk : taken) {
    // A mid-batch permanent failure latches (fd closed); remaining chunks are
    // dropped — a partial tail write is the same torn tail recovery already trims.
    if (ok) {
      ok = WriteRetryLocked(chunk.bytes.data(), chunk.bytes.size());
      if (ok) {
        total += chunk.bytes.size();
      }
    }
    // Return the grown vector as the buffer's next spare.
    chunk.bytes.clear();
    chunk.buf->mu.lock();
    chunk.buf->spare.swap(chunk.bytes);
    chunk.buf->mu.unlock();
  }
  if (ok && opts_.fsync) {
    // A failed fsync is permanent by policy (io_env.h) — never retried.
    const int rc = env_->Fsync(fd_);
    if (rc != 0) {
      FailLocked(-rc, IoOp::kFsync);
      ok = false;
    }
  }
  if (!ok) {
    return;
  }
  active_bytes_ += total;
  // Monotonic stats counters; readers are racy by contract.
  flushes_.fetch_add(1, std::memory_order_relaxed);
  flushed_bytes_.fetch_add(total, std::memory_order_relaxed);
  if (active_bytes_ >= opts_.segment_bytes) {
    RotateLocked();
  }
}

bool WriteAheadLog::RotateLocked() {
  // Seal the active segment. Its bytes' durability follows the fsync policy: with
  // wal_fsync off, sealed data still rides on OS writeback (asynchronous durability).
  if (opts_.fsync) {
    const int frc = env_->Fsync(fd_);
    if (frc != 0) {
      FailLocked(-frc, IoOp::kFsync);
      return false;
    }
  }
  env_->Close(fd_);
  fd_ = -1;
  const std::uint64_t seg = manifest_.next_segment;
  if (!OpenSegmentLocked(seg)) {
    return false;
  }
  manifest_.live_segments.push_back(seg);
  manifest_.next_segment = seg + 1;
  if (const IoFailure f = Manifest::Save(dir_, manifest_, env_, &io_retries_)) {
    FailLocked(f.err, f.op);
    return false;
  }
  return true;
}

void WriteAheadLog::Flush() {
  file_mu_.lock();
  if (fd_ >= 0) {
    FlushLocked();
  }
  file_mu_.unlock();
}

void WriteAheadLog::AppendCut(std::uint64_t cut_tid) {
  file_mu_.lock();
  if (fd_ < 0) {
    file_mu_.unlock();
    return;
  }
  // Workers are quiesced (caller's precondition), so every pre-barrier commit is fully
  // encoded in the buffers; flushing first makes the cut physically follow all of them
  // in the segment. A concurrent tailer then sees a log prefix ending at this cut that
  // is exactly the barrier's transaction-consistent state.
  FlushLocked();
  if (fd_ < 0) {
    file_mu_.unlock();
    return;  // the flush latched a failure; the cut has nothing durable to align
  }
  std::vector<char> entry;
  PutRaw(entry, std::uint32_t{0});  // payload_len, backpatched
  PutRaw(entry, std::uint32_t{0});  // payload_crc, backpatched
  const std::size_t body_at = entry.size();
  PutRaw(entry, static_cast<std::uint8_t>(WalEntryType::kCut));
  PutRaw(entry, cut_tid);
  PutRaw(entry, NowNanos());
  const std::uint32_t len = static_cast<std::uint32_t>(entry.size() - body_at);
  const std::uint32_t crc = Crc32(entry.data() + body_at, len);
  std::memcpy(entry.data(), &len, sizeof(len));
  std::memcpy(entry.data() + sizeof(len), &crc, sizeof(crc));
  if (!WriteRetryLocked(entry.data(), entry.size())) {
    file_mu_.unlock();
    return;
  }
  if (opts_.fsync) {
    // A failed fsync is permanent by policy (io_env.h) — never retried.
    const int rc = env_->Fsync(fd_);
    if (rc != 0) {
      FailLocked(-rc, IoOp::kFsync);
      file_mu_.unlock();
      return;
    }
  }
  active_bytes_ += entry.size();
  // Monotonic stats counters; readers are racy by contract.
  flushed_bytes_.fetch_add(entry.size(), std::memory_order_relaxed);
  cuts_.fetch_add(1, std::memory_order_relaxed);
  file_mu_.unlock();
}

int WriteAheadLog::AcquireRetentionLease() {
  file_mu_.lock();
  const int id = next_lease_id_++;
  // A fresh lease needs the oldest live segment: the current checkpoint's redo tail
  // starts there, and a bootstrapping replica ships forward from that point.
  const std::uint64_t first =
      manifest_.live_segments.empty() ? manifest_.next_segment
                                      : manifest_.live_segments.front();
  leases_.push_back(Lease{id, first});
  lease_count_.store(static_cast<int>(leases_.size()), std::memory_order_release);
  file_mu_.unlock();
  return id;
}

void WriteAheadLog::AdvanceRetentionLease(int lease_id,
                                          std::uint64_t next_needed_segment) {
  file_mu_.lock();
  for (Lease& l : leases_) {
    if (l.id == lease_id) {
      l.next_needed_segment = std::max(l.next_needed_segment, next_needed_segment);
    }
  }
  PruneRetainedLocked();
  file_mu_.unlock();
}

void WriteAheadLog::ReleaseRetentionLease(int lease_id) {
  file_mu_.lock();
  for (std::size_t i = 0; i < leases_.size(); ++i) {
    if (leases_[i].id == lease_id) {
      leases_.erase(leases_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  lease_count_.store(static_cast<int>(leases_.size()), std::memory_order_release);
  PruneRetainedLocked();
  file_mu_.unlock();
}

void WriteAheadLog::PruneRetainedLocked() {
  if (manifest_.retained_segments.empty()) {
    return;
  }
  std::uint64_t min_needed = ~std::uint64_t{0};
  for (const Lease& l : leases_) {
    min_needed = std::min(min_needed, l.next_needed_segment);
  }
  std::vector<std::uint64_t> keep;
  std::vector<std::uint64_t> doomed;
  for (std::uint64_t seg : manifest_.retained_segments) {
    (seg >= min_needed ? keep : doomed).push_back(seg);
  }
  if (doomed.empty()) {
    return;
  }
  manifest_.retained_segments = std::move(keep);
  // Repoint the manifest before unlinking, same ordering as every other transition:
  // a crash in between leaves unreferenced files for the sweep, never a manifest
  // naming missing ones. If the save fails, the on-disk manifest still references the
  // doomed segments — so they must NOT be unlinked.
  if (const IoFailure f = Manifest::Save(dir_, manifest_, env_, &io_retries_)) {
    FailLocked(f.err, f.op);
    return;
  }
  for (std::uint64_t seg : doomed) {
    env_->Unlink((dir_ + "/" + Manifest::SegmentFileName(seg)).c_str());
  }
}

CheckpointStats WriteAheadLog::WriteCheckpoint(const Store& store) {
  DOPPEL_CHECK(logging_);
  file_mu_.lock();
  // Degraded log: there is no durable consistency point to seal a checkpoint against.
  if (fd_ < 0) {
    CheckpointStats stats;
    stats.failure = IoFailure{failed_errno(), failed_op()};
    // Stats counter: racy reads are the contract.
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    file_mu_.unlock();
    return stats;
  }
  // Everything committed is in the buffers (workers are quiesced past their last
  // commit); flush it, then seal so the sealed set is exactly the checkpoint's past.
  FlushLocked();
  if (fd_ >= 0) {
    RotateLocked();
  }
  if (fd_ < 0) {
    // The flush or seal latched a permanent WAL failure mid-checkpoint.
    CheckpointStats stats;
    stats.failure = IoFailure{failed_errno(), failed_op()};
    // Stats counter: racy reads are the contract.
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    file_mu_.unlock();
    return stats;
  }
  std::vector<std::uint64_t> sealed = manifest_.live_segments;
  sealed.pop_back();  // the freshly-opened active segment stays live

  const std::string ckpt_name = Manifest::CheckpointFileName(active_segment_);
  const CheckpointStats stats =
      Checkpoint::Write(dir_, ckpt_name, store, env_, &io_retries_);
  if (!stats.ok()) {
    // Checkpoint failure is NOT a WAL failure: the tmp file was removed, the MANIFEST
    // never saw the new name, and the old checkpoint stays live, so logging continues
    // unharmed. The rotation above is benign — the extra sealed segment stays in
    // live_segments and replays fine. The coordinator retries at a later barrier.
    // Stats counter: racy reads are the contract.
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    file_mu_.unlock();
    return stats;
  }

  // Sealed segments a retention lease still needs move to the retained set (kept on
  // disk for replica shipping, never replayed — the checkpoint subsumes them); the
  // rest are deleted below. Retained numbers stay ascending: sealed segments are
  // always newer than anything already retained.
  std::uint64_t min_needed = ~std::uint64_t{0};
  for (const Lease& l : leases_) {
    min_needed = std::min(min_needed, l.next_needed_segment);
  }
  std::vector<std::uint64_t> doomed;
  for (std::uint64_t seg : sealed) {
    if (!leases_.empty() && seg >= min_needed) {
      manifest_.retained_segments.push_back(seg);
    } else {
      doomed.push_back(seg);
    }
  }

  const std::string old_ckpt = manifest_.checkpoint;
  manifest_.checkpoint = ckpt_name;
  manifest_.live_segments = {active_segment_};
  if (const IoFailure f = Manifest::Save(dir_, manifest_, env_, &io_retries_)) {
    // The new checkpoint file exists but no manifest names it; the on-disk manifest
    // still references every old segment, so nothing may be unlinked. Escalate: a log
    // whose manifest cannot be replaced cannot make further durable transitions.
    FailLocked(f.err, f.op);
    CheckpointStats failed_stats = stats;
    failed_stats.failure = f;
    // Stats counter: racy reads are the contract.
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    file_mu_.unlock();
    return failed_stats;
  }

  // Only now are the dropped segments (and the previous checkpoint) unreferenced by
  // any manifest a crash could resurrect.
  for (std::uint64_t seg : doomed) {
    env_->Unlink((dir_ + "/" + Manifest::SegmentFileName(seg)).c_str());
  }
  if (!old_ckpt.empty()) {
    env_->Unlink((dir_ + "/" + old_ckpt).c_str());
  }
  // Monotonic stats counter; readers are racy by contract.
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  file_mu_.unlock();
  return stats;
}

void WriteAheadLog::FlusherMain() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(opts_.flush_interval_us));
    // try_lock, not lock: a checkpoint holds file_mu_ for a full store serialization
    // plus fsyncs, and a background cadence tick must skip that window instead of
    // burning a core spinning on it. The buffers just carry over to the next tick.
    if (file_mu_.try_lock()) {
      if (fd_ >= 0) {
        FlushLocked();
      }
      file_mu_.unlock();
    }
  }
}

}  // namespace doppel
