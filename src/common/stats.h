// Small statistics accumulators used by benchmark reporting.
#ifndef DOPPEL_SRC_COMMON_STATS_H_
#define DOPPEL_SRC_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace doppel {

// Online mean/min/max over doubles (throughput across repeated runs: "each point is the
// mean of three consecutive 20-second runs, with error bars showing the min and max").
class RunStats {
 public:
  void Add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Pearson correlation / least squares slope for trend assertions in tests.
double LeastSquaresSlope(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_STATS_H_
