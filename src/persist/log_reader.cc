#include "src/persist/log_reader.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "src/common/dassert.h"
#include "src/persist/crc32.h"
#include "src/persist/encoding.h"
#include "src/txn/apply.h"

namespace doppel {
namespace {

constexpr std::size_t kReadChunk = 64 << 10;

bool ParseTxnBody(ByteCursor* entry, WalTxn* txn) {
  std::uint16_t n_ops = 0;
  if (!entry->Read(&txn->tid) || !entry->Read(&n_ops)) {
    return false;
  }
  txn->ops.clear();
  txn->ops.reserve(n_ops);
  for (std::uint16_t i = 0; i < n_ops; ++i) {
    WalOp op;
    std::uint8_t code = 0;
    const bool ok = entry->Read(&code) && entry->Read(&op.key.hi) &&
                    entry->Read(&op.key.lo) && entry->Read(&op.n) &&
                    entry->Read(&op.order.primary) && entry->Read(&op.order.secondary) &&
                    entry->Read(&op.core) && entry->Read(&op.topk_k) &&
                    entry->ReadString(&op.payload);
    if (!ok) {
      return false;
    }
    if (code >= kNumOps) {
      return false;  // op code from a future format (or corruption the CRC missed)
    }
    op.op = static_cast<OpCode>(code);
    txn->ops.push_back(std::move(op));
  }
  // Trailing bytes the op count does not account for mean the entry does not
  // faithfully describe one committed transaction.
  return entry->AtEnd();
}

}  // namespace

SegmentTailer::SegmentTailer(std::string path, IoEnv* env)
    : path_(std::move(path)), env_(env != nullptr ? env : IoEnv::Default()) {}

SegmentTailer::~SegmentTailer() {
  if (fd_ >= 0) {
    env_->Close(fd_);
  }
}

bool SegmentTailer::EnsureOpen() {
  if (fd_ >= 0) {
    return true;
  }
  const int fd = env_->Open(path_.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    return false;
  }
  fd_ = fd;
  return true;
}

std::size_t SegmentTailer::FillTo(std::size_t need) {
  std::size_t avail = buf_.size() - pos_;
  if (avail >= need) {
    return avail;
  }
  // Compact: drop consumed bytes so the buffer never grows past one entry + slack.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  while (buf_.size() < need) {
    const std::size_t want = std::max(need - buf_.size(), kReadChunk);
    const std::size_t old = buf_.size();
    buf_.resize(old + want);
    const long n =
        env_->Pread(fd_, buf_.data() + old, want, consumed_ + old);
    if (n == -EINTR) {
      buf_.resize(old);
      ++read_retries_;  // interrupted: reissue immediately, no state changed
      continue;
    }
    if (n < 0) {
      buf_.resize(old);
      // Real read error (EIO, ...): surface what is buffered and let the caller see
      // the errno — kNeedMore alone is indistinguishable from "no new bytes yet",
      // which would make a sick disk look like an idle primary.
      last_read_errno_ = static_cast<int>(-n);
      break;
    }
    if (n == 0) {
      buf_.resize(old);
      break;  // EOF (for now): report what we have
    }
    buf_.resize(old + static_cast<std::size_t>(n));
  }
  return buf_.size() - pos_;
}

void SegmentTailer::Consume(std::size_t n) {
  pos_ += n;
  consumed_ += n;
}

void SegmentTailer::ResetTail() {
  buf_.clear();
  pos_ = 0;
}

SegmentTailer::Status SegmentTailer::Next(WalEntry* out) {
  if (!EnsureOpen()) {
    return Status::kNeedMore;  // the file may simply not exist yet
  }
  if (!header_done_) {
    if (FillTo(kWalSegmentHeaderBytes) < kWalSegmentHeaderBytes) {
      return Status::kNeedMore;
    }
    ByteCursor c(buf_.data() + pos_, kWalSegmentHeaderBytes);
    std::uint32_t magic = 0;
    c.Read(&magic);
    c.Read(&version_);
    c.Read(&segment_number_);
    if (magic != kWalSegmentMagic ||
        (version_ != 1 && version_ != 2 && version_ != kWalSegmentVersion)) {
      return Status::kCorrupt;
    }
    Consume(kWalSegmentHeaderBytes);
    header_done_ = true;
  }
  constexpr std::size_t kEntryHeader = sizeof(std::uint32_t) * 2;
  if (FillTo(kEntryHeader) < kEntryHeader) {
    return Status::kNeedMore;
  }
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  std::memcpy(&len, buf_.data() + pos_, sizeof(len));
  std::memcpy(&crc, buf_.data() + pos_ + sizeof(len), sizeof(crc));
  if (len > kWalMaxEntryBytes) {
    return Status::kCorrupt;  // insane length prefix: tear or corruption
  }
  if (FillTo(kEntryHeader + len) < kEntryHeader + len) {
    return Status::kNeedMore;  // body not fully flushed yet
  }
  const char* body = buf_.data() + pos_ + kEntryHeader;
  if (Crc32(body, len) != crc) {
    // The body is fully present, and appends only ever extend the file, so more bytes
    // cannot make this entry valid: it is a torn batch (crash) or corruption.
    return Status::kCorrupt;
  }
  ByteCursor entry(body, len);
  WalEntryType type = WalEntryType::kTxn;
  if (version_ >= 2) {
    std::uint8_t t = 0;
    if (!entry.Read(&t) || t > static_cast<std::uint8_t>(WalEntryType::kCut)) {
      return Status::kCorrupt;
    }
    type = static_cast<WalEntryType>(t);
  }
  out->type = type;
  if (type == WalEntryType::kTxn) {
    if (!ParseTxnBody(&entry, &out->txn)) {
      return Status::kCorrupt;
    }
  } else {
    if (!entry.Read(&out->cut.cut_tid) || !entry.Read(&out->cut.wall_ns) ||
        !entry.AtEnd()) {
      return Status::kCorrupt;
    }
  }
  Consume(kEntryHeader + len);
  ++entries_;
  return Status::kEntry;
}

bool ParseWalSegment(const std::string& path, std::vector<WalTxn>* txns,
                     std::vector<WalCut>* cuts, std::uint64_t* valid_prefix_bytes) {
  SegmentTailer tailer(path);
  WalEntry e;
  SegmentTailer::Status st;
  while ((st = tailer.Next(&e)) == SegmentTailer::Status::kEntry) {
    if (e.type == WalEntryType::kTxn) {
      txns->push_back(std::move(e.txn));
    } else if (cuts != nullptr) {
      cuts->push_back(e.cut);
    }
  }
  if (valid_prefix_bytes != nullptr) {
    *valid_prefix_bytes = tailer.consumed_bytes();
  }
  if (!tailer.opened() || st == SegmentTailer::Status::kCorrupt) {
    return false;
  }
  // kNeedMore at a byte-exact end of file is a clean parse; leftover bytes are a torn
  // tail (the normal state of the segment that was active at a crash).
  struct stat sb;
  if (::stat(path.c_str(), &sb) != 0) {
    return false;
  }
  return static_cast<std::uint64_t>(sb.st_size) == tailer.consumed_bytes();
}

void ApplyWalOp(Store* store, const WalOp& op, std::uint64_t tid, WriteArena* arena) {
  const std::size_t topk_k = op.topk_k == 0 ? TopKSet::kDefaultK : op.topk_k;
  // kDelete adapts to whatever type the key has (its OpRecordType is just the
  // placeholder fallback); other ops must match.
  Record* r = store->GetOrCreateUnchecked(op.key, OpRecordType(op.op), topk_k);
  if (op.op != OpCode::kDelete && r->type() != OpRecordType(op.op)) {
    // Deleted, reclaimed, then reinserted under a different type: live execution
    // routed to a fresh record after the physical reclaim. Replay has no sweeper, so
    // it mirrors the reclaim by replacing the record in place. A well-formed log only
    // flips a key's type across a delete, so the old record must be absent — anything
    // else means the log does not describe a legal history.
    DOPPEL_CHECK(!r->PresentLocked());
    r = store->ReplaceAbsent(op.key, OpRecordType(op.op), topk_k);
  }
  PendingWrite w;
  w.record = r;
  w.op = op.op;
  w.n = op.n;
  w.core = static_cast<std::uint16_t>(op.core);
  arena->Clear();
  StoreOperand(*arena, op.op, op.order, op.payload, &w);
  r->LockOcc();
  const bool was_present = r->PresentLocked();
  ApplyWriteToRecord(w, *arena);
  if (op.op == OpCode::kDelete) {
    // Symmetric index maintenance: a replayed delete takes the key out of the ordered
    // index exactly like a live commit does.
    if (was_present) {
      store->index().Remove(op.key);
    }
  } else if (!was_present) {
    store->index().Insert(op.key, r);
  }
  r->UnlockOccSetTid(tid);
}

}  // namespace doppel
