#include "src/txn/atomic_engine.h"

#include <utility>

namespace doppel {

Record* AtomicEngine::Route(Worker& w, const Key& key, RecordType type,
                            std::size_t topk_k) {
  (void)w;
  return store_.GetOrCreate(key, type, topk_k == 0 ? TopKSet::kDefaultK : topk_k);
}

void AtomicEngine::Read(Worker& w, Txn& txn, Record* r, ReadResult* out) {
  (void)w;
  (void)txn;
  if (r->type() == RecordType::kInt64) {
    const Record::IntSnapshot s = r->ReadInt();
    out->present = s.present;
    out->i = s.value;
    return;
  }
  Record::ComplexSnapshot s = r->ReadComplex();
  out->present = s.present;
  out->complex = std::move(s.value);
}

void AtomicEngine::Write(Worker& w, Txn& txn, PendingWrite&& pw) {
  (void)w;
  (void)txn;
  Record* r = pw.record;
  switch (pw.op) {
    case OpCode::kAdd:
      r->AtomicAdd(pw.n);
      break;
    case OpCode::kMax:
      r->AtomicMax(pw.n);
      break;
    case OpCode::kMin:
      r->AtomicMin(pw.n);
      break;
    case OpCode::kMult:
      r->AtomicMult(pw.n);
      break;
    case OpCode::kPutInt:
      r->SetInt(pw.n);
      break;
    case OpCode::kPutBytes:
      r->MutateComplex(
          [&](ComplexValue& cv) { std::get<std::string>(cv) = std::move(pw.payload); });
      break;
    case OpCode::kOPut:
      r->MutateComplex([&](ComplexValue& cv) {
        auto& cur = std::get<OrderedTuple>(cv);
        OrderedTuple next{pw.order, pw.core, std::move(pw.payload)};
        // A never-written OrderedTuple holds order -inf, so the first put wins.
        if (OrderedTuple::Wins(next, cur)) {
          cur = std::move(next);
        }
      });
      break;
    case OpCode::kTopKInsert:
      r->MutateComplex([&](ComplexValue& cv) {
        std::get<TopKSet>(cv).Insert(OrderedTuple{pw.order, pw.core, std::move(pw.payload)});
      });
      break;
    case OpCode::kGet:
      break;
  }
}

TxnStatus AtomicEngine::Commit(Worker& w, Txn& txn) {
  (void)w;
  (void)txn;
  return TxnStatus::kCommitted;
}

void AtomicEngine::Abort(Worker& w, Txn& txn) {
  (void)w;
  (void)txn;
}

}  // namespace doppel
