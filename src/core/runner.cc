#include "src/core/runner.h"

#include <algorithm>
#include <utility>

#include "src/common/dassert.h"
#include "src/common/timing.h"

namespace doppel {
namespace {

// Delivers the terminal outcome of a submitted transaction: the POD completion slot
// first, then the ticket (handle waiters, OnComplete callback, drain counter). Runs on
// the worker thread that finished the transaction. `abort` == kNone means committed.
void CompleteSubmission(PendingTxn& pt, TxnAbort abort) {
  const bool committed = abort == TxnAbort::kNone;
  const TxnResult result{committed, pt.attempts + 1, abort};
  if (pt.req.on_complete != nullptr) {
    pt.req.on_complete(result, pt.req.on_complete_ctx);
  }
  if (!pt.ticket) {
    return;
  }
  SubmitTicket& t = *pt.ticket;
  // attempts rides on the state release-store below: waiters acquire state first.
  t.attempts.store(result.attempts, std::memory_order_relaxed);
  int state = 2;  // kUser (also the stopped-before-running terminal)
  if (committed) {
    state = 1;
  } else if (abort == TxnAbort::kTypeMismatch) {
    state = 3;
  } else if (abort == TxnAbort::kDurabilityLost) {
    state = 4;
  }
  t.state.store(state, std::memory_order_release);
  t.state.notify_all();
  std::function<void(const TxnResult&)> cb;
  {
    t.cb_mu.lock();
    t.finished = true;
    cb = std::move(t.callback);
    t.callback = nullptr;
    t.cb_mu.unlock();
  }
  if (cb) {
    cb(result);
  }
  if (t.inflight != nullptr) {
    // Last: once this hits zero Database::Stop may tear the workers down.
    t.inflight->fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace

void AbandonPendingTxn(PendingTxn&& pt) { CompleteSubmission(pt, TxnAbort::kUser); }

void ScheduleRetry(Worker& w, const RunnerConfig& cfg, PendingTxn&& pt) {
  pt.attempts++;
  const std::uint32_t shift = std::min(pt.attempts, 20u);
  std::uint64_t delay = cfg.backoff_min_ns << shift;
  delay = std::min(delay, cfg.backoff_max_ns);
  // +-25% jitter decorrelates retries of transactions aborted by the same conflict.
  const std::uint64_t jitter = delay / 2;
  delay = delay - delay / 4 + (jitter == 0 ? 0 : w.rng.NextBounded(jitter));
  const std::uint64_t now = NowNanos();
  w.clock_ns = now;  // free refresh for the worker loop's batched timestamp
  w.retry_heap.push_back(RetryItem{now + delay, std::move(pt)});
  std::push_heap(w.retry_heap.begin(), w.retry_heap.end());
}

RunOutcome RunPendingTxn(Engine& engine, const RunnerConfig& cfg, Worker& w,
                         PendingTxn&& pt) {
  Txn& txn = w.txn;
  txn.Reset(&engine, &w);
  try {
    if (pt.req.proc != nullptr) {
      pt.req.proc(txn, pt.req.args);
    } else {
      pt.ticket->fn(txn);
    }
  } catch (const StashSignal& s) {
    engine.Abort(w, txn);
    engine.OnStash(w, s);
    w.stash_events++;
    w.stash.push_back(std::move(pt));
    // Rare exit: refresh the clock cache so the next batched source stamp does not
    // silently include this transaction's execution time.
    w.clock_ns = NowNanos();
    return RunOutcome::kStashed;
  } catch (const ConflictSignal& c) {
    engine.Abort(w, txn);
    txn.conflict_record = c.record;
    txn.conflict_op = c.op;
    engine.OnConflict(w, txn);
    w.conflicts++;
    ScheduleRetry(w, cfg, std::move(pt));
    return RunOutcome::kRetryScheduled;
  } catch (const UserAbortSignal&) {
    engine.Abort(w, txn);
    w.user_aborts++;
    CompleteSubmission(pt, TxnAbort::kUser);
    w.clock_ns = NowNanos();  // rare exit: keep the batched source stamp honest
    return RunOutcome::kUserAborted;
  } catch (const TypeMismatchSignal&) {
    // The key exists with a different record type. Deterministic: a retry would hit the
    // same record again, so this is terminal like a user abort, with its own result
    // code so callers can tell a schema bug from an intentional rollback.
    engine.Abort(w, txn);
    w.type_mismatch_aborts++;
    CompleteSubmission(pt, TxnAbort::kTypeMismatch);
    w.clock_ns = NowNanos();  // rare exit: keep the batched source stamp honest
    return RunOutcome::kTypeMismatchAborted;
  }

  if (txn.stash_doomed()) {
    // Doomed by a split-data access (poison path, no exception): stash for the next
    // joined phase.
    engine.Abort(w, txn);
    engine.OnStash(w, StashSignal{txn.stash_record(), txn.stash_op()});
    w.stash_events++;
    w.stash.push_back(std::move(pt));
    w.clock_ns = NowNanos();  // rare exit: keep the batched source stamp honest
    return RunOutcome::kStashed;
  }

  if (cfg.degraded != nullptr && cfg.degraded->load(std::memory_order_acquire) &&
      (!txn.write_set().empty() || !txn.split_writes().empty())) {
    // Read-only degraded mode (permanent WAL failure): committing these writes would
    // drop their redo entries on the floor, so the transaction terminates with the
    // durability-lost abort instead. Reads (empty write sets) fall through and keep
    // committing. For the Atomic baseline engine — which applies writes at Write()
    // time, not commit — the gate is advisory: the abort still truthfully reports that
    // durability was lost, and new submissions bounce at the door (kReadOnly).
    engine.Abort(w, txn);
    w.durability_aborts++;
    CompleteSubmission(pt, TxnAbort::kDurabilityLost);
    w.clock_ns = NowNanos();  // rare exit: keep the batched source stamp honest
    return RunOutcome::kDurabilityAborted;
  }

  const TxnStatus status = engine.Commit(w, txn);
  if (status == TxnStatus::kConflict) {
    engine.OnConflict(w, txn);
    w.conflicts++;
    ScheduleRetry(w, cfg, std::move(pt));
    return RunOutcome::kRetryScheduled;
  }

  if (cfg.wal != nullptr) {
    // w.last_tid is the TID this commit generated (Silo TID generation is per-worker).
    cfg.wal->Append(w.id, w.last_tid, txn.write_set(), txn.split_writes(), txn.arena());
  }
  w.committed++;
  if (w.LoadPhase() == Phase::kSplit) {
    w.committed_split_phase++;
  }
  w.shared_commits.Add(1);
  const std::uint8_t tag = pt.req.args.tag;
  // committed_by_tag / latency_by_tag are kNumTags-sized; an out-of-range workload tag
  // would silently corrupt adjacent counters, so fail fast even in release builds.
  DOPPEL_CHECK(tag < kNumTags);
  w.committed_by_tag[tag]++;
  const std::uint64_t submit_ns = pt.req.args.submit_ns;
  if (submit_ns != 0) {
    // The commit-side clock read doubles as the worker loop's next source-transaction
    // stamp (w.clock_ns), so a closed-loop worker pays one clock_gettime per
    // transaction, not two.
    const std::uint64_t end_ns = NowNanos();
    w.clock_ns = end_ns;
    // Floor at 1ns: a commit inside one clock tick must still record a nonzero sample
    // (report.cc treats latency 0 as a missing submit_ns stamp).
    const std::uint64_t latency = end_ns - submit_ns;
    w.latency_by_tag[tag].Record(latency == 0 ? 1 : latency);
  }
  CompleteSubmission(pt, TxnAbort::kNone);
  return RunOutcome::kCommitted;
}

}  // namespace doppel
