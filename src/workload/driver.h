// Closed-loop benchmark driver (§8.1): runs a workload against a Database for a fixed
// duration and reports throughput (committed transactions / elapsed) and latency stats.
// "Each point is the mean of three consecutive runs, with error bars showing min and max."
#ifndef DOPPEL_SRC_WORKLOAD_DRIVER_H_
#define DOPPEL_SRC_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <vector>

#include "src/common/stats.h"
#include "src/core/database.h"

namespace doppel {

struct RunMetrics {
  double seconds = 0.0;
  std::uint64_t committed = 0;
  double throughput = 0.0;  // txns/sec
  Database::Stats stats;    // exact post-stop aggregation (includes warmup)
  std::size_t split_records = 0;
  std::uint64_t phase_cycles = 0;
};

// Starts `db` with `factory`, warms up, measures for `measure_ms`, stops, aggregates.
// The database must be freshly constructed (Start/Stop are one-shot).
RunMetrics RunWorkload(Database& db, SourceFactory factory, std::uint64_t measure_ms,
                       std::uint64_t warmup_ms = 100);

// Like RunWorkload but samples cumulative commits every `sample_ms` (Fig. 10). The
// returned series holds throughput (txns/sec) per sample interval.
struct TimeSeries {
  std::vector<double> seconds;
  std::vector<double> throughput;
};
RunMetrics RunWorkloadTimeSeries(Database& db, SourceFactory factory,
                                 std::uint64_t measure_ms, std::uint64_t sample_ms,
                                 TimeSeries* series,
                                 const std::function<void(std::uint64_t ms)>& on_tick);

}  // namespace doppel

#endif  // DOPPEL_SRC_WORKLOAD_DRIVER_H_
