// Monotonic time helpers. All engine-internal timing is in nanoseconds on the steady
// clock; benchmarks convert at the edges.
#ifndef DOPPEL_SRC_COMMON_TIMING_H_
#define DOPPEL_SRC_COMMON_TIMING_H_

#include <chrono>
#include <cstdint>

namespace doppel {

inline std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline double NanosToSeconds(std::uint64_t nanos) {
  return static_cast<double>(nanos) * 1e-9;
}

inline std::uint64_t MillisToNanos(std::uint64_t ms) { return ms * 1000000ULL; }
inline std::uint64_t MicrosToNanos(std::uint64_t us) { return us * 1000ULL; }

// Scoped stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}
  std::uint64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedSeconds() const { return NanosToSeconds(ElapsedNanos()); }
  void Restart() { start_ = NowNanos(); }

 private:
  std::uint64_t start_;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_TIMING_H_
