// End-to-end smoke tests: every protocol boots a Database, runs a contended increment
// workload, and produces the exact commutative-sum invariant.
#include <gtest/gtest.h>

#include "src/core/database.h"
#include "src/workload/driver.h"
#include "src/workload/incr.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

class SmokeTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(SmokeTest, ExecuteAddsSumExactly) {
  Options opts;
  opts.protocol = GetParam();
  opts.num_workers = 2;
  opts.phase_us = 2000;
  opts.store_capacity = 1024;
  Database db(opts);
  const Key k = Key::FromU64(7);
  db.store().LoadInt(k, 0);
  db.Start();
  constexpr int kOps = 200;
  for (int i = 0; i < kOps; ++i) {
    TxnResult res = db.Execute([&](Txn& txn) { txn.Add(k, 1); });
    ASSERT_TRUE(res.committed);
  }
  db.Stop();
  EXPECT_EQ(testing::IntAt(db.store(), k), kOps);
  EXPECT_EQ(db.CollectStats().committed, static_cast<std::uint64_t>(kOps));
}

TEST_P(SmokeTest, ClosedLoopHotKeySumMatchesCommits) {
  Options opts;
  opts.protocol = GetParam();
  opts.num_workers = 2;
  opts.phase_us = 2000;
  opts.store_capacity = 1 << 12;
  Database db(opts);
  const std::uint64_t kKeys = 128;
  PopulateIncr(db.store(), kKeys);
  std::atomic<std::uint64_t> hot{0};
  RunMetrics m = RunWorkload(db, MakeIncr1Factory(kKeys, 100, &hot), 300, 50);
  EXPECT_GT(m.committed, 0u);
  // Every committed transaction incremented the hot key exactly once; after Stop all
  // slices are reconciled, so the global value equals total commits.
  EXPECT_EQ(testing::IntAt(db.store(), IncrKey(0)),
            static_cast<std::int64_t>(m.stats.committed));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SmokeTest,
                         ::testing::Values(Protocol::kDoppel, Protocol::kOcc,
                                           Protocol::kTwoPL, Protocol::kAtomic),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

TEST(SmokeDoppel, HotKeyGetsSplit) {
  Options opts;
  opts.protocol = Protocol::kDoppel;
  opts.num_workers = 2;
  opts.phase_us = 2000;
  opts.store_capacity = 1 << 12;
  Database db(opts);
  const std::uint64_t kKeys = 128;
  PopulateIncr(db.store(), kKeys);
  std::atomic<std::uint64_t> hot{0};
  RunMetrics m = RunWorkload(db, MakeIncr1Factory(kKeys, 100, &hot), 500, 100);
  // 100% of transactions hammer one key with Add: the classifier must split it.
  EXPECT_GE(m.split_records, 1u);
  EXPECT_EQ(testing::IntAt(db.store(), IncrKey(0)),
            static_cast<std::int64_t>(m.stats.committed));
}

}  // namespace
}  // namespace doppel
