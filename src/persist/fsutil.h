// Shared filesystem durability helpers for the persistence directory. The
// crash-safety-critical fsync sequence (make the new bytes durable, then make the
// rename durable) lives here once, used by both the manifest and the checkpointer.
//
// The Env variants are the fault-tolerant form: they route through an IoEnv, report
// failures instead of aborting, and close the fd on every path (the old aborting
// FsyncPath leaked its fd when the fsync CHECK fired). Per the io_env.h taxonomy a
// failed fsync is never retried.
#ifndef DOPPEL_SRC_PERSIST_FSUTIL_H_
#define DOPPEL_SRC_PERSIST_FSUTIL_H_

#include <fcntl.h>
#include <unistd.h>

#include <string>

#include "src/common/dassert.h"
#include "src/persist/io_env.h"

namespace doppel {

inline IoFailure FsyncPathEnv(IoEnv* env, const std::string& path,
                              int open_flags = O_RDONLY) {
  const int fd = env->Open(path.c_str(), open_flags, 0);
  if (fd < 0) {
    return IoFailure{-fd, IoOp::kOpen};
  }
  const int rc = env->Fsync(fd);
  env->Close(fd);
  if (rc != 0) {
    return IoFailure{-rc, IoOp::kFsync};
  }
  return IoFailure{};
}

inline IoFailure FsyncDirEnv(IoEnv* env, const std::string& dir) {
  return FsyncPathEnv(env, dir, O_RDONLY | O_DIRECTORY);
}

// Abort-on-failure conveniences for callers outside the fault-tolerant paths.
inline void FsyncPath(const std::string& path, int open_flags = O_RDONLY) {
  const IoFailure f = FsyncPathEnv(IoEnv::Default(), path, open_flags);
  errno = f.err;
  DOPPEL_PCHECK(f.err == 0);
}

inline void FsyncDir(const std::string& dir) {
  FsyncPath(dir, O_RDONLY | O_DIRECTORY);
}

}  // namespace doppel

#endif  // DOPPEL_SRC_PERSIST_FSUTIL_H_
