// Shared helpers for persistence tests: temp-directory lifecycle and whole-file IO for
// tear/corruption injection.
#ifndef DOPPEL_TESTS_PERSIST_TEST_UTIL_H_
#define DOPPEL_TESTS_PERSIST_TEST_UTIL_H_

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/common/dassert.h"

namespace doppel {
namespace testing {

inline void RemoveDirRecursive(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return;
  }
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") {
      continue;
    }
    std::remove((dir + "/" + name).c_str());
  }
  ::closedir(d);
  ::rmdir(dir.c_str());
}

// A clean (pre-removed) per-test directory under /tmp, unique per process.
inline std::string FreshDir(const char* tag) {
  const std::string dir =
      "/tmp/doppel_persist_" + std::string(tag) + "_" + std::to_string(::getpid());
  RemoveDirRecursive(dir);
  DOPPEL_CHECK(::mkdir(dir.c_str(), 0755) == 0);
  return dir;
}

inline std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DOPPEL_CHECK(in.good());
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

inline void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DOPPEL_CHECK(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  DOPPEL_CHECK(out.good());
}

}  // namespace testing
}  // namespace doppel

#endif  // DOPPEL_TESTS_PERSIST_TEST_UTIL_H_
