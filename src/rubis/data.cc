#include "src/rubis/data.h"

#include <cstdio>

#include "src/common/hash.h"

namespace doppel {
namespace rubis {
namespace {

Config g_active_config;

std::string Format(const char* fmt, std::uint64_t a, std::uint64_t b, std::uint64_t c,
                   std::int64_t d) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b), static_cast<unsigned long long>(c),
                static_cast<long long>(d));
  return buf;
}

}  // namespace

std::uint64_t SellerOf(std::uint64_t item, const Config& cfg) {
  return Mix64(item * 2654435761ULL) % cfg.num_users;
}

std::uint64_t CategoryOf(std::uint64_t item, const Config& cfg) {
  return item % cfg.num_categories;
}

std::uint64_t RegionOf(std::uint64_t item, const Config& cfg) {
  return item % cfg.num_regions;
}

std::string UserRow(std::uint64_t user) {
  return Format("user:%llu:nick%llu:region%llu:%lld", user, user, user % 62, 0);
}

std::string ItemRow(std::uint64_t item, std::uint64_t seller, std::uint64_t category,
                    std::uint64_t region) {
  return Format("item:%llu:seller%llu:cat%llu:%lld", item, seller, category,
                static_cast<std::int64_t>(region));
}

std::string BidRow(std::uint64_t item, std::uint64_t bidder, std::int64_t amount) {
  return Format("bid:%llu:bidder%llu:item%llu:%lld", item, bidder, item, amount);
}

std::string CommentRow(std::uint64_t item, std::uint64_t from, std::int64_t rating) {
  return Format("comment:%llu:from%llu:item%llu:%lld", item, from, item, rating);
}

std::string BuyNowRow(std::uint64_t item, std::uint64_t buyer) {
  return Format("buynow:%llu:buyer%llu:item%llu:%lld", item, buyer, item, 0);
}

std::string CategoryRow(std::uint64_t category) {
  return Format("category:%llu:name%llu:%llu:%lld", category, category, 0, 0);
}

std::string RegionRow(std::uint64_t region) {
  return Format("region:%llu:name%llu:%llu:%lld", region, region, 0, 0);
}

void Populate(Store& store, const Config& cfg) {
  g_active_config = cfg;

  // Register the ordered (category, item) index with a stripe per category before the
  // first row lands in it (partition layouts are fixed at table creation).
  store.ConfigureTable(kItemsByCatOrd, ItemsByCatOrdConfig(cfg.num_categories));

  for (std::uint64_t c = 0; c < cfg.num_categories; ++c) {
    store.LoadBytes(CategoryKey(c), CategoryRow(c));
    store.LoadTopK(ItemsByCategoryKey(c), kBrowseIndexK);
  }
  for (std::uint64_t r = 0; r < cfg.num_regions; ++r) {
    store.LoadBytes(RegionKey(r), RegionRow(r));
    store.LoadTopK(ItemsByRegionKey(r), kBrowseIndexK);
  }
  for (std::uint64_t u = 0; u < cfg.num_users; ++u) {
    store.LoadBytes(UserKey(u), UserRow(u));
    store.LoadInt(UserRatingKey(u), 0);
    store.LoadInt(UserNumBoughtKey(u), 0);
  }
  for (std::uint64_t i = 0; i < cfg.num_items; ++i) {
    const std::uint64_t seller = SellerOf(i, cfg);
    const std::uint64_t category = CategoryOf(i, cfg);
    const std::uint64_t region = RegionOf(i, cfg);
    store.LoadBytes(ItemKey(i), ItemRow(i, seller, category, region));
    store.LoadInt(MaxBidKey(i), 0);
    store.LoadInt(NumBidsKey(i), 0);
    store.LoadInt(NumCommentsKey(i), 0);
    store.LoadOrdered(MaxBidderKey(i), OrderedTuple{});  // order -inf: no bidder yet
    store.LoadTopK(BidsPerItemIndexKey(i), kBidIndexK);
    store.LoadTopKItem(ItemsByCategoryKey(category), kBrowseIndexK,
                       OrderedTuple{OrderKey{static_cast<std::int64_t>(i), 0}, 0,
                                    std::to_string(i)});
    store.LoadTopKItem(ItemsByRegionKey(region), kBrowseIndexK,
                       OrderedTuple{OrderKey{static_cast<std::int64_t>(i), 0}, 0,
                                    std::to_string(i)});
    // Ordered (category, item) secondary index row; SearchItemsByCategory range-scans it.
    store.LoadBytes(ItemsByCatOrdKey(category, i), std::to_string(i));
  }
}

const Config& ActiveConfig() { return g_active_config; }

}  // namespace rubis
}  // namespace doppel
