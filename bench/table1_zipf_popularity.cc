// Table 1: "The percentage of writes to the first, second, 10th, and 100th most popular
// keys in Zipfian distributions for different values of alpha, 1M keys." Analytic.
#include "bench/bench_common.h"
#include "src/common/zipf.h"

namespace doppel {
namespace {

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const std::uint64_t keys = flags.keys > 0 ? flags.keys : 1000000;  // exact table: 1M

  std::printf("Table 1: Zipfian key popularity, %llu keys\n\n",
              static_cast<unsigned long long>(keys));

  Table table({"alpha", "1st", "2nd", "10th", "100th"});
  for (double alpha = 0.0; alpha <= 2.0 + 1e-9; alpha += 0.2) {
    const ZipfianGenerator zipf(keys, alpha);
    auto pct = [&](std::uint64_t rank) {
      return FormatDouble(zipf.Probability(rank) * 100.0, 4) + "%";
    };
    table.AddRow({FormatDouble(alpha, 1), pct(0), pct(1), pct(9), pct(99)});
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
