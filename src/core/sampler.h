// Per-worker conflict sampling (§5.5).
//
// "During joined execution, Doppel samples transactions' conflicting record accesses, and
// keeps a count of which records are most conflicted (are causing the most aborts) and by
// which operations."
//
// A fixed-size open-addressing table owned by one worker. The owner inserts; the
// coordinator reads exactly at phase barriers (workers quiesced) and peeks the total
// counter racily between barriers to decide whether a split phase is worth starting.
// Eviction uses a space-saving approximation: a new key replaces the smallest-count entry
// in its probe window and inherits that count, so heavy hitters survive churn.
//
// A second, smaller table aggregates *scan* conflicts per ordered-index partition
// (RecordScanConflict): phantom inserts that invalidated a scanned stripe, and failed
// validations of records reached through a scan. Each entry additionally runs a
// Boyer-Moore majority vote over the attributed record keys, so the classifier can see
// which interior record a contended scan window keeps dying on — and by which operation
// its winning writers are updating it.
#ifndef DOPPEL_SRC_CORE_SAMPLER_H_
#define DOPPEL_SRC_CORE_SAMPLER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/store/key.h"
#include "src/txn/op.h"

namespace doppel {

class ConflictSampler {
 public:
  struct Entry {
    Key key;
    std::uint32_t count = 0;
    std::uint32_t op_counts[kNumOps] = {};
    bool used = false;
  };

  // One ordered-index partition's sampled scan-conflict tally.
  struct ScanEntry {
    std::uint64_t table = 0;
    std::uint32_t partition = 0;
    std::uint32_t count = 0;     // all sampled scan conflicts on this partition
    std::uint32_t phantoms = 0;  // subset with no attributable record (pure inserts)
    std::uint32_t op_counts[kNumOps] = {};  // ops of attributed records' winning writers
    // Boyer-Moore majority candidate among attributed record keys.
    Key hot_key{};
    std::uint32_t hot_votes = 0;
    bool has_hot = false;
    bool used = false;
  };

  explicit ConflictSampler(std::uint32_t sample_every, std::size_t capacity = 512);

  // Owner worker: record that a transaction aborted because of `key`, where the aborted
  // transaction's operation on the record was `op` (kGet for pure read validation loss).
  void RecordConflict(const Key& key, OpCode op);

  // Owner worker: record a scan conflict on (table, partition). The record-less overload
  // is a phantom (a concurrent insert invalidated the stripe); the keyed overload
  // attributes the conflict to a record inside the scan window, with `op` the operation
  // its winning writers last applied.
  void RecordScanConflict(std::uint64_t table, std::uint32_t partition);
  void RecordScanConflict(std::uint64_t table, std::uint32_t partition, const Key& key,
                          OpCode op);

  // Racy peek (coordinator, between barriers): sampled conflicts since the last Clear.
  std::uint64_t ApproxTotal() const { return total_.load(std::memory_order_relaxed); }

  // Coordinator, at barriers only.
  const std::vector<Entry>& entries() const { return table_; }
  const std::vector<ScanEntry>& scan_entries() const { return scan_table_; }
  void Clear();

 private:
  static constexpr int kProbeWindow = 8;
  static constexpr std::size_t kScanCapacity = 64;

  ScanEntry& ScanSlot(std::uint64_t table, std::uint32_t partition);

  std::vector<Entry> table_;
  std::vector<ScanEntry> scan_table_;
  std::uint64_t mask_;
  std::uint32_t sample_every_;
  std::uint32_t tick_ = 0;
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_CORE_SAMPLER_H_
