// The persistence directory's MANIFEST: the single source of truth for which files in
// the directory are live. It names the current checkpoint (if any), the log segments
// that must be replayed on top of it, and the next segment number to allocate.
//
// Crash safety comes from ordering, not locking: every state change (segment rotation,
// checkpoint install) first makes the new file durable under a temporary name, then
// atomically renames the rewritten MANIFEST over the old one. A crash at any point
// leaves either the old or the new manifest — never a manifest naming a partial file —
// so recovery can trust it blindly. Files present in the directory but not named by the
// manifest are garbage from an interrupted transition; they are ignored by recovery and
// deleted when logging next starts (WriteAheadLog::SweepUnreferencedLocked).
#ifndef DOPPEL_SRC_PERSIST_MANIFEST_H_
#define DOPPEL_SRC_PERSIST_MANIFEST_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/persist/io_env.h"

namespace doppel {

struct Manifest {
  // File name (relative to the directory) of the current checkpoint; empty if none has
  // been taken since the directory was created (recovery then replays segments only).
  std::string checkpoint;
  // Segment numbers to replay, ascending. The last one is the active (appendable)
  // segment; earlier ones are sealed.
  std::vector<std::uint64_t> live_segments;
  // Sealed segments subsumed by the checkpoint but kept on disk, ascending, because a
  // registered replica's shipping position has not passed them yet (retention leases).
  // Recovery never replays these — their effects are inside the checkpoint — and the
  // sweep does not delete them; they are unlinked once every lease moves past.
  std::vector<std::uint64_t> retained_segments;
  // Next segment number to allocate (strictly above every number ever used, so a stale
  // sealed segment can never be confused with a fresh one).
  std::uint64_t next_segment = 1;

  static std::string SegmentFileName(std::uint64_t number);
  static std::string CheckpointFileName(std::uint64_t number);

  // Loads `dir`/MANIFEST. Returns false (and leaves *out default-initialized) when the
  // file does not exist — a fresh directory. A present-but-unparsable manifest is a
  // checked error: it means corruption of the one file whose atomicity we guarantee.
  static bool Load(const std::string& dir, Manifest* out);

  // Atomically replaces `dir`/MANIFEST: write MANIFEST.tmp, fsync it, rename over
  // MANIFEST, fsync the directory. On failure the tmp file is unlinked and the old
  // MANIFEST is left untouched — the previous state stays live. Transient errors
  // (EINTR/EAGAIN/short write) are absorbed with bounded retry (counted into
  // *retries); the returned IoFailure is the first permanent one, or clear on
  // success. env = nullptr uses the passthrough default.
  static IoFailure Save(const std::string& dir, const Manifest& m,
                        IoEnv* env = nullptr,
                        std::atomic<std::uint64_t>* retries = nullptr);
};

}  // namespace doppel

#endif  // DOPPEL_SRC_PERSIST_MANIFEST_H_
