// Spinlocks used throughout the store and engines.
//
// Critical sections in Doppel are tiny (copy a value, bump a version), so test-and-
// test-and-set spinning with a pause hint beats OS mutexes. The 2PL engine additionally
// needs a reader/writer lock with try semantics so it can implement bounded-wait deadlock
// recovery.
//
// Both locks are Clang thread-safety CAPABILITY types (src/common/annotations.h): members
// they protect are declared GUARDED_BY, and -Werror=thread-safety checks the discipline
// at compile time under clang. The memory_order_relaxed uses inside the lock
// implementations are part of the locks' own acquire/release contracts (CAS failure
// orders, TTAS peek loops, intent-bit announcements) and are documented inline.
#ifndef DOPPEL_SRC_COMMON_SPINLOCK_H_
#define DOPPEL_SRC_COMMON_SPINLOCK_H_

#include <atomic>
#include <cstdint>

#include "src/common/annotations.h"
#include "src/common/cacheline.h"

namespace doppel {

// Simple exclusive spinlock. Satisfies Lockable (usable with std::lock_guard, though
// SpinlockGuard below is preferred: it is annotation-aware).
class CAPABILITY("mutex") Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() ACQUIRE() {
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      // Relaxed TTAS peek: the winning exchange above is the acquire; this loop only
      // waits for the word to look free before retrying it.
      while (locked_.load(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  bool try_lock() TRY_ACQUIRE(true) {
    // Relaxed peek first: failing fast on a held lock needs no ordering; the exchange
    // that actually takes the lock is the acquire.
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() RELEASE() { locked_.store(false, std::memory_order_release); }

  // Diagnostic peek (relaxed: a racy answer is the best any caller can use).
  bool is_locked() const { return locked_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> locked_{false};
};

// Scoped guard for Spinlock (annotation-aware lock_guard).
class SCOPED_CAPABILITY SpinlockGuard {
 public:
  explicit SpinlockGuard(Spinlock& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~SpinlockGuard() RELEASE() { mu_.unlock(); }
  SpinlockGuard(const SpinlockGuard&) = delete;
  SpinlockGuard& operator=(const SpinlockGuard&) = delete;

 private:
  Spinlock& mu_;
};

// Reader/writer spinlock with writer preference and try_* variants.
//
// State word: bit 31 = writer held, bit 30 = writer waiting, low 30 bits = reader count.
// Writer preference keeps a stream of readers from starving the single writer that 2PL
// update transactions need on a hot record.
class CAPABILITY("shared_mutex") RWSpinlock {
 public:
  RWSpinlock() = default;
  RWSpinlock(const RWSpinlock&) = delete;
  RWSpinlock& operator=(const RWSpinlock&) = delete;

  bool try_lock() TRY_ACQUIRE(true) {
    std::uint32_t expected = 0;
    // CAS failure order is relaxed: a failed attempt publishes nothing and reads only
    // the refreshed expected value for the caller's retry policy.
    return state_.compare_exchange_strong(expected, kWriter, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void lock() ACQUIRE() {
    // Announce intent so new readers back off, then wait for the lock word to drain.
    // All failure/peek orders are relaxed — only the winning CAS (acquire) orders the
    // critical section.
    while (true) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if (s == 0 || s == kWriterWaiting) {
        if (state_.compare_exchange_weak(s, kWriter, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      if ((s & kWriterWaiting) == 0) {
        // Intent bit is back-off policy, not publication: relaxed both ways.
        state_.compare_exchange_weak(s, s | kWriterWaiting, std::memory_order_relaxed,
                                     std::memory_order_relaxed);
      }
      CpuRelax();
    }
  }

  void unlock() RELEASE() {
    // Preserve a concurrent waiter's announcement: only clear the held bit.
    state_.fetch_and(~kWriter, std::memory_order_release);
  }

  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    // Relaxed initial peek; the reader-count increment CAS below carries acquire, and
    // its failure order is relaxed (nothing was published on failure).
    std::uint32_t s = state_.load(std::memory_order_relaxed);
    while ((s & (kWriter | kWriterWaiting)) == 0) {
      if (state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void lock_shared() ACQUIRE_SHARED() {
    while (!try_lock_shared()) {
      CpuRelax();
    }
  }

  void unlock_shared() RELEASE_SHARED() {
    state_.fetch_sub(1, std::memory_order_release);
  }

  // Atomically turn a held shared lock into the exclusive lock if this reader is alone.
  // Not annotated: thread-safety analysis cannot express "shared released and exclusive
  // acquired only on success"; callers (2PL upgrade path) are NO_THREAD_SAFETY_ANALYSIS
  // with the transaction-duration lock-set rationale.
  bool try_upgrade() {
    std::uint32_t expected = 1;
    // CAS failure orders relaxed throughout: a failed upgrade changes no lock state.
    if (state_.compare_exchange_strong(expected, kWriter, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return true;
    }
    // Also allow upgrade when we ourselves announced writer intent earlier.
    expected = 1 | kWriterWaiting;
    return state_.compare_exchange_strong(expected, kWriter, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  // Bounded-spin acquisition, used by 2PL for deadlock recovery: give up after `iters`
  // pause iterations instead of blocking forever. Announce/clear writer intent so a
  // stream of readers cannot starve a bounded writer. Peek/announce/clear orders are
  // relaxed (intent bits are policy, not publication); the winning CAS is the acquire.
  bool try_lock_for(std::uint32_t iters) TRY_ACQUIRE(true) {
    for (std::uint32_t i = 0; i < iters; ++i) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if (s == 0 || s == kWriterWaiting) {
        if (state_.compare_exchange_weak(s, kWriter, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return true;
        }
        continue;
      }
      if ((s & kWriterWaiting) == 0) {
        // Intent bit is back-off policy, not publication: relaxed both ways.
        state_.compare_exchange_weak(s, s | kWriterWaiting, std::memory_order_relaxed,
                                     std::memory_order_relaxed);
      }
      CpuRelax();
    }
    // Giving up: clear our stale intent announcement (policy bit, relaxed).
    state_.fetch_and(~kWriterWaiting, std::memory_order_relaxed);
    return false;
  }

  bool try_lock_shared_for(std::uint32_t iters) TRY_ACQUIRE_SHARED(true) {
    for (std::uint32_t i = 0; i < iters; ++i) {
      if (try_lock_shared()) {
        return true;
      }
      CpuRelax();
    }
    return false;
  }

  // Bounded upgrade of a held shared lock. On failure the shared lock is still held.
  // Unannotated for the same reason as try_upgrade (conditional mode change).
  bool try_upgrade_for(std::uint32_t iters) {
    for (std::uint32_t i = 0; i < iters; ++i) {
      if (try_upgrade()) {
        return true;
      }
      // Intent-bit announcement; relaxed — see try_lock_for.
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & kWriterWaiting) == 0) {
        state_.compare_exchange_weak(s, s | kWriterWaiting, std::memory_order_relaxed,
                                     std::memory_order_relaxed);
      }
      CpuRelax();
    }
    state_.fetch_and(~kWriterWaiting, std::memory_order_relaxed);
    return false;
  }

  // Diagnostic peeks (relaxed: answers are racy by nature).
  bool has_writer() const {
    return (state_.load(std::memory_order_relaxed) & kWriter) != 0;
  }
  std::uint32_t reader_count() const {
    return state_.load(std::memory_order_relaxed) & kReaderMask;
  }

 private:
  static constexpr std::uint32_t kWriter = 1u << 31;
  static constexpr std::uint32_t kWriterWaiting = 1u << 30;
  static constexpr std::uint32_t kReaderMask = kWriterWaiting - 1;

  std::atomic<std::uint32_t> state_{0};
};

// Scoped exclusive guard for RWSpinlock.
class SCOPED_CAPABILITY RWSpinlockWriterGuard {
 public:
  explicit RWSpinlockWriterGuard(RWSpinlock& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~RWSpinlockWriterGuard() RELEASE() { mu_.unlock(); }
  RWSpinlockWriterGuard(const RWSpinlockWriterGuard&) = delete;
  RWSpinlockWriterGuard& operator=(const RWSpinlockWriterGuard&) = delete;

 private:
  RWSpinlock& mu_;
};

// Scoped shared guard for RWSpinlock.
class SCOPED_CAPABILITY RWSpinlockReaderGuard {
 public:
  explicit RWSpinlockReaderGuard(RWSpinlock& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~RWSpinlockReaderGuard() RELEASE_GENERIC() { mu_.unlock_shared(); }
  RWSpinlockReaderGuard(const RWSpinlockReaderGuard&) = delete;
  RWSpinlockReaderGuard& operator=(const RWSpinlockReaderGuard&) = delete;

 private:
  RWSpinlock& mu_;
};

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_SPINLOCK_H_
