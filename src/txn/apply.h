// Application of buffered operations, shared by every commit protocol.
#ifndef DOPPEL_SRC_TXN_APPLY_H_
#define DOPPEL_SRC_TXN_APPLY_H_

#include "src/txn/txn.h"

namespace doppel {

// Applies `w` to the global record; `arena` is the transaction arena holding `w`'s
// byte/ordered operands. Caller must hold the record's OCC lock bit.
// Absent-record semantics: Add treats the record as 0, Mult as 1, Max/Min/OPut install
// the operand (OPut per the paper: absent records have order -inf).
void ApplyWriteToRecord(const PendingWrite& w, const WriteArena& arena);

// Applies `w` onto an in-memory snapshot (read-own-writes overlay).
void ApplyWriteToResult(const PendingWrite& w, const WriteArena& arena, ReadResult* res);

// True for operations that logically read the record's prior value; under OCC these add
// the record to the read set so commit-time validation detects conflicting writers, which
// is exactly the serial-execution behaviour phase reconciliation attacks (§8.2).
constexpr bool IsReadModifyWrite(OpCode op) {
  switch (op) {
    case OpCode::kAdd:
    case OpCode::kMax:
    case OpCode::kMin:
    case OpCode::kMult:
    case OpCode::kOPut:
    case OpCode::kTopKInsert:
      return true;
    default:
      return false;
  }
}

}  // namespace doppel

#endif  // DOPPEL_SRC_TXN_APPLY_H_
