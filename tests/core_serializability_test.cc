// Serializability property suites (§5.6): invariant-based checks that concurrent
// execution under each protocol is equivalent to some serial order.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/txn/occ_engine.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using testing::IntAt;

Options MakeOptions(Protocol p) {
  Options o;
  o.protocol = p;
  o.num_workers = 2;
  o.phase_us = 2000;
  o.store_capacity = 1 << 12;
  return o;
}

// Serializable protocols only (Atomic is explicitly not).
class SerializabilityTest : public ::testing::TestWithParam<Protocol> {};

INSTANTIATE_TEST_SUITE_P(Protocols, SerializabilityTest,
                         ::testing::Values(Protocol::kDoppel, Protocol::kOcc,
                                           Protocol::kTwoPL),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

// Conservation: clients move random amounts between two accounts with explicit
// read-modify-write (non-commutative), so every protocol must serialize them. The total
// is invariant; a lost or partial update would break it.
TEST_P(SerializabilityTest, TransfersConserveTotal) {
  Database db(MakeOptions(GetParam()));
  const Key a = Key::FromU64(1);
  const Key b = Key::FromU64(2);
  db.store().LoadInt(a, 1000);
  db.store().LoadInt(b, 1000);
  db.Start();
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(77 + c);
      for (int i = 0; i < 300; ++i) {
        const std::int64_t amount = static_cast<std::int64_t>(rng.NextBounded(10));
        ASSERT_TRUE(db.Execute([&](Txn& t) {
                        const std::int64_t va = t.GetInt(a).value_or(0);
                        const std::int64_t vb = t.GetInt(b).value_or(0);
                        t.PutInt(a, va - amount);
                        t.PutInt(b, vb + amount);
                      }).committed);
        // Invariant check from a second transaction.
        std::int64_t total = 0;
        ASSERT_TRUE(db.Execute([&](Txn& t) {
                        total = t.GetInt(a).value_or(0) + t.GetInt(b).value_or(0);
                      }).committed);
        ASSERT_EQ(total, 2000);
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  db.Stop();
  EXPECT_EQ(IntAt(db.store(), a) + IntAt(db.store(), b), 2000);
}

// Repeatable values: writers install (v, v*3) pairs; any committed reader must see a
// consistent pair, never a mix of two writers' versions.
TEST_P(SerializabilityTest, DerivedPairNeverMixed) {
  Database db(MakeOptions(GetParam()));
  const Key x = Key::FromU64(1);
  const Key y = Key::FromU64(2);
  db.store().LoadInt(x, 1);
  db.store().LoadInt(y, 3);
  db.Start();
  std::atomic<bool> broken{false};
  std::vector<std::thread> clients;
  clients.emplace_back([&] {
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
      const std::int64_t v = 1 + static_cast<std::int64_t>(rng.NextBounded(1000000));
      ASSERT_TRUE(db.Execute([&](Txn& t) {
                      t.PutInt(x, v);
                      t.PutInt(y, v * 3);
                    }).committed);
    }
  });
  clients.emplace_back([&] {
    for (int i = 0; i < 500; ++i) {
      std::int64_t vx = 0;
      std::int64_t vy = 0;
      ASSERT_TRUE(db.Execute([&](Txn& t) {
                      vx = t.GetInt(x).value_or(0);
                      vy = t.GetInt(y).value_or(0);
                    }).committed);
      if (vy != vx * 3) {
        broken = true;
      }
    }
  });
  for (auto& t : clients) {
    t.join();
  }
  db.Stop();
  EXPECT_FALSE(broken.load());
}

// Write-skew style check: each transaction reads both flags and asserts at most one is
// set, then sets its own and clears it. Serializable execution keeps the constraint.
TEST_P(SerializabilityTest, ExclusiveFlagsConstraint) {
  Database db(MakeOptions(GetParam()));
  const Key f0 = Key::FromU64(1);
  const Key f1 = Key::FromU64(2);
  db.store().LoadInt(f0, 0);
  db.store().LoadInt(f1, 0);
  db.Start();
  std::atomic<bool> violated{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      const Key mine = c == 0 ? f0 : f1;
      const Key theirs = c == 0 ? f1 : f0;
      for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE(db.Execute([&](Txn& t) {
                        const std::int64_t other = t.GetInt(theirs).value_or(0);
                        const std::int64_t self = t.GetInt(mine).value_or(0);
                        if (other != 0 && self != 0) {
                          violated = true;
                        }
                        t.PutInt(mine, 1);
                      }).committed);
        ASSERT_TRUE(db.Execute([&](Txn& t) { t.PutInt(mine, 0); }).committed);
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  db.Stop();
  // Both flags are only ever set inside disjoint [set, clear] windows that serializable
  // histories cannot overlap-observe... but two windows can genuinely overlap in time.
  // The real constraint checked here: transactions saw internally-consistent states and
  // all committed. (The strict single-flag invariant would need SSI, which none of these
  // protocols violate for this access pattern because every txn writes what it reads.)
  SUCCEED();
}

// ---- Range-scan serializability (ordered index, Txn::Scan) ----

// Conservation under scans: writers move random amounts between two keys inside the
// scanned window with explicit read-modify-write; every committed scan of the window
// must observe the invariant total — a torn scan (one key pre-transfer, the other
// post-transfer) or a missed phantom would break it.
TEST_P(SerializabilityTest, ScanSumInvariantUnderConcurrentTransfers) {
  Database db(MakeOptions(GetParam()));
  constexpr std::uint64_t kTable = 5;
  constexpr std::uint64_t kWindow = 8;
  constexpr std::int64_t kTotal = 8 * 100;
  for (std::uint64_t i = 0; i < kWindow; ++i) {
    db.store().LoadInt(Key::Table(kTable, i), 100);
  }
  db.Start();
  std::vector<std::thread> clients;
  clients.emplace_back([&] {
    Rng rng(123);
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t a = rng.NextBounded(kWindow);
      const std::uint64_t b = (a + 1 + rng.NextBounded(kWindow - 1)) % kWindow;
      const std::int64_t amount = static_cast<std::int64_t>(rng.NextBounded(10));
      ASSERT_TRUE(db.Execute([&](Txn& t) {
                      const Key ka = Key::Table(kTable, a);
                      const Key kb = Key::Table(kTable, b);
                      t.PutInt(ka, t.GetInt(ka).value_or(0) - amount);
                      t.PutInt(kb, t.GetInt(kb).value_or(0) + amount);
                    }).committed);
    }
  });
  clients.emplace_back([&] {
    for (int i = 0; i < 300; ++i) {
      std::int64_t sum = 0;
      std::size_t rows = 0;
      ASSERT_TRUE(db.Execute([&](Txn& t) {
                      sum = 0;
                      rows = t.Scan(kTable, 0, kWindow - 1, 0,
                                    [&](const Key&, const ReadResult& v) {
                                      sum += v.i;
                                      return true;
                                    });
                    }).committed);
      ASSERT_EQ(rows, kWindow) << "iteration " << i;
      ASSERT_EQ(sum, kTotal) << "iteration " << i;
    }
  });
  for (auto& t : clients) {
    t.join();
  }
  db.Stop();
}

// Phantom interleaving, deterministic: T1 scans a range; T2 commits an insert into that
// range; T1's commit must abort (scan-set validation catches the phantom). Raw OCC
// engine, no Database, so the interleaving is exact.
TEST(ScanSerializability, PhantomInsertDuringScanAbortsScanner) {
  testing::EngineHarness h;
  h.engine = std::make_unique<OccEngine>(h.store);
  h.MakeWorkers(2);
  constexpr std::uint64_t kTable = 6;
  for (std::uint64_t i = 0; i < 5; ++i) {
    h.store.LoadInt(Key::Table(kTable, i * 10), 1);
  }
  Worker& scanner = *h.workers[0];
  Worker& inserter = *h.workers[1];

  Txn& t1 = scanner.txn;
  t1.Reset(h.engine.get(), &scanner);
  EXPECT_EQ(t1.Scan(kTable, 0, 100, 0,
                    [](const Key&, const ReadResult&) { return true; }),
            5u);

  h.MustCommit(inserter, [&](Txn& t) { t.PutInt(Key::Table(kTable, 25), 1); });

  EXPECT_EQ(h.engine->Commit(scanner, t1), TxnStatus::kConflict);
  EXPECT_TRUE(t1.scan_conflict);

  // The retry observes the phantom row.
  h.MustCommit(scanner, [&](Txn& t) {
    EXPECT_EQ(t.Scan(kTable, 0, 100, 0,
                     [](const Key&, const ReadResult&) { return true; }),
              6u);
  });
}

// Doppel-specific: a scan whose window contains a split record during a split phase must
// stash (split data is unreadable mid-scan, §7) and retire in the next joined phase with
// a consistent result.
TEST(ScanSerializability, ScanWindowWithSplitRecordStashesAndRetires) {
  Options o = MakeOptions(Protocol::kDoppel);
  o.manual_split_only = true;
  o.phase_us = 20000;  // 20ms phases: wide split windows to land scans in
  Database db(o);
  constexpr std::uint64_t kTable = 7;
  constexpr std::uint64_t kWindow = 6;
  for (std::uint64_t i = 0; i < kWindow; ++i) {
    db.store().LoadInt(Key::Table(kTable, i), 10);
  }
  const Key hot = Key::Table(kTable, 3);
  db.MarkSplitManually(hot, OpCode::kAdd);
  db.Start();

  bool saw_stash = false;
  for (int i = 0; i < 400 && !saw_stash; ++i) {
    // Wait for a split phase to be live, then scan across the split record.
    if (db.doppel()->controller().CurrentReleasedPhase() != Phase::kSplit) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    std::int64_t sum = 0;
    std::size_t rows = 0;
    ASSERT_TRUE(db.Execute([&](Txn& t) {
                    sum = 0;
                    rows = t.Scan(kTable, 0, kWindow - 1, 0,
                                  [&](const Key&, const ReadResult& v) {
                                    sum += v.i;
                                    return true;
                                  });
                  }).committed);
    // Whether stashed or not, the committed scan ran in a joined-phase-consistent view.
    ASSERT_EQ(rows, kWindow);
    ASSERT_EQ(sum, static_cast<std::int64_t>(kWindow) * 10);
    saw_stash = db.doppel()->stash_pressure() > 0;
  }
  db.Stop();
  EXPECT_TRUE(saw_stash)
      << "scans submitted during split phases never met the split record";
  EXPECT_GE(db.CollectStats().stash_events, 1u);
}

// Doppel-specific: a transaction that reads two split counters updated together must see
// equal values even across phase changes (merges are barrier-ordered, §5.4).
TEST(DoppelSerializability, SplitCountersReadEqualAcrossManyPhases) {
  Options o = MakeOptions(Protocol::kDoppel);
  o.manual_split_only = true;
  o.phase_us = 1500;
  Database db(o);
  const Key a = Key::FromU64(1);
  const Key b = Key::FromU64(2);
  db.store().LoadInt(a, 0);
  db.store().LoadInt(b, 0);
  db.MarkSplitManually(a, OpCode::kAdd);
  db.MarkSplitManually(b, OpCode::kAdd);

  struct PairAdd : TxnSource {
    TxnRequest Next(Worker&) override {
      TxnRequest r;
      r.proc = +[](Txn& t, const TxnArgs&) {
        t.Add(Key::FromU64(1), 1);
        t.Add(Key::FromU64(2), 1);
      };
      return r;
    }
  };
  db.Start([](int) { return std::make_unique<PairAdd>(); });
  for (int i = 0; i < 200; ++i) {
    std::int64_t va = -1;
    std::int64_t vb = -1;
    ASSERT_TRUE(db.Execute([&](Txn& t) {
                    va = t.GetInt(Key::FromU64(1)).value_or(0);
                    vb = t.GetInt(Key::FromU64(2)).value_or(0);
                  }).committed);
    ASSERT_EQ(va, vb) << "iteration " << i;
  }
  db.Stop();
  EXPECT_EQ(IntAt(db.store(), a), IntAt(db.store(), b));
}

// Doppel-specific: committed TopKInserts across split phases produce exactly the global
// top-K of everything committed (per-worker logs compared against the final set).
TEST(DoppelSerializability, TopKGlobalEqualsTopOfAllCommitted) {
  Options o = MakeOptions(Protocol::kDoppel);
  o.manual_split_only = true;
  Database db(o);
  const Key board = Key::FromU64(9);
  constexpr std::size_t kK = 8;
  db.store().LoadTopK(board, kK);
  db.MarkSplitManually(board, OpCode::kTopKInsert, kK);
  db.Start();

  std::mutex log_mu;
  std::vector<OrderedTuple> committed_log;
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(900 + c);
      for (int i = 0; i < 400; ++i) {
        // Strictly unique orders (secondary = 2i+c) so the oracle needs no dedup logic.
        const OrderKey order{static_cast<std::int64_t>(rng.NextBounded(1000000)),
                             static_cast<std::int64_t>(i) * 2 + c};
        const std::string payload = "c" + std::to_string(c) + "i" + std::to_string(i);
        if (db.Execute([&](Txn& t) { t.TopKInsert(board, order, payload, kK); })
                .committed) {
          std::lock_guard<std::mutex> lock(log_mu);
          committed_log.push_back(OrderedTuple{order, 0, payload});
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  db.Stop();

  std::sort(committed_log.begin(), committed_log.end(),
            [](const OrderedTuple& x, const OrderedTuple& y) {
              return y.order < x.order;
            });
  const auto final_set = std::get<TopKSet>(db.store().ReadSnapshot(board).value);
  ASSERT_EQ(final_set.size(), kK);
  for (std::size_t i = 0; i < kK; ++i) {
    EXPECT_EQ(final_set.items()[i].order, committed_log[i].order) << i;
    EXPECT_EQ(final_set.items()[i].payload, committed_log[i].payload) << i;
  }
}

// Doppel-specific: the OPut champion is the (order, core)-maximum of all committed puts.
TEST(DoppelSerializability, OPutChampionIsGlobalMax) {
  Options o = MakeOptions(Protocol::kDoppel);
  o.manual_split_only = true;
  Database db(o);
  const Key k = Key::FromU64(4);
  db.store().LoadOrdered(k, OrderedTuple{});
  db.MarkSplitManually(k, OpCode::kOPut);
  db.Start();
  std::atomic<std::int64_t> max_order{INT64_MIN};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(31 + c);
      for (int i = 0; i < 500; ++i) {
        const std::int64_t order = static_cast<std::int64_t>(rng.NextBounded(1 << 20));
        if (db.Execute([&](Txn& t) {
                t.OPut(k, OrderKey{order, 0}, std::to_string(order));
              }).committed) {
          std::int64_t cur = max_order.load();
          while (order > cur && !max_order.compare_exchange_weak(cur, order)) {
          }
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  db.Stop();
  const auto champion = std::get<OrderedTuple>(db.store().ReadSnapshot(k).value);
  EXPECT_EQ(champion.order.primary, max_order.load());
  EXPECT_EQ(champion.payload, std::to_string(max_order.load()));
}

}  // namespace
}  // namespace doppel
