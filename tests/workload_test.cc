// Tests for the workload generators, the run driver, and reporting helpers.
#include <gtest/gtest.h>

#include <atomic>

#include "src/txn/occ_engine.h"
#include "src/workload/driver.h"
#include "src/workload/incr.h"
#include "src/workload/like.h"
#include "src/workload/report.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

Worker& TestWorker() {
  static Worker w(0, 4242);
  return w;
}

TEST(IncrWorkload, PopulateCreatesAllKeysAtZero) {
  Store store(1 << 10);
  PopulateIncr(store, 100);
  EXPECT_EQ(store.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto snap = store.ReadSnapshot(IncrKey(i));
    ASSERT_TRUE(snap.present);
    EXPECT_EQ(std::get<std::int64_t>(snap.value), 0);
  }
}

TEST(IncrWorkload, HotFractionRespected) {
  std::atomic<std::uint64_t> hot{0};
  Incr1Source src(1000, 30, &hot);
  int hot_hits = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const TxnRequest r = src.Next(TestWorker());
    ASSERT_EQ(r.args.k1.hi, 0u);
    ASSERT_LT(r.args.k1.lo, 1000u);
    hot_hits += r.args.k1 == IncrKey(0);
    EXPECT_EQ(r.args.tag, kTagWrite);
    EXPECT_NE(r.proc, nullptr);
  }
  EXPECT_NEAR(hot_hits / static_cast<double>(kDraws), 0.30, 0.02);
}

TEST(IncrWorkload, HotPctZeroNeverPicksHotKey) {
  std::atomic<std::uint64_t> hot{5};
  Incr1Source src(100, 0, &hot);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(src.Next(TestWorker()).args.k1, IncrKey(5));
  }
}

TEST(IncrWorkload, RotatingHotIndexFollowed) {
  std::atomic<std::uint64_t> hot{2};
  Incr1Source src(100, 100, &hot);
  EXPECT_EQ(src.Next(TestWorker()).args.k1, IncrKey(2));
  hot.store(9);
  EXPECT_EQ(src.Next(TestWorker()).args.k1, IncrKey(9));
}

TEST(IncrWorkload, ZipfSourceSkewsToRankZero) {
  const ZipfianGenerator zipf(1000, 1.4);
  IncrZSource src(&zipf);
  int rank0 = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    rank0 += src.Next(TestWorker()).args.k1 == IncrKey(0);
  }
  EXPECT_NEAR(rank0 / static_cast<double>(kDraws), zipf.Probability(0), 0.03);
}

TEST(LikeWorkload, PopulateCreatesUsersAndPages) {
  Store store(1 << 12);
  LikeConfig cfg;
  cfg.num_users = 50;
  cfg.num_pages = 70;
  PopulateLike(store, cfg);
  EXPECT_EQ(store.size(), 120u);
  EXPECT_TRUE(store.ReadSnapshot(LikeUserKey(49)).present);
  EXPECT_TRUE(store.ReadSnapshot(LikePageKey(69)).present);
}

TEST(LikeWorkload, WriteFractionAndTags) {
  LikeConfig cfg;
  cfg.num_users = 1000;
  cfg.num_pages = 1000;
  cfg.write_pct = 40;
  cfg.alpha = 0.0;
  LikeSource src(cfg, nullptr);
  int writes = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const TxnRequest r = src.Next(TestWorker());
    ASSERT_EQ(r.args.k1.hi, kLikeUserTable);
    ASSERT_EQ(r.args.k2.hi, kLikePageTable);
    writes += r.args.tag == kTagWrite;
  }
  EXPECT_NEAR(writes / static_cast<double>(kDraws), 0.40, 0.02);
}

TEST(LikeWorkload, WriteTxnUpdatesUserRowAndPageCount) {
  testing::EngineHarness h;
  h.engine = std::make_unique<OccEngine>(h.store);
  h.MakeWorkers(1);
  LikeConfig cfg;
  cfg.num_users = 10;
  cfg.num_pages = 10;
  PopulateLike(h.store, cfg);
  const ZipfianGenerator zipf(cfg.num_pages, 1.4);
  LikeSource src(cfg, &zipf);
  // Draw until we get one write and run it.
  TxnRequest r = src.Next(*h.workers[0]);
  while (r.args.tag != kTagWrite) {
    r = src.Next(*h.workers[0]);
  }
  Txn& txn = h.workers[0]->txn;
  txn.Reset(h.engine.get(), h.workers[0].get());
  r.proc(txn, r.args);
  ASSERT_EQ(h.engine->Commit(*h.workers[0], txn), TxnStatus::kCommitted);
  EXPECT_EQ(std::get<std::int64_t>(h.store.ReadSnapshot(r.args.k2).value), 1);
  EXPECT_EQ(std::get<std::int64_t>(h.store.ReadSnapshot(r.args.k1).value),
            static_cast<std::int64_t>(r.args.k2.lo));
}

TEST(Driver, RunWorkloadProducesMetrics) {
  Options o;
  o.protocol = Protocol::kOcc;
  o.num_workers = 2;
  o.store_capacity = 1 << 10;
  Database db(o);
  PopulateIncr(db.store(), 64);
  std::atomic<std::uint64_t> hot{0};
  RunMetrics m = RunWorkload(db, MakeIncr1Factory(64, 10, &hot), 200, 50);
  EXPECT_GT(m.committed, 0u);
  EXPECT_GT(m.throughput, 0.0);
  EXPECT_GE(m.stats.committed, m.committed);  // stats include warmup
  EXPECT_NEAR(m.seconds, 0.2, 0.15);
}

TEST(Driver, TimeSeriesSamplesAndTicks) {
  Options o;
  o.protocol = Protocol::kOcc;
  o.num_workers = 2;
  o.store_capacity = 1 << 10;
  Database db(o);
  PopulateIncr(db.store(), 64);
  std::atomic<std::uint64_t> hot{0};
  TimeSeries series;
  int ticks = 0;
  RunMetrics m = RunWorkloadTimeSeries(db, MakeIncr1Factory(64, 10, &hot), 300, 50,
                                       &series, [&](std::uint64_t) { ticks++; });
  EXPECT_GE(series.throughput.size(), 4u);
  EXPECT_EQ(series.throughput.size(), series.seconds.size());
  EXPECT_GT(ticks, 0);
  EXPECT_GT(m.throughput, 0.0);
  for (double t : series.throughput) {
    EXPECT_GE(t, 0.0);
  }
}

TEST(Report, FormatHelpers) {
  EXPECT_EQ(FormatCount(12345678.0), "12.35M");
  EXPECT_EQ(FormatCount(4200.0), "4.2K");
  EXPECT_EQ(FormatCount(17.0), "17");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatMicros(2500.0), "2.5");
}

TEST(Report, TableRowsAligned) {
  Table t({"a", "bb"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  t.Print();     // smoke: no crash, visible in --output-on-failure logs
  t.PrintCsv();
  SUCCEED();
}

}  // namespace
}  // namespace doppel
