// Figure 10: "Throughput over time on INCR1 when 10% of transactions increment a hot
// key, and that hot key changes every 5 seconds." Tests classifier adaptivity (§8.3).
#include <memory>

#include "bench/bench_common.h"
#include "src/workload/incr.h"

namespace doppel {
namespace {

int Main(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const std::uint64_t keys = flags.Keys(100000);
  const std::uint64_t rotate_ms = flags.full ? 5000 : 1000;
  const std::uint64_t total_ms = flags.full ? 30000 : 6000;
  const std::uint64_t sample_ms = flags.full ? 1000 : 250;
  const Protocol protocols[] = {Protocol::kDoppel, Protocol::kOcc, Protocol::kTwoPL};

  std::printf("Figure 10: INCR1 throughput over time, hot key rotates every %llums\n",
              static_cast<unsigned long long>(rotate_ms));
  std::printf("threads=%d keys=%llu hot%%=10\n\n", flags.ResolvedThreads(),
              static_cast<unsigned long long>(keys));

  Table table({"t(s)", "Doppel", "OCC", "2PL"});
  std::vector<TimeSeries> series(3);
  for (std::size_t pi = 0; pi < 3; ++pi) {
    std::atomic<std::uint64_t> hot{0};
    std::uint64_t next_rotation = rotate_ms;
    auto db = std::make_unique<Database>(
        bench::BaseOptions(flags, protocols[pi], keys * 2));
    PopulateIncr(db->store(), keys);
    RunWorkloadTimeSeries(*db, MakeIncr1Factory(keys, 10, &hot), total_ms, sample_ms,
                          &series[pi], [&](std::uint64_t ms) {
                            if (ms >= next_rotation) {
                              // Move popularity to a fresh key.
                              hot.fetch_add(1, std::memory_order_relaxed);
                              next_rotation += rotate_ms;
                            }
                          });
  }
  const std::size_t points = series[0].throughput.size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row{FormatDouble(series[0].seconds[i], 2)};
    for (std::size_t pi = 0; pi < 3; ++pi) {
      row.push_back(i < series[pi].throughput.size()
                        ? FormatCount(series[pi].throughput[i])
                        : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  if (flags.csv) {
    table.PrintCsv();
  }
  return 0;
}

}  // namespace
}  // namespace doppel

int main(int argc, char** argv) { return doppel::Main(argc, argv); }
