#include "src/txn/occ_engine.h"

#include <algorithm>

#include "src/txn/apply.h"

namespace doppel {

Record* OccEngine::Route(Worker& w, const Key& key, RecordType type, std::size_t topk_k) {
  return RouteInStore(w, store_, key, type, topk_k);
}

Record* OccEngine::RouteDelete(Worker& w, const Key& key) {
  return RouteAnyType(w, store_, key, RecordType::kInt64, 0);
}

namespace {

// A snapshot of a sweeper-killed record must not enter the read set: the record's TID
// is frozen from here on (new writes to the key go to a fresh record), so a stale
// "absent" read would validate forever. The sweeper bumps the TID when it marks the
// record dead — a snapshot taken *before* the mark carries the old TID and fails
// commit validation; a snapshot taken *after* carries the bumped TID, whose release
// store also published the dead flag, so this check (acquire in IsDead) sees it and
// aborts to a retry that re-routes to a fresh record.
inline void ThrowIfDead(Txn& txn, Record* r) {
  if (r->IsDead()) {
    txn.conflict_record = r;
    txn.conflict_op = OpCode::kGet;
    throw ConflictSignal{r, OpCode::kGet};
  }
}

}  // namespace

void OccEngine::OccRead(Txn& txn, Record* r, ReadResult* out) {
  if (r->type() == RecordType::kInt64) {
    const Record::IntSnapshot s = r->ReadInt();
    ThrowIfDead(txn, r);
    out->present = s.present;
    out->i = s.value;
    txn.read_set().push_back(ReadEntry{r, s.tid});
    return;
  }
  Record::ComplexSnapshot s = r->ReadComplex();
  ThrowIfDead(txn, r);
  out->present = s.present;
  out->complex = std::move(s.value);
  txn.read_set().push_back(ReadEntry{r, s.tid});
}

void OccEngine::OccBufferWrite(Txn& txn, PendingWrite&& pw) {
  // Read-modify-write operations record the TID they logically read so that commit-time
  // validation serializes them against concurrent writers — the conventional behaviour
  // whose collapse under contention motivates phase reconciliation.
  if (IsReadModifyWrite(pw.op)) {
    txn.read_set().push_back(ReadEntry{pw.record, pw.record->StableTid()});
  }
  txn.BufferWrite(std::move(pw));
}

void OccEngine::Read(Worker& w, Txn& txn, Record* r, ReadResult* out) {
  (void)w;
  OccRead(txn, r, out);
}

void OccEngine::Write(Worker& w, Txn& txn, PendingWrite&& pw) {
  (void)w;
  OccBufferWrite(txn, std::move(pw));
}

std::size_t OccEngine::OccScan(Txn& txn, std::uint64_t table, std::uint64_t lo,
                               std::uint64_t hi, std::size_t limit, ScanFn fn,
                               bool stash_on_split) {
  if (lo > hi) {
    return 0;
  }
  // GetOrCreate (not Find): scanning an empty table must still version-stamp its
  // partitions, or the first insert could slip past this scan unvalidated.
  OrderedIndex::TableIndex& tab = store_.index().GetOrCreateTable(table);
  const std::size_t p_lo = tab.PartitionOf(lo);
  const std::size_t p_hi = tab.PartitionOf(hi);
  std::size_t visited = 0;
  Txn::ScanScratchLease lease(txn.scan_batch());
  auto& batch = lease.get();
  for (std::size_t p = p_lo; p <= p_hi; ++p) {
    IndexPartition& part = tab.partitions[p];
    batch.clear();
    // Snapshot entry pointers under the partition lock, then read the records outside
    // it: index inserters hold their record's OCC lock while taking `part.mu`, so
    // spinning on a record's TID word under `mu` would deadlock.
    const std::uint64_t version = OrderedIndex::SnapshotRange(
        part, lo, hi, limit == 0 ? 0 : limit - visited, &batch);
    txn.scan_set().push_back(
        IndexScanEntry{&part, version, table, static_cast<std::uint32_t>(p)});
    for (const auto& [key_lo, rec] : batch) {
      (void)key_lo;
      if (stash_on_split && rec->IsSplit()) {
        txn.MarkStash(rec, OpCode::kGet);
        return visited;
      }
      ReadResult res;
      OccRead(txn, rec, &res);
      // Tag the read entry with its scan origin so a validation failure on this record
      // is also charged to the partition (per-partition conflict telemetry).
      txn.read_set().back().scan_part = static_cast<std::int32_t>(p);
      txn.OverlayPending(rec, &res);
      if (!res.present) {
        continue;  // index entries are present by construction; defensive only
      }
      ++visited;
      if (!fn(rec->key(), res)) {
        return visited;
      }
      if (limit != 0 && visited >= limit) {
        return visited;
      }
    }
  }
  return visited;
}

std::size_t OccEngine::Scan(Worker& w, Txn& txn, std::uint64_t table, std::uint64_t lo,
                            std::uint64_t hi, std::size_t limit, ScanFn fn) {
  (void)w;
  return OccScan(txn, table, lo, hi, limit, fn, /*stash_on_split=*/false);
}

TxnStatus OccEngine::OccCommit(Worker& w, Txn& txn) {
  auto& ws = txn.write_set();
  auto& rs = txn.read_set();
  const std::size_t n = ws.size();

  // Record-address commit order as slot indices (Txn::CommitOrder): groups same-record
  // writes in issue order without copying the elements; the single-write transaction —
  // the common case in the INCR microbenches — skips the sort and scratch entirely.
  std::uint32_t single = 0;
  const std::uint32_t* order = txn.CommitOrder(&single);

  // Part 1: lock the write set in a global order (record address) to prevent deadlock;
  // abort immediately if any record is already locked (§8.1: "Doppel and OCC transactions
  // abort and later retry when they see a locked item").
  std::uint64_t max_seen = 0;
  std::size_t locked_end = 0;  // order slots [0, locked_end) hold their (deduped) locks
  Record* prev = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    PendingWrite& pw = ws[order[i]];
    if (pw.record == prev) {
      locked_end = i + 1;
      continue;
    }
    if (!pw.record->TryLockOcc()) {
      txn.conflict_record = pw.record;
      txn.conflict_op = pw.op;
      txn.conflicts.emplace_back(pw.record, pw.op);
      // Unlock the prefix we own.
      Record* p = nullptr;
      for (std::size_t j = 0; j < locked_end; ++j) {
        Record* r = ws[order[j]].record;
        if (r != p) {
          r->UnlockOcc();
          p = r;
        }
      }
      return TxnStatus::kConflict;
    }
    if (pw.record->IsDead()) {
      // The epoch sweeper unlinked this record between Route and commit; a committed
      // write here would be lost (new lookups reach a fresh record). Treat as a
      // conflict: the retry re-routes.
      pw.record->UnlockOcc();
      txn.conflict_record = pw.record;
      txn.conflict_op = pw.op;
      txn.conflicts.emplace_back(pw.record, pw.op);
      Record* p = nullptr;
      for (std::size_t j = 0; j < locked_end; ++j) {
        Record* r = ws[order[j]].record;
        if (r != p) {
          r->UnlockOcc();
          p = r;
        }
      }
      return TxnStatus::kConflict;
    }
    prev = pw.record;
    locked_end = i + 1;
    max_seen = std::max(max_seen, Record::TidOf(pw.record->LoadTidWord()));
  }

  for (const ReadEntry& e : rs) {
    max_seen = std::max(max_seen, e.tid);
  }
  const std::uint64_t commit_tid = w.GenerateTid(max_seen);

  // Part 2: validate the scan set (phantom protection: any insert into a traversed
  // index partition bumped its version) and the read set. On failure the whole set is
  // still scanned so every conflicting record is reported (the contention classifier
  // needs co-hot records, not just the first failure).
  for (const IndexScanEntry& e : txn.scan_set()) {
    if (e.partition->version.load(std::memory_order_acquire) != e.version) {
      txn.scan_conflict = true;
      // Phantom: a concurrent insert moved the stripe under the scan. No record to
      // blame, so the conflict is charged to the partition itself.
      e.partition->scan_conflicts.fetch_add(1, std::memory_order_relaxed);
      if (txn.scan_set_conflicts.size() < 8) {
        txn.scan_set_conflicts.push_back(ScanSetConflict{e.table, e.part_index});
      }
    }
  }
  for (const ReadEntry& e : rs) {
    const std::uint64_t word = e.record->LoadTidWord();
    const PendingWrite* own = txn.FindOwnWrite(e.record);
    if (Record::TidOf(word) != e.tid ||
        (Record::IsLocked(word) && own == nullptr)) {
      if (txn.conflict_record == nullptr) {
        txn.conflict_record = e.record;
        txn.conflict_op = own != nullptr ? own->op : OpCode::kGet;
      }
      if (txn.conflicts.size() < 8) {
        txn.conflicts.emplace_back(e.record,
                                   own != nullptr ? own->op : OpCode::kGet);
      }
      if (e.scan_part >= 0) {
        // The record was reached through a scan: also charge the scan window's
        // partition, naming the record and the op its winning writers last applied —
        // the classifier's cue that splitting this record would relieve the window.
        const std::uint64_t table = e.record->key().hi;
        if (OrderedIndex::TableIndex* t = store_.index().FindTable(table)) {
          t->partitions[static_cast<std::size_t>(e.scan_part)].scan_conflicts.fetch_add(
              1, std::memory_order_relaxed);
        }
        if (txn.scan_set_conflicts.size() < 8) {
          txn.scan_set_conflicts.push_back(ScanSetConflict{
              table, static_cast<std::uint32_t>(e.scan_part), true, e.record->key(),
              static_cast<OpCode>(e.record->last_write_op())});
        }
      }
    }
  }
  if (txn.conflict_record != nullptr || txn.scan_conflict) {
    Record* p = nullptr;
    for (std::size_t i = 0; i < n; ++i) {
      Record* r = ws[order[i]].record;
      if (r != p) {
        r->UnlockOcc();
        p = r;
      }
    }
    return TxnStatus::kConflict;
  }

  // Part 3: apply and release. Same-record writes are adjacent in commit order and
  // applied in issue order (the slot tie-break); the record is unlocked after its last
  // buffered write. A record becoming logically present enters the ordered index before
  // its unlock, so a scan that validates after this commit point either saw the entry
  // or fails on the partition version.
  for (std::size_t i = 0; i < n; ++i) {
    const PendingWrite& pw = ws[order[i]];
    Record* r = pw.record;
    const bool was_present = r->PresentLocked();
    ApplyWriteToRecord(pw, txn.arena());
    if (pw.op == OpCode::kDelete) {
      // Present -> absent: leave the index before the unlock, mirroring the insert
      // ordering — a scan validating after this commit point fails on the bumped
      // partition version instead of resolving a vanished key.
      if (was_present) {
        store_.index().Remove(r->key());
      }
    } else if (!was_present) {
      store_.index().Insert(r->key(), r);
    }
    if (i + 1 == n || ws[order[i + 1]].record != r) {
      r->UnlockOccSetTid(commit_tid);
    }
  }
  return TxnStatus::kCommitted;
}

TxnStatus OccEngine::Commit(Worker& w, Txn& txn) { return OccCommit(w, txn); }

void OccEngine::Abort(Worker& w, Txn& txn) {
  // OCC holds no resources during execution.
  (void)w;
  (void)txn;
}

}  // namespace doppel
