#include "src/txn/apply.h"

#include <string>
#include <utility>

#include "src/common/dassert.h"

namespace doppel {
namespace {

// Materializes an ordered-op tuple from the arena-addressed operand. The payload copy
// into a std::string is unavoidable here: the record stores owning strings, and the
// arena's bytes are recycled at the next Txn::Reset.
OrderedTuple TupleOf(const PendingWrite& w, const WriteArena& arena) {
  return OrderedTuple{w.OrderOf(arena), w.core, std::string(w.PayloadOf(arena))};
}

}  // namespace

void ApplyWriteToRecord(const PendingWrite& w, const WriteArena& arena) {
  Record* r = w.record;
  switch (w.op) {
    case OpCode::kPutInt:
      r->SetInt(w.n);
      break;
    case OpCode::kAdd:
      r->SetInt((r->PresentLocked() ? r->IntValueLocked() : 0) + w.n);
      break;
    case OpCode::kMax:
      r->SetInt(r->PresentLocked() ? std::max(r->IntValueLocked(), w.n) : w.n);
      break;
    case OpCode::kMin:
      r->SetInt(r->PresentLocked() ? std::min(r->IntValueLocked(), w.n) : w.n);
      break;
    case OpCode::kMult:
      r->SetInt((r->PresentLocked() ? r->IntValueLocked() : 1) * w.n);
      break;
    case OpCode::kPutBytes: {
      const std::string_view payload = w.PayloadOf(arena);
      r->MutateComplex([&](ComplexValue& cv) {
        std::get<std::string>(cv).assign(payload.data(), payload.size());
      });
      break;
    }
    case OpCode::kOPut: {
      const bool was_present = r->PresentLocked();
      r->MutateComplex([&](ComplexValue& cv) {
        auto& cur = std::get<OrderedTuple>(cv);
        OrderedTuple next = TupleOf(w, arena);
        if (!was_present || OrderedTuple::Wins(next, cur)) {
          cur = std::move(next);
        }
      });
      break;
    }
    case OpCode::kTopKInsert:
      r->MutateComplex(
          [&](ComplexValue& cv) { std::get<TopKSet>(cv).Insert(TupleOf(w, arena)); });
      break;
    case OpCode::kDelete:
      r->SetAbsent();
      break;
    case OpCode::kGet:
      DOPPEL_CHECK(false);  // reads are never buffered as writes
      break;
  }
  r->NoteWriteOp(static_cast<std::uint8_t>(w.op));
}

void ApplyWriteToResult(const PendingWrite& w, const WriteArena& arena,
                        ReadResult* res) {
  switch (w.op) {
    case OpCode::kPutInt:
      res->i = w.n;
      break;
    case OpCode::kAdd:
      res->i = (res->present ? res->i : 0) + w.n;
      break;
    case OpCode::kMax:
      res->i = res->present ? std::max(res->i, w.n) : w.n;
      break;
    case OpCode::kMin:
      res->i = res->present ? std::min(res->i, w.n) : w.n;
      break;
    case OpCode::kMult:
      res->i = (res->present ? res->i : 1) * w.n;
      break;
    case OpCode::kPutBytes:
      res->complex = std::string(w.PayloadOf(arena));
      break;
    case OpCode::kOPut: {
      OrderedTuple next = TupleOf(w, arena);
      if (!res->present) {
        res->complex = std::move(next);
      } else {
        auto& cur = std::get<OrderedTuple>(res->complex);
        if (OrderedTuple::Wins(next, cur)) {
          cur = std::move(next);
        }
      }
      break;
    }
    case OpCode::kTopKInsert: {
      if (!res->present) {
        res->complex = TopKSet();
      }
      std::get<TopKSet>(res->complex).Insert(TupleOf(w, arena));
      break;
    }
    case OpCode::kDelete:
      // Installs absence; later buffered ops (a reinsert in the same transaction)
      // rebuild from the absent state exactly like commit-time application does.
      res->present = false;
      res->i = 0;
      return;
    case OpCode::kGet:
      DOPPEL_CHECK(false);
      break;
  }
  res->present = true;
}

}  // namespace doppel
