// A "top-k" leaderboard in the style of news aggregators (§1 cites Reddit's top-k lists):
// many writers submit scored entries into one global top-10 board (TopKInsert), while the
// front page reads it. Shows split top-K sets merging to the exact global answer.
//
// Usage: leaderboard [seconds]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/core/database.h"
#include "src/workload/driver.h"

namespace {

using namespace doppel;

constexpr std::size_t kBoardK = 10;
const Key kBoard = Key::FromU64(999);

class SubmitterSource : public TxnSource {
 public:
  explicit SubmitterSource(int worker_id) : worker_id_(worker_id) {}

  TxnRequest Next(Worker& w) override {
    TxnRequest r;
    r.proc = +[](Txn& txn, const TxnArgs& a) {
      txn.TopKInsert(kBoard, OrderKey{a.n, static_cast<std::int64_t>(a.k2.lo)},
                     "story-" + std::to_string(a.k2.lo), kBoardK);
    };
    r.args.tag = kTagWrite;
    r.args.n = static_cast<std::int64_t>(w.rng.NextBounded(1 << 30));  // score
    r.args.k2 = Key::FromU64(worker_id_ * 1000000000ULL + next_id_++);  // story id
    return r;
  }

 private:
  const int worker_id_;
  std::uint64_t next_id_ = 1;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace doppel;
  const double seconds = argc > 1 ? std::atof(argv[1]) : 1.0;

  Options opts;
  opts.protocol = Protocol::kDoppel;
  Database db(opts);
  db.store().LoadTopK(kBoard, kBoardK);

  RunMetrics m = RunWorkload(
      db, [](int w) { return std::make_unique<SubmitterSource>(w); },
      static_cast<std::uint64_t>(seconds * 1000));

  std::printf("leaderboard: %.2fM submissions/sec, board split: %s\n",
              m.throughput / 1e6, m.split_records > 0 ? "yes" : "no");

  const auto snap = db.store().ReadSnapshot(kBoard);
  const auto& board = std::get<TopKSet>(snap.value);
  std::printf("final top-%zu:\n", board.size());
  for (const OrderedTuple& t : board.items()) {
    std::printf("  score=%10lld  %s\n", static_cast<long long>(t.order.primary),
                t.payload.c_str());
  }
  // Sanity: descending by (score, core).
  const bool sorted = std::is_sorted(
      board.items().begin(), board.items().end(),
      [](const OrderedTuple& a, const OrderedTuple& b) { return OrderedTuple::Wins(a, b); });
  std::printf("order check: %s\n", sorted ? "OK" : "BROKEN");
  return sorted ? 0 : 1;
}
