// Benchmark drivers.
//
// Closed-loop (§8.1): each worker generates its own transactions via a TxnSource and
// executes them back-to-back for a fixed duration; reports throughput (committed
// transactions / elapsed) and latency stats. "Each point is the mean of three consecutive
// runs, with error bars showing min and max."
//
// Open-loop: external submitter threads push transactions through Database::Submit at a
// paced offered load (or flat out), so submission→commit latency includes inbox queueing
// and backpressure is visible as rejected submissions — the server-facing regime the
// closed-loop driver cannot measure.
#ifndef DOPPEL_SRC_WORKLOAD_DRIVER_H_
#define DOPPEL_SRC_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <vector>

#include "src/common/stats.h"
#include "src/core/database.h"

namespace doppel {

struct RunMetrics {
  double seconds = 0.0;
  std::uint64_t committed = 0;
  double throughput = 0.0;  // txns/sec
  Database::Stats stats;    // exact post-stop aggregation (includes warmup)
  std::size_t split_records = 0;
  std::uint64_t phase_cycles = 0;

  // Store occupancy at end of run. The record map never resizes, so a load factor
  // drifting past ~4 means chains are long and store_capacity should grow — the driver
  // warns on stderr when it does. reclaimed_records counts records the epoch sweeper
  // physically freed (0 when reclamation is disabled or the protocol is kAtomic).
  std::size_t store_records = 0;
  std::size_t store_buckets = 0;
  double store_load_factor = 0.0;
  std::uint64_t reclaimed_records = 0;

  // Durability-side accounting (zero when the run had no wal_dir), so logging overhead
  // is visible next to every throughput number. See report.h WalSummary.
  bool wal_enabled = false;
  std::uint64_t wal_appended_txns = 0;
  std::uint64_t wal_flushed_batches = 0;
  std::uint64_t wal_flushed_bytes = 0;
  std::uint64_t wal_segments = 0;
  std::uint64_t wal_checkpoints = 0;
  std::uint64_t wal_cuts = 0;  // replication-cut records emitted at phase barriers
  // Durability health: transient-I/O retries absorbed inside the persist layer,
  // checkpoints that rolled back (retried at a later barrier), and whether the run
  // ended in read-only degraded mode (plus the first permanent failure's errno and
  // syscall name — wal_failed_op is a static string, never null).
  std::uint64_t wal_io_retries = 0;
  std::uint64_t wal_checkpoint_failures = 0;
  bool wal_degraded = false;
  int wal_failed_errno = 0;
  const char* wal_failed_op = "";

  // Replication-side accounting (FillReplicaMetrics; zero when no replica attached):
  // flushed/shipped/applied watermarks and the staleness bound a replica read carries.
  bool replica_enabled = false;
  std::uint64_t replica_cut_tid = 0;
  std::uint64_t replica_cuts = 0;
  std::uint64_t replica_applied_txns = 0;
  std::uint64_t replica_shipped_bytes = 0;
  std::uint64_t replica_lag_bytes = 0;
  std::uint64_t replica_lag_entries = 0;
  std::uint64_t replica_publish_lag_p99_us = 0;
};

class Replica;
// Copies a replica's shipping/apply watermarks and publish-lag p99 into `m` (sets
// replica_enabled). Call after the replica has caught up for end-of-run numbers.
void FillReplicaMetrics(const Replica& replica, RunMetrics* m);

// Starts `db` with `factory`, warms up, measures for `measure_ms`, stops, aggregates.
// The database must be freshly constructed (Start/Stop are one-shot). `on_started`,
// when set, runs right after Start — before warmup — so callers can attach run-scoped
// observers (e.g. a read replica: AttachReplica requires a started database).
RunMetrics RunWorkload(Database& db, SourceFactory factory, std::uint64_t measure_ms,
                       std::uint64_t warmup_ms = 100,
                       const std::function<void(Database&)>& on_started = nullptr);

// Like RunWorkload but samples cumulative commits every `sample_ms` (Fig. 10). The
// returned series holds throughput (txns/sec) per sample interval.
struct TimeSeries {
  std::vector<double> seconds;
  std::vector<double> throughput;
};
RunMetrics RunWorkloadTimeSeries(Database& db, SourceFactory factory,
                                 std::uint64_t measure_ms, std::uint64_t sample_ms,
                                 TimeSeries* series,
                                 const std::function<void(std::uint64_t ms)>& on_tick);

// ---- Open-loop driver ----

// Generates one request per call on a submitter thread. `submitter_id` is 0-based;
// `rng` is the submitter's private generator.
using RequestGen = std::function<TxnRequest(int submitter_id, Rng& rng)>;

struct OpenLoopOptions {
  int submitters = 4;
  // Total offered load across all submitters, txns/sec. 0 = unpaced: submit as fast as
  // the inboxes accept.
  double offered_per_sec = 0.0;
  std::uint64_t measure_ms = 1000;
  // Per-submitter cap on handles awaited at once; bounds memory at high offered loads.
  std::size_t max_outstanding = 4096;
};

struct OpenLoopMetrics {
  double seconds = 0.0;
  std::uint64_t offered = 0;    // generation attempts (incl. rejected)
  std::uint64_t rejected = 0;   // TrySubmit returned kQueueFull
  std::uint64_t accepted = 0;
  std::uint64_t committed = 0;  // of accepted, handles that reported commit
  double throughput = 0.0;      // committed/sec over the submission window
  // submission→commit latency (stamped at Submit acceptance; includes inbox queueing,
  // conflict retries, and stash delay), merged across all tags.
  LatencyHistogram latency;
  Database::Stats stats;  // exact post-stop aggregation
};

// Starts `db` with no sources, runs `opts.submitters` external threads submitting
// `gen`-produced requests for `opts.measure_ms`, waits for every accepted handle, stops
// the database, and aggregates. The database must be freshly constructed.
OpenLoopMetrics RunOpenLoop(Database& db, const RequestGen& gen,
                            const OpenLoopOptions& opts);

}  // namespace doppel

#endif  // DOPPEL_SRC_WORKLOAD_DRIVER_H_
