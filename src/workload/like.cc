#include "src/workload/like.h"

namespace doppel {
namespace {

// Write: record the user's like (their row stores the liked page id) and increment the
// page's like count. The count update is the commutative, contended part.
void LikeWriteProc(Txn& txn, const TxnArgs& args) {
  txn.PutInt(args.k1, static_cast<std::int64_t>(args.k2.lo));  // user row <- page id
  txn.Add(args.k2, 1);                                         // page like count
}

// Read: the user's last like and the page's like count.
void LikeReadProc(Txn& txn, const TxnArgs& args) {
  (void)txn.GetInt(args.k1);
  (void)txn.GetInt(args.k2);
}

}  // namespace

void PopulateLike(Store& store, const LikeConfig& cfg) {
  for (std::uint64_t u = 0; u < cfg.num_users; ++u) {
    store.LoadInt(LikeUserKey(u), 0);
  }
  for (std::uint64_t p = 0; p < cfg.num_pages; ++p) {
    store.LoadInt(LikePageKey(p), 0);
  }
}

TxnRequest LikeSource::Next(Worker& w) {
  TxnRequest r;
  const std::uint64_t user = w.rng.NextBounded(cfg_.num_users);
  const std::uint64_t page =
      cfg_.alpha == 0.0 ? w.rng.NextBounded(cfg_.num_pages) : zipf_->Next(w.rng);
  r.args.k1 = LikeUserKey(user);
  r.args.k2 = LikePageKey(page);
  if (w.rng.Chance(cfg_.write_pct)) {
    r.proc = &LikeWriteProc;
    r.args.tag = kTagWrite;
  } else {
    r.proc = &LikeReadProc;
    r.args.tag = kTagRead;
  }
  return r;
}

SourceFactory MakeLikeFactory(const LikeConfig& cfg, const ZipfianGenerator* zipf) {
  return [cfg, zipf](int) { return std::make_unique<LikeSource>(cfg, zipf); };
}

}  // namespace doppel
