// Shared WAL segment decoding: the wire-format constants, the decoded entry structs,
// a whole-file parser (recovery), an incremental tailer (read replicas), and the
// single redo-apply primitive both consumers share.
//
// Segment layout (see wal.cc for the encoder):
//   u32 magic, u32 version, u64 segment_number
//   entries: u32 payload_len, u32 payload_crc, payload
// Entry payload, version 2:
//   u8 entry_type (kTxn | kCut)
//   kTxn: u64 commit_tid, u16 op_count, ops...
//   kCut: u64 cut_tid, u64 wall_ns
// Version 1 segments have no type byte (every entry is a transaction); both readers
// here accept either version, so a directory written by an older build still recovers.
//
// A replication cut is appended by the primary at joined-phase quiesce barriers
// (workers parked, per-core slices merged) carrying the maximum committed TID. Because
// the WAL flushes every buffered entry before writing the cut, the log prefix ending
// at a cut is exactly the barrier's transaction-consistent state — the property read
// replicas rely on to publish snapshots that never fall between transactions.
#ifndef DOPPEL_SRC_PERSIST_LOG_READER_H_
#define DOPPEL_SRC_PERSIST_LOG_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/persist/io_env.h"
#include "src/store/store.h"
#include "src/txn/op.h"
#include "src/txn/txn.h"

namespace doppel {

// ---- Wire-format constants (shared by the encoder in wal.cc) ----
constexpr std::uint32_t kWalSegmentMagic = 0x4c415744;  // "DWAL"
// v1: bare transaction payloads. v2: every entry payload starts with a type byte so
// replication-cut records can ride in the same log. v3: op payloads may carry
// OpCode::kDelete (the encoding is unchanged — the bump exists so pre-delete readers
// reject segments whose op codes they would misinterpret). Readers here accept all
// three; op codes are validated against kNumOps either way.
constexpr std::uint32_t kWalSegmentVersion = 3;
constexpr std::size_t kWalSegmentHeaderBytes =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t);
// An entry's payload can't plausibly exceed this; a larger length prefix is a tear or
// corruption, not data (the group-commit path writes entries far smaller).
constexpr std::uint32_t kWalMaxEntryBytes = 64u << 20;

enum class WalEntryType : std::uint8_t { kTxn = 0, kCut = 1 };

// ---- Decoded entries ----

struct WalOp {
  OpCode op = OpCode::kGet;
  Key key;
  std::int64_t n = 0;
  OrderKey order;
  std::uint32_t core = 0;
  std::uint32_t topk_k = 0;
  std::string payload;
};

struct WalTxn {
  std::uint64_t tid = 0;
  std::vector<WalOp> ops;
};

struct WalCut {
  std::uint64_t cut_tid = 0;   // max committed TID at the barrier
  std::uint64_t wall_ns = 0;   // primary's steady clock at emission (lag accounting)
};

struct WalEntry {
  WalEntryType type = WalEntryType::kTxn;
  WalTxn txn;
  WalCut cut;
};

// ---- Incremental segment tailer ----
//
// Reads one segment file from the front, returning complete entries one at a time and
// never consuming past a partially-flushed tail: a short read or half-written entry
// reports kNeedMore, and the next call re-reads the tail — the live-replication case,
// where the primary is still appending. kCorrupt means more bytes cannot fix what is
// there (bad magic/version, an insane length prefix, a CRC failure over a fully
// present body, or a malformed CRC-valid entry); for the segment that was active at a
// crash, everything before that point is a committed prefix.
class SegmentTailer {
 public:
  // `env` routes the reads (nullptr = passthrough default); the replica injects
  // faults here to test tailer backoff.
  explicit SegmentTailer(std::string path, IoEnv* env = nullptr);
  ~SegmentTailer();
  SegmentTailer(const SegmentTailer&) = delete;
  SegmentTailer& operator=(const SegmentTailer&) = delete;

  enum class Status { kEntry, kNeedMore, kCorrupt };
  Status Next(WalEntry* out);

  // ---- Read-error visibility (single-threaded, like the tailer itself) ----
  //
  // EINTR is retried inline (counted in read_retries). Any other read error stops the
  // current fill — Next then reports kNeedMore over what is already buffered — and is
  // recorded here so the caller can distinguish "no new bytes yet" from "the read
  // failed" and back off instead of hot-polling a sick disk. Consumed offsets never
  // advance past a failed read, so cut alignment is unaffected.
  std::uint64_t read_retries() const { return read_retries_; }
  // Returns-and-clears the errno of the last failed read (0 = none since last taken).
  int TakeLastReadError() {
    const int e = last_read_errno_;
    last_read_errno_ = 0;
    return e;
  }

  // File offset one past the last fully-consumed entry (includes the segment header
  // once parsed). Never moves past a partial or damaged entry.
  std::uint64_t consumed_bytes() const { return consumed_; }
  // Entry bytes consumed (consumed_bytes minus the 16-byte segment header).
  std::uint64_t payload_consumed() const {
    return header_done_ ? consumed_ - kWalSegmentHeaderBytes : 0;
  }
  std::uint64_t entries() const { return entries_; }
  std::uint64_t segment_number() const { return segment_number_; }
  bool opened() const { return fd_ >= 0; }

  // Drops buffered-but-unconsumed tail bytes and re-reads from consumed_bytes() on the
  // next call. Used after the file may have been truncated behind us: a restarted
  // primary trims a torn tail back to exactly the valid prefix (which is where a
  // stopped tailer already stands) before opening its next segment.
  void ResetTail();

 private:
  bool EnsureOpen();
  // Ensures >= `need` unconsumed bytes are buffered (reading more from the file as
  // available); returns the number actually buffered.
  std::size_t FillTo(std::size_t need);
  void Consume(std::size_t n);

  const std::string path_;
  IoEnv* const env_;  // never null
  int fd_ = -1;
  std::uint64_t read_retries_ = 0;
  int last_read_errno_ = 0;
  std::uint64_t consumed_ = 0;  // absolute file offset of buf_[pos_]
  std::vector<char> buf_;       // window starting at consumed_ - (nothing before pos_)
  std::size_t pos_ = 0;         // parse cursor into buf_
  bool header_done_ = false;
  std::uint32_t version_ = 0;
  std::uint64_t segment_number_ = 0;
  std::uint64_t entries_ = 0;
};

// Parses a whole segment file. Returns true only when the file parsed cleanly to its
// end; false with everything parsed so far appended (the committed prefix) on a torn
// tail, corruption, or a missing/unrecognizable file. `cuts` may be null (recovery
// skips cut records); `valid_prefix_bytes`, if non-null, receives the byte offset of
// the end of the last complete entry (0 for a missing file or damaged header).
bool ParseWalSegment(const std::string& path, std::vector<WalTxn>* txns,
                     std::vector<WalCut>* cuts, std::uint64_t* valid_prefix_bytes);

// Redo one logical operation against the store, maintaining the ordered index exactly
// like a live commit does (a record entering logical presence becomes scannable).
// `arena` is per-caller scratch for the op's operand block (cleared each call). Used by
// recovery replay and by replica window application; per-record correctness needs only
// that each record's ops are applied in commit-TID order.
void ApplyWalOp(Store* store, const WalOp& op, std::uint64_t tid, WriteArena* arena);

}  // namespace doppel

#endif  // DOPPEL_SRC_PERSIST_LOG_READER_H_
