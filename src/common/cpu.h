// CPU topology helpers: core counts and thread pinning.
//
// The paper pins one worker per core and adds cores socket-at-a-time; we expose pinning
// as an option (Options::pin_threads) since CI machines may disallow affinity changes.
#ifndef DOPPEL_SRC_COMMON_CPU_H_
#define DOPPEL_SRC_COMMON_CPU_H_

namespace doppel {

// Number of logical CPUs available to this process.
int NumCpus();

// Pin the calling thread to `cpu` (modulo the available CPU count). Returns false if the
// affinity call fails (e.g. restricted sandbox); callers treat that as non-fatal.
bool PinThreadToCpu(int cpu);

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_CPU_H_
