// Clang thread-safety-analysis annotations (compile-time concurrency contracts).
//
// Under clang, building with -Wthread-safety (CI: -Werror=thread-safety) machine-checks
// the locking discipline these macros declare: which lock guards which member
// (GUARDED_BY), which functions must be entered with a lock held (REQUIRES), and which
// acquire/release one (ACQUIRE/RELEASE, SCOPED_CAPABILITY guards). Under GCC — the
// default local toolchain — every macro expands to nothing and the code is unchanged.
//
// Conventions (see README "Correctness tooling"):
//  * Lock-like types are declared CAPABILITY ("mutex" for exclusive, "shared_mutex"
//    when a shared mode exists). The annotated primitives live in
//    src/common/spinlock.h (Spinlock, RWSpinlock) and src/common/mutex.h (Mutex,
//    SharedMutex + scoped guards). Naked std::mutex / std::shared_mutex outside
//    src/common/mutex.h is rejected by tools/lint_concurrency.py.
//  * Data written only under a lock is GUARDED_BY(that lock); helpers called with the
//    lock already held are REQUIRES(lock) and named *Locked by house style.
//  * What the analysis cannot model — lock sets held across function boundaries (2PL),
//    acquiring a variable set of locks in a loop (NarrowTable), seqlock/TID-word
//    protocols — gets NO_THREAD_SAFETY_ANALYSIS with a one-line invariant rationale
//    directly above it. The lint rejects rationale-free escapes.
#ifndef DOPPEL_SRC_COMMON_ANNOTATIONS_H_
#define DOPPEL_SRC_COMMON_ANNOTATIONS_H_

#if defined(__clang__)
#define DOPPEL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DOPPEL_THREAD_ANNOTATION_(x)  // no-op: GCC has no thread-safety analysis
#endif

// A type that acts as a lock. `x` names the capability kind ("mutex", "shared_mutex").
#define CAPABILITY(x) DOPPEL_THREAD_ANNOTATION_(capability(x))

// An RAII type whose constructor acquires a capability and destructor releases it.
#define SCOPED_CAPABILITY DOPPEL_THREAD_ANNOTATION_(scoped_lockable)

// Data member readable/writable only while holding `x`.
#define GUARDED_BY(x) DOPPEL_THREAD_ANNOTATION_(guarded_by(x))

// Pointer member whose *pointee* is protected by `x` (the pointer itself is not).
#define PT_GUARDED_BY(x) DOPPEL_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering declarations (deadlock avoidance).
#define ACQUIRED_BEFORE(...) DOPPEL_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) DOPPEL_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// The function must be called with the capability held (exclusive / shared).
#define REQUIRES(...) DOPPEL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DOPPEL_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability and returns holding it (and dually, releases).
#define ACQUIRE(...) DOPPEL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DOPPEL_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DOPPEL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DOPPEL_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
// Releases a capability held in either mode (scoped guards over RW locks).
#define RELEASE_GENERIC(...) \
  DOPPEL_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

// The function tries to acquire and reports success as `b` (true/false).
#define TRY_ACQUIRE(...) DOPPEL_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  DOPPEL_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

// The function must NOT be called with the capability held (it acquires it itself;
// calling with it held would self-deadlock).
#define EXCLUDES(...) DOPPEL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Runtime assertion that the calling thread holds the capability (informs the analysis
// without acquiring).
#define ASSERT_CAPABILITY(x) DOPPEL_THREAD_ANNOTATION_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  DOPPEL_THREAD_ANNOTATION_(assert_shared_capability(x))

// The function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) DOPPEL_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: skip analysis for one function. House rule (lint-enforced): every use
// carries a one-line invariant rationale comment directly above it.
#define NO_THREAD_SAFETY_ANALYSIS DOPPEL_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // DOPPEL_SRC_COMMON_ANNOTATIONS_H_
