// google-benchmark microbenchmarks for the substrates: record map, seqlock reads, top-K
// sets, Zipfian sampling, conflict sampler, and single-transaction commit paths.
#include <benchmark/benchmark.h>

#include "src/common/rand.h"
#include "src/common/zipf.h"
#include "src/core/sampler.h"
#include "src/store/record_map.h"
#include "src/store/store.h"
#include "src/txn/occ_engine.h"
#include "src/txn/twopl_engine.h"
#include "src/txn/worker.h"

namespace doppel {
namespace {

void BM_RecordMapFind(benchmark::State& state) {
  RecordMap map(1 << 16);
  for (std::uint64_t i = 0; i < (1 << 15); ++i) {
    map.GetOrCreate(Key::FromU64(i), RecordType::kInt64);
  }
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(Key::FromU64(rng.NextBounded(1 << 15))));
  }
}
BENCHMARK(BM_RecordMapFind);

void BM_RecordMapGetOrCreate(benchmark::State& state) {
  RecordMap map(1 << 20);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.GetOrCreate(Key::FromU64(i++), RecordType::kInt64));
  }
}
BENCHMARK(BM_RecordMapGetOrCreate);

void BM_RecordReadIntSeqlock(benchmark::State& state) {
  Record r(Key::FromU64(1), RecordType::kInt64, 0);
  r.LockOcc();
  r.SetInt(42);
  r.UnlockOccSetTid(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.ReadInt());
  }
}
BENCHMARK(BM_RecordReadIntSeqlock);

void BM_TopKInsert(benchmark::State& state) {
  TopKSet set(static_cast<std::size_t>(state.range(0)));
  Rng rng(7);
  std::int64_t i = 0;
  for (auto _ : state) {
    set.Insert(OrderedTuple{
        OrderKey{static_cast<std::int64_t>(rng.NextBounded(1000000)), i++}, 0, "x"});
  }
}
BENCHMARK(BM_TopKInsert)->Arg(10)->Arg(100);

void BM_TopKMerge(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  TopKSet a(k);
  TopKSet b(k);
  Rng rng(7);
  for (std::size_t i = 0; i < k; ++i) {
    a.Insert(OrderedTuple{OrderKey{static_cast<std::int64_t>(rng.Next() % 1000), 0}, 0, "a"});
    b.Insert(OrderedTuple{OrderKey{static_cast<std::int64_t>(rng.Next() % 1000), 1}, 1, "b"});
  }
  for (auto _ : state) {
    TopKSet merged = a;
    merged.MergeFrom(b);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_TopKMerge)->Arg(10)->Arg(100);

void BM_ZipfNext(benchmark::State& state) {
  const ZipfianGenerator zipf(1000000, 1.4);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfNext);

void BM_ConflictSamplerRecord(benchmark::State& state) {
  ConflictSampler sampler(/*sample_every=*/1);
  Rng rng(13);
  for (auto _ : state) {
    sampler.RecordConflict(Key::FromU64(rng.NextBounded(64)), OpCode::kAdd);
  }
}
BENCHMARK(BM_ConflictSamplerRecord);

void BM_OccCommitSingleAdd(benchmark::State& state) {
  Store store(1 << 10);
  store.LoadInt(Key::FromU64(1), 0);
  OccEngine engine(store);
  Worker w(0, 99);
  for (auto _ : state) {
    Txn& txn = w.txn;
    txn.Reset(&engine, &w);
    txn.Add(Key::FromU64(1), 1);
    benchmark::DoNotOptimize(engine.Commit(w, txn));
  }
}
BENCHMARK(BM_OccCommitSingleAdd);

void BM_TwoPLCommitSingleAdd(benchmark::State& state) {
  Store store(1 << 10);
  store.LoadInt(Key::FromU64(1), 0);
  TwoPLEngine engine(store);
  Worker w(0, 99);
  for (auto _ : state) {
    Txn& txn = w.txn;
    txn.Reset(&engine, &w);
    txn.Add(Key::FromU64(1), 1);
    benchmark::DoNotOptimize(engine.Commit(w, txn));
  }
}
BENCHMARK(BM_TwoPLCommitSingleAdd);

}  // namespace
}  // namespace doppel

BENCHMARK_MAIN();
