// RUBiS transaction procedures (§7).
//
// The six §7-modified transactions use Doppel operations: StoreBid (Fig. 7: Max + OPut +
// Add + TopKInsert), StoreComment (Add on userRating), StoreItem (TopKInsert into the
// category/region indexes), and the readers of top-K index records. StoreBidPlain is
// the original Fig. 6 form (explicit read-modify-write), kept for the ablation that
// shows non-commutative programming forfeits Doppel's parallelism.
// SearchItemsByCategory is instead a real serializable range scan over the ordered
// (category, item) index (Txn::Scan with phantom protection; see schema.h).
//
// Argument conventions (TxnArgs):
//   k1  - primary row key (item/user/category/region key as documented per proc)
//   k2  - freshly allocated row key for inserts (bid/comment/buy_now/item/user)
//   n   - amount (bid value, rating)
//   aux - acting user id (bidder/commenter/buyer) or browse start index
//   submit_ns - also used as the coarse timestamp for OPut orders (Fig. 7's
//               GetTimestamp()); stable across retries of the same transaction
//
// Procedures derive item attributes (seller, category, region) with the deterministic
// rules in data.h against rubis::ActiveConfig().
#ifndef DOPPEL_SRC_RUBIS_TXNS_H_
#define DOPPEL_SRC_RUBIS_TXNS_H_

#include "src/rubis/data.h"
#include "src/txn/request.h"
#include "src/txn/txn.h"

namespace doppel {
namespace rubis {

// ---- Read-only ----
void ViewItem(Txn& txn, const TxnArgs& a);             // k1 = ItemKey(item)
void ViewUserInfo(Txn& txn, const TxnArgs& a);         // k1 = UserKey(user)
void ViewBidHistory(Txn& txn, const TxnArgs& a);       // k1 = ItemKey(item)
void SearchItemsByCategory(Txn& txn, const TxnArgs& a);// k1 = CategoryKey(cat)
void SearchItemsByRegion(Txn& txn, const TxnArgs& a);  // k1 = RegionKey(region)
void BrowseCategories(Txn& txn, const TxnArgs& a);     // aux = start index
void BrowseRegions(Txn& txn, const TxnArgs& a);        // aux = start index
void AboutMe(Txn& txn, const TxnArgs& a);              // k1 = UserKey(user)

// ---- Read-write ----
void StoreBid(Txn& txn, const TxnArgs& a);        // Fig. 7; k1=ItemKey, k2=BidKey, n=amt, aux=bidder
void StoreBidPlain(Txn& txn, const TxnArgs& a);   // Fig. 6 form (ablation)
void StoreComment(Txn& txn, const TxnArgs& a);    // k1=ItemKey, k2=CommentKey, n=rating, aux=from
void StoreItem(Txn& txn, const TxnArgs& a);       // k1=ItemKey(new), aux=seller
void StoreBuyNow(Txn& txn, const TxnArgs& a);     // k1=ItemKey, k2=BuyNowKey, aux=buyer
void RegisterUser(Txn& txn, const TxnArgs& a);    // k1=UserKey(new)

// Plain-form MaxBidder lives in its own int table (type differs from the OPut form).
inline constexpr std::uint32_t kMaxBidderPlain = 32;
inline Key MaxBidderPlainKey(std::uint64_t item) { return Key::Table(kMaxBidderPlain, item); }

}  // namespace rubis
}  // namespace doppel

#endif  // DOPPEL_SRC_RUBIS_TXNS_H_
