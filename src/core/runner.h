// Drives one transaction attempt through an engine and routes the outcome: committed
// transactions are counted and their latency recorded (from args.submit_ns, stamped at
// submission so queueing delay is included); conflict aborts are scheduled for retry
// with exponential backoff; split-blocked transactions are stashed for the next joined
// phase (§8.1, §5.2). Terminal outcomes (commit / user abort) additionally deliver the
// TxnResult to the request's POD completion slot and, for external submissions, to the
// SubmitTicket behind the client's TxnHandle — including its OnComplete callback and the
// Database drain counter.
#ifndef DOPPEL_SRC_CORE_RUNNER_H_
#define DOPPEL_SRC_CORE_RUNNER_H_

#include <cstdint>

#include "src/persist/wal.h"
#include "src/txn/engine.h"
#include "src/txn/worker.h"

namespace doppel {

struct RunnerConfig {
  std::uint64_t backoff_min_ns = 2000;
  std::uint64_t backoff_max_ns = 1000000;
  WriteAheadLog* wal = nullptr;  // optional redo logging for committed transactions
  // Database's degraded latch: when set (permanent WAL failure), transactions with
  // writes are terminated with TxnAbort::kDurabilityLost before commit instead of
  // committing writes whose redo entries would be silently dropped. Read-only
  // transactions keep committing.
  const std::atomic<bool>* degraded = nullptr;
};

enum class RunOutcome {
  kCommitted,
  kRetryScheduled,
  kStashed,
  kUserAborted,
  kTypeMismatchAborted,  // terminal: the key exists with a different record type
  kDurabilityAborted,    // terminal: degraded read-only mode refused the writes
};

// Pushes `pt` onto the worker's retry heap with exponential backoff + jitter.
void ScheduleRetry(Worker& w, const RunnerConfig& cfg, PendingTxn&& pt);

// Delivers a terminal "aborted" outcome for a queued transaction that will never run
// again (Database::Stop sweeps inboxes / retry heaps / stashes after joining workers):
// fires the POD completion slot and the SubmitTicket (waking Wait-ers, running the
// OnComplete callback, releasing the drain counter).
void AbandonPendingTxn(PendingTxn&& pt);

// Executes one attempt of `pt` on `w` (which must be the calling thread's worker).
RunOutcome RunPendingTxn(Engine& engine, const RunnerConfig& cfg, Worker& w,
                         PendingTxn&& pt);

}  // namespace doppel

#endif  // DOPPEL_SRC_CORE_RUNNER_H_
