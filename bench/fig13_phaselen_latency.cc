// Figure 13: "Average read transaction latencies in Doppel with the LIKE benchmark,
// varying phase length": uniform, skewed 50/50, skewed write-heavy (10% reads).
#include "bench/phaselen_common.h"

int main(int argc, char** argv) {
  const auto flags = doppel::bench::ParseFlags(argc, argv);
  doppel::bench_phaselen::RunSweep(
      flags, "Figure 13: Doppel LIKE average read latency (us) vs phase length",
      [](const doppel::RunMetrics& m) {
        return doppel::FormatMicros(m.stats.latency_by_tag[doppel::kTagRead].Mean());
      });
  return 0;
}
