// A non-owning, non-allocating callable reference (the planned std::function_ref).
//
// std::function on a hot path costs a possible heap allocation at construction and an
// indirect call through type-erased storage; FunctionRef is two words (object pointer +
// thunk) and can never allocate. It does not extend the referenced callable's lifetime:
// only pass it down the stack (e.g. the scan callbacks threaded from Txn::Scan through
// an engine), never store it beyond the call.
#ifndef DOPPEL_SRC_COMMON_FUNCTION_REF_H_
#define DOPPEL_SRC_COMMON_FUNCTION_REF_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace doppel {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like function_ref.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        thunk_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return thunk_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*thunk_)(void*, Args...);
};

}  // namespace doppel

#endif  // DOPPEL_SRC_COMMON_FUNCTION_REF_H_
