// The shared global store: a concurrent record map plus non-transactional loading helpers
// used to pre-populate benchmarks ("we pre-allocate all the records", §8.1).
#ifndef DOPPEL_SRC_STORE_STORE_H_
#define DOPPEL_SRC_STORE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/spinlock.h"
#include "src/store/ordered_index.h"
#include "src/store/record_map.h"

namespace doppel {

class Store {
 public:
  explicit Store(std::size_t capacity_hint) : map_(capacity_hint) {}

  RecordMap& map() { return map_; }
  const RecordMap& map() const { return map_; }

  // Ordered per-table key index over the map; records appear when first logically
  // present. Engines consult it for Txn::Scan and maintain it at commit time.
  OrderedIndex& index() { return index_; }
  const OrderedIndex& index() const { return index_; }

  // Registers a table's ordered-index partition layout (shift, stripe count, adaptive
  // narrowing). Must run before the table's first insert or scan — typically right
  // before pre-population. Tables never configured get the default layout.
  void ConfigureTable(std::uint64_t table, const PartitionConfig& cfg) {
    index_.ConfigureTable(table, cfg);
  }

  Record* Find(const Key& key) const { return map_.Find(key); }
  std::size_t size() const { return map_.size(); }

  // Typed upsert for trusted internal paths (loaders, checkpoint restore, manual split
  // labels) whose types are self-consistent by construction.
  Record* GetOrCreate(const Key& key, RecordType type,
                      std::size_t topk_k = TopKSet::kDefaultK) {
    Record* r = map_.GetOrCreate(key, type, topk_k);
    DOPPEL_CHECK(r->type() == type);
    return r;
  }

  // Untrusted-path variant (engines routing client ops): returns the existing record
  // even on a type mismatch so the caller can turn it into a per-transaction abort
  // instead of killing the process.
  Record* GetOrCreateUnchecked(const Key& key, RecordType type, std::size_t topk_k) {
    return map_.GetOrCreate(key, type, topk_k == 0 ? TopKSet::kDefaultK : topk_k);
  }

  // ---- Physical record replacement + deferred frees (recovery / replica apply) ----
  // Replaces `key`'s logically-absent record with a fresh absent one of `type` (see
  // RecordMap::ReplaceWithType); the old record joins the store's retired list.
  Record* ReplaceAbsent(const Key& key, RecordType type, std::size_t topk_k) {
    Record* fresh;
    {
      SpinlockGuard lock(retired_mu_);
      fresh = map_.ReplaceWithType(key, type, topk_k == 0 ? TopKSet::kDefaultK : topk_k,
                                   &retired_);
    }
    return fresh;
  }
  // Appends sweep output to the retired list (replica apply under its publish lock).
  void RetireRecords(std::vector<Record*>* records) {
    SpinlockGuard lock(retired_mu_);
    retired_.insert(retired_.end(), records->begin(), records->end());
    records->clear();
  }
  // Frees everything retired so far. Caller guarantees no concurrent reader can still
  // hold a pointer to a retired record (end of recovery, replica under exclusive
  // publish lock, store teardown). Returns how many were freed.
  std::size_t FreeRetired() {
    std::vector<Record*> victims;
    {
      SpinlockGuard lock(retired_mu_);
      victims.swap(retired_);
    }
    for (Record* r : victims) {
      delete r;
    }
    return victims.size();
  }

  ~Store() { FreeRetired(); }

  // ---- Non-transactional loading (single writer or quiesced store) ----
  void LoadInt(const Key& key, std::int64_t v);
  void LoadBytes(const Key& key, std::string v);
  void LoadOrdered(const Key& key, OrderedTuple v);
  // Creates an empty top-K record with capacity k.
  void LoadTopK(const Key& key, std::size_t k);
  // Inserts one tuple into a top-K record (creating it with capacity k if needed).
  void LoadTopKItem(const Key& key, std::size_t k, OrderedTuple t);

  // Reads a committed snapshot (any time; used by tests and report code).
  Record::ValueSnapshot ReadSnapshot(const Key& key) const;

 private:
  static constexpr std::uint64_t kLoadTid = 2;  // above 0 so loaded != never-written

  RecordMap map_;
  OrderedIndex index_;
  // Unlinked-but-not-freed records (ReplaceAbsent / RetireRecords): physically out of
  // the map, awaiting a moment with no concurrent readers.
  mutable Spinlock retired_mu_;
  std::vector<Record*> retired_ GUARDED_BY(retired_mu_);
};

}  // namespace doppel

#endif  // DOPPEL_SRC_STORE_STORE_H_
