// Tests for the RUBiS port (§7): population, every transaction procedure, the auction
// metadata invariants, and the workload mixes.
#include <gtest/gtest.h>

#include <atomic>

#include "src/core/database.h"
#include "src/rubis/txns.h"
#include "src/rubis/workload.h"
#include "src/txn/occ_engine.h"
#include "src/workload/driver.h"
#include "tests/test_util.h"

namespace doppel {
namespace {

using rubis::Config;

Config SmallConfig() {
  Config c;
  c.num_users = 200;
  c.num_items = 50;
  c.num_categories = 5;
  c.num_regions = 4;
  return c;
}

class RubisFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    h_.engine = std::make_unique<OccEngine>(h_.store);
    h_.MakeWorkers(2);
    rubis::Populate(h_.store, SmallConfig());
  }

  TxnStatus Run(TxnProc proc, const TxnArgs& args) {
    Txn& txn = h_.workers[0]->txn;
    txn.Reset(h_.engine.get(), h_.workers[0].get());
    proc(txn, args);
    return h_.engine->Commit(*h_.workers[0], txn);
  }

  std::int64_t Int(const Key& k) { return testing::IntAt(h_.store, k); }

  testing::EngineHarness h_{1 << 16};
};

TEST_F(RubisFixture, PopulateCreatesAllTables) {
  const Config c = SmallConfig();
  EXPECT_TRUE(h_.store.ReadSnapshot(rubis::UserKey(c.num_users - 1)).present);
  EXPECT_TRUE(h_.store.ReadSnapshot(rubis::ItemKey(c.num_items - 1)).present);
  EXPECT_TRUE(h_.store.ReadSnapshot(rubis::CategoryKey(c.num_categories - 1)).present);
  EXPECT_TRUE(h_.store.ReadSnapshot(rubis::RegionKey(c.num_regions - 1)).present);
  EXPECT_EQ(Int(rubis::MaxBidKey(0)), 0);
  EXPECT_EQ(Int(rubis::NumBidsKey(0)), 0);
  EXPECT_EQ(Int(rubis::UserRatingKey(0)), 0);
  // Category indexes were seeded with the existing items.
  const auto idx =
      std::get<TopKSet>(h_.store.ReadSnapshot(rubis::ItemsByCategoryKey(0)).value);
  EXPECT_GT(idx.size(), 0u);
}

TEST_F(RubisFixture, StoreBidUpdatesAllMetadata) {
  TxnArgs a;
  a.k1 = rubis::ItemKey(7);
  a.k2 = rubis::BidKey(rubis::ShardedId(0, 1));
  a.aux = 42;    // bidder
  a.n = 500;     // amount
  a.submit_ns = 1000000;
  ASSERT_EQ(Run(&rubis::StoreBid, a), TxnStatus::kCommitted);

  EXPECT_EQ(Int(rubis::MaxBidKey(7)), 500);
  EXPECT_EQ(Int(rubis::NumBidsKey(7)), 1);
  const auto bidder =
      std::get<OrderedTuple>(h_.store.ReadSnapshot(rubis::MaxBidderKey(7)).value);
  EXPECT_EQ(bidder.payload, "42");
  EXPECT_EQ(bidder.order.primary, 500);
  const auto history =
      std::get<TopKSet>(h_.store.ReadSnapshot(rubis::BidsPerItemIndexKey(7)).value);
  ASSERT_EQ(history.size(), 1u);
  EXPECT_TRUE(h_.store.ReadSnapshot(a.k2).present);  // bid row inserted
}

TEST_F(RubisFixture, SequentialBidsTrackMaximum) {
  const std::int64_t amounts[] = {300, 700, 500, 700, 100};
  for (int i = 0; i < 5; ++i) {
    TxnArgs a;
    a.k1 = rubis::ItemKey(3);
    a.k2 = rubis::BidKey(rubis::ShardedId(0, static_cast<std::uint64_t>(i + 1)));
    a.aux = static_cast<std::uint32_t>(10 + i);
    a.n = amounts[i];
    a.submit_ns = static_cast<std::uint64_t>(1000 + i) * 1000;
    ASSERT_EQ(Run(&rubis::StoreBid, a), TxnStatus::kCommitted);
  }
  EXPECT_EQ(Int(rubis::MaxBidKey(3)), 700);
  EXPECT_EQ(Int(rubis::NumBidsKey(3)), 5);
  // Two bids tied at 700: the later coarse timestamp wins the OPut order.
  const auto bidder =
      std::get<OrderedTuple>(h_.store.ReadSnapshot(rubis::MaxBidderKey(3)).value);
  EXPECT_EQ(bidder.payload, "13");
  // The bid index dedups by (amount, timestamp) order; all five orders are distinct.
  const auto history =
      std::get<TopKSet>(h_.store.ReadSnapshot(rubis::BidsPerItemIndexKey(3)).value);
  EXPECT_EQ(history.size(), 5u);
  EXPECT_EQ(history.items()[0].order.primary, 700);
}

TEST_F(RubisFixture, StoreBidPlainMatchesCommutativeOutcome) {
  for (int i = 0; i < 3; ++i) {
    TxnArgs a;
    a.k1 = rubis::ItemKey(9);
    a.k2 = rubis::BidKey(rubis::ShardedId(0, static_cast<std::uint64_t>(100 + i)));
    a.aux = static_cast<std::uint32_t>(20 + i);
    a.n = 100 * (i + 1);
    a.submit_ns = static_cast<std::uint64_t>(i + 1) * 1000000;
    ASSERT_EQ(Run(&rubis::StoreBidPlain, a), TxnStatus::kCommitted);
  }
  EXPECT_EQ(Int(rubis::MaxBidKey(9)), 300);
  EXPECT_EQ(Int(rubis::NumBidsKey(9)), 3);
  EXPECT_EQ(Int(rubis::MaxBidderPlainKey(9)), 22);
}

TEST_F(RubisFixture, StoreCommentAddsRatingToSeller) {
  const std::uint64_t item = 11;
  const std::uint64_t seller = rubis::SellerOf(item, rubis::ActiveConfig());
  TxnArgs a;
  a.k1 = rubis::ItemKey(item);
  a.k2 = rubis::CommentKey(rubis::ShardedId(0, 1));
  a.aux = 5;
  a.n = 4;  // rating
  ASSERT_EQ(Run(&rubis::StoreComment, a), TxnStatus::kCommitted);
  EXPECT_EQ(Int(rubis::UserRatingKey(seller)), 4);
  EXPECT_EQ(Int(rubis::NumCommentsKey(item)), 1);
  EXPECT_TRUE(h_.store.ReadSnapshot(a.k2).present);
}

TEST_F(RubisFixture, StoreItemInsertsRowAndIndexes) {
  const std::uint64_t item = 1000;  // beyond pre-populated items
  TxnArgs a;
  a.k1 = rubis::ItemKey(item);
  a.aux = 3;  // seller
  a.submit_ns = 99000000;
  ASSERT_EQ(Run(&rubis::StoreItem, a), TxnStatus::kCommitted);
  EXPECT_TRUE(h_.store.ReadSnapshot(rubis::ItemKey(item)).present);
  EXPECT_EQ(Int(rubis::MaxBidKey(item)), 0);
  const auto cat = rubis::CategoryOf(item, rubis::ActiveConfig());
  const auto idx =
      std::get<TopKSet>(h_.store.ReadSnapshot(rubis::ItemsByCategoryKey(cat)).value);
  bool found = false;
  for (const auto& t : idx.items()) {
    found |= t.payload == std::to_string(item);
  }
  EXPECT_TRUE(found) << "new item must appear in its category index";
}

TEST_F(RubisFixture, RegisterUserAndBuyNow) {
  TxnArgs u;
  u.k1 = rubis::UserKey(5000);
  ASSERT_EQ(Run(&rubis::RegisterUser, u), TxnStatus::kCommitted);
  EXPECT_TRUE(h_.store.ReadSnapshot(rubis::UserKey(5000)).present);
  EXPECT_EQ(Int(rubis::UserRatingKey(5000)), 0);

  TxnArgs b;
  b.k1 = rubis::ItemKey(2);
  b.k2 = rubis::BuyNowKey(rubis::ShardedId(0, 1));
  b.aux = 5000;
  ASSERT_EQ(Run(&rubis::StoreBuyNow, b), TxnStatus::kCommitted);
  EXPECT_EQ(Int(rubis::UserNumBoughtKey(5000)), 1);
}

TEST_F(RubisFixture, ReadOnlyTransactionsCommit) {
  TxnArgs a;
  a.k1 = rubis::ItemKey(1);
  EXPECT_EQ(Run(&rubis::ViewItem, a), TxnStatus::kCommitted);
  EXPECT_EQ(Run(&rubis::ViewBidHistory, a), TxnStatus::kCommitted);
  a.k1 = rubis::UserKey(1);
  EXPECT_EQ(Run(&rubis::ViewUserInfo, a), TxnStatus::kCommitted);
  EXPECT_EQ(Run(&rubis::AboutMe, a), TxnStatus::kCommitted);
  a.k1 = rubis::CategoryKey(1);
  EXPECT_EQ(Run(&rubis::SearchItemsByCategory, a), TxnStatus::kCommitted);
  a.k1 = rubis::RegionKey(1);
  EXPECT_EQ(Run(&rubis::SearchItemsByRegion, a), TxnStatus::kCommitted);
  a.aux = 0;
  EXPECT_EQ(Run(&rubis::BrowseCategories, a), TxnStatus::kCommitted);
  EXPECT_EQ(Run(&rubis::BrowseRegions, a), TxnStatus::kCommitted);
}

TEST_F(RubisFixture, ViewBidHistoryReadsInsertedBids) {
  for (int i = 0; i < 3; ++i) {
    TxnArgs a;
    a.k1 = rubis::ItemKey(4);
    a.k2 = rubis::BidKey(rubis::ShardedId(0, static_cast<std::uint64_t>(i + 1)));
    a.aux = static_cast<std::uint32_t>(i);
    a.n = 100 + i;
    a.submit_ns = static_cast<std::uint64_t>(i + 1) * 1000000;
    ASSERT_EQ(Run(&rubis::StoreBid, a), TxnStatus::kCommitted);
  }
  TxnArgs v;
  v.k1 = rubis::ItemKey(4);
  EXPECT_EQ(Run(&rubis::ViewBidHistory, v), TxnStatus::kCommitted);
}

TEST(RubisWorkload, MixRatios) {
  rubis::WorkloadConfig cfg;
  cfg.data = SmallConfig();
  cfg.mix = rubis::Mix::kContended;
  cfg.alpha = 1.8;
  const ZipfianGenerator zipf(cfg.data.num_items, cfg.alpha);
  rubis::RubisSource src(cfg, &zipf, 0);
  Worker w(0, 31337);
  int writes = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    writes += src.Next(w).args.tag == kTagWrite;
  }
  // RUBiS-C: 50% StoreBid + 4% other writes.
  EXPECT_NEAR(writes / static_cast<double>(kDraws), 0.54, 0.03);

  rubis::WorkloadConfig bidding = cfg;
  bidding.mix = rubis::Mix::kBidding;
  rubis::RubisSource bsrc(bidding, &zipf, 0);
  writes = 0;
  for (int i = 0; i < kDraws; ++i) {
    writes += bsrc.Next(w).args.tag == kTagWrite;
  }
  EXPECT_NEAR(writes / static_cast<double>(kDraws), 0.15, 0.02);
}

TEST(RubisWorkload, ShardedIdsNeverCollide) {
  EXPECT_NE(rubis::ShardedId(0, 1), rubis::ShardedId(1, 1));
  EXPECT_NE(rubis::ShardedId(0, 2), rubis::ShardedId(1, 1));
  EXPECT_EQ(rubis::ShardedId(2, 7), 2 * rubis::kShardStride + 7);
}

class RubisEndToEnd : public ::testing::TestWithParam<Protocol> {};

INSTANTIATE_TEST_SUITE_P(Protocols, RubisEndToEnd,
                         ::testing::Values(Protocol::kDoppel, Protocol::kOcc,
                                           Protocol::kTwoPL),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

// The full RUBiS-C mix must run and keep the core invariant: for every item, numBids
// equals the number of committed StoreBid transactions on it, and maxBid is consistent
// with the recorded max bidder.
TEST_P(RubisEndToEnd, ContendedMixInvariants) {
  Options o;
  o.protocol = GetParam();
  o.num_workers = 2;
  o.phase_us = 3000;
  o.store_capacity = 1 << 16;
  Database db(o);
  rubis::Config data;
  data.num_users = 500;
  data.num_items = 20;  // strong contention on item 0
  rubis::Populate(db.store(), data);
  const ZipfianGenerator zipf(data.num_items, 1.8);
  rubis::WorkloadConfig cfg;
  cfg.data = data;
  cfg.mix = rubis::Mix::kContended;
  cfg.alpha = 1.8;
  RunMetrics m = RunWorkload(db, rubis::MakeRubisFactory(cfg, &zipf), 500, 100);
  EXPECT_GT(m.committed, 0u);

  std::int64_t total_bids = 0;
  for (std::uint64_t i = 0; i < data.num_items; ++i) {
    total_bids += testing::IntAt(db.store(), rubis::NumBidsKey(i));
    const std::int64_t max_bid = testing::IntAt(db.store(), rubis::MaxBidKey(i));
    const auto bidder =
        std::get<OrderedTuple>(db.store().ReadSnapshot(rubis::MaxBidderKey(i)).value);
    if (bidder.order.primary != INT64_MIN) {
      EXPECT_EQ(bidder.order.primary, max_bid) << "item " << i;
    }
    const auto history =
        std::get<TopKSet>(db.store().ReadSnapshot(rubis::BidsPerItemIndexKey(i)).value);
    if (!history.empty()) {
      EXPECT_EQ(history.items()[0].order.primary, max_bid) << "item " << i;
    }
  }
  // Bids are ~50/54 of committed writes; every bid bumped exactly one numBids counter.
  EXPECT_GT(total_bids, 0);
  EXPECT_LE(total_bids, static_cast<std::int64_t>(m.stats.committed_by_tag[kTagWrite]));
}

}  // namespace
}  // namespace doppel
