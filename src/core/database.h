// The public facade: a Doppel database instance.
//
// Typical use (see examples/quickstart.cc):
//
//   doppel::Options opts;
//   opts.protocol = doppel::Protocol::kDoppel;
//   doppel::Database db(opts);
//   db.store().LoadInt(doppel::Key::FromU64(1), 0);
//   db.Start();
//   db.Execute([](doppel::Txn& txn) { txn.Add(doppel::Key::FromU64(1), 1); });
//   db.Stop();
//
// Benchmarks instead attach a per-worker TxnSource: each worker generates transactions
// as if it were a client and executes them closed-loop (§8.1).
#ifndef DOPPEL_SRC_CORE_DATABASE_H_
#define DOPPEL_SRC_CORE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/spinlock.h"
#include "src/core/coordinator.h"
#include "src/core/doppel_engine.h"
#include "src/core/options.h"
#include "src/core/runner.h"
#include "src/persist/wal.h"
#include "src/store/store.h"
#include "src/txn/engine.h"

namespace doppel {

// Per-worker transaction generator (closed-loop client). Next() is called on the worker's
// own thread; it should fill args.tag and may use w.rng.
class TxnSource {
 public:
  virtual ~TxnSource() = default;
  virtual TxnRequest Next(Worker& w) = 0;
};

using SourceFactory = std::function<std::unique_ptr<TxnSource>(int worker_id)>;

struct TxnResult {
  bool committed = false;
  std::uint32_t attempts = 0;
};

class Database {
 public:
  explicit Database(Options opts);
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const Options& options() const { return opts_; }
  Store& store() { return store_; }
  const Store& store() const { return store_; }
  Engine& engine() { return *engine_; }
  // Non-null iff options().protocol == kDoppel.
  DoppelEngine* doppel() { return doppel_; }
  const Coordinator* coordinator() const { return coordinator_.get(); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Manual data labeling (§5.5); Doppel only. Call before Start.
  void MarkSplitManually(const Key& key, OpCode op,
                         std::size_t topk_k = TopKSet::kDefaultK);

  // Spawns worker threads (and, for Doppel, the coordinator). `factory`, if provided,
  // creates one TxnSource per worker for closed-loop generation.
  void Start(SourceFactory factory = nullptr);
  // Stops generation, reconciles outstanding split state, joins all threads. Idempotent.
  void Stop();
  bool started() const { return started_; }

  // Submits a transaction and blocks until it commits (internally retrying conflicts and
  // stashes) or user-aborts. Thread-safe; requires Start() first.
  TxnResult Execute(std::function<void(Txn&)> fn);

  // ---- Metrics ----
  // Racy sum of per-worker commit counters; safe to call while running (Fig. 10 series).
  std::uint64_t SampleTotalCommits() const;

  struct Stats {
    std::uint64_t committed = 0;
    std::uint64_t committed_split_phase = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t stash_events = 0;
    std::uint64_t user_aborts = 0;
    std::uint64_t committed_by_tag[kNumTags] = {};
    LatencyHistogram latency_by_tag[kNumTags];
  };
  // Aggregated per-worker metrics; call after Stop() for exact values.
  Stats CollectStats() const;

  // Doppel introspection: split records in the most recent plan (0 otherwise).
  std::size_t LastPlanSize() const { return doppel_ ? doppel_->LastPlanSize() : 0; }

  // Non-null when Options::wal_path is set.
  WriteAheadLog* wal() { return wal_.get(); }

 private:
  void WorkerMain(Worker& w, TxnSource* source);
  bool TryRunSubmitted(Worker& w);

  Options opts_;
  Store store_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::atomic<bool> stop_coord_{false};
  std::atomic<bool> stop_workers_{false};
  std::unique_ptr<Engine> engine_;
  DoppelEngine* doppel_ = nullptr;  // borrowed view of engine_ when protocol is Doppel
  RunnerConfig runner_cfg_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<TxnSource>> sources_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  bool stopped_ = false;

  Spinlock submit_mu_;
  std::deque<std::shared_ptr<SubmitTicket>> submit_queue_;
  std::atomic<std::size_t> submit_count_{0};
};

}  // namespace doppel

#endif  // DOPPEL_SRC_CORE_DATABASE_H_
