// Open-loop async pipeline: four client threads pump 100k increments through
// Database::SubmitBatch without ever blocking on an individual commit, then wait for all
// handles and print a submission→commit latency histogram (queueing delay included).
//
// Build: cmake --build build --target async_pipeline && ./build/async_pipeline
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "src/core/database.h"

int main() {
  using namespace doppel;

  Options opts;
  opts.protocol = Protocol::kDoppel;
  opts.num_workers = 4;
  opts.phase_us = 5000;
  opts.store_capacity = 1024;
  Database db(opts);

  const Key counter = Key::FromU64(1);
  db.store().LoadInt(counter, 0);
  db.Start();

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 25000;  // 100k total
  constexpr int kBatch = 64;            // amortise the placement cursor across a batch

  std::atomic<std::uint64_t> committed{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      TxnRequest add;
      add.proc = [](Txn& txn, const TxnArgs& a) { txn.Add(a.k1, a.n); };
      add.args.k1 = counter;
      add.args.n = 1;
      const std::vector<TxnRequest> batch(kBatch, add);

      std::vector<TxnHandle> inflight;
      inflight.reserve(kPerSubmitter);
      int submitted = 0;
      while (submitted < kPerSubmitter) {
        const int n = std::min(kBatch, kPerSubmitter - submitted);
        // SubmitBatch blocks only while every inbox is full (backpressure), so the
        // pipeline self-clocks to what the workers can absorb.
        for (TxnHandle& h : db.SubmitBatch(
                 std::span<const TxnRequest>(batch.data(), static_cast<std::size_t>(n)))) {
          inflight.push_back(std::move(h));
        }
        submitted += n;
      }
      // Reap: every handle resolves; a contended counter commits via Doppel's split
      // phases, so none of these waits serialised the submission loop above.
      for (TxnHandle& h : inflight) {
        if (h.Wait().committed) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : submitters) {
    t.join();
  }
  db.Stop();

  const auto snap = db.store().ReadSnapshot(counter);
  const std::int64_t observed = snap.present ? std::get<std::int64_t>(snap.value) : 0;
  const Database::Stats stats = db.CollectStats();
  LatencyHistogram latency;
  for (int t = 0; t < kNumTags; ++t) {
    latency.Merge(stats.latency_by_tag[t]);
  }

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kSubmitters) * kPerSubmitter;
  std::printf("submitted  = %llu (across %d client threads, batches of %d)\n",
              static_cast<unsigned long long>(kTotal), kSubmitters, kBatch);
  std::printf("committed  = %llu\n", static_cast<unsigned long long>(committed.load()));
  std::printf("counter    = %lld (expected %llu)\n", static_cast<long long>(observed),
              static_cast<unsigned long long>(kTotal));
  std::printf("\nsubmission->commit latency (us):\n");
  std::printf("  mean  %8.1f\n", latency.Mean() / 1000.0);
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    std::printf("  p%-4g %8.1f\n", p, static_cast<double>(latency.Percentile(p)) / 1000.0);
  }
  std::printf("  max   %8.1f\n", static_cast<double>(latency.max()) / 1000.0);

  const bool ok = committed.load() == kTotal &&
                  observed == static_cast<std::int64_t>(kTotal) &&
                  latency.count() == kTotal;
  std::printf("\n%s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
